// fleet's CLI parser (runtime/fleet_cli.hpp): strict flag handling. A typo
// like `--sced 7` must be a hard error naming the flag, not a silently
// ignored token that runs the default sweep and stamps misleading metadata
// into BENCH_runtime.json.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/fleet_cli.hpp"
#include "util/error.hpp"

namespace nab::runtime {
namespace {

fleet_options parse(std::initializer_list<const char*> args) {
  return parse_fleet_args(std::vector<std::string>(args.begin(), args.end()));
}

TEST(FleetCli, DefaultsWhenNoArgs) {
  const fleet_options opt = parse({});
  EXPECT_EQ(opt, fleet_options{});
  EXPECT_FALSE(opt.list);
  EXPECT_EQ(opt.scenarios, "all");
  EXPECT_EQ(opt.jobs, 1);
  EXPECT_EQ(opt.seed, 1u);
  EXPECT_EQ(opt.json_path, "BENCH_runtime.json");
  EXPECT_FALSE(opt.hunt);
}

TEST(FleetCli, ParsesEverySweepFlag) {
  const fleet_options opt =
      parse({"--list", "--scenario", "fig1,ring", "--jobs", "8", "--seed",
             "99", "--json", "out.json", "--trace", "t.json", "--timeline",
             "tl.json", "--quiet"});
  EXPECT_TRUE(opt.list);
  EXPECT_EQ(opt.scenarios, "fig1,ring");
  EXPECT_EQ(opt.jobs, 8);
  EXPECT_EQ(opt.seed, 99u);
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_EQ(opt.trace_path, "t.json");
  EXPECT_EQ(opt.timeline_path, "tl.json");
  EXPECT_TRUE(opt.quiet);
}

TEST(FleetCli, ParsesEveryHuntFlag) {
  const fleet_options opt =
      parse({"--hunt", "--hunt-families", "complete-f2", "--budget", "500",
             "--population", "20", "--hunt-words", "8", "--hunt-instances",
             "2", "--hunt-corpus", "c.json"});
  EXPECT_TRUE(opt.hunt);
  EXPECT_EQ(opt.hunt_families, "complete-f2");
  EXPECT_EQ(opt.budget, 500);
  EXPECT_EQ(opt.population, 20);
  EXPECT_EQ(opt.hunt_words, 8u);
  EXPECT_EQ(opt.hunt_instances, 2);
  EXPECT_EQ(opt.corpus_path, "c.json");
}

TEST(FleetCli, UnknownFlagIsAnErrorNamingTheFlag) {
  try {
    parse({"--sced", "7"});
    FAIL() << "expected nab::error";
  } catch (const nab::error& e) {
    EXPECT_NE(std::string(e.what()).find("--sced"), std::string::npos)
        << "error must name the offending flag: " << e.what();
  }
  EXPECT_THROW(parse({"extra"}), nab::error);
  EXPECT_THROW(parse({"--quiet", "--bogus"}), nab::error);
}

TEST(FleetCli, MissingValueIsAnError) {
  EXPECT_THROW(parse({"--scenario"}), nab::error);
  EXPECT_THROW(parse({"--jobs"}), nab::error);
  EXPECT_THROW(parse({"--seed"}), nab::error);
  EXPECT_THROW(parse({"--hunt-corpus"}), nab::error);
}

TEST(FleetCli, MalformedNumbersAreErrors) {
  EXPECT_THROW(parse({"--jobs", "four"}), nab::error);
  EXPECT_THROW(parse({"--jobs", "1e5"}), nab::error);
  EXPECT_THROW(parse({"--seed", "-3"}), nab::error);
  EXPECT_THROW(parse({"--seed", ""}), nab::error);
  EXPECT_THROW(parse({"--seed", "12x"}), nab::error);
  EXPECT_THROW(parse({"--seed", "99999999999999999999999"}), nab::error);
  EXPECT_THROW(parse({"--budget", "0"}), nab::error);
  EXPECT_THROW(parse({"--population", "0"}), nab::error);
  EXPECT_THROW(parse({"--hunt-words", "0"}), nab::error);
  // Bounded int flags reject absurd values instead of truncating.
  EXPECT_THROW(parse({"--jobs", "2000000"}), nab::error);
}

TEST(FleetCli, SeedAndJobsEdgeValues) {
  EXPECT_EQ(parse({"--seed", "0"}).seed, 0u);
  EXPECT_EQ(parse({"--seed", "18446744073709551615"}).seed, UINT64_MAX);
  // jobs is clamped up to 1, never an error for 0 (matches prior behavior).
  EXPECT_EQ(parse({"--jobs", "0"}).jobs, 1);
}

TEST(FleetCli, UsageNamesEveryFlag) {
  const std::string usage = fleet_usage();
  for (const char* flag :
       {"--list", "--scenario", "--jobs", "--seed", "--json", "--trace",
        "--timeline", "--quiet", "--hunt", "--hunt-families", "--budget",
        "--population", "--hunt-words", "--hunt-instances", "--hunt-corpus"})
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

}  // namespace
}  // namespace nab::runtime
