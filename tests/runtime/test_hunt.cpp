// The hunt's persistence layer (runtime/hunt.hpp): genome string round-trip,
// corpus JSON round-trip, exact replay of corpus entries, jobs-invariance of
// a whole search, and a golden corpus checked into tests/runtime/data/ that
// pins the on-disk format AND the recorded behaviors — a hunt finding is
// only worth keeping if anyone can replay it bit for bit later.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runtime/runtime.hpp"
#include "util/error.hpp"

namespace nab::runtime {
namespace {

hunt_config tiny_hunt() {
  hunt_config cfg;
  cfg.families = "complete-f2";
  cfg.seed = 42;
  cfg.budget = 48;
  cfg.population = 8;
  cfg.jobs = 1;
  return cfg;
}

TEST(HuntGenome, ParamsRoundTripIsIdentity) {
  hunt_genome g;  // defaults
  EXPECT_EQ(hunt_genome::from_params(g.to_params()), g);

  g.p1_source = 255;
  g.p1_forward = 1;
  g.p2_lie = 77;
  g.flag_flip = 200;
  g.claim_tamper = 3;
  g.input_lie = 254;
  g.digest_equivocate = 128;
  g.digest_garble = 64;
  g.echo_suppress = 192;
  g.ready_suppress = 100;
  g.retrieval_forge = 50;
  g.xor_mask = 0xBEEF;
  g.victim_mode = 1;
  g.corrupt_source = 1;
  g.corrupt_salt = 238;
  g.noise_salt = 76;
  EXPECT_EQ(hunt_genome::from_params(g.to_params()), g);
}

TEST(HuntGenome, FromParamsRejectsMalformedInput) {
  const std::string good = hunt_genome{}.to_params();
  EXPECT_NO_THROW(hunt_genome::from_params(good));
  // Missing field (drop the last key=value).
  EXPECT_THROW(hunt_genome::from_params(good.substr(0, good.rfind(','))),
               nab::error);
  // Unknown key.
  EXPECT_THROW(hunt_genome::from_params(good + ",bogus=1"), nab::error);
  // Duplicate key.
  EXPECT_THROW(hunt_genome::from_params(good + ",p1_source=1"), nab::error);
  // Over-bound value for a rate field (max 255).
  std::string over = good;
  over.replace(over.find("p1_source=0"), 11, "p1_source=256");
  EXPECT_THROW(hunt_genome::from_params(over), nab::error);
  // Non-numeric value.
  std::string junk = good;
  junk.replace(junk.find("p1_source=0"), 11, "p1_source=x");
  EXPECT_THROW(hunt_genome::from_params(junk), nab::error);
  EXPECT_THROW(hunt_genome::from_params(""), nab::error);
}

TEST(HuntCorpus, JsonRoundTripIsIdentity) {
  const hunt_corpus corpus = run_hunt(tiny_hunt());
  ASSERT_GT(corpus.champions.size(), 0u);
  ASSERT_GT(corpus.novel.size(), 0u);
  const std::string text = corpus_document(corpus).dump();
  const hunt_corpus back = corpus_from_text(text);
  EXPECT_EQ(back, corpus);
  // Serializing the parsed corpus again must be byte-identical: the format
  // is deterministic in both directions.
  EXPECT_EQ(corpus_document(back).dump(), text);
}

TEST(HuntCorpus, EntriesReplayBitIdentically) {
  const hunt_corpus corpus = run_hunt(tiny_hunt());
  ASSERT_GT(corpus.champions.size(), 0u);
  for (const corpus_entry& e : corpus.champions) {
    const run_record rec = replay_entry(corpus, e);
    EXPECT_EQ(rec.margin_quorum_slack, e.margin_quorum_slack) << e.context;
    EXPECT_EQ(rec.margin_hold_surplus, e.margin_hold_surplus) << e.context;
    EXPECT_EQ(rec.margin_dispute_headroom, e.margin_dispute_headroom)
        << e.context;
    EXPECT_EQ(record_signature(rec), e.signature) << e.context;
    EXPECT_EQ(margin_score(rec), e.score) << e.context;
    EXPECT_EQ(rec.ok(), e.ok) << e.context;
  }
}

TEST(HuntCorpus, SearchIsJobsInvariant) {
  hunt_config cfg = tiny_hunt();
  const hunt_corpus one = run_hunt(cfg);
  cfg.jobs = 3;
  const hunt_corpus three = run_hunt(cfg);
  EXPECT_EQ(one, three);
  EXPECT_EQ(corpus_document(one).dump(), corpus_document(three).dump());
}

TEST(HuntCorpus, CorpusFromTextRejectsDrift) {
  EXPECT_THROW(corpus_from_text(""), nab::error);
  EXPECT_THROW(corpus_from_text("{}"), nab::error);
  EXPECT_THROW(corpus_from_text(R"({"kind":"something-else"})"), nab::error);
  EXPECT_THROW(corpus_from_text("not json at all"), nab::error);
}

TEST(HuntCorpus, GoldenCorpusParsesAndReplays) {
  // tests/runtime/data/golden_corpus.json was produced by
  //   fleet --hunt --hunt-families complete-f2 --budget 48 --population 8
  //         --seed 42
  // If this test fails after an intentional behavior change, regenerate the
  // file with that command and re-review the recorded margins (docs/HUNT.md
  // has the workflow); if it fails unexpectedly, a determinism or format
  // regression just escaped.
  std::ifstream in(std::string(NAB_TEST_DATA_DIR) + "/golden_corpus.json");
  ASSERT_TRUE(in.good()) << "missing tests/runtime/data/golden_corpus.json";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const hunt_corpus corpus = corpus_from_text(text);
  EXPECT_EQ(corpus.families, "complete-f2");
  EXPECT_EQ(corpus.seed, 42u);
  ASSERT_GT(corpus.champions.size(), 0u);
  EXPECT_EQ(corpus.violations, 0);

  // Byte-stable format: re-serializing the parsed corpus reproduces the
  // checked-in file exactly.
  EXPECT_EQ(corpus_document(corpus).dump(), text);

  // And the recorded behaviors still replay: same margins, same signature,
  // for every champion entry.
  for (const corpus_entry& e : corpus.champions) {
    const run_record rec = replay_entry(corpus, e);
    EXPECT_TRUE(rec.ok()) << e.context;
    EXPECT_EQ(rec.margin_quorum_slack, e.margin_quorum_slack) << e.context;
    EXPECT_EQ(rec.margin_hold_surplus, e.margin_hold_surplus) << e.context;
    EXPECT_EQ(rec.margin_dispute_headroom, e.margin_dispute_headroom)
        << e.context;
    EXPECT_EQ(record_signature(rec), e.signature) << e.context;
  }

  // The current search reproduces the golden corpus from scratch — the
  // strongest statement: evolution itself is deterministic across machines.
  EXPECT_EQ(corpus_document(run_hunt(tiny_hunt())).dump(), text);
}

TEST(HuntContexts, ForceHuntedCollapsedAndRejectEmpty) {
  const auto ctxs = hunt_contexts("complete-f2,ablation-claims", 16, 0);
  ASSERT_EQ(ctxs.size(), 2u);  // K_7 f=2 and K_9 f=2, deduped by (topology, f)
  for (const scenario& s : ctxs) {
    EXPECT_EQ(s.adversary, adversary_kind::hunted);
    EXPECT_EQ(s.claim_backend, bb::claim_backend::collapsed);
    EXPECT_GT(s.f, 0);
    EXPECT_EQ(s.words, 16u);
  }
  // Families with no fault-tolerant context cannot seed a hunt.
  EXPECT_THROW(hunt_contexts("ring", 16, 0), nab::error);
}

}  // namespace
}  // namespace nab::runtime
