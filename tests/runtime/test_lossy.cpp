// The lossy-link axis end to end at the runtime layer: the registry's loss
// presets and their naming, the fleet --loss override path, the zero-loss
// byte-identity guard (an attached-but-inert model may not move a single
// record), the K_7 bursty acceptance criteria (honest survives with zero
// disputes, a tamperer is still convicted), and the jobs-1-vs-N determinism
// contract extended over erasure chains and ARQ.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "sim/link_faults.hpp"
#include "util/error.hpp"

namespace nab::runtime {
namespace {

TEST(LossyRegistry, LossyFamiliesExistAndCarryTheAxis) {
  for (const char* name : {"lossy_k7", "lossy_hypercube", "lossy_wan"})
    ASSERT_NE(find_family(name), nullptr) << name;
  // Single-value loss axes fold into the family name; multi-value axes
  // surface as a /loss-<spec> suffix (mirrors every other axis).
  bool saw_light = false, saw_heavy = false;
  for (const scenario& s : find_family("lossy_hypercube")->expand()) {
    saw_light = saw_light || s.name.find("/loss-light") != std::string::npos;
    saw_heavy = saw_heavy || s.name.find("/loss-heavy") != std::string::npos;
  }
  EXPECT_TRUE(saw_light);
  EXPECT_TRUE(saw_heavy);
  for (const scenario& s : find_family("lossy_k7")->expand()) {
    EXPECT_EQ(s.loss, "bursty") << s.name;
    EXPECT_EQ(s.name.find("/loss-"), std::string::npos) << s.name;
  }
  // Every non-lossy family keeps the default.
  for (const scenario& s : select_scenarios("fig1,complete"))
    EXPECT_EQ(s.loss, "none") << s.name;
}

TEST(LossyRegistry, LossRoundTripsThroughParamsAndDefaultsToNone) {
  const scenario lossy = find_family("lossy_k7")->expand().front();
  auto params = scenario_to_params(lossy);
  EXPECT_EQ(params.at("loss"), "bursty");
  EXPECT_EQ(scenario_from_params(params), lossy);
  // Absent key (records written before the loss axis existed): "none".
  params.erase("loss");
  scenario back = scenario_from_params(params);
  EXPECT_EQ(back.loss, "none");
}

TEST(LossyFleetCli, LossFlagParsesAndRejectsByName) {
  EXPECT_EQ(parse_fleet_args({"--loss", "bursty"}).loss, "bursty");
  EXPECT_EQ(parse_fleet_args({"--loss", "none"}).loss, "none");
  EXPECT_EQ(parse_fleet_args({"--loss", "0.1,0.5,0.05,0.25"}).loss,
            "0.1,0.5,0.05,0.25");
  EXPECT_TRUE(parse_fleet_args({}).loss.empty());  // empty = no override
  EXPECT_THROW(parse_fleet_args({"--loss", "medium"}), nab::error);
  EXPECT_THROW(parse_fleet_args({"--loss", "0.1,0.2"}), nab::error);
  EXPECT_THROW(parse_fleet_args({"--loss"}), nab::error);
}

TEST(LossyGuard, ZeroLossSweepIsByteIdenticalToClean) {
  // The tentpole's safety net: attaching the inert "zero" model (what
  // `fleet --loss zero` does) must reproduce the clean sweep record for
  // record — same transcripts, same wire bits, same margins, same
  // simulated times. Only the loss echo field itself may differ.
  constexpr const char* kSweep = "fig1,ablation-claims";
  const std::vector<scenario> clean = select_scenarios(kSweep);
  std::vector<scenario> zeroed = clean;
  for (scenario& s : zeroed) s.loss = "zero";
  const auto a = run_sweep(clean, 42, 2);
  auto b = run_sweep(zeroed, 42, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(b[i].loss, "zero");
    b[i].loss = a[i].loss;
    EXPECT_EQ(a[i], b[i]) << clean[i].name;
  }
}

TEST(LossyAcceptance, K7BurstyHonestSurvivesWithZeroDisputes) {
  // The PR's headline criterion: under the bursty Gilbert-Elliott preset on
  // K_7, honest runs ride the ARQ to full agreement and the erasure
  // classifier keeps dispute control silent — drops happened, retransmits
  // paid for them, nobody got blamed.
  const std::vector<scenario> sweep = select_scenarios("lossy_k7");
  const auto records = run_sweep(sweep, 1, 4);
  bool saw_honest = false, saw_garbler = false;
  for (const run_record& r : records) {
    EXPECT_TRUE(r.ok()) << r.scenario;
    EXPECT_TRUE(r.agreement) << r.scenario;
    EXPECT_EQ(r.loss, "bursty") << r.scenario;
    EXPECT_GT(r.link_drops, 0u) << r.scenario;
    EXPECT_GT(r.retransmits, 0u) << r.scenario;
    if (r.adversary == "honest") {
      saw_honest = true;
      EXPECT_EQ(r.disputes, 0) << r.scenario;
      EXPECT_EQ(r.convictions, 0) << r.scenario;
    } else if (r.adversary == "p1_garble") {
      // Erasure discrimination must not shelter actual tampering.
      saw_garbler = true;
      EXPECT_GE(r.convictions, 1) << r.scenario;
      EXPECT_TRUE(r.conviction_sound) << r.scenario;
    }
  }
  EXPECT_TRUE(saw_honest);
  EXPECT_TRUE(saw_garbler);
}

TEST(LossyAcceptance, HonestLossyFamiliesHoldAllInvariants) {
  const std::vector<scenario> sweep =
      select_scenarios("lossy_hypercube,lossy_wan");
  const auto records = run_sweep(sweep, 1, 4);
  std::uint64_t total_drops = 0;
  for (const run_record& r : records) {
    EXPECT_TRUE(r.ok()) << r.scenario;
    total_drops += r.link_drops;
    if (r.adversary == "honest") {
      EXPECT_EQ(r.disputes, 0) << r.scenario;
      EXPECT_EQ(r.convictions, 0) << r.scenario;
    }
  }
  EXPECT_GT(total_drops, 0u);
}

TEST(LossyDeterminism, RecordsAreIdenticalAcrossJobCounts) {
  // Erasure chains are per-link streams keyed by (run seed, link index), so
  // the lossy families obey the same jobs-1-vs-N contract as everything
  // else — drop sequences, retransmit counts, and margins included.
  const std::vector<scenario> sweep =
      select_scenarios("lossy_k7,lossy_hypercube,lossy_wan");
  const auto one = run_sweep(sweep, 42, 1);
  const auto four = run_sweep(sweep, 42, 4);
  EXPECT_EQ(one, four);
  EXPECT_EQ(sweep_document("lossy", 42, 1, one, -1.0).dump(),
            sweep_document("lossy", 42, 4, four, -1.0).dump());
}

TEST(LossyRunner, RetryHeadroomGaugeIsRecordedOnlyUnderLoss) {
  const run_record lossy =
      execute_scenario(find_family("lossy_k7")->expand().front(), 0, 1);
  EXPECT_GE(lossy.margin_retry_headroom, 0);
  EXPECT_LE(lossy.margin_retry_headroom, 12);  // the default retry budget
  const run_record clean = execute_scenario(select_scenarios("fig1").front(), 0, 1);
  EXPECT_EQ(clean.margin_retry_headroom, -1);
  EXPECT_EQ(clean.link_drops, 0u);
  EXPECT_EQ(clean.retransmits, 0u);
}

TEST(LossyRunner, PipelinedPropagationRejectsRealLossAllowsInert) {
  const auto sweep = select_scenarios("ablation-propagation");
  const scenario* pipelined = nullptr;
  for (const scenario& s : sweep)
    if (s.propagation == core::propagation_mode::pipelined) pipelined = &s;
  ASSERT_NE(pipelined, nullptr);
  scenario lossy = *pipelined;
  lossy.loss = "bursty";  // Appendix-D schedules have no ARQ slack
  EXPECT_THROW(execute_scenario(lossy, 0, 11), nab::error);
  scenario inert = *pipelined;
  inert.loss = "zero";
  const run_record rec = execute_scenario(inert, 2, 11);
  EXPECT_TRUE(rec.ok()) << rec.scenario;
  run_record reference = execute_scenario(*pipelined, 2, 11);
  reference.loss = "zero";  // only the echo field may differ
  EXPECT_EQ(rec, reference);
}

}  // namespace
}  // namespace nab::runtime
