// The runtime's headline contract: a sweep is a pure function of
// (scenario list, sweep seed) — the jobs count, scheduling order, and
// machine load must not leak into any record. Checked by running the same
// sweep at several thread counts and comparing both the typed records and
// the serialized JSON byte for byte.

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"

namespace nab::runtime {
namespace {

// Families chosen to cover random topologies, dispute control, both flag
// protocols, and all three claim backends while staying fast enough for CI.
constexpr const char* kSweep =
    "fig1,capacity-skew,ablation-flags,ablation-claims,random-regular";

TEST(Determinism, RecordsAreIdenticalAcrossJobCounts) {
  const std::vector<scenario> sweep = select_scenarios(kSweep);
  ASSERT_GE(sweep.size(), 8u);
  const auto one = run_sweep(sweep, 42, 1);
  const auto four = run_sweep(sweep, 42, 4);
  const auto eight = run_sweep(sweep, 42, 8);
  ASSERT_EQ(one.size(), sweep.size());
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(Determinism, JsonDocumentsAreByteIdenticalModuloWallClock) {
  constexpr const char* kJsonSweep = "fig1,ablation-length";
  const std::vector<scenario> sweep = select_scenarios(kJsonSweep);
  const auto a = run_sweep(sweep, 7, 1);
  const auto b = run_sweep(sweep, 7, 5);
  // wall_seconds < 0 omits the machine-dependent fields — what remains must
  // serialize identically, byte for byte.
  EXPECT_EQ(sweep_document(kJsonSweep, 7, 1, a, -1.0).dump(),
            sweep_document(kJsonSweep, 7, 5, b, -1.0).dump());
}

TEST(Determinism, DifferentSeedsProduceDifferentRandomness) {
  const std::vector<scenario> sweep = select_scenarios("random-regular");
  const auto a = run_sweep(sweep, 1, 2);
  const auto c = run_sweep(sweep, 2, 2);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_difference = any_difference || !(a[i] == c[i]);
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, SeedDerivationIsPinned) {
  // Golden values: if these move, every recorded BENCH_runtime.json becomes
  // incomparable with new runs. Bump only with a conscious format break.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(1, 1));
  EXPECT_NE(derive_run_seed(1, 0), derive_run_seed(2, 0));
  EXPECT_EQ(derive_run_seed(1, 0), derive_run_seed(1, 0));
}

TEST(Determinism, ScenarioSeedsNeverDependOnRunnerState) {
  // Executing one scenario twice (same index, same sweep seed) must agree
  // exactly — including through the random-topology reseed loop.
  const std::vector<scenario> sweep = select_scenarios("random-regular");
  const run_record r1 = execute_scenario(sweep.front(), 3, 99);
  const run_record r2 = execute_scenario(sweep.front(), 3, 99);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace nab::runtime
