#include "runtime/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/certify.hpp"
#include "core/omega.hpp"
#include "graph/connectivity.hpp"
#include "runtime/runner.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::runtime {
namespace {

std::vector<scenario> all_scenarios() { return select_scenarios("all"); }

TEST(Registry, CatalogIsLargeEnoughForTheSweepContract) {
  // The acceptance bar: a sweep of >= 20 distinct scenario configurations.
  EXPECT_GE(all_scenarios().size(), 20u);
  EXPECT_GE(registry().size(), 10u);
}

TEST(Registry, FamilyNamesAndScenarioNamesAreUnique) {
  std::set<std::string> family_names;
  for (const scenario_family& fam : registry())
    EXPECT_TRUE(family_names.insert(fam.name).second) << fam.name;
  std::set<std::string> names;
  for (const scenario& s : all_scenarios())
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate scenario " << s.name;
}

TEST(Registry, SelectByNameMatchesExpandAndRejectsUnknown) {
  const scenario_family* fam = find_family("complete");
  ASSERT_NE(fam, nullptr);
  EXPECT_EQ(select_scenarios("complete"), fam->expand());
  // Comma lists concatenate in order.
  const auto both = select_scenarios("fig1,fig2");
  EXPECT_EQ(both.size(),
            find_family("fig1")->expand().size() + find_family("fig2")->expand().size());
  EXPECT_THROW(select_scenarios("no-such-family"), nab::error);
  EXPECT_EQ(find_family("no-such-family"), nullptr);
}

TEST(Registry, EveryScenarioRoundTripsThroughParams) {
  for (const scenario& s : all_scenarios()) {
    const auto params = scenario_to_params(s);
    const scenario back = scenario_from_params(params);
    EXPECT_EQ(back, s) << s.name;
  }
}

TEST(Registry, FromParamsRejectsMissingAndMalformedKeys) {
  auto params = scenario_to_params(all_scenarios().front());
  auto missing = params;
  missing.erase("topology");
  EXPECT_THROW(scenario_from_params(missing), nab::error);
  auto bad = params;
  bad["adversary"] = "quantum";
  EXPECT_THROW(scenario_from_params(bad), nab::error);
  auto bad_number = params;
  bad_number["n"] = "abc";
  EXPECT_THROW(scenario_from_params(bad_number), nab::error);
  auto huge = params;
  huge["cap_lo"] = "99999999999999999999999999";
  EXPECT_THROW(scenario_from_params(huge), nab::error);
}

TEST(Registry, EnumStringsRoundTrip) {
  for (auto k : {topology_kind::complete, topology_kind::fig1a, topology_kind::fig1b,
                 topology_kind::fig2, topology_kind::ring, topology_kind::erdos_renyi,
                 topology_kind::random_regular, topology_kind::hypercube,
                 topology_kind::clustered_wan, topology_kind::dumbbell,
                 topology_kind::weak_link, topology_kind::path_of_cliques})
    EXPECT_EQ(topology_kind_from_string(to_string(k)), k);
  for (auto k : {adversary_kind::honest, adversary_kind::p1_garble,
                 adversary_kind::equivocate, adversary_kind::p2_lie,
                 adversary_kind::false_flag, adversary_kind::stealth,
                 adversary_kind::dispute_farm, adversary_kind::chaos})
    EXPECT_EQ(adversary_kind_from_string(to_string(k)), k);
}

TEST(Registry, TopologyNodesMatchesBuiltGraph) {
  rng rand(7);
  for (const scenario& s : all_scenarios()) {
    const graph::digraph g = build_topology(s.topology, rand);
    EXPECT_EQ(g.universe(), topology_nodes(s.topology)) << s.name;
  }
}

TEST(Registry, PresetTopologiesSupportTheirFaultBudgets) {
  // Deterministic presets must satisfy n >= 3f+1 and connectivity >= 2f+1
  // outright; random presets get the runner's reseed loop, so they are only
  // required to declare feasible parameters (d >= 2f+1 etc.). Each distinct
  // (topology, f) pair is checked once — the adversary/word axes multiply
  // scenarios without changing the graph — and the 2f+1 bound uses the
  // capped decision check so the frontier presets (K_64, n = 128) don't pay
  // for exact connectivity they never rely on.
  rng rand(11);
  std::set<std::string> seen;
  for (const scenario& s : all_scenarios()) {
    if (s.topology.kind == topology_kind::erdos_renyi ||
        s.topology.kind == topology_kind::random_regular)
      continue;
    const auto& t = s.topology;
    const std::string key = to_string(t.kind) + ":" + std::to_string(t.n) + ":" +
                            std::to_string(t.param_a) + ":" +
                            std::to_string(t.param_b) + ":" +
                            std::to_string(t.cap_lo) + ":" +
                            std::to_string(t.cap_hi) + ":" + std::to_string(s.f);
    if (!seen.insert(key).second) continue;
    const graph::digraph g = build_topology(s.topology, rand);
    EXPECT_GE(g.universe(), 3 * s.f + 1) << s.name;
    if (s.f > 0) {
      EXPECT_TRUE(graph::global_vertex_connectivity_at_least(g, 2 * s.f + 1))
          << s.name;
    }
  }
}

TEST(Registry, ScalingPresetsExist) {
  // The K_16-class presets this PR unlocks must stay in the catalog.
  for (const char* name : {"k16_dense", "hypercube_d5", "wan_5cluster"})
    EXPECT_NE(find_family(name), nullptr) << name;
  EXPECT_EQ(find_family("k16_dense")->expand().front().topology.n, 16);
  EXPECT_EQ(topology_nodes(find_family("hypercube_d5")->expand().front().topology), 32);
  EXPECT_EQ(topology_nodes(find_family("wan_5cluster")->expand().front().topology), 20);
}

TEST(Registry, N64PresetsPinTheCollapsedClaimBackend) {
  // The n = 64 families exist because the collapsed backend makes their
  // dispute phases polynomial; they must stay pinned to it and keep the
  // raised certification gate that lets the rank checks run at that size.
  for (const char* name : {"k64_dense", "hypercube_d6"}) {
    const scenario_family* fam = find_family(name);
    ASSERT_NE(fam, nullptr) << name;
    for (const scenario& s : fam->expand()) {
      EXPECT_EQ(topology_nodes(s.topology), 64) << s.name;
      EXPECT_EQ(s.claim_backend, bb::claim_backend::collapsed) << s.name;
      EXPECT_GT(s.certify_cost_limit, 1'000'000'000u) << s.name;
    }
  }
  // The three-backend ablation sweeps all engines on one topology.
  const scenario_family* ablation = find_family("ablation-claims");
  ASSERT_NE(ablation, nullptr);
  std::set<bb::claim_backend> seen;
  for (const scenario& s : ablation->expand()) seen.insert(s.claim_backend);
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Registry, FrontierPresetsPinTheLeaveOneOutScale) {
  // K_64-complete and the 128-node hypercube exist because the f = 1
  // leave-one-out certifier and the SIMD row kernels make their rank checks
  // affordable; they must keep the shape that guarantees that path (f = 1,
  // collapsed claims) and k64_complete must keep the measured-scale gate
  // (~3.2e10 GF words) that admits its certification.
  const scenario_family* k64c = find_family("k64_complete");
  ASSERT_NE(k64c, nullptr);
  EXPECT_EQ(k64c->certify_cost_limit, 64'000'000'000u);
  for (const scenario& s : k64c->expand()) {
    EXPECT_EQ(s.topology.kind, topology_kind::complete) << s.name;
    EXPECT_EQ(topology_nodes(s.topology), 64) << s.name;
    EXPECT_EQ(s.f, 1) << s.name;
    EXPECT_EQ(s.claim_backend, bb::claim_backend::collapsed) << s.name;
  }
  const scenario_family* d7 = find_family("hypercube_d7");
  ASSERT_NE(d7, nullptr);
  for (const scenario& s : d7->expand()) {
    EXPECT_EQ(topology_nodes(s.topology), 128) << s.name;
    EXPECT_EQ(s.f, 1) << s.name;
    EXPECT_EQ(s.claim_backend, bb::claim_backend::collapsed) << s.name;
  }
}

TEST(Registry, EveryPresetsCertifyCostEstimateFitsItsLimit) {
  // The session gate skips certification when certify_cost_estimate exceeds
  // the preset's certify_cost_limit, so a preset whose estimate outgrows its
  // limit silently stops exercising the rank checks. Re-validate every
  // distinct (topology, f, limit) in the catalog against the current model
  // (random topologies are built from a fixed seed, like the other sweeps).
  rng rand(11);
  std::set<std::string> seen;
  for (const scenario& s : all_scenarios()) {
    const auto& t = s.topology;
    const std::string key = to_string(t.kind) + ":" + std::to_string(t.n) + ":" +
                            std::to_string(t.param_a) + ":" +
                            std::to_string(t.param_b) + ":" +
                            std::to_string(t.cap_lo) + ":" +
                            std::to_string(t.cap_hi) + ":" + std::to_string(s.f) +
                            ":" + std::to_string(s.certify_cost_limit);
    if (!seen.insert(key).second) continue;
    const graph::digraph g = build_topology(t, rand);
    const core::dispute_record none;
    const auto uk = core::compute_uk(g, s.f, none);
    const auto omega = core::omega_subgraphs(g, s.f, none);
    const std::uint64_t est = core::certify_cost_estimate(
        g, omega, static_cast<int>(core::compute_rho(uk)));
    EXPECT_LE(est, s.certify_cost_limit) << s.name;
  }
}

TEST(Registry, PhaseKingEnginesAreOnlyConfiguredAboveFourF) {
  // The > 4f precondition of both phase-king engines (flag broadcast and
  // claim backend) is a registry-time feasibility rule: an undersized preset
  // would be rejected at session construction, so none may exist. Checked
  // against the topology's node count (every preset runs BB over the whole
  // original network).
  for (const scenario& s : all_scenarios()) {
    const int n = topology_nodes(s.topology);
    if (s.flag_protocol == bb::bb_protocol::phase_king) {
      EXPECT_TRUE(bb::phase_king_admissible(static_cast<std::size_t>(n), s.f))
          << s.name;
    }
    if (s.claim_backend == bb::claim_backend::phase_king) {
      EXPECT_TRUE(bb::phase_king_admissible(static_cast<std::size_t>(n), s.f))
          << s.name;
    }
  }
}

TEST(Registry, ClaimBackendStringsRoundTrip) {
  for (auto b : {bb::claim_backend::auto_select, bb::claim_backend::eig,
                 bb::claim_backend::phase_king, bb::claim_backend::collapsed})
    EXPECT_EQ(claim_backend_from_string(to_string(b)), b);
  EXPECT_THROW(claim_backend_from_string("telepathy"), nab::error);
}

TEST(Registry, TraceCaptureFillsDeterministicTrafficMatrices) {
  // fleet --trace rides on execute_scenario's capture flag: the traffic
  // matrix must be filled, workload-determined (identical across repeats),
  // and absent without the flag so BENCH_runtime.json stays byte-stable.
  const scenario s = select_scenarios("complete").front();
  const run_record traced = execute_scenario(s, 0, 11, /*capture_trace=*/true);
  ASSERT_EQ(traced.traffic.size(),
            static_cast<std::size_t>(traced.nodes) * traced.nodes);
  std::uint64_t total = 0;
  for (std::uint64_t bits : traced.traffic) total += bits;
  EXPECT_GT(total, 0u);

  const run_record again = execute_scenario(s, 0, 11, /*capture_trace=*/true);
  EXPECT_EQ(traced, again);

  run_record untraced = execute_scenario(s, 0, 11);
  EXPECT_TRUE(untraced.traffic.empty());
  // Everything but the trace matrix matches the traced run.
  untraced.traffic = traced.traffic;
  EXPECT_EQ(untraced, traced);
}

TEST(Registry, PipelinedPropagationIsARunnableAxis) {
  // ablation-propagation now carries the Appendix-D pipelined mode; the
  // runner must execute it via core::run_pipelined, fill the pipeline
  // fields, and stay deterministic.
  const auto sweep = select_scenarios("ablation-propagation");
  const scenario* pipelined = nullptr;
  for (const scenario& s : sweep)
    if (s.propagation == core::propagation_mode::pipelined) pipelined = &s;
  ASSERT_NE(pipelined, nullptr);
  EXPECT_EQ(propagation_from_string("pipelined"), core::propagation_mode::pipelined);

  const run_record rec = execute_scenario(*pipelined, 2, 11);
  EXPECT_TRUE(rec.ok()) << rec.scenario;
  EXPECT_GT(rec.pipeline_depth, 1);
  EXPECT_GT(rec.pipeline_speedup, 1.0);  // pipelining must beat sequential
  EXPECT_GT(rec.throughput, 0.0);
  EXPECT_TRUE(rec.corrupt.empty());  // Appendix-D regime is fault-free
  EXPECT_EQ(rec, execute_scenario(*pipelined, 2, 11));

  // The non-pipelined siblings keep pipeline fields zeroed.
  for (const scenario& s : sweep) {
    if (s.propagation == core::propagation_mode::pipelined) continue;
    const run_record other = execute_scenario(s, 0, 11);
    EXPECT_EQ(other.pipeline_depth, 0) << other.scenario;
    EXPECT_EQ(other.pipeline_speedup, 0.0) << other.scenario;
  }

  // Pipelined runs are fault-free by construction; pairing the axis with a
  // non-honest adversary must be rejected, not silently ignored.
  scenario bad = *pipelined;
  bad.adversary = adversary_kind::stealth;
  EXPECT_THROW(execute_scenario(bad, 0, 11), nab::error);
}

}  // namespace
}  // namespace nab::runtime
