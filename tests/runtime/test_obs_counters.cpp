// The obs counters' own contracts at the runtime layer: deterministic
// counters actually populate on real runs (a zero gf_ops on a certified
// run means an instrumentation site was lost), they are bit-identical
// between pooled and unpooled sessions, and span capture stays opt-in so
// BENCH_runtime.json is byte-stable.

#include <gtest/gtest.h>

#include "core/session.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "runtime/runtime.hpp"
#include "sim/faults.hpp"

namespace nab::runtime {
namespace {

TEST(ObsCounters, PopulateOnACertifiedRun) {
  // fig1 runs on the paper's K7-class graphs: small enough to certify, so
  // every GF kernel family and the certifier counters must all fire.
  const std::vector<scenario> sweep = select_scenarios("fig1");
  ASSERT_FALSE(sweep.empty());
  const run_record r = execute_scenario(sweep.front(), 0, 11);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.gf_ops, 0u);
  EXPECT_EQ(r.gf_ops, r.gf_axpy_words + r.gf_scale_words + r.gf_mul_ops +
                          r.gf_rows_eliminated);
  EXPECT_GT(r.gf_axpy_words, 0u);
  EXPECT_GT(r.gf_rows_eliminated, 0u);
  EXPECT_GT(r.cert_subgraphs, 0u);
  // fig1 runs fault-free: omega is the whole graph, so the f = 1
  // leave-one-out certifier must NOT have engaged.
  EXPECT_EQ(r.cert_loo_downdates, 0u);
  EXPECT_GT(r.cache_lookups, 0u);
  // fig1's front scenario is honest: no dispute phase ran, so the headroom
  // gauge keeps its -1 "never exercised" sentinel like the quorum gauges
  // (tests/runtime/test_margins.cpp pins the disputed cases).
  ASSERT_EQ(r.dispute_phases, 0);
  EXPECT_EQ(r.margin_dispute_headroom, -1);
  // Phase wall totals are recorded even without span capture.
  EXPECT_FALSE(r.timing.wall_by_phase.empty());
  bool saw_phase1 = false;
  for (const auto& [phase, secs] : r.timing.wall_by_phase) {
    EXPECT_GE(secs, 0.0);
    saw_phase1 = saw_phase1 || phase == "phase1";
  }
  EXPECT_TRUE(saw_phase1);
}

TEST(ObsCounters, LeaveOneOutCertifierCountsOneDowndatePerSubgraph) {
  // An f = 1 run whose active set sits exactly at target + 1 takes the
  // leave-one-out certifier: every Omega member is checked by a rank
  // downdate of the shared full factorization, never by its own
  // re-factorization, so the two counters must advance in lockstep. K7 at
  // f = 1 (active = 7 = target + 1) is the cheapest registry scenario with
  // that shape.
  const std::vector<scenario> sweep = select_scenarios("complete");
  const scenario* loo = nullptr;
  for (const scenario& s : sweep)
    if (s.topology.n == 7 && s.f == 1 && s.adversary == adversary_kind::honest)
      loo = &s;
  ASSERT_NE(loo, nullptr);
  const run_record r = execute_scenario(*loo, 0, 11);
  ASSERT_TRUE(r.ok()) << r.scenario;
  EXPECT_GT(r.cert_loo_downdates, 0u);
  EXPECT_EQ(r.cert_loo_downdates, r.cert_subgraphs);
  // The leave-one-out path never touches the sparse prefix walk.
  EXPECT_EQ(r.cert_prefix_pushes, 0u);
  EXPECT_EQ(r.cert_prefix_pops, 0u);
  // Counter determinism: an identical re-execution reproduces the record.
  EXPECT_EQ(r, execute_scenario(*loo, 0, 11));
}

TEST(ObsCounters, ClaimTalliesAndMarginsOnDisputedCollapsedRuns) {
  // The collapsed-backend ablation runs adversaries that force dispute
  // phases, so the echo/ready tallies and the quorum-margin gauges engage.
  const std::vector<scenario> sweep = select_scenarios("ablation-claims");
  bool saw_collapsed_dispute = false;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].claim_backend != bb::claim_backend::collapsed) continue;
    const run_record r = execute_scenario(sweep[i], static_cast<int>(i), 5);
    ASSERT_TRUE(r.ok()) << r.scenario;
    if (r.dispute_phases == 0) continue;
    saw_collapsed_dispute = true;
    EXPECT_GT(r.claim_echoes, 0u) << r.scenario;
    EXPECT_GT(r.claim_readys, 0u) << r.scenario;
    // Quorums were met, so the recorded minima are true non-negative slack.
    EXPECT_GE(r.margin_quorum_slack, 0) << r.scenario;
    EXPECT_GE(r.margin_hold_surplus, 0) << r.scenario;
    EXPECT_LE(r.margin_dispute_headroom,
              static_cast<std::int64_t>(r.f) * (r.f + 1));
  }
  EXPECT_TRUE(saw_collapsed_dispute);
}

TEST(ObsCounters, IdenticalAcrossPooledAndUnpooledSessions) {
  // Same contract the arena-equivalence suite pins for outputs, extended to
  // the deterministic counter set: pooling is invisible to everything but
  // the arena_* machine counters.
  const auto run_counted = [](bool pooled) {
    core::session_config cfg;
    cfg.g = graph::complete(7);
    cfg.f = 2;
    cfg.pool_memory = pooled;
    sim::fault_set faults(7, {2, 5});
    obs::collector col;
    obs::scoped_collector scope(&col);
    core::run_session(std::move(cfg), faults, nullptr, /*q=*/3,
                      /*words_per_input=*/16, /*seed=*/0xbeef);
    return col;
  };
  const obs::collector pooled = run_counted(true);
  const obs::collector unpooled = run_counted(false);
  for (int i = 0; i < obs::counter_count; ++i) {
    const auto c = static_cast<obs::counter>(i);
    if (c == obs::counter::arena_allocs || c == obs::counter::arena_pool_hits ||
        c == obs::counter::cache_hits || c == obs::counter::cache_misses)
      continue;  // machine set: allowed (and expected) to differ
    EXPECT_EQ(pooled.value(c), unpooled.value(c)) << obs::counter_name(c);
  }
  for (int i = 0; i < obs::gauge_count; ++i) {
    const auto g = static_cast<obs::gauge>(i);
    EXPECT_EQ(pooled.gauge_value(g), unpooled.gauge_value(g))
        << obs::gauge_name(g);
  }
  // Span structure (names and depths, in order) must match too — modulo the
  // documented omega_cache caveat: fill spans appear only on the run that
  // pays the process-wide miss, which here is the first session.
  const auto protocol_spans = [](const obs::collector& col) {
    std::vector<std::pair<std::string, int>> out;
    for (const obs::span_record& s : col.spans())
      if (s.name.rfind("omega_cache/", 0) != 0) out.emplace_back(s.name, s.depth);
    return out;
  };
  EXPECT_EQ(protocol_spans(pooled), protocol_spans(unpooled));
}

TEST(ObsCounters, SpanCaptureIsOptIn) {
  const std::vector<scenario> sweep = select_scenarios("fig1");
  const run_record bare = execute_scenario(sweep.front(), 0, 11);
  const run_record timed = execute_scenario(sweep.front(), 0, 11,
                                            /*capture_trace=*/false,
                                            /*capture_spans=*/true);
  EXPECT_TRUE(bare.timing.spans.empty());
  ASSERT_FALSE(timed.timing.spans.empty());
  // Capture must not perturb the record: the determinism contract already
  // ignores timing, and the deterministic fields agree exactly.
  EXPECT_EQ(bare, timed);
  // The span list is a forest: ids are positional, parents precede children.
  for (std::size_t i = 0; i < timed.timing.spans.size(); ++i) {
    const obs::span_record& s = timed.timing.spans[i];
    EXPECT_EQ(s.id, static_cast<int>(i));
    EXPECT_LT(s.parent, s.id);
    EXPECT_GE(s.wall_end, s.wall_begin);
  }
}

}  // namespace
}  // namespace nab::runtime
