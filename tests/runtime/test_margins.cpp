// Invariant-margin gauges (run_record::margin_*): honest runs must keep the
// -1 "never exercised" sentinel, every disputed run must record real
// headroom, a hand-computed quorum slack on a small disputed K_7 run must
// match what the collapsed backend records, and the promoted hunted_*
// presets must keep beating every hand-written strategy — bit-identically,
// forever. These gauges are the hunt's fitness function (runtime/hunt.hpp),
// so their semantics are load-bearing twice over.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/runtime.hpp"

namespace nab::runtime {
namespace {

scenario k7_base() {
  scenario s;
  s.name = "margins/k7";
  s.family = "margins";
  s.topology = {.kind = topology_kind::complete, .n = 7, .cap_lo = 1, .cap_hi = 1};
  s.f = 2;
  s.claim_backend = bb::claim_backend::collapsed;
  s.instances = 4;
  s.words = 16;
  return s;
}

TEST(Margins, HonestRunsCarrySentinels) {
  scenario s = k7_base();
  s.adversary = adversary_kind::honest;
  const run_record rec = execute_scenario(s, 0, 1);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.dispute_phases, 0);
  // No dispute phase ran, so no gauge was ever exercised: all three must
  // keep the -1 sentinel, not a stale or zero value.
  EXPECT_EQ(rec.margin_quorum_slack, -1);
  EXPECT_EQ(rec.margin_hold_surplus, -1);
  EXPECT_EQ(rec.margin_dispute_headroom, -1);
}

TEST(Margins, HandComputedSlackOnDisputedK7) {
  // K_7, f = 2, collapsed claim backend, a phase-1 garbler to force the
  // dispute path. The corrupt nodes implement no claim-layer hooks, so the
  // claim broadcast itself runs with honest behavior everywhere:
  //   quorum_slack  = senders - (2f+1)   = 7 - 5 = 2  (all 7 send READY in
  //                                                    the same round)
  //   hold_surplus  = honest holders - (f+1) = (7-2) - 3 = 2
  scenario s = k7_base();
  s.adversary = adversary_kind::p1_garble;
  const run_record rec = execute_scenario(s, 0, 1);
  ASSERT_TRUE(rec.ok());
  ASSERT_GT(rec.dispute_phases, 0);
  EXPECT_EQ(rec.margin_quorum_slack, 2);
  EXPECT_EQ(rec.margin_hold_surplus, 2);
  // f(f+1) = 6 is the paper's dispute-phase bound; at least one phase ran.
  EXPECT_GE(rec.margin_dispute_headroom, 0);
  EXPECT_LT(rec.margin_dispute_headroom, 6);
}

TEST(Margins, DisputedRunsAlwaysRecordGauges) {
  // Every disputed preset x adversary combination must record real margins:
  // dispute_headroom whenever a dispute phase ran, and the two quorum
  // gauges whenever the collapsed backend carried the claims. The -1
  // sentinel escaping into a disputed run would silently blind the hunt.
  const std::vector<scenario> sweep = select_scenarios(
      "complete-f2,ablation-claims,hunted_k7_quorum,hunted_k7_hold,"
      "hunted_k9_quorum,hunted_k9_hold");
  const auto records = run_sweep(sweep, 1, 2);
  int disputed = 0;
  int collapsed_disputed = 0;
  for (const run_record& rec : records) {
    ASSERT_TRUE(rec.ok()) << rec.scenario;
    if (rec.dispute_phases == 0) continue;
    ++disputed;
    EXPECT_GE(rec.margin_dispute_headroom, 0) << rec.scenario;
    if (rec.claim_backend == "collapsed") {
      ++collapsed_disputed;
      EXPECT_GE(rec.margin_quorum_slack, 0) << rec.scenario;
      EXPECT_GE(rec.margin_hold_surplus, 0) << rec.scenario;
    }
  }
  // The selection must actually exercise both properties.
  EXPECT_GE(disputed, 10);
  EXPECT_GE(collapsed_disputed, 6);
}

TEST(Margins, HuntedPresetsBeatEveryHandWrittenStrategy) {
  // The promotion contract (docs/HUNT.md): each hunted_* preset drives its
  // target gauge strictly below the minimum any hand-written adversary
  // records on the same topology. The margins are exact — a hunted
  // genome's corrupt set and claim-layer strike pattern are pure functions
  // of the genome, so these values reproduce at every sweep seed.
  const auto hunted = run_sweep(
      select_scenarios(
          "hunted_k7_quorum,hunted_k7_hold,hunted_k9_quorum,hunted_k9_hold"),
      1, 1);
  ASSERT_EQ(hunted.size(), 4u);
  for (const run_record& rec : hunted) ASSERT_TRUE(rec.ok()) << rec.scenario;

  EXPECT_EQ(hunted[0].margin_quorum_slack, 0);  // hunted_k7_quorum
  EXPECT_EQ(hunted[1].margin_hold_surplus, 0);  // hunted_k7_hold
  EXPECT_EQ(hunted[2].margin_quorum_slack, 2);  // hunted_k9_quorum
  EXPECT_EQ(hunted[3].margin_hold_surplus, 1);  // hunted_k9_hold
  EXPECT_EQ(hunted[3].margin_quorum_slack, 2);

  // Hand-written baselines on the same topologies. On K_7 the hand-written
  // presets never even reach the collapsed backend's quorum gauges; the
  // honest-behavior values (HandComputedSlackOnDisputedK7) are 2 and 2.
  // On K_9, take the true minimum across the ablation-claims grid.
  std::int64_t k9_slack = 1'000'000;
  std::int64_t k9_hold = 1'000'000;
  for (const run_record& rec : run_sweep(select_scenarios("ablation-claims"), 1, 2)) {
    if (rec.margin_quorum_slack >= 0)
      k9_slack = std::min(k9_slack, rec.margin_quorum_slack);
    if (rec.margin_hold_surplus >= 0)
      k9_hold = std::min(k9_hold, rec.margin_hold_surplus);
  }
  EXPECT_LT(hunted[0].margin_quorum_slack, 2);
  EXPECT_LT(hunted[1].margin_hold_surplus, 2);
  EXPECT_LT(hunted[2].margin_quorum_slack, k9_slack);
  EXPECT_LT(hunted[3].margin_hold_surplus, k9_hold);
}

TEST(Margins, HuntedPresetsReplayBitIdentically) {
  // A promoted genome is a regression test, so its replay must be exact:
  // same records from repeated executions and across jobs counts.
  const std::vector<scenario> sweep = select_scenarios(
      "hunted_k7_quorum,hunted_k7_hold,hunted_k9_quorum,hunted_k9_hold");
  const auto once = run_sweep(sweep, 1, 1);
  const auto again = run_sweep(sweep, 1, 1);
  const auto parallel = run_sweep(sweep, 1, 4);
  EXPECT_EQ(once, again);
  EXPECT_EQ(once, parallel);
}

}  // namespace
}  // namespace nab::runtime
