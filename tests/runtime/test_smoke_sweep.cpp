// Thread-sanitizer-targeted smoke sweep: runs a representative slice of the
// registry at high parallelism and asserts every paper invariant per run.
// Build with -DNAB_SANITIZE=thread to get the data-race check the runtime's
// "embarrassingly parallel" claim rests on; without instrumentation it still
// exercises the executor's stealing paths and the invariant evaluation.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "runtime/runtime.hpp"
#include "util/error.hpp"

namespace nab::runtime {
namespace {

TEST(SmokeSweep, RepresentativeSliceHoldsAllInvariantsUnderParallelism) {
  const std::vector<scenario> sweep =
      select_scenarios("complete,hypercube,clustered-wan,rotating-sources");
  ASSERT_GE(sweep.size(), 20u);
  const auto records = run_sweep(sweep, 5, 8);
  ASSERT_EQ(records.size(), sweep.size());
  for (const run_record& r : records) {
    EXPECT_TRUE(r.agreement) << r.scenario;
    EXPECT_TRUE(r.validity) << r.scenario;
    EXPECT_TRUE(r.dispute_sound) << r.scenario;
    EXPECT_TRUE(r.conviction_sound) << r.scenario;
    EXPECT_TRUE(r.dispute_bound) << r.scenario;
    EXPECT_GT(r.throughput, 0.0) << r.scenario;
    EXPECT_EQ(r.run_index, static_cast<int>(&r - records.data()));
  }
  const sweep_summary s = summarize(records);
  EXPECT_EQ(s.failed_runs, 0);
  EXPECT_EQ(s.runs, static_cast<int>(sweep.size()));
}

TEST(SmokeSweep, StealthAdversaryRealizesDisputesWithoutBreakingSoundness) {
  const std::vector<scenario> sweep = select_scenarios("complete-f2");
  const auto records = run_sweep(sweep, 3, 4);
  int total_disputes = 0;
  for (const run_record& r : records) {
    EXPECT_TRUE(r.ok()) << r.scenario;
    total_disputes += r.disputes;
  }
  // The f=2 coalition families include stealth/dispute-farm strategies whose
  // entire purpose is manufacturing dispute evidence.
  EXPECT_GT(total_disputes, 0);
}

TEST(Executor, EveryIndexRunsExactlyOnce) {
  for (int jobs : {1, 2, 7, 64}) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h = 0;
    parallel_for_each_index(jobs, hits.size(),
                            [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(Executor, EmptyAndSingletonCountsAreHandled) {
  parallel_for_each_index(4, 0, [](std::size_t) { FAIL(); });
  int calls = 0;
  parallel_for_each_index(4, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Executor, FirstFailingIndexWinsExceptionPropagation) {
  try {
    parallel_for_each_index(4, 50, [&](std::size_t i) {
      if (i == 13 || i == 31) throw error("boom at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const error& e) {
    EXPECT_STREQ(e.what(), "boom at 13");
  }
}

TEST(Executor, WorkStealingDrainsImbalancedLoads) {
  // One pathological heavy index dealt to worker 0; stealing must keep the
  // remaining 63 indices flowing through the other workers either way —
  // observable here as plain completion (no deadlock, all indices run).
  std::atomic<int> done{0};
  parallel_for_each_index(4, 64, [&](std::size_t i) {
    if (i == 0)
      for (volatile int spin = 0; spin < 2'000'000; ++spin) {
      }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace nab::runtime
