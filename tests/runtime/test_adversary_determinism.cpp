// Seed-determinism of every adversary strategy: the same (kind, seed)
// produces byte-identical run_records no matter how the run is hosted —
// pooled or unpooled session memory, one worker or many. This is the
// property the hunt (runtime/hunt.hpp) leans on hardest: a genome's fitness
// is only meaningful if replaying it is exact, and the chaos fuzzer is only
// a regression tool if its chaos is reproducible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/runtime.hpp"

namespace nab::runtime {
namespace {

/// Every make_adversary kind, exercised on a topology where it is legal.
/// K_7 with f = 2 admits them all (equivocate pins the source corrupt).
std::vector<scenario> all_kind_scenarios(bool pool_memory) {
  const std::vector<adversary_kind> kinds = {
      adversary_kind::honest,      adversary_kind::p1_garble,
      adversary_kind::equivocate,  adversary_kind::p2_lie,
      adversary_kind::false_flag,  adversary_kind::stealth,
      adversary_kind::dispute_farm, adversary_kind::chaos,
      adversary_kind::hunted,
  };
  std::vector<scenario> sweep;
  for (adversary_kind kind : kinds) {
    scenario s;
    s.name = "advdet/" + to_string(kind);
    s.family = "advdet";
    s.topology = {.kind = topology_kind::complete, .n = 7, .cap_lo = 1,
                  .cap_hi = 1};
    s.f = 2;
    s.adversary = kind;
    s.claim_backend = bb::claim_backend::collapsed;
    s.instances = 3;
    s.words = 8;
    s.pool_memory = pool_memory;
    if (kind == adversary_kind::hunted)
      s.genome =
          "p1_source=0,p1_forward=200,p2_lie=60,flag_flip=60,claim_tamper=40,"
          "input_lie=0,digest_equivocate=100,digest_garble=0,echo_suppress=80,"
          "ready_suppress=100,retrieval_forge=40,xor_mask=0,victim_mode=0,"
          "corrupt_source=0,corrupt_salt=9,noise_salt=3";
    sweep.push_back(std::move(s));
  }
  return sweep;
}

TEST(AdversaryDeterminism, SameKindAndSeedReplaysByteIdentically) {
  const std::vector<scenario> sweep = all_kind_scenarios(/*pool_memory=*/true);
  for (const scenario& s : sweep) {
    const run_record a = execute_scenario(s, 5, 1234);
    const run_record b = execute_scenario(s, 5, 1234);
    EXPECT_EQ(a, b) << s.name;
    ASSERT_TRUE(a.ok()) << s.name;
  }
}

TEST(AdversaryDeterminism, PooledAndUnpooledRecordsAgree) {
  // pool_memory changes every allocation path in the session (arena reuse
  // vs heap) but must never change a single recorded bit — including the
  // chaos adversary's rng consumption and the obs counters.
  const auto pooled = all_kind_scenarios(true);
  const auto unpooled = all_kind_scenarios(false);
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    run_record a = execute_scenario(pooled[i], 2, 77);
    run_record b = execute_scenario(unpooled[i], 2, 77);
    // The arena tallies legitimately differ between the two modes, but they
    // live in run_timing (excluded from equality by design); every
    // protocol-visible field is covered by operator==. The record echoes
    // its scenario name, which embeds nothing about pooling — align it so
    // the comparison covers everything else.
    ASSERT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a, b) << pooled[i].name;
  }
}

TEST(AdversaryDeterminism, JobCountsNeverLeakIntoAdversaryRuns) {
  const std::vector<scenario> sweep = all_kind_scenarios(/*pool_memory=*/true);
  const auto one = run_sweep(sweep, 9, 1);
  const auto many = run_sweep(sweep, 9, 6);
  EXPECT_EQ(one, many);
}

TEST(AdversaryDeterminism, DifferentSeedsChangeSeededStrategies) {
  // The complement: chaos at two different seeds must actually diverge
  // somewhere (otherwise "seeded" is an illusion and the hunt's noise_salt
  // gene is dead weight).
  scenario s = all_kind_scenarios(true)[7];
  ASSERT_EQ(s.adversary, adversary_kind::chaos);
  const run_record a = execute_scenario(s, 0, 1);
  const run_record b = execute_scenario(s, 0, 2);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace nab::runtime
