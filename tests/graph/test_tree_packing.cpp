#include "graph/tree_packing.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

/// Checks the Edmonds packing invariants: every tree spans the active nodes
/// as an arborescence rooted at `root`, and combined edge usage respects
/// capacities.
void check_arborescence_packing(const digraph& g, node_id root,
                                const std::vector<spanning_tree>& trees) {
  const auto nodes = g.active_nodes();
  std::vector<capacity_t> usage(
      static_cast<std::size_t>(g.universe()) * g.universe(), 0);
  for (const spanning_tree& t : trees) {
    ASSERT_EQ(t.edges.size(), nodes.size() - 1) << "tree must span";
    const auto parents = t.parents(g.universe());
    EXPECT_EQ(parents[static_cast<std::size_t>(root)], -1);
    for (node_id v : nodes) {
      if (v == root) continue;
      // Walk to the root; must terminate.
      node_id cur = v;
      int guard = 0;
      while (cur != root) {
        ASSERT_LE(++guard, g.universe()) << "cycle in arborescence";
        cur = parents[static_cast<std::size_t>(cur)];
        ASSERT_GE(cur, 0) << "node " << v << " not connected to root";
      }
    }
    for (const edge& e : t.edges) {
      EXPECT_TRUE(g.has_edge(e.from, e.to));
      usage[static_cast<std::size_t>(e.from) * g.universe() + e.to] += 1;
    }
  }
  for (const edge& e : g.edges())
    EXPECT_LE(usage[static_cast<std::size_t>(e.from) * g.universe() + e.to], e.cap)
        << "capacity violated on " << e.from << "->" << e.to;
}

TEST(TreePacking, PaperFig2PacksTwoTrees) {
  // The worked example of Figure 2(c): two unit-capacity spanning trees,
  // link (1,2) used by both.
  const digraph g = paper_fig2();
  const auto trees = pack_arborescences(g, 0, 2);
  check_arborescence_packing(g, 0, trees);
  capacity_t link01_use = 0;
  for (const auto& t : trees)
    for (const edge& e : t.edges)
      if (e.from == 0 && e.to == 1) ++link01_use;
  EXPECT_EQ(link01_use, 2);  // both trees must cross the capacity-2 link
}

TEST(TreePacking, PaperFig1aPacksGammaTrees) {
  const digraph g = paper_fig1a();
  const auto trees = pack_arborescences(g, 0, 2);  // gamma = 2
  check_arborescence_packing(g, 0, trees);
}

TEST(TreePacking, InfeasibleRequestThrows) {
  const digraph g = paper_fig2();  // gamma = 2
  EXPECT_THROW(pack_arborescences(g, 0, 3), nab::error);
}

TEST(TreePacking, CompleteGraphPacksNMinusOne) {
  const digraph g = complete(5, 1);
  // broadcast mincut from any node of K5 with unit links is 4.
  ASSERT_EQ(broadcast_mincut(g, 0), 4);
  const auto trees = pack_arborescences(g, 0, 4);
  check_arborescence_packing(g, 0, trees);
}

TEST(TreePacking, RandomGraphsPackUpToGamma) {
  rng rand(31);
  for (int trial = 0; trial < 12; ++trial) {
    const digraph g = erdos_renyi(6, 0.5, 1, 3, rand);
    const auto gamma = static_cast<int>(broadcast_mincut(g, 0));
    ASSERT_GE(gamma, 1);
    const auto trees = pack_arborescences(g, 0, gamma);
    check_arborescence_packing(g, 0, trees);
  }
}

TEST(TreePacking, LovaszExactPathPacksEverything) {
  // Exercise the exact construction directly (the hybrid's fast path would
  // otherwise shadow it).
  rng rand(37);
  for (int trial = 0; trial < 8; ++trial) {
    const digraph g = erdos_renyi(6, 0.5, 1, 3, rand);
    const auto gamma = static_cast<int>(broadcast_mincut(g, 0));
    ASSERT_GE(gamma, 1);
    const auto trees = pack_arborescences_lovasz(g, 0, gamma);
    check_arborescence_packing(g, 0, trees);
  }
  const auto trees = pack_arborescences_lovasz(paper_fig2(), 0, 2);
  check_arborescence_packing(paper_fig2(), 0, trees);
}

TEST(TreePacking, IncrementalMatchesReferenceOnRegistryShapes) {
  // The incremental-flow packer against the from-scratch reference on the
  // registry's topology shapes: both must produce a full, valid packing of
  // gamma edge-disjoint arborescences (identical tree count; the greedy
  // biases differ, so edge sets may not).
  rng rand(2024);
  const std::vector<digraph> graphs = {
      paper_fig1a(),       paper_fig2(),          complete(7, 2),
      ring(5, 2),          ring(8, 1),            hypercube(3, 2),
      hypercube(5, 2),     clustered_wan(3, 3, 2, 1),
      random_regular(10, 6, 1, 2, rand)};
  for (const digraph& g : graphs) {
    const auto gamma = static_cast<int>(broadcast_mincut(g, 0));
    ASSERT_GE(gamma, 1);
    const auto fast = pack_arborescences(g, 0, gamma);
    const auto ref = pack_arborescences_reference(g, 0, gamma);
    ASSERT_EQ(fast.size(), static_cast<std::size_t>(gamma));
    ASSERT_EQ(ref.size(), fast.size());
    check_arborescence_packing(g, 0, fast);
    check_arborescence_packing(g, 0, ref);
  }
}

TEST(TreePacking, IncrementalMatchesReferenceOnRandomGraphs) {
  // Erdos-Renyi fuzz: hybrid and reference both deliver full valid packings,
  // and the certificate-driven exact construction (forced directly, since
  // the hybrid's greedy fast path usually shadows it) packs gamma trees too.
  rng rand(71);
  int exercised = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const digraph g = erdos_renyi(7, 0.5, 1, 3, rand);
    const auto gamma = static_cast<int>(broadcast_mincut(g, 0));
    if (gamma < 1) continue;
    ++exercised;
    const auto fast = pack_arborescences(g, 0, gamma);
    const auto ref = pack_arborescences_reference(g, 0, gamma);
    ASSERT_EQ(fast.size(), ref.size());
    check_arborescence_packing(g, 0, fast);
    check_arborescence_packing(g, 0, ref);
    const auto inc = pack_arborescences_lovasz(g, 0, gamma);
    check_arborescence_packing(g, 0, inc);
  }
  ASSERT_GE(exercised, 8) << "fuzz must exercise real packings";
}

TEST(TreePacking, StatsCountCertificateWork) {
  pack_stats stats;
  const digraph g = hypercube(4, 2);
  const auto gamma = static_cast<int>(broadcast_mincut(g, 0));
  const auto trees = pack_arborescences(g, 0, gamma, &stats);
  ASSERT_EQ(trees.size(), static_cast<std::size_t>(gamma));
  // Feasibility certification alone visits every sink and augments each
  // certificate up to gamma.
  EXPECT_GE(stats.safety_checks, g.active_nodes().size() - 1);
  EXPECT_GE(stats.flow_augmentations,
            static_cast<std::uint64_t>(gamma) * (g.active_nodes().size() - 1));
}

TEST(TreePacking, HighCapacityEdgeReusedAcrossTrees) {
  // Two nodes joined by a fat edge: k trees all use it.
  digraph g(2);
  g.add_edge(0, 1, 5);
  const auto trees = pack_arborescences(g, 0, 5);
  ASSERT_EQ(trees.size(), 5u);
  for (const auto& t : trees) {
    ASSERT_EQ(t.edges.size(), 1u);
    EXPECT_EQ(t.edges[0].from, 0);
    EXPECT_EQ(t.edges[0].to, 1);
  }
}

TEST(TreePacking, UndirectedGreedyPacksHalfMincutOnPaperGraphs) {
  // Nash-Williams: floor(U/2) trees exist. Fig 1(a) undirected has U = 4
  // for the full graph? Each bidirectional unit pair gives weight 2; the
  // weakest pair cut is 4 (node 1 has undirected degree 2+2). U/2 = 2.
  const ugraph u = to_undirected(paper_fig1a());
  rng rand(5);
  const capacity_t cut = pairwise_min_cut(u);
  const auto trees = pack_undirected_trees(u, static_cast<int>(cut / 2), rand);
  ASSERT_FALSE(trees.empty());
  for (const auto& t : trees) EXPECT_EQ(t.edges.size(), u.active_nodes().size() - 1);
}

TEST(TreePacking, UndirectedGreedyRespectsMultiplicity) {
  const ugraph u = to_undirected(complete(5, 2));  // weight 4 per pair
  rng rand(6);
  const auto trees = pack_undirected_trees(u, 4, rand);
  ASSERT_FALSE(trees.empty());
  std::vector<int> use(25, 0);
  for (const auto& t : trees)
    for (const edge& e : t.edges) {
      ++use[static_cast<std::size_t>(e.from) * 5 + e.to];
      ++use[static_cast<std::size_t>(e.to) * 5 + e.from];
    }
  for (node_id a = 0; a < 5; ++a)
    for (node_id b = 0; b < 5; ++b)
      EXPECT_LE(use[static_cast<std::size_t>(a) * 5 + b], 4);
}

TEST(TreePacking, ParentsViewRoundTrips) {
  spanning_tree t;
  t.edges = {{0, 2, 1}, {2, 1, 1}};
  const auto p = t.parents(3);
  EXPECT_EQ(p[0], -1);
  EXPECT_EQ(p[2], 0);
  EXPECT_EQ(p[1], 2);
}

}  // namespace
}  // namespace nab::graph
