#include "graph/topology_io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/error.hpp"

namespace nab::graph {
namespace {

TEST(TopologyIo, ParsesDirectedAndBidirectional) {
  const digraph g = parse_topology_text(
      "# comment line\n"
      "nodes 3\n"
      "edge 0 1 5\n"
      "biedge 1 2 2  # trailing comment\n");
  EXPECT_EQ(g.universe(), 3);
  EXPECT_EQ(g.cap(0, 1), 5);
  EXPECT_EQ(g.cap(1, 0), 0);
  EXPECT_EQ(g.cap(1, 2), 2);
  EXPECT_EQ(g.cap(2, 1), 2);
}

TEST(TopologyIo, BlankLinesAndCommentsIgnored) {
  const digraph g = parse_topology_text("\n\n# header\nnodes 2\n\nedge 0 1 1\n\n");
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST(TopologyIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_topology_text(""), nab::error);                       // no nodes
  EXPECT_THROW(parse_topology_text("edge 0 1 1\n"), nab::error);           // edge first
  EXPECT_THROW(parse_topology_text("nodes 0\n"), nab::error);              // empty graph
  EXPECT_THROW(parse_topology_text("nodes 2\nnodes 3\n"), nab::error);     // dup nodes
  EXPECT_THROW(parse_topology_text("nodes 2\nedge 0 2 1\n"), nab::error);  // id range
  EXPECT_THROW(parse_topology_text("nodes 2\nedge 0 0 1\n"), nab::error);  // self-loop
  EXPECT_THROW(parse_topology_text("nodes 2\nedge 0 1 0\n"), nab::error);  // cap 0
  EXPECT_THROW(parse_topology_text("nodes 2\nedge 0 1\n"), nab::error);    // missing cap
  EXPECT_THROW(parse_topology_text("nodes 2\nfrobnicate\n"), nab::error);  // directive
}

TEST(TopologyIo, FormatParseRoundTrip) {
  const digraph original = paper_fig2();
  const digraph parsed = parse_topology_text(format_topology(original));
  EXPECT_EQ(parsed.universe(), original.universe());
  EXPECT_EQ(parsed.edges(), original.edges());
}

TEST(TopologyIo, RoundTripPreservesGenerators) {
  for (const digraph& g : {complete(5, 3), ring(6, 2), dumbbell(6, 4, 1)}) {
    EXPECT_EQ(parse_topology_text(format_topology(g)).edges(), g.edges());
  }
}

}  // namespace
}  // namespace nab::graph
