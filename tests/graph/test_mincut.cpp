#include "graph/mincut.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

/// Brute-force global min cut: min over all pairs of undirected max-flow.
capacity_t brute_force_min_pair_cut(const ugraph& g) {
  const auto nodes = g.active_nodes();
  capacity_t best = -1;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const capacity_t c = min_cut_value_undirected(g, nodes[i], nodes[j]);
      if (best < 0 || c < best) best = c;
    }
  return best < 0 ? 0 : best;
}

TEST(StoerWagner, TriangleUniform) {
  ugraph u(3);
  u.add_weight(0, 1, 1);
  u.add_weight(1, 2, 1);
  u.add_weight(0, 2, 1);
  EXPECT_EQ(global_min_cut(u).value, 2);
}

TEST(StoerWagner, PathCutsAtWeakestLink) {
  ugraph u(4);
  u.add_weight(0, 1, 5);
  u.add_weight(1, 2, 2);
  u.add_weight(2, 3, 7);
  const global_cut cut = global_min_cut(u);
  EXPECT_EQ(cut.value, 2);
  // The cut side must be {0,1} or {2,3}.
  const bool ok = cut.side == std::vector<node_id>{0, 1} ||
                  cut.side == std::vector<node_id>{2, 3};
  EXPECT_TRUE(ok);
}

TEST(StoerWagner, DisconnectedGraphHasZeroCut) {
  ugraph u(4);
  u.add_weight(0, 1, 3);
  u.add_weight(2, 3, 3);
  EXPECT_EQ(global_min_cut(u).value, 0);
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  rng rand(99);
  for (int trial = 0; trial < 25; ++trial) {
    const digraph g = erdos_renyi(7, 0.5, 1, 6, rand);
    const ugraph u = to_undirected(g);
    EXPECT_EQ(global_min_cut(u).value, brute_force_min_pair_cut(u)) << "trial " << trial;
  }
}

TEST(StoerWagner, PaperFig1aUndirectedValues) {
  // Undirected version of Fig 1(a): every bidirectional unit pair becomes
  // weight 2. The paper's example (n=4, f=1, nodes 2,3 in dispute):
  // Omega_k = { {1,2,4}, {1,3,4} } and U_k, the min over both subgraphs of
  // the pairwise min cut, equals 2. Subgraph {1,2,4} is the 2-path through
  // node 1 (cut 2); subgraph {1,3,4} is a weight-2 triangle (cut 4).
  const digraph g = paper_fig1b();
  const ugraph u = to_undirected(g);
  const capacity_t c124 = pairwise_min_cut(u.induced({0, 1, 3}));
  const capacity_t c134 = pairwise_min_cut(u.induced({0, 2, 3}));
  EXPECT_EQ(c124, 2);
  EXPECT_EQ(c134, 4);
  EXPECT_EQ(std::min(c124, c134), 2);  // the paper's U_k
}

TEST(StoerWagner, CutSidePartitionsActiveNodes) {
  rng rand(7);
  const digraph g = erdos_renyi(8, 0.4, 1, 4, rand);
  const ugraph u = to_undirected(g);
  const global_cut cut = global_min_cut(u);
  EXPECT_GE(cut.side.size(), 1u);
  EXPECT_LT(cut.side.size(), static_cast<std::size_t>(u.active_count()));
  // Verify reported value equals the actual crossing weight.
  capacity_t crossing = 0;
  for (const edge& e : u.edges()) {
    const bool a = std::find(cut.side.begin(), cut.side.end(), e.from) != cut.side.end();
    const bool b = std::find(cut.side.begin(), cut.side.end(), e.to) != cut.side.end();
    if (a != b) crossing += e.cap;
  }
  EXPECT_EQ(crossing, cut.value);
}

TEST(StoerWagner, CompleteGraphCutIsDegree) {
  const digraph g = complete(6, 1);  // bidirectional unit => undirected weight 2
  EXPECT_EQ(global_min_cut(to_undirected(g)).value, 2 * 5);
}

}  // namespace
}  // namespace nab::graph
