// Parameterized brute-force cross-checks of the graph substrate: Dinic
// against exhaustive cut enumeration, vertex connectivity against exhaustive
// separator search, Gomory-Hu against direct flows, Stoer-Wagner against
// pairwise flows, and Edmonds packing feasibility — across seeded random
// graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

/// Exhaustive s-t min cut: iterate every subset containing s, excluding t.
capacity_t brute_force_st_cut(const digraph& g, node_id s, node_id t) {
  const auto nodes = g.active_nodes();
  std::vector<node_id> others;
  for (node_id v : nodes)
    if (v != s && v != t) others.push_back(v);
  capacity_t best = std::numeric_limits<capacity_t>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << others.size()); ++mask) {
    std::vector<bool> in_s(static_cast<std::size_t>(g.universe()), false);
    in_s[static_cast<std::size_t>(s)] = true;
    for (std::size_t i = 0; i < others.size(); ++i)
      if (mask & (std::uint64_t{1} << i)) in_s[static_cast<std::size_t>(others[i])] = true;
    capacity_t cut = 0;
    for (const edge& e : g.edges())
      if (in_s[static_cast<std::size_t>(e.from)] && !in_s[static_cast<std::size_t>(e.to)])
        cut += e.cap;
    best = std::min(best, cut);
  }
  return best;
}

/// Exhaustive vertex connectivity: smallest removal set disconnecting s
/// from t (directed), capped at n.
int brute_force_vertex_connectivity(const digraph& g, node_id s, node_id t) {
  if (g.has_edge(s, t)) {
    // Remove the direct edge and recurse conceptually: the split-graph
    // definition counts it as one extra disjoint path.
    digraph g2 = g;
    g2.remove_edge(s, t);
    return 1 + brute_force_vertex_connectivity(g2, s, t);
  }
  const auto nodes = g.active_nodes();
  std::vector<node_id> others;
  for (node_id v : nodes)
    if (v != s && v != t) others.push_back(v);
  auto reaches = [&](const digraph& h) {
    // BFS s -> t.
    std::vector<bool> seen(static_cast<std::size_t>(h.universe()), false);
    std::vector<node_id> queue{s};
    seen[static_cast<std::size_t>(s)] = true;
    while (!queue.empty()) {
      const node_id v = queue.back();
      queue.pop_back();
      if (v == t) return true;
      for (node_id w : h.out_neighbors(v))
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          queue.push_back(w);
        }
    }
    return false;
  };
  for (std::size_t k = 0; k <= others.size(); ++k) {
    // Try every removal subset of size k.
    std::vector<std::size_t> idx(k);
    for (std::size_t i = 0; i < k; ++i) idx[i] = i;
    while (true) {
      digraph h = g;
      for (std::size_t i : idx) h.remove_node(others[i]);
      if (!reaches(h)) return static_cast<int>(k);
      // Next combination.
      std::size_t pos = k;
      while (pos > 0) {
        --pos;
        if (idx[pos] + (k - pos) < others.size()) {
          ++idx[pos];
          for (std::size_t j = pos + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
          break;
        }
        if (pos == 0) goto next_k;
      }
      if (k == 0) break;
    }
  next_k:;
  }
  return static_cast<int>(others.size()) + 1;  // unseparable
}

class GraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphProperty, DinicMatchesBruteForceCuts) {
  rng rand(GetParam());
  const digraph g = erdos_renyi(6, 0.5, 1, 7, rand);
  for (node_id t = 1; t < 6; ++t)
    EXPECT_EQ(min_cut_value(g, 0, t), brute_force_st_cut(g, 0, t)) << "t=" << t;
}

TEST_P(GraphProperty, VertexConnectivityMatchesBruteForce) {
  rng rand(GetParam() ^ 0x11);
  const digraph g = erdos_renyi(6, 0.45, 1, 2, rand);
  for (node_id t : {1, 3, 5})
    EXPECT_EQ(vertex_connectivity(g, 0, t), brute_force_vertex_connectivity(g, 0, t))
        << "t=" << t;
}

TEST_P(GraphProperty, GomoryHuMatchesDirectFlows) {
  rng rand(GetParam() ^ 0x22);
  const ugraph u = to_undirected(erdos_renyi(7, 0.5, 1, 5, rand));
  const gomory_hu_tree tree(u);
  const auto nodes = u.active_nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      EXPECT_EQ(tree.min_cut(nodes[i], nodes[j]),
                min_cut_value_undirected(u, nodes[i], nodes[j]));
}

TEST_P(GraphProperty, StoerWagnerIsMinOfGomoryHu) {
  rng rand(GetParam() ^ 0x33);
  const ugraph u = to_undirected(erdos_renyi(7, 0.5, 1, 4, rand));
  EXPECT_EQ(global_min_cut(u).value, gomory_hu_tree(u).minimum_pair_cut());
}

TEST_P(GraphProperty, EdmondsPackingAlwaysFeasibleAtGamma) {
  rng rand(GetParam() ^ 0x44);
  const digraph g = erdos_renyi(6, 0.5, 1, 3, rand);
  const auto gamma = broadcast_mincut(g, 0);
  ASSERT_GE(gamma, 1);
  const auto trees = pack_arborescences(g, 0, static_cast<int>(gamma));
  ASSERT_EQ(trees.size(), static_cast<std::size_t>(gamma));
  // Validate capacities and spanning per tree.
  std::vector<capacity_t> use(static_cast<std::size_t>(36), 0);
  for (const auto& t : trees) {
    EXPECT_EQ(t.edges.size(), g.active_nodes().size() - 1);
    for (const edge& e : t.edges) {
      EXPECT_TRUE(g.has_edge(e.from, e.to));
      use[static_cast<std::size_t>(e.from) * 6 + e.to] += 1;
    }
  }
  for (const edge& e : g.edges())
    EXPECT_LE(use[static_cast<std::size_t>(e.from) * 6 + e.to], e.cap);
}

TEST_P(GraphProperty, UndirectedPackingReachesNashWilliamsBound) {
  rng rand(GetParam() ^ 0x55);
  const ugraph u = to_undirected(erdos_renyi(6, 0.6, 1, 3, rand));
  const capacity_t cut = pairwise_min_cut(u);
  if (cut < 2) GTEST_SKIP() << "no tree guaranteed";
  rng pack_rand(GetParam());
  const auto trees =
      pack_undirected_trees(u, static_cast<int>(cut / 2), pack_rand, 256);
  EXPECT_FALSE(trees.empty()) << "Nash-Williams guarantees floor(U/2) trees";
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace nab::graph
