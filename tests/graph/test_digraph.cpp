#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace nab::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  digraph g(5);
  EXPECT_EQ(g.universe(), 5);
  EXPECT_EQ(g.active_count(), 5);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_EQ(g.total_capacity(), 0);
}

TEST(Digraph, AddEdgeAccumulatesCapacity) {
  digraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.cap(0, 1), 5);
  EXPECT_EQ(g.cap(1, 0), 0);
}

TEST(Digraph, BidirectionalAddsBoth) {
  digraph g(3);
  g.add_bidirectional(1, 2, 4);
  EXPECT_EQ(g.cap(1, 2), 4);
  EXPECT_EQ(g.cap(2, 1), 4);
}

TEST(Digraph, RemoveEdgePairClearsBothDirections) {
  digraph g(3);
  g.add_bidirectional(0, 1, 1);
  g.remove_edge_pair(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Digraph, RemoveNodeDropsIncidentEdges) {
  digraph g(4);
  g.add_bidirectional(0, 1, 1);
  g.add_bidirectional(1, 2, 1);
  g.add_bidirectional(2, 3, 1);
  g.remove_node(1);
  EXPECT_FALSE(g.is_active(1));
  EXPECT_EQ(g.active_count(), 3);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.active_nodes(), (std::vector<node_id>{0, 2, 3}));
}

TEST(Digraph, InducedKeepsIdsAndDropsOthers) {
  digraph g(4);
  g.add_bidirectional(0, 1, 1);
  g.add_bidirectional(1, 2, 2);
  g.add_bidirectional(2, 3, 3);
  const digraph h = g.induced({0, 2, 3});
  EXPECT_EQ(h.universe(), 4);
  EXPECT_FALSE(h.is_active(1));
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(h.has_edge(0, 1));
  // Original untouched.
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Digraph, NeighborsListActiveOnly) {
  digraph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(3, 0, 1);
  EXPECT_EQ(g.out_neighbors(0), (std::vector<node_id>{1, 2}));
  EXPECT_EQ(g.in_neighbors(0), (std::vector<node_id>{3}));
  g.remove_node(2);
  EXPECT_EQ(g.out_neighbors(0), (std::vector<node_id>{1}));
}

TEST(Digraph, EdgesAreDeterministicallyOrdered) {
  digraph g(3);
  g.add_edge(2, 0, 1);
  g.add_edge(0, 1, 1);
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (edge{0, 1, 1}));
  EXPECT_EQ(es[1], (edge{2, 0, 1}));
}

TEST(Ugraph, ToUndirectedSumsDirectedCapacities) {
  digraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 3);
  g.add_edge(1, 2, 4);
  const ugraph u = to_undirected(g);
  EXPECT_EQ(u.weight(0, 1), 5);
  EXPECT_EQ(u.weight(1, 0), 5);
  EXPECT_EQ(u.weight(1, 2), 4);
  EXPECT_EQ(u.weight(0, 2), 0);
}

TEST(Ugraph, ToUndirectedPreservesRemovedNodes) {
  digraph g(3);
  g.add_bidirectional(0, 1, 1);
  g.remove_node(2);
  const ugraph u = to_undirected(g);
  EXPECT_FALSE(u.is_active(2));
  EXPECT_EQ(u.active_count(), 2);
}

TEST(Ugraph, InducedSubgraph) {
  ugraph u(4);
  u.add_weight(0, 1, 1);
  u.add_weight(1, 2, 2);
  u.add_weight(2, 3, 3);
  const ugraph h = u.induced({1, 2});
  EXPECT_EQ(h.active_count(), 2);
  EXPECT_EQ(h.weight(1, 2), 2);
  EXPECT_EQ(h.weight(0, 1), 0);
}

}  // namespace
}  // namespace nab::graph
