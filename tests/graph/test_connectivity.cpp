#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

TEST(Connectivity, CompleteGraphIsNMinusOneConnected) {
  const digraph g = complete(6);
  EXPECT_EQ(global_vertex_connectivity(g), 5);
  EXPECT_EQ(vertex_connectivity(g, 0, 3), 5);
}

TEST(Connectivity, RingIsTwoConnected) {
  const digraph g = ring(6);
  EXPECT_EQ(global_vertex_connectivity(g), 2);
}

TEST(Connectivity, CutVertexDropsConnectivityToOne) {
  // Two triangles sharing node 2.
  digraph g(5);
  g.add_bidirectional(0, 1, 1);
  g.add_bidirectional(1, 2, 1);
  g.add_bidirectional(0, 2, 1);
  g.add_bidirectional(2, 3, 1);
  g.add_bidirectional(3, 4, 1);
  g.add_bidirectional(2, 4, 1);
  EXPECT_EQ(global_vertex_connectivity(g), 1);
  EXPECT_EQ(vertex_connectivity(g, 0, 4), 1);
}

TEST(Connectivity, DisjointPathsAreNodeDisjointAndValid) {
  const digraph g = complete(7);
  const auto paths = node_disjoint_paths(g, 0, 6, 5);
  ASSERT_EQ(paths.size(), 5u);
  std::vector<int> interior_use(7, 0);
  for (const auto& p : paths) {
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 6);
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      EXPECT_TRUE(g.has_edge(p[i], p[i + 1]))
          << "missing link " << p[i] << "->" << p[i + 1];
    for (std::size_t i = 1; i + 1 < p.size(); ++i)
      ++interior_use[static_cast<std::size_t>(p[i])];
  }
  for (int v = 1; v < 6; ++v) EXPECT_LE(interior_use[static_cast<std::size_t>(v)], 1);
}

TEST(Connectivity, DisjointPathsThrowWhenInfeasible) {
  const digraph g = ring(6);
  EXPECT_THROW(node_disjoint_paths(g, 0, 3, 3), nab::error);
  EXPECT_NO_THROW(node_disjoint_paths(g, 0, 3, 2));
}

TEST(Connectivity, DirectEdgeCountsAsOnePath) {
  digraph g(4);
  g.add_edge(0, 3, 1);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(vertex_connectivity(g, 0, 3), 3);
  const auto paths = node_disjoint_paths(g, 0, 3, 3);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(Connectivity, PaperPreconditionHolds2fPlus1) {
  // NAB requires connectivity >= 2f+1; with f=1 the Fig 1(a) graph must be
  // at least 3-connected... it is exactly 2-connected undirected-wise?
  // Fig 1(a) has node 2 (0-based) adjacent to everyone; removing nodes 0 and
  // 2 disconnects 1 from 3, so directed vertex connectivity is 2.
  const digraph g = paper_fig1a();
  EXPECT_EQ(global_vertex_connectivity(g), 2);
}

TEST(Connectivity, RandomGraphsConnectivityMonotoneUnderEdgeRemoval) {
  rng rand(17);
  for (int trial = 0; trial < 10; ++trial) {
    digraph g = erdos_renyi(7, 0.6, 1, 3, rand);
    const int before = global_vertex_connectivity(g);
    // Remove one non-cycle edge if any exists.
    const auto es = g.edges();
    if (!es.empty()) {
      g.remove_edge(es[rand.below(es.size())].from, es[0].to);
      EXPECT_LE(global_vertex_connectivity(g), before);
    }
  }
}

}  // namespace
}  // namespace nab::graph
