#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/dot.hpp"
#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

TEST(Generators, CompleteGraphShape) {
  const digraph g = complete(5, 3);
  EXPECT_EQ(g.edges().size(), 20u);
  for (const edge& e : g.edges()) EXPECT_EQ(e.cap, 3);
}

TEST(Generators, PaperFig1aMatchesStatedStructure) {
  const digraph g = paper_fig1a();
  EXPECT_EQ(g.universe(), 4);
  // No link between paper-nodes 2 and 4 (0-based 1 and 3).
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(3, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(Generators, PaperFig1bRemovesDisputedPair) {
  const digraph g = paper_fig1b();
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Generators, PaperFig2Capacities) {
  const digraph g = paper_fig2();
  EXPECT_EQ(g.cap(0, 1), 2);
  EXPECT_EQ(g.cap(0, 2), 1);
  EXPECT_EQ(g.cap(1, 2), 1);
  EXPECT_EQ(g.cap(1, 3), 1);
  EXPECT_EQ(g.cap(2, 3), 1);
  EXPECT_EQ(g.edges().size(), 5u);
}

TEST(Generators, RingDegrees) {
  const digraph g = ring(7, 2);
  for (node_id v = 0; v < 7; ++v) {
    EXPECT_EQ(g.out_neighbors(v).size(), 2u);
    EXPECT_EQ(g.in_neighbors(v).size(), 2u);
  }
}

TEST(Generators, ErdosRenyiIsStronglyConnected) {
  rng rand(1);
  for (int trial = 0; trial < 10; ++trial) {
    const digraph g = erdos_renyi(8, 0.2, 1, 5, rand);
    EXPECT_GE(broadcast_mincut(g, 0), 1);
    for (node_id v = 1; v < 8; ++v) EXPECT_GE(min_cut_value(g, v, 0), 1);
  }
}

TEST(Generators, ErdosRenyiCapacitiesInRange) {
  rng rand(2);
  const digraph g = erdos_renyi(10, 0.5, 2, 7, rand);
  for (const edge& e : g.edges()) {
    EXPECT_GE(e.cap, 2);
    EXPECT_LE(e.cap, 7);
  }
}

TEST(Generators, RandomRegularReachesTargetDegree) {
  rng rand(3);
  const digraph g = random_regular(10, 4, 1, 3, rand);
  int total_deficit = 0;
  for (node_id v = 0; v < 10; ++v) {
    const int d = static_cast<int>(g.out_neighbors(v).size());
    EXPECT_GE(d, 2);  // at least the cycle
    if (d < 4) total_deficit += 4 - d;
  }
  EXPECT_LE(total_deficit, 2);  // best-effort: at most one unmatched pair
}

TEST(Generators, DumbbellStructure) {
  const digraph g = dumbbell(8, 10, 1);
  EXPECT_EQ(g.cap(0, 1), 10);
  EXPECT_EQ(g.cap(4, 5), 10);
  EXPECT_EQ(g.cap(0, 4), 1);
  EXPECT_EQ(g.cap(1, 5), 1);
  EXPECT_FALSE(g.has_edge(0, 5));
  EXPECT_GE(global_vertex_connectivity(g), 3);
}

TEST(Generators, PathOfCliquesHopCount) {
  const digraph g = path_of_cliques(4, 3, 2);
  EXPECT_EQ(g.universe(), 12);
  EXPECT_TRUE(g.has_edge(0, 3));   // cluster 0 -> cluster 1
  EXPECT_FALSE(g.has_edge(0, 6));  // no skip links
  EXPECT_GE(broadcast_mincut(g, 0), 1);
}

TEST(Generators, HypercubeHasDimConnectivityAndDegree) {
  const digraph g = hypercube(3, 2);
  EXPECT_EQ(g.universe(), 8);
  for (node_id v = 0; v < 8; ++v)
    EXPECT_EQ(g.out_neighbors(v).size(), 3u) << v;
  for (const edge& e : g.edges()) {
    EXPECT_EQ(e.cap, 2);
    const int diff = e.from ^ e.to;
    EXPECT_EQ(diff & (diff - 1), 0) << "non-hypercube edge";  // power of two
  }
  EXPECT_EQ(global_vertex_connectivity(g), 3);
}

TEST(Generators, ClusteredWanShapeAndTrunkCapacities) {
  const digraph g = clustered_wan(3, 3, 4, 1, 2);
  EXPECT_EQ(g.universe(), 9);
  // Intra-cluster links are fat, inter-cluster links thin.
  for (const edge& e : g.edges()) {
    const bool same_cluster = e.from / 3 == e.to / 3;
    EXPECT_EQ(e.cap, same_cluster ? 4 : 1) << e.from << "->" << e.to;
  }
  // Every cluster pair is joined by at least one trunk.
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      bool linked = false;
      for (const edge& e : g.edges())
        linked = linked || (e.from / 3 == a && e.to / 3 == b);
      EXPECT_TRUE(linked) << "clusters " << a << "," << b;
    }
  // Feasible for f = 1 (the registry's clustered-wan preset relies on it).
  EXPECT_GE(global_vertex_connectivity(g), 3);
}

TEST(Generators, DotOutputMentionsAllEdges) {
  const digraph g = paper_fig2();
  const std::string dot = to_dot(g, {2});
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"2\""), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);
  const std::string udot = to_dot(to_undirected(g));
  EXPECT_NE(udot.find("n0 -- n1"), std::string::npos);
}

}  // namespace
}  // namespace nab::graph
