#include "graph/gomory_hu.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

TEST(GomoryHu, MatchesDirectMaxflowOnRandomGraphs) {
  rng rand(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const digraph g = erdos_renyi(7, 0.5, 1, 8, rand);
    const ugraph u = to_undirected(g);
    const gomory_hu_tree tree(u);
    const auto nodes = u.active_nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        EXPECT_EQ(tree.min_cut(nodes[i], nodes[j]),
                  min_cut_value_undirected(u, nodes[i], nodes[j]))
            << "pair (" << nodes[i] << "," << nodes[j] << ") trial " << trial;
      }
  }
}

TEST(GomoryHu, MinimumPairCutMatchesStoerWagner) {
  rng rand(11);
  for (int trial = 0; trial < 15; ++trial) {
    const digraph g = erdos_renyi(8, 0.45, 1, 5, rand);
    const ugraph u = to_undirected(g);
    EXPECT_EQ(gomory_hu_tree(u).minimum_pair_cut(), global_min_cut(u).value);
  }
}

TEST(GomoryHu, TreeHasNMinusOneEdges) {
  const digraph g = complete(6, 2);
  const gomory_hu_tree tree(to_undirected(g));
  EXPECT_EQ(tree.tree_edges().size(), 5u);
}

TEST(GomoryHu, WorksOnInducedSubgraphs) {
  const digraph g = paper_fig1a();
  const ugraph u = to_undirected(g);
  const gomory_hu_tree tree(u.induced({0, 1, 3}));
  EXPECT_EQ(tree.min_cut(0, 1), 2);
  EXPECT_EQ(tree.min_cut(1, 3), 2);
  EXPECT_EQ(tree.minimum_pair_cut(), 2);
}

TEST(GomoryHu, SingleNodeTree) {
  ugraph u(3);
  u.remove_node(1);
  u.remove_node(2);
  const gomory_hu_tree tree(u);
  EXPECT_TRUE(tree.tree_edges().empty());
}

}  // namespace
}  // namespace nab::graph
