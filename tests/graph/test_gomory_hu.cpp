#include "graph/gomory_hu.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

TEST(GomoryHu, MatchesDirectMaxflowOnRandomGraphs) {
  rng rand(4242);
  for (int trial = 0; trial < 15; ++trial) {
    const digraph g = erdos_renyi(7, 0.5, 1, 8, rand);
    const ugraph u = to_undirected(g);
    const gomory_hu_tree tree(u);
    const auto nodes = u.active_nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        EXPECT_EQ(tree.min_cut(nodes[i], nodes[j]),
                  min_cut_value_undirected(u, nodes[i], nodes[j]))
            << "pair (" << nodes[i] << "," << nodes[j] << ") trial " << trial;
      }
  }
}

TEST(GomoryHu, MinimumPairCutMatchesStoerWagner) {
  rng rand(11);
  for (int trial = 0; trial < 15; ++trial) {
    const digraph g = erdos_renyi(8, 0.45, 1, 5, rand);
    const ugraph u = to_undirected(g);
    EXPECT_EQ(gomory_hu_tree(u).minimum_pair_cut(), global_min_cut(u).value);
  }
}

TEST(GomoryHu, TreeHasNMinusOneEdges) {
  const digraph g = complete(6, 2);
  const gomory_hu_tree tree(to_undirected(g));
  EXPECT_EQ(tree.tree_edges().size(), 5u);
}

TEST(GomoryHu, WorksOnInducedSubgraphs) {
  const digraph g = paper_fig1a();
  const ugraph u = to_undirected(g);
  const gomory_hu_tree tree(u.induced({0, 1, 3}));
  EXPECT_EQ(tree.min_cut(0, 1), 2);
  EXPECT_EQ(tree.min_cut(1, 3), 2);
  EXPECT_EQ(tree.minimum_pair_cut(), 2);
}

TEST(GomoryHu, SingleNodeTree) {
  ugraph u(3);
  u.remove_node(1);
  u.remove_node(2);
  const gomory_hu_tree tree(u);
  EXPECT_TRUE(tree.tree_edges().empty());
}

TEST(GomoryHu, InducedSubgraphQueriesMatchDirectMaxflow) {
  // The U_k path queries Gomory-Hu trees of induced subgraphs (omega
  // members); cross-check every pair cut against a direct undirected
  // max-flow on random weighted graphs.
  rng rand(321);
  for (int trial = 0; trial < 10; ++trial) {
    const digraph g = erdos_renyi(9, 0.5, 1, 6, rand);
    const ugraph u = to_undirected(g);
    // Drop a random pair of nodes, as omega subgraphs do.
    auto nodes = u.active_nodes();
    std::vector<node_id> keep;
    const std::size_t drop_a = rand.below(nodes.size());
    const std::size_t drop_b = rand.below(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (i != drop_a && i != drop_b) keep.push_back(nodes[i]);
    const ugraph h = u.induced(keep);
    const gomory_hu_tree tree(h);
    for (std::size_t i = 0; i < keep.size(); ++i)
      for (std::size_t j = i + 1; j < keep.size(); ++j)
        EXPECT_EQ(tree.min_cut(keep[i], keep[j]),
                  min_cut_value_undirected(h, keep[i], keep[j]))
            << "trial " << trial << " pair (" << keep[i] << "," << keep[j] << ")";
  }
}

TEST(GomoryHu, HeavyWeightedGraphMatchesStoerWagner) {
  // Wide capacities exercise the non-unit flow paths.
  rng rand(777);
  for (int trial = 0; trial < 8; ++trial) {
    const digraph g = erdos_renyi(10, 0.4, 3, 40, rand);
    const ugraph u = to_undirected(g);
    EXPECT_EQ(gomory_hu_tree(u).minimum_pair_cut(), global_min_cut(u).value)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace nab::graph
