#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::graph {
namespace {

TEST(Maxflow, SingleEdge) {
  digraph g(2);
  g.add_edge(0, 1, 7);
  EXPECT_EQ(min_cut_value(g, 0, 1), 7);
  EXPECT_EQ(min_cut_value(g, 1, 0), 0);
}

TEST(Maxflow, SeriesTakesMinimum) {
  digraph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(min_cut_value(g, 0, 2), 3);
}

TEST(Maxflow, ParallelPathsAdd) {
  digraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(2, 3, 3);
  EXPECT_EQ(min_cut_value(g, 0, 3), 5);
}

TEST(Maxflow, ClassicTextbookInstance) {
  // CLRS figure 26.1-style network.
  digraph g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 1, 4);
  g.add_edge(1, 3, 12);
  g.add_edge(3, 2, 9);
  g.add_edge(2, 4, 14);
  g.add_edge(4, 3, 7);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 5, 4);
  EXPECT_EQ(min_cut_value(g, 0, 5), 23);
}

TEST(Maxflow, FlowConservationAndCutConsistency) {
  rng rand(42);
  for (int trial = 0; trial < 30; ++trial) {
    const digraph g = erdos_renyi(8, 0.4, 1, 9, rand);
    const flow_result fr = max_flow(g, 0, 7);
    const int n = g.universe();
    // Conservation at internal nodes.
    for (node_id v = 1; v < n - 1; ++v) {
      capacity_t in = 0, out = 0;
      for (node_id u = 0; u < n; ++u) {
        in += fr.flow_on(u, v, n);
        out += fr.flow_on(v, u, n);
      }
      EXPECT_EQ(in, out) << "node " << v;
    }
    // Flow within capacity.
    for (const edge& e : g.edges()) EXPECT_LE(fr.flow_on(e.from, e.to, n), e.cap);
    // Cut capacity across source_side equals flow value (max-flow = min-cut).
    capacity_t cut = 0;
    for (const edge& e : g.edges())
      if (fr.source_side[static_cast<std::size_t>(e.from)] &&
          !fr.source_side[static_cast<std::size_t>(e.to)])
        cut += e.cap;
    EXPECT_EQ(cut, fr.value);
    EXPECT_TRUE(fr.source_side[0]);
    EXPECT_FALSE(fr.source_side[7]);
  }
}

TEST(Maxflow, PaperFig1aMincuts) {
  // The exact values the paper states for Figure 1(a) (0-based node ids).
  const digraph g = paper_fig1a();
  EXPECT_EQ(min_cut_value(g, 0, 1), 2);  // MINCUT(G,1,2) = 2
  EXPECT_EQ(min_cut_value(g, 0, 3), 2);  // MINCUT(G,1,4) = 2
  EXPECT_EQ(min_cut_value(g, 0, 2), 3);  // MINCUT(G,1,3) = 3
  EXPECT_EQ(broadcast_mincut(g, 0), 2);  // gamma = 2
}

TEST(Maxflow, PaperFig2Gamma) {
  const digraph g = paper_fig2();
  EXPECT_EQ(broadcast_mincut(g, 0), 2);
}

TEST(Maxflow, BroadcastMincutZeroWhenUnreachable) {
  digraph g(3);
  g.add_edge(0, 1, 1);
  // Node 2 unreachable.
  EXPECT_EQ(broadcast_mincut(g, 0), 0);
}

TEST(Maxflow, UndirectedFlowUsesBothDirections) {
  ugraph u(4);
  u.add_weight(0, 1, 1);
  u.add_weight(1, 3, 1);
  u.add_weight(0, 2, 1);
  u.add_weight(2, 3, 1);
  u.add_weight(1, 2, 5);  // shortcut link usable either way
  EXPECT_EQ(min_cut_value_undirected(u, 0, 3), 2);
  EXPECT_EQ(min_cut_value_undirected(u, 3, 0), 2);
  EXPECT_EQ(min_cut_value_undirected(u, 1, 2), 7);
}

TEST(Maxflow, RespectsRemovedNodes) {
  digraph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 3, 5);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 1);
  EXPECT_EQ(min_cut_value(g, 0, 3), 6);
  g.remove_node(1);
  EXPECT_EQ(min_cut_value(g, 0, 3), 1);
}

}  // namespace
}  // namespace nab::graph
