#include "gf/gf2m.hpp"

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace nab::gf {
namespace {

/// Field-axiom property check shared by every width. If the default
/// polynomial for a width were reducible, inverses would break and this
/// fails — so this doubles as an irreducibility check for the polynomial
/// table.
template <class F>
void check_axioms(std::uint64_t seed) {
  rng rand(seed);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<typename F::value_type>(rand.below(F::order));
    const auto b = static_cast<typename F::value_type>(rand.below(F::order));
    const auto c = static_cast<typename F::value_type>(rand.below(F::order));
    ASSERT_EQ(F::mul(a, b), F::mul(b, a));
    ASSERT_EQ(F::mul(F::mul(a, b), c), F::mul(a, F::mul(b, c)));
    ASSERT_EQ(F::mul(a, F::add(b, c)), F::add(F::mul(a, b), F::mul(a, c)));
    ASSERT_EQ(F::mul(a, F::one()), a);
    if (a != 0) {
      ASSERT_EQ(F::mul(a, F::inv(a)), F::one()) << "bits=" << F::bits << " a=" << a;
    }
  }
}

TEST(Gf2m, AxiomsWidth2) { check_axioms<gf2m<2>>(2); }
TEST(Gf2m, AxiomsWidth3) { check_axioms<gf2m<3>>(3); }
TEST(Gf2m, AxiomsWidth4) { check_axioms<gf2m<4>>(4); }
TEST(Gf2m, AxiomsWidth5) { check_axioms<gf2m<5>>(5); }
TEST(Gf2m, AxiomsWidth6) { check_axioms<gf2m<6>>(6); }
TEST(Gf2m, AxiomsWidth7) { check_axioms<gf2m<7>>(7); }
TEST(Gf2m, AxiomsWidth8) { check_axioms<gf2m<8>>(8); }
TEST(Gf2m, AxiomsWidth9) { check_axioms<gf2m<9>>(9); }
TEST(Gf2m, AxiomsWidth10) { check_axioms<gf2m<10>>(10); }
TEST(Gf2m, AxiomsWidth11) { check_axioms<gf2m<11>>(11); }
TEST(Gf2m, AxiomsWidth12) { check_axioms<gf2m<12>>(12); }
TEST(Gf2m, AxiomsWidth13) { check_axioms<gf2m<13>>(13); }
TEST(Gf2m, AxiomsWidth14) { check_axioms<gf2m<14>>(14); }
TEST(Gf2m, AxiomsWidth15) { check_axioms<gf2m<15>>(15); }
TEST(Gf2m, AxiomsWidth16) { check_axioms<gf2m<16>>(16); }
TEST(Gf2m, AxiomsWidth20) { check_axioms<gf2m<20>>(20); }
TEST(Gf2m, AxiomsWidth24) { check_axioms<gf2m<24>>(24); }
TEST(Gf2m, AxiomsWidth32) { check_axioms<gf2m<32>>(32); }

TEST(Gf2m, Width8AgreesWithTableGf256) {
  rng rand(21);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rand.below(256));
    const auto b = static_cast<std::uint8_t>(rand.below(256));
    EXPECT_EQ(gf2m<8>::mul(a, b), gf256::mul(a, b));
  }
}

TEST(Gf2m, Width16AgreesWithTableGf2_16) {
  rng rand(23);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rand.below(65536));
    const auto b = static_cast<std::uint16_t>(rand.below(65536));
    EXPECT_EQ(gf2m<16>::mul(a, b), gf2_16::mul(a, b));
  }
}

TEST(Gf2m, ExhaustiveInverseSmallWidths) {
  for (std::uint32_t a = 1; a < gf2m<4>::order; ++a)
    EXPECT_EQ(gf2m<4>::mul(a, gf2m<4>::inv(a)), 1u);
  for (std::uint32_t a = 1; a < gf2m<6>::order; ++a)
    EXPECT_EQ(gf2m<6>::mul(a, gf2m<6>::inv(a)), 1u);
}

}  // namespace
}  // namespace nab::gf
