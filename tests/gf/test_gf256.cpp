#include "gf/gf256.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nab::gf {
namespace {

TEST(Gf256, AddIsXor) {
  EXPECT_EQ(gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf256::add(0, 0xFF), 0xFF);
  EXPECT_EQ(gf256::add(0xAB, 0xAB), 0);
}

TEST(Gf256, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, KnownProduct) {
  // 0x53 * 0xCA = 0x01 under the 0x11D polynomial (classic AES-adjacent pair
  // differs; this value is fixed by our table construction and cross-checked
  // against shift-and-add below).
  auto slow_mul = [](std::uint8_t a, std::uint8_t b) {
    unsigned acc = 0, aa = a;
    for (unsigned bb = b; bb; bb >>= 1) {
      if (bb & 1) acc ^= aa;
      aa <<= 1;
      if (aa & 0x100) aa ^= 0x11D;
    }
    return static_cast<std::uint8_t>(acc);
  };
  for (unsigned a = 0; a < 256; ++a)
    for (unsigned b = 0; b < 256; b += 7)
      EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)));
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  rng rand(7);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rand.below(256));
    const auto b = static_cast<std::uint8_t>(1 + rand.below(255));
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

TEST(Gf256, MulIsAssociativeAndCommutative) {
  rng rand(11);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rand.below(256));
    const auto b = static_cast<std::uint8_t>(rand.below(256));
    const auto c = static_cast<std::uint8_t>(rand.below(256));
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
  }
}

TEST(Gf256, MulDistributesOverAdd) {
  rng rand(13);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rand.below(256));
    const auto b = static_cast<std::uint8_t>(rand.below(256));
    const auto c = static_cast<std::uint8_t>(rand.below(256));
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (unsigned a = 1; a < 256; a += 5) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 20; ++e) {
      EXPECT_EQ(gf256::pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // alpha = 2 must generate the whole multiplicative group.
  std::uint8_t x = 1;
  int period = 0;
  do {
    x = gf256::mul(x, 2);
    ++period;
  } while (x != 1);
  EXPECT_EQ(period, 255);
}

}  // namespace
}  // namespace nab::gf
