#include "gf/linalg.hpp"

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace nab::gf {
namespace {

using m16 = matrix<gf2_16>;

TEST(Linalg, RankOfIdentity) {
  EXPECT_EQ(rank(m16::identity(6)), 6u);
}

TEST(Linalg, RankOfZeroMatrix) {
  EXPECT_EQ(rank(m16(4, 7)), 0u);
}

TEST(Linalg, RankDropsWithDuplicateRow) {
  rng rand(1);
  auto a = m16::random(4, 6, rand);
  // Force row 3 = row 1.
  for (std::size_t c = 0; c < 6; ++c) a.at(3, c) = a.at(1, c);
  EXPECT_LE(rank(a), 3u);
}

TEST(Linalg, RandomSquareMatrixIsAlmostSurelyInvertible) {
  // Probability of singularity for a random k x k matrix over GF(2^16) is
  // ~ k / 2^16 — the same estimate Theorem 1 builds on.
  rng rand(2);
  int invertible_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    if (invertible(m16::random(8, 8, rand))) ++invertible_count;
  }
  EXPECT_GE(invertible_count, 49);
}

TEST(Linalg, InverseRoundTrip) {
  rng rand(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = m16::random(6, 6, rand);
    const auto ainv = inverse(a);
    if (!ainv) continue;  // singular draw — astronomically unlikely
    EXPECT_EQ(a * *ainv, m16::identity(6));
    EXPECT_EQ(*ainv * a, m16::identity(6));
  }
}

TEST(Linalg, InverseOfSingularIsNullopt) {
  m16 a(3, 3);  // zero matrix
  EXPECT_FALSE(inverse(a).has_value());

  rng rand(4);
  auto b = m16::random(3, 3, rand);
  for (std::size_t c = 0; c < 3; ++c) b.at(2, c) = gf2_16::add(b.at(0, c), b.at(1, c));
  EXPECT_FALSE(inverse(b).has_value());
}

TEST(Linalg, DeterminantZeroIffSingular) {
  rng rand(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = m16::random(5, 5, rand);
    EXPECT_EQ(determinant(a) != 0, invertible(a));
  }
}

TEST(Linalg, DeterminantIsMultiplicative) {
  rng rand(6);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = m16::random(4, 4, rand);
    const auto b = m16::random(4, 4, rand);
    EXPECT_EQ(determinant(a * b), gf2_16::mul(determinant(a), determinant(b)));
  }
}

TEST(Linalg, RowReduceReportsPivots) {
  auto a = m16::identity(3);
  std::vector<std::size_t> pivots;
  EXPECT_EQ(row_reduce(a, &pivots), 3u);
  EXPECT_EQ(pivots, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Linalg, SolveLeftRecoversVector) {
  rng rand(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = m16::random(5, 8, rand);
    std::vector<gf2_16::value_type> x(5);
    for (auto& v : x) v = static_cast<gf2_16::value_type>(rand.below(65536));
    // b = x * A.
    std::vector<gf2_16::value_type> b(8, 0);
    for (std::size_t c = 0; c < 8; ++c)
      for (std::size_t r = 0; r < 5; ++r)
        b[c] = gf2_16::add(b[c], gf2_16::mul(x[r], a.at(r, c)));
    const auto sol = solve_left(a, b);
    ASSERT_TRUE(sol.has_value());
    // The solution must reproduce b (A may have a nontrivial left kernel, so
    // compare images, not coordinates).
    std::vector<gf2_16::value_type> b2(8, 0);
    for (std::size_t c = 0; c < 8; ++c)
      for (std::size_t r = 0; r < 5; ++r)
        b2[c] = gf2_16::add(b2[c], gf2_16::mul((*sol)[r], a.at(r, c)));
    EXPECT_EQ(b2, b);
  }
}

TEST(Linalg, SolveLeftDetectsInconsistency) {
  // A = zero matrix, b nonzero: no solution.
  m16 a(3, 4);
  std::vector<gf2_16::value_type> b(4, 1);
  EXPECT_FALSE(solve_left(a, b).has_value());
}

TEST(Linalg, RankIsInvariantUnderTranspose) {
  rng rand(8);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = m16::random(4, 9, rand);
    EXPECT_EQ(rank(a), rank(a.transpose()));
  }
}

}  // namespace
}  // namespace nab::gf
