#include "gf/gf2_16.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nab::gf {
namespace {

TEST(Gf2_16, AddIsXor) {
  EXPECT_EQ(gf2_16::add(0x1234, 0xABCD), 0x1234 ^ 0xABCD);
  EXPECT_EQ(gf2_16::add(0xFFFF, 0xFFFF), 0);
}

TEST(Gf2_16, MulIdentityAndZero) {
  rng rand(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rand.below(65536));
    EXPECT_EQ(gf2_16::mul(a, 1), a);
    EXPECT_EQ(gf2_16::mul(1, a), a);
    EXPECT_EQ(gf2_16::mul(a, 0), 0);
  }
}

TEST(Gf2_16, MulMatchesShiftAndAdd) {
  auto slow_mul = [](std::uint16_t a, std::uint16_t b) {
    unsigned acc = 0, aa = a;
    for (unsigned bb = b; bb; bb >>= 1) {
      if (bb & 1) acc ^= aa;
      aa <<= 1;
      if (aa & 0x10000) aa ^= 0x1100B;
    }
    return static_cast<std::uint16_t>(acc);
  };
  rng rand(5);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rand.below(65536));
    const auto b = static_cast<std::uint16_t>(rand.below(65536));
    EXPECT_EQ(gf2_16::mul(a, b), slow_mul(a, b));
  }
}

TEST(Gf2_16, InverseRoundTrip) {
  rng rand(7);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rand.below(65535));
    EXPECT_EQ(gf2_16::mul(a, gf2_16::inv(a)), 1) << "a=" << a;
  }
}

TEST(Gf2_16, FieldAxiomsSampled) {
  rng rand(11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rand.below(65536));
    const auto b = static_cast<std::uint16_t>(rand.below(65536));
    const auto c = static_cast<std::uint16_t>(rand.below(65536));
    EXPECT_EQ(gf2_16::mul(a, b), gf2_16::mul(b, a));
    EXPECT_EQ(gf2_16::mul(gf2_16::mul(a, b), c), gf2_16::mul(a, gf2_16::mul(b, c)));
    EXPECT_EQ(gf2_16::mul(a, gf2_16::add(b, c)),
              gf2_16::add(gf2_16::mul(a, b), gf2_16::mul(a, c)));
  }
}

TEST(Gf2_16, PowMatchesRepeatedMul) {
  rng rand(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<std::uint16_t>(1 + rand.below(65535));
    std::uint16_t acc = 1;
    for (unsigned e = 0; e < 30; ++e) {
      EXPECT_EQ(gf2_16::pow(a, e), acc);
      acc = gf2_16::mul(acc, a);
    }
  }
}

TEST(Gf2_16, DivByZeroIsPreconditionButDivWorks) {
  rng rand(17);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rand.below(65536));
    const auto b = static_cast<std::uint16_t>(1 + rand.below(65535));
    EXPECT_EQ(gf2_16::div(gf2_16::mul(a, b), b), a);
  }
}

}  // namespace
}  // namespace nab::gf
