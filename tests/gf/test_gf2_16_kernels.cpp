// Scalar-vs-SIMD cross-check suite for the gf2_16 row-kernel backends.
//
// Every backend must produce byte-identical results AND byte-identical obs
// counters for any (pointer alignment, tail length, coefficient) — the
// deterministic-counter contract (jobs-1-vs-N, pooled-vs-unpooled) extends
// across kernel backends, so a SIMD path that counted words differently
// from the scalar loop would break BENCH byte-stability the moment two
// machines pick different backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/gf2_16.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace nab::gf {
namespace {

using word = gf2_16::value_type;

std::vector<gf_backend> supported_backends() {
  const gf_backend initial = gf2_16::backend();
  std::vector<gf_backend> out;
  for (gf_backend b : {gf_backend::scalar, gf_backend::ssse3, gf_backend::avx2,
                       gf_backend::neon})
    if (gf2_16::set_backend(b)) out.push_back(b);
  gf2_16::set_backend(initial);
  return out;
}

/// RAII: force a backend for one scope, restore the previous one after.
class backend_scope {
 public:
  explicit backend_scope(gf_backend b) : prev_(gf2_16::backend()) {
    EXPECT_TRUE(gf2_16::set_backend(b));
  }
  ~backend_scope() { gf2_16::set_backend(prev_); }

 private:
  gf_backend prev_;
};

word ref_mul(word a, word b) { return gf2_16::mul(a, b); }

/// 0..31 covers the short-row shunt (SIMD kernels hand rows below the
/// table-build amortization cutoff back to the scalar loop); 128..159 starts
/// past that cutoff, so every SIMD tail residue (AVX2 strides 16 words) is
/// hit in the vector path.
std::vector<std::size_t> test_lengths() {
  std::vector<std::size_t> ns;
  for (std::size_t t = 0; t < 32; ++t) ns.push_back(t);
  for (std::size_t t = 0; t < 32; ++t) ns.push_back(128 + t);
  return ns;
}

/// Rows with zeros sprinkled in (the scalar loop's s == 0 skip) and full
/// 16-bit values elsewhere.
std::vector<word> random_row(rng& rand, std::size_t n) {
  std::vector<word> row(n);
  for (word& w : row)
    w = rand.below(5) == 0 ? 0 : static_cast<word>(1 + rand.below(65535));
  return row;
}

TEST(GfKernels, ScalarIsTheDefaultFallbackAndNamesRoundTrip) {
  EXPECT_TRUE(gf2_16::set_backend(gf_backend::scalar));
  EXPECT_EQ(gf2_16::backend(), gf_backend::scalar);
  EXPECT_STREQ(gf2_16::backend_name(gf_backend::scalar), "scalar");
  EXPECT_STREQ(gf2_16::backend_name(gf_backend::ssse3), "ssse3");
  EXPECT_STREQ(gf2_16::backend_name(gf_backend::avx2), "avx2");
  EXPECT_STREQ(gf2_16::backend_name(gf_backend::neon), "neon");
  // At least one SIMD backend is expected on the CI x86 / AArch64 runners,
  // but a build must never FAIL for lacking one — unsupported requests are
  // rejected cleanly.
  for (gf_backend b : {gf_backend::ssse3, gf_backend::avx2, gf_backend::neon})
    if (!gf2_16::set_backend(b)) EXPECT_NE(gf2_16::backend(), b);
  gf2_16::set_backend(gf_backend::scalar);
}

TEST(GfKernels, AxpyMatchesMulAcrossBackendsTailsAlignmentsAndCoeffs) {
  rng rand(0x5eed);
  for (gf_backend b : supported_backends()) {
    backend_scope scope(b);
    // The +1/+3 word offsets break 16- and 32-byte alignment.
    for (std::size_t n : test_lengths()) {
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
        for (word coeff : {word{0}, word{1}, static_cast<word>(1 + rand.below(65535)),
                           static_cast<word>(1 + rand.below(65535))}) {
          std::vector<word> src = random_row(rand, n + off);
          std::vector<word> dst = random_row(rand, n + off);
          std::vector<word> expect(dst);
          for (std::size_t i = 0; i < n; ++i)
            expect[off + i] =
                gf2_16::add(expect[off + i], ref_mul(coeff, src[off + i]));
          gf2_16::axpy(dst.data() + off, src.data() + off, coeff, n);
          EXPECT_EQ(dst, expect) << "backend " << gf2_16::backend_name(b)
                                 << " n=" << n << " off=" << off
                                 << " coeff=" << coeff;
        }
      }
    }
    // One long row: exercises the main vector loop well past one stride.
    const std::size_t n = 517;
    const word coeff = 0x1b3f;
    std::vector<word> src = random_row(rand, n);
    std::vector<word> dst = random_row(rand, n);
    std::vector<word> expect(dst);
    for (std::size_t i = 0; i < n; ++i)
      expect[i] = gf2_16::add(expect[i], ref_mul(coeff, src[i]));
    gf2_16::axpy(dst.data(), src.data(), coeff, n);
    EXPECT_EQ(dst, expect) << gf2_16::backend_name(b);
  }
}

TEST(GfKernels, ScaleMatchesMulIncludingAliasedInPlaceUse) {
  rng rand(0xabcd);
  for (gf_backend b : supported_backends()) {
    backend_scope scope(b);
    for (std::size_t n : test_lengths()) {
      for (std::size_t off : {std::size_t{0}, std::size_t{1}}) {
        for (word coeff : {word{0}, word{1}, static_cast<word>(1 + rand.below(65535))}) {
          // scale is inherently aliased (reads and writes the same row);
          // the dst==src concern is that a backend might stage through the
          // source after partially overwriting it.
          std::vector<word> v = random_row(rand, n + off);
          std::vector<word> expect(v);
          for (std::size_t i = 0; i < n; ++i)
            expect[off + i] = ref_mul(coeff, v[off + i]);
          gf2_16::scale(v.data() + off, coeff, n);
          EXPECT_EQ(v, expect) << "backend " << gf2_16::backend_name(b)
                               << " n=" << n << " off=" << off
                               << " coeff=" << coeff;
        }
      }
    }
  }
}

TEST(GfKernels, AxpyToleratesDstAliasingSrc) {
  // dst == src is elementwise-safe by the kernel contract: dst[i] ^=
  // c*src[i] reads src[i] before (or independent of) the store.
  rng rand(0x77);
  for (gf_backend b : supported_backends()) {
    backend_scope scope(b);
    std::vector<word> v = random_row(rand, 157);  // past the short-row cutoff
    const word coeff = 0x0101;
    std::vector<word> expect(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      expect[i] = gf2_16::add(v[i], ref_mul(coeff, v[i]));
    gf2_16::axpy(v.data(), v.data(), coeff, v.size());
    EXPECT_EQ(v, expect) << gf2_16::backend_name(b);
  }
}

TEST(GfKernels, CountersAreWordsPresentedAndBackendInvariant) {
  // The satellite-2 contract: counters mean words PRESENTED. coeff == 0
  // axpys and coeff == 1 scales count their n despite doing no table work,
  // rows full of zero source words count fully, and every backend reports
  // the same totals for the same call sequence.
  const auto run_ops = [] {
    obs::collector col;
    {
      obs::scoped_collector scope(&col);
      std::vector<word> a(37, word{7}), b(37, word{0});
      gf2_16::axpy(a.data(), b.data(), 0x1234, a.size());  // all-zero source
      gf2_16::axpy(a.data(), b.data(), 0, a.size());       // coeff 0 early-out
      gf2_16::scale(a.data(), 1, a.size());                // coeff 1 early-out
      gf2_16::scale(a.data(), 0, a.size());                // zero-fill
      gf2_16::scale(a.data(), 0x4321, 13);
      gf2_16::axpy(a.data(), b.data(), 0x00ff, 5);
    }
    return std::pair{col.value(obs::counter::gf_axpy_words),
                     col.value(obs::counter::gf_scale_words)};
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> totals;
  for (gf_backend b : supported_backends()) {
    backend_scope scope(b);
    totals.push_back(run_ops());
  }
  ASSERT_FALSE(totals.empty());
  EXPECT_EQ(totals.front().first, 37u + 37u + 5u);
  EXPECT_EQ(totals.front().second, 37u + 37u + 13u);
  for (const auto& t : totals) EXPECT_EQ(t, totals.front());
}

}  // namespace
}  // namespace nab::gf
