#include "gf/matrix.hpp"

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "util/rng.hpp"

namespace nab::gf {
namespace {

using m16 = matrix<gf2_16>;
using m8 = matrix<gf256>;

TEST(Matrix, ZeroConstruction) {
  m16 m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0);
}

TEST(Matrix, IdentityMultiplicationIsNeutral) {
  rng rand(1);
  const auto a = m16::random(5, 5, rand);
  EXPECT_EQ(a * m16::identity(5), a);
  EXPECT_EQ(m16::identity(5) * a, a);
}

TEST(Matrix, MultiplicationIsAssociative) {
  rng rand(2);
  const auto a = m16::random(3, 4, rand);
  const auto b = m16::random(4, 5, rand);
  const auto c = m16::random(5, 2, rand);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(Matrix, MultiplicationDistributesOverAddition) {
  rng rand(3);
  const auto a = m16::random(3, 4, rand);
  const auto b = m16::random(4, 5, rand);
  const auto c = m16::random(4, 5, rand);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST(Matrix, TransposeReversesProduct) {
  rng rand(4);
  const auto a = m8::random(3, 4, rand);
  const auto b = m8::random(4, 5, rand);
  EXPECT_EQ((a * b).transpose(), b.transpose() * a.transpose());
}

TEST(Matrix, TransposeIsInvolution) {
  rng rand(5);
  const auto a = m16::random(4, 7, rand);
  EXPECT_EQ(a.transpose().transpose(), a);
}

TEST(Matrix, HconcatShapesAndContent) {
  rng rand(6);
  const auto a = m16::random(3, 2, rand);
  const auto b = m16::random(3, 4, rand);
  const auto c = m16::hconcat(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 6u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(c.at(r, j), a.at(r, j));
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(c.at(r, 2 + j), b.at(r, j));
  }
}

TEST(Matrix, SelectColumnsPicksInOrder) {
  rng rand(7);
  const auto a = m16::random(2, 5, rand);
  const auto s = a.select_columns({4, 0, 2});
  EXPECT_EQ(s.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(s.at(r, 0), a.at(r, 4));
    EXPECT_EQ(s.at(r, 1), a.at(r, 0));
    EXPECT_EQ(s.at(r, 2), a.at(r, 2));
  }
}

TEST(Matrix, AdditionIsSelfInverseInCharacteristic2) {
  rng rand(8);
  const auto a = m16::random(4, 4, rand);
  const auto sum = a + a;
  EXPECT_EQ(sum, m16(4, 4));
}

}  // namespace
}  // namespace nab::gf
