// Parameterized linear-algebra properties across matrix sizes and both
// table-backed fields: the identities Gaussian elimination must satisfy,
// which the Theorem-1 certification (rank of C_H) silently relies on.

#include <gtest/gtest.h>

#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "gf/linalg.hpp"
#include "gf/matrix.hpp"
#include "util/rng.hpp"

namespace nab::gf {
namespace {

struct la_param {
  std::size_t n;
  std::uint64_t seed;
};

class LinalgProperty : public ::testing::TestWithParam<la_param> {};

TEST_P(LinalgProperty, RankBoundsAndProductRank) {
  const auto [n, seed] = GetParam();
  rng rand(seed);
  const auto a = matrix<gf2_16>::random(n, n + 2, rand);
  const auto b = matrix<gf2_16>::random(n + 2, n, rand);
  const std::size_t ra = rank(a);
  const std::size_t rb = rank(b);
  EXPECT_LE(ra, n);
  EXPECT_LE(rb, n);
  EXPECT_LE(rank(a * b), std::min(ra, rb));
}

TEST_P(LinalgProperty, InverseOfProduct) {
  const auto [n, seed] = GetParam();
  rng rand(seed ^ 0x1);
  const auto a = matrix<gf2_16>::random(n, n, rand);
  const auto b = matrix<gf2_16>::random(n, n, rand);
  const auto ia = inverse(a);
  const auto ib = inverse(b);
  if (!ia || !ib) GTEST_SKIP() << "singular draw (~n/2^16 chance)";
  const auto iab = inverse(a * b);
  ASSERT_TRUE(iab.has_value());
  EXPECT_EQ(*iab, *ib * *ia);
}

TEST_P(LinalgProperty, RankRowColumnSymmetry) {
  const auto [n, seed] = GetParam();
  rng rand(seed ^ 0x2);
  auto a = matrix<gf2_16>::random(n, 2 * n, rand);
  // Zero a couple of rows to force deficiency.
  for (std::size_t c = 0; c < a.cols(); ++c) a.at(0, c) = 0;
  EXPECT_EQ(rank(a), rank(a.transpose()));
  EXPECT_LE(rank(a), n - 1);
}

TEST_P(LinalgProperty, DeterminantOfIdentityAndScaling) {
  const auto [n, seed] = GetParam();
  rng rand(seed ^ 0x3);
  EXPECT_EQ(determinant(matrix<gf2_16>::identity(n)), 1);
  // Scaling one row by s multiplies det by s.
  auto a = matrix<gf2_16>::random(n, n, rand);
  const auto d = determinant(a);
  const auto s = static_cast<gf2_16::value_type>(2 + rand.below(65534));
  for (std::size_t c = 0; c < n; ++c) a.at(0, c) = gf2_16::mul(a.at(0, c), s);
  EXPECT_EQ(determinant(a), gf2_16::mul(d, s));
}

TEST_P(LinalgProperty, SolveLeftConsistency) {
  const auto [n, seed] = GetParam();
  rng rand(seed ^ 0x4);
  const auto a = matrix<gf256>::random(n, n + 3, rand);
  std::vector<gf256::value_type> x(n);
  for (auto& v : x) v = static_cast<gf256::value_type>(rand.below(256));
  std::vector<gf256::value_type> b(n + 3, 0);
  for (std::size_t c = 0; c < b.size(); ++c)
    for (std::size_t r = 0; r < n; ++r)
      b[c] = gf256::add(b[c], gf256::mul(x[r], a.at(r, c)));
  const auto sol = solve_left(a, b);
  ASSERT_TRUE(sol.has_value());
  std::vector<gf256::value_type> b2(b.size(), 0);
  for (std::size_t c = 0; c < b.size(); ++c)
    for (std::size_t r = 0; r < n; ++r)
      b2[c] = gf256::add(b2[c], gf256::mul((*sol)[r], a.at(r, c)));
  EXPECT_EQ(b2, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LinalgProperty,
    ::testing::Values(la_param{2, 1}, la_param{3, 2}, la_param{4, 3}, la_param{5, 4},
                      la_param{8, 5}, la_param{12, 6}, la_param{16, 7},
                      la_param{24, 8}),
    [](const ::testing::TestParamInfo<la_param>& info) {
      return "n" + std::to_string(info.param.n) + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace nab::gf
