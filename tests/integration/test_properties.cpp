// Parameterized property sweep: every (topology, fault placement, strategy,
// seed) combination must preserve the BB contract — per-instance agreement
// and validity — plus the evidence invariants: disputes always touch a
// corrupt node, convictions only hit corrupt nodes, and dispute control runs
// at most f(f+1) times.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/nab.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

enum class strategy_kind {
  honest,
  phase1_garble,
  phase1_target,
  equivocate,
  phase2_lie,
  false_flag,
  stealth,
  chaos,
};

const char* strategy_name(strategy_kind k) {
  switch (k) {
    case strategy_kind::honest: return "honest";
    case strategy_kind::phase1_garble: return "p1garble";
    case strategy_kind::phase1_target: return "p1target";
    case strategy_kind::equivocate: return "equivocate";
    case strategy_kind::phase2_lie: return "p2lie";
    case strategy_kind::false_flag: return "falseflag";
    case strategy_kind::stealth: return "stealth";
    case strategy_kind::chaos: return "chaos";
  }
  return "?";
}

enum class topo_kind { k4, k5, k5_weak, k7, er6 };

const char* topo_name(topo_kind t) {
  switch (t) {
    case topo_kind::k4: return "K4";
    case topo_kind::k5: return "K5";
    case topo_kind::k5_weak: return "K5weak";
    case topo_kind::k7: return "K7";
    case topo_kind::er6: return "ER6";
  }
  return "?";
}

struct sweep_param {
  topo_kind topo;
  int f;
  std::vector<graph::node_id> corrupt;
  strategy_kind strategy;
  std::uint64_t seed;

  std::string label() const {
    std::string s = std::string(topo_name(topo)) + "_f" + std::to_string(f) + "_c";
    for (graph::node_id v : corrupt) s += std::to_string(v);
    s += std::string("_") + strategy_name(strategy) + "_s" + std::to_string(seed);
    return s;
  }
};

graph::digraph make_topo(topo_kind t, std::uint64_t seed) {
  switch (t) {
    case topo_kind::k4: return graph::complete(4);
    case topo_kind::k5: return graph::complete(5, 2);
    case topo_kind::k5_weak: return graph::complete_with_weak_link(5, 4);
    case topo_kind::k7: return graph::complete(7);
    case topo_kind::er6: {
      rng rand(seed);
      // Dense enough to stay 3-connected in practice; the session ctor
      // throws (and the test skips) otherwise.
      return graph::erdos_renyi(6, 0.9, 1, 4, rand);
    }
  }
  return graph::complete(4);
}

std::unique_ptr<nab_adversary> make_strategy(strategy_kind k, std::uint64_t seed) {
  switch (k) {
    case strategy_kind::honest: return nullptr;
    case strategy_kind::phase1_garble: return std::make_unique<phase1_corruptor>();
    case strategy_kind::phase1_target: return std::make_unique<phase1_corruptor>(3);
    case strategy_kind::equivocate:
      return std::make_unique<equivocating_source>(std::set<graph::node_id>{1, 3});
    case strategy_kind::phase2_lie: return std::make_unique<phase2_liar>(seed);
    case strategy_kind::false_flag: return std::make_unique<false_flagger>();
    case strategy_kind::stealth: return std::make_unique<stealth_disputer>();
    case strategy_kind::chaos: return std::make_unique<chaos_adversary>(seed);
  }
  return nullptr;
}

class NabProperty : public ::testing::TestWithParam<sweep_param> {};

TEST_P(NabProperty, ContractAndEvidenceInvariants) {
  const sweep_param& p = GetParam();
  const graph::digraph g = make_topo(p.topo, p.seed);
  sim::fault_set faults(g.universe(), p.corrupt);
  const auto adv = make_strategy(p.strategy, p.seed);

  std::unique_ptr<session> s;
  try {
    s = std::make_unique<session>(session_config{.g = g, .f = p.f}, faults, adv.get());
  } catch (const ::nab::error&) {
    GTEST_SKIP() << "infeasible draw (connectivity)";
  }

  rng rand(p.seed ^ 0xFEED);
  const auto reports = s->run_many(5, 8, rand);

  for (const auto& r : reports) {
    EXPECT_TRUE(r.agreement) << p.label() << " instance " << r.index;
    EXPECT_TRUE(r.validity) << p.label() << " instance " << r.index;
  }
  for (const auto& [a, b] : s->disputes().pairs())
    EXPECT_TRUE(faults.is_corrupt(a) || faults.is_corrupt(b))
        << p.label() << ": honest pair {" << a << "," << b << "} in dispute";
  for (graph::node_id v : s->disputes().convicted())
    EXPECT_TRUE(faults.is_corrupt(v)) << p.label() << ": honest node " << v
                                      << " convicted";
  EXPECT_LE(s->stats().dispute_phases, p.f * (p.f + 1)) << p.label();
  // Honest nodes are never expelled from G_k.
  for (graph::node_id v : g.active_nodes()) {
    if (faults.is_honest(v)) {
      EXPECT_TRUE(s->current_graph().is_active(v)) << p.label();
    }
  }
}

std::vector<sweep_param> make_sweep() {
  std::vector<sweep_param> out;
  const strategy_kind all_strategies[] = {
      strategy_kind::honest,     strategy_kind::phase1_garble,
      strategy_kind::phase1_target, strategy_kind::equivocate,
      strategy_kind::phase2_lie, strategy_kind::false_flag,
      strategy_kind::stealth,    strategy_kind::chaos,
  };
  // f=1 topologies, corrupt node sweeps over distinct roles (source / relay).
  for (const auto topo : {topo_kind::k4, topo_kind::k5, topo_kind::k5_weak}) {
    for (const strategy_kind s : all_strategies) {
      for (const graph::node_id corrupt : {0, 2}) {
        // equivocating_source only makes sense when the source is corrupt.
        if (s == strategy_kind::equivocate && corrupt != 0) continue;
        out.push_back({topo, 1, {corrupt}, s, 11});
      }
    }
  }
  // f=2 on K7 with colluding pairs.
  for (const strategy_kind s :
       {strategy_kind::phase1_garble, strategy_kind::phase2_lie,
        strategy_kind::stealth, strategy_kind::chaos}) {
    out.push_back({topo_kind::k7, 2, {1, 4}, s, 13});
    out.push_back({topo_kind::k7, 2, {0, 5}, s, 17});
  }
  // Random topologies with chaos across seeds.
  for (std::uint64_t seed : {101, 202, 303, 404}) {
    out.push_back({topo_kind::er6, 1, {2}, strategy_kind::chaos, seed});
    out.push_back({topo_kind::er6, 1, {0}, strategy_kind::chaos, seed + 1});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NabProperty, ::testing::ValuesIn(make_sweep()),
                         [](const ::testing::TestParamInfo<sweep_param>& info) {
                           return info.param.label();
                         });

}  // namespace
}  // namespace nab::core
