// Throughput-side properties across seeded random networks: the realized
// per-instance rates dominate the worst-case quantities (gamma_k >= gamma*,
// rho_k >= rho* — the monotonicity Section 5.1 builds on), fault-free
// measured throughput beats the paper's NAB lower bound, and Theorem 3's
// algebra holds on every draw.

#include <gtest/gtest.h>

#include <memory>

#include "core/nab.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

class ThroughputProperty : public ::testing::TestWithParam<std::uint64_t> {};

graph::digraph draw_graph(std::uint64_t seed) {
  rng rand(seed);
  return graph::erdos_renyi(5, 0.85, 1, 5, rand);
}

TEST_P(ThroughputProperty, RealizedRatesDominateWorstCase) {
  const graph::digraph g = draw_graph(GetParam());
  std::unique_ptr<session> s;
  try {
    s = std::make_unique<session>(session_config{.g = g, .f = 1}, sim::fault_set(5));
  } catch (const ::nab::error&) {
    GTEST_SKIP() << "draw below 2f+1 connectivity";
  }
  const capacity_bounds b = compute_bounds(g, 0, 1, gamma_mode::exhaustive);
  EXPECT_GE(s->next_gamma(), b.gamma_star);
  EXPECT_GE(static_cast<double>(s->next_rho()), std::floor(b.rho_star));
}

TEST_P(ThroughputProperty, FaultFreeMeasuredBeatsNabBound) {
  const graph::digraph g = draw_graph(GetParam());
  std::unique_ptr<session> s;
  try {
    s = std::make_unique<session>(session_config{.g = g, .f = 1}, sim::fault_set(5));
  } catch (const ::nab::error&) {
    GTEST_SKIP() << "draw below 2f+1 connectivity";
  }
  const capacity_bounds b = compute_bounds(g, 0, 1, gamma_mode::exhaustive);
  rng rand(GetParam() ^ 0x77);
  s->run_many(3, 2048, rand);  // L = 32 Kib amortizes the flag term
  EXPECT_GE(s->stats().throughput() + 1e-9, b.nab_throughput_bound) << "seed "
                                                                    << GetParam();
}

TEST_P(ThroughputProperty, Theorem3AlgebraHolds) {
  const graph::digraph g = draw_graph(GetParam());
  const capacity_bounds b = compute_bounds(g, 0, 1, gamma_mode::exhaustive);
  EXPECT_GE(b.nab_throughput_bound + 1e-9, b.capacity_upper_bound / 3.0);
  if (static_cast<double>(b.gamma_star) <= b.rho_star)
    EXPECT_GE(b.nab_throughput_bound + 1e-9, b.capacity_upper_bound / 2.0);
  EXPECT_LE(b.nab_throughput_bound, b.capacity_upper_bound + 1e-9);
}

TEST_P(ThroughputProperty, AttackedThroughputStillCorrectAndImproving) {
  const graph::digraph g = draw_graph(GetParam());
  sim::fault_set faults(5, {2});
  stealth_disputer adv;
  std::unique_ptr<session> s;
  try {
    s = std::make_unique<session>(session_config{.g = g, .f = 1}, faults, &adv);
  } catch (const ::nab::error&) {
    GTEST_SKIP() << "draw below 2f+1 connectivity";
  }
  rng rand(GetParam() ^ 0x99);
  const auto first = s->run_many(4, 64, rand);
  const double early = s->stats().throughput();
  const auto later = s->run_many(12, 64, rand);
  const double late = s->stats().throughput();
  for (const auto& r : first) {
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.validity);
  }
  for (const auto& r : later) {
    EXPECT_TRUE(r.agreement);
    EXPECT_TRUE(r.validity);
  }
  EXPECT_GE(late, early);  // amortization only improves the running average
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThroughputProperty,
                         ::testing::Values(7, 19, 23, 31, 41, 53, 61, 71));

}  // namespace
}  // namespace nab::core
