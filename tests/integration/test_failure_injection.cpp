// Failure-injection scenarios beyond the uniform sweeps: colluders
// attacking through different phases at once, silence (default-value
// handling), corruption inside the classical-BB subprotocols, and
// adversaries that lie only in their Phase-3 claims.

#include <gtest/gtest.h>

#include <memory>

#include "core/nab.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

void expect_contract(const std::vector<instance_report>& reports) {
  for (const auto& r : reports) {
    EXPECT_TRUE(r.agreement) << "instance " << r.index;
    EXPECT_TRUE(r.validity) << "instance " << r.index;
  }
}

void expect_soundness(const session& s, const sim::fault_set& faults, int f) {
  for (const auto& [a, b] : s.disputes().pairs())
    EXPECT_TRUE(faults.is_corrupt(a) || faults.is_corrupt(b));
  for (graph::node_id v : s.disputes().convicted())
    EXPECT_TRUE(faults.is_corrupt(v));
  EXPECT_LE(s.stats().dispute_phases, f * (f + 1));
}

TEST(FailureInjection, CollusionAcrossPhases) {
  // Node 1 garbles Phase-1 shares while node 4 lies in the Equality Check —
  // heterogeneous simultaneous attacks via the composite adversary.
  const graph::digraph g = graph::complete(7);
  sim::fault_set faults(7, {1, 4});
  phase1_corruptor p1;
  phase2_liar p2(99);
  composite_adversary combo;
  combo.assign(1, &p1);
  combo.assign(4, &p2);
  session s({.g = g, .f = 2}, faults, &combo);
  rng rand(1);
  expect_contract(s.run_many(6, 8, rand));
  expect_soundness(s, faults, 2);
  // Both attackers leave evidence.
  bool evidence_on_1 = s.disputes().is_convicted(1);
  bool evidence_on_4 = s.disputes().is_convicted(4);
  for (const auto& [a, b] : s.disputes().pairs()) {
    evidence_on_1 = evidence_on_1 || a == 1 || b == 1;
    evidence_on_4 = evidence_on_4 || a == 4 || b == 4;
  }
  EXPECT_TRUE(evidence_on_1);
  EXPECT_TRUE(evidence_on_4);
}

TEST(FailureInjection, CorruptSourceAndRelayTogether) {
  const graph::digraph g = graph::complete(7);
  sim::fault_set faults(7, {0, 3});
  equivocating_source src({2, 5});
  phase1_corruptor relay;
  composite_adversary combo;
  combo.set_source(0);
  combo.assign(0, &src);
  combo.assign(3, &relay);
  session s({.g = g, .f = 2}, faults, &combo);
  rng rand(2);
  const auto reports = s.run_many(6, 8, rand);
  expect_contract(reports);  // validity vacuous (source corrupt), agreement must hold
  expect_soundness(s, faults, 2);
}

/// Silence: forwards nothing (empty chunk -> zero-filled default value) and
/// never sends coded symbols (empty payload of the right shape).
class silent_node : public nab_adversary {
 public:
  chunk phase1_forward_chunk(int, graph::node_id, graph::node_id,
                             const chunk&) override {
    return {};
  }
  coded_symbols phase2_coded(graph::node_id, graph::node_id,
                             const coded_symbols& honest) override {
    coded_symbols out = honest;
    for (word& w : out.words) w = 0;
    return out;
  }
};

TEST(FailureInjection, SilentNodeDefaultValueHandling) {
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {2});
  silent_node adv;
  session s({.g = g, .f = 1}, faults, &adv);
  rng rand(3);
  expect_contract(s.run_many(4, 8, rand));
  expect_soundness(s, faults, 1);
  EXPECT_TRUE(s.disputes().is_convicted(2));  // silence contradicts DC3 replay
}

/// Lies only in Phase 3: truthful protocol execution but forged claims about
/// what a victim sent — must dispute {forger, victim}, never convict the
/// honest victim.
class phase3_only_liar : public nab_adversary {
 public:
  bool phase2_flag(graph::node_id, bool) override { return true; }  // force Phase 3
  node_claims phase3_claims(graph::node_id v, const node_claims& honest) override {
    claim_forger forger(0);  // victim: the source
    return forger.phase3_claims(v, honest);
  }
};

TEST(FailureInjection, ClaimForgeryDisputesButNeverConvictsVictim) {
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {3});
  phase3_only_liar adv;
  session s({.g = g, .f = 1}, faults, &adv);
  rng rand(4);
  expect_contract(s.run_many(3, 8, rand));
  expect_soundness(s, faults, 1);
  EXPECT_FALSE(s.disputes().is_convicted(0));  // the framed victim stays in
}

/// Misbehaves inside the classical-BB sub-protocol: equivocates its flag
/// announcement within EIG (source_value hook), not just its input bit.
class bb_level_equivocator : public nab_adversary {
 public:
  bool phase2_flag(graph::node_id, bool) override { return true; }
  bb::eig_adversary* eig() override { return &eig_; }

 private:
  class split_flags : public bb::eig_adversary {
   public:
    bb::value source_value(graph::node_id, graph::node_id receiver,
                           const bb::value&) override {
      return {receiver % 2 == 0 ? 1u : 0u};
    }
  };
  split_flags eig_;
};

TEST(FailureInjection, EquivocationInsideFlagBroadcast) {
  // EIG agreement forces a single agreed flag bit despite the equivocation;
  // whatever it lands on, the instance outcome stays correct.
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {4});
  bb_level_equivocator adv;
  session s({.g = g, .f = 1}, faults, &adv);
  rng rand(5);
  expect_contract(s.run_many(4, 8, rand));
  expect_soundness(s, faults, 1);
}

/// Tampers every copy it relays on emulated BB paths (in addition to a
/// false flag that forces those paths to be used for dispute control).
class relay_tamperer : public nab_adversary {
 public:
  bool phase2_flag(graph::node_id, bool) override { return true; }
  bb::relay_adversary* relay() override { return &relay_; }

 private:
  class forge_all : public bb::relay_adversary {
   public:
    std::optional<sim::payload> tamper(
        const std::vector<graph::node_id>&, const sim::message&) override {
      return sim::payload{0xBAD, 0xBEEF};
    }
  };
  forge_all relay_;
};

TEST(FailureInjection, RelayTamperingOnEmulatedPathsIsHarmless) {
  // Remove a link so the flag/claim broadcasts must emulate that channel
  // over 2f+1 paths; the corrupt node tampers every copy it relays. The
  // majority vote must absorb it completely.
  graph::digraph g = graph::complete(5, 2);
  g.remove_edge_pair(0, 4);
  sim::fault_set faults(5, {2});
  relay_tamperer adv;
  session s({.g = g, .f = 1}, faults, &adv);
  rng rand(44);
  expect_contract(s.run_many(3, 8, rand));
  expect_soundness(s, faults, 1);
  EXPECT_TRUE(s.disputes().is_convicted(2));  // the false flag still convicts
}

/// A fault that flips ON in the middle of the Equality Check: honest for the
/// first edges of every instance, garbling from there on. Exercises the
/// per-run arena with transcripts that change character mid-phase.
class mid_phase_flipper : public nab_adversary {
 public:
  void on_instance_begin(int, const graph::digraph&) override { calls_ = 0; }
  coded_symbols phase2_coded(graph::node_id, graph::node_id,
                             const coded_symbols& honest) override {
    if (++calls_ <= 2) return honest;  // first two edges honest, then corrupt
    coded_symbols out = honest;
    for (word& w : out.words) w = static_cast<word>(w ^ 0x5a5a);
    return out;
  }

 private:
  int calls_ = 0;
};

TEST(FailureInjection, MidPhaseFaultFlipUnderSharedArena) {
  // The session borrows an external arena (the fleet-shard configuration);
  // a fault that switches on mid-Equality-Check must leave the usual
  // evidence and the arena empty after every instance.
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {2});
  mid_phase_flipper adv;
  sim::run_arena arena;
  session s({.g = g, .f = 1}, faults, &adv, &arena);
  rng rand(21);
  const auto reports = s.run_many(5, 8, rand);
  expect_contract(reports);
  expect_soundness(s, faults, 1);
  EXPECT_TRUE(reports.front().mismatch_announced);  // the flip was caught
  EXPECT_EQ(arena.live_allocations(), 0u);
  EXPECT_EQ(arena.resets(), 5u);
}

/// A run that aborts outright in the middle of a phase (the
/// paper-invariant-violation path: an exception unwinds out of
/// run_instance while transcripts, claim maps, and payloads are live).
class mid_phase_aborter : public nab_adversary {
 public:
  coded_symbols phase2_coded(graph::node_id, graph::node_id,
                             const coded_symbols& honest) override {
    if (++calls_ == 3) throw error("injected mid-phase fault");
    return honest;
  }

 private:
  int calls_ = 0;
};

TEST(FailureInjection, MidPhaseAbortDoesNotLeakIntoTheArena) {
  // run_arena::reset aborts the process if anything pooled survives the
  // instance epilogue, so merely *surviving* the throw proves there is no
  // use-after-reset; the session and its arena stay serviceable after.
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {2});
  mid_phase_aborter adv;
  sim::run_arena arena;
  session s({.g = g, .f = 1}, faults, &adv, &arena);
  rng rand(22);
  std::vector<word> input(8, 0x1234);
  EXPECT_THROW(s.run_instance(input), error);
  EXPECT_EQ(arena.live_allocations(), 0u);
  EXPECT_GE(arena.resets(), 1u);
  // The aborter stays past its trigger; later instances run clean on the
  // same arena.
  expect_contract(s.run_many(3, 8, rand));
  expect_soundness(s, faults, 1);
  EXPECT_EQ(arena.live_allocations(), 0u);
}

TEST(FailureInjection, ChaosAtHighRateManyInstances) {
  const graph::digraph g = graph::complete(7);
  sim::fault_set faults(7, {2, 6});
  chaos_adversary adv(0xBAD, 0.8);
  session s({.g = g, .f = 2}, faults, &adv);
  rng rand(6);
  expect_contract(s.run_many(10, 8, rand));
  expect_soundness(s, faults, 2);
}

TEST(FailureInjection, AttackEventuallyStopsCostingThroughput) {
  // After the attacker is convicted or out of edges, instances are clean;
  // the tail of a long run must be dispute-free.
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(5, {1});
  chaos_adversary adv(7, 0.9);
  session s({.g = g, .f = 1}, faults, &adv);
  rng rand(7);
  const auto reports = s.run_many(12, 8, rand);
  expect_contract(reports);
  for (std::size_t i = reports.size() - 4; i < reports.size(); ++i)
    EXPECT_FALSE(reports[i].dispute_phase_run) << "instance " << i;
}

}  // namespace
}  // namespace nab::core
