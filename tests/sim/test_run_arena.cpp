// Unit tests for sim::run_arena (reset reuse, size-class pooling, alignment,
// header-routed deallocation) plus the allocation-count regression harness:
// a global operator-new interposition counter pins the heap-allocation
// budget of a clean K_7 session, the guard this PR's arena work (and every
// future change to the simulation hot path) is measured against.

#include "sim/run_arena.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/session.hpp"
#include "graph/generators.hpp"
#include "sim/faults.hpp"
// Binary-wide operator-new interposition (counts every heap allocation this
// test binary makes; measurements take deltas around the measured region
// with no gtest assertions in between). Shared with bench_micro_session so
// both harnesses count identically.
#include "util/heap_alloc_counter.hpp"
#include "util/rng.hpp"

namespace nab::sim {
namespace {

using util::heap_allocs;

TEST(RunArena, MonotonicBumpAndResetReusesPages) {
  run_arena a;
  void* first = a.allocate(100, 8);
  ASSERT_NE(first, nullptr);
  void* second = a.allocate(200, 16);
  const std::size_t blocks = a.block_count();
  const std::size_t reserved = a.bytes_reserved();
  a.deallocate(first, 100);
  a.deallocate(second, 200);
  // After releasing everything, reset rewinds without freeing pages...
  a.reset();
  EXPECT_EQ(a.block_count(), blocks);
  EXPECT_EQ(a.bytes_reserved(), reserved);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // ... and the same allocation sequence lands on the same addresses.
  EXPECT_EQ(a.allocate(100, 8), first);
}

TEST(RunArena, SizeClassPoolingRecyclesFreedBlocks) {
  run_arena a;
  void* p = a.allocate(48, 8);  // 64-byte class
  a.deallocate(p, 48);
  const std::uint64_t hits_before = a.pool_hits();
  void* q = a.allocate(64, 8);  // same class: must come off the free list
  EXPECT_EQ(q, p);
  EXPECT_EQ(a.pool_hits(), hits_before + 1);
  a.deallocate(q, 64);
  a.reset();
}

TEST(RunArena, AllocationsAreSixteenAligned) {
  run_arena a;
  for (std::size_t bytes : {1u, 7u, 24u, 100u, 5000u}) {
    void* p = a.allocate(bytes, 16);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u) << bytes;
    a.deallocate(p, bytes);
  }
  a.reset();
}

TEST(RunArena, LargeBlocksAreBumpOnlyAndReclaimedByReset) {
  constexpr std::size_t big_bytes = 256 * 1024;  // above max_pooled_bytes
  run_arena a;
  void* big = a.allocate(big_bytes, 16);
  const std::size_t used = a.bytes_in_use();
  EXPECT_GE(used, big_bytes);
  a.deallocate(big, big_bytes);      // bump-only: space not reused yet...
  void* big2 = a.allocate(big_bytes, 16);
  EXPECT_NE(big2, nullptr);
  a.deallocate(big2, big_bytes);
  a.reset();                          // ...until the reset rewinds it
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.allocate(big_bytes, 16), big);
  a.deallocate(big, big_bytes);
  a.reset();
}

TEST(RunArena, OversizedContainersBypassTheArena) {
  // arena_alloc routes buffers beyond max_pooled_bytes straight to the heap
  // even while an arena is ambient — malloc recycles those better than a
  // monotonic arena can (cold-page churn).
  run_arena a;
  scoped_run_arena scope(&a);
  payload big(run_arena::max_pooled_bytes / sizeof(std::uint64_t) + 1, 1);
  EXPECT_FALSE(a.owns(big.data()));
  payload small(16, 1);
  EXPECT_TRUE(a.owns(small.data()));
}

TEST(RunArena, AmbientScopingAndHeapFallback) {
  run_arena a;
  EXPECT_EQ(ambient_arena(), nullptr);
  payload heap_backed{1, 2, 3};  // no ambient arena: plain heap
  EXPECT_FALSE(a.owns(heap_backed.data()));
  {
    scoped_run_arena scope(&a);
    EXPECT_EQ(ambient_arena(), &a);
    payload arena_backed{4, 5, 6};
    EXPECT_TRUE(a.owns(arena_backed.data()));
    {
      scoped_run_arena suspend(nullptr);  // nesting suspends pooling
      EXPECT_EQ(ambient_arena(), nullptr);
      payload suspended{7};
      EXPECT_FALSE(a.owns(suspended.data()));
    }
    EXPECT_EQ(ambient_arena(), &a);
  }
  EXPECT_EQ(ambient_arena(), nullptr);
  a.reset();
}

TEST(RunArena, HeaderRoutesDeallocationAfterScopeEnds) {
  // A container allocated under the arena may be destroyed after the ambient
  // scope ended (but before the reset): the per-allocation header routes the
  // free back to the owning arena, not the heap.
  run_arena a;
  payload escaped;
  {
    scoped_run_arena scope(&a);
    escaped.assign(100, 42);
  }
  EXPECT_TRUE(a.owns(escaped.data()));
  EXPECT_GT(a.live_allocations(), 0u);
  payload().swap(escaped);  // releases into the arena's free lists
  EXPECT_EQ(a.live_allocations(), 0u);
  a.reset();
}

#if GTEST_HAS_DEATH_TEST
TEST(RunArenaDeathTest, ResetWithLiveAllocationAborts) {
  // Use-after-reset is a contract violation the arena turns into a
  // deterministic abort — the property the session's epilogue relies on.
  EXPECT_DEATH(
      {
        run_arena a;
        scoped_run_arena scope(&a);
        payload leak(8, 1);
        a.reset();
      },
      "live allocations");
}
#endif

// ---------------------------------------------------------------------------
// The allocation-budget regression harness.
// ---------------------------------------------------------------------------

/// Heap allocations per clean K_7 instance (f=1, 64-word payloads), measured
/// over `iters` instances after one warm-up instance.
std::uint64_t allocs_per_clean_k7_instance(bool pool_memory) {
  core::session_config cfg;
  cfg.g = graph::complete(7);
  cfg.f = 1;
  cfg.pool_memory = pool_memory;
  core::session s(cfg, fault_set(7));
  rng rand(1);
  std::vector<core::word> input(64);
  for (auto& w : input) w = static_cast<core::word>(rand.below(65536));
  s.run_instance(input);  // warm-up: arena pages, channel plan, coding
  constexpr int iters = 8;
  const std::uint64_t before = heap_allocs();
  for (int i = 0; i < iters; ++i) s.run_instance(input);
  return (heap_allocs() - before) / iters;
}

TEST(RunArena, AllocationBudgetCleanK7Session) {
  const std::uint64_t pooled = allocs_per_clean_k7_instance(true);
  const std::uint64_t heap_path = allocs_per_clean_k7_instance(false);
  std::printf("[ measure ] clean K_7 instance: %llu heap allocs pooled, "
              "%llu unpooled (%.1f%% eliminated)\n",
              static_cast<unsigned long long>(pooled),
              static_cast<unsigned long long>(heap_path),
              100.0 * (1.0 - static_cast<double>(pooled) /
                                 static_cast<double>(heap_path)));

  // The seed measured ~3.4k heap allocations per clean K_7 instance; the
  // unpooled path must still be in that regime for the ratio to mean
  // anything.
  EXPECT_GE(heap_path, 1000u) << "baseline lost its allocations — recalibrate";

  // Tentpole criterion: the arena kills >= 80% of per-instance allocations.
  EXPECT_LE(pooled * 5, heap_path)
      << "pooled=" << pooled << " heap=" << heap_path
      << " — arena coverage regressed below 80%";

  // Absolute pin (steady state currently measures ~60; generous headroom so
  // benign drift does not flake, while a lost arena integration — which
  // jumps back to thousands — always trips).
  EXPECT_LE(pooled, 200u) << "heap path: " << heap_path;
}

TEST(RunArena, SteadyStateSweepKeepsArenaPagesStable) {
  // Across repeated instances the arena must stop growing: the second and
  // later instances run entirely inside the pages the first one mapped.
  core::session_config cfg;
  cfg.g = graph::complete(7);
  cfg.f = 1;
  run_arena shard_arena;
  core::session s(cfg, fault_set(7), nullptr, &shard_arena);
  rng rand(2);
  std::vector<core::word> input(64, 7);
  s.run_instance(input);
  const std::size_t blocks = shard_arena.block_count();
  const std::uint64_t hits_before = shard_arena.pool_hits();
  for (int i = 0; i < 6; ++i) s.run_instance(input);
  EXPECT_EQ(shard_arena.block_count(), blocks);
  EXPECT_GT(shard_arena.pool_hits(), hits_before);  // free lists are working
  EXPECT_EQ(shard_arena.live_allocations(), 0u);    // reset left it empty
  EXPECT_EQ(shard_arena.resets(), 7u);
}

}  // namespace
}  // namespace nab::sim
