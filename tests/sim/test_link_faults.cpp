// The Gilbert-Elliott link-fault layer: spec parsing at the CLI boundary,
// per-link stream independence and determinism (including the pinned golden
// drop sequences every lossy record ultimately derives from), the inert
// "zero" preset's can't-perturb guarantee, and the network ARQ contract
// (retransmit until delivered or the retry budget runs dry).

#include "sim/link_faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"
#include "util/error.hpp"

namespace nab::sim {
namespace {

TEST(LinkFaultSpec, PresetsParse) {
  for (const std::string& name : loss_preset_names()) {
    const link_fault_params p = parse_loss_spec(name);
    EXPECT_GE(p.p_loss_bad, p.p_loss_good) << name;
    EXPECT_EQ(p.lossless(), name == "zero") << name;
  }
  const link_fault_params bursty = parse_loss_spec("bursty");
  EXPECT_DOUBLE_EQ(bursty.p_loss_good, 0.01);
  EXPECT_DOUBLE_EQ(bursty.p_loss_bad, 0.5);
  EXPECT_DOUBLE_EQ(bursty.p_good_to_bad, 0.05);
  EXPECT_DOUBLE_EQ(bursty.p_bad_to_good, 0.25);
  EXPECT_DOUBLE_EQ(bursty.jitter, 0.0);
}

TEST(LinkFaultSpec, ZeroIsInertHeavyIsNot) {
  EXPECT_TRUE(parse_loss_spec("zero").inert());
  EXPECT_TRUE(parse_loss_spec("zero").lossless());
  // heavy is the only preset with jitter: lossy AND time-dilating.
  const link_fault_params heavy = parse_loss_spec("heavy");
  EXPECT_FALSE(heavy.lossless());
  EXPECT_GT(heavy.jitter, 0.0);
  // A custom lossless tuple with no jitter path is still inert.
  EXPECT_TRUE(parse_loss_spec("0,0,0.5,0.5").inert());
}

TEST(LinkFaultSpec, CustomTupleParses) {
  const link_fault_params p = parse_loss_spec("0.125,0.75,0.0625,1");
  EXPECT_DOUBLE_EQ(p.p_loss_good, 0.125);
  EXPECT_DOUBLE_EQ(p.p_loss_bad, 0.75);
  EXPECT_DOUBLE_EQ(p.p_good_to_bad, 0.0625);
  EXPECT_DOUBLE_EQ(p.p_bad_to_good, 1.0);
  EXPECT_DOUBLE_EQ(p.jitter, 0.0);  // custom tuples never dilate time
}

TEST(LinkFaultSpec, MalformedSpecsThrow) {
  // "none" means *no model attached*; callers handle it before parsing, so
  // the parser must reject it rather than return some inert model.
  EXPECT_THROW(parse_loss_spec("none"), nab::error);
  EXPECT_THROW(parse_loss_spec(""), nab::error);
  EXPECT_THROW(parse_loss_spec("medium"), nab::error);
  EXPECT_THROW(parse_loss_spec("ZERO"), nab::error);
  EXPECT_THROW(parse_loss_spec("0.1,0.2,0.3"), nab::error);        // too few
  EXPECT_THROW(parse_loss_spec("0.1,0.2,0.3,0.4,0.5"), nab::error);  // too many
  EXPECT_THROW(parse_loss_spec("0.1,0.2,0.3,0.4x"), nab::error);   // junk tail
  EXPECT_THROW(parse_loss_spec("0.1,0.2,0.3,1.5"), nab::error);    // p > 1
  EXPECT_THROW(parse_loss_spec("0.1,0.2,0.3,-0.1"), nab::error);   // p < 0
  EXPECT_THROW(parse_loss_spec("0.1,,0.3,0.4"), nab::error);       // empty field
  EXPECT_THROW(parse_loss_spec("a,b,c,d"), nab::error);
}

TEST(LinkFaultModel, GoldenDropSequencesArePinned) {
  // If these move, every recorded lossy BENCH_runtime.json becomes
  // incomparable with new runs — same contract as the runtime's pinned
  // splitmix64 values. Bump only with a conscious format break.
  link_fault_model m(parse_loss_spec("bursty"), 0x1234);
  std::uint64_t bits01 = 0, bits23 = 0;
  for (int i = 0; i < 64; ++i) {
    if (m.erase(0, 1, 4)) bits01 |= 1ULL << i;
    if (m.erase(2, 3, 4)) bits23 |= 1ULL << i;
  }
  EXPECT_EQ(bits01, 0x005a000010100000ULL);
  EXPECT_EQ(bits23, 0x0180000000000090ULL);
}

TEST(LinkFaultModel, ZeroPresetNeverDropsAndNeverDilates) {
  link_fault_model m(parse_loss_spec("zero"), 99);
  for (int i = 0; i < 512; ++i) {
    EXPECT_FALSE(m.erase(0, 1, 3));
    EXPECT_FALSE(m.in_bad_state(0, 1, 3));
  }
  EXPECT_DOUBLE_EQ(m.time_dilation(0, 1, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.time_dilation(2, 1, 3), 1.0);
}

TEST(LinkFaultModel, LinkStreamsAreIndependentOfInterleaving) {
  // A link's erasure history is a pure function of (seed, link index,
  // transmissions carried so far) — traffic on other links must not shift
  // it. This is what makes lossy sweeps bit-identical for any --jobs count.
  link_fault_model alone(parse_loss_spec("bursty"), 7);
  link_fault_model interleaved(parse_loss_spec("bursty"), 7);
  std::vector<bool> a, b;
  for (int i = 0; i < 128; ++i) a.push_back(alone.erase(1, 2, 4));
  for (int i = 0; i < 128; ++i) {
    interleaved.erase(0, 1, 4);
    b.push_back(interleaved.erase(1, 2, 4));
    interleaved.erase(3, 2, 4);
  }
  EXPECT_EQ(a, b);
}

TEST(LinkFaultModel, AdjacentLinksAreDecorrelated) {
  // Streams of adjacent link indices must not be shifted copies of each
  // other (the seed mix exists for exactly this).
  link_fault_model m(parse_loss_spec("heavy"), 3);
  std::vector<bool> a, b;
  for (int i = 0; i < 256; ++i) {
    a.push_back(m.erase(0, 1, 4));
    b.push_back(m.erase(0, 2, 4));
  }
  EXPECT_NE(a, b);
}

TEST(LinkFaultModel, BurstsRaiseTheLossRate) {
  // Sanity on the chain semantics, not exact rates: the heavy preset must
  // actually visit the bad state, and the bad state must drop more.
  link_fault_model m(parse_loss_spec("heavy"), 11);
  int drops_good = 0, drops_bad = 0, samples_good = 0, samples_bad = 0;
  for (int i = 0; i < 20000; ++i) {
    const bool was_bad = m.in_bad_state(0, 1, 2);
    const bool lost = m.erase(0, 1, 2);
    (was_bad ? samples_bad : samples_good) += 1;
    if (lost) (was_bad ? drops_bad : drops_good) += 1;
  }
  ASSERT_GT(samples_bad, 100);  // the chain spends real time in bursts
  ASSERT_GT(samples_good, 100);
  const double rate_good = static_cast<double>(drops_good) / samples_good;
  const double rate_bad = static_cast<double>(drops_bad) / samples_bad;
  EXPECT_NEAR(rate_good, 0.05, 0.02);
  EXPECT_NEAR(rate_bad, 0.7, 0.05);
}

TEST(LinkFaultModel, TimeDilationIsFixedPerLinkWithinAmplitude) {
  const link_fault_params heavy = parse_loss_spec("heavy");
  link_fault_model m(heavy, 0x1234);
  const double d01 = m.time_dilation(0, 1, 4);
  const double d10 = m.time_dilation(1, 0, 4);
  EXPECT_GE(d01, 1.0);
  EXPECT_LE(d01, 1.0 + heavy.jitter);
  EXPECT_NE(d01, d10);  // direction-asymmetric: separate link indices
  // Pinned draws (same format contract as the drop sequences) — and reading
  // the dilation is stateless, so it never perturbs the erasure stream.
  EXPECT_DOUBLE_EQ(d01, 1.2492190456039571);
  EXPECT_DOUBLE_EQ(d10, 1.0166834145797929);
  EXPECT_DOUBLE_EQ(m.time_dilation(0, 1, 4), d01);
  link_fault_model untouched(parse_loss_spec("heavy"), 0x1234);
  link_fault_model probed(parse_loss_spec("heavy"), 0x1234);
  for (int i = 0; i < 16; ++i) probed.time_dilation(0, 1, 4);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(untouched.erase(0, 1, 4), probed.erase(0, 1, 4));
}

TEST(LinkFaultModel, EraseCountsDropsAndBurstOnsets) {
  obs::collector col;
  obs::scoped_collector scope(&col);
  link_fault_model m(parse_loss_spec("heavy"), 5);
  std::uint64_t drops = 0;
  for (int i = 0; i < 2000; ++i)
    if (m.erase(0, 1, 2)) ++drops;
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(col.value(obs::counter::link_drops), drops);
  EXPECT_GT(col.value(obs::counter::link_burst_spans), 0u);
}

TEST(LinkFaultAmbient, ScopesNestAndRestore) {
  ASSERT_EQ(ambient_link_faults(), nullptr);
  link_fault_model outer(parse_loss_spec("zero"), 1);
  link_fault_model inner(parse_loss_spec("bursty"), 2);
  {
    scoped_link_faults a(&outer);
    EXPECT_EQ(ambient_link_faults(), &outer);
    {
      scoped_link_faults b(&inner);
      EXPECT_EQ(ambient_link_faults(), &inner);
      {
        scoped_link_faults c(nullptr);  // suspension
        EXPECT_EQ(ambient_link_faults(), nullptr);
      }
      EXPECT_EQ(ambient_link_faults(), &inner);
    }
    EXPECT_EQ(ambient_link_faults(), &outer);
  }
  EXPECT_EQ(ambient_link_faults(), nullptr);
}

TEST(LossyNetwork, SendChargesBitsButMayNotDeliver) {
  // p_loss = 1 in both states: every send is erased after paying for the
  // link — bits spent, nothing delivered.
  link_fault_model m(parse_loss_spec("1,1,0,1"), 1);
  scoped_link_faults scope(&m);
  network net(graph::complete(3, 2));
  net.send({0, 1, 0, {42}, 8});
  EXPECT_DOUBLE_EQ(net.end_step(), 4.0);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.link_bits(0, 1), 8u);
}

TEST(LossyNetwork, NetworksAttachTheAmbientModel) {
  network clean(graph::complete(3));
  EXPECT_EQ(clean.link_faults(), nullptr);
  EXPECT_FALSE(clean.lossy());
  link_fault_model zero(parse_loss_spec("zero"), 1);
  link_fault_model bursty(parse_loss_spec("bursty"), 1);
  {
    scoped_link_faults scope(&zero);
    network net(graph::complete(3));
    EXPECT_EQ(net.link_faults(), &zero);
    EXPECT_FALSE(net.lossy());  // attached but lossless: not "lossy"
  }
  {
    scoped_link_faults scope(&bursty);
    network net(graph::complete(3));
    EXPECT_TRUE(net.lossy());
  }
}

TEST(LossyNetwork, LossyTransmitRetransmitsUntilDelivered) {
  obs::collector col;
  obs::scoped_collector cscope(&col);
  // Always-bad chain at p_loss_bad = 0.5: delivery needs retries sometimes.
  link_fault_model m(parse_loss_spec("0.5,0.5,0,1"), 9);
  scoped_link_faults scope(&m);
  network net(graph::complete(2, 1));
  int delivered = 0;
  for (int i = 0; i < 200; ++i)
    if (net.lossy_transmit(0, 1, 4)) ++delivered;
  EXPECT_EQ(delivered, 200);  // budget 12 vs p=0.5: exhaustion is 2^-13
  const std::uint64_t retx = col.value(obs::counter::link_retransmits);
  EXPECT_GT(retx, 0u);
  EXPECT_EQ(col.value(obs::counter::link_drops), retx);  // every drop retried
  EXPECT_EQ(col.value(obs::counter::link_retry_exhaustions), 0u);
  // Wire accounting: 200 initial charges + one 4-bit recharge and one 1-bit
  // reverse nack per retransmission.
  net.end_step();
  EXPECT_EQ(net.link_bits(0, 1), 200u * 4 + retx * 4);
  EXPECT_EQ(net.link_bits(1, 0), retx * 1);
  // The headroom gauge saw the worst retry chain.
  const std::int64_t headroom = col.gauge_value(obs::gauge::retry_headroom);
  EXPECT_GE(headroom, 0);
  EXPECT_LT(headroom, 12);
}

TEST(LossyNetwork, LossyTransmitExhaustsBudgetOnDeadLink) {
  obs::collector col;
  obs::scoped_collector cscope(&col);
  link_fault_model m(parse_loss_spec("1,1,0,1"), 9);
  scoped_link_faults scope(&m);
  network net(graph::complete(2, 1));
  EXPECT_FALSE(net.lossy_transmit(0, 1, 8));
  EXPECT_EQ(col.value(obs::counter::link_retransmits), 12u);  // full budget
  EXPECT_EQ(col.value(obs::counter::link_retry_exhaustions), 1u);
  EXPECT_EQ(col.gauge_value(obs::gauge::retry_headroom), 0);
  net.end_step();
  EXPECT_EQ(net.link_bits(0, 1), 8u * 13);  // initial + 12 retransmissions
  EXPECT_EQ(net.link_bits(1, 0), 12u);      // one nack bit per retry
}

TEST(LossyNetwork, LossyTransmitWithoutModelIsOneCleanCharge) {
  obs::collector col;
  obs::scoped_collector cscope(&col);
  network net(graph::complete(2, 1));
  EXPECT_TRUE(net.lossy_transmit(0, 1, 8));
  net.end_step();
  EXPECT_EQ(net.link_bits(0, 1), 8u);
  EXPECT_EQ(net.link_bits(1, 0), 0u);
  EXPECT_EQ(col.value(obs::counter::link_retransmits), 0u);
  EXPECT_EQ(col.gauge_value(obs::gauge::retry_headroom), obs::gauge_unset);
}

TEST(LossyNetwork, JitterDilatesStepDuration) {
  // Hand-build a jittered lossless model: jitter only, no drops.
  link_fault_params p;
  p.jitter = 0.25;
  link_fault_model jittered(p, 0x1234);
  scoped_link_faults scope(&jittered);
  network net(graph::complete(4, 1));
  net.send({0, 1, 0, {}, 8});
  // 8 bits on cap 1 dilated by the pinned link 0->1 factor.
  EXPECT_DOUBLE_EQ(net.end_step(), 8.0 * 1.2492190456039571);
  ASSERT_EQ(net.inbox(1).size(), 1u);  // lossless: delivery still happens
}

}  // namespace
}  // namespace nab::sim
