#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "sim/network.hpp"

namespace nab::sim {
namespace {

TEST(Trace, RecordsSendsAndCharges) {
  network net{graph::complete(3)};
  trace t;
  net.attach_trace(&t);
  net.send({0, 1, 7, {1, 2}, 32});
  net.charge(1, 2, 8);
  net.end_step();
  net.send({2, 0, 9, {}, 4});
  net.end_step();

  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].step, 0);
  EXPECT_EQ(t.events()[0].tag, 7u);
  EXPECT_EQ(t.events()[1].tag, 0u);  // bare charge
  EXPECT_EQ(t.events()[2].step, 1);
  EXPECT_EQ(t.link_total(0, 1), 32u);
  EXPECT_EQ(t.link_total(1, 2), 8u);
  EXPECT_TRUE(t.used(2, 0));
  EXPECT_FALSE(t.used(0, 2));
  EXPECT_EQ(t.step_events(0).size(), 2u);
}

TEST(Trace, TagTotalsAccountPerProtocol) {
  network net{graph::complete(3)};
  trace t;
  net.attach_trace(&t);
  net.send({0, 1, 7, {1}, 32});
  net.charge(1, 2, 8, /*tag=*/7);   // tagged bare charge (channel emulation)
  net.charge(2, 0, 16);             // untagged charge
  net.end_step();
  net.send({1, 0, 7, {2}, 4});
  net.end_step();
  EXPECT_EQ(t.tag_total(7), 32u + 8u + 4u);
  EXPECT_EQ(t.tag_total(0), 16u);
  EXPECT_EQ(t.tag_total(99), 0u);
  EXPECT_EQ(t.total_bits(), 60u);
  EXPECT_EQ(t.total_bits(), net.total_bits());
}

TEST(Trace, DetachAndClear) {
  network net{graph::complete(3)};
  trace t;
  net.attach_trace(&t);
  net.send({0, 1, 0, {}, 1});
  net.attach_trace(nullptr);
  net.send({0, 2, 0, {}, 1});
  net.end_step();
  EXPECT_EQ(t.events().size(), 1u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, DumpIsHumanReadable) {
  network net{graph::complete(3)};
  trace t;
  net.attach_trace(&t);
  net.send({0, 1, 5, {}, 16});
  net.end_step();
  const std::string dump = t.dump();
  EXPECT_NE(dump.find("0->1"), std::string::npos);
  EXPECT_NE(dump.find("bits=16"), std::string::npos);
}

TEST(Trace, AmbientTraceAttachesToNewNetworksOnThisThread) {
  EXPECT_EQ(ambient_trace(), nullptr);
  trace t;
  {
    scoped_ambient_trace scope(&t);
    EXPECT_EQ(ambient_trace(), &t);
    network net{graph::paper_fig1a()};  // constructed inside the scope
    net.send({0, 1, 0, {}, 8});
    net.end_step();
    EXPECT_EQ(t.events().size(), 1u);
    // Scopes nest and restore.
    trace inner;
    {
      scoped_ambient_trace nested(&inner);
      EXPECT_EQ(ambient_trace(), &inner);
    }
    EXPECT_EQ(ambient_trace(), &t);
  }
  EXPECT_EQ(ambient_trace(), nullptr);
  // Networks constructed outside any scope stay untraced.
  network quiet{graph::paper_fig1a()};
  quiet.send({0, 1, 0, {}, 8});
  quiet.end_step();
  EXPECT_EQ(t.events().size(), 1u);
}

TEST(Trace, AmbientTraceIsThreadLocal) {
  trace mine;
  scoped_ambient_trace scope(&mine);
  trace* seen_on_other_thread = &mine;
  std::thread other([&] { seen_on_other_thread = ambient_trace(); });
  other.join();
  EXPECT_EQ(seen_on_other_thread, nullptr);
  EXPECT_EQ(ambient_trace(), &mine);
}

TEST(Trace, Phase1UsesOnlyTreeEdges) {
  // Protocol-level assertion enabled by tracing: the unreliable broadcast
  // touches exactly the packed tree edges.
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  network net(g);
  trace t;
  net.attach_trace(&t);
  // Mimic Phase 1's charging pattern directly.
  for (const auto& tree : trees)
    for (const auto& e : tree.edges) net.charge(e.from, e.to, 64);
  net.end_step();
  for (const auto& e : g.edges()) {
    bool in_some_tree = false;
    for (const auto& tree : trees)
      for (const auto& te : tree.edges)
        if (te.from == e.from && te.to == e.to) in_some_tree = true;
    EXPECT_EQ(t.used(e.from, e.to), in_some_tree)
        << e.from << "->" << e.to;
  }
}

}  // namespace
}  // namespace nab::sim
