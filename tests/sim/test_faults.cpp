#include "sim/faults.hpp"

#include <gtest/gtest.h>

namespace nab::sim {
namespace {

TEST(FaultSet, DefaultIsAllHonest) {
  fault_set f(5);
  EXPECT_EQ(f.count(), 0);
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(f.is_honest(v));
  EXPECT_EQ(f.honest_nodes().size(), 5u);
  EXPECT_TRUE(f.corrupt_nodes().empty());
}

TEST(FaultSet, MarkingCorrupt) {
  fault_set f(5, {1, 3});
  EXPECT_EQ(f.count(), 2);
  EXPECT_TRUE(f.is_corrupt(1));
  EXPECT_TRUE(f.is_corrupt(3));
  EXPECT_TRUE(f.is_honest(0));
  EXPECT_EQ(f.corrupt_nodes(), (std::vector<graph::node_id>{1, 3}));
  EXPECT_EQ(f.honest_nodes(), (std::vector<graph::node_id>{0, 2, 4}));
}

TEST(FaultSet, DoubleMarkIsIdempotent) {
  fault_set f(3);
  f.mark_corrupt(2);
  f.mark_corrupt(2);
  EXPECT_EQ(f.count(), 1);
}

}  // namespace
}  // namespace nab::sim
