#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/error.hpp"

namespace nab::sim {
namespace {

network make_line() {
  graph::digraph g(3);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 2);
  return network(std::move(g));
}

TEST(Network, StepDurationIsMaxLoadOverCapacity) {
  network net = make_line();
  net.send({0, 1, 0, {}, 8});   // 8 bits on cap-4 link -> 2 time units
  net.send({1, 2, 0, {}, 2});   // 2 bits on cap-2 link -> 1 time unit
  EXPECT_DOUBLE_EQ(net.end_step(), 2.0);
  EXPECT_DOUBLE_EQ(net.elapsed(), 2.0);
}

TEST(Network, LoadsAccumulateWithinStep) {
  network net = make_line();
  net.send({0, 1, 0, {}, 4});
  net.send({0, 1, 1, {}, 4});
  EXPECT_DOUBLE_EQ(net.end_step(), 2.0);  // 8 bits total on cap 4
}

TEST(Network, DeliveryHappensAtStepBoundary) {
  network net = make_line();
  net.send({0, 1, 7, {42}, 8});
  EXPECT_TRUE(net.inbox(1).empty());
  net.end_step();
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].tag, 7u);
  EXPECT_EQ(net.inbox(1)[0].payload, (sim::payload{42}));
  // Next step clears.
  net.end_step();
  EXPECT_TRUE(net.inbox(1).empty());
}

TEST(Network, SendOnMissingLinkThrows) {
  network net = make_line();
  EXPECT_THROW(net.send({2, 0, 0, {}, 1}), nab::error);
  EXPECT_THROW(net.send({0, 2, 0, {}, 1}), nab::error);
}

TEST(Network, ChargeAccountsWithoutDelivery) {
  network net = make_line();
  net.charge(0, 1, 12);
  EXPECT_DOUBLE_EQ(net.end_step(), 3.0);
  EXPECT_TRUE(net.inbox(1).empty());
  EXPECT_EQ(net.link_bits(0, 1), 12u);
}

TEST(Network, ZeroBitMessagesAreFreeButDelivered) {
  network net = make_line();
  net.send({0, 1, 0, {}, 0});
  EXPECT_DOUBLE_EQ(net.end_step(), 0.0);
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST(Network, LifetimeAccounting) {
  network net = make_line();
  net.send({0, 1, 0, {}, 4});
  net.end_step();
  net.send({0, 1, 0, {}, 4});
  net.send({1, 2, 0, {}, 2});
  net.end_step();
  EXPECT_EQ(net.total_bits(), 10u);
  EXPECT_EQ(net.link_bits(0, 1), 8u);
  EXPECT_EQ(net.link_bits(1, 2), 2u);
  EXPECT_EQ(net.steps(), 2);
  EXPECT_DOUBLE_EQ(net.elapsed(), 2.0);
}

TEST(Network, EmptyStepTakesNoTime) {
  network net = make_line();
  EXPECT_DOUBLE_EQ(net.end_step(), 0.0);
  EXPECT_EQ(net.steps(), 1);
}

TEST(Network, ZeroBitMessagesMustHaveEmptyPayloads) {
  // Zero-bit sends model absent/default-value control messages; smuggling a
  // nonempty payload for free would break the capacity accounting, so the
  // documented precondition is enforced.
  network net = make_line();
  net.send({0, 1, 0, {}, 0});  // empty zero-bit control message: allowed
  EXPECT_THROW(net.send({0, 1, 0, {0xDEAD}, 0}), nab::error);
  EXPECT_DOUBLE_EQ(net.end_step(), 0.0);
  ASSERT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(1)[0].bits, 0u);
}

TEST(Network, StepDurationStaysFiniteUnderLoad) {
  network net = make_line();
  net.send({0, 1, 0, {}, ~std::uint64_t{0} >> 12});
  const double tau = net.end_step();
  EXPECT_TRUE(std::isfinite(tau));
  EXPECT_GT(tau, 0.0);
}

TEST(Network, TopologyRespectsGraphGenerators) {
  network net{graph::paper_fig2()};
  net.send({0, 1, 0, {1, 2}, 128});
  net.send({1, 3, 0, {3}, 64});
  // (0,1) has capacity 2 -> 64 units; (1,3) has capacity 1 -> 64 units.
  EXPECT_DOUBLE_EQ(net.end_step(), 64.0);
}

}  // namespace
}  // namespace nab::sim
