#include "bb/eig.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::bb {
namespace {

struct harness {
  explicit harness(int n, std::vector<graph::node_id> corrupt = {}, int f = 1)
      : g(graph::complete(n)), net(g), faults(n, corrupt), plan(g, f) {}
  graph::digraph g;
  sim::network net;
  sim::fault_set faults;
  channel_plan plan;
};

/// Corrupt source sends a different value to every receiver.
class equivocator : public eig_adversary {
 public:
  value source_value(graph::node_id, graph::node_id receiver, const value&) override {
    return {static_cast<std::uint64_t>(receiver) + 1000};
  }
};

/// Corrupt relays lie about every label they forward, per receiver.
class lying_relay : public eig_adversary {
 public:
  value relay_value(graph::node_id sender, graph::node_id receiver,
                    const std::vector<graph::node_id>&, const value&) override {
    return {static_cast<std::uint64_t>(sender * 100 + receiver)};
  }
};

/// Corrupt nodes stay silent everywhere (default-value behavior).
class silent : public eig_adversary {
 public:
  value source_value(graph::node_id, graph::node_id, const value&) override {
    return {};
  }
  value relay_value(graph::node_id, graph::node_id, const std::vector<graph::node_id>&,
                    const value&) override {
    return {};
  }
};

void expect_agreement_and_validity(const harness& h, const eig_result& r,
                                   std::size_t q, graph::node_id source,
                                   const value* expected) {
  value agreed;
  bool first = true;
  for (graph::node_id v : h.g.active_nodes()) {
    if (h.faults.is_corrupt(v)) continue;
    if (first) {
      agreed = r.decisions[q][static_cast<std::size_t>(v)];
      first = false;
    } else {
      EXPECT_EQ(r.decisions[q][static_cast<std::size_t>(v)], agreed)
          << "disagreement at node " << v;
    }
  }
  if (expected != nullptr && h.faults.is_honest(source)) {
    EXPECT_EQ(agreed, *expected);
  }
}

TEST(Eig, ValidityWithNoFaults) {
  harness h(4);
  const value x{0xDEADBEEF, 0x1234};
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, x}}, 1, 128);
  expect_agreement_and_validity(h, r, 0, 0, &x);
}

TEST(Eig, ValidityWithCorruptRelay) {
  for (graph::node_id corrupt = 1; corrupt < 4; ++corrupt) {
    harness h(4, {corrupt});
    lying_relay adv;
    const value x{42};
    const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, x}}, 1, 64, &adv);
    expect_agreement_and_validity(h, r, 0, 0, &x);
  }
}

TEST(Eig, AgreementWithEquivocatingSource) {
  harness h(4, {0});
  equivocator adv;
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, {7}}}, 1, 64, &adv);
  expect_agreement_and_validity(h, r, 0, 0, nullptr);
}

TEST(Eig, AgreementWithSilentSource) {
  harness h(4, {0});
  silent adv;
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, {7}}}, 1, 64, &adv);
  expect_agreement_and_validity(h, r, 0, 0, nullptr);
}

TEST(Eig, TwoFaultsAmongSeven) {
  // n = 7 > 3f with f = 2; source honest, two corrupt relays.
  harness h(7, {2, 5}, 2);
  lying_relay adv;
  const value x{99, 100};
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, x}}, 2, 128, &adv);
  expect_agreement_and_validity(h, r, 0, 0, &x);
}

TEST(Eig, TwoFaultsEquivocatingSourcePlusRelay) {
  // Corrupt source AND one corrupt relay colluding (both equivocate).
  class collusion : public eig_adversary {
   public:
    value source_value(graph::node_id, graph::node_id r, const value&) override {
      return {static_cast<std::uint64_t>(r % 2)};
    }
    value relay_value(graph::node_id, graph::node_id r, const std::vector<graph::node_id>&,
                      const value&) override {
      return {static_cast<std::uint64_t>(r % 3)};
    }
  };
  harness h(7, {0, 3}, 2);
  collusion adv;
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, {1}}}, 2, 64, &adv);
  expect_agreement_and_validity(h, r, 0, 0, nullptr);
}

TEST(Eig, BatchedInstancesShareRounds) {
  harness h(4);
  std::vector<eig_instance> instances;
  for (graph::node_id s = 0; s < 4; ++s)
    instances.push_back({s, {static_cast<std::uint64_t>(s * 11)}});
  const int steps_before = h.net.steps();
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, instances, 1, 64);
  // f+1 = 2 rounds total, regardless of instance count.
  EXPECT_EQ(h.net.steps() - steps_before, 2);
  for (std::size_t q = 0; q < 4; ++q) {
    const value expected{static_cast<std::uint64_t>(q * 11)};
    expect_agreement_and_validity(h, r, q, static_cast<graph::node_id>(q), &expected);
  }
}

TEST(Eig, WorksOverEmulatedIncompleteTopology) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  g.remove_edge_pair(1, 4);
  sim::network net(g);
  sim::fault_set faults(5, {2});
  channel_plan plan(g, 1);
  lying_relay adv;
  const value x{555};
  const auto r = eig_broadcast_all(plan, net, faults, {{0, x}}, 1, 64, &adv);
  for (graph::node_id v : g.active_nodes()) {
    if (faults.is_honest(v)) {
      EXPECT_EQ(r.decisions[0][static_cast<std::size_t>(v)], x);
    }
  }
}

TEST(Eig, FaultFreeFZeroSingleRound) {
  harness h(3, {}, 0);
  const value x{1};
  const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{1, x}}, 0, 8);
  expect_agreement_and_validity(h, r, 0, 1, &x);
}

TEST(Eig, ExhaustiveSourceBehaviorsOnFourNodes) {
  // Adversarial source tries all 3^3 assignments of {a, b, silent} to the
  // three receivers; agreement must hold in every case.
  class table_adv : public eig_adversary {
   public:
    explicit table_adv(int code) : code_(code) {}
    value source_value(graph::node_id, graph::node_id receiver, const value&) override {
      const int choice = (code_ / static_cast<int>(receiver)) % 3;  // receiver in 1..3
      if (choice == 0) return {111};
      if (choice == 1) return {222};
      return {};
    }

   private:
    int code_;
  };
  for (int code = 0; code < 27; ++code) {
    harness h(4, {0});
    table_adv adv(code);
    const auto r = eig_broadcast_all(h.plan, h.net, h.faults, {{0, {9}}}, 1, 64, &adv);
    expect_agreement_and_validity(h, r, 0, 0, nullptr);
  }
}

}  // namespace
}  // namespace nab::bb
