#include "bb/broadcast.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nab::bb {
namespace {

struct harness {
  explicit harness(int n, std::vector<graph::node_id> corrupt = {}, int f = 1)
      : g(graph::complete(n)), net(g), faults(n, corrupt), plan(g, f) {}
  graph::digraph g;
  sim::network net;
  sim::fault_set faults;
  channel_plan plan;
};

TEST(BroadcastDefault, AutoSelectsPhaseKingForWideGroups) {
  harness h(5);  // 5 > 4f with f=1, single word
  const auto r = broadcast_default(h.plan, h.net, h.faults, 0, {9}, 1, 64);
  for (graph::node_id v : h.g.active_nodes())
    EXPECT_EQ(r.decisions[static_cast<std::size_t>(v)], (value{9}));
}

TEST(BroadcastDefault, EigHandlesTightGroups) {
  harness h(4);  // 4 <= 4f: must fall back to EIG
  const auto r = broadcast_default(h.plan, h.net, h.faults, 0, {5, 6}, 1, 128);
  for (graph::node_id v : h.g.active_nodes())
    EXPECT_EQ(r.decisions[static_cast<std::size_t>(v)], (value{5, 6}));
}

TEST(BroadcastDefault, ExplicitProtocolChoice) {
  harness h(6);
  const auto r_eig =
      broadcast_default(h.plan, h.net, h.faults, 1, {3}, 1, 64, bb_protocol::eig);
  const auto r_pk = broadcast_default(h.plan, h.net, h.faults, 1, {3}, 1, 64,
                                      bb_protocol::phase_king);
  for (graph::node_id v : h.g.active_nodes()) {
    EXPECT_EQ(r_eig.decisions[static_cast<std::size_t>(v)], (value{3}));
    EXPECT_EQ(r_pk.decisions[static_cast<std::size_t>(v)], (value{3}));
  }
}

TEST(BroadcastFlags, AllHonestFlagsAgreeEverywhere) {
  harness h(4);
  std::vector<bool> flags{true, false, false, true};
  const auto r = broadcast_flags(h.plan, h.net, h.faults, flags, 1, h.g.active_nodes());
  for (graph::node_id src = 0; src < 4; ++src)
    for (graph::node_id v : h.g.active_nodes())
      EXPECT_EQ(r.agreed[static_cast<std::size_t>(src)][static_cast<std::size_t>(v)],
                flags[static_cast<std::size_t>(src)]);
}

/// A corrupt node announces MISMATCH to half the nodes and NULL to the rest.
class false_flagger : public eig_adversary {
 public:
  value source_value(graph::node_id, graph::node_id receiver, const value&) override {
    return {receiver % 2 == 0 ? 1u : 0u};
  }
};

TEST(BroadcastFlags, InconsistentFlagStillYieldsAgreement) {
  harness h(4, {2});
  false_flagger adv;
  std::vector<bool> flags{false, false, false, false};
  const auto r = broadcast_flags(h.plan, h.net, h.faults, flags, 1, h.g.active_nodes(), &adv);
  // Honest sources' flags are agreed faithfully.
  for (graph::node_id src : {0, 1, 3})
    for (graph::node_id v : h.g.active_nodes()) {
      if (h.faults.is_honest(v)) {
        EXPECT_FALSE(r.agreed[static_cast<std::size_t>(src)][static_cast<std::size_t>(v)]);
      }
    }
  // The corrupt source's flag is *some* agreed bit, identical at all honest
  // nodes.
  bool first = true;
  bool bit = false;
  for (graph::node_id v : h.g.active_nodes()) {
    if (h.faults.is_corrupt(v)) continue;
    if (first) {
      bit = r.agreed[2][static_cast<std::size_t>(v)];
      first = false;
    } else {
      EXPECT_EQ(r.agreed[2][static_cast<std::size_t>(v)], bit);
    }
  }
}

TEST(BroadcastFlags, TimeIndependentOfPayloadCount) {
  // Broadcasting 4 flags costs the same 2 rounds as broadcasting 1.
  harness h1(4), h4(4);
  std::vector<bool> one{true, false, false, false};
  std::vector<bool> all{true, true, true, true};
  const int steps1_before = h1.net.steps();
  broadcast_flags(h1.plan, h1.net, h1.faults, one, 1, h1.g.active_nodes());
  const int steps1 = h1.net.steps() - steps1_before;
  const int steps4_before = h4.net.steps();
  broadcast_flags(h4.plan, h4.net, h4.faults, all, 1, h4.g.active_nodes());
  const int steps4 = h4.net.steps() - steps4_before;
  EXPECT_EQ(steps1, steps4);
}

}  // namespace
}  // namespace nab::bb
