// Property test for the pluggable claim-broadcast backends: whole NAB
// sessions run with the EIG oracle, the batched phase-king path, and the
// collapsed Bracha-style backend must produce byte-identical dispute sets,
// convictions, and agreed values — across every registry preset topology and
// across dispute-forcing adversaries. Only the DC1 wire cost may differ,
// and at n = 32, f = 2 (the documented hypercube_d5 bottleneck) the
// collapsed backend must cut traced claim bytes by at least 10x.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "bb/claim_bcast.hpp"
#include "core/omega_cache.hpp"
#include "core/session.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/scenario.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace nab {
namespace {

core::session_run run_one(const graph::digraph& g, int f,
                          const std::vector<graph::node_id>& corrupt,
                          core::nab_adversary* adv, bb::claim_backend backend,
                          int q, std::size_t words) {
  core::session_config cfg;
  cfg.g = g;
  cfg.f = f;
  cfg.claim_backend = backend;
  sim::fault_set faults(g.universe(), corrupt);
  return core::run_session(std::move(cfg), faults, adv, q, words, /*seed=*/0xfeed);
}

/// The byte-identity bar: everything dispute control decides must match.
/// Simulated time and wire bits are exactly what the backends are allowed
/// to change, so they are deliberately NOT compared.
void expect_same_verdicts(const core::session_run& a, const core::session_run& b,
                          const std::string& ctx) {
  ASSERT_EQ(a.reports.size(), b.reports.size()) << ctx;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    const std::string rctx = ctx + " instance " + std::to_string(i);
    EXPECT_EQ(ra.outputs, rb.outputs) << rctx;
    EXPECT_EQ(ra.mismatch_announced, rb.mismatch_announced) << rctx;
    EXPECT_EQ(ra.dispute_phase_run, rb.dispute_phase_run) << rctx;
    EXPECT_EQ(ra.new_disputes, rb.new_disputes) << rctx;
    EXPECT_EQ(ra.newly_convicted, rb.newly_convicted) << rctx;
    EXPECT_EQ(ra.agreement, rb.agreement) << rctx;
    EXPECT_EQ(ra.validity, rb.validity) << rctx;
  }
  EXPECT_EQ(a.disputes.pairs(), b.disputes.pairs()) << ctx;
  EXPECT_EQ(a.disputes.convicted(), b.disputes.convicted()) << ctx;
}

/// Registry presets as unique (topology, f) pairs, mirroring
/// test_eig_arena_equivalence: f capped to 1 beyond 16 nodes (the oracle's
/// n^f label tree) and the n >= 64 presets skipped outright — at that size
/// the EIG oracle cannot run a dispute phase at all, which is precisely the
/// bottleneck the collapsed backend removes (its own coverage lives in the
/// claim_bcast unit tests and the k64/hypercube_d6 fleet presets).
std::vector<std::pair<graph::digraph, int>> oracle_sized_topologies() {
  std::vector<std::pair<graph::digraph, int>> out;
  std::map<std::string, bool> seen;
  for (const auto& family : runtime::registry()) {
    for (const auto& sc : family.expand()) {
      const auto& t = sc.topology;
      if (runtime::topology_nodes(t) > 40) continue;
      const int f = runtime::topology_nodes(t) > 16 ? std::min(sc.f, 1) : sc.f;
      std::ostringstream key;
      key << runtime::to_string(t.kind) << ':' << t.n << ':' << t.param_a << ':'
          << t.param_b << ':' << t.cap_lo << ':' << t.cap_hi << ':' << t.p << ':'
          << f;
      if (seen.emplace(key.str(), true).second == false) continue;
      bool added = false;
      for (int attempt = 0; attempt < 32 && !added; ++attempt) {
        rng rand(0xe901u + static_cast<std::uint64_t>(attempt));
        graph::digraph g = runtime::build_topology(t, rand);
        if (g.universe() >= 3 * f + 1 &&
            core::omega_cache::instance().connectivity_at_least(g, 2 * f + 1)) {
          out.emplace_back(std::move(g), f);
          added = true;
        }
      }
    }
  }
  return out;
}

TEST(ClaimBackendEquivalence, VerdictsMatchAcrossRegistryPresets) {
  const auto presets = oracle_sized_topologies();
  ASSERT_GT(presets.size(), 10u);  // the registry really was swept
  for (const auto& [g, f] : presets) {
    // A false flag from the first non-source node (when the budget allows)
    // forces a dispute phase in every instance, so DC1 is actually exercised
    // on every preset rather than only on the adversarial families.
    std::vector<graph::node_id> corrupt;
    const auto active = g.active_nodes();
    if (f > 0 && active.size() > 1) corrupt.push_back(active[1]);
    const std::string ctx = "n=" + std::to_string(g.universe()) +
                            " f=" + std::to_string(f);

    core::false_flagger adv_a, adv_b;
    const core::session_run eig = run_one(
        g, f, corrupt, corrupt.empty() ? nullptr : &adv_a,
        bb::claim_backend::eig, /*q=*/2, /*words=*/8);
    const core::session_run collapsed = run_one(
        g, f, corrupt, corrupt.empty() ? nullptr : &adv_b,
        bb::claim_backend::collapsed, /*q=*/2, /*words=*/8);
    expect_same_verdicts(eig, collapsed, ctx + " eig-vs-collapsed");

    if (bb::phase_king_admissible(active.size(), f)) {
      core::false_flagger adv_c;
      const core::session_run pk = run_one(
          g, f, corrupt, corrupt.empty() ? nullptr : &adv_c,
          bb::claim_backend::phase_king, /*q=*/2, /*words=*/8);
      expect_same_verdicts(eig, pk, ctx + " eig-vs-phase_king");
    }
  }
}

TEST(ClaimBackendEquivalence, VerdictsMatchAcrossAdversaryStrategies) {
  const graph::digraph k9 = graph::complete(9);

  // Stealth coalition: the slowest-progress dispute farmer (f(f+1) regime).
  {
    core::stealth_disputer a, b, c;
    const auto eig = run_one(k9, 2, {2, 5}, &a, bb::claim_backend::eig, 6, 16);
    const auto col = run_one(k9, 2, {2, 5}, &b, bb::claim_backend::collapsed, 6, 16);
    const auto pk = run_one(k9, 2, {2, 5}, &c, bb::claim_backend::phase_king, 6, 16);
    expect_same_verdicts(eig, col, "stealth eig-vs-collapsed");
    expect_same_verdicts(eig, pk, "stealth eig-vs-phase_king");
    EXPECT_FALSE(eig.disputes.pairs().empty());
  }

  // Chaos: seeded fuzzing through every hook — the widest claim churn.
  {
    core::chaos_adversary a(0xc4a05, 0.7), b(0xc4a05, 0.7);
    const auto eig = run_one(k9, 2, {1, 4}, &a, bb::claim_backend::eig, 5, 16);
    const auto col = run_one(k9, 2, {1, 4}, &b, bb::claim_backend::collapsed, 5, 16);
    expect_same_verdicts(eig, col, "chaos eig-vs-collapsed");
  }

  // Sparse emulated channels (majority-vote route path) with claim forging.
  // claim_forger only lies in Phase 3, so it also cries MISMATCH to get a
  // dispute phase running in the first place.
  {
    class flagging_forger : public core::claim_forger {
     public:
      using core::claim_forger::claim_forger;
      bool phase2_flag(graph::node_id, bool) override { return true; }
    };
    graph::digraph g = graph::complete(6, 2);
    g.remove_edge_pair(0, 3);
    flagging_forger a(1), b(1);
    const auto eig = run_one(g, 1, {4}, &a, bb::claim_backend::eig, 4, 16);
    const auto col = run_one(g, 1, {4}, &b, bb::claim_backend::collapsed, 4, 16);
    expect_same_verdicts(eig, col, "forger/emulated eig-vs-collapsed");
    EXPECT_FALSE(eig.disputes.pairs().empty());
  }
}

TEST(ClaimBackendEquivalence, F3DisputeEvidenceMatchesAndDc4Convicts) {
  // f = 3 (K_13): DC4's cover intersection must behave identically on the
  // collapsed backend's dispute sets — the stealth strategy builds exactly
  // the star patterns whose explaining-set intersection convicts.
  const graph::digraph k13 = graph::complete(13);
  core::stealth_disputer a, b;
  const auto eig = run_one(k13, 3, {3, 7, 11}, &a, bb::claim_backend::eig, 8, 8);
  const auto col = run_one(k13, 3, {3, 7, 11}, &b, bb::claim_backend::collapsed, 8, 8);
  expect_same_verdicts(eig, col, "f3 stealth");
  EXPECT_FALSE(col.disputes.pairs().empty());
  // Dispute soundness at f = 3: every pair touches a corrupt node, every
  // conviction is corrupt (DC4 never convicts an honest node).
  sim::fault_set faults(13, {3, 7, 11});
  for (const auto& [x, y] : col.disputes.pairs())
    EXPECT_TRUE(faults.is_corrupt(x) || faults.is_corrupt(y))
        << "{" << x << "," << y << "}";
  for (graph::node_id v : col.disputes.convicted())
    EXPECT_TRUE(faults.is_corrupt(v)) << v;
}

TEST(ClaimBackendEquivalence, TracedClaimBytesDropTenfoldAtN32F2) {
  // The acceptance bar: at n = 32, f = 2 (hypercube_d5's documented EIG
  // bottleneck), the collapsed backend's DC1 claim bytes must be at least
  // 10x below the oracle's, measured from the ambient traffic trace via the
  // claim tag — asserted, not eyeballed.
  const graph::digraph q5 = graph::hypercube(5, 2);
  const auto measure = [&](bb::claim_backend backend) {
    sim::trace t;
    sim::scoped_ambient_trace scope(&t);
    core::phase1_corruptor adv;
    const core::session_run run =
        run_one(q5, 2, {3, 17}, &adv, backend, /*q=*/1, /*words=*/16);
    EXPECT_EQ(run.stats.dispute_phases, 1);
    // The session's per-phase accounting and the trace's tag accounting are
    // two independent measurements of the same traffic.
    EXPECT_EQ(t.tag_total(bb::claim_traffic_tag), run.stats.claim_bits);
    return run.stats.claim_bits;
  };
  const std::uint64_t eig_bits = measure(bb::claim_backend::eig);
  const std::uint64_t collapsed_bits = measure(bb::claim_backend::collapsed);
  ASSERT_GT(collapsed_bits, 0u);
  EXPECT_GE(eig_bits, 10 * collapsed_bits)
      << "eig=" << eig_bits << " collapsed=" << collapsed_bits;
}

}  // namespace
}  // namespace nab
