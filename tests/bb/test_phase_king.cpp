#include "bb/phase_king.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::bb {
namespace {

struct harness {
  explicit harness(int n, std::vector<graph::node_id> corrupt = {}, int f = 1)
      : g(graph::complete(n)), net(g), faults(n, corrupt), plan(g, f) {}
  graph::digraph g;
  sim::network net;
  sim::fault_set faults;
  channel_plan plan;
};

void expect_consensus(const harness& h, const pk_result& r,
                      std::optional<std::uint64_t> expected) {
  std::optional<std::uint64_t> agreed;
  for (graph::node_id v : h.g.active_nodes()) {
    if (h.faults.is_corrupt(v)) continue;
    if (!agreed) {
      agreed = r.decided[static_cast<std::size_t>(v)];
    } else {
      EXPECT_EQ(r.decided[static_cast<std::size_t>(v)], *agreed) << "node " << v;
    }
  }
  if (expected) {
    EXPECT_EQ(*agreed, *expected);
  }
}

TEST(PhaseKing, ValidityAllAgreeInitially) {
  harness h(5);
  std::vector<std::uint64_t> init(5, 77);
  const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 1, 64);
  expect_consensus(h, r, 77);
}

/// Corrupt nodes report value keyed by the receiver, trying to split honest
/// opinion; as king they equivocate too.
class splitter : public pk_adversary {
 public:
  std::uint64_t exchange_value(graph::node_id, graph::node_id receiver, int, bool,
                               std::uint64_t) override {
    return receiver % 2;
  }
};

TEST(PhaseKing, AgreementWithSplitInputsAndOneFault) {
  harness h(5, {4});
  splitter adv;
  std::vector<std::uint64_t> init{0, 0, 1, 1, 9};
  const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 1, 64, &adv);
  expect_consensus(h, r, std::nullopt);
}

TEST(PhaseKing, ValidityDespiteSplitterFault) {
  harness h(5, {2});
  splitter adv;
  std::vector<std::uint64_t> init(5, 5);
  init[2] = 1234;  // corrupt node's own input is irrelevant
  const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 1, 64, &adv);
  expect_consensus(h, r, 5);
}

TEST(PhaseKing, TwoFaultsNeedNine) {
  harness h(9, {3, 7}, 2);
  splitter adv;
  std::vector<std::uint64_t> init{4, 4, 4, 0, 4, 4, 4, 0, 4};
  const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 2, 64, &adv);
  expect_consensus(h, r, 4);
}

TEST(PhaseKing, BroadcastValidity) {
  harness h(5);
  const auto r = phase_king_broadcast(h.plan, h.net, h.faults, 2, 31337, 1, 64);
  expect_consensus(h, r, 31337);
}

TEST(PhaseKing, BroadcastAgreementWithEquivocatingSource) {
  harness h(5, {0});
  splitter adv;
  const auto r = phase_king_broadcast(h.plan, h.net, h.faults, 0, 1, 1, 64, &adv);
  expect_consensus(h, r, std::nullopt);
}

TEST(PhaseKing, AdversarialKingCannotBreakConfidentMajority) {
  // All honest nodes share an input; the corrupt node is king in phase 0
  // (node 0) — they must stay on the common value.
  harness h(5, {0});
  splitter adv;
  std::vector<std::uint64_t> init(5, 88);
  init[0] = 3;
  const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 1, 64, &adv);
  expect_consensus(h, r, 88);
}

TEST(PhaseKing, RandomizedAdversarySweep) {
  class random_adv : public pk_adversary {
   public:
    explicit random_adv(std::uint64_t seed) : rand_(seed) {}
    std::uint64_t exchange_value(graph::node_id, graph::node_id, int, bool,
                                 std::uint64_t) override {
      return rand_.below(4);
    }

   private:
    nab::rng rand_;
  };
  nab::rng seeds(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const auto corrupt = static_cast<graph::node_id>(seeds.below(5));
    harness h(5, {corrupt});
    random_adv adv(seeds.next_u64());
    std::vector<std::uint64_t> init;
    for (int v = 0; v < 5; ++v) init.push_back(seeds.below(3));
    const auto r = phase_king_consensus(h.plan, h.net, h.faults, init, 1, 64, &adv);
    expect_consensus(h, r, std::nullopt);
  }
}

}  // namespace
}  // namespace nab::bb
