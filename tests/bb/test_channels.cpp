#include "bb/channels.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::bb {
namespace {

TEST(Channels, DirectLinkUsedWhenPresent) {
  const graph::digraph g = graph::complete(4);
  channel_plan plan(g, 1);
  const auto& r = plan.routes(0, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<graph::node_id>{0, 3}));
}

TEST(Channels, MissingLinkEmulatedWithDisjointPaths) {
  // Remove the direct 0<->3 link from K5; emulation must find 2f+1 = 3
  // node-disjoint paths.
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  channel_plan plan(g, 1);
  const auto& r = plan.routes(0, 3);
  ASSERT_EQ(r.size(), 3u);
  std::vector<int> interior(5, 0);
  for (const auto& p : r) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    for (std::size_t i = 1; i + 1 < p.size(); ++i) ++interior[static_cast<std::size_t>(p[i])];
  }
  for (int v = 0; v < 5; ++v) EXPECT_LE(interior[static_cast<std::size_t>(v)], 1);
}

TEST(Channels, InsufficientConnectivityThrows) {
  // Ring is only 2-connected: f=1 needs 3 disjoint paths for non-adjacent
  // pairs.
  EXPECT_THROW(channel_plan(graph::ring(6), 1), nab::error);
}

TEST(Channels, DeliveryAndAccounting) {
  const graph::digraph g = graph::complete(3, 2);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  plan.unicast(0, 1, 9, {123}, 10);
  const double t = plan.end_round(net, faults);
  EXPECT_DOUBLE_EQ(t, 5.0);  // 10 bits on a capacity-2 link
  ASSERT_EQ(plan.inbox(1).size(), 1u);
  EXPECT_EQ(plan.inbox(1)[0].payload, (sim::payload{123}));
  EXPECT_EQ(plan.inbox(1)[0].tag, 9u);
  EXPECT_EQ(net.link_bits(0, 1), 10u);
}

TEST(Channels, TagsSurviveMultiHopEmulation) {
  // Per-protocol wire accounting (trace::tag_total) relies on end_round
  // forwarding the logical message's tag onto every link-level charge —
  // direct links and every hop of every emulated route alike.
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::trace t;
  sim::network net(g);
  net.attach_trace(&t);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  plan.unicast(0, 3, /*tag=*/42, {7}, 10);   // emulated: 3 disjoint paths
  plan.unicast(0, 1, /*tag=*/42, {8}, 6);    // direct link
  plan.end_round(net, faults);
  EXPECT_EQ(t.tag_total(42), net.total_bits());
  EXPECT_GT(t.tag_total(42), 16u);  // multi-hop routes charge every hop
  EXPECT_EQ(t.tag_total(0), 0u);
}

TEST(Channels, EmulatedPathChargesEveryHop) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  plan.unicast(0, 3, 0, {7}, 6);
  plan.end_round(net, faults);
  // 3 disjoint paths, each with >= 2 hops, each hop charged 6 bits.
  EXPECT_GE(net.total_bits(), 6u * 6u);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{7}));
}

/// Replaces every relayed copy with a forged payload.
class forger : public relay_adversary {
 public:
  std::optional<sim::payload> tamper(
      const std::vector<graph::node_id>&, const sim::message&) override {
    return sim::payload{666};
  }
};

TEST(Channels, MajorityDefeatsSingleCorruptRelay) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5, {1});  // node 1 may relay one of the three paths
  channel_plan plan(g, 1);
  forger adv;
  plan.unicast(0, 3, 0, {42}, 8);
  plan.end_round(net, faults, &adv);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  // Two honest paths out of three: majority yields the true payload.
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{42}));
}

TEST(Channels, TamperWinsOnlyWithMajorityOfPaths) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  // f=1 plan but TWO corrupt relays (over budget): forgery can win.
  sim::fault_set faults(5, {1, 2});
  channel_plan plan(g, 1);
  forger adv;
  plan.unicast(0, 3, 0, {42}, 8);
  plan.end_round(net, faults, &adv);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{666}));
}

TEST(Channels, FlatRouteTableMatchesPerPairReference) {
  // The flat offset-indexed route table must decode, pair for pair, to
  // exactly the path sets the seed's per-pair builder produced: a direct
  // link is the single two-node path, and every emulated pair carries the
  // 2f+1 node-disjoint paths of graph::node_disjoint_paths (the retained
  // per-pair reference the warm-started finder must replicate byte for
  // byte).
  rng rand(99);
  const std::vector<graph::digraph> graphs = {
      graph::paper_fig1a(),  graph::ring(6, 2),       graph::hypercube(3, 1),
      graph::hypercube(4, 2), graph::clustered_wan(3, 3, 2, 1),
      graph::erdos_renyi(9, 0.6, 1, 2, rand)};
  for (const graph::digraph& g : graphs) {
    for (int f : {0, 1}) {
      if (!graph::global_vertex_connectivity_at_least(g, 2 * f + 1)) continue;
      const auto table = channel_plan::build_routes(g, f);
      std::uint64_t pairs = 0;
      for (graph::node_id u = 0; u < g.universe(); ++u)
        for (graph::node_id v = 0; v < g.universe(); ++v) {
          if (u == v || !g.is_active(u) || !g.is_active(v)) {
            EXPECT_TRUE(table.at(u, v).empty());
            continue;
          }
          ++pairs;
          const auto got = table.decode(u, v);
          if (g.has_edge(u, v)) {
            ASSERT_EQ(got.size(), 1u);
            EXPECT_EQ(got[0], (std::vector<graph::node_id>{u, v}));
          } else {
            EXPECT_EQ(got, graph::node_disjoint_paths(g, u, v, 2 * f + 1));
          }
        }
      EXPECT_EQ(table.stats().pairs, pairs);
    }
  }
}

TEST(Channels, WarmFinderMatchesColdReferencePerPair) {
  // One warm-started residual network serving many sinks must return the
  // same paths as a cold per-pair computation.
  rng rand(7);
  const graph::digraph g = graph::erdos_renyi(10, 0.5, 1, 2, rand);
  for (int k : {1, 3}) {
    if (!graph::global_vertex_connectivity_at_least(g, k)) continue;
    for (graph::node_id u = 0; u < g.universe(); ++u) {
      graph::disjoint_path_finder finder(g);
      for (graph::node_id v = 0; v < g.universe(); ++v) {
        if (u == v) continue;
        EXPECT_EQ(finder.find(u, v, k), graph::node_disjoint_paths(g, u, v, k))
            << "pair " << u << "->" << v << " k=" << k;
      }
    }
  }
}

TEST(Channels, RoundsClearInboxes) {
  const graph::digraph g = graph::complete(3);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  plan.unicast(0, 1, 0, {1}, 1);
  plan.end_round(net, faults);
  EXPECT_EQ(plan.inbox(1).size(), 1u);
  plan.end_round(net, faults);
  EXPECT_TRUE(plan.inbox(1).empty());
}

}  // namespace
}  // namespace nab::bb
