#include "bb/channels.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace nab::bb {
namespace {

TEST(Channels, DirectLinkUsedWhenPresent) {
  const graph::digraph g = graph::complete(4);
  channel_plan plan(g, 1);
  const auto& r = plan.routes(0, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], (std::vector<graph::node_id>{0, 3}));
}

TEST(Channels, MissingLinkEmulatedWithDisjointPaths) {
  // Remove the direct 0<->3 link from K5; emulation must find 2f+1 = 3
  // node-disjoint paths.
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  channel_plan plan(g, 1);
  const auto& r = plan.routes(0, 3);
  ASSERT_EQ(r.size(), 3u);
  std::vector<int> interior(5, 0);
  for (const auto& p : r) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    for (std::size_t i = 1; i + 1 < p.size(); ++i) ++interior[static_cast<std::size_t>(p[i])];
  }
  for (int v = 0; v < 5; ++v) EXPECT_LE(interior[static_cast<std::size_t>(v)], 1);
}

TEST(Channels, InsufficientConnectivityThrows) {
  // Ring is only 2-connected: f=1 needs 3 disjoint paths for non-adjacent
  // pairs.
  EXPECT_THROW(channel_plan(graph::ring(6), 1), nab::error);
}

TEST(Channels, DeliveryAndAccounting) {
  const graph::digraph g = graph::complete(3, 2);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  plan.unicast(0, 1, 9, {123}, 10);
  const double t = plan.end_round(net, faults);
  EXPECT_DOUBLE_EQ(t, 5.0);  // 10 bits on a capacity-2 link
  ASSERT_EQ(plan.inbox(1).size(), 1u);
  EXPECT_EQ(plan.inbox(1)[0].payload, (sim::payload{123}));
  EXPECT_EQ(plan.inbox(1)[0].tag, 9u);
  EXPECT_EQ(net.link_bits(0, 1), 10u);
}

TEST(Channels, TagsSurviveMultiHopEmulation) {
  // Per-protocol wire accounting (trace::tag_total) relies on end_round
  // forwarding the logical message's tag onto every link-level charge —
  // direct links and every hop of every emulated route alike.
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::trace t;
  sim::network net(g);
  net.attach_trace(&t);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  plan.unicast(0, 3, /*tag=*/42, {7}, 10);   // emulated: 3 disjoint paths
  plan.unicast(0, 1, /*tag=*/42, {8}, 6);    // direct link
  plan.end_round(net, faults);
  EXPECT_EQ(t.tag_total(42), net.total_bits());
  EXPECT_GT(t.tag_total(42), 16u);  // multi-hop routes charge every hop
  EXPECT_EQ(t.tag_total(0), 0u);
}

TEST(Channels, EmulatedPathChargesEveryHop) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  plan.unicast(0, 3, 0, {7}, 6);
  plan.end_round(net, faults);
  // 3 disjoint paths, each with >= 2 hops, each hop charged 6 bits.
  EXPECT_GE(net.total_bits(), 6u * 6u);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{7}));
}

/// Replaces every relayed copy with a forged payload.
class forger : public relay_adversary {
 public:
  std::optional<sim::payload> tamper(
      const std::vector<graph::node_id>&, const sim::message&) override {
    return sim::payload{666};
  }
};

TEST(Channels, MajorityDefeatsSingleCorruptRelay) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5, {1});  // node 1 may relay one of the three paths
  channel_plan plan(g, 1);
  forger adv;
  plan.unicast(0, 3, 0, {42}, 8);
  plan.end_round(net, faults, &adv);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  // Two honest paths out of three: majority yields the true payload.
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{42}));
}

TEST(Channels, TamperWinsOnlyWithMajorityOfPaths) {
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  // f=1 plan but TWO corrupt relays (over budget): forgery can win.
  sim::fault_set faults(5, {1, 2});
  channel_plan plan(g, 1);
  forger adv;
  plan.unicast(0, 3, 0, {42}, 8);
  plan.end_round(net, faults, &adv);
  ASSERT_EQ(plan.inbox(3).size(), 1u);
  EXPECT_EQ(plan.inbox(3)[0].payload, (sim::payload{666}));
}

TEST(Channels, RoundsClearInboxes) {
  const graph::digraph g = graph::complete(3);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  plan.unicast(0, 1, 0, {1}, 1);
  plan.end_round(net, faults);
  EXPECT_EQ(plan.inbox(1).size(), 1u);
  plan.end_round(net, faults);
  EXPECT_TRUE(plan.inbox(1).empty());
}

}  // namespace
}  // namespace nab::bb
