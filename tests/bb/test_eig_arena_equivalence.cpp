// Property test for the arena-backed simulation memory: running the
// classical-BB engines (EIG, phase-king) and whole NAB sessions with the
// per-run arena must be byte-identical to the seed heap path — same
// decisions, same transcripts, same dispute evidence, same simulated time
// and wire bits — across every registry preset topology and across honest,
// equivocating, and dropping adversaries. The arena may only change where
// bytes live, never what they are.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "bb/broadcast.hpp"
#include "core/omega_cache.hpp"
#include "core/session.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/scenario.hpp"
#include "sim/run_arena.hpp"
#include "util/rng.hpp"

namespace nab {
namespace {

// --- EIG-level adversaries: the three behaviors the satellite names. ---

/// Equivocates in round 1: even receivers see 1, odd receivers see 0.
class equivocating_eig : public bb::eig_adversary {
 public:
  bb::value source_value(graph::node_id, graph::node_id receiver,
                         const bb::value&) override {
    return {receiver % 2 == 0 ? 1u : 0u};
  }
};

/// Drops every relay (empty value = "not sending", the model's default).
class dropping_eig : public bb::eig_adversary {
 public:
  bb::value relay_value(graph::node_id, graph::node_id,
                        const std::vector<graph::node_id>&,
                        const bb::value&) override {
    return {};
  }
};

enum class eig_behavior { honest, equivocating, dropping };

struct flags_run {
  std::vector<std::vector<bool>> agreed;
  double elapsed = 0.0;
  std::uint64_t bits = 0;
  int steps = 0;
};

/// One batched flag broadcast (NAB step 2.2 shape) over `g` with the first
/// non-source active node corrupt (when f > 0), with or without pooling.
flags_run run_flag_broadcast(const graph::digraph& g, int f, eig_behavior behavior,
                             bool pooled) {
  sim::run_arena arena;
  sim::scoped_run_arena scope(pooled ? &arena : nullptr);
  {
    sim::network net(g);
    bb::channel_plan plan(g, f,
                          core::omega_cache::instance().channel_routes_for(g, f));
    const auto active = g.active_nodes();
    std::vector<graph::node_id> corrupt;
    if (f > 0 && active.size() > 1) corrupt.push_back(active[1]);
    sim::fault_set faults(g.universe(), corrupt);
    std::vector<bool> flags(static_cast<std::size_t>(g.universe()), false);
    for (std::size_t i = 0; i < active.size(); ++i)
      flags[static_cast<std::size_t>(active[i])] = i % 2 == 1;

    equivocating_eig equivocator;
    dropping_eig dropper;
    bb::eig_adversary* adv = nullptr;
    if (behavior == eig_behavior::equivocating) adv = &equivocator;
    if (behavior == eig_behavior::dropping) adv = &dropper;

    const bb::flags_outcome out =
        bb::broadcast_flags(plan, net, faults, flags, f, active, adv);
    return {out.agreed, net.elapsed(), net.total_bits(), net.steps()};
  }
  // arena (and every pooled container, destroyed above) dies here.
}

/// Registry presets as unique (topology, f) pairs, mirroring the runner's
/// feasibility rules (32 reseed attempts for random generators; EIG cost is
/// capped by limiting f to 1 beyond 16 nodes). Frontier-scale presets
/// (n > 64) are excluded: they exercise no arena code path the n <= 64
/// presets don't, and a 128-node flag broadcast alone would multiply the
/// sweep's wall time — the frontier presets are covered by the perf smoke.
std::vector<std::pair<graph::digraph, int>> registry_topologies() {
  std::vector<std::pair<graph::digraph, int>> out;
  std::map<std::string, bool> seen;
  for (const auto& family : runtime::registry()) {
    for (const auto& sc : family.expand()) {
      const auto& t = sc.topology;
      if (runtime::topology_nodes(t) > 64) continue;
      const int f = runtime::topology_nodes(t) > 16 ? std::min(sc.f, 1) : sc.f;
      std::ostringstream key;
      key << runtime::to_string(t.kind) << ':' << t.n << ':' << t.param_a << ':'
          << t.param_b << ':' << t.cap_lo << ':' << t.cap_hi << ':' << t.p << ':'
          << f;
      if (seen.emplace(key.str(), true).second == false) continue;
      bool added = false;
      for (int attempt = 0; attempt < 32 && !added; ++attempt) {
        rng rand(0xe901u + static_cast<std::uint64_t>(attempt));
        graph::digraph g = runtime::build_topology(t, rand);
        // Unlike the runner we always require full channel feasibility
        // (even at f=0 a flag broadcast needs a strongly connected graph).
        if (g.universe() >= 3 * f + 1 &&
            core::omega_cache::instance().connectivity_at_least(g, 2 * f + 1)) {
          out.emplace_back(std::move(g), f);
          added = true;
        }
      }
    }
  }
  return out;
}

TEST(EigArenaEquivalence, FlagBroadcastsMatchAcrossRegistryPresets) {
  const auto presets = registry_topologies();
  ASSERT_GT(presets.size(), 10u);  // the registry really was swept
  for (const auto& [g, f] : presets) {
    for (eig_behavior behavior :
         {eig_behavior::honest, eig_behavior::equivocating, eig_behavior::dropping}) {
      const flags_run pooled = run_flag_broadcast(g, f, behavior, true);
      const flags_run heap = run_flag_broadcast(g, f, behavior, false);
      const std::string ctx = "n=" + std::to_string(g.universe()) +
                              " f=" + std::to_string(f) + " behavior=" +
                              std::to_string(static_cast<int>(behavior));
      EXPECT_EQ(pooled.agreed, heap.agreed) << ctx;
      EXPECT_EQ(pooled.elapsed, heap.elapsed) << ctx;
      EXPECT_EQ(pooled.bits, heap.bits) << ctx;
      EXPECT_EQ(pooled.steps, heap.steps) << ctx;
    }
  }
}

// --- Session-level equivalence: decisions, transcripts, dispute sets. ---

void expect_same_session_run(const core::session_run& a, const core::session_run& b,
                             const std::string& ctx) {
  ASSERT_EQ(a.reports.size(), b.reports.size()) << ctx;
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    const std::string rctx = ctx + " instance " + std::to_string(i);
    EXPECT_EQ(ra.outputs, rb.outputs) << rctx;
    EXPECT_EQ(ra.gamma, rb.gamma) << rctx;
    EXPECT_EQ(ra.uk, rb.uk) << rctx;
    EXPECT_EQ(ra.rho, rb.rho) << rctx;
    EXPECT_EQ(ra.default_outcome, rb.default_outcome) << rctx;
    EXPECT_EQ(ra.phase1_only, rb.phase1_only) << rctx;
    EXPECT_EQ(ra.mismatch_announced, rb.mismatch_announced) << rctx;
    EXPECT_EQ(ra.dispute_phase_run, rb.dispute_phase_run) << rctx;
    EXPECT_EQ(ra.time_phase1, rb.time_phase1) << rctx;
    EXPECT_EQ(ra.time_equality_check, rb.time_equality_check) << rctx;
    EXPECT_EQ(ra.time_flags, rb.time_flags) << rctx;
    EXPECT_EQ(ra.time_phase3, rb.time_phase3) << rctx;
    EXPECT_EQ(ra.agreement, rb.agreement) << rctx;
    EXPECT_EQ(ra.validity, rb.validity) << rctx;
    EXPECT_EQ(ra.new_disputes, rb.new_disputes) << rctx;
    EXPECT_EQ(ra.newly_convicted, rb.newly_convicted) << rctx;
  }
  EXPECT_EQ(a.disputes.pairs(), b.disputes.pairs()) << ctx;
  EXPECT_EQ(a.disputes.convicted(), b.disputes.convicted()) << ctx;
  EXPECT_EQ(a.stats.instances, b.stats.instances) << ctx;
  EXPECT_EQ(a.stats.dispute_phases, b.stats.dispute_phases) << ctx;
  EXPECT_EQ(a.stats.elapsed, b.stats.elapsed) << ctx;
  EXPECT_EQ(a.stats.bits_broadcast, b.stats.bits_broadcast) << ctx;
}

/// Silent relay: forwards nothing in Phase 1 (dropping at the session level).
class dropping_relay : public core::nab_adversary {
 public:
  core::chunk phase1_forward_chunk(int, graph::node_id, graph::node_id,
                                   const core::chunk&) override {
    return {};
  }
};

core::session_run run_one(const graph::digraph& g, int f,
                          const std::vector<graph::node_id>& corrupt,
                          core::nab_adversary* adv, bb::bb_protocol flag_protocol,
                          bool pooled) {
  core::session_config cfg;
  cfg.g = g;
  cfg.f = f;
  cfg.flag_protocol = flag_protocol;
  cfg.pool_memory = pooled;
  sim::fault_set faults(g.universe(), corrupt);
  return core::run_session(std::move(cfg), faults, adv, /*q=*/5,
                           /*words_per_input=*/16, /*seed=*/0xfeed);
}

TEST(EigArenaEquivalence, SessionsMatchAcrossAdversaryStrategies) {
  const graph::digraph k7 = graph::complete(7);

  // Honest (corrupt set present, passive).
  expect_same_session_run(run_one(k7, 2, {2, 5}, nullptr, bb::bb_protocol::eig, true),
                          run_one(k7, 2, {2, 5}, nullptr, bb::bb_protocol::eig, false),
                          "honest");

  // Equivocating source (minority victims) — disputes via DC2.
  {
    core::equivocating_source adv_a({1, 3});
    core::equivocating_source adv_b({1, 3});
    expect_same_session_run(
        run_one(k7, 2, {0, 4}, &adv_a, bb::bb_protocol::eig, true),
        run_one(k7, 2, {0, 4}, &adv_b, bb::bb_protocol::eig, false), "equivocate");
  }

  // Dropping relay — default-value handling through every phase.
  {
    dropping_relay adv_a;
    dropping_relay adv_b;
    expect_same_session_run(
        run_one(k7, 2, {3, 6}, &adv_a, bb::bb_protocol::eig, true),
        run_one(k7, 2, {3, 6}, &adv_b, bb::bb_protocol::eig, false), "drop");
  }

  // Chaos (seeded fuzzing through all hooks) — the widest transcript churn.
  {
    core::chaos_adversary adv_a(0xc4a05, 0.7);
    core::chaos_adversary adv_b(0xc4a05, 0.7);
    expect_same_session_run(
        run_one(k7, 2, {1, 4}, &adv_a, bb::bb_protocol::eig, true),
        run_one(k7, 2, {1, 4}, &adv_b, bb::bb_protocol::eig, false), "chaos");
  }

  // Phase-king flag engine (n > 4f) with a false flag forcing Phase 3.
  {
    core::false_flagger adv_a;
    core::false_flagger adv_b;
    const graph::digraph k9 = graph::complete(9);
    expect_same_session_run(
        run_one(k9, 2, {2, 7}, &adv_a, bb::bb_protocol::phase_king, true),
        run_one(k9, 2, {2, 7}, &adv_b, bb::bb_protocol::phase_king, false),
        "phase-king");
  }
}

TEST(EigArenaEquivalence, SessionsMatchOnSparseEmulatedChannels) {
  // Remove a link so flag/claim broadcasts emulate channels over 2f+1
  // disjoint paths (the majority-vote code path), with a stealthy disputer.
  graph::digraph g = graph::complete(6, 2);
  g.remove_edge_pair(0, 3);
  core::stealth_disputer adv_a;
  core::stealth_disputer adv_b;
  expect_same_session_run(run_one(g, 1, {4}, &adv_a, bb::bb_protocol::eig, true),
                          run_one(g, 1, {4}, &adv_b, bb::bb_protocol::eig, false),
                          "stealth/emulated");
}

}  // namespace
}  // namespace nab
