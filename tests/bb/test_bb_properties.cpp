// Parameterized sweeps over the classical-BB substrate: EIG and phase-king
// must deliver agreement + validity for every (n, f, corrupt-set, behavior)
// combination within their resilience bounds, on complete and emulated
// incomplete topologies alike.

#include <gtest/gtest.h>

#include <string>

#include "bb/broadcast.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::bb {
namespace {

enum class behavior { honest, equivocate, silent, random_noise };

const char* behavior_name(behavior b) {
  switch (b) {
    case behavior::honest: return "honest";
    case behavior::equivocate: return "equivocate";
    case behavior::silent: return "silent";
    case behavior::random_noise: return "noise";
  }
  return "?";
}

struct bb_param {
  int n;
  int f;
  std::vector<graph::node_id> corrupt;
  graph::node_id source;
  behavior how;
  bool punch_holes;  // remove some links, forcing path emulation

  std::string label() const {
    std::string s = "n" + std::to_string(n) + "f" + std::to_string(f) + "_src" +
                    std::to_string(source) + "_c";
    for (auto v : corrupt) s += std::to_string(v);
    s += std::string("_") + behavior_name(how) + (punch_holes ? "_holes" : "_full");
    return s;
  }
};

class misbehaver : public eig_adversary, public pk_adversary {
 public:
  explicit misbehaver(behavior how, std::uint64_t seed) : how_(how), rand_(seed) {}

  value source_value(graph::node_id, graph::node_id receiver, const value& honest) override {
    return twist(honest, receiver);
  }
  value relay_value(graph::node_id, graph::node_id receiver,
                    const std::vector<graph::node_id>&, const value& honest) override {
    return twist(honest, receiver);
  }
  std::uint64_t exchange_value(graph::node_id, graph::node_id receiver, int, bool,
                               std::uint64_t honest) override {
    const value v = twist({honest}, receiver);
    return v.empty() ? 0 : v[0];
  }

 private:
  value twist(const value& honest, graph::node_id receiver) {
    switch (how_) {
      case behavior::honest: return honest;
      case behavior::equivocate: return {static_cast<std::uint64_t>(receiver * 7 + 1)};
      case behavior::silent: return {};
      case behavior::random_noise: return {rand_.next_u64() % 5};
    }
    return honest;
  }
  behavior how_;
  rng rand_;
};

class BbProperty : public ::testing::TestWithParam<bb_param> {};

TEST_P(BbProperty, EigAgreementAndValidity) {
  const bb_param& p = GetParam();
  graph::digraph g = graph::complete(p.n);
  if (p.punch_holes) {
    g.remove_edge_pair(0, p.n - 1);
    if (p.n >= 6) g.remove_edge_pair(1, p.n - 2);
  }
  sim::network net(g);
  sim::fault_set faults(p.n, p.corrupt);
  channel_plan plan(g, p.f);
  misbehaver adv(p.how, 77);
  const value input{0xABCDu};

  const auto r = broadcast_default(plan, net, faults, p.source, input, p.f, 64,
                                   bb_protocol::eig, &adv, nullptr);
  const value* agreed = nullptr;
  for (graph::node_id v : g.active_nodes()) {
    if (faults.is_corrupt(v)) continue;
    if (agreed == nullptr) {
      agreed = &r.decisions[static_cast<std::size_t>(v)];
    } else {
      EXPECT_EQ(r.decisions[static_cast<std::size_t>(v)], *agreed)
          << p.label() << " node " << v;
    }
  }
  if (faults.is_honest(p.source)) {
    ASSERT_NE(agreed, nullptr);
    EXPECT_EQ(*agreed, input) << p.label();
  }
}

TEST_P(BbProperty, PhaseKingAgreementAndValidity) {
  const bb_param& p = GetParam();
  if (p.n <= 4 * p.f) GTEST_SKIP() << "below phase-king resilience";
  graph::digraph g = graph::complete(p.n);
  if (p.punch_holes) g.remove_edge_pair(0, p.n - 1);
  sim::network net(g);
  sim::fault_set faults(p.n, p.corrupt);
  channel_plan plan(g, p.f);
  misbehaver adv(p.how, 78);

  const auto r = phase_king_broadcast(plan, net, faults, p.source, 42, p.f, 64, &adv);
  std::optional<std::uint64_t> agreed;
  for (graph::node_id v : g.active_nodes()) {
    if (faults.is_corrupt(v)) continue;
    if (!agreed) {
      agreed = r.decided[static_cast<std::size_t>(v)];
    } else {
      EXPECT_EQ(r.decided[static_cast<std::size_t>(v)], *agreed)
          << p.label() << " node " << v;
    }
  }
  if (faults.is_honest(p.source)) {
    EXPECT_EQ(*agreed, 42u) << p.label();
  }
}

std::vector<bb_param> make_params() {
  std::vector<bb_param> out;
  const behavior behaviors[] = {behavior::honest, behavior::equivocate,
                                behavior::silent, behavior::random_noise};
  for (const behavior how : behaviors) {
    // f=1: corrupt source and corrupt relay, complete and holed.
    for (const bool holes : {false, true}) {
      out.push_back({4, 1, {0}, 0, how, false});
      out.push_back({4, 1, {2}, 0, how, false});
      out.push_back({5, 1, {0}, 0, how, holes});
      out.push_back({5, 1, {3}, 0, how, holes});
      out.push_back({5, 1, {3}, 2, how, holes});
    }
    // f=2 with pairs.
    out.push_back({7, 2, {1, 5}, 0, how, false});
    out.push_back({7, 2, {0, 4}, 0, how, false});
    out.push_back({9, 2, {2, 7}, 1, how, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BbProperty, ::testing::ValuesIn(make_params()),
                         [](const ::testing::TestParamInfo<bb_param>& info) {
                           // Prefix with the index: a few sweep combinations
                           // coincide (e.g. n=4 rows ignore `holes`).
                           return "i" + std::to_string(info.index) + "_" +
                                  info.param.label();
                         });

}  // namespace
}  // namespace nab::bb
