// Unit tests for the pluggable claim-broadcast layer (bb/claim_bcast.hpp):
// digest algebra, the collapsed Bracha-style backend's agreement/validity
// under digest equivocation, echo/ready suppression and forged retrievals,
// the batched phase-king backend, and the auto_select resolution rule.

#include "bb/claim_bcast.hpp"

#include <gtest/gtest.h>

#include "core/omega_cache.hpp"
#include "graph/generators.hpp"

namespace nab::bb {
namespace {

// --- harness ---------------------------------------------------------------

struct harness {
  graph::digraph g;
  sim::network net;
  channel_plan plan;
  sim::fault_set faults;

  harness(graph::digraph graph, int f, std::vector<graph::node_id> corrupt = {})
      : g(graph),
        net(g),
        plan(g, f, core::omega_cache::instance().channel_routes_for(g, f)),
        faults(g.universe(), corrupt) {}
};

/// Distinct multi-word claims, one per active node.
std::vector<claim_instance> distinct_claims(const graph::digraph& g) {
  std::vector<claim_instance> out;
  for (graph::node_id v : g.active_nodes()) {
    claim_instance inst;
    inst.source = v;
    inst.input = {static_cast<std::uint64_t>(v) * 0x1111 + 7,
                  static_cast<std::uint64_t>(v), 0xabcdef};
    inst.value_bits = 64 * 3;
    out.push_back(std::move(inst));
  }
  return out;
}

void expect_all_decide_inputs(const claim_outcome& out,
                              const std::vector<claim_instance>& instances,
                              const harness& h, const char* ctx) {
  ASSERT_EQ(out.agreed.size(), instances.size()) << ctx;
  for (std::size_t q = 0; q < instances.size(); ++q)
    for (graph::node_id v : h.g.active_nodes()) {
      if (h.faults.is_corrupt(v)) continue;
      EXPECT_EQ(out.agreed[q][static_cast<std::size_t>(v)], instances[q].input)
          << ctx << " instance " << q << " node " << v;
    }
}

void expect_honest_agree(const claim_outcome& out, const harness& h,
                         const char* ctx) {
  for (std::size_t q = 0; q < out.agreed.size(); ++q) {
    const value* first = nullptr;
    for (graph::node_id v : h.g.active_nodes()) {
      if (h.faults.is_corrupt(v)) continue;
      const value& mine = out.agreed[q][static_cast<std::size_t>(v)];
      if (first == nullptr) {
        first = &mine;
      } else {
        EXPECT_EQ(mine, *first) << ctx << " instance " << q << " node " << v;
      }
    }
  }
}

// --- digest ----------------------------------------------------------------

TEST(ClaimDigest, DeterministicAndContentSensitive) {
  const value a = {1, 2, 3};
  EXPECT_EQ(claim_digest_of(a), claim_digest_of(a));
  EXPECT_NE(claim_digest_of(a), claim_digest_of(value{1, 2, 4}));
  EXPECT_NE(claim_digest_of(a), claim_digest_of(value{1, 2}));
  // Length is absorbed, so zero-padding changes the digest.
  EXPECT_NE(claim_digest_of(value{}), claim_digest_of(value{0}));
  EXPECT_NE(claim_digest_of(value{0}), claim_digest_of(value{0, 0}));
}

TEST(ClaimDigest, SeedMovesTheEvaluationPoints) {
  // The points are per-run protocol state (sessions feed their coding
  // seed): a fixed public point set would make collisions closed-form
  // linear algebra instead of a seeded-randomness bet.
  const value a = {0xfeed, 42, 7};
  EXPECT_EQ(claim_digest_of(a, 99), claim_digest_of(a, 99));
  EXPECT_NE(claim_digest_of(a, 99), claim_digest_of(a, 100));
  EXPECT_NE(claim_digest_of(a, 0), claim_digest_of(a, 0x5eed));
}

TEST(ClaimDigest, PackedRoundTrips) {
  const claim_digest d = claim_digest_of({0xdeadbeef, 42});
  EXPECT_EQ(claim_digest::from_packed(d.packed()), d);
  EXPECT_EQ(claim_digest::from_packed(0), claim_digest{});
}

// --- auto_select boundary --------------------------------------------------

TEST(ClaimBackendResolve, ExplicitChoicesPassThrough) {
  for (claim_backend b :
       {claim_backend::eig, claim_backend::phase_king, claim_backend::collapsed})
    EXPECT_EQ(resolve_claim_backend(b, 64, 2), b);
}

TEST(ClaimBackendResolve, AutoKeepsSmallPresetsOnTheOracle) {
  // K_7 f=2, K_9 f=2, K_16 f=1: the EIG label tree is still cheap.
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 7, 2),
            claim_backend::eig);
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 9, 2),
            claim_backend::eig);
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 16, 1),
            claim_backend::eig);
}

TEST(ClaimBackendResolve, AutoCollapsesWhereTheLabelTreeDominates) {
  // n=32 f=2 (the hypercube_d5 bottleneck) and any n=64 configuration.
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 32, 2),
            claim_backend::collapsed);
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 64, 1),
            claim_backend::collapsed);
  EXPECT_EQ(resolve_claim_backend(claim_backend::auto_select, 16, 2),
            claim_backend::collapsed);
}

TEST(ClaimBackendResolve, PhaseKingAdmissibilityPredicate) {
  EXPECT_TRUE(phase_king_admissible(9, 2));
  EXPECT_FALSE(phase_king_admissible(8, 2));
  EXPECT_TRUE(phase_king_admissible(5, 1));
  EXPECT_FALSE(phase_king_admissible(4, 1));
}

// --- honest paths across all three backends --------------------------------

TEST(ClaimBroadcast, AllBackendsDecideSubmittedInputsOnK9F2) {
  const auto instances_of = [](const harness& h) { return distinct_claims(h.g); };
  for (claim_backend b :
       {claim_backend::eig, claim_backend::phase_king, claim_backend::collapsed}) {
    harness h(graph::complete(9), 2, {2, 5});  // corrupt but in-BB honest
    const auto instances = instances_of(h);
    const claim_outcome out =
        broadcast_claims(b, h.plan, h.net, h.faults, instances, 2);
    expect_all_decide_inputs(out, instances, h,
                             b == claim_backend::eig         ? "eig"
                             : b == claim_backend::phase_king ? "phase_king"
                                                              : "collapsed");
    EXPECT_EQ(out.fallback_retrievals, 0);
    EXPECT_GT(h.net.total_bits(), 0u);
  }
}

TEST(ClaimBroadcast, CollapsedAgreesUnderAnyDigestSeed) {
  for (std::uint64_t seed : {0ull, 0x5eedull, ~0ull}) {
    harness h(graph::complete(7), 2, {1, 6});
    const auto instances = distinct_claims(h.g);
    const claim_outcome out = broadcast_claims_collapsed(
        h.plan, h.net, h.faults, instances, 2, nullptr, nullptr, seed);
    expect_all_decide_inputs(out, instances, h, "seeded");
    EXPECT_EQ(out.fallback_retrievals, 0);
  }
}

TEST(ClaimBroadcast, CollapsedRunsOnEmulatedSparseChannels) {
  // Remove a link so some logical channels route over 2f+1 disjoint paths.
  graph::digraph g = graph::complete(6, 2);
  g.remove_edge_pair(0, 3);
  harness h(g, 1, {4});
  const auto instances = distinct_claims(h.g);
  const claim_outcome out = broadcast_claims_collapsed(h.plan, h.net, h.faults,
                                                       instances, 1);
  expect_all_decide_inputs(out, instances, h, "sparse-collapsed");
  EXPECT_EQ(out.fallback_retrievals, 0);
}

TEST(ClaimBroadcast, CollapsedChargesPolynomiallyFewerClaimBitsThanEig) {
  // Same instances, same topology: the collapsed backend must transfer each
  // transcript once per pair instead of once per EIG label relay.
  const graph::digraph g = graph::complete(10);
  std::vector<claim_instance> instances;
  for (graph::node_id v : g.active_nodes()) {
    claim_instance inst;
    inst.source = v;
    inst.input.assign(64, static_cast<std::uint64_t>(v) + 1);  // 4 KiB claims
    inst.value_bits = 64 * 64;
    instances.push_back(std::move(inst));
  }
  harness eig_h(g, 2, {1, 2});
  const claim_outcome eig_out =
      broadcast_claims_eig(eig_h.plan, eig_h.net, eig_h.faults, instances, 2);
  harness col_h(g, 2, {1, 2});
  const claim_outcome col_out = broadcast_claims_collapsed(
      col_h.plan, col_h.net, col_h.faults, instances, 2);
  EXPECT_EQ(eig_out.agreed, col_out.agreed);
  EXPECT_GT(eig_h.net.total_bits(), 10 * col_h.net.total_bits())
      << "eig=" << eig_h.net.total_bits() << " collapsed=" << col_h.net.total_bits();
}

// --- collapsed backend under its adversary hooks ---------------------------

/// Claimant equivocation: even receivers get the honest payload, odd ones a
/// substituted payload (with a matching digest — a "clean" equivocation).
class equivocating_claimant : public claim_adversary {
 public:
  value propose_payload(graph::node_id, graph::node_id receiver,
                        const value& honest) override {
    return receiver % 2 == 0 ? honest : value{0xbad, 0xbad};
  }
};

TEST(ClaimBroadcast, CollapsedEquivocatingClaimantCannotSplitHonestNodes) {
  harness h(graph::complete(7), 2, {0, 3});
  const auto instances = distinct_claims(h.g);
  equivocating_claimant adv;
  const claim_outcome out = broadcast_claims_collapsed(h.plan, h.net, h.faults,
                                                       instances, 2, &adv);
  expect_honest_agree(out, h, "equivocate");
  // Honest claimants are untouched by the corrupt ones' equivocation.
  for (std::size_t q = 0; q < instances.size(); ++q) {
    if (h.faults.is_corrupt(instances[q].source)) continue;
    for (graph::node_id v : h.g.active_nodes()) {
      if (h.faults.is_corrupt(v)) continue;
      EXPECT_EQ(out.agreed[q][static_cast<std::size_t>(v)], instances[q].input);
    }
  }
}

TEST(ClaimBroadcast, CollapsedDigestMismatchedPairsFallBackToRetrieval) {
  harness h(graph::complete(7), 2, {5});
  auto instances = distinct_claims(h.g);
  // Make the corrupt claimant's honest input recognizable.
  for (auto& inst : instances)
    if (inst.source == 5) inst.input = {0x5555, 0x5555};

  class mismatcher : public claim_adversary {
   public:
    value propose_payload(graph::node_id, graph::node_id receiver,
                          const value& honest) override {
      // Receivers 0..1 get garbage (any more and the honest holders would
      // drop below the echo quorum of (n+f)/2 + 1 = 5, making the claimant
      // simply unaccepted); the announced digest stays the honest one, so
      // the garbage mismatches and exactly those pairs retrieve.
      return receiver <= 1 ? value{0xf0f0} : honest;
    }
    claim_digest announce_digest(graph::node_id, graph::node_id,
                                 const claim_digest&) override {
      return claim_digest_of({0x5555, 0x5555});  // the honest input's digest
    }
  } adv;

  const claim_outcome out = broadcast_claims_collapsed(h.plan, h.net, h.faults,
                                                       instances, 2, &adv);
  expect_honest_agree(out, h, "digest-mismatch");
  EXPECT_GT(out.fallback_retrievals, 0);
  // Every honest node ends with the payload backing the accepted digest —
  // enough honest holders exist to serve the mismatched minority.
  for (std::size_t q = 0; q < instances.size(); ++q) {
    if (instances[q].source != 5) continue;
    for (graph::node_id v : h.g.active_nodes()) {
      if (h.faults.is_corrupt(v)) continue;
      EXPECT_EQ(out.agreed[q][static_cast<std::size_t>(v)],
                (value{0x5555, 0x5555}));
    }
  }
}

/// Suppresses every echo and ready toward one victim and forges retrieval
/// responses: quorum arithmetic and the digest filter must keep all honest
/// nodes identical anyway.
class suppressor : public claim_adversary {
 public:
  std::optional<claim_digest> echo_digest(
      graph::node_id, graph::node_id receiver, std::size_t,
      const std::optional<claim_digest>& honest) override {
    return receiver == 1 ? std::nullopt : honest;
  }
  bool suppress_ready(graph::node_id, graph::node_id receiver,
                      std::size_t) override {
    return receiver == 1;
  }
  std::optional<value> serve_retrieval(graph::node_id, graph::node_id,
                                       std::size_t,
                                       const std::optional<value>&) override {
    return value{0xdead};  // forged; filtered by the requester's digest check
  }
};

TEST(ClaimBroadcast, CollapsedSurvivesSuppressionAndForgedRetrievals) {
  harness h(graph::complete(7), 2, {0, 6});
  const auto instances = distinct_claims(h.g);
  suppressor adv;
  const claim_outcome out = broadcast_claims_collapsed(h.plan, h.net, h.faults,
                                                       instances, 2, &adv);
  expect_all_decide_inputs(out, instances, h, "suppression");
}

TEST(ClaimBroadcast, PhaseKingRejectsUndersizedGroupsAtTheBoundary) {
  // n = 8 <= 4f at f = 2: the engine must abort at entry (the session and
  // registry reject the combination before ever reaching it).
  harness h(graph::complete(8), 2);
  const auto instances = distinct_claims(h.g);
  EXPECT_DEATH(
      broadcast_claims_phase_king(h.plan, h.net, h.faults, instances, 2),
      "more than 4f participants");
}

}  // namespace
}  // namespace nab::bb
