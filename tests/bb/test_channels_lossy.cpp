// channel_plan over erasure links: direct links ride the network ARQ
// (retransmit until delivered or degrade to a missing message), emulated
// multi-hop routes succeed iff every hop of at least one surviving path
// does, and the inert "zero" model leaves delivery and accounting exactly
// as the clean simulator's.

#include <gtest/gtest.h>

#include "bb/channels.hpp"
#include "graph/generators.hpp"
#include "sim/link_faults.hpp"
#include "sim/network.hpp"

namespace nab::bb {
namespace {

TEST(ChannelsLossy, DirectLinkSurvivesViaRetransmission) {
  // p = 0.5 flat: with a 12-retry budget every message still lands
  // (exhaustion odds 2^-13 per message, and the drop sequence is fixed by
  // the seed anyway).
  sim::link_fault_model m(sim::parse_loss_spec("0.5,0.5,0,1"), 21);
  sim::scoped_link_faults scope(&m);
  const graph::digraph g = graph::complete(3, 2);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  int delivered = 0;
  std::uint64_t clean_bits = 0;
  for (int round = 0; round < 50; ++round) {
    plan.unicast(0, 1, 9, {static_cast<std::uint64_t>(round)}, 10);
    plan.end_round(net, faults);
    delivered += static_cast<int>(plan.inbox(1).size());
    clean_bits += 10;
  }
  EXPECT_EQ(delivered, 50);
  // Retransmissions cost real wire bits beyond the clean accounting.
  EXPECT_GT(net.link_bits(0, 1), clean_bits);
}

TEST(ChannelsLossy, DeadLinkDegradesToMissingMessage) {
  // p = 1 in both states: the retry budget exhausts and the message is
  // simply absent — no crash, no phantom delivery.
  sim::link_fault_model m(sim::parse_loss_spec("1,1,0,1"), 5);
  sim::scoped_link_faults scope(&m);
  const graph::digraph g = graph::complete(3, 2);
  sim::network net(g);
  sim::fault_set faults(3);
  channel_plan plan(g, 0);
  plan.unicast(0, 1, 9, {123}, 10);
  plan.end_round(net, faults);
  EXPECT_TRUE(plan.inbox(1).empty());
  // The budget was still paid for: initial + retry_budget charges.
  EXPECT_EQ(net.link_bits(0, 1), 10u * 13);
}

TEST(ChannelsLossy, EmulatedRoutesSurviveWhileAnyPathDelivers) {
  // K5 minus the 0<->3 link: 3 node-disjoint multi-hop paths. Moderate loss
  // with ARQ keeps each hop alive, so the majority vote sees all copies.
  sim::link_fault_model m(sim::parse_loss_spec("bursty"), 31);
  sim::scoped_link_faults scope(&m);
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  int delivered = 0;
  for (int round = 0; round < 25; ++round) {
    plan.unicast(0, 3, 0, {42}, 8);
    plan.end_round(net, faults);
    for (const sim::message& msg : plan.inbox(3)) {
      EXPECT_EQ(msg.payload, (sim::payload{42}));
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 25);
}

TEST(ChannelsLossy, AllPathsDeadMeansNoDelivery) {
  sim::link_fault_model m(sim::parse_loss_spec("1,1,0,1"), 5);
  sim::scoped_link_faults scope(&m);
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::network net(g);
  sim::fault_set faults(5);
  channel_plan plan(g, 1);
  plan.unicast(0, 3, 0, {42}, 8);
  plan.end_round(net, faults);
  EXPECT_TRUE(plan.inbox(3).empty());
  // First hops pay their exhausted budgets; hops past a failure are never
  // charged (each first hop 0->relay exists in K5 minus one pair).
  EXPECT_GT(net.total_bits(), 0u);
}

TEST(ChannelsLossy, ZeroModelMatchesCleanRunExactly) {
  // The inert preset attached vs no model at all: identical deliveries,
  // identical per-link bits, identical round times — the byte-identity
  // guard at the channel layer.
  graph::digraph g = graph::complete(5);
  g.remove_edge_pair(0, 3);
  sim::fault_set faults(5);

  sim::network clean_net(g);
  channel_plan clean_plan(g, 1);
  clean_plan.unicast(0, 3, 7, {11, 22}, 16);
  clean_plan.unicast(2, 4, 8, {33}, 4);
  const double clean_time = clean_plan.end_round(clean_net, faults);

  sim::link_fault_model zero(sim::parse_loss_spec("zero"), 77);
  sim::scoped_link_faults scope(&zero);
  sim::network lossy_net(g);
  channel_plan lossy_plan(g, 1);
  lossy_plan.unicast(0, 3, 7, {11, 22}, 16);
  lossy_plan.unicast(2, 4, 8, {33}, 4);
  const double zero_time = lossy_plan.end_round(lossy_net, faults);

  EXPECT_DOUBLE_EQ(clean_time, zero_time);
  EXPECT_EQ(clean_net.total_bits(), lossy_net.total_bits());
  ASSERT_EQ(clean_plan.inbox(3).size(), lossy_plan.inbox(3).size());
  ASSERT_EQ(lossy_plan.inbox(3).size(), 1u);
  EXPECT_EQ(clean_plan.inbox(3)[0].payload, lossy_plan.inbox(3)[0].payload);
  ASSERT_EQ(lossy_plan.inbox(4).size(), 1u);
  EXPECT_EQ(lossy_plan.inbox(4)[0].payload, (sim::payload{33}));
  for (graph::node_id u = 0; u < 5; ++u)
    for (graph::node_id v = 0; v < 5; ++v)
      if (g.has_edge(u, v)) {
        EXPECT_EQ(clean_net.link_bits(u, v), lossy_net.link_bits(u, v))
            << u << "->" << v;
      }
}

}  // namespace
}  // namespace nab::bb
