// Pins the "near-zero-cost when off" contract: with no ambient collector
// installed, every instrumentation form (count, gauge_min, scoped_span —
// including close()) performs ZERO heap allocations. The PR-3 allocation
// budgets assume instrumentation is free in the uncollected fleet path; this
// test catches anyone adding an eager std::string or vector to the off path.
//
// heap_alloc_counter.hpp defines the global replacement operator new — it may
// be included from exactly one TU of this binary, and this is it.

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "util/heap_alloc_counter.hpp"

namespace nab::obs {
namespace {

TEST(ZeroOverhead, UncollectedInstrumentationNeverAllocates) {
  ASSERT_EQ(ambient_collector(), nullptr);
  const std::uint64_t before = util::heap_allocs();
  for (int i = 0; i < 10'000; ++i) {
    count(counter::gf_axpy_words, 64);
    count(counter::claim_echoes);
    gauge_min(gauge::quorum_slack, i);
    {
      scoped_span outer("instance", 0.0);
      scoped_span inner("phase1", 0.0);
      inner.end_tau(1.0);
      outer.end_tau(1.0);
    }
    {
      scoped_span span("dc3_replay", 0.0);
      span.close(1.0);
    }
  }
  EXPECT_EQ(util::heap_allocs() - before, 0u);
}

TEST(ZeroOverhead, SuspendedCollectorIsAllocationFree) {
  // A nullptr scoped_collector (suspension) must be as free as no collector:
  // installing/restoring is two thread-local stores, nothing on the heap.
  collector col;
  scoped_collector outer(&col);
  const std::uint64_t before = util::heap_allocs();
  for (int i = 0; i < 10'000; ++i) {
    scoped_collector suspend(nullptr);
    count(counter::gf_mul_ops, 16);
    scoped_span span("certify");
  }
  EXPECT_EQ(util::heap_allocs() - before, 0u);
  EXPECT_EQ(col.value(counter::gf_mul_ops), 0u);
  EXPECT_TRUE(col.spans().empty());
}

TEST(ZeroOverhead, CountingOnAWarmCollectorIsAllocationFree) {
  // Counters and gauges write into fixed arrays — only spans may allocate.
  collector col;
  scoped_collector scope(&col);
  const std::uint64_t before = util::heap_allocs();
  for (int i = 0; i < 10'000; ++i) {
    count(counter::gf_axpy_words, 64);
    gauge_min(gauge::hold_surplus, i);
  }
  EXPECT_EQ(util::heap_allocs() - before, 0u);
  EXPECT_EQ(col.value(counter::gf_axpy_words), 640'000u);
}

}  // namespace
}  // namespace nab::obs
