// Golden-structure test for the fleet --timeline export: a hand-built record
// with fixed span data must serialize to exactly this Chrome-trace JSON.
// Timestamps are synthetic (no clock is consulted), so the comparison is
// byte-exact and any drift in event shape, key order, or number formatting
// shows up as a readable diff.

#include <gtest/gtest.h>

#include <string>

#include "obs/obs.hpp"
#include "runtime/metrics.hpp"

namespace nab::runtime {
namespace {

obs::span_record make_span(int id, int parent, int depth, const char* name,
                           double tau0, double tau1, double w0, double w1) {
  obs::span_record s;
  s.id = id;
  s.parent = parent;
  s.depth = depth;
  s.name = name;
  s.tau_begin = tau0;
  s.tau_end = tau1;
  s.wall_begin = w0;
  s.wall_end = w1;
  return s;
}

run_record make_record() {
  run_record r;
  r.run_index = 3;
  r.scenario = "k8/f1/static";
  // Wall values are dyadic fractions so wall * 1e6 is exact in binary and
  // %.17g prints clean integers — the golden stays byte-stable.
  r.timing.spans = {
      make_span(0, -1, 0, "instance", 0.0, 100.0, 0.0, 0.5),
      make_span(1, 0, 1, "phase1", 0.0, 40.0, 0.0, 0.25),
      // Pure-computation span: tau sentinel -1 must suppress the tau args.
      make_span(2, 0, 1, "coding_generate", -1.0, -1.0, 0.25, 0.375),
  };
  return r;
}

TEST(Timeline, DocumentMatchesGolden) {
  // A record captured without spans contributes nothing, not empty events.
  run_record spanless;
  spanless.run_index = 1;
  const json doc = timeline_document("smoke", 7, {spanless, make_record()});
  const std::string expected = R"({
  "bench": "runtime-timeline",
  "sweep": "smoke",
  "base_seed": "0x0000000000000007",
  "displayTimeUnit": "ms",
  "traceEvents": [
    {
      "name": "process_name",
      "ph": "M",
      "pid": 3,
      "tid": 0,
      "args": {
        "name": "run 3: k8/f1/static"
      }
    },
    {
      "name": "instance",
      "ph": "X",
      "ts": 0,
      "dur": 500000,
      "pid": 3,
      "tid": 0,
      "args": {
        "depth": 0,
        "tau_begin": 0,
        "tau_end": 100
      }
    },
    {
      "name": "phase1",
      "ph": "X",
      "ts": 0,
      "dur": 250000,
      "pid": 3,
      "tid": 0,
      "args": {
        "depth": 1,
        "tau_begin": 0,
        "tau_end": 40
      }
    },
    {
      "name": "coding_generate",
      "ph": "X",
      "ts": 250000,
      "dur": 125000,
      "pid": 3,
      "tid": 0,
      "args": {
        "depth": 1
      }
    }
  ]
}
)";
  EXPECT_EQ(doc.dump(), expected);
}

TEST(Timeline, WallByPhaseAggregatesDepthOneSpans) {
  std::vector<obs::span_record> spans = {
      make_span(0, -1, 0, "instance", 0.0, 10.0, 0.0, 1.0),
      make_span(1, 0, 1, "phase1", 0.0, 4.0, 0.0, 0.25),
      make_span(2, 1, 2, "omega_cache/fill_plan", -1.0, -1.0, 0.0, 0.1),
      make_span(3, 0, 1, "phase3", 4.0, 10.0, 0.25, 0.75),
      // Second instance of the same run: same phase names accumulate.
      make_span(4, -1, 0, "instance", 10.0, 20.0, 1.0, 2.0),
      make_span(5, 4, 1, "phase1", 10.0, 14.0, 1.0, 1.5),
      // Top-level fill (paid outside any instance) counts as its own phase.
      make_span(6, -1, 0, "omega_cache/fill_analysis", -1.0, -1.0, 2.0, 2.125),
  };
  const auto rows = wall_by_phase_of(spans);
  ASSERT_EQ(rows.size(), 3u);  // sorted by name; "instance" and depth-2 excluded
  EXPECT_EQ(rows[0].first, "omega_cache/fill_analysis");
  EXPECT_DOUBLE_EQ(rows[0].second, 0.125);
  EXPECT_EQ(rows[1].first, "phase1");
  EXPECT_DOUBLE_EQ(rows[1].second, 0.75);
  EXPECT_EQ(rows[2].first, "phase3");
  EXPECT_DOUBLE_EQ(rows[2].second, 0.5);
}

TEST(Timeline, RunRecordJsonNestsTimingUnderOneKey) {
  run_record r = make_record();
  r.timing.wall_by_phase = {{"phase1", 0.001}};
  const std::string bare = r.to_json(false).dump();
  const std::string timed = r.to_json(true).dump();
  EXPECT_EQ(bare.find("\"timing\""), std::string::npos);
  EXPECT_NE(timed.find("\"timing\""), std::string::npos);
  EXPECT_NE(timed.find("\"wall_seconds_by_phase\""), std::string::npos);
  // Deterministic counters live outside timing in both shapes.
  EXPECT_NE(bare.find("\"gf_ops\""), std::string::npos);
  EXPECT_NE(bare.find("\"margin_quorum_slack\""), std::string::npos);
}

}  // namespace
}  // namespace nab::runtime
