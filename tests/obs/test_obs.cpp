#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace nab::obs {
namespace {

TEST(Collector, CountersStartZeroAndAccumulate) {
  collector col;
  for (int i = 0; i < counter_count; ++i)
    EXPECT_EQ(col.value(static_cast<counter>(i)), 0u);
  col.add(counter::gf_axpy_words, 3);
  col.add(counter::gf_axpy_words, 4);
  col.add(counter::claim_echoes, 1);
  EXPECT_EQ(col.value(counter::gf_axpy_words), 7u);
  EXPECT_EQ(col.value(counter::claim_echoes), 1u);
  EXPECT_EQ(col.value(counter::gf_scale_words), 0u);
}

TEST(Collector, GaugesRecordMinimumAndStartUnset) {
  collector col;
  for (int i = 0; i < gauge_count; ++i)
    EXPECT_EQ(col.gauge_value(static_cast<gauge>(i)), gauge_unset);
  col.gauge_min(gauge::quorum_slack, 5);
  col.gauge_min(gauge::quorum_slack, 9);   // larger: ignored
  col.gauge_min(gauge::quorum_slack, 2);   // smaller: kept
  EXPECT_EQ(col.gauge_value(gauge::quorum_slack), 2);
  // A recorded minimum below the sentinel must still win over "unset".
  col.gauge_min(gauge::hold_surplus, -7);
  EXPECT_EQ(col.gauge_value(gauge::hold_surplus), -7);
  EXPECT_EQ(col.gauge_value(gauge::dispute_headroom), gauge_unset);
}

TEST(Collector, CounterAndGaugeNamesAreUnique) {
  for (int i = 0; i < counter_count; ++i) {
    const std::string a = counter_name(static_cast<counter>(i));
    EXPECT_NE(a, "unknown_counter");
    for (int j = i + 1; j < counter_count; ++j)
      EXPECT_NE(a, counter_name(static_cast<counter>(j)));
  }
  for (int i = 0; i < gauge_count; ++i) {
    const std::string a = gauge_name(static_cast<gauge>(i));
    EXPECT_NE(a, "unknown_gauge");
    for (int j = i + 1; j < gauge_count; ++j)
      EXPECT_NE(a, gauge_name(static_cast<gauge>(j)));
  }
}

TEST(Collector, SpansNestWithParentAndDepth) {
  collector col;
  const int outer = col.open_span("phase3", 10.0);
  EXPECT_EQ(col.current_span(), outer);
  const int inner = col.open_span("dc1_claims", 11.0);
  EXPECT_EQ(col.current_span(), inner);
  col.close_span(inner, 12.0);
  const int sibling = col.open_span("dc2_crosscheck", 12.0);
  col.close_span(sibling, 13.0);
  col.close_span(outer, 14.0);
  EXPECT_EQ(col.current_span(), -1);

  const auto& spans = col.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "phase3");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "dc1_claims");
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "dc2_crosscheck");
  EXPECT_EQ(spans[2].parent, outer);
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_DOUBLE_EQ(spans[0].tau_begin, 10.0);
  EXPECT_DOUBLE_EQ(spans[0].tau_end, 14.0);
  EXPECT_DOUBLE_EQ(spans[1].tau_end, 12.0);
  EXPECT_LE(spans[0].wall_begin, spans[1].wall_begin);
  EXPECT_LE(spans[1].wall_end, spans[0].wall_end);
}

TEST(CollectorDeath, OutOfOrderCloseAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  collector col;
  const int outer = col.open_span("a", 0.0);
  col.open_span("b", 0.0);
  EXPECT_DEATH(col.close_span(outer, 1.0), "LIFO");
}

TEST(Collector, ResetClearsEverythingButKeepsEpoch) {
  collector col;
  col.add(counter::cache_lookups, 2);
  col.gauge_min(gauge::quorum_slack, 1);
  const int id = col.open_span("x", 0.0);
  col.close_span(id, 1.0);
  const double before = col.now();
  col.reset();
  EXPECT_EQ(col.value(counter::cache_lookups), 0u);
  EXPECT_EQ(col.gauge_value(gauge::quorum_slack), gauge_unset);
  EXPECT_TRUE(col.spans().empty());
  EXPECT_GE(col.now(), before);  // epoch preserved, clock still monotone
}

TEST(ScopedCollector, InstallsNestsAndRestores) {
  EXPECT_EQ(ambient_collector(), nullptr);
  collector outer_col;
  collector inner_col;
  {
    scoped_collector outer(&outer_col);
    EXPECT_EQ(ambient_collector(), &outer_col);
    count(counter::gf_mul_ops, 5);
    {
      scoped_collector inner(&inner_col);
      EXPECT_EQ(ambient_collector(), &inner_col);
      count(counter::gf_mul_ops, 7);
      {
        scoped_collector suspend(nullptr);  // suspension: counts go nowhere
        count(counter::gf_mul_ops, 100);
      }
      EXPECT_EQ(ambient_collector(), &inner_col);
    }
    EXPECT_EQ(ambient_collector(), &outer_col);
  }
  EXPECT_EQ(ambient_collector(), nullptr);
  EXPECT_EQ(outer_col.value(counter::gf_mul_ops), 5u);
  EXPECT_EQ(inner_col.value(counter::gf_mul_ops), 7u);
}

TEST(ScopedCollector, IsThreadConfined) {
  collector col;
  scoped_collector scope(&col);
  collector* seen = &col;
  std::thread([&] { seen = ambient_collector(); }).join();
  EXPECT_EQ(seen, nullptr);  // ambient is thread_local: other threads see none
  EXPECT_EQ(ambient_collector(), &col);
}

TEST(ScopedSpan, RecordsOnAmbientCollector) {
  collector col;
  scoped_collector scope(&col);
  {
    scoped_span outer("instance", 0.0);
    {
      scoped_span inner("phase1", 1.0);
      inner.end_tau(4.0);
    }
    outer.end_tau(9.0);
  }
  const auto& spans = col.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "instance");
  EXPECT_EQ(spans[1].name, "phase1");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_DOUBLE_EQ(spans[1].tau_end, 4.0);
  EXPECT_DOUBLE_EQ(spans[0].tau_end, 9.0);
}

TEST(ScopedSpan, CloseEndsEarlyAndDisarmsDestructor) {
  collector col;
  scoped_collector scope(&col);
  {
    scoped_span span("dc3_replay", 2.0);
    span.close(6.0);
    EXPECT_EQ(col.current_span(), -1);  // already closed, mid-scope
    span.close(99.0);                   // second close: no-op
    // A sibling opened after close() must be top-level, not nested under it.
    scoped_span sibling("dc4_intersection", 6.0);
    sibling.end_tau(7.0);
  }
  const auto& spans = col.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].tau_end, 6.0);
  EXPECT_EQ(spans[1].parent, -1);
  EXPECT_EQ(spans[1].depth, 0);
}

TEST(ScopedSpan, PureComputationSpanKeepsSentinelTau) {
  collector col;
  scoped_collector scope(&col);
  { scoped_span span("coding_generate"); }
  ASSERT_EQ(col.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(col.spans()[0].tau_begin, -1.0);
  EXPECT_DOUBLE_EQ(col.spans()[0].tau_end, -1.0);
}

TEST(Ambient, FreeFunctionsAreNoOpsWithoutCollector) {
  ASSERT_EQ(ambient_collector(), nullptr);
  count(counter::gf_axpy_words, 10);
  gauge_min(gauge::quorum_slack, 0);
  { scoped_span span("phase1", 0.0); span.end_tau(1.0); }
  { scoped_span span("phase3", 0.0); span.close(1.0); }
  // Nothing to observe — the point is simply that none of it crashed and no
  // state leaked into a collector installed afterwards.
  collector col;
  scoped_collector scope(&col);
  EXPECT_EQ(col.value(counter::gf_axpy_words), 0u);
  EXPECT_TRUE(col.spans().empty());
}

}  // namespace
}  // namespace nab::obs
