#include "core/capacity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Capacity, GammaKMatchesBroadcastMincut) {
  const graph::digraph g = graph::paper_fig1a();
  EXPECT_EQ(gamma_k(g, 0), 2);
  EXPECT_EQ(gamma_k(graph::paper_fig2(), 0), 2);
}

TEST(Capacity, GammaStarExhaustiveFig1a) {
  // The adversary can get the {1,2} and {2,3} pairs removed (cover {2}),
  // forcing node 2 out; the surviving graph {0,1,3} has gamma 1.
  EXPECT_EQ(gamma_star_exhaustive(graph::paper_fig1a(), 0, 1), 1);
}

TEST(Capacity, GammaStarNeverExceedsGamma1) {
  rng rand(1);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::digraph g = graph::erdos_renyi(5, 0.6, 1, 4, rand);
    const auto gs = gamma_star_exhaustive(g, 0, 1);
    EXPECT_LE(gs, graph::broadcast_mincut(g, 0));
    EXPECT_GE(gs, 0);
  }
}

TEST(Capacity, IncidentEstimateUpperBoundsExhaustive) {
  // The incident-sets search explores a subset of Gamma, so its minimum can
  // only be larger or equal.
  rng rand(2);
  for (int trial = 0; trial < 8; ++trial) {
    const graph::digraph g = graph::erdos_renyi(5, 0.5, 1, 3, rand);
    EXPECT_GE(gamma_star_incident(g, 0, 1), gamma_star_exhaustive(g, 0, 1));
  }
}

TEST(Capacity, ExhaustiveThrowsOnLargeGraphs) {
  EXPECT_THROW(gamma_star_exhaustive(graph::complete(8), 0, 2), nab::error);
}

TEST(Capacity, U1OfPaperExamples) {
  EXPECT_EQ(u1_exact(graph::paper_fig1a(), 1), 2);
  // K7 cap 1: 5-subsets are K5 with weight-2 edges -> U1 = 8.
  EXPECT_EQ(u1_exact(graph::complete(7), 2), 8);
}

TEST(Capacity, BoundsRelationshipsHold) {
  rng rand(3);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::digraph g = graph::erdos_renyi(5, 0.6, 1, 5, rand);
    const capacity_bounds b = compute_bounds(g, 0, 1, gamma_mode::exhaustive);
    // Theorem 3 algebra: T_NAB >= bound/3, and >= bound/2 when gamma* <= rho*.
    EXPECT_GE(b.nab_throughput_bound + 1e-9, b.capacity_upper_bound / 3.0);
    if (static_cast<double>(b.gamma_star) <= b.rho_star)
      EXPECT_GE(b.nab_throughput_bound + 1e-9, b.capacity_upper_bound / 2.0);
    EXPECT_LE(b.nab_throughput_bound, b.capacity_upper_bound + 1e-9);
    EXPECT_TRUE(b.gamma_exact);
  }
}

TEST(Capacity, GuaranteedFractionSelection) {
  rng rand(4);
  const graph::digraph g = graph::complete(4, 4);
  const capacity_bounds b = compute_bounds(g, 0, 1);
  EXPECT_TRUE(b.guaranteed_fraction == 0.5 || b.guaranteed_fraction == 1.0 / 3.0);
  if (static_cast<double>(b.gamma_star) <= b.rho_star)
    EXPECT_DOUBLE_EQ(b.guaranteed_fraction, 0.5);
}

TEST(Capacity, AutoModeSelectsExhaustiveForSmallGraphs) {
  const capacity_bounds b = compute_bounds(graph::paper_fig1a(), 0, 1);
  EXPECT_TRUE(b.gamma_exact);
  const capacity_bounds big = compute_bounds(graph::complete(8), 0, 2);
  EXPECT_FALSE(big.gamma_exact);
}

TEST(Capacity, FZeroMakesGammaStarGamma1) {
  // Without faults no disputes ever happen: Gamma = {G}.
  const graph::digraph g = graph::paper_fig2();
  EXPECT_EQ(gamma_star_exhaustive(g, 0, 0), graph::broadcast_mincut(g, 0));
}

}  // namespace
}  // namespace nab::core
