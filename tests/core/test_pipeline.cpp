#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Pipeline, DeliversEveryInstanceCorrectly) {
  pipeline_config cfg{.g = graph::path_of_cliques(3, 3, 1), .f = 1, .source = 0};
  rng rand(1);
  const auto stats = run_pipelined(cfg, 8, 64, rand);
  EXPECT_EQ(stats.instances, 8);
  EXPECT_TRUE(stats.all_agreed);
  EXPECT_TRUE(stats.all_valid);
  EXPECT_GT(stats.elapsed, 0.0);
}

TEST(Pipeline, DepthMatchesTopology) {
  pipeline_config cfg{.g = graph::path_of_cliques(4, 3, 1), .f = 1, .source = 0};
  rng rand(2);
  const auto stats = run_pipelined(cfg, 4, 32, rand);
  // The value must traverse at least hops-1 = 3 inter-cluster boundaries.
  EXPECT_GE(stats.depth, 3);
}

TEST(Pipeline, BeatsSequentialOnDeepNetworks) {
  pipeline_config cfg{.g = graph::path_of_cliques(5, 3, 1), .f = 1, .source = 0};
  rng rand(3);
  const auto stats = run_pipelined(cfg, 16, 256, rand);
  EXPECT_GT(stats.speedup(), 1.5);
  EXPECT_GT(stats.throughput(), stats.sequential_throughput());
}

TEST(Pipeline, ShallowNetworksGainLittle) {
  // Bidirectional star with f=0: gamma = 1, the single arborescence is the
  // star itself (depth 1) — pipelining cannot help.
  graph::digraph g(4);
  g.add_bidirectional(0, 1, 1);
  g.add_bidirectional(0, 2, 1);
  g.add_bidirectional(0, 3, 1);
  pipeline_config cfg{.g = g, .f = 0, .source = 0};
  rng rand(4);
  const auto stats = run_pipelined(cfg, 8, 64, rand);
  EXPECT_EQ(stats.depth, 1);
  EXPECT_NEAR(stats.speedup(), 1.0, 0.35);
}

TEST(Pipeline, SpeedupGrowsWithPayload) {
  // On a fixed deep topology the flag term O(n^alpha) is constant in L, so
  // larger payloads amortize it and the speedup climbs toward the pipe
  // depth (Appendix D's large-L regime).
  pipeline_config cfg{.g = graph::path_of_cliques(5, 3, 1), .f = 1, .source = 0};
  rng rand(5);
  const auto small = run_pipelined(cfg, 12, 64, rand);
  const auto large = run_pipelined(cfg, 12, 2048, rand);
  EXPECT_GT(large.speedup(), small.speedup());
  EXPECT_LE(large.speedup(), static_cast<double>(large.depth) + 1e-9);
}

}  // namespace
}  // namespace nab::core
