// The omega_cache is pure memoization: every value it returns must be
// byte-identical to what the uncached computation produces for the same
// (graph, f, disputes) key — across every registry preset, repeated
// lookups, dispute variations, and concurrent access. This is the guard
// against graph-fingerprint collisions silently corrupting a sweep.

#include "core/omega_cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "core/omega.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "runtime/scenario.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

/// Deterministic materialization of every distinct topology in the registry
/// (random kinds drawn from a fixed rng so the test is reproducible).
std::vector<std::pair<std::string, graph::digraph>> registry_graphs() {
  std::vector<std::pair<std::string, graph::digraph>> out;
  std::set<std::string> seen;
  rng rand(2024);
  for (const runtime::scenario& s : runtime::select_scenarios("all")) {
    const std::string key = runtime::to_string(s.topology.kind) + "/" +
                            std::to_string(runtime::topology_nodes(s.topology));
    if (!seen.insert(key).second) continue;
    out.emplace_back(key, runtime::build_topology(s.topology, rand));
  }
  return out;
}

TEST(OmegaCache, MatchesUncachedAnalysisOnEveryRegistryPreset) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  for (const auto& [name, g] : registry_graphs()) {
    for (int f : {0, 1}) {
      if (g.universe() < 3 * f + 1) continue;
      const dispute_record none;
      const auto cached = cache.analyze(g, f, none);
      // Uncached ground truth, recomputed from scratch.
      const auto omega = omega_subgraphs(g, f, none);
      const auto uk = compute_uk(g, f, none);
      EXPECT_EQ(cached->omega, omega) << name << " f=" << f;
      EXPECT_EQ(cached->uk, uk) << name << " f=" << f;
      EXPECT_EQ(cached->rho, compute_rho(uk)) << name << " f=" << f;
      // A second lookup must serve the identical object.
      EXPECT_EQ(cache.analyze(g, f, none).get(), cached.get()) << name;
    }
  }
}

TEST(OmegaCache, MatchesUncachedPhase1PlanOnEveryRegistryPreset) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  for (const auto& [name, g] : registry_graphs()) {
    // The frontier presets (n = 128, K_64) would pack and re-pack dozens of
    // arborescences here without touching any cache code path the smaller
    // presets miss; their plans are exercised by the runtime perf smoke.
    if (g.universe() > 64 || g.edges().size() > 1000) continue;
    const graph::node_id source = g.active_nodes().front();
    const auto plan = cache.plan_for(g, source);
    const auto gamma = graph::broadcast_mincut(g, source);
    EXPECT_EQ(plan->gamma, gamma) << name;
    if (gamma >= 1) {
      // pack_arborescences is deterministically seeded from (k, root), so
      // the cached packing must equal a fresh one edge for edge.
      const auto fresh =
          graph::pack_arborescences(g, source, static_cast<int>(gamma));
      ASSERT_EQ(plan->trees.size(), fresh.size()) << name;
      for (std::size_t t = 0; t < fresh.size(); ++t)
        EXPECT_EQ(plan->trees[t].edges, fresh[t].edges) << name << " tree " << t;
    }
  }
}

TEST(OmegaCache, UnreachableSinkYieldsGammaZeroTreelessPlan) {
  // A sink the source cannot reach has min-cut 0, and 0 is a genuine gamma —
  // not an "unset" sentinel. Regression: folding the per-sink cuts with a
  // 0-means-unset scheme let a later positive cut overwrite the true 0,
  // making plan_for attempt (and fail) a k>0 arborescence packing where
  // broadcast_mincut correctly reports gamma = 0 and a treeless plan.
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  graph::digraph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 0, 2);  // node 2 is active but unreachable from 0
  ASSERT_EQ(graph::broadcast_mincut(g, 0), 0);
  const auto plan = cache.plan_for(g, 0);
  EXPECT_EQ(plan->gamma, 0);
  EXPECT_TRUE(plan->trees.empty());
}

TEST(OmegaCache, DisputesArePartOfTheKey) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  rng rand(1);
  const graph::digraph g = runtime::build_topology(
      {.kind = runtime::topology_kind::complete, .n = 5, .cap_lo = 1}, rand);
  const dispute_record none;
  dispute_record disputed;
  disputed.add_dispute(1, 2);
  const auto clean = cache.analyze(g, 1, none);
  const auto tainted = cache.analyze(g, 1, disputed);
  EXPECT_NE(clean->omega.size(), tainted->omega.size());
  EXPECT_EQ(tainted->omega, omega_subgraphs(g, 1, disputed));
  EXPECT_EQ(tainted->uk, compute_uk(g, 1, disputed));
}

TEST(OmegaCache, NearIdenticalGraphsNeverAlias) {
  // Two graphs differing in a single capacity unit must never share an
  // entry, whatever their fingerprints do — the full-key compare is the
  // collision guard under test.
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  rng rand(99);
  for (int trial = 0; trial < 25; ++trial) {
    graph::digraph a = graph::erdos_renyi(6, 0.6, 1, 3, rand);
    graph::digraph b = a;
    const auto edges = b.edges();
    const graph::edge& e = edges[rand.below(edges.size())];
    b.remove_edge(e.from, e.to);
    if (e.cap > 1) b.add_edge(e.from, e.to, e.cap - 1);
    const dispute_record none;
    const auto ua = cache.analyze(a, 1, none)->uk;
    const auto ub = cache.analyze(b, 1, none)->uk;
    EXPECT_EQ(ua, compute_uk(a, 1, none)) << "trial " << trial;
    EXPECT_EQ(ub, compute_uk(b, 1, none)) << "trial " << trial;
  }
}

TEST(OmegaCache, ConnectivityThresholdMatchesExactConnectivity) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  rng rand(7);
  for (int trial = 0; trial < 20; ++trial) {
    const graph::digraph g = graph::erdos_renyi(7, 0.45, 1, 2, rand);
    const int exact = graph::global_vertex_connectivity(g);
    for (int k = 1; k <= exact + 1; ++k)
      EXPECT_EQ(cache.connectivity_at_least(g, k), exact >= k)
          << "trial " << trial << " k=" << k << " exact=" << exact;
  }
}

TEST(OmegaCache, ChannelRoutesMatchFreshBuild) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  rng rand(5);
  const graph::digraph g = graph::random_regular(8, 4, 1, 2, rand);
  if (graph::global_vertex_connectivity(g) >= 3) {
    const auto cached = cache.channel_routes_for(g, 1);
    EXPECT_EQ(*cached, bb::channel_plan::build_routes(g, 1));
    EXPECT_EQ(cache.channel_routes_for(g, 1).get(), cached.get());
  }
}

TEST(OmegaCache, ConcurrentLookupsAgree) {
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  const graph::digraph g = graph::hypercube(4, 2);
  const dispute_record none;
  const auto expected_uk = compute_uk(g, 1, none);
  std::vector<graph::capacity_t> uks(32, -1);
  runtime::parallel_for_each_index(8, uks.size(), [&](std::size_t i) {
    uks[i] = cache.analyze(g, 1, none)->uk;
  });
  for (graph::capacity_t uk : uks) EXPECT_EQ(uk, expected_uk);
  // Every lookup counts exactly once; single-flight elects one filling
  // thread per key, so exactly one lookup is a miss.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.analysis_hits + stats.analysis_misses, 32u);
  EXPECT_EQ(stats.analysis_misses, 1u);
}

TEST(OmegaCache, ConcurrentMissesAreSingleFlight) {
  // N threads miss the same plan key at once: the per-key in-flight latch
  // must elect exactly one filling thread. Everyone shares the one value,
  // exactly one fill span exists across all collectors, and the waiters
  // count as hits. (This test is part of the TSan concurrency gate.)
  omega_cache& cache = omega_cache::instance();
  cache.clear();
  const graph::digraph g = graph::hypercube(5, 2);
  constexpr int kThreads = 8;
  std::vector<obs::collector> collectors(kThreads);
  std::vector<std::shared_ptr<const phase1_plan>> plans(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&cache, &collectors, &plans, &g, t] {
      obs::scoped_collector ambient(&collectors[static_cast<std::size_t>(t)]);
      plans[static_cast<std::size_t>(t)] = cache.plan_for(g, 0);
    });
  for (std::thread& th : pool) th.join();

  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(plans[static_cast<std::size_t>(t)].get(), plans[0].get())
        << "thread " << t << " must adopt the leader's value";
  std::size_t fill_spans = 0;
  for (const obs::collector& c : collectors)
    for (const obs::span_record& s : c.spans())
      if (s.name == "omega_cache/fill_plan") ++fill_spans;
  EXPECT_EQ(fill_spans, 1u) << "exactly one thread may pay the fill";
  const auto stats = cache.stats();
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, static_cast<std::uint64_t>(kThreads - 1));
  // The planning counters are charged per lookup (hit or miss), so every
  // thread observed the same deterministic work numbers.
  for (const obs::collector& c : collectors) {
    EXPECT_EQ(c.value(obs::counter::plan_safety_checks),
              collectors[0].value(obs::counter::plan_safety_checks));
    EXPECT_GT(c.value(obs::counter::plan_safety_checks), 0u);
  }
}

TEST(OmegaCache, FillParallelismIsByteIdentical) {
  // Parallel per-sink / per-source fills write into preallocated slots, so
  // plans and route tables must be byte-identical for every worker count.
  omega_cache& cache = omega_cache::instance();
  const graph::digraph g = graph::hypercube(5, 2);  // 32 nodes: parallel fills on
  cache.clear();
  cache.set_fill_parallelism(1);
  const auto plan1 = cache.plan_for(g, 0);
  const auto routes1 = cache.channel_routes_for(g, 1);
  cache.clear();
  cache.set_fill_parallelism(4);
  const auto plan4 = cache.plan_for(g, 0);
  const auto routes4 = cache.channel_routes_for(g, 1);
  cache.set_fill_parallelism(1);

  EXPECT_EQ(plan1->gamma, plan4->gamma);
  ASSERT_EQ(plan1->trees.size(), plan4->trees.size());
  for (std::size_t t = 0; t < plan1->trees.size(); ++t)
    EXPECT_EQ(plan1->trees[t].edges, plan4->trees[t].edges);
  EXPECT_EQ(plan1->stats.safety_checks, plan4->stats.safety_checks);
  EXPECT_EQ(plan1->stats.flow_augmentations, plan4->stats.flow_augmentations);
  EXPECT_EQ(*routes1, *routes4);
}

}  // namespace
}  // namespace nab::core
