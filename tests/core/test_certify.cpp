#include "core/certify.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/linalg.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Certify, RandomMatricesCertifyOnPaperGraphs) {
  // Theorem 1: random coding matrices are correct with overwhelming
  // probability over GF(2^16).
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 1234);  // rho = U1/2 = 1
  const certification c = certify_coding(g, 1, dispute_record{}, cs);
  EXPECT_TRUE(c.ok);
  EXPECT_TRUE(c.failing.empty());
}

TEST(Certify, CompleteGraphHigherRho) {
  const graph::digraph g = graph::complete(7, 2);
  // U1 = min pairwise cut over 5-subsets = 4*4=16 -> rho = 8.
  const graph::capacity_t uk = compute_uk(g, 2, dispute_record{});
  const coding_scheme cs =
      coding_scheme::generate(g, static_cast<int>(compute_rho(uk)), 99);
  EXPECT_TRUE(certify_coding(g, 2, dispute_record{}, cs).ok);
}

TEST(Certify, OverlargeRhoFailsCertification) {
  // rho above U_k/2 violates Theorem 1's premise: C_H cannot reach full row
  // rank because some H has too little capacity. Use the paper's Fig 1(a)
  // with rho = 3 (U_1 = 2 means rho must be 1).
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 3, 5);
  const certification c = certify_coding(g, 1, dispute_record{}, cs);
  EXPECT_FALSE(c.ok);
  EXPECT_FALSE(c.failing.empty());
}

TEST(Certify, CheckMatrixShape) {
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 7);
  // H = {0,1,2}: edges inside are (0,1),(1,0),(0,2),(2,0),(1,2),(2,1), all
  // capacity 1 -> 6 columns; rows = (|H|-1)*rho = 2.
  const auto ch = build_check_matrix(g, {0, 1, 2}, cs);
  EXPECT_EQ(ch.rows(), 2u);
  EXPECT_EQ(ch.cols(), 6u);
}

TEST(Certify, CheckMatrixKernelIsExactlyEqualValues) {
  // D_H C_H = 0 iff all nodes in H hold equal values (the EC property, in
  // matrix form): for certified schemes the kernel must be trivial.
  const graph::digraph g = graph::complete(4);
  const coding_scheme cs = coding_scheme::generate(g, 2, 21);
  const std::vector<graph::node_id> h{0, 1, 2};
  auto ch = build_check_matrix(g, h, cs);
  EXPECT_EQ(gf::rank(ch), (h.size() - 1) * 2);
}

TEST(Certify, DisputesShrinkOmegaAndCertificationFollows) {
  const graph::digraph g = graph::paper_fig1b();
  dispute_record r;
  r.add_dispute(1, 2);
  const coding_scheme cs = coding_scheme::generate(g, 1, 31);
  EXPECT_TRUE(certify_coding(g, 1, r, cs).ok);
}

TEST(Certify, Theorem1BoundValues) {
  // n=4, f=1, rho=1: C(4,3)*(4-1-1)*1 = 8 bad events; field 2^16.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(4, 1, 1, 16), 8.0 / 65536.0);
  // Tiny fields clamp to 1.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(10, 3, 8, 2), 1.0);
  // f = 0: single subgraph.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(4, 0, 2, 16), 1.0 * 3 * 2 / 65536.0);
}

TEST(Certify, RepeatedRandomSchemesVirtuallyAlwaysPass) {
  const graph::digraph g = graph::complete(5);
  rng seeds(2);
  int pass = 0;
  for (int i = 0; i < 20; ++i) {
    const coding_scheme cs = coding_scheme::generate(g, 2, seeds.next_u64());
    if (certify_coding(g, 1, dispute_record{}, cs).ok) ++pass;
  }
  EXPECT_EQ(pass, 20);
}

TEST(CertifyBatched, AgreesWithNaiveOnRegistryClassTopologies) {
  // The batched certifier must produce the identical verdict AND the
  // identical failing-subgraph list (same enumeration order) as the
  // independent per-H eliminations, on both dense and sparse topologies.
  rng rand(31);
  std::vector<std::pair<graph::digraph, int>> cases;
  cases.emplace_back(graph::complete(7, 2), 1);
  cases.emplace_back(graph::complete(7, 1), 2);
  cases.emplace_back(graph::hypercube(3, 2), 1);
  cases.emplace_back(graph::clustered_wan(3, 3, 4, 1), 1);
  cases.emplace_back(graph::paper_fig1a(), 1);
  cases.emplace_back(graph::random_regular(8, 4, 1, 3, rand), 1);
  for (const auto& [g, f] : cases) {
    const graph::capacity_t uk = compute_uk(g, f, dispute_record{});
    for (int rho : {static_cast<int>(compute_rho(uk)),
                    static_cast<int>(compute_rho(uk)) + 4}) {
      const coding_scheme cs = coding_scheme::generate(g, rho, 0xabc);
      const certification naive = certify_coding(g, f, dispute_record{}, cs);
      const certification batched = certify_coding_batched(g, f, dispute_record{}, cs);
      EXPECT_EQ(naive.ok, batched.ok) << "n=" << g.universe() << " rho=" << rho;
      EXPECT_EQ(naive.failing, batched.failing)
          << "n=" << g.universe() << " rho=" << rho;
    }
  }
}

TEST(CertifyBatched, AgreesWithNaiveUnderDisputes) {
  rng rand(57);
  for (int trial = 0; trial < 40; ++trial) {
    graph::digraph g = graph::erdos_renyi(6 + static_cast<int>(rand.below(3)), 0.5,
                                          1, 3, rand);
    dispute_record disputes;
    const auto nodes = g.active_nodes();
    const graph::node_id a = nodes[rand.below(nodes.size())];
    const graph::node_id b = nodes[rand.below(nodes.size())];
    if (a != b) {
      disputes.add_dispute(a, b);
      g.remove_edge_pair(a, b);
    }
    const int f = 1 + static_cast<int>(rand.below(2));
    if (g.universe() < 3 * f + 1) continue;
    const auto uk = compute_uk(g, f, disputes);
    const coding_scheme cs =
        coding_scheme::generate(g, static_cast<int>(compute_rho(uk)) + 2, trial);
    const certification naive = certify_coding(g, f, disputes, cs);
    const certification batched = certify_coding_batched(g, f, disputes, cs);
    EXPECT_EQ(naive.ok, batched.ok) << "trial " << trial;
    EXPECT_EQ(naive.failing, batched.failing) << "trial " << trial;
  }
}

TEST(CertifyBatched, LeaveOneOutAgreesWithNaiveWithInactiveNodesAndDisputes) {
  // The leave-one-out shape (active == target + 1) is reached both by f = 1
  // on a fully active graph and by larger f after convictions shrank the
  // active set. Verdicts, failing lists, AND their order must match the
  // naive certifier in every combination of disputes / inactive nodes /
  // over-large rho.
  rng rand(91);
  for (int trial = 0; trial < 30; ++trial) {
    graph::digraph g =
        graph::erdos_renyi(7 + static_cast<int>(rand.below(2)), 0.6, 1, 2, rand);
    int f = 1;
    if (trial % 3 == 1) {
      // Convict one node: active = n - 1 == (n - 2) + 1, the f = 2 shape.
      g.remove_node(g.active_nodes()[rand.below(g.active_nodes().size())]);
      f = 2;
    }
    dispute_record disputes;
    if (trial % 2 == 1) {
      const auto nodes = g.active_nodes();
      const graph::node_id a = nodes[rand.below(nodes.size())];
      const graph::node_id b = nodes[rand.below(nodes.size())];
      if (a != b) {
        disputes.add_dispute(a, b);
        g.remove_edge_pair(a, b);
      }
    }
    const auto uk = compute_uk(g, f, disputes);
    if (uk < 2) continue;
    const int rho = static_cast<int>(compute_rho(uk)) + (trial % 5 == 0 ? 4 : 0);
    const coding_scheme cs = coding_scheme::generate(g, rho, 1000 + trial);
    obs::collector col;
    certification naive, batched;
    {
      obs::scoped_collector scope(&col);
      naive = certify_coding(g, f, disputes, cs);
      batched = certify_coding_batched(g, f, disputes, cs);
    }
    ASSERT_EQ(g.active_count(), g.universe() - f + 1);  // the LOO shape
    EXPECT_EQ(naive.ok, batched.ok) << "trial " << trial;
    EXPECT_EQ(naive.failing, batched.failing) << "trial " << trial;
    // One downdate per Omega_k member, and the member count is what the
    // naive path certified.
    EXPECT_EQ(col.value(obs::counter::cert_loo_downdates),
              col.value(obs::counter::cert_subgraphs) / 2)
        << "trial " << trial;
  }
}

TEST(CertifyBatched, LeaveOneOutDisjointDisputesEmptyOmegaShortCircuits) {
  // Two disjoint disputed pairs leave no leave-one-out member (no single
  // node covers both pairs): Omega_k is empty, certification is vacuously
  // ok, and the downdate path must notice BEFORE paying for an elimination.
  const graph::digraph g = graph::complete(6);
  dispute_record disputes;
  disputes.add_dispute(0, 1);
  disputes.add_dispute(2, 3);
  const coding_scheme cs = coding_scheme::generate(g, 2, 17);
  EXPECT_TRUE(omega_subgraphs(g, 1, disputes).empty());
  obs::collector col;
  certification c;
  {
    obs::scoped_collector scope(&col);
    c = certify_coding_batched(g, 1, disputes, cs);
  }
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(col.value(obs::counter::cert_subgraphs), 0u);
  EXPECT_EQ(col.value(obs::counter::cert_loo_downdates), 0u);
  EXPECT_EQ(col.value(obs::counter::gf_rows_eliminated), 0u);
}

TEST(CertifyEstimate, TracksMeasuredWordsWithinBoundedFactorOnEveryDispatchPath) {
  // certify_cost_estimate models the same three-way dispatch
  // certify_coding_batched performs (leave-one-out / dense re-factorization /
  // sparse prefix walk), in the same unit the kernels count (GF words
  // presented to axpy/scale). The estimate gates certification in
  // core::session, so a model that drifts from the measured cost silently
  // mis-gates presets — this pins est/measured into [1/6, 6] across
  // topologies covering all three paths. The bound is deliberately loose
  // (the model ignores pivot clustering and early exits) but one-sided
  // drift by an order of magnitude, like the pre-fix 15x sparse
  // overestimate, fails it.
  struct probe_case {
    const char* name;
    graph::digraph g;
    int f;
    int extra_rho;
  };
  rng rand(31);
  std::vector<probe_case> cases;
  cases.push_back({"fig1a/f1", graph::paper_fig1a(), 1, 0});           // LOO
  cases.push_back({"fig1b/f1", graph::paper_fig1b(), 1, 0});           // LOO
  cases.push_back({"complete7cap2/f1", graph::complete(7, 2), 1, 0});  // LOO
  cases.push_back({"complete7cap2/f1/rho+4", graph::complete(7, 2), 1, 4});
  cases.push_back({"complete7/f2", graph::complete(7, 1), 2, 0});      // dense
  cases.push_back({"complete6/f2", graph::complete(6, 1), 2, 0});      // dense
  cases.push_back({"hypercube3/f1", graph::hypercube(3, 2), 1, 0});    // LOO
  cases.push_back({"hypercube4/f1", graph::hypercube(4, 1), 1, 0});    // LOO
  cases.push_back({"hypercube4/f2", graph::hypercube(4, 1), 2, 0});    // DFS
  cases.push_back({"wan3x3/f1", graph::clustered_wan(3, 3, 4, 1), 1, 0});
  cases.push_back({"wan4x4/f2", graph::clustered_wan(4, 4, 4, 1), 2, 0});  // DFS
  cases.push_back(
      {"regular8d4/f1", graph::random_regular(8, 4, 1, 3, rand), 1, 0});
  for (const probe_case& c : cases) {
    const dispute_record none;
    const graph::capacity_t uk = compute_uk(c.g, c.f, none);
    const int rho = static_cast<int>(compute_rho(uk)) + c.extra_rho;
    const auto omega = omega_subgraphs(c.g, c.f, none);
    ASSERT_FALSE(omega.empty()) << c.name;
    const coding_scheme cs = coding_scheme::generate(c.g, rho, 42);
    obs::collector col;
    {
      obs::scoped_collector scope(&col);
      certify_coding_batched(c.g, c.f, none, cs);
    }
    const std::uint64_t measured = col.value(obs::counter::gf_axpy_words) +
                                   col.value(obs::counter::gf_scale_words);
    const std::uint64_t est = certify_cost_estimate(c.g, omega, rho);
    ASSERT_GT(measured, 0u) << c.name;
    const double ratio = static_cast<double>(est) / static_cast<double>(measured);
    EXPECT_GE(ratio, 1.0 / 6.0) << c.name << " est=" << est << " meas=" << measured;
    EXPECT_LE(ratio, 6.0) << c.name << " est=" << est << " meas=" << measured;
  }
}

TEST(CertifyBatched, DetectsDisconnectedSubgraphs) {
  // A cut vertex makes some H in Omega_1 disconnected; its C_H cannot have
  // full row rank (nothing links the components), and both certifiers must
  // name exactly the same failing subgraphs.
  graph::digraph g(5);
  for (graph::node_id v : {0, 1}) {
    g.add_bidirectional(v, 2, 1);
    g.add_bidirectional(v, (v + 1) % 2, 1);
  }
  for (graph::node_id v : {3, 4}) {
    g.add_bidirectional(v, 2, 1);
    g.add_bidirectional(v, v == 3 ? 4 : 3, 1);
  }
  const coding_scheme cs = coding_scheme::generate(g, 1, 77);
  const certification naive = certify_coding(g, 1, dispute_record{}, cs);
  const certification batched = certify_coding_batched(g, 1, dispute_record{}, cs);
  EXPECT_FALSE(batched.ok);
  EXPECT_EQ(naive.ok, batched.ok);
  EXPECT_EQ(naive.failing, batched.failing);
}

}  // namespace
}  // namespace nab::core
