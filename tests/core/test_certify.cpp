#include "core/certify.hpp"

#include <gtest/gtest.h>

#include "gf/linalg.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Certify, RandomMatricesCertifyOnPaperGraphs) {
  // Theorem 1: random coding matrices are correct with overwhelming
  // probability over GF(2^16).
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 1234);  // rho = U1/2 = 1
  const certification c = certify_coding(g, 1, dispute_record{}, cs);
  EXPECT_TRUE(c.ok);
  EXPECT_TRUE(c.failing.empty());
}

TEST(Certify, CompleteGraphHigherRho) {
  const graph::digraph g = graph::complete(7, 2);
  // U1 = min pairwise cut over 5-subsets = 4*4=16 -> rho = 8.
  const graph::capacity_t uk = compute_uk(g, 2, dispute_record{});
  const coding_scheme cs =
      coding_scheme::generate(g, static_cast<int>(compute_rho(uk)), 99);
  EXPECT_TRUE(certify_coding(g, 2, dispute_record{}, cs).ok);
}

TEST(Certify, OverlargeRhoFailsCertification) {
  // rho above U_k/2 violates Theorem 1's premise: C_H cannot reach full row
  // rank because some H has too little capacity. Use the paper's Fig 1(a)
  // with rho = 3 (U_1 = 2 means rho must be 1).
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 3, 5);
  const certification c = certify_coding(g, 1, dispute_record{}, cs);
  EXPECT_FALSE(c.ok);
  EXPECT_FALSE(c.failing.empty());
}

TEST(Certify, CheckMatrixShape) {
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 7);
  // H = {0,1,2}: edges inside are (0,1),(1,0),(0,2),(2,0),(1,2),(2,1), all
  // capacity 1 -> 6 columns; rows = (|H|-1)*rho = 2.
  const auto ch = build_check_matrix(g, {0, 1, 2}, cs);
  EXPECT_EQ(ch.rows(), 2u);
  EXPECT_EQ(ch.cols(), 6u);
}

TEST(Certify, CheckMatrixKernelIsExactlyEqualValues) {
  // D_H C_H = 0 iff all nodes in H hold equal values (the EC property, in
  // matrix form): for certified schemes the kernel must be trivial.
  const graph::digraph g = graph::complete(4);
  const coding_scheme cs = coding_scheme::generate(g, 2, 21);
  const std::vector<graph::node_id> h{0, 1, 2};
  auto ch = build_check_matrix(g, h, cs);
  EXPECT_EQ(gf::rank(ch), (h.size() - 1) * 2);
}

TEST(Certify, DisputesShrinkOmegaAndCertificationFollows) {
  const graph::digraph g = graph::paper_fig1b();
  dispute_record r;
  r.add_dispute(1, 2);
  const coding_scheme cs = coding_scheme::generate(g, 1, 31);
  EXPECT_TRUE(certify_coding(g, 1, r, cs).ok);
}

TEST(Certify, Theorem1BoundValues) {
  // n=4, f=1, rho=1: C(4,3)*(4-1-1)*1 = 8 bad events; field 2^16.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(4, 1, 1, 16), 8.0 / 65536.0);
  // Tiny fields clamp to 1.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(10, 3, 8, 2), 1.0);
  // f = 0: single subgraph.
  EXPECT_DOUBLE_EQ(theorem1_failure_bound(4, 0, 2, 16), 1.0 * 3 * 2 / 65536.0);
}

TEST(Certify, RepeatedRandomSchemesVirtuallyAlwaysPass) {
  const graph::digraph g = graph::complete(5);
  rng seeds(2);
  int pass = 0;
  for (int i = 0; i < 20; ++i) {
    const coding_scheme cs = coding_scheme::generate(g, 2, seeds.next_u64());
    if (certify_coding(g, 1, dispute_record{}, cs).ok) ++pass;
  }
  EXPECT_EQ(pass, 20);
}

}  // namespace
}  // namespace nab::core
