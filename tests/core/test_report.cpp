#include "core/report.hpp"

#include <gtest/gtest.h>

#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Report, InstanceLineMentionsKeyFacts) {
  instance_report r;
  r.index = 3;
  r.active_nodes = 5;
  r.gamma = 4;
  r.rho = 2;
  r.mismatch_announced = true;
  r.dispute_phase_run = true;
  r.new_disputes = {{1, 2}};
  r.newly_convicted = {2};
  const std::string line = format_instance(r);
  EXPECT_NE(line.find("#3"), std::string::npos);
  EXPECT_NE(line.find("gamma=4"), std::string::npos);
  EXPECT_NE(line.find("MISMATCH"), std::string::npos);
  EXPECT_NE(line.find("{1,2}"), std::string::npos);
  EXPECT_NE(line.find("convicted=2"), std::string::npos);
}

TEST(Report, TsvHasHeaderAndOneRowPerInstance) {
  session s({.g = graph::complete(4), .f = 1}, sim::fault_set(4));
  rng rand(1);
  const auto reports = s.run_many(3, 8, rand);
  const std::string tsv = to_tsv(reports);
  int newlines = 0;
  for (char c : tsv) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 4);  // header + 3 rows
  EXPECT_EQ(tsv.rfind("index\t", 0), 0u);
}

TEST(Report, SessionSummaryTracksEvidence) {
  sim::fault_set faults(4, {1});
  phase1_corruptor adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(2);
  s.run_many(2, 8, rand);
  const std::string summary = format_session_summary(s);
  EXPECT_NE(summary.find("instances=2"), std::string::npos);
  EXPECT_NE(summary.find("convicted: 1"), std::string::npos);
}

TEST(Report, BoundsFormatting) {
  const auto b = compute_bounds(graph::complete(4), 0, 1);
  const std::string line = format_bounds(b);
  EXPECT_NE(line.find("gamma*="), std::string::npos);
  EXPECT_NE(line.find("T_NAB>="), std::string::npos);
}

}  // namespace
}  // namespace nab::core
