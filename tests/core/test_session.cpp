#include "core/session.hpp"

#include <gtest/gtest.h>

#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

std::vector<word> random_words(std::size_t n, rng& rand) {
  std::vector<word> out(n);
  for (auto& w : out) w = static_cast<word>(rand.below(65536));
  return out;
}

/// Asserts the invariants that must hold after ANY legal run: per-instance
/// agreement & validity, dispute soundness (every pair touches a corrupt
/// node), conviction soundness (never convict honest), and the paper's
/// f(f+1) bound on dispute-control executions.
void check_session_invariants(const session& s, const sim::fault_set& faults, int f,
                              const std::vector<instance_report>& reports) {
  for (const auto& r : reports) {
    EXPECT_TRUE(r.agreement) << "instance " << r.index;
    EXPECT_TRUE(r.validity) << "instance " << r.index;
  }
  for (const auto& [a, b] : s.disputes().pairs())
    EXPECT_TRUE(faults.is_corrupt(a) || faults.is_corrupt(b))
        << "dispute between two honest nodes " << a << "," << b;
  for (graph::node_id v : s.disputes().convicted())
    EXPECT_TRUE(faults.is_corrupt(v)) << "honest node " << v << " convicted";
  EXPECT_LE(s.stats().dispute_phases, f * (f + 1));
}

TEST(Session, RejectsBadParameters) {
  sim::fault_set none(4);
  EXPECT_THROW(session({.g = graph::complete(3), .f = 1}, sim::fault_set(3)),
               nab::error);  // n < 3f+1
  EXPECT_THROW(session({.g = graph::ring(7), .f = 2}, sim::fault_set(7)),
               nab::error);  // connectivity 2 < 2f+1
}

TEST(Session, FaultFreeSingleInstance) {
  // Note: the paper's Fig 1(a) has connectivity 2 < 2f+1 and therefore
  // cannot support BB with f=1 at all (it only illustrates Omega/U_k);
  // session tests use K4, the smallest f=1-feasible network.
  session s({.g = graph::complete(4), .f = 1}, sim::fault_set(4));
  rng rand(1);
  const auto input = random_words(12, rand);
  const auto r = s.run_instance(input);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_FALSE(r.mismatch_announced);
  EXPECT_FALSE(r.dispute_phase_run);
  EXPECT_EQ(r.gamma, 3);  // K4 unit links: mincut 3
  EXPECT_EQ(r.uk, 4);     // triangles with weight-2 edges
  EXPECT_EQ(r.rho, 2);
  for (graph::node_id v = 0; v < 4; ++v)
    EXPECT_EQ(r.outputs[static_cast<std::size_t>(v)], input);
}

TEST(Session, FaultFreePhaseTimesMatchTheory) {
  // L = 12*16 = 192 bits; gamma=3 -> Phase 1 = 64; rho=2 -> EC = 96.
  session s({.g = graph::complete(4), .f = 1}, sim::fault_set(4));
  rng rand(2);
  const auto r = s.run_instance(random_words(12, rand));
  EXPECT_DOUBLE_EQ(r.time_phase1, 64.0);
  EXPECT_DOUBLE_EQ(r.time_equality_check, 96.0);
  EXPECT_GT(r.time_flags, 0.0);       // constant in L
  EXPECT_DOUBLE_EQ(r.time_phase3, 0.0);
}

TEST(Session, CorruptRelayIsCaughtAndNeutralized) {
  sim::fault_set faults(4, {1});
  phase1_corruptor adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(3);
  const auto reports = s.run_many(6, 8, rand);
  check_session_invariants(s, faults, 1, reports);
  EXPECT_TRUE(reports[0].dispute_phase_run);  // first attack must trigger Phase 3
  // The attacker either got convicted or lost the edges it lied on.
  const bool neutralized = s.disputes().is_convicted(1) ||
                           !s.current_graph().is_active(1) ||
                           !s.disputes().pairs().empty();
  EXPECT_TRUE(neutralized);
}

TEST(Session, DishonestRelayConvictedByReplay) {
  // A relay that forwards garbage and then truthfully claims what it did is
  // convicted by DC3 (claims inconsistent with prescribed behavior).
  sim::fault_set faults(4, {2});
  phase1_corruptor adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(4);
  const auto r1 = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r1.dispute_phase_run);
  EXPECT_TRUE(s.disputes().is_convicted(2));
  EXPECT_FALSE(s.current_graph().is_active(2));

  // With f=1 node excluded, the special case kicks in: Phase 1 only.
  const auto r2 = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r2.phase1_only);
  EXPECT_TRUE(r2.agreement);
  EXPECT_TRUE(r2.validity);
  check_session_invariants(s, faults, 1, {r1, r2});
}

TEST(Session, EquivocatingSourceStillReachesAgreement) {
  sim::fault_set faults(4, {0});
  equivocating_source adv({2, 3});
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(5);
  const auto reports = s.run_many(3, 8, rand);
  check_session_invariants(s, faults, 1, reports);
  EXPECT_TRUE(reports[0].mismatch_announced);
}

TEST(Session, ConvictedSourceLeadsToDefaultOutcomes) {
  sim::fault_set faults(4, {0});
  equivocating_source adv({1, 2, 3});  // lies to everyone differently enough
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(6);
  // Keep running until the source is convicted, then expect defaults.
  bool converged = false;
  for (int i = 0; i < 5 && !converged; ++i) {
    const auto r = s.run_instance(random_words(8, rand));
    EXPECT_TRUE(r.agreement);
    converged = r.default_outcome;
  }
  if (s.disputes().is_convicted(0)) {
    const auto r = s.run_instance(random_words(8, rand));
    EXPECT_TRUE(r.default_outcome);
    for (graph::node_id v = 1; v < 4; ++v)
      EXPECT_EQ(r.outputs[static_cast<std::size_t>(v)], std::vector<word>(8, 0));
  }
}

TEST(Session, Phase2LiarTriggersDisputes) {
  sim::fault_set faults(4, {3});
  phase2_liar adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(7);
  const auto reports = s.run_many(4, 8, rand);
  check_session_invariants(s, faults, 1, reports);
  EXPECT_TRUE(reports[0].mismatch_announced);
  EXPECT_TRUE(reports[0].dispute_phase_run);
}

TEST(Session, FalseFlaggerConvictsItself) {
  // Announcing MISMATCH when your own claims show none is a DC3 conviction.
  sim::fault_set faults(4, {2});
  false_flagger adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(8);
  const auto r = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r.mismatch_announced);
  EXPECT_TRUE(r.dispute_phase_run);
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_TRUE(s.disputes().is_convicted(2));
}

TEST(Session, StealthDisputerRespectsFf1Bound) {
  sim::fault_set faults(4, {1});
  stealth_disputer adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(9);
  const auto reports = s.run_many(8, 8, rand);
  check_session_invariants(s, faults, 1, reports);
  // Eventually the attacker runs out of unburned edges; later instances are
  // clean.
  EXPECT_FALSE(reports.back().dispute_phase_run);
  EXPECT_LE(s.stats().dispute_phases, 1 * 2);
}

TEST(Session, TwoColludersNeedMoreEvidence) {
  sim::fault_set faults(7, {2, 5});
  stealth_disputer adv;
  session s({.g = graph::complete(7), .f = 2}, faults, &adv);
  rng rand(10);
  const auto reports = s.run_many(8, 8, rand);
  check_session_invariants(s, faults, 2, reports);
  EXPECT_LE(s.stats().dispute_phases, 2 * 3);
}

TEST(Session, GraphOnlyShrinks) {
  sim::fault_set faults(4, {1});
  phase1_corruptor adv;
  session s({.g = graph::complete(4), .f = 1}, faults, &adv);
  rng rand(11);
  auto edge_count = s.current_graph().edges().size();
  auto node_count = s.current_graph().active_count();
  for (int i = 0; i < 5; ++i) {
    s.run_instance(random_words(4, rand));
    EXPECT_LE(s.current_graph().edges().size(), edge_count);
    EXPECT_LE(s.current_graph().active_count(), node_count);
    edge_count = s.current_graph().edges().size();
    node_count = s.current_graph().active_count();
  }
}

TEST(Session, ThroughputApproachesCleanRate) {
  // With no faults, throughput = L / (L/gamma + L/rho + flags). As L grows
  // the flag term vanishes: throughput -> gamma*rho/(gamma+rho) = 6/5 on K4.
  session s({.g = graph::complete(4), .f = 1}, sim::fault_set(4));
  rng rand(12);
  s.run_many(4, 4096, rand);  // L = 65536 bits
  const double tput = s.stats().throughput();
  const double ideal = 3.0 * 2.0 / (3.0 + 2.0);
  EXPECT_GT(tput, 0.9 * ideal);
  EXPECT_LE(tput, ideal + 1e-9);
}

TEST(Session, ReportsExposeRates) {
  session s({.g = graph::paper_fig2(), .f = 0}, sim::fault_set(4));
  EXPECT_EQ(s.next_gamma(), 2);
  EXPECT_GE(s.next_rho(), 1);
}

TEST(Session, FZeroRunsWithoutBBMachinery) {
  session s({.g = graph::paper_fig2(), .f = 0}, sim::fault_set(4));
  rng rand(13);
  const auto r = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(Session, PhaseKingFlagsEngineWorks) {
  // Same contract through the polynomial flag engine (K5 > 4f with f=1),
  // including under an attack that forces dispute control.
  sim::fault_set faults(5, {2});
  phase1_corruptor adv;
  session_config cfg{.g = graph::complete(5, 2), .f = 1};
  cfg.flag_protocol = bb::bb_protocol::phase_king;
  session s(cfg, faults, &adv);
  rng rand(21);
  const auto reports = s.run_many(4, 8, rand);
  check_session_invariants(s, faults, 1, reports);
  EXPECT_TRUE(reports[0].mismatch_announced);
}

TEST(Session, AutoFlagEngineSelectsByGroupSize) {
  // n=4 with f=1 is <= 4f: auto must pick EIG and still work.
  session_config cfg{.g = graph::complete(4), .f = 1};
  cfg.flag_protocol = bb::bb_protocol::auto_select;
  session s(cfg, sim::fault_set(4));
  rng rand(22);
  const auto r = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);

  session_config cfg5{.g = graph::complete(5), .f = 1};
  cfg5.flag_protocol = bb::bb_protocol::auto_select;
  session s5(cfg5, sim::fault_set(5));
  const auto r5 = s5.run_instance(random_words(8, rand));
  EXPECT_TRUE(r5.agreement);
  EXPECT_TRUE(r5.validity);
}

TEST(Session, RotatingSourcesShareEvidence) {
  // Every replica broadcasts in turn; the Byzantine one attacks as a relay
  // AND as a source. Dispute evidence accumulates across all of them.
  sim::fault_set faults(5, {2});
  phase1_corruptor adv;
  session s({.g = graph::complete(5, 2), .f = 1}, faults, &adv);
  rng rand(31);
  const auto reports = s.run_many(10, 8, rand, /*rotate_sources=*/true);
  check_session_invariants(s, faults, 1, reports);
  // The rotation reached multiple distinct gammas is not guaranteed, but
  // every instance must have completed from *some* source, including the
  // corrupt one (default outcome after conviction).
  EXPECT_EQ(static_cast<int>(reports.size()), 10);
}

TEST(Session, RotatingSourceValidityPerBroadcaster) {
  // Fault-free rotation: every node's broadcast must be delivered verbatim.
  session s({.g = graph::complete(4), .f = 1}, sim::fault_set(4));
  rng rand(32);
  for (graph::node_id src = 0; src < 4; ++src) {
    const auto input = random_words(6, rand);
    const auto r = s.run_instance(input, src);
    EXPECT_TRUE(r.agreement) << "source " << src;
    EXPECT_TRUE(r.validity) << "source " << src;
    for (graph::node_id v = 0; v < 4; ++v)
      EXPECT_EQ(r.outputs[static_cast<std::size_t>(v)], input) << "source " << src;
  }
}

TEST(Session, ConvictedRotatingSourceGetsDefaultOutcome) {
  sim::fault_set faults(5, {2});
  false_flagger adv;  // gets node 2 convicted on its first flag
  session s({.g = graph::complete(5, 2), .f = 1}, faults, &adv);
  rng rand(33);
  s.run_instance(random_words(4, rand), 0);  // conviction happens here
  ASSERT_TRUE(s.disputes().is_convicted(2));
  const auto r = s.run_instance(random_words(4, rand), 2);  // convicted broadcasts
  EXPECT_TRUE(r.default_outcome);
  EXPECT_TRUE(r.agreement);
}

TEST(Session, CertifyCostCeilingSkipsButStillWorks) {
  // Fat capacities push rho into the hundreds; the exact Theorem-1 rank
  // check would take seconds, so the session must skip it (trusting the
  // theorem) and still deliver correct instances.
  session_config cfg{.g = graph::complete_with_weak_link(5, 64), .f = 1};
  cfg.certify_cost_limit = 1;  // force the skip
  session s(cfg, sim::fault_set(5));
  rng rand(41);
  const auto r = s.run_instance(random_words(64, rand));
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
  EXPECT_GT(r.rho, 10);  // sanity: this really is the high-rho regime
}

TEST(Session, CertifyDisabledEntirely) {
  session_config cfg{.g = graph::complete(4), .f = 1};
  cfg.certify = false;
  session s(cfg, sim::fault_set(4));
  rng rand(42);
  const auto r = s.run_instance(random_words(8, rand));
  EXPECT_TRUE(r.agreement);
  EXPECT_TRUE(r.validity);
}

TEST(Session, HighCapacityThroughputScalesWithC) {
  // The E6 mechanism at unit-test scale: throughput grows with the uniform
  // capacity c (gamma and rho scale linearly in c).
  double prev = 0;
  for (graph::capacity_t c : {1, 4, 16}) {
    session s({.g = graph::complete(5, c), .f = 1}, sim::fault_set(5));
    rng rand(43);
    s.run_many(2, 512, rand);
    EXPECT_GT(s.stats().throughput(), prev);
    prev = s.stats().throughput();
  }
}

TEST(Session, FlagEnginesAgreeOnOutcomes) {
  // Both engines must produce identical instance outcomes on the same
  // deterministic run (only timing differs).
  for (const auto engine : {bb::bb_protocol::eig, bb::bb_protocol::phase_king}) {
    sim::fault_set faults(5, {1});
    phase2_liar adv(5);
    session_config cfg{.g = graph::complete(5, 2), .f = 1};
    cfg.flag_protocol = engine;
    session s(cfg, faults, &adv);
    rng rand(23);
    const auto reports = s.run_many(3, 8, rand);
    for (const auto& r : reports) {
      EXPECT_TRUE(r.agreement);
      EXPECT_TRUE(r.validity);
    }
    EXPECT_TRUE(reports[0].mismatch_announced);
  }
}

}  // namespace
}  // namespace nab::core
