#include "core/dispute.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace nab::core {
namespace {

using pair_set = std::set<std::pair<graph::node_id, graph::node_id>>;

TEST(ExplainingSets, EmptyDisputesConvictNobody) {
  EXPECT_TRUE(explaining_intersection({}, 1).empty());
}

TEST(ExplainingSets, SinglePairIsAmbiguous) {
  // {1,2} in dispute: either of them explains it; intersection empty.
  EXPECT_TRUE(explaining_intersection({{1, 2}}, 1).empty());
}

TEST(ExplainingSets, StarForcesTheCenter) {
  // Node 3 disputes with f+1 = 2 distinct nodes: with f=1 only {3} covers.
  const pair_set pairs{{1, 3}, {2, 3}};
  const auto forced = explaining_intersection(pairs, 1);
  EXPECT_EQ(forced, (std::vector<graph::node_id>{3}));
}

TEST(ExplainingSets, FTwoStarNeedsThreeArms) {
  // With f=2, two arms can be explained by the two leaves; three arms
  // cannot.
  EXPECT_TRUE(explaining_intersection({{1, 5}, {2, 5}}, 2).empty());
  EXPECT_EQ(explaining_intersection({{1, 5}, {2, 5}, {3, 5}}, 2),
            (std::vector<graph::node_id>{5}));
}

TEST(ExplainingSets, DisjointPairsConsumeBudget) {
  // Two disjoint pairs with f=2: four minimal covers, intersection empty.
  EXPECT_TRUE(explaining_intersection({{0, 1}, {2, 3}}, 2).empty());
  // But with f=2 and a star on 4 plus a disjoint pair, the star center is
  // forced: covering {0,1} takes one node, leaving one for the 2-arm star.
  EXPECT_EQ(explaining_intersection({{0, 1}, {2, 4}, {3, 4}}, 2),
            (std::vector<graph::node_id>{4}));
}

TEST(ExplainingSets, UncoverableThrows) {
  // Three disjoint pairs cannot be covered by f=2 nodes.
  EXPECT_THROW(explaining_intersection({{0, 1}, {2, 3}, {4, 5}}, 2), nab::error);
}

TEST(ExplainingSets, TriangleWithBudgetTwo) {
  // Dispute triangle {a,b},{b,c},{a,c}: any two of the three nodes cover;
  // intersection empty.
  EXPECT_TRUE(explaining_intersection({{0, 1}, {1, 2}, {0, 2}}, 2).empty());
  // Budget 1 cannot cover a triangle.
  EXPECT_THROW(explaining_intersection({{0, 1}, {1, 2}, {0, 2}}, 1), nab::error);
}

TEST(ExplainingSets, FThreeStarNeedsFourArms) {
  // With f = 3, three arms can be explained by the three leaves; a fourth
  // arm forces the center into every explaining set.
  EXPECT_TRUE(explaining_intersection({{1, 9}, {2, 9}, {3, 9}}, 3).empty());
  EXPECT_EQ(explaining_intersection({{1, 9}, {2, 9}, {3, 9}, {4, 9}}, 3),
            (std::vector<graph::node_id>{9}));
}

TEST(ExplainingSets, FThreeCompositeBudgetForcesBothCenters) {
  // Two disjoint pairs consume two budget slots, leaving one for a 2-arm
  // star — its center is forced.
  EXPECT_EQ(explaining_intersection({{0, 1}, {2, 3}, {4, 8}, {5, 8}}, 3),
            (std::vector<graph::node_id>{8}));
  // Two 2-arm stars plus a disjoint pair: both centers forced at once (each
  // star needs one slot, the pair takes the third).
  const auto forced =
      explaining_intersection({{0, 1}, {2, 7}, {3, 7}, {4, 8}, {5, 8}}, 3);
  EXPECT_EQ(forced, (std::vector<graph::node_id>{7, 8}));
}

TEST(ExplainingSets, FThreeUncoverableThrows) {
  // Four disjoint pairs cannot be covered by f = 3 nodes.
  EXPECT_THROW(explaining_intersection({{0, 1}, {2, 3}, {4, 5}, {6, 7}}, 3),
               nab::error);
}

}  // namespace
}  // namespace nab::core
