#include "core/coding.hpp"

#include <gtest/gtest.h>

#include "gf/gf2_16.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(Coding, GenerationCoversEveryEdgeWithRightShape) {
  const graph::digraph g = graph::paper_fig2();
  const coding_scheme cs = coding_scheme::generate(g, 3, 42);
  for (const graph::edge& e : g.edges()) {
    ASSERT_TRUE(cs.has_matrix(e.from, e.to));
    const auto& m = cs.matrix_for(e.from, e.to);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), static_cast<std::size_t>(e.cap));
  }
  EXPECT_FALSE(cs.has_matrix(3, 0));
}

TEST(Coding, DeterministicInSeed) {
  const graph::digraph g = graph::complete(4, 2);
  const coding_scheme a = coding_scheme::generate(g, 2, 7);
  const coding_scheme b = coding_scheme::generate(g, 2, 7);
  const coding_scheme c = coding_scheme::generate(g, 2, 8);
  rng rand(1);
  const value_vector x = value_vector::random(2, 3, rand);
  EXPECT_EQ(a.encode(x, 0, 1), b.encode(x, 0, 1));
  EXPECT_FALSE(a.encode(x, 0, 1) == c.encode(x, 0, 1));
}

TEST(Coding, EncodeIsLinearPerSlice) {
  const graph::digraph g = graph::complete(3, 3);
  const coding_scheme cs = coding_scheme::generate(g, 4, 11);
  rng rand(2);
  const value_vector x = value_vector::random(4, 2, rand);
  const value_vector y = value_vector::random(4, 2, rand);
  value_vector sum(4, 2);
  for (int s = 0; s < 4; ++s)
    for (int t = 0; t < 2; ++t)
      sum.set_symbol(s, t, gf::gf2_16::add(x.symbol(s, t), y.symbol(s, t)));
  const coded_symbols ex = cs.encode(x, 0, 1);
  const coded_symbols ey = cs.encode(y, 0, 1);
  const coded_symbols esum = cs.encode(sum, 0, 1);
  ASSERT_EQ(ex.words.size(), esum.words.size());
  for (std::size_t i = 0; i < ex.words.size(); ++i)
    EXPECT_EQ(esum.words[i], gf::gf2_16::add(ex.words[i], ey.words[i]));
}

TEST(Coding, CheckAcceptsOwnEncoding) {
  const graph::digraph g = graph::complete(4);
  const coding_scheme cs = coding_scheme::generate(g, 2, 3);
  rng rand(3);
  for (int trial = 0; trial < 10; ++trial) {
    const value_vector x = value_vector::random(2, 4, rand);
    EXPECT_TRUE(cs.check(x, 0, 1, cs.encode(x, 0, 1)));
  }
}

TEST(Coding, CheckRejectsDifferentValueWithHighProbability) {
  // A mismatching pair passes only if (X - X') C_e = 0; for random C_e over
  // GF(2^16) that's ~2^-16 per coded symbol. 200 trials must all detect.
  const graph::digraph g = graph::complete(4);
  const coding_scheme cs = coding_scheme::generate(g, 2, 5);
  rng rand(4);
  for (int trial = 0; trial < 200; ++trial) {
    const value_vector x = value_vector::random(2, 4, rand);
    value_vector y = x;
    y.set_symbol(static_cast<int>(rand.below(2)), static_cast<int>(rand.below(4)),
                 static_cast<word>(y.symbol(0, 0) ^ (1 + rand.below(65535))));
    EXPECT_FALSE(cs.check(y, 0, 1, cs.encode(x, 0, 1))) << "trial " << trial;
  }
}

TEST(Coding, CodedSymbolsPackRoundTrip) {
  rng rand(6);
  coded_symbols c;
  c.count = 3;
  c.slices = 5;
  for (int i = 0; i < 15; ++i) c.words.push_back(static_cast<word>(rand.below(65536)));
  EXPECT_EQ(coded_symbols::unpack(3, 5, c.pack()), c);
  EXPECT_EQ(c.bits(), 240u);
}

TEST(Coding, WireSizeMatchesPaperFormula) {
  // Edge of capacity z_e carries z_e symbols of L/rho bits: bits() must be
  // z_e * slices * 16 = z_e * (L / rho).
  const graph::digraph g = graph::paper_fig2();  // (0,1) has capacity 2
  const int rho = 2, slices = 8;                 // L = rho*slices*16 = 256 bits
  const coding_scheme cs = coding_scheme::generate(g, rho, 1);
  rng rand(7);
  const value_vector x = value_vector::random(rho, slices, rand);
  EXPECT_EQ(cs.encode(x, 0, 1).bits(), 2u * (x.bits() / rho));
}

}  // namespace
}  // namespace nab::core
