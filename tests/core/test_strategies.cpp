#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nab::core {
namespace {

TEST(Strategies, CorruptorFlipsEveryWord) {
  phase1_corruptor adv;
  const chunk honest{1, 2, 3};
  const chunk out = adv.phase1_forward_chunk(0, 1, 2, honest);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], static_cast<word>(~honest[i]));
}

TEST(Strategies, TargetedCorruptorSparesOthers) {
  phase1_corruptor adv(/*only_to=*/3);
  const chunk honest{7, 8};
  EXPECT_EQ(adv.phase1_forward_chunk(0, 1, 2, honest), honest);
  EXPECT_NE(adv.phase1_forward_chunk(0, 1, 3, honest), honest);
  EXPECT_EQ(adv.phase1_source_chunk(0, 2, honest), honest);
  EXPECT_NE(adv.phase1_source_chunk(0, 3, honest), honest);
}

TEST(Strategies, CorruptorNeverReturnsEmpty) {
  phase1_corruptor adv;
  EXPECT_FALSE(adv.phase1_forward_chunk(0, 1, 2, {}).empty());
}

TEST(Strategies, EquivocatorSplitsByMinority) {
  equivocating_source adv({2, 4});
  const chunk honest{5};
  EXPECT_EQ(adv.phase1_source_chunk(0, 1, honest), honest);
  EXPECT_NE(adv.phase1_source_chunk(0, 2, honest), honest);
  EXPECT_EQ(adv.phase1_source_chunk(0, 3, honest), honest);
  EXPECT_NE(adv.phase1_source_chunk(0, 4, honest), honest);
}

TEST(Strategies, Phase2LiarKeepsWireShape) {
  phase2_liar adv(3);
  coded_symbols honest;
  honest.count = 2;
  honest.slices = 3;
  honest.words = {1, 2, 3, 4, 5, 6};
  const coded_symbols out = adv.phase2_coded(0, 1, honest);
  EXPECT_EQ(out.count, honest.count);
  EXPECT_EQ(out.slices, honest.slices);
  EXPECT_EQ(out.words.size(), honest.words.size());
  EXPECT_NE(out.words, honest.words);
}

TEST(Strategies, ClaimForgerOnlyTouchesVictimEntries) {
  claim_forger adv(/*victim=*/1);
  node_claims honest;
  honest.p1_received[{0, 1, 2}] = {10, 20};  // from victim 1
  honest.p1_received[{0, 3, 2}] = {30, 40};  // from node 3
  honest.p2_received[{1, 2}] = {1, 1, {5}};
  honest.p2_received[{3, 2}] = {1, 1, {6}};
  const node_claims out = adv.phase3_claims(2, honest);
  EXPECT_NE(out.p1_received.at({0, 1, 2}), honest.p1_received.at({0, 1, 2}));
  EXPECT_EQ(out.p1_received.at({0, 3, 2}), honest.p1_received.at({0, 3, 2}));
  EXPECT_NE(out.p2_received.at({1, 2}), honest.p2_received.at({1, 2}));
  EXPECT_EQ(out.p2_received.at({3, 2}), honest.p2_received.at({3, 2}));
}

TEST(Strategies, CompositeRoutesPerNode) {
  phase1_corruptor garble;
  phase2_liar lie(9);
  composite_adversary combo;
  combo.assign(1, &garble);
  combo.assign(2, &lie);

  const chunk honest{3};
  EXPECT_NE(combo.phase1_forward_chunk(0, 1, 3, honest), honest);  // delegate 1
  EXPECT_EQ(combo.phase1_forward_chunk(0, 2, 3, honest), honest);  // liar ignores p1
  EXPECT_EQ(combo.phase1_forward_chunk(0, 4, 3, honest), honest);  // unassigned

  coded_symbols cs;
  cs.count = 1;
  cs.slices = 1;
  cs.words = {11};
  EXPECT_EQ(combo.phase2_coded(1, 3, cs), cs);  // corruptor ignores p2
  EXPECT_NE(combo.phase2_coded(2, 3, cs), cs);  // liar garbles
}

TEST(Strategies, CompositeSourceRouting) {
  equivocating_source src({2});
  composite_adversary combo;
  combo.set_source(0);
  combo.assign(0, &src);
  const chunk honest{1};
  EXPECT_NE(combo.phase1_source_chunk(0, 2, honest), honest);
  EXPECT_EQ(combo.phase1_source_chunk(0, 1, honest), honest);
}

TEST(Strategies, ChaosIsSeedDeterministic) {
  const chunk honest{1, 2, 3, 4};
  chaos_adversary a(42, 1.0), b(42, 1.0);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.phase1_forward_chunk(0, 1, 2, honest),
              b.phase1_forward_chunk(0, 1, 2, honest));
}

TEST(Strategies, ChaosProbabilityZeroIsHonest) {
  chaos_adversary adv(7, 0.0);
  const chunk honest{9, 9};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(adv.phase1_forward_chunk(0, 1, 2, honest), honest);
    EXPECT_EQ(adv.phase2_flag(1, false), false);
  }
}

TEST(Strategies, StealthBurnsOneEdgePerInstance) {
  const graph::digraph g = graph::complete(4);
  stealth_disputer adv;
  coded_symbols honest;
  honest.count = 1;
  honest.slices = 1;
  honest.words = {100};

  adv.on_instance_begin(0, g);
  int lied = 0;
  for (graph::node_id v : g.out_neighbors(1))
    if (!(adv.phase2_coded(1, v, honest) == honest)) ++lied;
  EXPECT_EQ(lied, 1);

  // Next instance targets a different edge.
  adv.on_instance_begin(1, g);
  graph::node_id second_victim = -1;
  for (graph::node_id v : g.out_neighbors(1))
    if (!(adv.phase2_coded(1, v, honest) == honest)) second_victim = v;
  EXPECT_NE(second_victim, -1);
  EXPECT_NE(second_victim, 0);  // 0 was burned in instance 0 (first neighbor)
}

}  // namespace
}  // namespace nab::core
