// Direct dispute-control scenarios: build Phase-1/2 transcripts with
// controlled corruption and run Phase 3 in isolation, checking exactly what
// evidence each misbehavior yields (the DC2/DC3/DC4 case analysis of
// Appendix B).

#include <gtest/gtest.h>

#include "bb/channels.hpp"
#include "core/dispute.hpp"
#include "core/equality_check.hpp"
#include "core/phase1.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

/// Runs Phases 1-2 with the given adversary and then Phase 3, returning the
/// outcome. K5(cap 2), f=1, source 0.
struct scenario_result {
  dispute_outcome outcome;
  dispute_record record;
  std::vector<word> input;
};

scenario_result run_scenario(const std::vector<graph::node_id>& corrupt,
                             nab_adversary* adv,
                             bb::claim_backend backend = bb::claim_backend::eig) {
  const graph::digraph g = graph::complete(5, 2);
  sim::network net(g);
  sim::fault_set faults(5, corrupt);
  rng rand(17);

  scenario_result res;
  res.input.resize(8);
  for (auto& w : res.input) w = static_cast<word>(rand.below(65536));

  const auto gamma = graph::broadcast_mincut(g, 0);
  const auto trees = graph::pack_arborescences(g, 0, static_cast<int>(gamma));
  const auto uk = compute_uk(g, 1, res.record);
  const auto rho = compute_rho(uk);
  const auto coding = coding_scheme::generate(g, static_cast<int>(rho), 23);

  const auto p1 = run_phase1(net, g, faults, 0, res.input, trees, adv);
  std::vector<value_vector> values(5);
  for (graph::node_id v : g.active_nodes())
    values[static_cast<std::size_t>(v)] = value_vector::reshape(
        p1.received[static_cast<std::size_t>(v)], static_cast<int>(rho));
  const auto ec = run_equality_check(net, g, faults, coding, values, adv);

  instance_context ctx;
  ctx.source = 0;
  ctx.input = res.input;
  ctx.rho = static_cast<int>(rho);
  ctx.trees = trees;
  ctx.coding = &coding;
  ctx.truth.assign(5, node_claims{});
  ctx.agreed_flags.assign(5, false);
  for (graph::node_id v : g.active_nodes()) {
    node_claims merged = p1.truth[static_cast<std::size_t>(v)];
    merged.p2_sent = ec.truth[static_cast<std::size_t>(v)].p2_sent;
    merged.p2_received = ec.truth[static_cast<std::size_t>(v)].p2_received;
    ctx.truth[static_cast<std::size_t>(v)] = std::move(merged);
    bool flag = ec.flags[static_cast<std::size_t>(v)];
    if (faults.is_corrupt(v) && adv != nullptr) flag = adv->phase2_flag(v, flag);
    ctx.agreed_flags[static_cast<std::size_t>(v)] = flag;
  }

  bb::channel_plan channels(g, 1);
  res.outcome = run_dispute_control(net, channels, g, faults, 1, 1, ctx,
                                    res.record, adv, backend);
  return res;
}

TEST(DisputeScenario, SpuriousTriggerLeavesHonestNodesUntouched) {
  // The only misbehavior is node 3 crying MISMATCH: dispute control runs,
  // convicts exactly the false-flagger, finds no honest-honest disputes,
  // and agrees on the true input.
  false_flagger adv;
  const auto res = run_scenario({3}, &adv);
  EXPECT_EQ(res.outcome.newly_convicted, (std::vector<graph::node_id>{3}));
  for (const auto& [a, b] : res.outcome.new_disputes)
    EXPECT_TRUE(a == 3 || b == 3) << "honest pair {" << a << "," << b << "}";
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

TEST(DisputeScenario, TruthfulGarblerIsConvictedByReplay) {
  // Node 2 garbles Phase-1 forwards and then truthfully claims what it sent:
  // DC3 convicts it directly (sent != prescribed).
  phase1_corruptor adv;
  const auto res = run_scenario({2}, &adv);
  EXPECT_EQ(res.outcome.newly_convicted, (std::vector<graph::node_id>{2}));
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

TEST(DisputeScenario, LyingAboutSendsCreatesDisputeWithReceiver) {
  // Node 2 garbles but CLAIMS it forwarded correctly: now its claims are
  // self-consistent, and the mismatch surfaces as DC2 disputes with honest
  // receivers instead.
  class cover_up : public nab_adversary {
   public:
    chunk phase1_forward_chunk(int, graph::node_id, graph::node_id,
                               const chunk& honest) override {
      chunk out = honest;
      for (word& w : out) w = static_cast<word>(~w);
      return out;
    }
    node_claims phase3_claims(graph::node_id, const node_claims& honest) override {
      node_claims out = honest;
      // Claim the prescribed forward: replace each sent chunk with the chunk
      // received from the parent on the same tree.
      for (auto& [key, c] : out.p1_sent) {
        for (const auto& [rkey, rc] : out.p1_received)
          if (std::get<0>(rkey) == std::get<0>(key)) c = rc;
      }
      return out;
    }
  };
  cover_up adv;
  const auto res = run_scenario({2}, &adv);
  // Not convicted by replay this time — but every lied-to receiver disputes.
  bool disputed_with_honest = false;
  for (const auto& [a, b] : res.outcome.new_disputes)
    if (a == 2 || b == 2) disputed_with_honest = true;
  EXPECT_TRUE(disputed_with_honest);
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

TEST(DisputeScenario, FalseFlagAloneConvicts) {
  false_flagger adv;
  const auto res = run_scenario({3}, &adv);
  EXPECT_EQ(res.outcome.newly_convicted, (std::vector<graph::node_id>{3}));
}

TEST(DisputeScenario, MalformedClaimsConvict) {
  class garbage_claims : public nab_adversary {
   public:
    bool phase2_flag(graph::node_id, bool) override { return true; }
    node_claims phase3_claims(graph::node_id, const node_claims&) override {
      // Unparseable blob: violates the prescribed claim format.
      node_claims out;
      out.p1_sent[{0, 0, 1}] = chunk(1u << 21, 0);  // absurd chunk length
      return out;
    }
  };
  garbage_claims adv;
  const auto res = run_scenario({1}, &adv);
  EXPECT_EQ(res.outcome.newly_convicted, (std::vector<graph::node_id>{1}));
}

TEST(DisputeScenario, VerdictsAreBackendObliviousAndOnlyWireCostMoves) {
  // The same Phase-1/2 misbehavior must yield byte-identical Phase-3
  // evidence under every claim backend; the DC1 wire accounting is exactly
  // what is allowed to differ (the collapsed backend transfers each
  // transcript once per pair, the oracle once per EIG label relay).
  for (auto* adversary_case : {"garbler", "flagger"}) {
    const bool garbler = std::string(adversary_case) == "garbler";
    phase1_corruptor garble;
    false_flagger flag;
    nab_adversary* adv = garbler ? static_cast<nab_adversary*>(&garble)
                                 : static_cast<nab_adversary*>(&flag);
    const graph::node_id corrupt = garbler ? 2 : 3;

    const auto eig = run_scenario({corrupt}, adv, bb::claim_backend::eig);
    const auto col = run_scenario({corrupt}, adv, bb::claim_backend::collapsed);
    const auto pk = run_scenario({corrupt}, adv, bb::claim_backend::phase_king);
    for (const auto* other : {&col, &pk}) {
      EXPECT_EQ(eig.outcome.new_disputes, other->outcome.new_disputes)
          << adversary_case;
      EXPECT_EQ(eig.outcome.newly_convicted, other->outcome.newly_convicted)
          << adversary_case;
      EXPECT_EQ(eig.outcome.agreed_value, other->outcome.agreed_value)
          << adversary_case;
      EXPECT_EQ(eig.record.pairs(), other->record.pairs()) << adversary_case;
    }
    EXPECT_GT(eig.outcome.claim_bits, 0u) << adversary_case;
    EXPECT_GT(col.outcome.claim_bits, 0u) << adversary_case;
    EXPECT_EQ(col.outcome.claim_fallbacks, 0) << adversary_case;
    // K_5 sits below the asymptotic crossover, but the oracle must already
    // pay more than the collapsed path here.
    EXPECT_GT(eig.outcome.claim_bits, col.outcome.claim_bits) << adversary_case;
  }
}

TEST(DisputeScenario, EvidenceAccumulatesAcrossRuns) {
  // DC4 works on the cumulative record: a pre-existing dispute {1,2} plus a
  // new dispute {2,3} forces node 2 (star center) into every 1-cover.
  dispute_record record;
  record.add_dispute(1, 2);
  record.add_dispute(2, 3);
  const auto forced = explaining_intersection(record.pairs(), 1);
  EXPECT_EQ(forced, (std::vector<graph::node_id>{2}));
}

}  // namespace
}  // namespace nab::core
