#include "core/value.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace nab::core {
namespace {

TEST(ValueVector, ZeroShape) {
  value_vector v(3, 2);
  EXPECT_EQ(v.rho(), 3);
  EXPECT_EQ(v.slices(), 2);
  EXPECT_EQ(v.bits(), 96u);
  for (int s = 0; s < 3; ++s)
    for (int t = 0; t < 2; ++t) EXPECT_EQ(v.symbol(s, t), 0);
}

TEST(ValueVector, ReshapeLaysOutSymbolMajor) {
  const std::vector<word> ws{1, 2, 3, 4, 5, 6};
  const value_vector v = value_vector::reshape(ws, 3);
  EXPECT_EQ(v.slices(), 2);
  EXPECT_EQ(v.symbol(0, 0), 1);
  EXPECT_EQ(v.symbol(0, 1), 2);
  EXPECT_EQ(v.symbol(1, 0), 3);
  EXPECT_EQ(v.symbol(2, 1), 6);
}

TEST(ValueVector, ReshapePadsWithZeros) {
  const std::vector<word> ws{9, 8, 7};
  const value_vector v = value_vector::reshape(ws, 2);
  EXPECT_EQ(v.slices(), 2);
  EXPECT_EQ(v.symbol(0, 0), 9);
  EXPECT_EQ(v.symbol(0, 1), 8);
  EXPECT_EQ(v.symbol(1, 0), 7);
  EXPECT_EQ(v.symbol(1, 1), 0);
}

TEST(ValueVector, PackUnpackRoundTrip) {
  rng rand(5);
  for (int trial = 0; trial < 20; ++trial) {
    const int rho = static_cast<int>(1 + rand.below(5));
    const int slices = static_cast<int>(1 + rand.below(7));
    const value_vector v = value_vector::random(rho, slices, rand);
    EXPECT_EQ(value_vector::unpack(rho, slices, v.pack()), v);
  }
}

TEST(ValueVector, UnpackToleratesShortInput) {
  const value_vector v = value_vector::unpack(2, 2, {0x0004000300020001ull});
  EXPECT_EQ(v.symbol(0, 0), 1);
  EXPECT_EQ(v.symbol(1, 1), 4);
  const value_vector w = value_vector::unpack(2, 2, {});
  EXPECT_EQ(w, value_vector(2, 2));
}

TEST(ValueVector, SymbolWordsSlice) {
  const std::vector<word> ws{1, 2, 3, 4};
  const value_vector v = value_vector::reshape(ws, 2);
  EXPECT_EQ(v.symbol_words(0), (std::vector<word>{1, 2}));
  EXPECT_EQ(v.symbol_words(1), (std::vector<word>{3, 4}));
}

TEST(ValueVector, SetSymbolMutates) {
  value_vector v(2, 2);
  v.set_symbol(1, 0, 0xBEEF);
  EXPECT_EQ(v.symbol(1, 0), 0xBEEF);
  EXPECT_EQ(v.words()[2], 0xBEEF);
}

}  // namespace
}  // namespace nab::core
