// Erasure-vs-Byzantine discrimination in dispute control: with
// instance_context::lossy_links set, a *missing* receipt claim is what
// honest ARQ budget exhaustion looks like and must yield neither disputes
// nor convictions — while the very same transcripts on (claimed) clean
// links are evidence. Mismatching *present* content stays tamper either
// way: the lossy gate must never mask an actual garbler.

#include <gtest/gtest.h>

#include <functional>

#include "bb/channels.hpp"
#include "core/dispute.hpp"
#include "core/equality_check.hpp"
#include "core/phase1.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

struct scenario_result {
  dispute_outcome outcome;
  dispute_record record;
  std::vector<word> input;
};

/// Runs Phases 1-2 on K5(cap 2), f=1, source 0, then lets `mutate` edit the
/// assembled context (transcript surgery standing in for link erasures)
/// before Phase 3 executes with the given lossy_links classification.
scenario_result run_scenario(const std::vector<graph::node_id>& corrupt,
                             nab_adversary* adv, bool lossy_links,
                             const std::function<void(instance_context&)>& mutate = {}) {
  const graph::digraph g = graph::complete(5, 2);
  sim::network net(g);
  sim::fault_set faults(5, corrupt);
  rng rand(17);

  scenario_result res;
  res.input.resize(8);
  for (auto& w : res.input) w = static_cast<word>(rand.below(65536));

  const auto gamma = graph::broadcast_mincut(g, 0);
  const auto trees = graph::pack_arborescences(g, 0, static_cast<int>(gamma));
  const auto uk = compute_uk(g, 1, res.record);
  const auto rho = compute_rho(uk);
  const auto coding = coding_scheme::generate(g, static_cast<int>(rho), 23);

  const auto p1 = run_phase1(net, g, faults, 0, res.input, trees, adv);
  std::vector<value_vector> values(5);
  for (graph::node_id v : g.active_nodes())
    values[static_cast<std::size_t>(v)] = value_vector::reshape(
        p1.received[static_cast<std::size_t>(v)], static_cast<int>(rho));
  const auto ec = run_equality_check(net, g, faults, coding, values, adv);

  instance_context ctx;
  ctx.source = 0;
  ctx.input = res.input;
  ctx.rho = static_cast<int>(rho);
  ctx.trees = trees;
  ctx.coding = &coding;
  ctx.lossy_links = lossy_links;
  ctx.truth.assign(5, node_claims{});
  ctx.agreed_flags.assign(5, false);
  for (graph::node_id v : g.active_nodes()) {
    node_claims merged = p1.truth[static_cast<std::size_t>(v)];
    merged.p2_sent = ec.truth[static_cast<std::size_t>(v)].p2_sent;
    merged.p2_received = ec.truth[static_cast<std::size_t>(v)].p2_received;
    ctx.truth[static_cast<std::size_t>(v)] = std::move(merged);
    bool flag = ec.flags[static_cast<std::size_t>(v)];
    if (faults.is_corrupt(v) && adv != nullptr) flag = adv->phase2_flag(v, flag);
    ctx.agreed_flags[static_cast<std::size_t>(v)] = flag;
  }
  if (mutate) mutate(ctx);

  bb::channel_plan channels(g, 1);
  res.outcome = run_dispute_control(net, channels, g, faults, 1, 1, ctx,
                                    res.record, adv, bb::claim_backend::eig);
  return res;
}

/// Drops node 3's claimed receipt of node 2's Phase-2 coded symbol — the
/// exact transcript signature honest ARQ exhaustion on link 2->3 leaves.
void erase_p2_receipt(instance_context& ctx) {
  auto& rcvd = ctx.truth[3].p2_received;
  ASSERT_EQ(rcvd.erase({2, 3}), 1u);
}

TEST(DisputeLossy, MissingReceiptOnLossyLinksIsNotEvidence) {
  const auto res = run_scenario({}, nullptr, /*lossy_links=*/true,
                                [](instance_context& ctx) { erase_p2_receipt(ctx); });
  EXPECT_TRUE(res.outcome.new_disputes.empty());
  EXPECT_TRUE(res.outcome.newly_convicted.empty());
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

TEST(DisputeLossy, SameTranscriptOnCleanLinksIsEvidence) {
  // Identical surgery, lossy_links=false: on links that cannot erase, a
  // sender claiming a send its receiver never claims receiving means one of
  // them lies — DC2 disputes the pair, and DC3's flag replay (which may not
  // skip the hole either) convicts the receiver whose flag no longer matches.
  const auto res = run_scenario({}, nullptr, /*lossy_links=*/false,
                                [](instance_context& ctx) { erase_p2_receipt(ctx); });
  bool pair_disputed = false;
  for (const auto& [a, b] : res.outcome.new_disputes)
    pair_disputed = pair_disputed || (a == 2 && b == 3);
  EXPECT_TRUE(pair_disputed);
  EXPECT_FALSE(res.outcome.newly_convicted.empty());
}

TEST(DisputeLossy, CleanTranscriptsStayCleanUnderLossyClassification) {
  // The gate only widens what counts as consistent: an honest run with no
  // erasures must look exactly as clean with the lossy classification on.
  const auto res = run_scenario({}, nullptr, /*lossy_links=*/true);
  EXPECT_TRUE(res.outcome.new_disputes.empty());
  EXPECT_TRUE(res.outcome.newly_convicted.empty());
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

TEST(DisputeLossy, TamperingIsStillConvictedUnderLossyClassification) {
  // Mismatching *present* content is not an erasure signature: the truthful
  // Phase-1 garbler fails DC3 replay regardless of the lossy gate.
  phase1_corruptor adv;
  const auto res = run_scenario({2}, &adv, /*lossy_links=*/true);
  EXPECT_EQ(res.outcome.newly_convicted, (std::vector<graph::node_id>{2}));
  EXPECT_EQ(res.outcome.agreed_value, res.input);
}

}  // namespace
}  // namespace nab::core
