#include "core/omega.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace nab::core {
namespace {

TEST(DisputeRecord, BasicOperations) {
  dispute_record r;
  EXPECT_TRUE(r.empty());
  r.add_dispute(3, 1);
  EXPECT_TRUE(r.in_dispute(1, 3));
  EXPECT_TRUE(r.in_dispute(3, 1));
  EXPECT_FALSE(r.in_dispute(1, 2));
  EXPECT_EQ(r.dispute_degree(1), 1);
  EXPECT_EQ(r.dispute_degree(2), 0);
  r.add_dispute(1, 3);  // idempotent
  EXPECT_EQ(r.pairs().size(), 1u);
  r.convict(3);
  EXPECT_TRUE(r.is_convicted(3));
  EXPECT_FALSE(r.is_convicted(1));
}

TEST(Omega, NoDisputesGivesAllSubsets) {
  const graph::digraph g = graph::paper_fig1a();  // n=4
  const auto subs = omega_subgraphs(g, 1, dispute_record{});
  EXPECT_EQ(subs.size(), 4u);  // C(4,3)
}

TEST(Omega, PaperFig1bExample) {
  // n=4, f=1, nodes 2,3 (0-based 1,2) in dispute: Omega_k = {1,2,4},{1,3,4}.
  const graph::digraph g = graph::paper_fig1b();
  dispute_record r;
  r.add_dispute(1, 2);
  const auto subs = omega_subgraphs(g, 1, r);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], (std::vector<graph::node_id>{0, 1, 3}));
  EXPECT_EQ(subs[1], (std::vector<graph::node_id>{0, 2, 3}));
}

TEST(Omega, PaperFig1bUk) {
  const graph::digraph g = graph::paper_fig1b();
  dispute_record r;
  r.add_dispute(1, 2);
  EXPECT_EQ(compute_uk(g, 1, r), 2);  // the paper's U_k = 2
}

TEST(Omega, U1OfFig1a) {
  // Without disputes: subgraph {2,3,4} (0-based {1,2,3}) is the 2-path with
  // weight-2 edges -> pairwise cut 2; triangles give 4. U_1 = 2.
  EXPECT_EQ(compute_uk(graph::paper_fig1a(), 1, dispute_record{}), 2);
}

TEST(Omega, RemovedNodesShrinkTheUniverseOfSubsets) {
  graph::digraph g = graph::complete(5);
  g.remove_node(4);
  // target size n - f = 5 - 1 = 4; only {0,1,2,3} remains.
  const auto subs = omega_subgraphs(g, 1, dispute_record{});
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].size(), 4u);
}

TEST(Omega, EmptyWhenTooFewCleanNodes) {
  const graph::digraph g = graph::complete(4);
  dispute_record r;
  // Every pair disputes: no 3-subset is clean.
  for (int a = 0; a < 4; ++a)
    for (int b = a + 1; b < 4; ++b) r.add_dispute(a, b);
  EXPECT_TRUE(omega_subgraphs(g, 1, r).empty());
  EXPECT_EQ(compute_uk(g, 1, r), 0);
}

TEST(Omega, ComputeRhoFloorsAtOne) {
  EXPECT_EQ(compute_rho(0), 1);
  EXPECT_EQ(compute_rho(1), 1);
  EXPECT_EQ(compute_rho(2), 1);
  EXPECT_EQ(compute_rho(5), 2);
  EXPECT_EQ(compute_rho(8), 4);
}

TEST(Omega, CompleteGraphUk) {
  // K7 with unit bidirectional links: any 5-subset is complete on 5 nodes
  // with weight-2 edges -> pairwise min cut 2*4 = 8.
  EXPECT_EQ(compute_uk(graph::complete(7), 2, dispute_record{}), 8);
}

}  // namespace
}  // namespace nab::core
