#include "core/phase1.hpp"

#include <gtest/gtest.h>

#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

std::vector<word> random_words(std::size_t n, rng& rand) {
  std::vector<word> out(n);
  for (auto& w : out) w = static_cast<word>(rand.below(65536));
  return out;
}

TEST(Phase1, ChunkSplitRoundTrip) {
  rng rand(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto input = random_words(1 + rand.below(40), rand);
    const int shares = static_cast<int>(1 + rand.below(5));
    const auto chunks = split_into_chunks(input, shares);
    EXPECT_EQ(chunks.size(), static_cast<std::size_t>(shares));
    EXPECT_EQ(assemble_chunks(chunks, input.size()), input);
  }
}

TEST(Phase1, FaultFreeDeliveryOnPaperFig2) {
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(2);
  const auto input = random_words(8, rand);
  const auto r = run_phase1(net, g, faults, 0, input, trees);
  for (graph::node_id v = 0; v < 4; ++v)
    EXPECT_EQ(r.received[static_cast<std::size_t>(v)], input) << "node " << v;
}

TEST(Phase1, TimeIsLOverGamma) {
  // 8 words = 128 bits over gamma=2 trees: chunk = 64 bits; every tree edge
  // carries 64 bits. Link (0,1) has capacity 2 and hosts both trees -> 128
  // bits / 2 = 64 = L/gamma. All other links: 64 bits / 1.
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(3);
  const auto input = random_words(8, rand);
  const auto r = run_phase1(net, g, faults, 0, input, trees);
  EXPECT_DOUBLE_EQ(r.time, 64.0);  // L/gamma = 128/2
}

TEST(Phase1, StoreAndForwardCostsDepthTimesChunk) {
  const graph::digraph g = graph::path_of_cliques(3, 2, 1);
  const auto gamma = graph::broadcast_mincut(g, 0);
  const auto trees = graph::pack_arborescences(g, 0, static_cast<int>(gamma));
  rng rand(4);
  const auto input = random_words(6, rand);

  sim::network net_ct(g);
  sim::network net_sf(g);
  sim::fault_set faults(6);
  const auto ct =
      run_phase1(net_ct, g, faults, 0, input, trees, nullptr, propagation_mode::cut_through);
  const auto sf = run_phase1(net_sf, g, faults, 0, input, trees, nullptr,
                             propagation_mode::store_and_forward);
  EXPECT_GE(sf.depth, 2);
  EXPECT_GT(sf.time, ct.time);          // store-and-forward pays per hop
  EXPECT_EQ(ct.received, sf.received);  // same data either way
}

TEST(Phase1, CorruptRelayPoisonsOnlyItsSubtrees) {
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  sim::network net(g);
  sim::fault_set faults(4, {1});
  phase1_corruptor adv;
  rng rand(5);
  const auto input = random_words(8, rand);
  const auto r = run_phase1(net, g, faults, 0, input, trees, &adv);
  EXPECT_EQ(r.received[0], input);  // source unaffected
  // Node 3 receives one share via node 1 on some tree: must be corrupted.
  EXPECT_NE(r.received[3], input);
}

TEST(Phase1, EquivocatingSourceSplitsReceivers) {
  // One explicit star arborescence so the equivocation target is a direct
  // child deterministically.
  const graph::digraph g = graph::complete(4);
  graph::spanning_tree star;
  star.edges = {{0, 1, 1}, {0, 2, 1}, {0, 3, 1}};
  sim::network net(g);
  sim::fault_set faults(4, {0});
  equivocating_source adv({2});
  rng rand(6);
  const auto input = random_words(9, rand);
  const auto r = run_phase1(net, g, faults, 0, input, {star}, &adv);
  EXPECT_EQ(r.received[1], input);
  EXPECT_EQ(r.received[3], input);
  EXPECT_NE(r.received[2], input);  // the minority child got a forged value
}

TEST(Phase1, TranscriptsMatchDeliveries) {
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(7);
  const auto input = random_words(4, rand);
  const auto r = run_phase1(net, g, faults, 0, input, trees);
  for (std::size_t t = 0; t < trees.size(); ++t)
    for (const graph::edge& e : trees[t].edges) {
      const auto key = std::make_tuple(static_cast<int>(t), e.from, e.to);
      const auto& sent = r.truth[static_cast<std::size_t>(e.from)].p1_sent;
      const auto& rcvd = r.truth[static_cast<std::size_t>(e.to)].p1_received;
      ASSERT_TRUE(sent.count(key));
      ASSERT_TRUE(rcvd.count(key));
      EXPECT_EQ(sent.at(key), rcvd.at(key));
    }
}

TEST(Phase1, ClaimsPackUnpackRoundTrip) {
  const graph::digraph g = graph::paper_fig2();
  const auto trees = graph::pack_arborescences(g, 0, 2);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(8);
  const auto input = random_words(6, rand);
  const auto r = run_phase1(net, g, faults, 0, input, trees);
  for (graph::node_id v = 0; v < 4; ++v) {
    const node_claims& c = r.truth[static_cast<std::size_t>(v)];
    node_claims back;
    ASSERT_TRUE(node_claims::unpack(c.pack(), back));
    EXPECT_EQ(back, c);
  }
}

TEST(Phase1, MalformedClaimsRejected) {
  node_claims out;
  EXPECT_FALSE(node_claims::unpack({999999999}, out));            // absurd count
  EXPECT_FALSE(node_claims::unpack({1, 0, 1}, out));              // truncated entry
  EXPECT_TRUE(node_claims::unpack(node_claims{}.pack(), out));    // empty is valid
}

}  // namespace
}  // namespace nab::core
