#include "core/equality_check.hpp"

#include <gtest/gtest.h>

#include "core/omega.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace nab::core {
namespace {

std::vector<value_vector> equal_values(const graph::digraph& g, const value_vector& x) {
  std::vector<value_vector> out(static_cast<std::size_t>(g.universe()));
  for (graph::node_id v : g.active_nodes()) out[static_cast<std::size_t>(v)] = x;
  return out;
}

TEST(EqualityCheck, AllEqualValuesRaiseNoFlag) {
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 3);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(1);
  const auto r = run_equality_check(net, g, faults, cs,
                                    equal_values(g, value_vector::random(1, 4, rand)));
  for (graph::node_id v = 0; v < 4; ++v) EXPECT_FALSE(r.flags[static_cast<std::size_t>(v)]);
}

TEST(EqualityCheck, OneDeviantValueIsDetectedByANeighbor) {
  // Requirement (EC): if two fault-free nodes hold different values, some
  // fault-free node must flag. With all nodes fault-free and one deviant,
  // detection must occur at the deviant or a neighbor.
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 9);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(2);
  auto values = equal_values(g, value_vector::random(1, 4, rand));
  values[2] = value_vector::random(1, 4, rand);  // node 2 got a different value
  const auto r = run_equality_check(net, g, faults, cs, values);
  bool any = false;
  for (graph::node_id v = 0; v < 4; ++v) any = any || r.flags[static_cast<std::size_t>(v)];
  EXPECT_TRUE(any);
}

TEST(EqualityCheck, DetectionSweepOverAllSingleDeviants) {
  const graph::digraph g = graph::complete(5, 2);
  const graph::capacity_t uk = compute_uk(g, 1, dispute_record{});
  const coding_scheme cs =
      coding_scheme::generate(g, static_cast<int>(compute_rho(uk)), 17);
  rng rand(3);
  for (graph::node_id deviant = 0; deviant < 5; ++deviant) {
    sim::network net(g);
    sim::fault_set faults(5);
    auto values = equal_values(
        g, value_vector::random(static_cast<int>(compute_rho(uk)), 2, rand));
    values[static_cast<std::size_t>(deviant)] =
        value_vector::random(static_cast<int>(compute_rho(uk)), 2, rand);
    const auto r = run_equality_check(net, g, faults, cs, values);
    bool any = false;
    for (graph::node_id v = 0; v < 5; ++v) any = any || r.flags[static_cast<std::size_t>(v)];
    EXPECT_TRUE(any) << "deviant " << deviant;
  }
}

TEST(EqualityCheck, TimeIsLOverRho) {
  // L = rho * slices * 16; each link of capacity z carries z*(L/rho) bits,
  // so the step lasts exactly L/rho regardless of topology.
  const graph::digraph g = graph::paper_fig2();
  const int rho = 2, slices = 8;  // L = 256, L/rho = 128
  const coding_scheme cs = coding_scheme::generate(g, rho, 5);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(4);
  const auto r =
      run_equality_check(net, g, faults, cs, equal_values(g, value_vector::random(rho, slices, rand)));
  EXPECT_DOUBLE_EQ(r.time, 128.0);
}

TEST(EqualityCheck, LyingSenderIsFlaggedByReceiver) {
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 6);
  sim::network net(g);
  sim::fault_set faults(4, {1});
  phase2_liar adv;
  rng rand(5);
  const auto r = run_equality_check(net, g, faults, cs,
                                    equal_values(g, value_vector::random(1, 4, rand)), &adv);
  // Node 1's neighbors (0 and 2) receive garbage and must flag.
  EXPECT_TRUE(r.flags[0] || r.flags[2]);
}

TEST(EqualityCheck, NoForwardingMeansHonestPairsUnaffected) {
  // The salient feature: a faulty node cannot tamper traffic between
  // fault-free nodes. With equal values everywhere and a liar at node 1,
  // checks on edges among {0,2,3} still pass.
  const graph::digraph g = graph::paper_fig1a();
  const coding_scheme cs = coding_scheme::generate(g, 1, 8);
  sim::network net(g);
  sim::fault_set faults(4, {1});
  phase2_liar adv;
  rng rand(6);
  const auto values = equal_values(g, value_vector::random(1, 4, rand));
  const auto r = run_equality_check(net, g, faults, cs, values, &adv);
  // Node 3 has no link to node 1 in Fig 1(a): it must not flag.
  EXPECT_FALSE(r.flags[3]);
}

TEST(EqualityCheck, TranscriptsRecordWhatWasSent) {
  const graph::digraph g = graph::paper_fig2();
  const coding_scheme cs = coding_scheme::generate(g, 1, 10);
  sim::network net(g);
  sim::fault_set faults(4);
  rng rand(7);
  const auto values = equal_values(g, value_vector::random(1, 2, rand));
  const auto r = run_equality_check(net, g, faults, cs, values);
  for (const graph::edge& e : g.edges()) {
    const auto& sent = r.truth[static_cast<std::size_t>(e.from)].p2_sent;
    ASSERT_TRUE(sent.count({e.from, e.to}));
    EXPECT_EQ(sent.at({e.from, e.to}),
              cs.encode(values[static_cast<std::size_t>(e.from)], e.from, e.to));
  }
}

}  // namespace
}  // namespace nab::core
