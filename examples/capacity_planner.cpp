// Capacity planner: a network-engineering tool built on the public API.
// Reads a topology (file argument, or a built-in demo network), and reports
// everything the paper lets you predict about Byzantine broadcast on it:
// gamma*, rho* = U_1/2, the Theorem-2 capacity upper bound, the NAB
// throughput guarantee, the guaranteed fraction of capacity, and per-node
// min-cuts. Also emits Graphviz DOT for documentation.
//
//   ./examples/capacity_planner [topology.txt [f]]
//
// Topology format:  nodes <n> / edge <u> <v> <cap> / biedge <u> <v> <cap>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/nab.hpp"
#include "graph/connectivity.hpp"
#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "graph/maxflow.hpp"
#include "graph/topology_io.hpp"

int main(int argc, char** argv) {
  using namespace nab;

  graph::digraph g;
  int f = argc > 2 ? std::atoi(argv[2]) : 1;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    try {
      g = graph::parse_topology(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parse error: %s\n", e.what());
      return 2;
    }
  } else {
    std::printf("(no topology given; using a demo 6-node datacenter-ish fabric)\n");
    g = graph::parse_topology_text(
        "nodes 6\n"
        "biedge 0 1 4\nbiedge 0 2 4\nbiedge 1 2 4\n"   // fat core triangle
        "biedge 0 3 2\nbiedge 1 4 2\nbiedge 2 5 2\n"   // access uplinks
        "biedge 3 4 1\nbiedge 4 5 1\nbiedge 3 5 1\n"   // thin leaf ring
        "biedge 0 4 1\nbiedge 1 5 1\nbiedge 2 3 1\n"); // cross links
  }

  const int n = g.universe();
  std::printf("network: %d nodes, %zu directed links, total capacity %lld\n", n,
              g.edges().size(), static_cast<long long>(g.total_capacity()));

  const int kappa = graph::global_vertex_connectivity(g);
  std::printf("vertex connectivity: %d  (supports f <= %d; requested f=%d)\n", kappa,
              (kappa - 1) / 2, f);
  if (n < 3 * f + 1 || kappa < 2 * f + 1) {
    std::printf("=> Byzantine broadcast with f=%d is IMPOSSIBLE here "
                "(needs n>=3f+1 and connectivity >= 2f+1)\n", f);
    return 1;
  }

  std::printf("\nper-node broadcast min-cuts from source 0 (Phase-1 ceilings):\n");
  for (graph::node_id v = 1; v < n; ++v)
    std::printf("  MINCUT(0 -> %d) = %lld\n", v,
                static_cast<long long>(graph::min_cut_value(g, 0, v)));

  const graph::gomory_hu_tree ght(graph::to_undirected(g));
  std::printf("undirected Gomory-Hu pair cuts (Equality-Check structure):\n");
  for (const auto& e : ght.tree_edges())
    std::printf("  cut(%d,%d) = %lld\n", e.from, e.to, static_cast<long long>(e.cap));

  const core::capacity_bounds b = core::compute_bounds(g, 0, f);
  std::printf("\npaper quantities (f=%d, source=0):\n", f);
  std::printf("  gamma*                = %lld%s\n", static_cast<long long>(b.gamma_star),
              b.gamma_exact ? "  (exact Gamma enumeration)" : "  (incident-set estimate)");
  std::printf("  U_1                   = %lld\n", static_cast<long long>(b.u1));
  std::printf("  rho* = U_1/2          = %.1f\n", b.rho_star);
  std::printf("  C_BB upper bound      = %.1f   [Theorem 2: min(gamma*, 2 rho*)]\n",
              b.capacity_upper_bound);
  std::printf("  NAB throughput bound  = %.2f   [gamma* rho* / (gamma* + rho*)]\n",
              b.nab_throughput_bound);
  std::printf("  guaranteed fraction   = %.0f%%   [Theorem 3: %s]\n",
              100.0 * b.guaranteed_fraction,
              b.guaranteed_fraction == 0.5 ? "gamma* <= rho*" : "general case");

  // Sanity-check the prediction with a real fault-free run through the
  // runtime's one-shot entry point (sweep-style experiments live in the
  // `fleet` driver; this is a single spot check).
  const core::session_run run =
      core::run_session({.g = g, .f = f}, sim::fault_set(n), nullptr, 3, 2048, 1);
  std::printf("  measured (fault-free) = %.2f bits/unit-time\n",
              run.stats.throughput());

  std::printf("\nGraphviz DOT of the topology:\n%s", graph::to_dot(g).c_str());
  return 0;
}
