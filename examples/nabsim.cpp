// nabsim: command-line driver for ONE session at a time — run NAB on an
// arbitrary topology with any built-in adversary, compute the paper's
// capacity bounds, or run the pipelined mode; plot-ready TSV output.
// For parameter sweeps across topologies/adversaries/fault budgets, use
// `fleet` (examples/fleet.cpp), which drives the runtime scenario registry
// in parallel and writes BENCH_runtime.json.
//
// Usage:
//   nabsim run       [options]   run Q instances, print per-instance reports
//   nabsim bounds    [options]   print gamma*, rho*, Theorem-2/3 quantities
//   nabsim pipeline  [options]   Appendix-D pipelined run (fault-free)
//
// Options:
//   --topology FILE   topology file (default: built-in K5 cap 2)
//   --n N             use complete graph K_N instead (with --cap)
//   --cap C           uniform capacity for --n (default 1)
//   --f F             fault budget (default 1)
//   --source S        broadcasting node (default 0)
//   --corrupt A,B     corrupt node ids (default none)
//   --adversary KIND  honest|p1garble|equivocate|p2lie|falseflag|stealth|chaos
//   --claim-backend B Phase-3 DC1 engine: auto|eig|phase_king|collapsed
//                     (default eig — the oracle; collapsed is the
//                     polynomial-traffic Bracha-style backend)
//   --q Q             instances (default 8)
//   --words W         16-bit words per input, L = 16 W bits (default 64)
//   --seed S          RNG seed (default 1)
//   --loss SPEC       link-fault model: none (default), zero|light|bursty|
//                     heavy, or p_good,p_bad,p_g2b,p_b2g (Gilbert-Elliott
//                     erasures + ARQ; run command only)
//   --tsv             emit per-instance TSV instead of prose

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/nab.hpp"
#include "graph/generators.hpp"
#include "graph/topology_io.hpp"

namespace {

struct options {
  std::string command;
  std::string topology_file;
  int n = 0;
  nab::graph::capacity_t cap = 1;
  int f = 1;
  nab::graph::node_id source = 0;
  std::vector<nab::graph::node_id> corrupt;
  std::string adversary = "honest";
  std::string claim_backend = "eig";
  int q = 8;
  std::size_t words = 64;
  std::uint64_t seed = 1;
  std::string loss = "none";
  bool tsv = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: nabsim run|bounds|pipeline [--topology FILE | --n N --cap C] "
               "[--f F] [--source S]\n"
               "              [--corrupt A,B] [--adversary KIND] "
               "[--claim-backend auto|eig|phase_king|collapsed]\n"
               "              [--q Q] [--words W] [--seed S] [--tsv]\n"
               "              [--loss none|zero|light|bursty|heavy|pG,pB,pG2B,pB2G]\n");
  std::exit(2);
}

std::vector<nab::graph::node_id> parse_ids(const std::string& csv) {
  std::vector<nab::graph::node_id> out;
  std::string cur;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  return out;
}

options parse(int argc, char** argv) {
  if (argc < 2) usage();
  options o;
  o.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--topology") o.topology_file = next();
    else if (a == "--n") o.n = std::atoi(next());
    else if (a == "--cap") o.cap = std::atoll(next());
    else if (a == "--f") o.f = std::atoi(next());
    else if (a == "--source") o.source = std::atoi(next());
    else if (a == "--corrupt") o.corrupt = parse_ids(next());
    else if (a == "--adversary") o.adversary = next();
    else if (a == "--claim-backend") o.claim_backend = next();
    else if (a == "--q") o.q = std::atoi(next());
    else if (a == "--words") o.words = static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--seed") o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--loss") o.loss = next();
    else if (a == "--tsv") o.tsv = true;
    else usage();
  }
  return o;
}

nab::graph::digraph load_graph(const options& o) {
  if (!o.topology_file.empty()) {
    std::ifstream in(o.topology_file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", o.topology_file.c_str());
      std::exit(2);
    }
    return nab::graph::parse_topology(in);
  }
  if (o.n > 0) return nab::graph::complete(o.n, o.cap);
  return nab::graph::complete(5, 2);
}

std::unique_ptr<nab::core::nab_adversary> make_adversary(const options& o) {
  using namespace nab::core;
  if (o.adversary == "honest") return nullptr;
  if (o.adversary == "p1garble") return std::make_unique<phase1_corruptor>();
  if (o.adversary == "equivocate")
    return std::make_unique<equivocating_source>(std::set<nab::graph::node_id>{1});
  if (o.adversary == "p2lie") return std::make_unique<phase2_liar>(o.seed);
  if (o.adversary == "falseflag") return std::make_unique<false_flagger>();
  if (o.adversary == "stealth") return std::make_unique<stealth_disputer>();
  if (o.adversary == "chaos") return std::make_unique<chaos_adversary>(o.seed);
  std::fprintf(stderr, "unknown adversary '%s'\n", o.adversary.c_str());
  std::exit(2);
}

nab::bb::claim_backend parse_claim_backend(const std::string& s) {
  using nab::bb::claim_backend;
  if (s == "auto") return claim_backend::auto_select;
  if (s == "eig") return claim_backend::eig;
  if (s == "phase_king") return claim_backend::phase_king;
  if (s == "collapsed") return claim_backend::collapsed;
  std::fprintf(stderr, "unknown claim backend '%s'\n", s.c_str());
  std::exit(2);
}

int cmd_run(const options& o) {
  using namespace nab;
  const graph::digraph g = load_graph(o);
  sim::fault_set faults(g.universe(), o.corrupt);
  const auto adv = make_adversary(o);
  // Ambient link-fault model (validated spec): the session's internal
  // networks pick it up; must outlive the session, hence declared first.
  std::unique_ptr<sim::link_fault_model> fault_model;
  std::unique_ptr<sim::scoped_link_faults> fault_scope;
  if (o.loss != "none") {
    fault_model = std::make_unique<sim::link_fault_model>(
        sim::parse_loss_spec(o.loss), o.seed ^ 0x1055eedULL);
    fault_scope = std::make_unique<sim::scoped_link_faults>(fault_model.get());
  }
  core::session s({.g = g,
                   .f = o.f,
                   .source = o.source,
                   .claim_backend = parse_claim_backend(o.claim_backend)},
                  faults, adv.get());
  rng rand(o.seed);
  const auto reports = s.run_many(o.q, o.words, rand);
  if (o.tsv) {
    std::fputs(core::to_tsv(reports).c_str(), stdout);
  } else {
    std::fputs(core::format_instance_table(reports).c_str(), stdout);
    std::fputs(core::format_session_summary(s).c_str(), stdout);
  }
  for (const auto& r : reports)
    if (!r.agreement || !r.validity) return 1;
  return 0;
}

int cmd_bounds(const options& o) {
  using namespace nab;
  const graph::digraph g = load_graph(o);
  const auto b = core::compute_bounds(g, o.source, o.f);
  std::printf("%s\n", core::format_bounds(b).c_str());
  return 0;
}

int cmd_pipeline(const options& o) {
  using namespace nab;
  const graph::digraph g = load_graph(o);
  core::pipeline_config cfg{.g = g, .f = o.f, .source = o.source};
  rng rand(o.seed);
  const auto st = core::run_pipelined(cfg, o.q, o.words, rand);
  std::printf("instances=%d depth=%d elapsed=%.1f throughput=%.3f "
              "sequential-throughput=%.3f speedup=%.2fx valid=%s\n",
              st.instances, st.depth, st.elapsed, st.throughput(),
              st.sequential_throughput(), st.speedup(), st.all_valid ? "yes" : "NO");
  return st.all_valid ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const options o = parse(argc, argv);
  try {
    if (o.command == "run") return cmd_run(o);
    if (o.command == "bounds") return cmd_bounds(o);
    if (o.command == "pipeline") return cmd_pipeline(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nabsim: %s\n", e.what());
    return 1;
  }
  usage();
}
