// Quickstart: one NAB broadcast instance on a 5-node network with a
// Byzantine relay.
//
// Builds K5 with mixed capacities, marks node 2 as corrupt (it garbles every
// Phase-1 share it forwards), runs a single instance, and shows that all
// fault-free nodes still agree on the source's exact input — with the
// misbehavior detected and dispute control pinpointing the culprit.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/nab.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace nab;

  // 1. A network: K5, every link capacity 2.
  graph::digraph g = graph::complete(5, 2);

  // 2. Who is corrupt (the protocol doesn't know this — the simulator does).
  sim::fault_set faults(g.universe(), {2});
  core::phase1_corruptor adversary;  // garbles forwarded shares

  // 3. A session: f=1 fault budget, node 0 broadcasts.
  core::session session({.g = g, .f = 1, .source = 0}, faults, &adversary);

  // 4. Broadcast a 64-bit message (4 words of 16 bits).
  const std::vector<core::word> message{0xCAFE, 0xBABE, 0xF00D, 0x1234};
  const core::instance_report r = session.run_instance(message);

  std::printf("quickstart: NAB instance on K5 (f=1, corrupt relay = node 2)\n");
  std::printf("  gamma_k=%lld rho_k=%lld  phase1=%.1f ec=%.1f flags=%.1f phase3=%.1f\n",
              static_cast<long long>(r.gamma), static_cast<long long>(r.rho),
              r.time_phase1, r.time_equality_check, r.time_flags, r.time_phase3);
  std::printf("  mismatch announced: %s, dispute control run: %s\n",
              r.mismatch_announced ? "yes" : "no", r.dispute_phase_run ? "yes" : "no");

  for (graph::node_id v = 0; v < g.universe(); ++v) {
    if (faults.is_corrupt(v)) {
      std::printf("  node %d: (corrupt)\n", v);
      continue;
    }
    std::printf("  node %d decided:", v);
    for (core::word w : r.outputs[static_cast<std::size_t>(v)]) std::printf(" %04X", w);
    std::printf("\n");
  }
  std::printf("  agreement=%s validity=%s\n", r.agreement ? "yes" : "NO",
              r.validity ? "yes" : "NO");

  if (!session.disputes().convicted().empty()) {
    std::printf("  convicted as faulty:");
    for (graph::node_id v : session.disputes().convicted()) std::printf(" %d", v);
    std::printf("\n");
  }
  for (const auto& [a, b] : session.disputes().pairs())
    std::printf("  pair in dispute: {%d,%d}\n", a, b);

  return r.agreement && r.validity ? 0 : 1;
}
