// Adversary lab: runs a NAB session against every built-in adversary
// strategy and prints how each attack unfolds — what phase detects it, what
// dispute control learns, and how G_k shrinks until the attack dies out.
// A tour of the protocol's fault-handling machinery.
//
//   ./examples/adversary_lab

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/nab.hpp"
#include "graph/generators.hpp"

namespace {

struct scenario {
  std::string name;
  std::vector<nab::graph::node_id> corrupt;
  std::unique_ptr<nab::core::nab_adversary> adv;
};

int run_scenario(const scenario& sc, int instances) {
  using namespace nab;
  const graph::digraph g = graph::complete(5, 2);
  sim::fault_set faults(g.universe(), sc.corrupt);
  core::session session({.g = g, .f = 1, .source = 0}, faults, sc.adv.get());

  std::printf("== %s (corrupt:", sc.name.c_str());
  for (graph::node_id v : sc.corrupt) std::printf(" %d", v);
  std::printf(")\n");

  rng rand(0xAB);
  bool all_ok = true;
  for (int i = 0; i < instances; ++i) {
    std::vector<core::word> input(8);
    for (auto& w : input) w = static_cast<core::word>(rand.below(65536));
    const auto r = session.run_instance(input);
    all_ok = all_ok && r.agreement && r.validity;
    std::printf("  #%d: %s%s%s%s agree=%s", i,
                r.default_outcome ? "default-outcome " : "",
                r.phase1_only ? "phase1-only " : "",
                r.mismatch_announced ? "MISMATCH " : "clean ",
                r.dispute_phase_run ? "-> dispute-control " : "",
                r.agreement && r.validity ? "yes" : "NO");
    if (!r.new_disputes.empty()) {
      std::printf(" new-disputes:");
      for (const auto& [a, b] : r.new_disputes) std::printf(" {%d,%d}", a, b);
    }
    if (!r.newly_convicted.empty()) {
      std::printf(" convicted:");
      for (graph::node_id v : r.newly_convicted) std::printf(" %d", v);
    }
    std::printf("\n");
  }
  std::printf("  final: %d/%d nodes active, %zu dispute pairs, %zu convicted, "
              "throughput %.3f\n\n",
              session.current_graph().active_count(), g.universe(),
              session.disputes().pairs().size(), session.disputes().convicted().size(),
              session.stats().throughput());
  return all_ok ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("adversary_lab: every strategy vs NAB on K5 (f=1)\n\n");
  using namespace nab::core;

  std::vector<scenario> scenarios;
  scenarios.push_back({"honest run (control)", {}, nullptr});
  scenarios.push_back(
      {"phase1 corruptor (garbles forwarded shares)", {2},
       std::make_unique<phase1_corruptor>()});
  scenarios.push_back(
      {"targeted corruptor (poisons only node 4)", {2},
       std::make_unique<phase1_corruptor>(4)});
  scenarios.push_back(
      {"equivocating source (two value groups)", {0},
       std::make_unique<equivocating_source>(std::set<nab::graph::node_id>{3, 4})});
  scenarios.push_back({"phase2 liar (garbage coded symbols)", {1},
                       std::make_unique<phase2_liar>()});
  scenarios.push_back({"false flagger (cries MISMATCH)", {3},
                       std::make_unique<false_flagger>()});
  scenarios.push_back({"stealth disputer (slowest convictable attack)", {2},
                       std::make_unique<stealth_disputer>()});

  int failures = 0;
  for (const auto& sc : scenarios) failures += run_scenario(sc, 4);

  std::printf("adversary_lab: %s\n",
              failures == 0 ? "agreement & validity held in every scenario"
                            : "FAILURES OBSERVED");
  return failures;
}
