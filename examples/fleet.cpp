// fleet: registry-driven parallel scenario sweeps — the successor to the
// ad-hoc per-topology loops that used to live in nabsim/capacity_planner.
// Expands named scenario families from the runtime registry into a concrete
// sweep, fans it out over a work-stealing shard pool, asserts the paper's
// invariants (agreement, validity, dispute soundness) on every run, and
// writes the machine-readable metrics to BENCH_runtime.json.
//
// Usage:
//   fleet --list                         show the preset catalog and exit
//   fleet [options]                      run a sweep
//   fleet --hunt [options]               coverage-guided adversary search
//
// Options (sweep):
//   --scenario NAMES  comma-separated family names, or "all" (default: all)
//   --jobs N          worker threads (default 1; results identical for any N)
//   --seed S          sweep base seed (default 1)
//   --json FILE       output path (default BENCH_runtime.json; "-" = none)
//   --trace FILE      capture per-run traffic matrices (sim ambient traces)
//                     and dump them to FILE as JSON (sparse link lists plus
//                     the per-run DC1 claim bytes — the communication-pattern
//                     analysis mode)
//   --timeline FILE   capture per-run phase spans (obs collectors) and dump
//                     them to FILE as Chrome-trace JSON — load in
//                     chrome://tracing or ui.perfetto.dev; one process per
//                     run, spans nested phase1/equality_check/flags/phase3
//                     down to the claim sub-rounds
//   --quiet           suppress the per-run progress lines
//
// Options (hunt — see docs/HUNT.md and runtime/hunt.hpp):
//   --hunt-families NAMES  families whose (topology, f) pairs become hunt
//                          contexts (default complete-f2,ablation-claims —
//                          the K_7/K_9 dispute presets)
//   --budget N             total genome evaluations (default 2000)
//   --population N         genomes per generation (default 12)
//   --hunt-words N         payload words per evaluation (default 16 — margins
//                          are size-oblivious, so evaluations stay cheap)
//   --hunt-instances N     instances per evaluation (0 = family default)
//   --hunt-corpus FILE     corpus output (default HUNT_corpus.json; "-" = none)
//   --jobs/--seed/--quiet  as above; the corpus is byte-identical for any
//                          --jobs value
//
// Every sweep ends with a per-phase rollup (top phases by wall time across
// the sweep, per family) built from the same obs spans. Flag parsing is
// strict (runtime/fleet_cli.hpp): unknown flags are errors naming the flag,
// never silently ignored.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/omega_cache.hpp"
#include "runtime/runtime.hpp"

namespace {

void list_registry() {
  std::size_t total = 0;
  for (const nab::runtime::scenario_family& fam : nab::runtime::registry()) {
    const std::size_t count = fam.expand().size();
    total += count;
    std::printf("%-22s %3zu runs  %s\n", fam.name.c_str(), count,
                fam.description.c_str());
  }
  std::printf("%-22s %3zu runs\n", "total (=all)", total);
}

int run_hunt_mode(const nab::runtime::fleet_options& opt) {
  using namespace nab::runtime;
  hunt_config cfg;
  cfg.families = opt.hunt_families;
  cfg.seed = opt.seed;
  cfg.budget = opt.budget;
  cfg.population = opt.population;
  cfg.jobs = opt.jobs;
  cfg.words = opt.hunt_words;
  cfg.instances = opt.hunt_instances;

  std::printf("fleet: hunting %s, budget %d, population %d, %d job%s, seed %llu\n",
              cfg.families.c_str(), cfg.budget, cfg.population, cfg.jobs,
              cfg.jobs == 1 ? "" : "s",
              static_cast<unsigned long long>(cfg.seed));

  const auto t0 = std::chrono::steady_clock::now();
  const hunt_corpus corpus = run_hunt(
      cfg, opt.quiet ? std::function<void(const std::string&)>{}
                     : [](const std::string& line) {
                         std::printf("  %s\n", line.c_str());
                       });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf(
      "fleet: hunt done — %d evaluations, %zu champions, %zu novel behaviors, "
      "%d errors, %d invariant violations, wall %.2fs\n",
      corpus.evaluations, corpus.champions.size(), corpus.novel.size(),
      corpus.errors, corpus.violations, wall);
  for (const corpus_entry& e : corpus.champions)
    std::printf("  champion %-28s %-24s slack=%lld hold=%lld headroom=%lld  %s\n",
                e.context.c_str(), e.gauge.c_str(),
                static_cast<long long>(e.margin_quorum_slack),
                static_cast<long long>(e.margin_hold_surplus),
                static_cast<long long>(e.margin_dispute_headroom),
                e.genome.to_params().c_str());
  for (const corpus_entry& e : corpus.violators)
    std::printf("  VIOLATION %-28s run_index=%d  %s\n", e.context.c_str(),
                e.run_index, e.genome.to_params().c_str());

  if (opt.corpus_path != "-") {
    write_json_file(opt.corpus_path, corpus_document(corpus));
    std::printf("fleet: wrote %s\n", opt.corpus_path.c_str());
  }
  if (corpus.violations > 0) {
    std::fprintf(stderr,
                 "fleet: the hunt found %d paper-invariant violation(s) — "
                 "replay the violator genomes above\n",
                 corpus.violations);
    return 1;
  }
  return 0;
}

int run_sweep_mode(const nab::runtime::fleet_options& opt) {
  using namespace nab::runtime;
  std::vector<scenario> sweep = select_scenarios(opt.scenarios);
  // --loss overrides the link-fault axis of every selected scenario but
  // never their names: the zero-loss byte-identity guard diffs a --loss
  // zero sweep against a clean one record-for-record.
  if (!opt.loss.empty())
    for (scenario& s : sweep) s.loss = opt.loss;
  std::printf("fleet: %zu runs (%s%s%s), %d job%s, seed %llu\n", sweep.size(),
              opt.scenarios.c_str(), opt.loss.empty() ? "" : ", loss ",
              opt.loss.c_str(), opt.jobs, opt.jobs == 1 ? "" : "s",
              static_cast<unsigned long long>(opt.seed));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> run_walls;
  const auto records = run_sweep(
      sweep, opt.seed, opt.jobs,
      [&](const run_record& r) {
        if (opt.quiet) return;
        std::printf("  [%3d] %-46s thpt=%8.3f disputes=%d convicted=%d %s\n",
                    r.run_index, r.scenario.c_str(), r.throughput, r.disputes,
                    r.convictions, r.ok() ? "ok" : "INVARIANT VIOLATED");
      },
      &run_walls, /*capture_traces=*/!opt.trace_path.empty(),
      /*capture_spans=*/!opt.timeline_path.empty());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::map<std::string, double> family_walls;
  for (std::size_t i = 0; i < sweep.size(); ++i)
    family_walls[sweep[i].family] += run_walls[i];

  const sweep_summary s = summarize(records);
  std::printf(
      "fleet: %d runs, %d instances, %d dispute phases, throughput "
      "min/mean/max = %.3f/%.3f/%.3f, wall %.2fs\n",
      s.runs, s.total_instances, s.total_dispute_phases, s.min_throughput,
      s.mean_throughput, s.max_throughput, wall);
  const auto cache = nab::core::omega_cache::instance().stats();
  std::printf(
      "fleet: omega_cache %llu/%llu analysis hits, %llu/%llu phase-1 plan hits\n",
      static_cast<unsigned long long>(cache.analysis_hits),
      static_cast<unsigned long long>(cache.analysis_hits + cache.analysis_misses),
      static_cast<unsigned long long>(cache.plan_hits),
      static_cast<unsigned long long>(cache.plan_hits + cache.plan_misses));

  // Per-family phase rollup: the top-3 phases by summed wall time across
  // the family's runs, from the per-run obs spans. Answers "where did the
  // sweep's time go" without opening the JSON.
  {
    std::map<std::string, std::map<std::string, double>> family_phases;
    for (const run_record& r : records)
      for (const auto& [phase, secs] : r.timing.wall_by_phase)
        family_phases[r.family][phase] += secs;
    std::printf("fleet: wall by phase (top 3 per family)\n");
    for (const auto& [family, phases] : family_phases) {
      std::vector<std::pair<std::string, double>> rows(phases.begin(),
                                                       phases.end());
      std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second : a.first < b.first;
      });
      std::string line;
      for (std::size_t i = 0; i < rows.size() && i < 3; ++i) {
        char cell[96];
        std::snprintf(cell, sizeof cell, "%s%s=%.3fs", i > 0 ? "  " : "",
                      rows[i].first.c_str(), rows[i].second);
        line += cell;
      }
      std::printf("  %-22s %s\n", family.c_str(), line.c_str());
    }
  }

  if (opt.json_path != "-") {
    write_json_file(opt.json_path, sweep_document(opt.scenarios, opt.seed,
                                                  opt.jobs, records, wall,
                                                  &family_walls));
    std::printf("fleet: wrote %s\n", opt.json_path.c_str());
  }
  if (!opt.trace_path.empty()) {
    write_json_file(opt.trace_path,
                    trace_document(opt.scenarios, opt.seed, records));
    std::printf("fleet: wrote %s\n", opt.trace_path.c_str());
  }
  if (!opt.timeline_path.empty()) {
    write_json_file(opt.timeline_path,
                    timeline_document(opt.scenarios, opt.seed, records));
    std::printf("fleet: wrote %s\n", opt.timeline_path.c_str());
  }

  if (s.failed_runs > 0) {
    std::fprintf(stderr, "fleet: %d run(s) violated paper invariants\n",
                 s.failed_runs);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nab::runtime::fleet_options opt;
  try {
    opt = nab::runtime::parse_fleet_args(
        std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), nab::runtime::fleet_usage().c_str());
    return 2;
  }

  if (opt.list) {
    list_registry();
    return 0;
  }
  try {
    return opt.hunt ? run_hunt_mode(opt) : run_sweep_mode(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet: %s\n", e.what());
    return 1;
  }
}
