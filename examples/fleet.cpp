// fleet: registry-driven parallel scenario sweeps — the successor to the
// ad-hoc per-topology loops that used to live in nabsim/capacity_planner.
// Expands named scenario families from the runtime registry into a concrete
// sweep, fans it out over a work-stealing shard pool, asserts the paper's
// invariants (agreement, validity, dispute soundness) on every run, and
// writes the machine-readable metrics to BENCH_runtime.json.
//
// Usage:
//   fleet --list                         show the preset catalog and exit
//   fleet [options]                      run a sweep
//
// Options:
//   --scenario NAMES  comma-separated family names, or "all" (default: all)
//   --jobs N          worker threads (default 1; results identical for any N)
//   --seed S          sweep base seed (default 1)
//   --json FILE       output path (default BENCH_runtime.json; "-" = none)
//   --trace FILE      capture per-run traffic matrices (sim ambient traces)
//                     and dump them to FILE as JSON (sparse link lists plus
//                     the per-run DC1 claim bytes — the communication-pattern
//                     analysis mode)
//   --timeline FILE   capture per-run phase spans (obs collectors) and dump
//                     them to FILE as Chrome-trace JSON — load in
//                     chrome://tracing or ui.perfetto.dev; one process per
//                     run, spans nested phase1/equality_check/flags/phase3
//                     down to the claim sub-rounds
//   --quiet           suppress the per-run progress lines
//
// Every sweep ends with a per-phase rollup (top phases by wall time across
// the sweep, per family) built from the same obs spans.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/omega_cache.hpp"
#include "runtime/runtime.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: fleet [--list] [--scenario NAMES|all] [--jobs N] [--seed S]\n"
               "             [--json FILE] [--trace FILE] [--timeline FILE] "
               "[--quiet]\n");
  std::exit(2);
}

/// Strict numeric parsing: atoll would silently turn "1e5" into 1 and a
/// typo into seed 0, then stamp the wrong seed into BENCH_runtime.json.
std::uint64_t parse_u64(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || *text == '-') {
    std::fprintf(stderr, "fleet: %s expects a non-negative integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

int parse_int(const char* flag, const char* text) {
  const std::uint64_t v = parse_u64(flag, text);
  if (v > 1'000'000) {
    std::fprintf(stderr, "fleet: %s value %s is out of range\n", flag, text);
    std::exit(2);
  }
  return static_cast<int>(v);
}

void list_registry() {
  std::size_t total = 0;
  for (const nab::runtime::scenario_family& fam : nab::runtime::registry()) {
    const std::size_t count = fam.expand().size();
    total += count;
    std::printf("%-22s %3zu runs  %s\n", fam.name.c_str(), count,
                fam.description.c_str());
  }
  std::printf("%-22s %3zu runs\n", "total (=all)", total);
}

}  // namespace

int main(int argc, char** argv) {
  std::string names = "all";
  std::string json_path = "BENCH_runtime.json";
  std::string trace_path;
  std::string timeline_path;
  int jobs = 1;
  std::uint64_t seed = 1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (a == "--list") {
      list_registry();
      return 0;
    } else if (a == "--scenario") {
      names = next();
    } else if (a == "--jobs") {
      jobs = parse_int("--jobs", next());
    } else if (a == "--seed") {
      seed = parse_u64("--seed", next());
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--timeline") {
      timeline_path = next();
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage();
    }
  }
  if (jobs < 1) jobs = 1;

  try {
    using namespace nab::runtime;
    const std::vector<scenario> sweep = select_scenarios(names);
    std::printf("fleet: %zu runs (%s), %d job%s, seed %llu\n", sweep.size(),
                names.c_str(), jobs, jobs == 1 ? "" : "s",
                static_cast<unsigned long long>(seed));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> run_walls;
    const auto records = run_sweep(
        sweep, seed, jobs,
        [&](const run_record& r) {
          if (quiet) return;
          std::printf("  [%3d] %-46s thpt=%8.3f disputes=%d convicted=%d %s\n",
                      r.run_index, r.scenario.c_str(), r.throughput, r.disputes,
                      r.convictions, r.ok() ? "ok" : "INVARIANT VIOLATED");
        },
        &run_walls, /*capture_traces=*/!trace_path.empty(),
        /*capture_spans=*/!timeline_path.empty());
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::map<std::string, double> family_walls;
    for (std::size_t i = 0; i < sweep.size(); ++i)
      family_walls[sweep[i].family] += run_walls[i];

    const sweep_summary s = summarize(records);
    std::printf(
        "fleet: %d runs, %d instances, %d dispute phases, throughput "
        "min/mean/max = %.3f/%.3f/%.3f, wall %.2fs\n",
        s.runs, s.total_instances, s.total_dispute_phases, s.min_throughput,
        s.mean_throughput, s.max_throughput, wall);
    const auto cache = nab::core::omega_cache::instance().stats();
    std::printf(
        "fleet: omega_cache %llu/%llu analysis hits, %llu/%llu phase-1 plan hits\n",
        static_cast<unsigned long long>(cache.analysis_hits),
        static_cast<unsigned long long>(cache.analysis_hits + cache.analysis_misses),
        static_cast<unsigned long long>(cache.plan_hits),
        static_cast<unsigned long long>(cache.plan_hits + cache.plan_misses));

    // Per-family phase rollup: the top-3 phases by summed wall time across
    // the family's runs, from the per-run obs spans. Answers "where did the
    // sweep's time go" without opening the JSON.
    {
      std::map<std::string, std::map<std::string, double>> family_phases;
      for (const run_record& r : records)
        for (const auto& [phase, secs] : r.timing.wall_by_phase)
          family_phases[r.family][phase] += secs;
      std::printf("fleet: wall by phase (top 3 per family)\n");
      for (const auto& [family, phases] : family_phases) {
        std::vector<std::pair<std::string, double>> rows(phases.begin(),
                                                         phases.end());
        std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
          return a.second != b.second ? a.second > b.second : a.first < b.first;
        });
        std::string line;
        for (std::size_t i = 0; i < rows.size() && i < 3; ++i) {
          char cell[96];
          std::snprintf(cell, sizeof cell, "%s%s=%.3fs", i > 0 ? "  " : "",
                        rows[i].first.c_str(), rows[i].second);
          line += cell;
        }
        std::printf("  %-22s %s\n", family.c_str(), line.c_str());
      }
    }

    if (json_path != "-") {
      write_json_file(json_path,
                      sweep_document(names, seed, jobs, records, wall, &family_walls));
      std::printf("fleet: wrote %s\n", json_path.c_str());
    }
    if (!trace_path.empty()) {
      write_json_file(trace_path, trace_document(names, seed, records));
      std::printf("fleet: wrote %s\n", trace_path.c_str());
    }
    if (!timeline_path.empty()) {
      write_json_file(timeline_path, timeline_document(names, seed, records));
      std::printf("fleet: wrote %s\n", timeline_path.c_str());
    }

    if (s.failed_runs > 0) {
      std::fprintf(stderr, "fleet: %d run(s) violated paper invariants\n",
                   s.failed_runs);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet: %s\n", e.what());
    return 1;
  }
}
