// Replicated log: the paper's motivating application (replicated
// fault-tolerant state machines, Section 1). Six replicas agree on a stream
// of commands through repeated NAB instances — with the broadcaster
// ROTATING across replicas (every replica proposes in turn, like a real
// replicated service) — while one replica is Byzantine and mounts the
// stealthiest dispute-farming attack the model allows. Every honest
// replica's log stays identical, and throughput recovers as dispute control
// exhausts the attacker's options.
//
//   ./examples/replicated_log [commands=40]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/nab.hpp"
#include "graph/generators.hpp"

namespace {

/// Encodes a textual command into 16-bit words (fixed 16-word record).
std::vector<nab::core::word> encode_command(const std::string& cmd) {
  std::vector<nab::core::word> words(16, 0);
  for (std::size_t i = 0; i < cmd.size() && i < 32; ++i) {
    words[i / 2] = static_cast<nab::core::word>(words[i / 2] |
                                                (static_cast<unsigned char>(cmd[i])
                                                 << (8 * (i % 2))));
  }
  return words;
}

std::string decode_command(const std::vector<nab::core::word>& words) {
  std::string out;
  for (nab::core::word w : words) {
    for (int b = 0; b < 2; ++b) {
      const char c = static_cast<char>((w >> (8 * b)) & 0xFF);
      if (c != 0) out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nab;
  const int commands = argc > 1 ? std::atoi(argv[1]) : 40;

  graph::digraph g = graph::complete(6, 2);
  sim::fault_set faults(g.universe(), {3});
  core::stealth_disputer adversary;
  core::session session({.g = g, .f = 1, .source = 0}, faults, &adversary);

  // Each replica applies agreed commands to its own log.
  std::vector<std::vector<std::string>> logs(static_cast<std::size_t>(g.universe()));

  std::printf("replicated_log: %d commands through NAB on K6, replica 3 Byzantine\n",
              commands);
  int disputes_seen = 0;
  for (int i = 0; i < commands; ++i) {
    // Rotate the proposer over the replicas still in G_k. A convicted
    // replica's turn yields the agreed default (skipped by the log logic).
    const auto active = session.current_graph().active_nodes();
    const graph::node_id proposer = active[static_cast<std::size_t>(i) % active.size()];
    const std::string cmd = "SET k" + std::to_string(i) + "=" + std::to_string(i * i);
    const auto r = session.run_instance(encode_command(cmd), proposer);
    if (!r.agreement || !r.validity) {
      std::printf("  BROKEN at command %d\n", i);
      return 1;
    }
    for (graph::node_id v : session.current_graph().active_nodes())
      if (faults.is_honest(v)) {
        // Default outcomes (convicted proposer) append a no-op marker so the
        // logs stay aligned.
        logs[static_cast<std::size_t>(v)].push_back(
            r.default_outcome
                ? "NOP"
                : decode_command(r.outputs[static_cast<std::size_t>(v)]));
      }
    if (r.dispute_phase_run) {
      ++disputes_seen;
      std::printf("  command %2d: dispute control ran (new pairs:", i);
      for (const auto& [a, b] : r.new_disputes) std::printf(" {%d,%d}", a, b);
      std::printf("%s)\n", r.newly_convicted.empty() ? "" : ", conviction!");
    }
  }

  // All honest logs must be identical and contain every command.
  const auto& reference = logs[0];
  bool identical = static_cast<int>(reference.size()) == commands;
  for (graph::node_id v = 1; v < g.universe(); ++v) {
    if (faults.is_corrupt(v)) continue;
    identical = identical && logs[static_cast<std::size_t>(v)] == reference;
  }

  std::printf("  honest logs identical: %s (%zu entries each)\n",
              identical ? "yes" : "NO", reference.size());
  std::printf("  sample tail: \"%s\"\n", reference.back().c_str());
  std::printf("  dispute-control rounds: %d (bound f(f+1) = 2)\n", disputes_seen);
  std::printf("  convicted replicas:");
  for (graph::node_id v : session.disputes().convicted()) std::printf(" %d", v);
  std::printf("\n  measured throughput: %.3f bits/unit-time over %d instances\n",
              session.stats().throughput(), session.stats().instances);
  return identical ? 0 : 1;
}
