#pragma once

#include <cstdio>
#include <cstdlib>

namespace nab::detail {

/// Aborts with a diagnostic. Used by NAB_ASSERT; kept out-of-line-ish so the
/// macro body stays tiny.
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "nabcast assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg);
  std::abort();
}

}  // namespace nab::detail

/// Precondition / invariant check that stays active in release builds.
/// All checks guarded by this macro are cheap (O(1) or already-amortized);
/// violating one indicates a bug in the caller, not a runtime condition, so
/// aborting is the right response (per CppCoreGuidelines I.6/E.12).
#define NAB_ASSERT(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) ::nab::detail::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (false)
