#pragma once

// Binary-wide operator-new interposition counter, shared by the allocation
// benchmarks (bench_micro_session) and the arena regression harness
// (tests/sim/test_run_arena.cpp) so their "allocs" numbers mean the same
// thing.
//
// Include this from EXACTLY ONE translation unit per binary: it defines the
// global replacement allocation functions, which are program-wide and (per
// [replacement.functions]) must not be inline — a second including TU is an
// ODR violation the linker will reject.

#include <atomic>
#include <cstdlib>
#include <new>

namespace nab::util {

inline std::atomic<std::uint64_t> heap_alloc_count{0};

/// Heap allocations (any operator-new form) since process start.
inline std::uint64_t heap_allocs() {
  return heap_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace nab::util

void* operator new(std::size_t n) {
  nab::util::heap_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  nab::util::heap_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
