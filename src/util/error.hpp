#pragma once

#include <stdexcept>
#include <string>

namespace nab {

/// Base class for all errors thrown by the nabcast library.
///
/// Thrown for *runtime* failure conditions that a correct caller can hit
/// (malformed topology files, infeasible parameters, ...). Programming errors
/// (violated preconditions) abort via NAB_ASSERT instead.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace nab
