#pragma once

#include <cstdint>
#include <random>

namespace nab {

/// Deterministic pseudo-random source used throughout the library.
///
/// Everything in nabcast that needs randomness (coding-matrix generation,
/// graph generators, adversary strategies, property tests) draws from an
/// explicitly seeded `rng` so that every run is reproducible. The engine is
/// std::mt19937_64; the wrapper pins down the draw helpers we rely on so
/// results do not depend on distribution implementations.
class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform 64-bit word.
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform 32-bit word.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(engine_() >> 32); }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p in [0, 1].
  bool chance(double p);

  /// Derive an independent child generator (for per-component streams).
  rng fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace nab
