#include "util/rng.hpp"

#include "util/assert.hpp"

namespace nab {

std::uint64_t rng::below(std::uint64_t bound) {
  NAB_ASSERT(bound > 0, "rng::below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw = engine_();
  while (draw >= limit) draw = engine_();
  return draw % bound;
}

std::int64_t rng::between(std::int64_t lo, std::int64_t hi) {
  NAB_ASSERT(lo <= hi, "rng::between requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  constexpr double kScale = 1.0 / 18446744073709551616.0;  // 2^-64
  return static_cast<double>(engine_()) * kScale < p;
}

rng rng::fork() { return rng(engine_()); }

}  // namespace nab
