#include "gf/gf256.hpp"

#include <array>

#include "util/assert.hpp"

namespace nab::gf {
namespace {

struct tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled so mul can skip a modulo

  tables() {
    constexpr unsigned poly = 0x11D;
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      exp[i + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= poly;
    }
    exp[510] = exp[255];
    exp[511] = exp[256];
  }
};

const tables& t() {
  static const tables instance;
  return instance;
}

}  // namespace

gf256::value_type gf256::mul(value_type a, value_type b) {
  if (a == 0 || b == 0) return 0;
  const auto& tab = t();
  return tab.exp[tab.log[a] + tab.log[b]];
}

gf256::value_type gf256::inv(value_type a) {
  NAB_ASSERT(a != 0, "gf256::inv of zero");
  const auto& tab = t();
  return tab.exp[255 - tab.log[a]];
}

gf256::value_type gf256::div(value_type a, value_type b) {
  NAB_ASSERT(b != 0, "gf256::div by zero");
  if (a == 0) return 0;
  const auto& tab = t();
  return tab.exp[tab.log[a] + 255 - tab.log[b]];
}

gf256::value_type gf256::pow(value_type a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& tab = t();
  const auto le = (static_cast<std::uint64_t>(tab.log[a]) * (e % 255)) % 255;
  return tab.exp[le];
}

}  // namespace nab::gf
