#include "gf/gf2_16.hpp"

#include "util/assert.hpp"

namespace nab::gf {

namespace detail {

// Evaluated once, at compile time; constinit rules out any runtime
// initialization-order hazard for other TUs' dynamic initializers.
constinit const gf2_16_tables gf2_16_t{};
static_assert(gf2_16_tables{}.primitive, "0x1100B must be primitive over GF(2^16)");

}  // namespace detail

gf2_16::value_type gf2_16::inv(value_type a) {
  NAB_ASSERT(a != 0, "gf2_16::inv of zero");
  const auto& tab = detail::gf2_16_t;
  return tab.exp[65535 - tab.log[a]];
}

gf2_16::value_type gf2_16::div(value_type a, value_type b) {
  NAB_ASSERT(b != 0, "gf2_16::div by zero");
  if (a == 0) return 0;
  const auto& tab = detail::gf2_16_t;
  return tab.exp[static_cast<unsigned>(tab.log[a]) + 65535 - tab.log[b]];
}

gf2_16::value_type gf2_16::pow(value_type a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& tab = detail::gf2_16_t;
  const auto le = (static_cast<std::uint64_t>(tab.log[a]) * (e % 65535)) % 65535;
  return tab.exp[le];
}

// axpy / scale live in gf2_16_kernels.cpp: the dispatcher, the scalar
// reference loops, and the SIMD backends they select among.

}  // namespace nab::gf
