#include "gf/gf2_16.hpp"

#include <vector>

#include "util/assert.hpp"

namespace nab::gf {
namespace {

struct tables {
  std::vector<std::uint16_t> log;
  std::vector<std::uint16_t> exp;  // doubled so mul can skip a modulo

  tables() : log(65536), exp(131072) {
    constexpr unsigned poly = 0x1100B;
    unsigned x = 1;
    for (unsigned i = 0; i < 65535; ++i) {
      exp[i] = static_cast<std::uint16_t>(x);
      exp[i + 65535] = static_cast<std::uint16_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= poly;
    }
    NAB_ASSERT(x == 1, "0x1100B must be primitive over GF(2^16)");
    exp[131070] = exp[65535];
    exp[131071] = exp[65536];
  }
};

const tables& t() {
  static const tables instance;
  return instance;
}

}  // namespace

gf2_16::value_type gf2_16::mul(value_type a, value_type b) {
  if (a == 0 || b == 0) return 0;
  const auto& tab = t();
  return tab.exp[static_cast<unsigned>(tab.log[a]) + tab.log[b]];
}

gf2_16::value_type gf2_16::inv(value_type a) {
  NAB_ASSERT(a != 0, "gf2_16::inv of zero");
  const auto& tab = t();
  return tab.exp[65535 - tab.log[a]];
}

gf2_16::value_type gf2_16::div(value_type a, value_type b) {
  NAB_ASSERT(b != 0, "gf2_16::div by zero");
  if (a == 0) return 0;
  const auto& tab = t();
  return tab.exp[static_cast<unsigned>(tab.log[a]) + 65535 - tab.log[b]];
}

gf2_16::value_type gf2_16::pow(value_type a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& tab = t();
  const auto le = (static_cast<std::uint64_t>(tab.log[a]) * (e % 65535)) % 65535;
  return tab.exp[le];
}

}  // namespace nab::gf
