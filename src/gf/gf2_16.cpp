#include "gf/gf2_16.hpp"

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace nab::gf {

namespace detail {

// Evaluated once, at compile time; constinit rules out any runtime
// initialization-order hazard for other TUs' dynamic initializers.
constinit const gf2_16_tables gf2_16_t{};
static_assert(gf2_16_tables{}.primitive, "0x1100B must be primitive over GF(2^16)");

}  // namespace detail

gf2_16::value_type gf2_16::inv(value_type a) {
  NAB_ASSERT(a != 0, "gf2_16::inv of zero");
  const auto& tab = detail::gf2_16_t;
  return tab.exp[65535 - tab.log[a]];
}

gf2_16::value_type gf2_16::div(value_type a, value_type b) {
  NAB_ASSERT(b != 0, "gf2_16::div by zero");
  if (a == 0) return 0;
  const auto& tab = detail::gf2_16_t;
  return tab.exp[static_cast<unsigned>(tab.log[a]) + 65535 - tab.log[b]];
}

gf2_16::value_type gf2_16::pow(value_type a, std::uint64_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& tab = detail::gf2_16_t;
  const auto le = (static_cast<std::uint64_t>(tab.log[a]) * (e % 65535)) % 65535;
  return tab.exp[le];
}

void gf2_16::axpy(value_type* dst, const value_type* src, value_type coeff,
                  std::size_t n) {
  if (coeff == 0) return;
  // Counted per call, not per element: the ambient-collector check must stay
  // out of the word loop (this is the certification hot path).
  obs::count(obs::counter::gf_axpy_words, n);
  const auto& tab = detail::gf2_16_t;
  const unsigned lc = tab.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const value_type s = src[i];
    if (s == 0) continue;
    dst[i] = static_cast<value_type>(dst[i] ^ tab.exp[lc + tab.log[s]]);
  }
}

void gf2_16::scale(value_type* v, value_type coeff, std::size_t n) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) v[i] = 0;
    return;
  }
  obs::count(obs::counter::gf_scale_words, n);
  const auto& tab = detail::gf2_16_t;
  const unsigned lc = tab.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const value_type s = v[i];
    if (s == 0) continue;
    v[i] = tab.exp[lc + tab.log[s]];
  }
}

}  // namespace nab::gf
