#pragma once

#include <cstdint>

namespace nab::gf {

/// The finite field GF(2^8) with the Rijndael-compatible primitive polynomial
/// x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and generator alpha = 2.
///
/// Multiplication and inversion go through 256-entry log/antilog tables built
/// on first use. Addition is XOR. The class is stateless: all members are
/// static, so `gf256` is used purely as a *field tag* for the generic linear
/// algebra in matrix.hpp.
class gf256 {
 public:
  using value_type = std::uint8_t;

  /// Number of bits per field element.
  static constexpr unsigned bits = 8;
  /// Field order (number of elements).
  static constexpr std::uint64_t order = 256;

  static constexpr value_type zero() { return 0; }
  static constexpr value_type one() { return 1; }

  /// Characteristic-2 addition (== subtraction).
  static constexpr value_type add(value_type a, value_type b) {
    return static_cast<value_type>(a ^ b);
  }
  static constexpr value_type sub(value_type a, value_type b) { return add(a, b); }
  static constexpr value_type neg(value_type a) { return a; }

  /// Field multiplication via log tables.
  static value_type mul(value_type a, value_type b);

  /// Multiplicative inverse. Precondition: a != 0.
  static value_type inv(value_type a);

  /// a / b. Precondition: b != 0.
  static value_type div(value_type a, value_type b);

  /// a^e with e reduced mod (order-1) for nonzero a.
  static value_type pow(value_type a, std::uint64_t e);
};

}  // namespace nab::gf
