#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nab::gf {

/// Dense row-major matrix over a binary extension field.
///
/// `F` is a stateless field tag (gf256, gf2_16, gf2m<M>) exposing
/// value_type, zero/one, add/sub/mul/inv/div. The matrix owns its storage;
/// copying is explicit and cheap enough for the sizes NAB needs (the largest
/// matrices are the (n-f-1)*rho square certification matrices, well under
/// 10^3 x 10^3).
template <class F>
class matrix {
 public:
  using field = F;
  using value_type = typename F::value_type;

  matrix() = default;

  /// rows x cols zero matrix.
  matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, F::zero()) {}

  static matrix identity(std::size_t n) {
    matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = F::one();
    return m;
  }

  /// Matrix with entries drawn independently and uniformly from F — exactly
  /// the coding-matrix distribution of Theorem 1.
  static matrix random(std::size_t rows, std::size_t cols, rng& rand) {
    matrix m(rows, cols);
    for (auto& v : m.data_)
      v = static_cast<value_type>(rand.below(F::order));
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  value_type& at(std::size_t r, std::size_t c) {
    NAB_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const value_type& at(std::size_t r, std::size_t c) const {
    NAB_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Contiguous storage of row r (rows are row-major) — the batched row
  /// kernels (F::axpy / F::scale) operate directly on these.
  value_type* row_ptr(std::size_t r) {
    NAB_ASSERT(r < rows_, "matrix row out of range");
    return data_.data() + r * cols_;
  }
  const value_type* row_ptr(std::size_t r) const {
    NAB_ASSERT(r < rows_, "matrix row out of range");
    return data_.data() + r * cols_;
  }

  bool operator==(const matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  matrix transpose() const {
    matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
    return t;
  }

  /// Entry-wise sum. Precondition: identical shapes.
  friend matrix operator+(const matrix& a, const matrix& b) {
    NAB_ASSERT(a.rows_ == b.rows_ && a.cols_ == b.cols_, "matrix shape mismatch in +");
    matrix out(a.rows_, a.cols_);
    for (std::size_t i = 0; i < a.data_.size(); ++i)
      out.data_[i] = F::add(a.data_[i], b.data_[i]);
    return out;
  }

  /// Matrix product. Precondition: a.cols() == b.rows().
  friend matrix operator*(const matrix& a, const matrix& b) {
    NAB_ASSERT(a.cols_ == b.rows_, "matrix shape mismatch in *");
    matrix out(a.rows_, b.cols_);
    for (std::size_t r = 0; r < a.rows_; ++r) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const value_type arv = a.at(r, k);
        if (arv == F::zero()) continue;
        for (std::size_t c = 0; c < b.cols_; ++c) {
          out.at(r, c) = F::add(out.at(r, c), F::mul(arv, b.at(k, c)));
        }
      }
    }
    return out;
  }

  /// Horizontal concatenation [a | b]. Precondition: equal row counts.
  static matrix hconcat(const matrix& a, const matrix& b) {
    NAB_ASSERT(a.rows_ == b.rows_, "hconcat row mismatch");
    matrix out(a.rows_, a.cols_ + b.cols_);
    for (std::size_t r = 0; r < a.rows_; ++r) {
      for (std::size_t c = 0; c < a.cols_; ++c) out.at(r, c) = a.at(r, c);
      for (std::size_t c = 0; c < b.cols_; ++c) out.at(r, a.cols_ + c) = b.at(r, c);
    }
    return out;
  }

  /// Copy of the given columns, in the given order.
  matrix select_columns(const std::vector<std::size_t>& cols) const {
    matrix out(rows_, cols.size());
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t j = 0; j < cols.size(); ++j) {
        NAB_ASSERT(cols[j] < cols_, "select_columns index out of range");
        out.at(r, j) = at(r, cols[j]);
      }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

}  // namespace nab::gf
