// Row-kernel backends for gf2_16::axpy / gf2_16::scale.
//
// The SIMD paths implement the classic 4-bit half-table region multiply
// (GF-Complete / sparsenc lineage): for a fixed coefficient c, split every
// source word s into its four nibbles, so
//
//   c * s = sum_k (c * x^{4k}) * nib_k(s)        (k = 0..3, GF(2^16))
//
// and each term is a 16-entry table lookup T_k[nib] = (c * x^{4k}) * nib.
// Storing T_k as separate low-byte / high-byte planes turns the lookup into
// one byte shuffle per plane: on u16 lanes, (s >> 4k) & 0x000f leaves the
// nibble in the even byte and 0 in the odd byte, and T_k[0] = 0 maps the odd
// bytes to 0, so no lane repacking (ALTMAP) is needed. Eight shuffles per
// 128-bit vector of eight words; AVX2 doubles the width.
//
// Backend selection happens once, on first kernel use: NAB_GF_BACKEND
// forces a backend by name (falling back to the best supported one when the
// CPU lacks it), otherwise the widest supported set wins. Every backend is
// bit-exact against the scalar loop — the cross-check suite in
// tests/gf/test_gf2_16_kernels.cpp pins that, including unaligned pointers,
// 0..31 tails, and aliased scales.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "gf/gf2_16.hpp"
#include "obs/obs.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define NAB_GF_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define NAB_GF_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace nab::gf {

namespace {

using word = gf2_16::value_type;

// --- scalar reference kernels -----------------------------------------------
// The s == 0 skip is a correctness requirement, not an optimization: log[0]
// is a sentinel and exp[lc + log[0]] would be garbage.

void axpy_scalar(word* dst, const word* src, word coeff, std::size_t n) {
  const auto& tab = detail::gf2_16_t;
  const unsigned lc = tab.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const word s = src[i];
    if (s == 0) continue;
    dst[i] = static_cast<word>(dst[i] ^ tab.exp[lc + tab.log[s]]);
  }
}

void scale_scalar(word* v, word coeff, std::size_t n) {
  const auto& tab = detail::gf2_16_t;
  const unsigned lc = tab.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const word s = v[i];
    if (s == 0) continue;
    v[i] = tab.exp[lc + tab.log[s]];
  }
}

// --- 4-bit half tables ------------------------------------------------------

struct nibble_tables {
  std::uint8_t lo[4][16];
  std::uint8_t hi[4][16];
};

void build_tables(word coeff, nibble_tables& t) {
  for (int k = 0; k < 4; ++k) {
    // x^{4k} as a field element is just the monomial 1 << 4k (4k < 16, so
    // no reduction), making T_k[v] = (coeff * x^{4k}) * v.
    const word fk = gf2_16::mul(coeff, static_cast<word>(1u << (4 * k)));
    for (int v = 0; v < 16; ++v) {
      const word p = gf2_16::mul(fk, static_cast<word>(v));
      t.lo[k][v] = static_cast<std::uint8_t>(p & 0xff);
      t.hi[k][v] = static_cast<std::uint8_t>(p >> 8);
    }
  }
}

// The per-call half-table build (64 scalar muls, ~50 ns) only amortizes on
// long rows; measured crossover vs the scalar loop sits near 90–140 words
// on both SSSE3 and AVX2, so the SIMD kernels hand shorter rows straight
// back to the scalar loop.
constexpr std::size_t simd_min_words = 128;

#if NAB_GF_KERNELS_X86

__attribute__((target("ssse3"))) void axpy_ssse3(word* dst, const word* src,
                                                 word coeff, std::size_t n) {
  if (n < simd_min_words) { axpy_scalar(dst, src, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  __m128i tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[k]));
    thi[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[k]));
  }
  const __m128i mask = _mm_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i idx = _mm_and_si128(s, mask);
    __m128i lo = _mm_shuffle_epi8(tlo[0], idx);
    __m128i hi = _mm_shuffle_epi8(thi[0], idx);
    idx = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[1], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[1], idx));
    idx = _mm_and_si128(_mm_srli_epi16(s, 8), mask);
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[2], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[2], idx));
    idx = _mm_srli_epi16(s, 12);  // high byte already 0
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[3], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[3], idx));
    const __m128i prod = _mm_xor_si128(lo, _mm_slli_epi16(hi, 8));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, prod));
  }
  if (i < n) axpy_scalar(dst + i, src + i, coeff, n - i);
}

__attribute__((target("ssse3"))) void scale_ssse3(word* v, word coeff,
                                                  std::size_t n) {
  if (n < simd_min_words) { scale_scalar(v, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  __m128i tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[k]));
    thi[k] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[k]));
  }
  const __m128i mask = _mm_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    __m128i idx = _mm_and_si128(s, mask);
    __m128i lo = _mm_shuffle_epi8(tlo[0], idx);
    __m128i hi = _mm_shuffle_epi8(thi[0], idx);
    idx = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[1], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[1], idx));
    idx = _mm_and_si128(_mm_srli_epi16(s, 8), mask);
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[2], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[2], idx));
    idx = _mm_srli_epi16(s, 12);
    lo = _mm_xor_si128(lo, _mm_shuffle_epi8(tlo[3], idx));
    hi = _mm_xor_si128(hi, _mm_shuffle_epi8(thi[3], idx));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(v + i),
                     _mm_xor_si128(lo, _mm_slli_epi16(hi, 8)));
  }
  if (i < n) scale_scalar(v + i, coeff, n - i);
}

__attribute__((target("avx2"))) void axpy_avx2(word* dst, const word* src,
                                               word coeff, std::size_t n) {
  if (n < simd_min_words) { axpy_scalar(dst, src, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  __m256i tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[k])));
    thi[k] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[k])));
  }
  const __m256i mask = _mm256_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i idx = _mm256_and_si256(s, mask);
    __m256i lo = _mm256_shuffle_epi8(tlo[0], idx);
    __m256i hi = _mm256_shuffle_epi8(thi[0], idx);
    idx = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[1], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[1], idx));
    idx = _mm256_and_si256(_mm256_srli_epi16(s, 8), mask);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[2], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[2], idx));
    idx = _mm256_srli_epi16(s, 12);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[3], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[3], idx));
    const __m256i prod = _mm256_xor_si256(lo, _mm256_slli_epi16(hi, 8));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
  }
  if (i < n) axpy_ssse3(dst + i, src + i, coeff, n - i);
}

__attribute__((target("avx2"))) void scale_avx2(word* v, word coeff,
                                                std::size_t n) {
  if (n < simd_min_words) { scale_scalar(v, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  __m256i tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo[k])));
    thi[k] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi[k])));
  }
  const __m256i mask = _mm256_set1_epi16(0x000f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i idx = _mm256_and_si256(s, mask);
    __m256i lo = _mm256_shuffle_epi8(tlo[0], idx);
    __m256i hi = _mm256_shuffle_epi8(thi[0], idx);
    idx = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[1], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[1], idx));
    idx = _mm256_and_si256(_mm256_srli_epi16(s, 8), mask);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[2], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[2], idx));
    idx = _mm256_srli_epi16(s, 12);
    lo = _mm256_xor_si256(lo, _mm256_shuffle_epi8(tlo[3], idx));
    hi = _mm256_xor_si256(hi, _mm256_shuffle_epi8(thi[3], idx));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(v + i),
                        _mm256_xor_si256(lo, _mm256_slli_epi16(hi, 8)));
  }
  if (i < n) scale_ssse3(v + i, coeff, n - i);
}

#endif  // NAB_GF_KERNELS_X86

#if NAB_GF_KERNELS_NEON

uint16x8_t mul8_neon(uint16x8_t s, const uint8x16_t tlo[4],
                     const uint8x16_t thi[4]) {
  const uint16x8_t mask = vdupq_n_u16(0x000f);
  uint16x8_t idx = vandq_u16(s, mask);
  uint8x16_t lo = vqtbl1q_u8(tlo[0], vreinterpretq_u8_u16(idx));
  uint8x16_t hi = vqtbl1q_u8(thi[0], vreinterpretq_u8_u16(idx));
  idx = vandq_u16(vshrq_n_u16(s, 4), mask);
  lo = veorq_u8(lo, vqtbl1q_u8(tlo[1], vreinterpretq_u8_u16(idx)));
  hi = veorq_u8(hi, vqtbl1q_u8(thi[1], vreinterpretq_u8_u16(idx)));
  idx = vandq_u16(vshrq_n_u16(s, 8), mask);
  lo = veorq_u8(lo, vqtbl1q_u8(tlo[2], vreinterpretq_u8_u16(idx)));
  hi = veorq_u8(hi, vqtbl1q_u8(thi[2], vreinterpretq_u8_u16(idx)));
  idx = vshrq_n_u16(s, 12);
  lo = veorq_u8(lo, vqtbl1q_u8(tlo[3], vreinterpretq_u8_u16(idx)));
  hi = veorq_u8(hi, vqtbl1q_u8(thi[3], vreinterpretq_u8_u16(idx)));
  return veorq_u16(vreinterpretq_u16_u8(lo),
                   vshlq_n_u16(vreinterpretq_u16_u8(hi), 8));
}

void axpy_neon(word* dst, const word* src, word coeff, std::size_t n) {
  if (n < simd_min_words) { axpy_scalar(dst, src, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  uint8x16_t tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = vld1q_u8(t.lo[k]);
    thi[k] = vld1q_u8(t.hi[k]);
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t prod = mul8_neon(vld1q_u16(src + i), tlo, thi);
    vst1q_u16(dst + i, veorq_u16(vld1q_u16(dst + i), prod));
  }
  if (i < n) axpy_scalar(dst + i, src + i, coeff, n - i);
}

void scale_neon(word* v, word coeff, std::size_t n) {
  if (n < simd_min_words) { scale_scalar(v, coeff, n); return; }
  nibble_tables t;
  build_tables(coeff, t);
  uint8x16_t tlo[4], thi[4];
  for (int k = 0; k < 4; ++k) {
    tlo[k] = vld1q_u8(t.lo[k]);
    thi[k] = vld1q_u8(t.hi[k]);
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) vst1q_u16(v + i, mul8_neon(vld1q_u16(v + i), tlo, thi));
  if (i < n) scale_scalar(v + i, coeff, n - i);
}

#endif  // NAB_GF_KERNELS_NEON

// --- backend selection ------------------------------------------------------

struct kernels {
  gf_backend id;
  void (*axpy)(word*, const word*, word, std::size_t);
  void (*scale)(word*, word, std::size_t);
};

constexpr kernels k_scalar{gf_backend::scalar, axpy_scalar, scale_scalar};
#if NAB_GF_KERNELS_X86
constexpr kernels k_ssse3{gf_backend::ssse3, axpy_ssse3, scale_ssse3};
constexpr kernels k_avx2{gf_backend::avx2, axpy_avx2, scale_avx2};
#endif
#if NAB_GF_KERNELS_NEON
constexpr kernels k_neon{gf_backend::neon, axpy_neon, scale_neon};
#endif

/// The vtable for `b`, or nullptr when this build/CPU cannot run it.
const kernels* kernels_for(gf_backend b) {
  switch (b) {
    case gf_backend::scalar:
      return &k_scalar;
    case gf_backend::ssse3:
#if NAB_GF_KERNELS_X86
      if (__builtin_cpu_supports("ssse3")) return &k_ssse3;
#endif
      return nullptr;
    case gf_backend::avx2:
#if NAB_GF_KERNELS_X86
      if (__builtin_cpu_supports("avx2")) return &k_avx2;
#endif
      return nullptr;
    case gf_backend::neon:
#if NAB_GF_KERNELS_NEON
      return &k_neon;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const kernels* best_supported() {
#if NAB_GF_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return &k_avx2;
  if (__builtin_cpu_supports("ssse3")) return &k_ssse3;
#endif
#if NAB_GF_KERNELS_NEON
  return &k_neon;
#endif
  return &k_scalar;
}

const kernels* select_from_env() {
  const char* env = std::getenv("NAB_GF_BACKEND");
  if (env != nullptr) {
    const std::string_view v(env);
    const kernels* forced = nullptr;
    if (v == "scalar") forced = kernels_for(gf_backend::scalar);
    else if (v == "ssse3") forced = kernels_for(gf_backend::ssse3);
    else if (v == "avx2") forced = kernels_for(gf_backend::avx2);
    else if (v == "neon") forced = kernels_for(gf_backend::neon);
    // Unknown names, "auto", and backends this CPU lacks all fall back to
    // auto-detection — a CI matrix leg may name a set the runner is missing.
    if (forced != nullptr) return forced;
  }
  return best_supported();
}

std::atomic<const kernels*> g_kernels{nullptr};

const kernels* active() {
  const kernels* k = g_kernels.load(std::memory_order_acquire);
  if (k != nullptr) return k;
  // Racing first calls compute the same answer from the same environment;
  // whichever store lands last is equivalent.
  k = select_from_env();
  g_kernels.store(k, std::memory_order_release);
  return k;
}

}  // namespace

gf_backend gf2_16::backend() { return active()->id; }

bool gf2_16::set_backend(gf_backend b) {
  const kernels* k = kernels_for(b);
  if (k == nullptr) return false;
  g_kernels.store(k, std::memory_order_release);
  return true;
}

const char* gf2_16::backend_name(gf_backend b) {
  switch (b) {
    case gf_backend::scalar: return "scalar";
    case gf_backend::ssse3: return "ssse3";
    case gf_backend::avx2: return "avx2";
    case gf_backend::neon: return "neon";
  }
  return "unknown";
}

void gf2_16::axpy(value_type* dst, const value_type* src, value_type coeff,
                  std::size_t n) {
  // Words presented, counted before every early-out (see the header
  // contract) and per call, never per element — the ambient-collector check
  // must stay out of the word loop on this hot path.
  obs::count(obs::counter::gf_axpy_words, n);
  if (coeff == 0 || n == 0) return;
  active()->axpy(dst, src, coeff, n);
}

void gf2_16::scale(value_type* v, value_type coeff, std::size_t n) {
  obs::count(obs::counter::gf_scale_words, n);
  if (coeff == 1 || n == 0) return;
  if (coeff == 0) {
    std::memset(v, 0, n * sizeof(value_type));
    return;
  }
  active()->scale(v, coeff, n);
}

}  // namespace nab::gf
