#pragma once

#include <optional>
#include <vector>

#include "gf/matrix.hpp"
#include "obs/obs.hpp"

namespace nab::gf {

namespace detail {

/// Fields may expose batched row kernels (axpy: dst += coeff*src, scale:
/// v *= coeff) that hoist the scalar's table lookup out of the loop —
/// gf2_16 does. Elimination dispatches to them when present.
template <class F>
concept has_row_kernels = requires(typename F::value_type* d,
                                   const typename F::value_type* s,
                                   typename F::value_type c, std::size_t n) {
  F::axpy(d, s, c, n);
  F::scale(d, c, n);
};

template <class F>
void row_axpy(typename F::value_type* dst, const typename F::value_type* src,
              typename F::value_type coeff, std::size_t n) {
  if constexpr (has_row_kernels<F>) {
    F::axpy(dst, src, coeff, n);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      dst[i] = F::add(dst[i], F::mul(coeff, src[i]));
  }
}

template <class F>
void row_scale(typename F::value_type* v, typename F::value_type coeff,
               std::size_t n) {
  if constexpr (has_row_kernels<F>) {
    F::scale(v, coeff, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) v[i] = F::mul(v[i], coeff);
  }
}

}  // namespace detail

/// In-place reduction to row echelon form by Gaussian elimination.
/// Returns the rank; `pivot_cols`, if non-null, receives the pivot column of
/// each nonzero row. O(rows * cols * min(rows, cols)) field operations; the
/// inner loops run on the field's batched row kernels when it provides them.
template <class F>
std::size_t row_reduce(matrix<F>& m, std::vector<std::size_t>* pivot_cols = nullptr) {
  using V = typename F::value_type;
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    // Find a pivot in this column at or below `rank`.
    std::size_t pivot = rank;
    while (pivot < rows && m.at(pivot, col) == F::zero()) ++pivot;
    if (pivot == rows) continue;
    // Swap the pivot row up.
    if (pivot != rank)
      for (std::size_t c = col; c < cols; ++c) std::swap(m.at(pivot, c), m.at(rank, c));
    // Normalize the pivot row from the pivot column on (everything left of
    // it is already zero in both rows).
    const std::size_t tail = cols - col;
    V* prow = m.row_ptr(rank) + col;
    detail::row_scale<F>(prow, F::inv(prow[0]), tail);
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank) continue;
      V* row = m.row_ptr(r) + col;
      const V factor = row[0];
      if (factor == F::zero()) continue;
      detail::row_axpy<F>(row, prow, F::neg(factor), tail);
    }
    if (pivot_cols != nullptr) pivot_cols->push_back(col);
    ++rank;
  }
  obs::count(obs::counter::gf_rows_eliminated, rank);
  return rank;
}

/// Rank of a matrix (operates on a copy).
template <class F>
std::size_t rank(matrix<F> m) {
  return row_reduce(m);
}

/// Inverse of a square matrix, or nullopt if singular.
template <class F>
std::optional<matrix<F>> inverse(const matrix<F>& m) {
  NAB_ASSERT(m.rows() == m.cols(), "inverse requires a square matrix");
  const std::size_t n = m.rows();
  auto aug = matrix<F>::hconcat(m, matrix<F>::identity(n));
  std::vector<std::size_t> pivots;
  row_reduce(aug, &pivots);
  // Invertible iff the left block is full-rank, i.e. all pivots land in it
  // (the identity block always brings the augmented rank up to n).
  if (pivots.size() < n || pivots[n - 1] >= n) return std::nullopt;
  matrix<F> out(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) out.at(r, c) = aug.at(r, n + c);
  return out;
}

/// Determinant of a square matrix. In characteristic 2 row swaps do not flip
/// the sign, so plain elimination with pivot-product suffices.
template <class F>
typename F::value_type determinant(matrix<F> m) {
  NAB_ASSERT(m.rows() == m.cols(), "determinant requires a square matrix");
  using V = typename F::value_type;
  const std::size_t n = m.rows();
  V det = F::one();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m.at(pivot, col) == F::zero()) ++pivot;
    if (pivot == n) return F::zero();
    if (pivot != col)
      for (std::size_t c = col; c < n; ++c) std::swap(m.at(pivot, c), m.at(col, c));
    det = F::mul(det, m.at(col, col));
    const V scale = F::inv(m.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const V factor = F::mul(m.at(r, col), scale);
      if (factor == F::zero()) continue;
      for (std::size_t c = col; c < n; ++c)
        m.at(r, c) = F::sub(m.at(r, c), F::mul(factor, m.at(col, c)));
    }
  }
  return det;
}

/// True iff a square matrix is invertible.
template <class F>
bool invertible(const matrix<F>& m) {
  return m.rows() == m.cols() && rank(m) == m.rows();
}

/// Solves x * A = b for a row vector x (the orientation used by the paper's
/// check D_H * C_H = 0). Returns nullopt if no solution exists.
template <class F>
std::optional<std::vector<typename F::value_type>> solve_left(
    const matrix<F>& a, const std::vector<typename F::value_type>& b) {
  NAB_ASSERT(b.size() == a.cols(), "solve_left dimension mismatch");
  // x * A = b  <=>  A^T * x^T = b^T.
  auto at = a.transpose();
  matrix<F> rhs(b.size(), 1);
  for (std::size_t i = 0; i < b.size(); ++i) rhs.at(i, 0) = b[i];
  auto aug = matrix<F>::hconcat(at, rhs);
  std::vector<std::size_t> pivots;
  const std::size_t r = row_reduce(aug, &pivots);
  // Inconsistent if a pivot lands in the rhs column.
  for (std::size_t i = 0; i < pivots.size(); ++i)
    if (pivots[i] == at.cols()) return std::nullopt;
  std::vector<typename F::value_type> x(at.cols(), F::zero());
  for (std::size_t i = 0; i < r; ++i)
    if (pivots[i] < at.cols()) x[pivots[i]] = aug.at(i, at.cols());
  return x;
}

}  // namespace nab::gf
