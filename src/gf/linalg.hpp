#pragma once

#include <optional>
#include <vector>

#include "gf/matrix.hpp"

namespace nab::gf {

/// In-place reduction to row echelon form by Gaussian elimination.
/// Returns the rank; `pivot_cols`, if non-null, receives the pivot column of
/// each nonzero row. O(rows * cols * min(rows, cols)) field operations.
template <class F>
std::size_t row_reduce(matrix<F>& m, std::vector<std::size_t>* pivot_cols = nullptr) {
  using V = typename F::value_type;
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    // Find a pivot in this column at or below `rank`.
    std::size_t pivot = rank;
    while (pivot < rows && m.at(pivot, col) == F::zero()) ++pivot;
    if (pivot == rows) continue;
    // Swap the pivot row up.
    if (pivot != rank)
      for (std::size_t c = col; c < cols; ++c) std::swap(m.at(pivot, c), m.at(rank, c));
    // Normalize the pivot row.
    const V scale = F::inv(m.at(rank, col));
    for (std::size_t c = col; c < cols; ++c) m.at(rank, c) = F::mul(m.at(rank, c), scale);
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank) continue;
      const V factor = m.at(r, col);
      if (factor == F::zero()) continue;
      for (std::size_t c = col; c < cols; ++c)
        m.at(r, c) = F::sub(m.at(r, c), F::mul(factor, m.at(rank, c)));
    }
    if (pivot_cols != nullptr) pivot_cols->push_back(col);
    ++rank;
  }
  return rank;
}

/// Rank of a matrix (operates on a copy).
template <class F>
std::size_t rank(matrix<F> m) {
  return row_reduce(m);
}

/// Inverse of a square matrix, or nullopt if singular.
template <class F>
std::optional<matrix<F>> inverse(const matrix<F>& m) {
  NAB_ASSERT(m.rows() == m.cols(), "inverse requires a square matrix");
  const std::size_t n = m.rows();
  auto aug = matrix<F>::hconcat(m, matrix<F>::identity(n));
  std::vector<std::size_t> pivots;
  row_reduce(aug, &pivots);
  // Invertible iff the left block is full-rank, i.e. all pivots land in it
  // (the identity block always brings the augmented rank up to n).
  if (pivots.size() < n || pivots[n - 1] >= n) return std::nullopt;
  matrix<F> out(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) out.at(r, c) = aug.at(r, n + c);
  return out;
}

/// Determinant of a square matrix. In characteristic 2 row swaps do not flip
/// the sign, so plain elimination with pivot-product suffices.
template <class F>
typename F::value_type determinant(matrix<F> m) {
  NAB_ASSERT(m.rows() == m.cols(), "determinant requires a square matrix");
  using V = typename F::value_type;
  const std::size_t n = m.rows();
  V det = F::one();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && m.at(pivot, col) == F::zero()) ++pivot;
    if (pivot == n) return F::zero();
    if (pivot != col)
      for (std::size_t c = col; c < n; ++c) std::swap(m.at(pivot, c), m.at(col, c));
    det = F::mul(det, m.at(col, col));
    const V scale = F::inv(m.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const V factor = F::mul(m.at(r, col), scale);
      if (factor == F::zero()) continue;
      for (std::size_t c = col; c < n; ++c)
        m.at(r, c) = F::sub(m.at(r, c), F::mul(factor, m.at(col, c)));
    }
  }
  return det;
}

/// True iff a square matrix is invertible.
template <class F>
bool invertible(const matrix<F>& m) {
  return m.rows() == m.cols() && rank(m) == m.rows();
}

/// Solves x * A = b for a row vector x (the orientation used by the paper's
/// check D_H * C_H = 0). Returns nullopt if no solution exists.
template <class F>
std::optional<std::vector<typename F::value_type>> solve_left(
    const matrix<F>& a, const std::vector<typename F::value_type>& b) {
  NAB_ASSERT(b.size() == a.cols(), "solve_left dimension mismatch");
  // x * A = b  <=>  A^T * x^T = b^T.
  auto at = a.transpose();
  matrix<F> rhs(b.size(), 1);
  for (std::size_t i = 0; i < b.size(); ++i) rhs.at(i, 0) = b[i];
  auto aug = matrix<F>::hconcat(at, rhs);
  std::vector<std::size_t> pivots;
  const std::size_t r = row_reduce(aug, &pivots);
  // Inconsistent if a pivot lands in the rhs column.
  for (std::size_t i = 0; i < pivots.size(); ++i)
    if (pivots[i] == at.cols()) return std::nullopt;
  std::vector<typename F::value_type> x(at.cols(), F::zero());
  for (std::size_t i = 0; i < r; ++i)
    if (pivots[i] < at.cols()) x[pivots[i]] = aug.at(i, at.cols());
  return x;
}

}  // namespace nab::gf
