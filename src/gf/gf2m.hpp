#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace nab::gf {

/// Default primitive polynomials (low bits; the x^M term is implicit) for
/// gf2m<M>. Entry i is for M = i; 0 marks unsupported widths.
inline constexpr std::uint64_t default_poly[33] = {
    0,      0,      0x3,    0x3,    0x3,    0x5,    0x3,    0x3,   0x1D,
    0x11,   0x9,    0x5,    0x53,   0x1B,   0x2B,   0x3,    0x100B /* x^12+x^3+x+1 */,
    0x9,    0x81,   0x27,   0x9,    0x5,    0x3,    0x21,   0x1B,
    0x9,    0x47,   0x27,   0x9,    0x5,    0x53,   0x9,    0xAF};

/// Generic binary extension field GF(2^M) for 2 <= M <= 32.
///
/// Multiplication is shift-and-add with per-step reduction by a primitive
/// polynomial; inversion uses Fermat's little theorem (a^(2^M - 2)).
/// Slower than the table-driven gf256 / gf2_16, but supports every width the
/// Theorem-1 soundness sweep (bench E3) needs — the miss probability of the
/// equality check scales as 2^-M, so small M makes misses observable.
template <unsigned M>
class gf2m {
  static_assert(M >= 2 && M <= 32, "gf2m supports 2 <= M <= 32");
  static_assert(default_poly[M] != 0, "no default polynomial for this width");

 public:
  using value_type = std::uint32_t;

  static constexpr unsigned bits = M;
  static constexpr std::uint64_t order = std::uint64_t{1} << M;
  static constexpr value_type mask = static_cast<value_type>(order - 1);

  static constexpr value_type zero() { return 0; }
  static constexpr value_type one() { return 1; }

  static constexpr value_type add(value_type a, value_type b) { return (a ^ b) & mask; }
  static constexpr value_type sub(value_type a, value_type b) { return add(a, b); }
  static constexpr value_type neg(value_type a) { return a & mask; }

  static constexpr value_type mul(value_type a, value_type b) {
    std::uint64_t acc = 0;
    std::uint64_t aa = a & mask;
    std::uint64_t bb = b & mask;
    while (bb != 0) {
      if (bb & 1) acc ^= aa;
      bb >>= 1;
      aa <<= 1;
      if (aa & order) aa ^= (default_poly[M] | order);
    }
    return static_cast<value_type>(acc & mask);
  }

  static constexpr value_type pow(value_type a, std::uint64_t e) {
    value_type base = a & mask;
    value_type result = 1;
    while (e != 0) {
      if (e & 1) result = mul(result, base);
      base = mul(base, base);
      e >>= 1;
    }
    return result;
  }

  /// Multiplicative inverse via a^(2^M - 2). Precondition: a != 0.
  static value_type inv(value_type a) {
    NAB_ASSERT((a & mask) != 0, "gf2m::inv of zero");
    return pow(a, order - 2);
  }

  /// a / b. Precondition: b != 0.
  static value_type div(value_type a, value_type b) { return mul(a, inv(b)); }
};

}  // namespace nab::gf
