#pragma once

#include <cstdint>

namespace nab::gf {

/// The finite field GF(2^16) with primitive polynomial
/// x^16 + x^12 + x^3 + x + 1 (0x1100B) and generator alpha = 2.
///
/// This is the default coefficient field for NAB's equality-check coding
/// matrices: the paper draws coefficients from GF(2^{L/rho}); we draw them
/// from GF(2^16) and apply them slice-wise to L/rho-bit symbols (the standard
/// random-linear-network-coding realization — see DESIGN.md §2). Log/antilog
/// tables (128 KiB + 64 KiB) are built on first use.
class gf2_16 {
 public:
  using value_type = std::uint16_t;

  static constexpr unsigned bits = 16;
  static constexpr std::uint64_t order = 65536;

  static constexpr value_type zero() { return 0; }
  static constexpr value_type one() { return 1; }

  static constexpr value_type add(value_type a, value_type b) {
    return static_cast<value_type>(a ^ b);
  }
  static constexpr value_type sub(value_type a, value_type b) { return add(a, b); }
  static constexpr value_type neg(value_type a) { return a; }

  static value_type mul(value_type a, value_type b);

  /// Multiplicative inverse. Precondition: a != 0.
  static value_type inv(value_type a);

  /// a / b. Precondition: b != 0.
  static value_type div(value_type a, value_type b);

  static value_type pow(value_type a, std::uint64_t e);
};

}  // namespace nab::gf
