#pragma once

#include <cstddef>
#include <cstdint>

namespace nab::gf {

/// Row-kernel implementation backends for gf2_16::axpy / gf2_16::scale.
/// `scalar` is the portable loop and the bit-exact reference; the SIMD
/// backends run the standard 4-bit half-table multiply (GF-Complete /
/// sparsenc's `multiply_add_region` trick) over the two byte planes of each
/// 16-bit word — x86 `pshufb` (SSSE3, widened on AVX2) or AArch64 `vtbl`.
/// Every backend produces identical bytes and identical obs counters; only
/// throughput differs.
enum class gf_backend : int { scalar, ssse3, avx2, neon };

namespace detail {

/// Log/antilog tables for GF(2^16) (128 KiB + 256 KiB), computed at compile
/// time. exp is doubled (and padded) so mul can skip a modulo; the single
/// constinit instance lives in gf2_16.cpp, so table access is a plain load —
/// no initialization guard on any fast path.
struct gf2_16_tables {
  std::uint16_t log[65536];
  std::uint16_t exp[131072];
  bool primitive = false;

  constexpr gf2_16_tables() : log(), exp() {
    constexpr unsigned poly = 0x1100B;
    unsigned x = 1;
    for (unsigned i = 0; i < 65535; ++i) {
      exp[i] = static_cast<std::uint16_t>(x);
      exp[i + 65535] = static_cast<std::uint16_t>(x);
      log[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= poly;
    }
    primitive = x == 1;  // 0x1100B must be primitive over GF(2^16)
    log[0] = 0;
    exp[131070] = exp[65535];
    exp[131071] = exp[65536];
  }
};

extern const gf2_16_tables gf2_16_t;

}  // namespace detail

/// The finite field GF(2^16) with primitive polynomial
/// x^16 + x^12 + x^3 + x + 1 (0x1100B) and generator alpha = 2.
///
/// This is the default coefficient field for NAB's equality-check coding
/// matrices: the paper draws coefficients from GF(2^{L/rho}); we draw them
/// from GF(2^16) and apply them slice-wise to L/rho-bit symbols (the standard
/// random-linear-network-coding realization — see DESIGN.md §2).
///
/// Scalar ops are header-inline over compile-time tables; the row kernels
/// (axpy/scale) additionally hoist the scalar's log lookup out of the loop —
/// Gaussian elimination in gf/linalg.hpp, the batched certifier in
/// core/certify.cpp, and core::coding_scheme::encode all run on them.
class gf2_16 {
 public:
  using value_type = std::uint16_t;

  static constexpr unsigned bits = 16;
  static constexpr std::uint64_t order = 65536;

  static constexpr value_type zero() { return 0; }
  static constexpr value_type one() { return 1; }

  static constexpr value_type add(value_type a, value_type b) {
    return static_cast<value_type>(a ^ b);
  }
  static constexpr value_type sub(value_type a, value_type b) { return add(a, b); }
  static constexpr value_type neg(value_type a) { return a; }

  static value_type mul(value_type a, value_type b) {
    if (a == 0 || b == 0) return 0;
    const auto& tab = detail::gf2_16_t;
    return tab.exp[static_cast<unsigned>(tab.log[a]) + tab.log[b]];
  }

  /// Multiplicative inverse. Precondition: a != 0.
  static value_type inv(value_type a);

  /// a / b. Precondition: b != 0.
  static value_type div(value_type a, value_type b);

  static value_type pow(value_type a, std::uint64_t e);

  /// dst[i] += coeff * src[i] for i in [0, n). The workhorse of row
  /// elimination; dispatches to the active backend (gf2_16_kernels.cpp).
  ///
  /// Counter contract: `gf_axpy_words` counts words PRESENTED (n per call,
  /// before the coeff == 0 early-out), not words multiplied — the SIMD
  /// paths branch on neither coeff nor the per-word s == 0 skip, and the
  /// deterministic-counter byte-identity contract (jobs-1-vs-N,
  /// pooled-vs-unpooled, scalar-vs-SIMD) requires one definition that every
  /// backend can report identically.
  static void axpy(value_type* dst, const value_type* src, value_type coeff,
                   std::size_t n);

  /// v[i] *= coeff for i in [0, n). Same words-presented counter contract
  /// as axpy (`gf_scale_words` counts n even for coeff 0 / 1).
  static void scale(value_type* v, value_type coeff, std::size_t n);

  /// The active row-kernel backend. Selected once on first kernel use:
  /// NAB_GF_BACKEND=scalar|ssse3|avx2|neon forces a backend (silently
  /// falling back to the best supported one when this CPU lacks it);
  /// unset/auto picks the widest supported instruction set.
  static gf_backend backend();

  /// Forces a backend at runtime (tests; the env override uses the same
  /// path). Returns false — leaving the active backend unchanged — when
  /// this build/CPU does not support `b`. Not safe to call concurrently
  /// with in-flight kernels; tests switch backends only between operations.
  static bool set_backend(gf_backend b);

  static const char* backend_name(gf_backend b);
};

}  // namespace nab::gf
