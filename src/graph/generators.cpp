#include "graph/generators.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nab::graph {

digraph complete(int n, capacity_t cap) {
  digraph g(n);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) g.add_bidirectional(u, v, cap);
  return g;
}

digraph paper_fig1a() {
  digraph g(4);
  g.add_bidirectional(0, 1, 1);
  g.add_bidirectional(0, 2, 1);
  g.add_bidirectional(0, 3, 1);
  g.add_bidirectional(1, 2, 1);
  g.add_bidirectional(2, 3, 1);
  return g;
}

digraph paper_fig1b() {
  digraph g = paper_fig1a();
  g.remove_edge_pair(1, 2);
  return g;
}

digraph paper_fig2() {
  digraph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  return g;
}

digraph ring(int n, capacity_t cap) {
  NAB_ASSERT(n >= 3, "ring needs at least 3 nodes");
  digraph g(n);
  for (node_id v = 0; v < n; ++v) g.add_bidirectional(v, (v + 1) % n, cap);
  return g;
}

digraph erdos_renyi(int n, double p, capacity_t cap_lo, capacity_t cap_hi, rng& rand) {
  NAB_ASSERT(n >= 2, "erdos_renyi needs at least 2 nodes");
  NAB_ASSERT(cap_lo >= 1 && cap_lo <= cap_hi, "bad capacity range");
  digraph g(n);
  for (node_id v = 0; v < n; ++v) g.add_bidirectional(v, (v + 1) % n, cap_lo);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = 0; v < n; ++v) {
      if (u == v || g.has_edge(u, v)) continue;
      if (rand.chance(p)) g.add_edge(u, v, rand.between(cap_lo, cap_hi));
    }
  return g;
}

digraph random_regular(int n, int d, capacity_t cap_lo, capacity_t cap_hi, rng& rand) {
  NAB_ASSERT(d >= 2 && d < n, "random_regular needs 2 <= d < n");
  digraph g(n);
  // Hamiltonian cycle gives everyone degree 2, then random sweeps add pairs
  // between low-degree nodes until everyone reaches d (best effort).
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  auto connect = [&](node_id u, node_id v) {
    g.add_bidirectional(u, v, rand.between(cap_lo, cap_hi));
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  };
  for (node_id v = 0; v < n; ++v) connect(v, (v + 1) % n);
  for (int sweep = 0; sweep < 8 * n * d; ++sweep) {
    std::vector<node_id> low;
    for (node_id v = 0; v < n; ++v)
      if (degree[static_cast<std::size_t>(v)] < d) low.push_back(v);
    if (low.size() < 2) break;
    const node_id u = low[rand.below(low.size())];
    const node_id v = low[rand.below(low.size())];
    if (u == v || g.has_edge(u, v)) continue;
    connect(u, v);
  }
  return g;
}

digraph dumbbell(int n, capacity_t fat, capacity_t thin) {
  NAB_ASSERT(n >= 6 && n % 2 == 0, "dumbbell needs even n >= 6");
  NAB_ASSERT(fat >= thin && thin >= 1, "dumbbell needs fat >= thin >= 1");
  const int half = n / 2;
  digraph g(n);
  for (node_id u = 0; u < half; ++u)
    for (node_id v = u + 1; v < half; ++v) g.add_bidirectional(u, v, fat);
  for (node_id u = half; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) g.add_bidirectional(u, v, fat);
  // Bridges: node i in the left cluster pairs with node half+i on the right,
  // so the bridge count (= half) keeps connectivity high while each bridge
  // stays thin.
  for (int i = 0; i < half; ++i) g.add_bidirectional(i, half + i, thin);
  return g;
}

digraph hypercube(int dim, capacity_t cap) {
  NAB_ASSERT(dim >= 2 && dim <= 16, "hypercube needs 2 <= dim <= 16");
  NAB_ASSERT(cap >= 1, "hypercube needs cap >= 1");
  const int n = 1 << dim;
  digraph g(n);
  for (node_id u = 0; u < n; ++u)
    for (int b = 0; b < dim; ++b) {
      const node_id v = u ^ (1 << b);
      if (u < v) g.add_bidirectional(u, v, cap);
    }
  return g;
}

digraph clustered_wan(int clusters, int cluster_size, capacity_t intra,
                      capacity_t inter, int trunks) {
  NAB_ASSERT(clusters >= 2 && cluster_size >= 2, "clustered_wan needs >= 2x2 nodes");
  NAB_ASSERT(intra >= inter && inter >= 1, "clustered_wan needs intra >= inter >= 1");
  NAB_ASSERT(trunks >= 1 && trunks <= cluster_size, "trunks must fit the cluster");
  const int n = clusters * cluster_size;
  digraph g(n);
  auto id = [&](int c, int i) { return c * cluster_size + i; };
  for (int c = 0; c < clusters; ++c)
    for (int i = 0; i < cluster_size; ++i)
      for (int j = i + 1; j < cluster_size; ++j)
        g.add_bidirectional(id(c, i), id(c, j), intra);
  // Each cluster pair gets `trunks` WAN links; the round-robin endpoint
  // offset spreads trunk duty over all cluster members, keeping vertex
  // connectivity at min(cluster_size - 1 + trunks', ...) rather than
  // funneling every trunk through one gateway node.
  int offset = 0;
  for (int a = 0; a < clusters; ++a)
    for (int b = a + 1; b < clusters; ++b) {
      for (int t = 0; t < trunks; ++t) {
        const int i = (offset + t) % cluster_size;
        const int j = (offset + t + 1) % cluster_size;
        g.add_bidirectional(id(a, i), id(b, j), inter);
      }
      ++offset;
    }
  return g;
}

digraph complete_with_weak_link(int n, capacity_t fat) {
  NAB_ASSERT(n >= 4 && fat >= 1, "complete_with_weak_link needs n >= 4, fat >= 1");
  digraph g(n);
  for (node_id u = 0; u < n; ++u)
    for (node_id v = u + 1; v < n; ++v) {
      const bool weak = (u == n - 2 && v == n - 1);
      g.add_bidirectional(u, v, weak ? 1 : fat);
    }
  return g;
}

digraph path_of_cliques(int hops, int cluster, capacity_t cap) {
  NAB_ASSERT(hops >= 1 && cluster >= 1, "path_of_cliques needs positive sizes");
  const int n = hops * cluster;
  digraph g(n);
  auto id = [&](int hop, int i) { return hop * cluster + i; };
  for (int h = 0; h < hops; ++h)
    for (int i = 0; i < cluster; ++i)
      for (int j = i + 1; j < cluster; ++j) g.add_bidirectional(id(h, i), id(h, j), cap);
  for (int h = 0; h + 1 < hops; ++h)
    for (int i = 0; i < cluster; ++i)
      for (int j = 0; j < cluster; ++j) g.add_bidirectional(id(h, i), id(h + 1, j), cap);
  return g;
}

}  // namespace nab::graph
