#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>

#include "graph/maxflow.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::graph {
namespace {

/// Builds the node-split graph: node v becomes v_in = 2v, v_out = 2v+1 with
/// an internal arc of capacity 1 (except s, t whose internal capacity is
/// `terminal_cap` — "infinite" for exact connectivity, k for the capped
/// decision variant); each original edge u->v becomes u_out -> v_in with
/// capacity 1. Max-flow s_out -> t_in then counts internally node-disjoint
/// paths (up to terminal_cap).
digraph split_graph(const digraph& g, node_id s, node_id t, capacity_t terminal_cap) {
  const int n = g.universe();
  digraph sp(2 * n);
  for (node_id v = 0; v < n; ++v) {
    if (!g.is_active(v)) {
      sp.remove_node(2 * v);
      sp.remove_node(2 * v + 1);
      continue;
    }
    sp.add_edge(2 * v, 2 * v + 1, (v == s || v == t) ? terminal_cap : 1);
  }
  for (const edge& e : g.edges()) sp.add_edge(2 * e.from + 1, 2 * e.to, 1);
  return sp;
}

digraph split_graph(const digraph& g, node_id s, node_id t) {
  return split_graph(g, s, t, static_cast<capacity_t>(g.universe()) + 1);
}

}  // namespace

int vertex_connectivity(const digraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t) && s != t,
             "vertex_connectivity needs distinct active endpoints");
  const digraph sp = split_graph(g, s, t);
  return static_cast<int>(min_cut_value(sp, 2 * s + 1, 2 * t));
}

int global_vertex_connectivity(const digraph& g) {
  const std::vector<node_id> nodes = g.active_nodes();
  NAB_ASSERT(nodes.size() >= 2, "global_vertex_connectivity needs >= 2 nodes");
  int best = std::numeric_limits<int>::max();
  for (node_id s : nodes)
    for (node_id t : nodes) {
      if (s == t) continue;
      best = std::min(best, vertex_connectivity(g, s, t));
    }
  return best;
}

bool global_vertex_connectivity_at_least(const digraph& g, int k) {
  if (k <= 0) return true;
  const std::vector<node_id> nodes = g.active_nodes();
  NAB_ASSERT(nodes.size() >= 2, "global_vertex_connectivity needs >= 2 nodes");
  // Capped pair probe: route the flow s_in -> t_out so it must traverse
  // both capacity-k terminal arcs — the value is then min(k, kappa(s, t))
  // and Dinic stops after at most k augmentations instead of computing the
  // full pair connectivity.
  auto pair_at_least = [&](node_id s, node_id t) {
    const digraph sp = split_graph(g, s, t, static_cast<capacity_t>(k));
    return min_cut_value(sp, 2 * s, 2 * t + 1) >= k;
  };
  // Pivot reduction (Even-Tarjan style): fix any k pivots. A vertex cut C
  // with |C| < k misses at least one pivot v, and v then lies on one side
  // of C, so kappa(v, u) < k or kappa(u, v) < k for some u (the deficient
  // pair is non-adjacent, where the capped probe is exact). Checking every
  // (pivot, other) pair in both directions therefore decides kappa >= k
  // with 2*k*n flows instead of n*(n-1) — only worth it when that is
  // actually fewer.
  const std::size_t n = nodes.size();
  if (2 * static_cast<std::size_t>(k) < n - 1) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i)
      for (node_id u : nodes) {
        if (u == nodes[i]) continue;
        if (!pair_at_least(nodes[i], u) || !pair_at_least(u, nodes[i]))
          return false;
      }
    return true;
  }
  for (node_id s : nodes)
    for (node_id t : nodes) {
      if (s == t) continue;
      if (!pair_at_least(s, t)) return false;
    }
  return true;
}

std::vector<std::vector<node_id>> node_disjoint_paths(const digraph& g, node_id s,
                                                      node_id t, int k) {
  NAB_ASSERT(k > 0, "node_disjoint_paths requires k > 0");
  const int n = g.universe();
  const digraph sp = split_graph(g, s, t);
  const flow_result fr = max_flow(sp, 2 * s + 1, 2 * t);
  if (fr.value < k)
    throw error("node_disjoint_paths: only " + std::to_string(fr.value) +
                " disjoint paths exist, need " + std::to_string(k));

  // Decompose the unit flow into paths by walking flow-carrying arcs.
  // remaining[u][v] over the split graph.
  std::vector<capacity_t> remaining = fr.flow;
  const int sn = 2 * n;
  auto rem = [&](int u, int v) -> capacity_t& {
    return remaining[static_cast<std::size_t>(u) * sn + v];
  };

  std::vector<std::vector<node_id>> paths;
  for (int p = 0; p < k; ++p) {
    std::vector<node_id> path{s};
    int cur = 2 * s + 1;  // s_out
    const int goal = 2 * t;
    int guard = 0;
    while (cur != goal) {
      NAB_ASSERT(++guard <= 4 * n + 4, "flow decomposition failed to terminate");
      int next = -1;
      for (int v = 0; v < sn; ++v) {
        if (rem(cur, v) > 0) {
          next = v;
          break;
        }
      }
      NAB_ASSERT(next >= 0, "flow decomposition: dead end");
      rem(cur, next) -= 1;
      // Arrived at some v_in: record original node, hop to v_out.
      if (next % 2 == 0) {
        const node_id orig = next / 2;
        path.push_back(orig);
        if (next == goal) break;
        cur = next;  // v_in; the internal arc v_in -> v_out carries the flow
      } else {
        cur = next;
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

disjoint_path_finder::disjoint_path_finder(const digraph& g)
    : n_(g.universe()),
      terminal_cap_(static_cast<capacity_t>(g.universe()) + 1),
      net_(2 * g.universe()),
      internal_idx_(static_cast<std::size_t>(g.universe()), 0),
      active_(static_cast<std::size_t>(g.universe()), false),
      flow_adj_(static_cast<std::size_t>(2 * g.universe())) {
  // Replicate the exact arc insertion order the one-shot path uses: max_flow
  // iterates split_graph(g, s, t).edges(), which is row-major over split
  // node ids — row 2v holds the internal arc (2v, 2v+1), row 2v+1 the cross
  // arcs (2v+1, 2u) for ascending out-neighbors u. Terminal caps are
  // patched in per find().
  for (node_id v = 0; v < n_; ++v) {
    if (!g.is_active(v)) continue;
    active_[static_cast<std::size_t>(v)] = true;
    net_.add_arc(2 * v, 2 * v + 1, 1);
    internal_idx_[static_cast<std::size_t>(v)] =
        net_.adj[static_cast<std::size_t>(2 * v)].size() - 1;
    for (node_id u = 0; u < n_; ++u)
      if (u != v && g.is_active(u) && g.cap(v, u) > 0) net_.add_arc(2 * v + 1, 2 * u, 1);
  }
}

std::vector<std::vector<node_id>> disjoint_path_finder::find(node_id s, node_id t, int k) {
  NAB_ASSERT(k > 0, "node_disjoint_paths requires k > 0");
  NAB_ASSERT(active_[static_cast<std::size_t>(s)] && active_[static_cast<std::size_t>(t)],
             "disjoint_path_finder endpoints must be active");
  // Reset residual capacities: forward arcs back to 1, reverse arcs to 0,
  // the two terminal internal arcs uncapped (value beyond k is harmless and
  // matches the one-shot decomposition byte-for-byte).
  for (auto& row : net_.adj)
    for (auto& a : row) a.cap = a.forward ? 1 : 0;
  net_.adj[static_cast<std::size_t>(2 * s)][internal_idx_[static_cast<std::size_t>(s)]].cap =
      terminal_cap_;
  net_.adj[static_cast<std::size_t>(2 * t)][internal_idx_[static_cast<std::size_t>(t)]].cap =
      terminal_cap_;

  const capacity_t value = net_.run(2 * s + 1, 2 * t);
  if (value < k)
    throw error("node_disjoint_paths: only " + std::to_string(value) +
                " disjoint paths exist, need " + std::to_string(k));

  // Flow rows for decomposition: a forward arc's pushed flow is its reverse
  // arc's residual (reverse arcs start at 0). Arcs within a row are already
  // in ascending head order, so the walk below scans candidates in the same
  // ascending split-id order as the one-shot dense-matrix walk.
  const int sn = 2 * n_;
  for (int su = 0; su < sn; ++su) {
    auto& row = flow_adj_[static_cast<std::size_t>(su)];
    row.clear();
    for (const auto& a : net_.adj[static_cast<std::size_t>(su)]) {
      if (!a.forward) continue;
      const capacity_t pushed = net_.adj[static_cast<std::size_t>(a.to)][a.rev].cap;
      if (pushed > 0) row.emplace_back(a.to, pushed);
    }
  }

  std::vector<std::vector<node_id>> paths;
  for (int p = 0; p < k; ++p) {
    std::vector<node_id> path{s};
    int cur = 2 * s + 1;  // s_out
    const int goal = 2 * t;
    int guard = 0;
    while (cur != goal) {
      NAB_ASSERT(++guard <= 4 * n_ + 4, "flow decomposition failed to terminate");
      std::pair<int, capacity_t>* hop = nullptr;
      for (auto& cand : flow_adj_[static_cast<std::size_t>(cur)]) {
        if (cand.second > 0) {
          hop = &cand;
          break;
        }
      }
      NAB_ASSERT(hop != nullptr, "flow decomposition: dead end");
      hop->second -= 1;
      const int next = hop->first;
      // Arrived at some v_in: record original node, hop to v_out.
      if (next % 2 == 0) {
        path.push_back(next / 2);
        if (next == goal) break;
        cur = next;  // v_in; the internal arc v_in -> v_out carries the flow
      } else {
        cur = next;
      }
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace nab::graph
