#pragma once

#include <limits>
#include <queue>
#include <vector>

#include "graph/digraph.hpp"

namespace nab::graph::detail {

/// Residual-graph representation for Dinic's algorithm — the flow core
/// shared by maxflow.cpp (one-shot runs) and connectivity.cpp (the reusable
/// split-network route builder, which re-runs the same arc structure with
/// per-pair capacities). Behavior is deliberately deterministic: arcs are
/// explored in insertion order, so identical (arc order, capacities) inputs
/// produce identical flows on every run.
struct dinic {
  struct arc {
    int to;
    capacity_t cap;     // residual capacity
    std::size_t rev;    // index of the reverse arc in adj[to]
    bool forward;       // true for original-direction arcs (flow extraction)
    node_id orig_from;  // original endpoints for flow extraction
    node_id orig_to;
  };

  explicit dinic(int n) : adj(static_cast<std::size_t>(n)), level(n), iter(n) {}

  std::vector<std::vector<arc>> adj;
  std::vector<int> level;
  std::vector<std::size_t> iter;
  std::uint64_t augmenting_paths = 0;  ///< dfs successes across run() calls

  void add_arc(node_id u, node_id v, capacity_t cap) {
    adj[static_cast<std::size_t>(u)].push_back(
        {v, cap, adj[static_cast<std::size_t>(v)].size(), true, u, v});
    adj[static_cast<std::size_t>(v)].push_back(
        {u, 0, adj[static_cast<std::size_t>(u)].size() - 1, false, u, v});
  }

  /// Adds an undirected edge: both arcs get full capacity and act as each
  /// other's residual.
  void add_undirected_arc(node_id u, node_id v, capacity_t cap) {
    adj[static_cast<std::size_t>(u)].push_back(
        {v, cap, adj[static_cast<std::size_t>(v)].size(), true, u, v});
    adj[static_cast<std::size_t>(v)].push_back(
        {u, cap, adj[static_cast<std::size_t>(u)].size() - 1, true, v, u});
  }

  bool bfs(int s, int t) {
    std::fill(level.begin(), level.end(), -1);
    std::queue<int> q;
    level[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const arc& a : adj[static_cast<std::size_t>(v)]) {
        if (a.cap > 0 && level[static_cast<std::size_t>(a.to)] < 0) {
          level[static_cast<std::size_t>(a.to)] = level[static_cast<std::size_t>(v)] + 1;
          q.push(a.to);
        }
      }
    }
    return level[static_cast<std::size_t>(t)] >= 0;
  }

  capacity_t dfs(int v, int t, capacity_t f) {
    if (v == t) return f;
    for (std::size_t& i = iter[static_cast<std::size_t>(v)];
         i < adj[static_cast<std::size_t>(v)].size(); ++i) {
      arc& a = adj[static_cast<std::size_t>(v)][i];
      if (a.cap <= 0 || level[static_cast<std::size_t>(v)] + 1 != level[static_cast<std::size_t>(a.to)])
        continue;
      const capacity_t d = dfs(a.to, t, std::min(f, a.cap));
      if (d > 0) {
        a.cap -= d;
        adj[static_cast<std::size_t>(a.to)][a.rev].cap += d;
        return d;
      }
    }
    return 0;
  }

  capacity_t run(int s, int t) {
    capacity_t total = 0;
    constexpr capacity_t inf = std::numeric_limits<capacity_t>::max();
    while (bfs(s, t)) {
      std::fill(iter.begin(), iter.end(), 0);
      while (true) {
        const capacity_t f = dfs(s, t, inf);
        if (f == 0) break;
        total += f;
        ++augmenting_paths;
      }
    }
    return total;
  }

  std::vector<bool> residual_reachable(int s) const {
    std::vector<bool> seen(adj.size(), false);
    std::queue<int> q;
    seen[static_cast<std::size_t>(s)] = true;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const arc& a : adj[static_cast<std::size_t>(v)]) {
        if (a.cap > 0 && !seen[static_cast<std::size_t>(a.to)]) {
          seen[static_cast<std::size_t>(a.to)] = true;
          q.push(a.to);
        }
      }
    }
    return seen;
  }
};

}  // namespace nab::graph::detail
