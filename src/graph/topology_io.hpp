#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Parses a plain-text topology description into a digraph.
///
/// Format (one directive per line; '#' starts a comment):
///   nodes <n>
///   edge <u> <v> <capacity>      # directed link u -> v
///   biedge <u> <v> <capacity>    # both directions
///
/// Throws nab::error on malformed input (unknown directive, ids out of
/// range, non-positive capacity, missing `nodes` line).
digraph parse_topology(std::istream& in);

/// Convenience overload for in-memory text.
digraph parse_topology_text(const std::string& text);

/// Serializes the active subgraph in the same format (directed `edge`
/// lines only — round-trips through parse_topology).
std::string format_topology(const digraph& g);

}  // namespace nab::graph
