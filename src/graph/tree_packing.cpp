#include "graph/tree_packing.hpp"

#include <algorithm>
#include <numeric>

#include "graph/maxflow.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::graph {

std::vector<node_id> spanning_tree::parents(int n) const {
  std::vector<node_id> p(static_cast<std::size_t>(n), -1);
  for (const edge& e : edges) p[static_cast<std::size_t>(e.to)] = e.from;
  return p;
}

namespace {

/// Rebuilds a digraph from a residual capacity matrix over `nodes`.
digraph from_matrix(int universe, const std::vector<node_id>& nodes,
                    const std::vector<capacity_t>& rem) {
  digraph g(universe);
  std::vector<bool> keep(static_cast<std::size_t>(universe), false);
  for (node_id v : nodes) keep[static_cast<std::size_t>(v)] = true;
  for (node_id v = 0; v < universe; ++v)
    if (!keep[static_cast<std::size_t>(v)]) g.remove_node(v);
  for (node_id u : nodes)
    for (node_id v : nodes) {
      const capacity_t c = rem[static_cast<std::size_t>(u) * universe + v];
      if (c > 0) g.add_edge(u, v, c);
    }
  return g;
}

/// True iff MINCUT(root, w) >= need for every active w in the graph defined
/// by the residual matrix `rem` (the Lovász safety invariant).
bool connectivity_at_least(int universe, const std::vector<node_id>& nodes,
                           const std::vector<capacity_t>& rem, node_id root, int need) {
  if (need <= 0) return true;
  const digraph g = from_matrix(universe, nodes, rem);
  for (node_id w : nodes) {
    if (w == root) continue;
    if (min_cut_value(g, root, w) < need) return false;
  }
  return true;
}

}  // namespace

namespace {

/// Cheap randomized packing: grows each tree Prim-style over residual
/// capacities without safety checks. Fails (returns empty) when a greedy
/// choice strands a later tree; the caller falls back to the exact Lovász
/// construction. On capacity-rich graphs this succeeds almost always and is
/// orders of magnitude faster than running the safety max-flows.
std::vector<spanning_tree> greedy_pack(const digraph& g, node_id root, int k,
                                       rng& rand) {
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();
  std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
  for (const edge& e : g.edges()) rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
  auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
    return rem[static_cast<std::size_t>(u) * n + v];
  };

  std::vector<spanning_tree> trees;
  for (int t = 0; t < k; ++t) {
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    for (std::size_t grown = 1; grown < nodes.size(); ++grown) {
      // Prefer the crossing edges with the most residual capacity (random
      // among ties): spending scarce links early is what strands later
      // trees, so this bias lifts the greedy success rate on dense graphs
      // to near-certainty and keeps the Lovász fallback cold.
      std::vector<edge> crossing;
      capacity_t best_rem = 0;
      for (node_id u : nodes) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        for (node_id v : nodes) {
          if (in_tree[static_cast<std::size_t>(v)]) continue;
          const capacity_t r = rem_at(u, v);
          if (r <= 0 || r < best_rem) continue;
          if (r > best_rem) {
            best_rem = r;
            crossing.clear();
          }
          crossing.push_back({u, v, 1});
        }
      }
      if (crossing.empty()) return {};
      const edge pick = crossing[rand.below(crossing.size())];
      rem_at(pick.from, pick.to) -= 1;
      tree.edges.push_back(pick);
      in_tree[static_cast<std::size_t>(pick.to)] = true;
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

namespace {

/// Exact packing for complete graphs with uniform capacity c: the classic
/// construction uses arborescences T_j = {root -> j} + {j -> w : w != root, j}
/// (depth 2). Distinct T_j are edge-disjoint, and c copies of each respect
/// every capacity, giving the full gamma = c * (n - 1) packing in O(n^2) —
/// no flows at all. Returns empty when g is not complete-uniform.
std::vector<spanning_tree> complete_uniform_pack(const digraph& g, node_id root,
                                                 int k) {
  const std::vector<node_id> nodes = g.active_nodes();
  if (nodes.size() < 2) return {};
  const capacity_t c = g.cap(nodes[0], nodes[1]);
  if (c <= 0) return {};
  for (node_id u : nodes)
    for (node_id v : nodes)
      if (u != v && g.cap(u, v) != c) return {};
  if (k > c * static_cast<capacity_t>(nodes.size() - 1)) return {};

  std::vector<node_id> hubs;
  for (node_id v : nodes)
    if (v != root) hubs.push_back(v);

  std::vector<spanning_tree> trees;
  trees.reserve(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) {
    // Cycle through the hubs; copy number t / (n - 1) of each stays <= c.
    const node_id j = hubs[static_cast<std::size_t>(t) % hubs.size()];
    spanning_tree tree;
    tree.edges.push_back({root, j, 1});
    for (node_id w : nodes)
      if (w != root && w != j) tree.edges.push_back({j, w, 1});
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

std::vector<spanning_tree> pack_arborescences(const digraph& g, node_id root, int k) {
  NAB_ASSERT(g.is_active(root), "pack_arborescences root must be active");
  NAB_ASSERT(k > 0, "pack_arborescences requires k > 0");
  if (broadcast_mincut(g, root) < k)
    throw error("pack_arborescences: mincut from root is below k=" + std::to_string(k));

  // Closed-form packing for complete-uniform graphs (K_n presets and most
  // pre-dispute instance graphs) — the greedy/Lovász machinery never runs.
  if (auto trees = complete_uniform_pack(g, root, k); !trees.empty()) return trees;

  // Fast path: a few randomized greedy attempts (deterministically seeded).
  rng rand(0x9ACC + static_cast<std::uint64_t>(k) * 131 + static_cast<std::uint64_t>(root));
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto trees = greedy_pack(g, root, k, rand);
    if (!trees.empty()) return trees;
  }
  return pack_arborescences_lovasz(g, root, k);
}

std::vector<spanning_tree> pack_arborescences_lovasz(const digraph& g, node_id root,
                                                     int k) {
  NAB_ASSERT(g.is_active(root), "pack_arborescences root must be active");
  NAB_ASSERT(k > 0, "pack_arborescences requires k > 0");
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();
  if (broadcast_mincut(g, root) < k)
    throw error("pack_arborescences: mincut from root is below k=" + std::to_string(k));

  // Residual capacities; each tree consumes one unit per edge it uses.
  std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
  for (const edge& e : g.edges()) rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
  auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
    return rem[static_cast<std::size_t>(u) * n + v];
  };

  std::vector<spanning_tree> trees;
  for (int t = 0; t < k; ++t) {
    const int remaining_after = k - t - 1;  // trees still to pack after this one
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    std::size_t tree_size = 1;

    while (tree_size < nodes.size()) {
      bool extended = false;
      for (node_id u : nodes) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        for (node_id v : nodes) {
          if (in_tree[static_cast<std::size_t>(v)] || rem_at(u, v) <= 0) continue;
          // Tentatively take (u, v); keep it iff the safety invariant holds:
          // every node must retain `remaining_after + 1 - 1` ... i.e. all
          // still-unpacked trees (including the rest of this one, which only
          // needs reachability of out-of-tree nodes) stay feasible. The
          // Lovász condition is MINCUT(root, w) >= remaining_after for all w
          // in the residual graph after removing (u, v).
          rem_at(u, v) -= 1;
          if (connectivity_at_least(n, nodes, rem, root, remaining_after)) {
            tree.edges.push_back({u, v, 1});
            in_tree[static_cast<std::size_t>(v)] = true;
            ++tree_size;
            extended = true;
            break;
          }
          rem_at(u, v) += 1;  // unsafe; restore
        }
        if (extended) break;
      }
      // Edmonds/Lovász guarantee a safe edge exists; failing here means the
      // feasibility precondition was violated.
      NAB_ASSERT(extended, "pack_arborescences: no safe edge found");
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

std::vector<spanning_tree> pack_undirected_trees(const ugraph& g, int k, rng& rand,
                                                 int attempts) {
  NAB_ASSERT(k > 0, "pack_undirected_trees requires k > 0");
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();

  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
    for (const edge& e : g.edges()) {
      rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
      rem[static_cast<std::size_t>(e.to) * n + e.from] = e.cap;
    }
    auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
      return rem[static_cast<std::size_t>(u) * n + v];
    };

    std::vector<spanning_tree> trees;
    bool ok = true;
    for (int t = 0; t < k && ok; ++t) {
      // Randomized Prim-style growth over remaining multiplicities.
      spanning_tree tree;
      std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
      std::vector<node_id> frontier{nodes[rand.below(nodes.size())]};
      in_tree[static_cast<std::size_t>(frontier[0])] = true;
      std::size_t tree_size = 1;
      while (tree_size < nodes.size()) {
        // Collect all crossing edges with remaining multiplicity.
        std::vector<edge> crossing;
        for (node_id u : nodes) {
          if (!in_tree[static_cast<std::size_t>(u)]) continue;
          for (node_id v : nodes)
            if (!in_tree[static_cast<std::size_t>(v)] && rem_at(u, v) > 0)
              crossing.push_back({u, v, 1});
        }
        if (crossing.empty()) {
          ok = false;
          break;
        }
        const edge pick = crossing[rand.below(crossing.size())];
        rem_at(pick.from, pick.to) -= 1;
        rem_at(pick.to, pick.from) -= 1;
        tree.edges.push_back(pick);
        in_tree[static_cast<std::size_t>(pick.to)] = true;
        ++tree_size;
      }
      if (ok) trees.push_back(std::move(tree));
    }
    if (ok) return trees;
  }
  return {};
}

}  // namespace nab::graph
