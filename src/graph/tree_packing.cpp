#include "graph/tree_packing.hpp"

#include <algorithm>
#include <numeric>

#include "graph/maxflow.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::graph {

std::vector<node_id> spanning_tree::parents(int n) const {
  std::vector<node_id> p(static_cast<std::size_t>(n), -1);
  for (const edge& e : edges) p[static_cast<std::size_t>(e.to)] = e.from;
  return p;
}

namespace {

/// Rebuilds a digraph from a residual capacity matrix over `nodes`.
/// (Reference path only.)
digraph from_matrix(int universe, const std::vector<node_id>& nodes,
                    const std::vector<capacity_t>& rem) {
  digraph g(universe);
  std::vector<bool> keep(static_cast<std::size_t>(universe), false);
  for (node_id v : nodes) keep[static_cast<std::size_t>(v)] = true;
  for (node_id v = 0; v < universe; ++v)
    if (!keep[static_cast<std::size_t>(v)]) g.remove_node(v);
  for (node_id u : nodes)
    for (node_id v : nodes) {
      const capacity_t c = rem[static_cast<std::size_t>(u) * universe + v];
      if (c > 0) g.add_edge(u, v, c);
    }
  return g;
}

/// True iff MINCUT(root, w) >= need for every active w in the graph defined
/// by the residual matrix `rem` (the Lovász safety invariant), evaluated
/// with from-scratch max-flows. (Reference path only.)
bool connectivity_at_least(int universe, const std::vector<node_id>& nodes,
                           const std::vector<capacity_t>& rem, node_id root, int need) {
  if (need <= 0) return true;
  const digraph g = from_matrix(universe, nodes, rem);
  for (node_id w : nodes) {
    if (w == root) continue;
    if (min_cut_value(g, root, w) < need) return false;
  }
  return true;
}

}  // namespace

namespace {

/// Per-sink flow certificates over a shared residual capacity matrix: for
/// every sink w the packer maintains a feasible root->w flow whose value
/// never drops below the current safety requirement. The Lovász safe-edge
/// test then costs O(1) per sink in the common case (the certificate does
/// not use the removed unit); when it does, exactly one unit of flow is
/// canceled along its path and at most one BFS augmentation repairs the
/// certificate. When the repair fails the flow is maximum (no augmenting
/// path), so MINCUT(root, w) < need exactly — the predicate is exact and the
/// construction emits the same trees as the from-scratch reference.
class flow_certifier {
 public:
  flow_certifier(const digraph& g, node_id root, pack_stats* stats)
      : n_(g.universe()),
        root_(root),
        nodes_(g.active_nodes()),
        rem_(static_cast<std::size_t>(n_) * n_, 0),
        out_adj_(static_cast<std::size_t>(n_)),
        in_adj_(static_cast<std::size_t>(n_)),
        flow_(static_cast<std::size_t>(n_)),
        value_(static_cast<std::size_t>(n_), 0),
        prev_node_(static_cast<std::size_t>(n_), -2),
        prev_fwd_(static_cast<std::size_t>(n_), 0),
        stats_(stats) {
    // g.edges() is row-major, so the adjacency lists come out ascending —
    // all walk/augment tie-breaks below are "smallest index first".
    for (const edge& e : g.edges()) {
      rem_[idx(e.from, e.to)] = e.cap;
      out_adj_[static_cast<std::size_t>(e.from)].push_back(e.to);
      in_adj_[static_cast<std::size_t>(e.to)].push_back(e.from);
    }
  }

  capacity_t& rem_at(node_id u, node_id v) { return rem_[idx(u, v)]; }
  const std::vector<node_id>& nodes() const { return nodes_; }
  int universe() const { return n_; }

#ifdef NAB_PACK_DEBUG
  /// Debug-only invariant probe: conservation + capacity feasibility of
  /// every certificate. O(n^3); compiled out of real builds.
  void check_all(const char* where) const {
    for (node_id w : nodes_) {
      if (w == root_) continue;
      const auto& f = flow_[static_cast<std::size_t>(w)];
      for (node_id v : nodes_) {
        capacity_t in = 0, out = 0;
        for (node_id x : nodes_) {
          if (x == v) continue;
          in += f[static_cast<std::size_t>(x) * n_ + v];
          out += f[static_cast<std::size_t>(v) * n_ + x];
          NAB_ASSERT(f[static_cast<std::size_t>(x) * n_ + v] >= 0, where);
        }
        if (v == root_) continue;
        if (v == w) {
          NAB_ASSERT(in - out == value_[static_cast<std::size_t>(w)], where);
        } else {
          NAB_ASSERT(in == out, where);
        }
      }
    }
  }
#endif

  /// Feasibility check doubling as certificate construction: caps every
  /// sink's flow at k. Returns false iff some sink's max flow is below k.
  bool certify_all(int k) {
    for (node_id w : nodes_) {
      if (w == root_) continue;
      flow_[static_cast<std::size_t>(w)].assign(static_cast<std::size_t>(n_) * n_, 0);
      if (stats_) ++stats_->safety_checks;
      while (value_[static_cast<std::size_t>(w)] < k && augment(w)) {
      }
      if (value_[static_cast<std::size_t>(w)] < k) return false;
    }
    return true;
  }

  /// Called after the caller decremented rem(u, v) by one: true iff every
  /// sink keeps MINCUT(root, w) >= need. On false, every certificate is back
  /// in a valid state and the caller restores rem(u, v).
  bool safe_after_removal(node_id u, node_id v, int need) {
    for (node_id w : nodes_) {
      if (w == root_) continue;
      if (stats_) ++stats_->safety_checks;
      auto& f = flow_[static_cast<std::size_t>(w)];
      if (f[idx(u, v)] <= rem_at(u, v)) continue;  // certificate unaffected
#ifdef NAB_PACK_DEBUG
      check_all("pre-cancel");
#endif
      cancel_unit(w, u, v);
#ifdef NAB_PACK_DEBUG
      check_all("post-cancel");
#endif
      if (value_[static_cast<std::size_t>(w)] >= need) continue;
      if (augment(w)) continue;
      // The flow is maximum and below need: (u, v) is unsafe. Reinstate the
      // canceled unit so the certificate matches the restored rem.
      undo_cancel(w);
      return false;
    }
    return true;
  }

 private:
  std::size_t idx(node_id u, node_id v) const {
    return static_cast<std::size_t>(u) * n_ + v;
  }

  /// One unit-value BFS augmentation root->w in the residual of (rem, f).
  bool augment(node_id w) {
    auto& f = flow_[static_cast<std::size_t>(w)];
    std::fill(prev_node_.begin(), prev_node_.end(), -2);
    queue_.clear();
    prev_node_[static_cast<std::size_t>(root_)] = -1;
    queue_.push_back(root_);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const node_id a = queue_[head];
      if (a == w) break;
      for (node_id b : out_adj_[static_cast<std::size_t>(a)]) {
        if (prev_node_[static_cast<std::size_t>(b)] != -2) continue;
        if (rem_[idx(a, b)] - f[idx(a, b)] <= 0) continue;
        prev_node_[static_cast<std::size_t>(b)] = a;
        prev_fwd_[static_cast<std::size_t>(b)] = 1;
        queue_.push_back(b);
      }
      for (node_id p : in_adj_[static_cast<std::size_t>(a)]) {
        if (prev_node_[static_cast<std::size_t>(p)] != -2) continue;
        if (f[idx(p, a)] <= 0) continue;
        prev_node_[static_cast<std::size_t>(p)] = a;
        prev_fwd_[static_cast<std::size_t>(p)] = 0;
        queue_.push_back(p);
      }
    }
    if (prev_node_[static_cast<std::size_t>(w)] == -2) return false;
    for (node_id x = w; x != root_;) {
      const node_id p = prev_node_[static_cast<std::size_t>(x)];
      if (prev_fwd_[static_cast<std::size_t>(x)])
        f[idx(p, x)] += 1;  // push along forward arc (p, x)
      else
        f[idx(x, p)] -= 1;  // cancel flow on arc (x, p)
      x = p;
    }
    ++value_[static_cast<std::size_t>(w)];
    if (stats_) ++stats_->flow_augmentations;
    return true;
  }

  /// Removes one unit of w's flow through arc (u, v): decrement, then chase
  /// the resulting excess at u backward along smallest-index flow-carrying
  /// arcs. The chase ends at the root (a root->w path was removed; the
  /// deficit at v is then chased forward to w and the value drops by one) or
  /// back at v (the unit sat on a flow cycle through (u, v); canceling the
  /// cycle rebalances everything and the value is untouched). Terminates
  /// because each step strictly decreases total flow mass.
  void cancel_unit(node_id w, node_id u, node_id v) {
    auto& f = flow_[static_cast<std::size_t>(w)];
    record_.clear();
    record_value_ = value_[static_cast<std::size_t>(w)];
    dec(f, u, v);
    for (node_id cur = u; cur != root_;) {
      node_id pick = -1;
      for (node_id p : in_adj_[static_cast<std::size_t>(cur)])
        if (f[idx(p, cur)] > 0) {
          pick = p;
          break;
        }
      NAB_ASSERT(pick >= 0, "tree_packing: flow conservation violated (backward)");
      dec(f, pick, cur);
      cur = pick;
      if (cur == v) return;  // cycle through (u, v) canceled; excess annihilated
    }
    for (node_id cur = v; cur != w;) {
      node_id pick = -1;
      for (node_id b : out_adj_[static_cast<std::size_t>(cur)])
        if (f[idx(cur, b)] > 0) {
          pick = b;
          break;
        }
      NAB_ASSERT(pick >= 0, "tree_packing: flow conservation violated (forward)");
      dec(f, cur, pick);
      cur = pick;
    }
    --value_[static_cast<std::size_t>(w)];
  }

  void undo_cancel(node_id w) {
    auto& f = flow_[static_cast<std::size_t>(w)];
    for (const auto& [a, b] : record_) f[idx(a, b)] += 1;
    value_[static_cast<std::size_t>(w)] = record_value_;
  }

  void dec(std::vector<capacity_t>& f, node_id a, node_id b) {
    f[idx(a, b)] -= 1;
    record_.emplace_back(a, b);
  }

  int n_;
  node_id root_;
  std::vector<node_id> nodes_;
  std::vector<capacity_t> rem_;
  std::vector<std::vector<node_id>> out_adj_, in_adj_;
  std::vector<std::vector<capacity_t>> flow_;  // per sink, dense n*n
  std::vector<capacity_t> value_;              // per sink, current flow value
  std::vector<node_id> prev_node_;             // BFS labels (-2 unvisited, -1 root)
  std::vector<char> prev_fwd_;
  std::vector<node_id> queue_;
  std::vector<std::pair<node_id, node_id>> record_;  // last cancel's decrements
  capacity_t record_value_ = 0;                      // value before last cancel
  pack_stats* stats_;
};

/// The Lovász construction driven by retained certificates. Same edge
/// iteration order as the reference, exact predicate => identical trees.
std::vector<spanning_tree> lovasz_incremental(node_id root, int k, flow_certifier& certs) {
  const std::vector<node_id>& nodes = certs.nodes();
  std::vector<spanning_tree> trees;
  for (int t = 0; t < k; ++t) {
    const int remaining_after = k - t - 1;  // trees still to pack after this one
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(certs.universe()), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    std::size_t tree_size = 1;

    while (tree_size < nodes.size()) {
      bool extended = false;
      for (node_id u : nodes) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        for (node_id v : nodes) {
          if (in_tree[static_cast<std::size_t>(v)] || certs.rem_at(u, v) <= 0) continue;
          // Tentatively take (u, v); keep it iff MINCUT(root, w) >=
          // remaining_after holds for every w in the residual graph after
          // removing (u, v) — checked against the certificates.
          certs.rem_at(u, v) -= 1;
          if (certs.safe_after_removal(u, v, remaining_after)) {
            tree.edges.push_back({u, v, 1});
            in_tree[static_cast<std::size_t>(v)] = true;
            ++tree_size;
            extended = true;
            break;
          }
          certs.rem_at(u, v) += 1;  // unsafe; restore
        }
        if (extended) break;
      }
      // Edmonds/Lovász guarantee a safe edge exists; failing here means the
      // feasibility precondition was violated.
      NAB_ASSERT(extended, "pack_arborescences: no safe edge found");
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

namespace {

/// Cheap randomized packing: grows each tree Prim-style over residual
/// capacities without safety checks. Fails (returns empty) when a greedy
/// choice strands a later tree; the caller falls back to the exact Lovász
/// construction. Head selection is scarcest-first: among out-of-tree nodes
/// with a crossing arc, attach the one with the least total remaining
/// in-capacity — each tree consumes exactly one in-unit per node, so the
/// node closest to being stranded is the one to attach now. This is what
/// lets regular sparse graphs (hypercubes) succeed on the first attempt
/// instead of falling through all attempts into the Lovász path. The tail is
/// then the max-residual crossing arc into that head (random among ties).
std::vector<spanning_tree> greedy_pack(const digraph& g, node_id root, int k,
                                       rng& rand) {
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();
  std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
  std::vector<std::vector<node_id>> in_adj(static_cast<std::size_t>(n));
  std::vector<capacity_t> in_cap(static_cast<std::size_t>(n), 0);
  for (const edge& e : g.edges()) {
    rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
    in_adj[static_cast<std::size_t>(e.to)].push_back(e.from);
    in_cap[static_cast<std::size_t>(e.to)] += e.cap;
  }
  auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
    return rem[static_cast<std::size_t>(u) * n + v];
  };

  std::vector<spanning_tree> trees;
  std::vector<edge> crossing;
  for (int t = 0; t < k; ++t) {
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    for (std::size_t grown = 1; grown < nodes.size(); ++grown) {
      // Scarcest head with at least one crossing arc (smallest id on ties).
      node_id head = -1;
      capacity_t head_cap = 0;
      for (node_id v : nodes) {
        if (in_tree[static_cast<std::size_t>(v)]) continue;
        bool crossed = false;
        for (node_id u : in_adj[static_cast<std::size_t>(v)])
          if (in_tree[static_cast<std::size_t>(u)] && rem_at(u, v) > 0) {
            crossed = true;
            break;
          }
        if (!crossed) continue;
        if (head < 0 || in_cap[static_cast<std::size_t>(v)] < head_cap) {
          head = v;
          head_cap = in_cap[static_cast<std::size_t>(v)];
        }
      }
      if (head < 0) return {};
      // Max-residual crossing arc into the head, random among ties.
      crossing.clear();
      capacity_t best_rem = 0;
      for (node_id u : in_adj[static_cast<std::size_t>(head)]) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        const capacity_t r = rem_at(u, head);
        if (r <= 0 || r < best_rem) continue;
        if (r > best_rem) {
          best_rem = r;
          crossing.clear();
        }
        crossing.push_back({u, head, 1});
      }
      const edge pick = crossing[rand.below(crossing.size())];
      rem_at(pick.from, pick.to) -= 1;
      in_cap[static_cast<std::size_t>(pick.to)] -= 1;
      tree.edges.push_back(pick);
      in_tree[static_cast<std::size_t>(pick.to)] = true;
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

/// The pre-incremental greedy (max-residual bias over all crossing arcs).
/// Reference path only.
std::vector<spanning_tree> greedy_pack_reference(const digraph& g, node_id root, int k,
                                                 rng& rand) {
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();
  std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
  for (const edge& e : g.edges()) rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
  auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
    return rem[static_cast<std::size_t>(u) * n + v];
  };

  std::vector<spanning_tree> trees;
  for (int t = 0; t < k; ++t) {
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    for (std::size_t grown = 1; grown < nodes.size(); ++grown) {
      std::vector<edge> crossing;
      capacity_t best_rem = 0;
      for (node_id u : nodes) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        for (node_id v : nodes) {
          if (in_tree[static_cast<std::size_t>(v)]) continue;
          const capacity_t r = rem_at(u, v);
          if (r <= 0 || r < best_rem) continue;
          if (r > best_rem) {
            best_rem = r;
            crossing.clear();
          }
          crossing.push_back({u, v, 1});
        }
      }
      if (crossing.empty()) return {};
      const edge pick = crossing[rand.below(crossing.size())];
      rem_at(pick.from, pick.to) -= 1;
      tree.edges.push_back(pick);
      in_tree[static_cast<std::size_t>(pick.to)] = true;
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace

namespace {

/// Exact packing for complete graphs with uniform capacity c: the classic
/// construction uses arborescences T_j = {root -> j} + {j -> w : w != root, j}
/// (depth 2). Distinct T_j are edge-disjoint, and c copies of each respect
/// every capacity, giving the full gamma = c * (n - 1) packing in O(n^2) —
/// no flows at all. Returns empty when g is not complete-uniform.
std::vector<spanning_tree> complete_uniform_pack(const digraph& g, node_id root,
                                                 int k) {
  const std::vector<node_id> nodes = g.active_nodes();
  if (nodes.size() < 2) return {};
  const capacity_t c = g.cap(nodes[0], nodes[1]);
  if (c <= 0) return {};
  for (node_id u : nodes)
    for (node_id v : nodes)
      if (u != v && g.cap(u, v) != c) return {};
  if (k > c * static_cast<capacity_t>(nodes.size() - 1)) return {};

  std::vector<node_id> hubs;
  for (node_id v : nodes)
    if (v != root) hubs.push_back(v);

  std::vector<spanning_tree> trees;
  trees.reserve(static_cast<std::size_t>(k));
  for (int t = 0; t < k; ++t) {
    // Cycle through the hubs; copy number t / (n - 1) of each stays <= c.
    const node_id j = hubs[static_cast<std::size_t>(t) % hubs.size()];
    spanning_tree tree;
    tree.edges.push_back({root, j, 1});
    for (node_id w : nodes)
      if (w != root && w != j) tree.edges.push_back({j, w, 1});
    trees.push_back(std::move(tree));
  }
  return trees;
}

[[noreturn]] void throw_infeasible(int k) {
  throw error("pack_arborescences: mincut from root is below k=" + std::to_string(k));
}

}  // namespace

std::vector<spanning_tree> pack_arborescences(const digraph& g, node_id root, int k,
                                              pack_stats* stats) {
  NAB_ASSERT(g.is_active(root), "pack_arborescences root must be active");
  NAB_ASSERT(k > 0, "pack_arborescences requires k > 0");
  if (g.active_nodes().size() < 2) throw_infeasible(k);

  // Closed-form packing for complete-uniform graphs (K_n presets and most
  // pre-dispute instance graphs): mincut from the root is c * (n - 1), so
  // both feasibility and the packing itself need no flows at all. An
  // infeasible complete-uniform request falls through and throws below.
  if (auto trees = complete_uniform_pack(g, root, k); !trees.empty()) return trees;

  // Feasibility check = certificate construction: one capped max-flow per
  // sink, retained for the Lovász fallback's incremental safe-edge test.
  flow_certifier certs(g, root, stats);
  if (!certs.certify_all(k)) throw_infeasible(k);

  // Fast path: a few randomized greedy attempts (deterministically seeded).
  rng rand(0x9ACC + static_cast<std::uint64_t>(k) * 131 + static_cast<std::uint64_t>(root));
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto trees = greedy_pack(g, root, k, rand);
    if (!trees.empty()) return trees;
  }
  return lovasz_incremental(root, k, certs);
}

std::vector<spanning_tree> pack_arborescences_lovasz(const digraph& g, node_id root,
                                                     int k, pack_stats* stats) {
  NAB_ASSERT(g.is_active(root), "pack_arborescences root must be active");
  NAB_ASSERT(k > 0, "pack_arborescences requires k > 0");
  if (g.active_nodes().size() < 2) throw_infeasible(k);
  flow_certifier certs(g, root, stats);
  if (!certs.certify_all(k)) throw_infeasible(k);
  return lovasz_incremental(root, k, certs);
}

std::vector<spanning_tree> pack_arborescences_reference(const digraph& g, node_id root,
                                                        int k) {
  NAB_ASSERT(g.is_active(root), "pack_arborescences root must be active");
  NAB_ASSERT(k > 0, "pack_arborescences requires k > 0");
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();
  if (broadcast_mincut(g, root) < k) throw_infeasible(k);

  if (auto trees = complete_uniform_pack(g, root, k); !trees.empty()) return trees;

  rng rand(0x9ACC + static_cast<std::uint64_t>(k) * 131 + static_cast<std::uint64_t>(root));
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto trees = greedy_pack_reference(g, root, k, rand);
    if (!trees.empty()) return trees;
  }

  // From-scratch Lovász: per candidate edge, full per-sink max-flow re-runs.
  std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
  for (const edge& e : g.edges()) rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
  auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
    return rem[static_cast<std::size_t>(u) * n + v];
  };

  std::vector<spanning_tree> trees;
  for (int t = 0; t < k; ++t) {
    const int remaining_after = k - t - 1;
    spanning_tree tree;
    std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
    in_tree[static_cast<std::size_t>(root)] = true;
    std::size_t tree_size = 1;
    while (tree_size < nodes.size()) {
      bool extended = false;
      for (node_id u : nodes) {
        if (!in_tree[static_cast<std::size_t>(u)]) continue;
        for (node_id v : nodes) {
          if (in_tree[static_cast<std::size_t>(v)] || rem_at(u, v) <= 0) continue;
          rem_at(u, v) -= 1;
          if (connectivity_at_least(n, nodes, rem, root, remaining_after)) {
            tree.edges.push_back({u, v, 1});
            in_tree[static_cast<std::size_t>(v)] = true;
            ++tree_size;
            extended = true;
            break;
          }
          rem_at(u, v) += 1;
        }
        if (extended) break;
      }
      NAB_ASSERT(extended, "pack_arborescences: no safe edge found");
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

std::vector<spanning_tree> pack_undirected_trees(const ugraph& g, int k, rng& rand,
                                                 int attempts) {
  NAB_ASSERT(k > 0, "pack_undirected_trees requires k > 0");
  const std::vector<node_id> nodes = g.active_nodes();
  const int n = g.universe();

  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::vector<capacity_t> rem(static_cast<std::size_t>(n) * n, 0);
    for (const edge& e : g.edges()) {
      rem[static_cast<std::size_t>(e.from) * n + e.to] = e.cap;
      rem[static_cast<std::size_t>(e.to) * n + e.from] = e.cap;
    }
    auto rem_at = [&](node_id u, node_id v) -> capacity_t& {
      return rem[static_cast<std::size_t>(u) * n + v];
    };

    std::vector<spanning_tree> trees;
    bool ok = true;
    for (int t = 0; t < k && ok; ++t) {
      // Randomized Prim-style growth over remaining multiplicities.
      spanning_tree tree;
      std::vector<bool> in_tree(static_cast<std::size_t>(n), false);
      std::vector<node_id> frontier{nodes[rand.below(nodes.size())]};
      in_tree[static_cast<std::size_t>(frontier[0])] = true;
      std::size_t tree_size = 1;
      while (tree_size < nodes.size()) {
        // Collect all crossing edges with remaining multiplicity.
        std::vector<edge> crossing;
        for (node_id u : nodes) {
          if (!in_tree[static_cast<std::size_t>(u)]) continue;
          for (node_id v : nodes)
            if (!in_tree[static_cast<std::size_t>(v)] && rem_at(u, v) > 0)
              crossing.push_back({u, v, 1});
        }
        if (crossing.empty()) {
          ok = false;
          break;
        }
        const edge pick = crossing[rand.below(crossing.size())];
        rem_at(pick.from, pick.to) -= 1;
        rem_at(pick.to, pick.from) -= 1;
        tree.edges.push_back(pick);
        in_tree[static_cast<std::size_t>(pick.to)] = true;
        ++tree_size;
      }
      if (ok) trees.push_back(std::move(tree));
    }
    if (ok) return trees;
  }
  return {};
}

}  // namespace nab::graph
