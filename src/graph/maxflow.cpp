#include "graph/maxflow.hpp"

#include <limits>

#include "graph/dinic.hpp"
#include "util/assert.hpp"

namespace nab::graph {

using detail::dinic;

flow_result max_flow(const digraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "max_flow endpoints must be active");
  NAB_ASSERT(s != t, "max_flow requires distinct endpoints");
  const int n = g.universe();
  dinic d(n);
  for (const edge& e : g.edges()) d.add_arc(e.from, e.to, e.cap);

  flow_result out;
  out.value = d.run(s, t);
  out.flow.assign(static_cast<std::size_t>(n) * n, 0);
  for (int u = 0; u < n; ++u) {
    for (const auto& a : d.adj[static_cast<std::size_t>(u)]) {
      if (!a.forward) continue;
      const capacity_t pushed = g.cap(a.orig_from, a.orig_to) - a.cap;
      if (pushed > 0) out.flow[static_cast<std::size_t>(a.orig_from) * n + a.orig_to] = pushed;
    }
  }
  out.source_side = d.residual_reachable(s);
  return out;
}

capacity_t min_cut_value(const digraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "min_cut endpoints must be active");
  const int n = g.universe();
  dinic d(n);
  for (const edge& e : g.edges()) d.add_arc(e.from, e.to, e.cap);
  return d.run(s, t);
}

capacity_t broadcast_mincut(const digraph& g, node_id source) {
  NAB_ASSERT(g.is_active(source), "broadcast_mincut source must be active");
  capacity_t best = std::numeric_limits<capacity_t>::max();
  bool any = false;
  for (node_id v : g.active_nodes()) {
    if (v == source) continue;
    best = std::min(best, min_cut_value(g, source, v));
    any = true;
  }
  return any ? best : 0;
}

capacity_t min_cut_value_undirected(const ugraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "min_cut endpoints must be active");
  dinic d(g.universe());
  for (const edge& e : g.edges()) d.add_undirected_arc(e.from, e.to, e.cap);
  return d.run(s, t);
}

}  // namespace nab::graph
