#include "graph/maxflow.hpp"

#include <limits>
#include <queue>

#include "util/assert.hpp"

namespace nab::graph {
namespace {

/// Internal residual-graph representation for Dinic's algorithm.
struct dinic {
  struct arc {
    int to;
    capacity_t cap;     // residual capacity
    std::size_t rev;    // index of the reverse arc in adj[to]
    bool forward;       // true for original-direction arcs (flow extraction)
    node_id orig_from;  // original endpoints for flow extraction
    node_id orig_to;
  };

  explicit dinic(int n) : adj(static_cast<std::size_t>(n)), level(n), iter(n) {}

  std::vector<std::vector<arc>> adj;
  std::vector<int> level;
  std::vector<std::size_t> iter;

  void add_arc(node_id u, node_id v, capacity_t cap) {
    adj[static_cast<std::size_t>(u)].push_back(
        {v, cap, adj[static_cast<std::size_t>(v)].size(), true, u, v});
    adj[static_cast<std::size_t>(v)].push_back(
        {u, 0, adj[static_cast<std::size_t>(u)].size() - 1, false, u, v});
  }

  /// Adds an undirected edge: both arcs get full capacity and act as each
  /// other's residual.
  void add_undirected_arc(node_id u, node_id v, capacity_t cap) {
    adj[static_cast<std::size_t>(u)].push_back(
        {v, cap, adj[static_cast<std::size_t>(v)].size(), true, u, v});
    adj[static_cast<std::size_t>(v)].push_back(
        {u, cap, adj[static_cast<std::size_t>(u)].size() - 1, true, v, u});
  }

  bool bfs(int s, int t) {
    std::fill(level.begin(), level.end(), -1);
    std::queue<int> q;
    level[static_cast<std::size_t>(s)] = 0;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const arc& a : adj[static_cast<std::size_t>(v)]) {
        if (a.cap > 0 && level[static_cast<std::size_t>(a.to)] < 0) {
          level[static_cast<std::size_t>(a.to)] = level[static_cast<std::size_t>(v)] + 1;
          q.push(a.to);
        }
      }
    }
    return level[static_cast<std::size_t>(t)] >= 0;
  }

  capacity_t dfs(int v, int t, capacity_t f) {
    if (v == t) return f;
    for (std::size_t& i = iter[static_cast<std::size_t>(v)];
         i < adj[static_cast<std::size_t>(v)].size(); ++i) {
      arc& a = adj[static_cast<std::size_t>(v)][i];
      if (a.cap <= 0 || level[static_cast<std::size_t>(v)] + 1 != level[static_cast<std::size_t>(a.to)])
        continue;
      const capacity_t d = dfs(a.to, t, std::min(f, a.cap));
      if (d > 0) {
        a.cap -= d;
        adj[static_cast<std::size_t>(a.to)][a.rev].cap += d;
        return d;
      }
    }
    return 0;
  }

  capacity_t run(int s, int t) {
    capacity_t total = 0;
    constexpr capacity_t inf = std::numeric_limits<capacity_t>::max();
    while (bfs(s, t)) {
      std::fill(iter.begin(), iter.end(), 0);
      while (true) {
        const capacity_t f = dfs(s, t, inf);
        if (f == 0) break;
        total += f;
      }
    }
    return total;
  }

  std::vector<bool> residual_reachable(int s) const {
    std::vector<bool> seen(adj.size(), false);
    std::queue<int> q;
    seen[static_cast<std::size_t>(s)] = true;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (const arc& a : adj[static_cast<std::size_t>(v)]) {
        if (a.cap > 0 && !seen[static_cast<std::size_t>(a.to)]) {
          seen[static_cast<std::size_t>(a.to)] = true;
          q.push(a.to);
        }
      }
    }
    return seen;
  }
};

}  // namespace

flow_result max_flow(const digraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "max_flow endpoints must be active");
  NAB_ASSERT(s != t, "max_flow requires distinct endpoints");
  const int n = g.universe();
  dinic d(n);
  for (const edge& e : g.edges()) d.add_arc(e.from, e.to, e.cap);

  flow_result out;
  out.value = d.run(s, t);
  out.flow.assign(static_cast<std::size_t>(n) * n, 0);
  for (int u = 0; u < n; ++u) {
    for (const auto& a : d.adj[static_cast<std::size_t>(u)]) {
      if (!a.forward) continue;
      const capacity_t pushed = g.cap(a.orig_from, a.orig_to) - a.cap;
      if (pushed > 0) out.flow[static_cast<std::size_t>(a.orig_from) * n + a.orig_to] = pushed;
    }
  }
  out.source_side = d.residual_reachable(s);
  return out;
}

capacity_t min_cut_value(const digraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "min_cut endpoints must be active");
  const int n = g.universe();
  dinic d(n);
  for (const edge& e : g.edges()) d.add_arc(e.from, e.to, e.cap);
  return d.run(s, t);
}

capacity_t broadcast_mincut(const digraph& g, node_id source) {
  NAB_ASSERT(g.is_active(source), "broadcast_mincut source must be active");
  capacity_t best = std::numeric_limits<capacity_t>::max();
  bool any = false;
  for (node_id v : g.active_nodes()) {
    if (v == source) continue;
    best = std::min(best, min_cut_value(g, source, v));
    any = true;
  }
  return any ? best : 0;
}

capacity_t min_cut_value_undirected(const ugraph& g, node_id s, node_id t) {
  NAB_ASSERT(g.is_active(s) && g.is_active(t), "min_cut endpoints must be active");
  dinic d(g.universe());
  for (const edge& e : g.edges()) d.add_undirected_arc(e.from, e.to, e.cap);
  return d.run(s, t);
}

}  // namespace nab::graph
