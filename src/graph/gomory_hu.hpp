#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Gomory–Hu (cut-equivalent) tree of an undirected weighted graph, built
/// with Gusfield's simplification (n-1 max-flows, no contraction).
///
/// After construction, `min_cut(u, v)` answers the undirected MINCUT between
/// any active pair in O(V) — used to cross-check Stoer–Wagner and to report
/// per-pair cut structure in the capacity planner example.
class gomory_hu_tree {
 public:
  explicit gomory_hu_tree(const ugraph& g);

  /// MINCUT between two active nodes (paper notation MINCUT(H, u, v)).
  capacity_t min_cut(node_id u, node_id v) const;

  /// Minimum over all active pairs — equals pairwise_min_cut(g).
  capacity_t minimum_pair_cut() const;

  /// Tree edges (parent relation) for inspection: {u, parent(u), weight}.
  std::vector<edge> tree_edges() const;

 private:
  std::vector<node_id> nodes_;           // active nodes in order
  std::vector<int> parent_;              // index into nodes_
  std::vector<capacity_t> parent_cut_;   // cut value to parent
  std::vector<int> index_of_;            // node id -> index in nodes_, -1 if inactive
};

}  // namespace nab::graph
