#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace nab::graph {

/// Deterministic work counters for the packing layer (fed into the runtime's
/// plan_* obs counters; part of the jobs-1-vs-N byte-identity contract).
struct pack_stats {
  std::uint64_t safety_checks = 0;       ///< per-sink certificate validations
  std::uint64_t flow_augmentations = 0;  ///< unit augmenting paths pushed
};

/// One unit-capacity spanning tree. For arborescences the edges are directed
/// away from the root; for undirected trees the orientation is meaningless.
struct spanning_tree {
  std::vector<edge> edges;  // each with cap == 1 (one capacity unit used)

  /// Parent-pointer view: parent[v] == u if (u, v) is a tree edge; the root
  /// (or any non-tree node) maps to -1. `n` is the graph universe size.
  std::vector<node_id> parents(int n) const;
};

/// Packs `k` edge-disjoint (capacity-respecting) spanning arborescences
/// rooted at `root` into the active subgraph of g.
///
/// This is the constructive side of Edmonds' branching theorem, via Lovász's
/// proof: trees are grown one at a time; an edge (u, v) leaving the partial
/// tree is added only if removing it keeps MINCUT(root, w) >= remaining-trees
/// for every node w ("safe edge"); a safe edge always exists. Edge
/// capacities act as parallel unit edges.
///
/// Phase 1 of NAB broadcasts L bits as gamma_k shares of L/gamma_k bits, one
/// share per arborescence (paper Appendix A).
///
/// Throws nab::error if k exceeds broadcast_mincut(g, root) (infeasible by
/// Edmonds' theorem).
///
/// Strategy: feasibility is certified once with per-sink capped max-flows
/// (the flow certificates are retained), then a handful of cheap randomized
/// greedy attempts (scarcest-head bias; they succeed on capacity-rich AND
/// regular sparse graphs), falling back to the always-correct incremental
/// Lovász construction below, which repairs the retained certificates per
/// candidate edge instead of recomputing flows from scratch.
std::vector<spanning_tree> pack_arborescences(const digraph& g, node_id root, int k,
                                              pack_stats* stats = nullptr);

/// The exact Lovász construction on its own (no greedy fast path). Always
/// succeeds when k <= broadcast_mincut(g, root). Exposed for tests and for
/// callers that need deterministic tree shapes. The safe-edge predicate is
/// evaluated incrementally against retained per-sink flow certificates
/// (cancel one unit, re-augment at most one path), which is exact by
/// max-flow/min-cut, so the trees are identical to the from-scratch
/// construction's.
std::vector<spanning_tree> pack_arborescences_lovasz(const digraph& g, node_id root,
                                                     int k, pack_stats* stats = nullptr);

/// The pre-incremental construction (greedy with max-residual bias, Lovász
/// safety via from-scratch per-sink max-flows). Retained as the reference
/// implementation for equivalence tests and old-vs-new bench rows; not used
/// by the protocol.
std::vector<spanning_tree> pack_arborescences_reference(const digraph& g, node_id root,
                                                        int k);

/// Greedily packs `k` edge-disjoint undirected spanning trees (weights act
/// as parallel unit edges), retrying with `attempts` random edge orders.
///
/// Nash-Williams/Tutte guarantee floor(U/2) trees exist when the global min
/// cut is U; this packer is a randomized heuristic (exact packing is matroid
/// union, which the protocol never needs — see DESIGN.md §8). Returns the
/// packed trees, or an empty vector if all attempts fail.
std::vector<spanning_tree> pack_undirected_trees(const ugraph& g, int k, rng& rand,
                                                 int attempts = 64);

}  // namespace nab::graph
