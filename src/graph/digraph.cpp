#include "graph/digraph.hpp"

#include "util/assert.hpp"

namespace nab::graph {

digraph::digraph(int n) : n_(n), active_(static_cast<std::size_t>(n), true), cap_(static_cast<std::size_t>(n) * n, 0) {
  NAB_ASSERT(n >= 0, "digraph size must be non-negative");
}

bool digraph::is_active(node_id v) const {
  return v >= 0 && v < n_ && active_[static_cast<std::size_t>(v)];
}

std::vector<node_id> digraph::active_nodes() const {
  std::vector<node_id> out;
  out.reserve(static_cast<std::size_t>(n_));
  for (node_id v = 0; v < n_; ++v)
    if (active_[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

void digraph::add_edge(node_id u, node_id v, capacity_t cap) {
  NAB_ASSERT(is_active(u) && is_active(v), "add_edge endpoints must be active");
  NAB_ASSERT(u != v, "self-loops are not allowed");
  NAB_ASSERT(cap > 0, "edge capacity must be positive");
  cap_ref(u, v) += cap;
}

void digraph::add_bidirectional(node_id u, node_id v, capacity_t cap) {
  add_edge(u, v, cap);
  add_edge(v, u, cap);
}

void digraph::remove_edge(node_id u, node_id v) {
  if (u < 0 || v < 0 || u >= n_ || v >= n_) return;
  cap_ref(u, v) = 0;
}

void digraph::remove_edge_pair(node_id u, node_id v) {
  remove_edge(u, v);
  remove_edge(v, u);
}

void digraph::remove_node(node_id v) {
  if (v < 0 || v >= n_) return;
  active_[static_cast<std::size_t>(v)] = false;
  for (node_id u = 0; u < n_; ++u) {
    cap_ref(u, v) = 0;
    cap_ref(v, u) = 0;
  }
}

capacity_t digraph::cap(node_id u, node_id v) const {
  if (!is_active(u) || !is_active(v)) return 0;
  return cap_ref(u, v);
}

std::vector<edge> digraph::edges() const {
  std::vector<edge> out;
  for (node_id u = 0; u < n_; ++u)
    for (node_id v = 0; v < n_; ++v)
      if (cap(u, v) > 0) out.push_back({u, v, cap(u, v)});
  return out;
}

capacity_t digraph::total_capacity() const {
  capacity_t sum = 0;
  for (const auto& e : edges()) sum += e.cap;
  return sum;
}

std::vector<node_id> digraph::out_neighbors(node_id v) const {
  std::vector<node_id> out;
  for (node_id u = 0; u < n_; ++u)
    if (cap(v, u) > 0) out.push_back(u);
  return out;
}

std::vector<node_id> digraph::in_neighbors(node_id v) const {
  std::vector<node_id> out;
  for (node_id u = 0; u < n_; ++u)
    if (cap(u, v) > 0) out.push_back(u);
  return out;
}

digraph digraph::induced(const std::vector<node_id>& keep) const {
  digraph out = *this;
  std::vector<bool> in_keep(static_cast<std::size_t>(n_), false);
  for (node_id v : keep) {
    NAB_ASSERT(v >= 0 && v < n_, "induced: node out of universe");
    in_keep[static_cast<std::size_t>(v)] = true;
  }
  for (node_id v = 0; v < n_; ++v)
    if (!in_keep[static_cast<std::size_t>(v)]) out.remove_node(v);
  return out;
}

ugraph::ugraph(int n) : n_(n), active_(static_cast<std::size_t>(n), true), w_(static_cast<std::size_t>(n) * n, 0) {
  NAB_ASSERT(n >= 0, "ugraph size must be non-negative");
}

bool ugraph::is_active(node_id v) const {
  return v >= 0 && v < n_ && active_[static_cast<std::size_t>(v)];
}

std::vector<node_id> ugraph::active_nodes() const {
  std::vector<node_id> out;
  for (node_id v = 0; v < n_; ++v)
    if (active_[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

void ugraph::add_weight(node_id u, node_id v, capacity_t w) {
  NAB_ASSERT(is_active(u) && is_active(v), "add_weight endpoints must be active");
  NAB_ASSERT(u != v, "self-loops are not allowed");
  NAB_ASSERT(w > 0, "edge weight must be positive");
  w_ref(u, v) += w;
  w_ref(v, u) += w;
}

void ugraph::remove_node(node_id v) {
  if (v < 0 || v >= n_) return;
  active_[static_cast<std::size_t>(v)] = false;
  for (node_id u = 0; u < n_; ++u) {
    w_ref(u, v) = 0;
    w_ref(v, u) = 0;
  }
}

capacity_t ugraph::weight(node_id u, node_id v) const {
  if (!is_active(u) || !is_active(v)) return 0;
  return w_ref(u, v);
}

std::vector<edge> ugraph::edges() const {
  std::vector<edge> out;
  for (node_id u = 0; u < n_; ++u)
    for (node_id v = u + 1; v < n_; ++v)
      if (weight(u, v) > 0) out.push_back({u, v, weight(u, v)});
  return out;
}

ugraph ugraph::induced(const std::vector<node_id>& keep) const {
  ugraph out = *this;
  std::vector<bool> in_keep(static_cast<std::size_t>(n_), false);
  for (node_id v : keep) {
    NAB_ASSERT(v >= 0 && v < n_, "induced: node out of universe");
    in_keep[static_cast<std::size_t>(v)] = true;
  }
  for (node_id v = 0; v < n_; ++v)
    if (!in_keep[static_cast<std::size_t>(v)]) out.remove_node(v);
  return out;
}

ugraph to_undirected(const digraph& g) {
  ugraph out(g.universe());
  for (node_id v = 0; v < g.universe(); ++v)
    if (!g.is_active(v)) out.remove_node(v);
  for (node_id u = 0; u < g.universe(); ++u)
    for (node_id v = u + 1; v < g.universe(); ++v) {
      const capacity_t w = g.cap(u, v) + g.cap(v, u);
      if (w > 0) out.add_weight(u, v, w);
    }
  return out;
}

}  // namespace nab::graph
