#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Result of a global minimum cut computation.
struct global_cut {
  capacity_t value = 0;
  /// One side of the cut (original node ids).
  std::vector<node_id> side;
};

/// Stoer–Wagner global minimum cut of the active subgraph of an undirected
/// weighted graph. This equals min over all node pairs {i,j} of
/// MINCUT(H, i, j) — exactly the inner minimum in the paper's U_k.
/// Preconditions: at least 2 active nodes. O(V^3).
global_cut global_min_cut(const ugraph& g);

/// The paper's U_H for a single subgraph: min over all pairs of nodes of the
/// undirected MINCUT — i.e. the Stoer–Wagner value. Returns 0 when the
/// active subgraph is disconnected.
capacity_t pairwise_min_cut(const ugraph& g);

}  // namespace nab::graph
