#include "graph/mincut.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace nab::graph {

global_cut global_min_cut(const ugraph& g) {
  const std::vector<node_id> nodes = g.active_nodes();
  const auto n = nodes.size();
  NAB_ASSERT(n >= 2, "global_min_cut needs at least 2 active nodes");

  // Dense weight matrix over compacted indices; merged[i] tracks which
  // original nodes the contracted super-node i contains.
  std::vector<std::vector<capacity_t>> w(n, std::vector<capacity_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) w[i][j] = g.weight(nodes[i], nodes[j]);
  std::vector<std::vector<node_id>> merged(n);
  for (std::size_t i = 0; i < n; ++i) merged[i] = {nodes[i]};

  std::vector<bool> gone(n, false);
  global_cut best;
  best.value = std::numeric_limits<capacity_t>::max();

  for (std::size_t phase = 0; phase + 1 < n; ++phase) {
    // Maximum-adjacency ordering.
    std::vector<capacity_t> conn(n, 0);
    std::vector<bool> added(n, false);
    std::size_t prev = 0, last = 0;
    for (std::size_t step = 0; step + phase < n; ++step) {
      std::size_t pick = n;
      for (std::size_t v = 0; v < n; ++v) {
        if (gone[v] || added[v]) continue;
        if (pick == n || conn[v] > conn[pick]) pick = v;
      }
      added[pick] = true;
      prev = last;
      last = pick;
      for (std::size_t v = 0; v < n; ++v)
        if (!gone[v] && !added[v]) conn[v] += w[pick][v];
    }
    // Cut-of-the-phase: `last` against everything else.
    if (conn[last] < best.value) {
      best.value = conn[last];
      best.side = merged[last];
    }
    // Contract last into prev.
    gone[last] = true;
    merged[prev].insert(merged[prev].end(), merged[last].begin(), merged[last].end());
    for (std::size_t v = 0; v < n; ++v) {
      if (gone[v] || v == prev) continue;
      w[prev][v] += w[last][v];
      w[v][prev] = w[prev][v];
    }
  }
  std::sort(best.side.begin(), best.side.end());
  return best;
}

capacity_t pairwise_min_cut(const ugraph& g) {
  if (g.active_count() < 2) return 0;
  return global_min_cut(g).value;
}

}  // namespace nab::graph
