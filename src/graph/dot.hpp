#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Graphviz DOT rendering of the active subgraph (edge labels = capacities).
/// `highlight` nodes are drawn filled — used by examples to mark faulty or
/// convicted nodes.
std::string to_dot(const digraph& g, const std::vector<node_id>& highlight = {});

/// DOT rendering of an undirected graph (edge labels = weights).
std::string to_dot(const ugraph& g);

}  // namespace nab::graph
