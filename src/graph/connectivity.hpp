#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Number of internally node-disjoint directed paths from s to t in the
/// active subgraph (Menger). Adjacent pairs get universe()-sized "infinity"
/// short-circuited: if edge s->t exists it counts as one path plus the
/// node-disjoint paths avoiding it.
int vertex_connectivity(const digraph& g, node_id s, node_id t);

/// Global (directed) vertex connectivity: min over ordered active pairs of
/// vertex_connectivity. The paper's "network connectivity at least 2f+1"
/// prerequisite is checked with this.
int global_vertex_connectivity(const digraph& g);

/// Decision version of the above: is the global vertex connectivity >= k?
/// Runs the same pairwise flows but caps them at k (the split graph's
/// terminal arcs get capacity k), so each pair costs O(k) augmentations and
/// the scan exits on the first deficient pair — the right tool for the
/// runner's per-run 2f+1 precondition on freshly drawn random topologies.
bool global_vertex_connectivity_at_least(const digraph& g, int k);

/// A set of `k` internally node-disjoint directed s->t paths, each a node
/// sequence s, ..., t. Throws nab::error if fewer than k disjoint paths
/// exist. Used by the complete-graph emulation (send along 2f+1 disjoint
/// paths, take majority).
std::vector<std::vector<node_id>> node_disjoint_paths(const digraph& g, node_id s,
                                                      node_id t, int k);

}  // namespace nab::graph
