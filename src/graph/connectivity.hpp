#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/dinic.hpp"

namespace nab::graph {

/// Number of internally node-disjoint directed paths from s to t in the
/// active subgraph (Menger). Adjacent pairs get universe()-sized "infinity"
/// short-circuited: if edge s->t exists it counts as one path plus the
/// node-disjoint paths avoiding it.
int vertex_connectivity(const digraph& g, node_id s, node_id t);

/// Global (directed) vertex connectivity: min over ordered active pairs of
/// vertex_connectivity. The paper's "network connectivity at least 2f+1"
/// prerequisite is checked with this.
int global_vertex_connectivity(const digraph& g);

/// Decision version of the above: is the global vertex connectivity >= k?
/// Runs the same pairwise flows but caps them at k (the split graph's
/// terminal arcs get capacity k), so each pair costs O(k) augmentations and
/// the scan exits on the first deficient pair — the right tool for the
/// runner's per-run 2f+1 precondition on freshly drawn random topologies.
bool global_vertex_connectivity_at_least(const digraph& g, int k);

/// A set of `k` internally node-disjoint directed s->t paths, each a node
/// sequence s, ..., t. Throws nab::error if fewer than k disjoint paths
/// exist. Used by the complete-graph emulation (send along 2f+1 disjoint
/// paths, take majority).
std::vector<std::vector<node_id>> node_disjoint_paths(const digraph& g, node_id s,
                                                      node_id t, int k);

/// Reusable disjoint-path extractor for route-table builds: constructs the
/// node-split residual network ONCE per graph and re-runs it per (s, t) pair
/// with a capacity reset instead of rebuilding two dense (2n)^2 matrices per
/// pair. The split-graph arc order is independent of the terminal pair (only
/// the two terminal internal-arc capacities differ), and Dinic explores arcs
/// in insertion order, so `find(s, t, k)` returns byte-identical paths to
/// `node_disjoint_paths(g, s, t, k)` — pinned by the planner equivalence
/// tests. Not thread-safe; use one finder per worker.
class disjoint_path_finder {
 public:
  explicit disjoint_path_finder(const digraph& g);

  /// Same contract (and output) as node_disjoint_paths(g, s, t, k): throws
  /// nab::error when fewer than k internally node-disjoint paths exist.
  std::vector<std::vector<node_id>> find(node_id s, node_id t, int k);

  /// Augmenting paths pushed across all find() calls on this instance.
  std::uint64_t augmentations() const { return net_.augmenting_paths; }

 private:
  int n_;
  capacity_t terminal_cap_;
  detail::dinic net_;
  std::vector<std::size_t> internal_idx_;  // per node v: index of (2v,2v+1) in adj[2v]
  std::vector<bool> active_;
  // Scratch for flow decomposition: per split node, (to, amount) rows in
  // ascending `to` order, rebuilt per find().
  std::vector<std::vector<std::pair<int, capacity_t>>> flow_adj_;
};

}  // namespace nab::graph
