#include "graph/topology_io.hpp"

#include <istream>
#include <sstream>

#include "util/error.hpp"

namespace nab::graph {

digraph parse_topology(std::istream& in) {
  digraph g;
  bool have_nodes = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank/comment line

    auto fail = [&](const std::string& why) {
      throw error("topology line " + std::to_string(line_no) + ": " + why);
    };

    if (directive == "nodes") {
      int n = 0;
      if (!(ls >> n) || n <= 0) fail("expected positive node count");
      if (have_nodes) fail("duplicate nodes directive");
      g = digraph(n);
      have_nodes = true;
    } else if (directive == "edge" || directive == "biedge") {
      if (!have_nodes) fail("edge before nodes directive");
      node_id u = -1, v = -1;
      capacity_t cap = 0;
      if (!(ls >> u >> v >> cap)) fail("expected: " + directive + " <u> <v> <cap>");
      if (u < 0 || v < 0 || u >= g.universe() || v >= g.universe())
        fail("node id out of range");
      if (u == v) fail("self-loop");
      if (cap <= 0) fail("capacity must be positive");
      if (directive == "edge")
        g.add_edge(u, v, cap);
      else
        g.add_bidirectional(u, v, cap);
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  if (!have_nodes) throw error("topology: missing nodes directive");
  return g;
}

digraph parse_topology_text(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

std::string format_topology(const digraph& g) {
  std::ostringstream out;
  out << "nodes " << g.universe() << "\n";
  for (const edge& e : g.edges())
    out << "edge " << e.from << " " << e.to << " " << e.cap << "\n";
  return out.str();
}

}  // namespace nab::graph
