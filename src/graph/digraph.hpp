#pragma once

#include <cstdint>
#include <vector>

namespace nab::graph {

/// Node identifier. Node 0 is the broadcast source by convention (the paper's
/// node 1).
using node_id = int;

/// Link capacity in bits per unit time. The paper assumes positive integer
/// capacities (rationals rescale, irrationals approximate).
using capacity_t = std::int64_t;

/// One directed capacitated link.
struct edge {
  node_id from = 0;
  node_id to = 0;
  capacity_t cap = 0;

  bool operator==(const edge&) const = default;
};

/// Directed simple graph with integer link capacities over a fixed node
/// universe [0, universe()).
///
/// Nodes can be *deactivated* (NAB's dispute control removes convicted nodes
/// from G_k while every surviving node keeps its original id), and edges can
/// be removed pairwise (disputed node pairs lose both directions). Capacities
/// are stored densely — NAB networks are small (tens of nodes), and dense
/// storage keeps min-cut / flow code simple and cache-friendly.
class digraph {
 public:
  digraph() = default;

  /// Creates a graph with `n` active nodes and no edges.
  explicit digraph(int n);

  /// Size of the id space (active + removed nodes).
  int universe() const { return n_; }

  /// Number of currently active nodes.
  int active_count() const { return static_cast<int>(active_nodes().size()); }

  bool is_active(node_id v) const;

  /// Sorted list of active node ids.
  std::vector<node_id> active_nodes() const;

  /// Adds (or widens) the directed edge u -> v. Self-loops are rejected.
  /// Preconditions: u, v active, cap > 0.
  void add_edge(node_id u, node_id v, capacity_t cap);

  /// Adds u -> v and v -> u, each with capacity `cap`.
  void add_bidirectional(node_id u, node_id v, capacity_t cap);

  /// Removes the directed edge u -> v if present.
  void remove_edge(node_id u, node_id v);

  /// Removes both directed edges between u and v (how NAB erases a disputed
  /// pair).
  void remove_edge_pair(node_id u, node_id v);

  /// Deactivates a node and removes all incident edges.
  void remove_node(node_id v);

  /// Capacity of u -> v, or 0 if absent / either endpoint inactive.
  capacity_t cap(node_id u, node_id v) const;

  bool has_edge(node_id u, node_id v) const { return cap(u, v) > 0; }

  /// All active directed edges in deterministic (row-major) order.
  std::vector<edge> edges() const;

  /// Sum of all active edge capacities.
  capacity_t total_capacity() const;

  /// Out-neighbors of v (active endpoints only).
  std::vector<node_id> out_neighbors(node_id v) const;

  /// In-neighbors of v (active endpoints only).
  std::vector<node_id> in_neighbors(node_id v) const;

  /// Copy with only `keep` active (every other node removed). Ids preserved.
  digraph induced(const std::vector<node_id>& keep) const;

  bool operator==(const digraph&) const = default;

 private:
  int n_ = 0;
  std::vector<bool> active_;
  std::vector<capacity_t> cap_;  // row-major n_ x n_

  capacity_t& cap_ref(node_id u, node_id v) { return cap_[static_cast<std::size_t>(u) * n_ + v]; }
  const capacity_t& cap_ref(node_id u, node_id v) const {
    return cap_[static_cast<std::size_t>(u) * n_ + v];
  }
};

/// Undirected weighted graph on the same fixed-universe model.
/// In the paper, the undirected version of H weights edge {i,j} with
/// cap(i->j) + cap(j->i); `to_undirected` implements exactly that.
class ugraph {
 public:
  ugraph() = default;
  explicit ugraph(int n);

  int universe() const { return n_; }
  int active_count() const { return static_cast<int>(active_nodes().size()); }
  bool is_active(node_id v) const;
  std::vector<node_id> active_nodes() const;

  /// Adds `w` to the weight of undirected edge {u, v}.
  void add_weight(node_id u, node_id v, capacity_t w);

  void remove_node(node_id v);

  capacity_t weight(node_id u, node_id v) const;

  /// Active undirected edges (u < v) in deterministic order.
  std::vector<edge> edges() const;

  ugraph induced(const std::vector<node_id>& keep) const;

 private:
  int n_ = 0;
  std::vector<bool> active_;
  std::vector<capacity_t> w_;  // symmetric row-major

  capacity_t& w_ref(node_id u, node_id v) { return w_[static_cast<std::size_t>(u) * n_ + v]; }
  const capacity_t& w_ref(node_id u, node_id v) const {
    return w_[static_cast<std::size_t>(u) * n_ + v];
  }
};

/// The paper's directed-to-undirected conversion (Section 3): weight of
/// {i, j} is the sum of the two directed capacities.
ugraph to_undirected(const digraph& g);

}  // namespace nab::graph
