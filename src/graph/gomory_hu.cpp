#include "graph/gomory_hu.hpp"

#include <algorithm>
#include <limits>

#include "graph/maxflow.hpp"
#include "util/assert.hpp"

namespace nab::graph {

gomory_hu_tree::gomory_hu_tree(const ugraph& g) : nodes_(g.active_nodes()) {
  const auto n = nodes_.size();
  NAB_ASSERT(n >= 1, "gomory_hu_tree needs at least one active node");
  parent_.assign(n, 0);
  parent_cut_.assign(n, 0);
  index_of_.assign(static_cast<std::size_t>(g.universe()), -1);
  for (std::size_t i = 0; i < n; ++i) index_of_[static_cast<std::size_t>(nodes_[i])] = static_cast<int>(i);

  // Undirected max-flow with cut side extraction: reuse the directed
  // machinery by modeling each undirected edge as two opposing arcs. Built
  // once — max_flow never mutates its input, and rebuilding it per flow was
  // the dominant cost of tree construction on dense graphs.
  digraph d(g.universe());
  for (node_id v = 0; v < g.universe(); ++v)
    if (!g.is_active(v)) d.remove_node(v);
  for (const edge& e : g.edges()) d.add_bidirectional(e.from, e.to, e.cap);

  // Gusfield: for i = 1..n-1, flow from nodes_[i] to its current parent;
  // re-parent any j > i on the source side of the cut.
  for (std::size_t i = 1; i < n; ++i) {
    const node_id s = nodes_[i];
    const node_id t = nodes_[static_cast<std::size_t>(parent_[i])];

    const flow_result fr = max_flow(d, s, t);
    parent_cut_[i] = fr.value;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (parent_[j] == parent_[i] && fr.source_side[static_cast<std::size_t>(nodes_[j])])
        parent_[j] = static_cast<int>(i);
    }
  }
}

capacity_t gomory_hu_tree::min_cut(node_id u, node_id v) const {
  NAB_ASSERT(u >= 0 && v >= 0, "gomory_hu_tree::min_cut invalid node");
  const int iu = index_of_[static_cast<std::size_t>(u)];
  const int iv = index_of_[static_cast<std::size_t>(v)];
  NAB_ASSERT(iu >= 0 && iv >= 0, "gomory_hu_tree::min_cut node not active");
  if (iu == iv) return 0;

  // Walk both nodes up to their common ancestor, tracking the minimum edge.
  auto depth = [&](int x) {
    int d = 0;
    while (x != 0) {
      x = parent_[static_cast<std::size_t>(x)];
      ++d;
    }
    return d;
  };
  int a = iu, b = iv;
  int da = depth(a), db = depth(b);
  capacity_t best = std::numeric_limits<capacity_t>::max();
  while (da > db) {
    best = std::min(best, parent_cut_[static_cast<std::size_t>(a)]);
    a = parent_[static_cast<std::size_t>(a)];
    --da;
  }
  while (db > da) {
    best = std::min(best, parent_cut_[static_cast<std::size_t>(b)]);
    b = parent_[static_cast<std::size_t>(b)];
    --db;
  }
  while (a != b) {
    best = std::min(best, parent_cut_[static_cast<std::size_t>(a)]);
    best = std::min(best, parent_cut_[static_cast<std::size_t>(b)]);
    a = parent_[static_cast<std::size_t>(a)];
    b = parent_[static_cast<std::size_t>(b)];
  }
  return best;
}

capacity_t gomory_hu_tree::minimum_pair_cut() const {
  if (nodes_.size() < 2) return 0;
  capacity_t best = std::numeric_limits<capacity_t>::max();
  for (std::size_t i = 1; i < nodes_.size(); ++i) best = std::min(best, parent_cut_[i]);
  return best;
}

std::vector<edge> gomory_hu_tree::tree_edges() const {
  std::vector<edge> out;
  for (std::size_t i = 1; i < nodes_.size(); ++i)
    out.push_back({nodes_[i], nodes_[static_cast<std::size_t>(parent_[i])], parent_cut_[i]});
  return out;
}

}  // namespace nab::graph
