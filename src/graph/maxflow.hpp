#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace nab::graph {

/// Result of a max-flow computation between two nodes.
struct flow_result {
  /// Max-flow value == min-cut value (Papadimitriou & Steiglitz, ch. 6.1 —
  /// the duality the paper leans on for Phase-1 rates).
  capacity_t value = 0;

  /// flow[u * n + v] = net flow pushed on directed edge u -> v.
  std::vector<capacity_t> flow;

  /// source_side[v] = true iff v is reachable from s in the residual graph;
  /// the edges from source_side to its complement form a minimum cut.
  std::vector<bool> source_side;

  capacity_t flow_on(node_id u, node_id v, int n) const {
    return flow[static_cast<std::size_t>(u) * n + v];
  }
};

/// Dinic's algorithm on the active subgraph of `g`.
/// Preconditions: s != t, both active. O(V^2 E).
flow_result max_flow(const digraph& g, node_id s, node_id t);

/// MINCUT(g, s, t) of the paper: max-flow value from s to t.
/// Returns 0 when t is unreachable from s.
capacity_t min_cut_value(const digraph& g, node_id s, node_id t);

/// The paper's gamma_k: min over active j != source of MINCUT(g, source, j)
/// — the best achievable unreliable-broadcast rate from `source` (Appendix A).
/// Returns 0 if some active node is unreachable.
capacity_t broadcast_mincut(const digraph& g, node_id source);

/// Max-flow on an undirected graph (each undirected edge may carry flow
/// either way up to its weight). Used by Gomory–Hu and U_k computations.
capacity_t min_cut_value_undirected(const ugraph& g, node_id s, node_id t);

}  // namespace nab::graph
