#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace nab::graph {

/// Complete digraph on n nodes, every directed link with capacity `cap`.
digraph complete(int n, capacity_t cap = 1);

/// The 4-node directed graph of the paper's Figure 1(a): unit-capacity
/// bidirectional links on pairs {1,2}, {1,3}, {1,4}, {2,3}, {3,4} (0-based:
/// {0,1}, {0,2}, {0,3}, {1,2}, {2,3}); no link between nodes 2 and 4. This
/// reproduces every value the paper states for it: MINCUT(G,1,2) =
/// MINCUT(G,1,4) = 2, MINCUT(G,1,3) = 3, gamma = 2, and U_k = 2 after the
/// {2,3} dispute (tests assert all of these).
digraph paper_fig1a();

/// Figure 1(b): Figure 1(a) after nodes 2 and 3 (0-based 1 and 2) are found
/// in dispute — both directed links between them removed.
digraph paper_fig1b();

/// The 4-node directed graph of Figure 2(a): capacities (1->2)=2, (1->3)=1,
/// (2->3)=1, (2->4)=1, (3->4)=1 (0-based shift). gamma = 2 and the two
/// unit-capacity spanning trees of Figure 2(c) pack into it, sharing link
/// (1,2) — exactly the paper's worked example.
digraph paper_fig2();

/// Bidirectional ring 0-1-...-n-1-0 with uniform capacity.
digraph ring(int n, capacity_t cap = 1);

/// Erdos–Renyi digraph: each ordered pair (u, v) gets a link with
/// probability p and capacity uniform in [cap_lo, cap_hi]. A bidirectional
/// Hamiltonian cycle with capacity cap_lo is added first so the result is
/// always strongly connected.
digraph erdos_renyi(int n, double p, capacity_t cap_lo, capacity_t cap_hi, rng& rand);

/// Random d-regular-ish bidirectional graph: d distinct neighbors per node
/// (best effort via random matching sweeps), capacities uniform in
/// [cap_lo, cap_hi] (same both ways per pair).
digraph random_regular(int n, int d, capacity_t cap_lo, capacity_t cap_hi, rng& rand);

/// "Dumbbell" used by the intro-claim bench (E6): two complete clusters of
/// size n/2 with fat internal links (capacity `fat`) joined by thin
/// bidirectional bridges of capacity `thin`. Capacity-oblivious BB pays for
/// the thin links on every bit; NAB routes around them.
digraph dumbbell(int n, capacity_t fat, capacity_t thin);

/// Path of `hops` complete clusters of size `cluster` (consecutive clusters
/// fully interconnected), uniform capacity. Used by the pipelining bench
/// (E7, Figure 3): broadcast must travel `hops` hops.
digraph path_of_cliques(int hops, int cluster, capacity_t cap = 1);

/// Binary hypercube on 2^dim nodes: nodes u, v are linked (bidirectionally,
/// capacity `cap`) iff their ids differ in exactly one bit. Vertex
/// connectivity equals `dim`, so it supports f <= (dim-1)/2 — a classic
/// sparse-but-resilient datacenter topology for fleet sweeps.
digraph hypercube(int dim, capacity_t cap = 1);

/// Clustered WAN: `clusters` complete clusters of `cluster_size` nodes with
/// fat intra-cluster links (capacity `intra`), plus thin inter-cluster links
/// (capacity `inter`) forming a complete graph between clusters — every pair
/// of clusters is joined on `trunks` node pairs chosen round-robin, so
/// inter-cluster connectivity grows with `trunks`. Models geo-distributed
/// replica groups whose WAN trunks are the capacity bottleneck.
digraph clustered_wan(int clusters, int cluster_size, capacity_t intra,
                      capacity_t inter, int trunks = 2);

/// Complete graph with uniform capacity `fat` except one bidirectional weak
/// link of capacity 1 between the last two nodes. The intro-claim bench
/// (E6): capacity-oblivious protocols exchange full-length values over every
/// link and are throttled by the weak link, so their throughput stays O(1)
/// while NAB's grows with `fat` — an unbounded gap.
digraph complete_with_weak_link(int n, capacity_t fat);

}  // namespace nab::graph
