#include "graph/dot.hpp"

#include <sstream>

namespace nab::graph {

std::string to_dot(const digraph& g, const std::vector<node_id>& highlight) {
  std::ostringstream out;
  out << "digraph G {\n";
  for (node_id v : g.active_nodes()) {
    out << "  n" << v << " [label=\"" << v << "\"";
    for (node_id h : highlight)
      if (h == v) {
        out << ", style=filled, fillcolor=salmon";
        break;
      }
    out << "];\n";
  }
  for (const edge& e : g.edges())
    out << "  n" << e.from << " -> n" << e.to << " [label=\"" << e.cap << "\"];\n";
  out << "}\n";
  return out.str();
}

std::string to_dot(const ugraph& g) {
  std::ostringstream out;
  out << "graph G {\n";
  for (node_id v : g.active_nodes()) out << "  n" << v << " [label=\"" << v << "\"];\n";
  for (const edge& e : g.edges())
    out << "  n" << e.from << " -- n" << e.to << " [label=\"" << e.cap << "\"];\n";
  out << "}\n";
  return out.str();
}

}  // namespace nab::graph
