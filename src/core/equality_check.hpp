#pragma once

#include <vector>

#include "core/adversary.hpp"
#include "core/coding.hpp"
#include "core/value.hpp"
#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::core {

/// Result of one Equality Check round (Algorithm 1).
struct equality_check_result {
  /// flags[v] = true iff node v's checks failed on some incoming edge
  /// (the MISMATCH flag of step 3). Honest computation; a corrupt node may
  /// later announce a different flag in step 2.2.
  std::vector<bool> flags;
  /// Per-node ground-truth transcripts (p2_* sections filled in).
  std::vector<node_claims> truth;
  double time = 0.0;
};

/// Runs Algorithm 1 on the active subgraph of g: every node i sends
/// Y_e = X_i C_e on each outgoing edge e (z_e coded symbols of L/rho bits),
/// then verifies Y_d = X_i C_d on each incoming edge d. A single round,
/// no forwarding — a faulty node can send garbage but cannot tamper traffic
/// between fault-free nodes (the algorithm's salient feature).
///
/// `values[v]` is node v's Phase-1 value (shape rho x slices). Takes exactly
/// L/rho_k time on the wire: each link e carries z_e (L/rho) bits.
equality_check_result run_equality_check(sim::network& net, const graph::digraph& g,
                                         const sim::fault_set& faults,
                                         const coding_scheme& coding,
                                         const std::vector<value_vector>& values,
                                         nab_adversary* adv = nullptr);

}  // namespace nab::core
