#pragma once

#include <set>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace nab::core {

/// Accumulated fault knowledge across NAB instances: node pairs found in
/// dispute (at least one of each pair is faulty) and nodes convicted as
/// faulty. All honest nodes hold identical copies — dispute control
/// disseminates the evidence with classical BB.
class dispute_record {
 public:
  /// Records an unordered disputing pair.
  void add_dispute(graph::node_id a, graph::node_id b);

  void convict(graph::node_id v) { convicted_.insert(v); }

  bool in_dispute(graph::node_id a, graph::node_id b) const;
  bool is_convicted(graph::node_id v) const { return convicted_.count(v) > 0; }

  const std::set<std::pair<graph::node_id, graph::node_id>>& pairs() const {
    return pairs_;
  }
  const std::set<graph::node_id>& convicted() const { return convicted_; }

  /// Number of distinct nodes node v is in dispute with.
  int dispute_degree(graph::node_id v) const;

  bool empty() const { return pairs_.empty() && convicted_.empty(); }

 private:
  std::set<std::pair<graph::node_id, graph::node_id>> pairs_;  // (min, max)
  std::set<graph::node_id> convicted_;
};

/// The paper's Omega_k: all subgraphs of g with exactly (n - f) nodes such
/// that no two of them have been found in dispute. Returned as sorted node
/// lists. `n` is the ORIGINAL network size (the universe), per the paper —
/// every returned subset is drawn from g's currently active nodes.
std::vector<std::vector<graph::node_id>> omega_subgraphs(const graph::digraph& g, int f,
                                                         const dispute_record& disputes);

/// U_k = min over H in Omega_k of the pairwise min cut of the undirected
/// version of H (Section 3, "Choice of Parameter rho_k"). Returns 0 when
/// Omega_k is empty or some H is disconnected.
///
/// Each H gets a cheap BFS connectivity pre-check first — a disconnected H
/// short-circuits the whole minimum to 0 without running any min-cut on the
/// remaining subgraphs. Connected ones run Stoer–Wagner (measured faster
/// than a Gomory–Hu-tree query at registry sizes; see compute_uk in
/// omega.cpp). Sweeps share results via core::omega_cache.
graph::capacity_t compute_uk(const graph::digraph& g, int f,
                             const dispute_record& disputes);

/// Same minimum over an already-enumerated Omega_k (the omega_cache layer
/// computes the enumeration once and derives U_k from it).
graph::capacity_t compute_uk(const graph::digraph& g,
                             const std::vector<std::vector<graph::node_id>>& omega);

/// rho_k = max(U_k / 2, 1): the paper requires rho_k <= U_k / 2 and
/// minimizes Equality Check time at equality; the floor at 1 keeps the
/// protocol well-defined on degenerate graphs.
graph::capacity_t compute_rho(graph::capacity_t uk);

}  // namespace nab::core
