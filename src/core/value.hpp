#pragma once

#include <cstdint>
#include <vector>

#include "gf/gf2_16.hpp"
#include "sim/run_arena.hpp"
#include "util/rng.hpp"

namespace nab::core {

/// A 16-bit wire word — the base unit of every NAB payload.
using word = gf::gf2_16::value_type;

/// An L-bit broadcast value, stored as 16-bit words and *reshaped* per NAB
/// instance into rho symbols of `slices` words each (L = rho * slices * 16).
///
/// The paper represents the value as rho symbols from GF(2^{L/rho}); we
/// realize each symbol as a vector of GF(2^16) slices and apply coding
/// coefficients slice-wise (DESIGN.md §2). Symbol s consists of words
/// [s*slices, (s+1)*slices).
class value_vector {
 public:
  value_vector() = default;

  /// Zero value of the given shape.
  value_vector(int rho, int slices);

  /// Reshape `words` into rho symbols, zero-padding to a whole number of
  /// slices per symbol.
  static value_vector reshape(const std::vector<word>& words, int rho);

  /// Uniformly random value of the given shape.
  static value_vector random(int rho, int slices, rng& rand);

  int rho() const { return rho_; }
  int slices() const { return slices_; }

  /// L in bits (after padding).
  std::uint64_t bits() const { return static_cast<std::uint64_t>(rho_) * slices_ * 16; }

  word symbol(int s, int slice) const;
  void set_symbol(int s, int slice, word v);

  /// All words of symbol s.
  std::vector<word> symbol_words(int s) const;

  const std::vector<word>& words() const { return words_; }

  /// Pack into 64-bit transport words (4 symbols-words per transport word).
  sim::payload pack() const;

  /// Inverse of pack for a value of known shape.
  static value_vector unpack(int rho, int slices, const sim::payload& packed);

  bool operator==(const value_vector&) const = default;

 private:
  int rho_ = 0;
  int slices_ = 0;
  std::vector<word> words_;  // rho_ * slices_, symbol-major
};

}  // namespace nab::core
