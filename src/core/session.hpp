#pragma once

#include <map>
#include <optional>
#include <vector>

#include "bb/broadcast.hpp"
#include "bb/channels.hpp"
#include "bb/claim_bcast.hpp"
#include "core/adversary.hpp"
#include "core/capacity.hpp"
#include "core/coding.hpp"
#include "core/dispute.hpp"
#include "core/equality_check.hpp"
#include "core/omega.hpp"
#include "core/omega_cache.hpp"
#include "core/phase1.hpp"
#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/run_arena.hpp"
#include "util/rng.hpp"

namespace nab::core {

/// Static configuration of a NAB session.
struct session_config {
  graph::digraph g;                  ///< the original network G = G_1
  int f = 1;                         ///< fault budget (f < n/3)
  graph::node_id source = 0;         ///< broadcasting node (the paper's node 1)
  std::uint64_t coding_seed = 0x5eed;///< seed for the shared coding matrices
  bool certify = true;               ///< certify Theorem-1 condition, regenerating on failure
  /// Certification is skipped (trusting Theorem 1's probabilistic guarantee)
  /// when certify_cost_estimate exceeds this — on high-capacity networks
  /// rho_k grows with link capacities and exact certification becomes a
  /// one-off multi-second computation. The default admits K_16-class
  /// topologies (~0.6G ops at f = 2, ~0.3 s with the batched GF kernels);
  /// the seed's 200M limit was calibrated to the 3x-slower pre-axpy
  /// elimination and silently skipped them.
  std::uint64_t certify_cost_limit = 1'000'000'000;
  propagation_mode propagation = propagation_mode::cut_through;
  /// Classical-BB engine for the step-2.2 flag broadcast. auto_select uses
  /// phase-king when the participant count allows (> 4f), else EIG; the
  /// choice cannot affect asymptotic throughput (ablation A3). Explicitly
  /// requesting phase_king on <= 4f participants is rejected at session
  /// construction (the auto_select boundary), not deep inside a run.
  bb::bb_protocol flag_protocol = bb::bb_protocol::eig;
  /// Claim-dissemination backend for Phase-3 DC1 (bb/claim_bcast.hpp): eig
  /// is the seed path and correctness oracle at Theta(n^f) * L claim
  /// traffic; collapsed drops DC1 to O(n^2 digest + disputes * L), which is
  /// what opens the n >= 64 presets; phase_king is the polynomial
  /// full-transcript midpoint (> 4f participants, validated at
  /// construction). Dispute sets, convictions, and agreed values are
  /// byte-identical across backends.
  bb::claim_backend claim_backend = bb::claim_backend::eig;
  /// Pool per-instance protocol memory (transcripts, claim maps, payloads)
  /// in a run arena that resets between instances. Results are bit-identical
  /// either way — the switch exists for the arena-equivalence property tests
  /// and allocation-count baselines.
  bool pool_memory = true;
};

/// Everything observable about one NAB instance.
struct instance_report {
  int index = 0;
  int active_nodes = 0;
  graph::capacity_t gamma = 0;  ///< gamma_k used by Phase 1
  graph::capacity_t uk = 0;     ///< U_k of Omega_k
  graph::capacity_t rho = 0;    ///< rho_k = max(U_k/2, 1)
  bool default_outcome = false; ///< source excluded: agreed on the default value
  bool phase1_only = false;     ///< >= f nodes excluded: Phases 2-3 skipped
  bool mismatch_announced = false;
  bool dispute_phase_run = false;
  double time_phase1 = 0.0;
  double time_equality_check = 0.0;
  double time_flags = 0.0;
  double time_phase3 = 0.0;
  /// Wire bits DC1's claim dissemination consumed (0 when Phase 3 did not
  /// run) and, for the collapsed backend, how many (claimant, receiver)
  /// pairs needed the full-transcript retrieval fallback.
  std::uint64_t claim_bits = 0;
  int claim_fallbacks = 0;
  /// outputs[v] = words decided by node v (honest nodes meaningful).
  std::vector<std::vector<word>> outputs;
  bool agreement = true;  ///< all honest outputs identical
  bool validity = true;   ///< honest source ==> outputs == input
  std::vector<std::pair<graph::node_id, graph::node_id>> new_disputes;
  std::vector<graph::node_id> newly_convicted;

  double total_time() const {
    return time_phase1 + time_equality_check + time_flags + time_phase3;
  }
};

/// Aggregates across a run of Q instances.
struct session_stats {
  int instances = 0;
  int dispute_phases = 0;
  double elapsed = 0.0;
  std::uint64_t bits_broadcast = 0;
  /// Cumulative DC1 claim traffic (wire bits) and collapsed-backend
  /// retrieval fallbacks across all dispute phases of the session.
  std::uint64_t claim_bits = 0;
  int claim_fallbacks = 0;
  double throughput() const { return elapsed > 0 ? bits_broadcast / elapsed : 0.0; }
};

/// The NAB protocol driver: runs repeated Byzantine-broadcast instances on
/// an evolving instance graph G_k, exactly as Section 2 prescribes —
/// Phase 1 (tree broadcast at rate gamma_k), Phase 2 (equality check at
/// rate rho_k = U_k/2 plus 1-bit flag BB), Phase 3 (dispute control) only
/// when misbehavior was announced. Dispute evidence accumulates in a
/// dispute_record shared by all honest nodes; convicted nodes and disputed
/// edges leave the graph between instances.
///
/// The session owns the simulated clock: every transmitted bit of every
/// phase is accounted against the link capacities, so `stats().throughput()`
/// is a *measured* throughput directly comparable with the paper's
/// gamma* rho* / (gamma* + rho*) bound.
class session {
 public:
  /// `faults` fixes the corrupt nodes for the whole session (the paper's
  /// model); `adv` drives their behavior (nullptr = corrupt nodes behave
  /// honestly). Throws nab::error when n <= 3f or connectivity < 2f+1.
  ///
  /// `arena` lends the session an external run arena (the fleet runtime
  /// passes one per executor shard, so consecutive sessions on a shard reuse
  /// the same pages); nullptr = the session owns a private arena. Either
  /// way the session controls the arena's lifecycle: it is ambient exactly
  /// for the duration of each run_instance and is reset — empty — between
  /// instances, so nothing allocated from it may outlive the instance that
  /// allocated it (instance reports copy into plain heap storage).
  session(session_config cfg, const sim::fault_set& faults,
          nab_adversary* adv = nullptr, sim::run_arena* arena = nullptr);

  /// Runs one instance broadcasting `input` (16-bit words; L = 16*|input|).
  /// `source_override` >= 0 broadcasts from that node instead of the
  /// configured source — repeated executions may rotate the broadcaster (a
  /// replicated state machine has every replica propose), sharing the
  /// accumulated dispute evidence and instance graph across all of them.
  instance_report run_instance(const std::vector<word>& input,
                               graph::node_id source_override = -1);

  /// Runs `q` instances with uniformly random inputs of `words_per_input`
  /// words each. `rotate_sources` cycles the broadcaster over the currently
  /// active nodes.
  std::vector<instance_report> run_many(int q, std::size_t words_per_input, rng& rand,
                                        bool rotate_sources = false);

  const graph::digraph& current_graph() const { return gk_; }
  const dispute_record& disputes() const { return record_; }
  const session_stats& stats() const { return stats_; }
  int instance_index() const { return stats_.instances; }

  /// gamma_k / rho_k that the *next* instance will use (for the configured
  /// source; gamma is source-dependent).
  graph::capacity_t next_gamma();
  graph::capacity_t next_rho();

 private:
  void refresh_graph_state();  // uk/rho/coding after G_k changed
  /// Per-source Phase-1 state (gamma_k and the arborescence packing depend
  /// on who broadcasts; U_k / rho_k / coding do not) — served from the
  /// process-wide omega_cache, shared read-only across sessions.
  const phase1_plan& source_state_for(graph::node_id source);
  bb::channel_plan& ensure_channels();  // lazy, built once over the original G

  /// The run arena serving this session's instances (borrowed or owned).
  sim::run_arena& arena() { return arena_ != nullptr ? *arena_ : owned_arena_; }

  session_config cfg_;
  sim::fault_set faults_;
  nab_adversary* adv_;
  sim::run_arena* arena_ = nullptr;  ///< borrowed (per-shard) arena, if any
  sim::run_arena owned_arena_;
  graph::digraph gk_;
  dispute_record record_;
  session_stats stats_;

  // Cached per-G_k state. `analysis_` (Omega_k / U_k / rho_k) comes from the
  // omega_cache; uk_/rho_ mirror it for the hot accessors.
  bool dirty_ = true;
  std::shared_ptr<const omega_analysis> analysis_;
  graph::capacity_t uk_ = 0;
  graph::capacity_t rho_ = 0;
  coding_scheme coding_;
  std::map<graph::node_id, std::shared_ptr<const phase1_plan>> per_source_;
  std::optional<bb::channel_plan> channels_;
  std::uint64_t coding_generation_ = 0;
};

/// Everything a one-shot session execution produces, by value.
struct session_run {
  std::vector<instance_report> reports;
  session_stats stats;
  dispute_record disputes;
  graph::digraph final_graph;  ///< G_k after the last instance
};

/// One-shot, re-entrant entry point: constructs a session from `cfg`, runs
/// `q` instances of `words_per_input` random words drawn from a private
/// rng(seed), and returns every observable by value. No global mutable state
/// is touched (the GF tables are immutable after first use), so concurrent
/// calls from different threads are safe as long as each call owns its
/// `faults`/`adv`/`arena` arguments — this is the fleet runtime's shard
/// body. `arena` is the optional per-shard run arena (see session::session);
/// it must be thread-confined to the caller.
session_run run_session(session_config cfg, const sim::fault_set& faults,
                        nab_adversary* adv, int q, std::size_t words_per_input,
                        std::uint64_t seed, bool rotate_sources = false,
                        sim::run_arena* arena = nullptr);

}  // namespace nab::core
