#include "core/strategies.hpp"

namespace nab::core {
namespace {

chunk flipped(const chunk& honest) {
  chunk out = honest;
  for (word& w : out) w = static_cast<word>(~w);
  if (out.empty()) out.push_back(0xFFFF);
  return out;
}

}  // namespace

chunk phase1_corruptor::phase1_forward_chunk(int, graph::node_id, graph::node_id to,
                                             const chunk& honest) {
  if (only_to_ >= 0 && to != only_to_) return honest;
  return flipped(honest);
}

chunk phase1_corruptor::phase1_source_chunk(int, graph::node_id to, const chunk& honest) {
  if (only_to_ >= 0 && to != only_to_) return honest;
  return flipped(honest);
}

chunk equivocating_source::phase1_source_chunk(int, graph::node_id to,
                                               const chunk& honest) {
  return minority_.count(to) > 0 ? flipped(honest) : honest;
}

coded_symbols phase2_liar::phase2_coded(graph::node_id, graph::node_id,
                                        const coded_symbols& honest) {
  coded_symbols out = honest;
  for (word& w : out.words) w = static_cast<word>(rand_.below(65536));
  return out;
}

node_claims claim_forger::phase3_claims(graph::node_id, const node_claims& honest) {
  node_claims out = honest;
  // Deny the true content of everything received from the victim.
  for (auto& [key, c] : out.p1_received)
    if (std::get<1>(key) == victim_)
      for (word& w : c) w = static_cast<word>(w ^ 0xA5A5);
  for (auto& [key, c] : out.p2_received)
    if (key.first == victim_)
      for (word& w : c.words) w = static_cast<word>(w ^ 0xA5A5);
  return out;
}

chunk dispute_farmer::phase1_forward_chunk(int, graph::node_id, graph::node_id,
                                           const chunk& honest) {
  return flipped(honest);
}

void stealth_disputer::on_instance_begin(int, const graph::digraph& gk) {
  gk_ = &gk;
  victim_.clear();
  honest_sent_.clear();
}

coded_symbols stealth_disputer::phase2_coded(graph::node_id u, graph::node_id v,
                                             const coded_symbols& honest) {
  // Pick (and stick to) one fresh victim edge for this node this instance.
  if (victim_.find(u) == victim_.end()) {
    victim_[u] = -1;
    if (gk_ != nullptr) {
      for (graph::node_id w : gk_->out_neighbors(u)) {
        if (burned_.count({std::min(u, w), std::max(u, w)}) == 0) {
          victim_[u] = w;
          break;
        }
      }
    }
  }
  if (victim_[u] != v) return honest;
  burned_.insert({std::min(u, v), std::max(u, v)});
  honest_sent_[{u, v}] = honest;
  coded_symbols lie = honest;
  for (word& w : lie.words) w = static_cast<word>(w ^ 0x0F0F);
  return lie;
}

node_claims stealth_disputer::phase3_claims(graph::node_id, const node_claims& honest) {
  node_claims out = honest;
  // Claim the prescribed (correct) symbols were sent on the lied-on edge, so
  // DC3's replay finds this node self-consistent and only a dispute with the
  // victim remains.
  for (auto& [key, c] : out.p2_sent) {
    const auto it = honest_sent_.find(key);
    if (it != honest_sent_.end()) c = it->second;
  }
  return out;
}

void composite_adversary::assign(graph::node_id node, nab_adversary* delegate) {
  delegates_[node] = delegate;
}

void composite_adversary::on_instance_begin(int instance_index,
                                            const graph::digraph& gk) {
  for (auto& [node, d] : delegates_)
    if (d != nullptr) d->on_instance_begin(instance_index, gk);
}

chunk composite_adversary::phase1_source_chunk(int tree, graph::node_id to,
                                               const chunk& honest) {
  const auto it = delegates_.find(source_);
  return it == delegates_.end() || it->second == nullptr
             ? honest
             : it->second->phase1_source_chunk(tree, to, honest);
}

chunk composite_adversary::phase1_forward_chunk(int tree, graph::node_id from,
                                                graph::node_id to, const chunk& honest) {
  const auto it = delegates_.find(from);
  return it == delegates_.end() || it->second == nullptr
             ? honest
             : it->second->phase1_forward_chunk(tree, from, to, honest);
}

coded_symbols composite_adversary::phase2_coded(graph::node_id u, graph::node_id v,
                                                const coded_symbols& honest) {
  const auto it = delegates_.find(u);
  return it == delegates_.end() || it->second == nullptr
             ? honest
             : it->second->phase2_coded(u, v, honest);
}

bool composite_adversary::phase2_flag(graph::node_id v, bool honest) {
  const auto it = delegates_.find(v);
  return it == delegates_.end() || it->second == nullptr
             ? honest
             : it->second->phase2_flag(v, honest);
}

node_claims composite_adversary::phase3_claims(graph::node_id v,
                                               const node_claims& honest) {
  const auto it = delegates_.find(v);
  return it == delegates_.end() || it->second == nullptr
             ? honest
             : it->second->phase3_claims(v, honest);
}

chunk chaos_adversary::phase1_source_chunk(int, graph::node_id, const chunk& honest) {
  if (!rand_.chance(p_)) return honest;
  chunk out = honest;
  for (word& w : out) w = static_cast<word>(rand_.below(65536));
  return out;
}

chunk chaos_adversary::phase1_forward_chunk(int, graph::node_id, graph::node_id,
                                            const chunk& honest) {
  if (!rand_.chance(p_)) return honest;
  chunk out = honest;
  if (!out.empty()) out[rand_.below(out.size())] ^= static_cast<word>(1 + rand_.below(65535));
  return out;
}

coded_symbols chaos_adversary::phase2_coded(graph::node_id, graph::node_id,
                                            const coded_symbols& honest) {
  if (!rand_.chance(p_)) return honest;
  coded_symbols out = honest;
  for (word& w : out.words)
    if (rand_.chance(0.5)) w = static_cast<word>(rand_.below(65536));
  return out;
}

bool chaos_adversary::phase2_flag(graph::node_id, bool honest) {
  return rand_.chance(p_) ? !honest : honest;
}

node_claims chaos_adversary::phase3_claims(graph::node_id, const node_claims& honest) {
  if (!rand_.chance(p_)) return honest;
  node_claims out = honest;
  for (auto& [key, c] : out.p1_received)
    if (rand_.chance(0.3))
      for (word& w : c) w = static_cast<word>(rand_.below(65536));
  for (auto& [key, c] : out.p2_sent)
    if (rand_.chance(0.3))
      for (word& w : c.words) w = static_cast<word>(rand_.below(65536));
  return out;
}

}  // namespace nab::core
