#include "core/pipeline.hpp"

#include <algorithm>

#include "bb/broadcast.hpp"
#include "bb/channels.hpp"
#include "core/coding.hpp"
#include "core/equality_check.hpp"
#include "core/omega.hpp"
#include "core/omega_cache.hpp"
#include "core/phase1.hpp"
#include "core/value.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "obs/obs.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::core {
namespace {

/// Tree edges grouped by hop level (level 1 = out of the source).
struct level_schedule {
  struct hop {
    int tree;
    graph::node_id from;
    graph::node_id to;
  };
  std::vector<std::vector<hop>> levels;  // index 0 unused
  int depth = 0;
};

level_schedule schedule_trees(const std::vector<graph::spanning_tree>& trees,
                              graph::node_id source, int universe) {
  level_schedule out;
  out.levels.resize(1);
  for (std::size_t t = 0; t < trees.size(); ++t) {
    std::vector<int> depth(static_cast<std::size_t>(universe), -1);
    depth[static_cast<std::size_t>(source)] = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      for (const graph::edge& e : trees[t].edges) {
        if (depth[static_cast<std::size_t>(e.to)] >= 0) continue;
        const int dp = depth[static_cast<std::size_t>(e.from)];
        if (dp >= 0) {
          depth[static_cast<std::size_t>(e.to)] = dp + 1;
          progress = true;
        }
      }
    }
    for (const graph::edge& e : trees[t].edges) {
      const int lvl = depth[static_cast<std::size_t>(e.to)];
      NAB_ASSERT(lvl > 0, "tree edge unreachable from the source");
      if (static_cast<std::size_t>(lvl) >= out.levels.size())
        out.levels.resize(static_cast<std::size_t>(lvl) + 1);
      out.levels[static_cast<std::size_t>(lvl)].push_back(
          {static_cast<int>(t), e.from, e.to});
      out.depth = std::max(out.depth, lvl);
    }
  }
  return out;
}

}  // namespace

pipeline_stats run_pipelined(const pipeline_config& cfg, int q, std::size_t words,
                             rng& rand) {
  NAB_ASSERT(q > 0 && words > 0, "pipeline needs instances and payload");
  const graph::digraph& g = cfg.g;
  const int universe = g.universe();
  const sim::fault_set faults(universe);  // Appendix D regime: fault-free

  const auto plan = omega_cache::instance().plan_for(g, cfg.source);
  const auto gamma = plan->gamma;
  if (gamma < 1) throw error("pipeline: source cannot reach every node");
  const std::vector<graph::spanning_tree>& trees = plan->trees;
  const level_schedule sched = schedule_trees(trees, cfg.source, universe);

  const auto analysis = omega_cache::instance().analyze(g, cfg.f, dispute_record{});
  const auto rho = analysis->rho;
  const coding_scheme coding =
      coding_scheme::generate(g, static_cast<int>(rho), cfg.coding_seed);

  // Inputs and per-instance, per-tree chunk state: holding[i][t][v].
  std::vector<std::vector<word>> inputs(static_cast<std::size_t>(q));
  for (auto& in : inputs) {
    in.resize(words);
    for (auto& w : in) w = static_cast<word>(rand.below(65536));
  }
  std::vector<std::vector<std::vector<chunk>>> holding(
      static_cast<std::size_t>(q),
      std::vector<std::vector<chunk>>(trees.size(),
                                      std::vector<chunk>(static_cast<std::size_t>(universe))));
  const std::uint64_t chunk_bits =
      16 * split_into_chunks(inputs[0], static_cast<int>(gamma))[0].size();

  sim::network net(g);
  bb::channel_plan channels(g, cfg.f,
                            omega_cache::instance().channel_routes_for(g, cfg.f));

  pipeline_stats stats;
  stats.instances = q;
  stats.gamma = gamma;
  stats.rho = rho;
  stats.depth = sched.depth;
  stats.bits = static_cast<std::uint64_t>(q) * 16 * words;

  // Rounds: in round r, instance i (entered at round i) executes hop level
  // r - i + 1; the instance whose last hop lands this round then runs its
  // Equality Check and flag broadcast in the remainder of the round.
  const int total_rounds = q + sched.depth - 1;
  double flags_time_total = 0.0;
  double ec_time_total = 0.0;
  obs::scoped_span schedule_span("pipelined_schedule", net.elapsed());
  for (int r = 0; r < total_rounds; ++r) {
    // Hop transmissions of every in-flight instance — disjoint levels, so
    // no two instances load the same tree edge in the same round.
    for (int i = std::max(0, r - sched.depth + 1); i <= std::min(r, q - 1); ++i) {
      const int level = r - i + 1;
      if (level > sched.depth) continue;
      if (level == 1) {
        const auto shares = split_into_chunks(inputs[static_cast<std::size_t>(i)],
                                              static_cast<int>(gamma));
        for (std::size_t t = 0; t < trees.size(); ++t)
          holding[static_cast<std::size_t>(i)][t][static_cast<std::size_t>(cfg.source)] =
              shares[t];
      }
      for (const auto& h : sched.levels[static_cast<std::size_t>(level)]) {
        auto& inst = holding[static_cast<std::size_t>(i)];
        net.charge(h.from, h.to, chunk_bits);
        inst[static_cast<std::size_t>(h.tree)][static_cast<std::size_t>(h.to)] =
            inst[static_cast<std::size_t>(h.tree)][static_cast<std::size_t>(h.from)];
      }
    }
    net.end_step();

    // Completing instance (if any) verifies within the same round.
    const int done = r - sched.depth + 1;
    if (done >= 0 && done < q) {
      std::vector<value_vector> values(static_cast<std::size_t>(universe));
      for (graph::node_id v : g.active_nodes()) {
        std::vector<chunk> got(trees.size());
        for (std::size_t t = 0; t < trees.size(); ++t)
          got[t] = holding[static_cast<std::size_t>(done)][t][static_cast<std::size_t>(v)];
        const auto assembled = assemble_chunks(got, words);
        values[static_cast<std::size_t>(v)] =
            value_vector::reshape(assembled, static_cast<int>(rho));
        stats.all_valid =
            stats.all_valid && assembled == inputs[static_cast<std::size_t>(done)];
      }
      const auto ec = run_equality_check(net, g, faults, coding, values);
      ec_time_total += ec.time;
      for (graph::node_id v : g.active_nodes())
        if (ec.flags[static_cast<std::size_t>(v)])
          throw error("pipeline: unexpected mismatch in a fault-free run");
      std::vector<bool> flag_inputs(static_cast<std::size_t>(universe), false);
      const auto flags = bb::broadcast_flags(channels, net, faults, flag_inputs, cfg.f,
                                             g.active_nodes());
      flags_time_total += flags.time;
    }
  }
  schedule_span.close(net.elapsed());
  stats.elapsed = net.elapsed();
  stats.all_agreed = true;  // fault-free by construction; validity checked above

  // The same Q instances executed back-to-back without pipelining pay the
  // full depth on every instance (store-and-forward Phase 1): depth hops of
  // L/gamma each (chunk_bits is the padded L/gamma on unit-capacity trees),
  // plus the same per-instance verification costs.
  stats.sequential = q * (sched.depth * static_cast<double>(chunk_bits) +
                          ec_time_total / std::max(1, q) +
                          flags_time_total / std::max(1, q));
  return stats;
}

}  // namespace nab::core
