#pragma once

#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/session.hpp"

namespace nab::core {

/// Human-readable one-line summary of a single instance.
std::string format_instance(const instance_report& r);

/// Aligned multi-line table for a run of instances.
std::string format_instance_table(const std::vector<instance_report>& reports);

/// Session-level summary: instance count, dispute phases, measured
/// throughput, accumulated evidence.
std::string format_session_summary(const session& s);

/// The paper's rate quantities, formatted like the capacity planner output.
std::string format_bounds(const capacity_bounds& b);

/// Tab-separated values for offline analysis (one row per instance, header
/// included) — plot-ready.
std::string to_tsv(const std::vector<instance_report>& reports);

}  // namespace nab::core
