#pragma once

#include <vector>

#include "core/value.hpp"
#include "gf/matrix.hpp"
#include "graph/digraph.hpp"
#include "sim/run_arena.hpp"
#include "util/rng.hpp"

namespace nab::core {

/// The coded payload sent on one edge during Equality Check: z_e coded
/// symbols, each `slices` GF(2^16) words (coded[k*slices + t] = slice t of
/// coded symbol k). Arena-backed: coded symbols are per-instance transcript
/// churn, copied into claim maps and replayed by dispute control.
struct coded_symbols {
  int count = 0;   // z_e
  int slices = 0;  // words per coded symbol
  sim::pooled_vector<word> words;

  bool operator==(const coded_symbols&) const = default;

  sim::payload pack() const;
  static coded_symbols unpack(int count, int slices, const sim::payload& packed);
  std::uint64_t bits() const { return static_cast<std::uint64_t>(count) * slices * 16; }
};

/// The per-edge coding matrices {C_e | e in E_k} of Algorithm 1.
///
/// C_e is a rho x z_e matrix over GF(2^16); entries are drawn independently
/// and uniformly at random (Theorem 1). The scheme is part of the algorithm
/// specification: every node derives the same matrices from the shared seed,
/// so no communication is spent distributing them.
class coding_scheme {
 public:
  coding_scheme() = default;

  /// Generates matrices for every active edge of g.
  static coding_scheme generate(const graph::digraph& g, int rho, std::uint64_t seed);

  int rho() const { return rho_; }

  /// C_e for edge (u, v). Precondition: the edge existed at generation time.
  const gf::matrix<gf::gf2_16>& matrix_for(graph::node_id u, graph::node_id v) const;

  bool has_matrix(graph::node_id u, graph::node_id v) const;

  /// Y_e = X * C_e, applied slice-wise: coded symbol k, slice t equals
  /// sum_s X(s, t) * C_e(s, k).
  coded_symbols encode(const value_vector& x, graph::node_id u, graph::node_id v) const;

  /// Step 2 of Algorithm 1: does the received payload equal X * C_e?
  bool check(const value_vector& x, graph::node_id u, graph::node_id v,
             const coded_symbols& received) const;

 private:
  int rho_ = 0;
  int universe_ = 0;
  std::vector<gf::matrix<gf::gf2_16>> matrices_;  // dense [u*n+v]; empty = no edge

  std::size_t index(graph::node_id u, graph::node_id v) const {
    return static_cast<std::size_t>(u) * universe_ + v;
  }
};

}  // namespace nab::core
