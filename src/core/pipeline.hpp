#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace nab::core {

/// Configuration for the pipelined NAB runner (Appendix D).
struct pipeline_config {
  graph::digraph g;
  int f = 1;
  graph::node_id source = 0;
  std::uint64_t coding_seed = 0x5eed;
};

/// Outcome of a pipelined run.
struct pipeline_stats {
  int instances = 0;
  graph::capacity_t gamma = 0;  ///< gamma of the (static) instance graph
  graph::capacity_t rho = 0;    ///< rho = max(U/2, 1) used by Equality Check
  int depth = 0;              ///< pipe depth = max arborescence depth (hops)
  double elapsed = 0.0;       ///< total simulated time for all instances
  double sequential = 0.0;    ///< time the same Q instances take WITHOUT pipelining
  std::uint64_t bits = 0;
  bool all_agreed = true;
  bool all_valid = true;

  double throughput() const { return elapsed > 0 ? bits / elapsed : 0.0; }
  double sequential_throughput() const {
    return sequential > 0 ? bits / sequential : 0.0;
  }
  double speedup() const { return elapsed > 0 ? sequential / elapsed : 0.0; }
};

/// Appendix D's pipelining under store-and-forward propagation: the time
/// horizon is divided into rounds; instance i enters the pipe in round i and
/// its value advances one hop per round along the packed arborescences, so a
/// new instance COMPLETES every round at steady state — per-instance cost
/// L/gamma + L/rho + O(n^alpha) despite the value traveling `depth` hops.
/// Distinct instances occupy distinct hop levels, so they never contend for
/// the same link in the same round (the property Figure 3 illustrates).
///
/// Fault-free execution (the regime Appendix D analyzes): the run aborts
/// with nab::error if a mismatch flag would have been raised.
pipeline_stats run_pipelined(const pipeline_config& cfg, int q, std::size_t words,
                             rng& rand);

}  // namespace nab::core
