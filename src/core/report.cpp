#include "core/report.hpp"

#include <sstream>

namespace nab::core {
namespace {

std::string pairs_to_string(
    const std::vector<std::pair<graph::node_id, graph::node_id>>& pairs) {
  std::ostringstream out;
  for (const auto& [a, b] : pairs) out << "{" << a << "," << b << "}";
  return out.str();
}

}  // namespace

std::string format_instance(const instance_report& r) {
  std::ostringstream out;
  out << "#" << r.index << " n=" << r.active_nodes << " gamma=" << r.gamma
      << " rho=" << r.rho;
  if (r.default_outcome) out << " [default-outcome]";
  if (r.phase1_only) out << " [phase1-only]";
  out << (r.mismatch_announced ? " MISMATCH" : " clean");
  if (r.dispute_phase_run) {
    out << " dispute-control";
    if (!r.new_disputes.empty()) out << " new=" << pairs_to_string(r.new_disputes);
    if (!r.newly_convicted.empty()) {
      out << " convicted=";
      for (graph::node_id v : r.newly_convicted) out << v << " ";
    }
  }
  out << " t=" << r.total_time();
  out << (r.agreement && r.validity ? " ok" : " CONTRACT-BROKEN");
  return out.str();
}

std::string format_instance_table(const std::vector<instance_report>& reports) {
  std::ostringstream out;
  for (const auto& r : reports) out << "  " << format_instance(r) << "\n";
  return out.str();
}

std::string format_session_summary(const session& s) {
  std::ostringstream out;
  const session_stats& st = s.stats();
  out << "instances=" << st.instances << " dispute-phases=" << st.dispute_phases
      << " elapsed=" << st.elapsed << " bits=" << st.bits_broadcast
      << " throughput=" << st.throughput() << "\n";
  out << "active nodes: " << s.current_graph().active_count() << "/"
      << s.current_graph().universe() << "\n";
  if (!s.disputes().pairs().empty()) {
    out << "dispute pairs:";
    for (const auto& [a, b] : s.disputes().pairs()) out << " {" << a << "," << b << "}";
    out << "\n";
  }
  if (!s.disputes().convicted().empty()) {
    out << "convicted:";
    for (graph::node_id v : s.disputes().convicted()) out << " " << v;
    out << "\n";
  }
  return out.str();
}

std::string format_bounds(const capacity_bounds& b) {
  std::ostringstream out;
  out << "gamma*=" << b.gamma_star << (b.gamma_exact ? " (exact)" : " (estimate)")
      << " U_1=" << b.u1 << " rho*=" << b.rho_star
      << " C_BB<=" << b.capacity_upper_bound << " T_NAB>=" << b.nab_throughput_bound
      << " guaranteed-fraction=" << b.guaranteed_fraction;
  return out.str();
}

std::string to_tsv(const std::vector<instance_report>& reports) {
  std::ostringstream out;
  out << "index\tactive\tgamma\trho\tmismatch\tdispute\tphase1\tec\tflags\tphase3\t"
         "total\tagreement\tvalidity\n";
  for (const auto& r : reports) {
    out << r.index << "\t" << r.active_nodes << "\t" << r.gamma << "\t" << r.rho << "\t"
        << (r.mismatch_announced ? 1 : 0) << "\t" << (r.dispute_phase_run ? 1 : 0)
        << "\t" << r.time_phase1 << "\t" << r.time_equality_check << "\t"
        << r.time_flags << "\t" << r.time_phase3 << "\t" << r.total_time() << "\t"
        << (r.agreement ? 1 : 0) << "\t" << (r.validity ? 1 : 0) << "\n";
  }
  return out.str();
}

}  // namespace nab::core
