#include "core/omega.hpp"

#include <algorithm>

#include "graph/mincut.hpp"
#include "util/assert.hpp"

namespace nab::core {

void dispute_record::add_dispute(graph::node_id a, graph::node_id b) {
  NAB_ASSERT(a != b, "a node cannot dispute itself");
  pairs_.insert({std::min(a, b), std::max(a, b)});
}

bool dispute_record::in_dispute(graph::node_id a, graph::node_id b) const {
  return pairs_.count({std::min(a, b), std::max(a, b)}) > 0;
}

int dispute_record::dispute_degree(graph::node_id v) const {
  int deg = 0;
  for (const auto& [a, b] : pairs_)
    if (a == v || b == v) ++deg;
  return deg;
}

namespace {

void enumerate_subsets(const std::vector<graph::node_id>& nodes, std::size_t target,
                       std::size_t start, std::vector<graph::node_id>& current,
                       const dispute_record& disputes,
                       std::vector<std::vector<graph::node_id>>& out) {
  if (current.size() == target) {
    out.push_back(current);
    return;
  }
  if (nodes.size() - start < target - current.size()) return;  // not enough left
  for (std::size_t i = start; i < nodes.size(); ++i) {
    const graph::node_id candidate = nodes[i];
    bool clean = true;
    for (graph::node_id chosen : current)
      if (disputes.in_dispute(chosen, candidate)) {
        clean = false;
        break;
      }
    if (!clean) continue;
    current.push_back(candidate);
    enumerate_subsets(nodes, target, i + 1, current, disputes, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<graph::node_id>> omega_subgraphs(const graph::digraph& g, int f,
                                                         const dispute_record& disputes) {
  const int n = g.universe();
  NAB_ASSERT(f >= 0 && n - f >= 1, "invalid fault budget for omega_subgraphs");
  const std::vector<graph::node_id> nodes = g.active_nodes();
  const auto target = static_cast<std::size_t>(n - f);
  std::vector<std::vector<graph::node_id>> out;
  if (nodes.size() < target) return out;
  std::vector<graph::node_id> current;
  enumerate_subsets(nodes, target, 0, current, disputes, out);
  return out;
}

namespace {

/// Is the subgraph of `u` induced by `h` connected? A plain BFS — orders of
/// magnitude cheaper than any min-cut, and a disconnected H pins U_k to 0.
bool induced_connected(const graph::ugraph& u, const std::vector<graph::node_id>& h) {
  if (h.size() <= 1) return true;
  std::vector<graph::node_id> stack = {h.front()};
  std::vector<bool> seen(static_cast<std::size_t>(u.universe()), false);
  seen[static_cast<std::size_t>(h.front())] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const graph::node_id v = stack.back();
    stack.pop_back();
    for (graph::node_id w : h) {
      if (seen[static_cast<std::size_t>(w)] || u.weight(v, w) == 0) continue;
      seen[static_cast<std::size_t>(w)] = true;
      ++reached;
      stack.push_back(w);
    }
  }
  return reached == h.size();
}

}  // namespace

graph::capacity_t compute_uk(const graph::digraph& g,
                             const std::vector<std::vector<graph::node_id>>& omega) {
  if (omega.empty()) return 0;
  const graph::ugraph u = to_undirected(g);
  graph::capacity_t best = -1;
  for (const auto& h : omega) {
    if (h.size() < 2) return 0;
    if (!induced_connected(u, h)) return 0;  // cut 0: nothing can be smaller
    // Per-H minimum pair cut via Stoer–Wagner. A Gomory–Hu-tree query
    // (gomory_hu_tree(u.induced(h)).minimum_pair_cut()) answers the same
    // question but measured 3-12x slower across every registry topology —
    // Gusfield's |H|-1 max-flows lose to one dense O(|H|^3) pass at these
    // sizes — so the tree stays on the per-pair reporting path only (see
    // docs/PAPER_MAP.md, "Choice of rho_k").
    const graph::capacity_t cut = graph::pairwise_min_cut(u.induced(h));
    if (best < 0 || cut < best) best = cut;
  }
  return best < 0 ? 0 : best;
}

graph::capacity_t compute_uk(const graph::digraph& g, int f,
                             const dispute_record& disputes) {
  return compute_uk(g, omega_subgraphs(g, f, disputes));
}

graph::capacity_t compute_rho(graph::capacity_t uk) {
  return std::max<graph::capacity_t>(uk / 2, 1);
}

}  // namespace nab::core
