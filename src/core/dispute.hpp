#pragma once

#include <utility>
#include <vector>

#include "bb/channels.hpp"
#include "bb/claim_bcast.hpp"
#include "core/adversary.hpp"
#include "core/coding.hpp"
#include "core/omega.hpp"
#include "graph/digraph.hpp"
#include "graph/tree_packing.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::core {

/// Everything Phase 3 needs to replay an instance: the deterministic
/// protocol inputs plus the ground-truth transcripts gathered in Phases 1-2.
struct instance_context {
  graph::node_id source = 0;
  std::vector<word> input;  ///< the source's true input words
  int rho = 1;
  std::vector<graph::spanning_tree> trees;
  const coding_scheme* coding = nullptr;
  /// Ground-truth per-node transcripts (p1 and p2 sections merged).
  std::vector<node_claims> truth;
  /// The per-node MISMATCH flags as agreed by the step-2.2 broadcast.
  std::vector<bool> agreed_flags;
  /// True when the instance ran over links that can erase messages
  /// (sim::link_fault_model with nonzero loss attached). Dispute control
  /// then classifies a *missing* receipt claim as erasure — skip, no
  /// dispute, since honest ARQ exhaustion leaves exactly that signature —
  /// while *mismatching* content stays tamper (disputed as on clean links).
  /// False keeps classification byte-identical to the clean simulator.
  bool lossy_links = false;
};

/// Result of one execution of dispute control.
struct dispute_outcome {
  /// Newly discovered disputing pairs (already merged into the record).
  std::vector<std::pair<graph::node_id, graph::node_id>> new_disputes;
  /// Nodes convicted this round (DC3 re-execution + DC4 cover intersection).
  std::vector<graph::node_id> newly_convicted;
  /// The instance's agreed output (the DC1 broadcast of the source input).
  std::vector<word> agreed_value;
  /// Wire bits DC1's claim dissemination consumed (the Theta(n^f) * L term
  /// the collapsed backend collapses — recorded so the drop is asserted per
  /// run, not eyeballed).
  std::uint64_t claim_bits = 0;
  /// Collapsed backend only: (claimant, receiver) pairs that needed the
  /// full-transcript retrieval round (digest-mismatched minority).
  int claim_fallbacks = 0;
  double time = 0.0;
};

/// Phase 3 of NAB (Appendix B).
///
/// DC1: every node classical-BB-broadcasts its claimed transcripts, and the
///      source broadcasts its input (which becomes the instance outcome —
///      correctness of the k-th instance is a byproduct).
/// DC2: cross-checks sender claims against receiver claims; any mismatch
///      puts the pair in dispute (at least one of the two is faulty; two
///      fault-free nodes never dispute).
/// DC3: replays each node's prescribed deterministic behavior from its
///      claimed receipts; inconsistency convicts the node outright.
/// DC4: intersects all fault sets of size <= f that explain the cumulative
///      disputes; nodes in every explaining set are necessarily faulty.
///
/// `record` accumulates across instances and is updated in place. `f_bb` is
/// the residual fault budget used by the classical BB sub-protocol
/// (f minus previously convicted nodes); `f` is the paper's global budget
/// used for explaining-set enumeration.
///
/// `backend` selects the DC1 claim-dissemination engine (bb/claim_bcast.hpp;
/// auto_select resolves on the channel plan's participant count), and
/// `digest_seed` feeds the collapsed backend's digest evaluation points
/// (sessions pass their coding_seed — shared protocol state, like the
/// coding matrices). Dispute sets, convictions, and the agreed value are
/// byte-identical across backends — only the wire cost (claim_bits)
/// differs.
dispute_outcome run_dispute_control(sim::network& net, bb::channel_plan& channels,
                                    const graph::digraph& gk,
                                    const sim::fault_set& faults, int f_bb, int f,
                                    const instance_context& ctx,
                                    dispute_record& record,
                                    nab_adversary* adv = nullptr,
                                    bb::claim_backend backend = bb::claim_backend::eig,
                                    std::uint64_t digest_seed = 0);

/// DC4 in isolation: the set of nodes contained in *every* fault set of size
/// <= f that covers `pairs`. Throws nab::error if no such set exists (which
/// would contradict dispute soundness). Exposed for tests and analysis.
std::vector<graph::node_id> explaining_intersection(
    const std::set<std::pair<graph::node_id, graph::node_id>>& pairs, int f);

}  // namespace nab::core
