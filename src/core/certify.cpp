#include "core/certify.hpp"

#include <cmath>

#include "gf/linalg.hpp"
#include "util/assert.hpp"

namespace nab::core {

gf::matrix<gf::gf2_16> build_check_matrix(const graph::digraph& g,
                                          const std::vector<graph::node_id>& h,
                                          const coding_scheme& coding) {
  NAB_ASSERT(!h.empty(), "check matrix needs a nonempty subgraph");
  const int rho = coding.rho();
  const std::size_t blocks = h.size() - 1;  // last node of h is the reference

  // Position of each node among the non-reference blocks; -1 for reference
  // and for nodes outside H.
  std::vector<int> pos(static_cast<std::size_t>(g.universe()), -1);
  for (std::size_t i = 0; i + 1 < h.size(); ++i)
    pos[static_cast<std::size_t>(h[i])] = static_cast<int>(i);
  const graph::node_id ref = h.back();

  // Count columns: total capacity of directed edges inside H.
  std::size_t cols = 0;
  for (const graph::edge& e : g.edges()) {
    const bool from_in = pos[static_cast<std::size_t>(e.from)] >= 0 || e.from == ref;
    const bool to_in = pos[static_cast<std::size_t>(e.to)] >= 0 || e.to == ref;
    if (from_in && to_in) cols += static_cast<std::size_t>(e.cap);
  }

  gf::matrix<gf::gf2_16> ch(blocks * static_cast<std::size_t>(rho), cols);
  std::size_t col = 0;
  for (const graph::edge& e : g.edges()) {
    const bool from_in = pos[static_cast<std::size_t>(e.from)] >= 0 || e.from == ref;
    const bool to_in = pos[static_cast<std::size_t>(e.to)] >= 0 || e.to == ref;
    if (!from_in || !to_in) continue;
    const auto& ce = coding.matrix_for(e.from, e.to);
    NAB_ASSERT(static_cast<graph::capacity_t>(ce.cols()) == e.cap,
               "coding matrix width must equal edge capacity");
    for (std::size_t k = 0; k < ce.cols(); ++k, ++col) {
      // Block of the tail node gets C_e, block of the head gets -C_e; the
      // two coincide over GF(2^16). The reference node has no block.
      const int pi = pos[static_cast<std::size_t>(e.from)];
      const int pj = pos[static_cast<std::size_t>(e.to)];
      for (int s = 0; s < rho; ++s) {
        const word c = ce.at(static_cast<std::size_t>(s), k);
        if (pi >= 0)
          ch.at(static_cast<std::size_t>(pi) * rho + s, col) = c;
        if (pj >= 0)
          ch.at(static_cast<std::size_t>(pj) * rho + s, col) = c;
      }
    }
  }
  NAB_ASSERT(col == cols, "column count mismatch while building C_H");
  return ch;
}

certification certify_coding(const graph::digraph& g, int f,
                             const dispute_record& disputes,
                             const coding_scheme& coding) {
  certification out;
  out.ok = true;
  for (const auto& h : omega_subgraphs(g, f, disputes)) {
    if (h.size() <= 1) continue;  // nothing to distinguish
    auto ch = build_check_matrix(g, h, coding);
    const std::size_t need = (h.size() - 1) * static_cast<std::size_t>(coding.rho());
    if (gf::rank(std::move(ch)) != need) {
      out.ok = false;
      out.failing.push_back(h);
    }
  }
  return out;
}

double theorem1_failure_bound(int n, int f, int rho, int field_bits) {
  NAB_ASSERT(n > f && f >= 0 && rho > 0 && field_bits > 0,
             "invalid Theorem 1 parameters");
  // C(n, n-f) = C(n, f).
  double binom = 1.0;
  for (int i = 0; i < f; ++i) binom = binom * (n - i) / (i + 1);
  const double bound =
      binom * (n - f - 1) * rho * std::pow(2.0, -static_cast<double>(field_bits));
  return bound > 1.0 ? 1.0 : bound;
}

}  // namespace nab::core
