#include "core/certify.hpp"

#include <cmath>

#include "gf/linalg.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace nab::core {

gf::matrix<gf::gf2_16> build_check_matrix(const graph::digraph& g,
                                          const std::vector<graph::node_id>& h,
                                          const coding_scheme& coding) {
  NAB_ASSERT(!h.empty(), "check matrix needs a nonempty subgraph");
  const int rho = coding.rho();
  const std::size_t blocks = h.size() - 1;  // last node of h is the reference

  // Position of each node among the non-reference blocks; -1 for reference
  // and for nodes outside H.
  std::vector<int> pos(static_cast<std::size_t>(g.universe()), -1);
  for (std::size_t i = 0; i + 1 < h.size(); ++i)
    pos[static_cast<std::size_t>(h[i])] = static_cast<int>(i);
  const graph::node_id ref = h.back();

  // Count columns: total capacity of directed edges inside H.
  std::size_t cols = 0;
  for (const graph::edge& e : g.edges()) {
    const bool from_in = pos[static_cast<std::size_t>(e.from)] >= 0 || e.from == ref;
    const bool to_in = pos[static_cast<std::size_t>(e.to)] >= 0 || e.to == ref;
    if (from_in && to_in) cols += static_cast<std::size_t>(e.cap);
  }

  gf::matrix<gf::gf2_16> ch(blocks * static_cast<std::size_t>(rho), cols);
  std::size_t col = 0;
  for (const graph::edge& e : g.edges()) {
    const bool from_in = pos[static_cast<std::size_t>(e.from)] >= 0 || e.from == ref;
    const bool to_in = pos[static_cast<std::size_t>(e.to)] >= 0 || e.to == ref;
    if (!from_in || !to_in) continue;
    const auto& ce = coding.matrix_for(e.from, e.to);
    NAB_ASSERT(static_cast<graph::capacity_t>(ce.cols()) == e.cap,
               "coding matrix width must equal edge capacity");
    for (std::size_t k = 0; k < ce.cols(); ++k, ++col) {
      // Block of the tail node gets C_e, block of the head gets -C_e; the
      // two coincide over GF(2^16). The reference node has no block.
      const int pi = pos[static_cast<std::size_t>(e.from)];
      const int pj = pos[static_cast<std::size_t>(e.to)];
      for (int s = 0; s < rho; ++s) {
        const word c = ce.at(static_cast<std::size_t>(s), k);
        if (pi >= 0)
          ch.at(static_cast<std::size_t>(pi) * rho + s, col) = c;
        if (pj >= 0)
          ch.at(static_cast<std::size_t>(pj) * rho + s, col) = c;
      }
    }
  }
  NAB_ASSERT(col == cols, "column count mismatch while building C_H");
  return ch;
}

certification certify_coding(const graph::digraph& g, int f,
                             const dispute_record& disputes,
                             const coding_scheme& coding) {
  certification out;
  out.ok = true;
  for (const auto& h : omega_subgraphs(g, f, disputes)) {
    if (h.size() <= 1) continue;  // nothing to distinguish
    obs::count(obs::counter::cert_subgraphs);
    auto ch = build_check_matrix(g, h, coding);
    const std::size_t need = (h.size() - 1) * static_cast<std::size_t>(coding.rho());
    if (gf::rank(std::move(ch)) != need) {
      out.ok = false;
      out.failing.push_back(h);
    }
  }
  return out;
}

namespace {

using gfw = gf::gf2_16::value_type;

/// The incremental Omega_k walker behind certify_coding_batched (see the
/// header comment for the linear-algebra argument).
///
/// State invariants across the DFS:
///  - `active_cols_` lists the columns of edges whose BOTH endpoints are in
///    the current prefix, in activation (push) order; a column activates at
///    most once per DFS path, so basis pivots are triangular by activation
///    order and basis rows stay independent without back-elimination.
///  - `basis_` is append-only along a path: pushing a node may append rows,
///    popping truncates to the recorded size. A candidate row is only ever
///    reduced against rows that exist at its own depth, so truncation can
///    never invalidate a surviving row.
///  - Rows that reduce to zero on every active column ("ghosts") are kept
///    reduced IN PLACE: at each push they are zero on every previously
///    active column, so only the columns this push activates need scanning,
///    and only this push's pivots can touch them. The frame saves each
///    ghost's pre-push contents so popping restores them exactly. For a
///    certified prefix there are exactly rho ghosts — the constant null
///    direction.
///
/// Cost: one node-extension is ~(2 rho rows) x (window pivots) x row-width
/// field ops, and the lexicographic DFS shares every prefix extension
/// across the C(n, f) subgraphs — versus a from-scratch rank elimination
/// per H for the naive certifier.
class batched_certifier {
 public:
  batched_certifier(const graph::digraph& g, int f, const dispute_record& disputes,
                    const coding_scheme& coding)
      : disputes_(disputes), rho_(static_cast<std::size_t>(coding.rho())),
        nodes_(g.active_nodes()),
        target_(static_cast<std::size_t>(g.universe() - f)) {
    // Column universe: one block of z_e = cap(e) columns per directed edge.
    edges_ = g.edges();
    edge_col_.reserve(edges_.size());
    std::size_t cols = 0;
    for (const graph::edge& e : edges_) {
      edge_col_.push_back(cols);
      cols += static_cast<std::size_t>(e.cap);
    }
    total_cols_ = cols;
    edges_with_.assign(static_cast<std::size_t>(g.universe()), {});
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      edges_with_[static_cast<std::size_t>(edges_[i].from)].push_back(i);
      edges_with_[static_cast<std::size_t>(edges_[i].to)].push_back(i);
    }
    pivot_of_col_.assign(total_cols_, -1);
    in_prefix_.assign(static_cast<std::size_t>(g.universe()), false);

    // Raw rows: node v's block row s carries C_e(s, k) for every incident
    // edge — both endpoint blocks get C_e (the +/- blocks coincide in
    // characteristic 2), exactly as build_check_matrix lays them out.
    raw_rows_.assign(static_cast<std::size_t>(g.universe()) * rho_, {});
    for (graph::node_id v : nodes_) {
      for (std::size_t s = 0; s < rho_; ++s) {
        auto& row = raw_rows_[static_cast<std::size_t>(v) * rho_ + s];
        row.assign(total_cols_, 0);
        for (std::size_t i : edges_with_[static_cast<std::size_t>(v)]) {
          const auto& ce = coding.matrix_for(edges_[i].from, edges_[i].to);
          NAB_ASSERT(static_cast<graph::capacity_t>(ce.cols()) == edges_[i].cap,
                     "coding matrix width must equal edge capacity");
          for (std::size_t k = 0; k < ce.cols(); ++k)
            row[edge_col_[i] + k] = ce.at(s, k);
        }
      }
    }
  }

  certification run() {
    certification out;
    out.ok = true;
    if (target_ >= 2 && nodes_.size() >= target_) dfs(0, out);
    return out;
  }

 private:
  struct frame {
    std::size_t cols_before = 0;
    std::size_t basis_before = 0;
    std::size_t arena_before = 0;
    std::vector<std::size_t> ghosts_before;
    /// Pre-push contents of every live ghost (reduced in place this push).
    std::vector<std::vector<gfw>> ghost_rows_before;
  };

  /// Reduce `row` against the basis, scanning active positions from
  /// `start_pos` on — the caller guarantees the row is zero on every active
  /// column before it (new rows touch only this push's columns; ghosts are
  /// kept reduced). Returns the position of the new pivot, or npos when the
  /// row reduced to zero on every active column.
  std::size_t reduce_row(std::vector<gfw>& row, std::size_t start_pos) {
    std::size_t pos = start_pos;
    for (;;) {
      while (pos < active_cols_.size() && row[active_cols_[pos]] == 0) ++pos;
      if (pos == active_cols_.size()) return npos;
      const std::size_t lead = active_cols_[pos];
      const int p = pivot_of_col_[lead];
      if (p < 0) {
        gf::gf2_16::scale(row.data(), gf::gf2_16::inv(row[lead]), total_cols_);
        return pos;
      }
      // Characteristic 2: subtracting coeff * pivot row == adding it. The
      // pivot row is zero on active positions before `pos`, so the scan
      // resumes where it stopped.
      gf::gf2_16::axpy(row.data(), basis_[static_cast<std::size_t>(p)].data(),
                       row[lead], total_cols_);
    }
  }

  void insert_basis(std::vector<gfw>&& row, std::size_t pivot_pos) {
    obs::count(obs::counter::gf_rows_eliminated);
    const std::size_t lead = active_cols_[pivot_pos];
    pivot_of_col_[lead] = static_cast<int>(basis_.size());
    basis_pivot_.push_back(lead);
    basis_.push_back(std::move(row));
  }

  frame push_node(graph::node_id x) {
    obs::count(obs::counter::cert_prefix_pushes);
    frame fr;
    fr.cols_before = active_cols_.size();
    fr.basis_before = basis_.size();
    fr.arena_before = ghost_arena_.size();
    fr.ghosts_before = ghosts_;
    fr.ghost_rows_before.reserve(ghosts_.size());
    for (std::size_t idx : ghosts_) fr.ghost_rows_before.push_back(ghost_arena_[idx]);

    // 1. Activate the columns of every edge between x and the prefix.
    for (std::size_t i : edges_with_[static_cast<std::size_t>(x)]) {
      const graph::node_id other =
          edges_[i].from == x ? edges_[i].to : edges_[i].from;
      if (!in_prefix_[static_cast<std::size_t>(other)]) continue;
      for (std::size_t k = 0; k < static_cast<std::size_t>(edges_[i].cap); ++k)
        active_cols_.push_back(edge_col_[i] + k);
    }
    in_prefix_[static_cast<std::size_t>(x)] = true;

    // 2. Reduce every ghost in place over the new window — the new columns
    //    may give it a pivot (the frame holds its pre-push contents).
    obs::count(obs::counter::cert_ghost_repushes, fr.ghosts_before.size());
    std::size_t kept = 0;
    for (std::size_t idx : fr.ghosts_before) {
      const std::size_t pos = reduce_row(ghost_arena_[idx], fr.cols_before);
      if (pos != npos)
        insert_basis(std::vector<gfw>(ghost_arena_[idx]), pos);
      else
        ghosts_[kept++] = idx;  // still a ghost
    }
    ghosts_.resize(kept);

    // 3. Insert x's rho raw rows; the ones with no pivot in the window join
    //    the ghost arena at this depth.
    for (std::size_t s = 0; s < rho_; ++s) {
      std::vector<gfw> row = raw_rows_[static_cast<std::size_t>(x) * rho_ + s];
      const std::size_t pos = reduce_row(row, fr.cols_before);
      if (pos != npos) {
        insert_basis(std::move(row), pos);
      } else {
        ghosts_.push_back(ghost_arena_.size());
        ghost_arena_.push_back(std::move(row));
      }
    }
    return fr;
  }

  void pop_node(graph::node_id x, frame&& fr) {
    obs::count(obs::counter::cert_prefix_pops);
    in_prefix_[static_cast<std::size_t>(x)] = false;
    while (basis_.size() > fr.basis_before) {
      pivot_of_col_[basis_pivot_.back()] = -1;
      basis_pivot_.pop_back();
      basis_.pop_back();
    }
    active_cols_.resize(fr.cols_before);
    ghost_arena_.resize(fr.arena_before);
    for (std::size_t i = 0; i < fr.ghosts_before.size(); ++i)
      ghost_arena_[fr.ghosts_before[i]] = std::move(fr.ghost_rows_before[i]);
    ghosts_ = std::move(fr.ghosts_before);
  }

  void dfs(std::size_t start, certification& out) {
    if (current_.size() == target_) {
      obs::count(obs::counter::cert_subgraphs);
      if (basis_.size() != (target_ - 1) * rho_) {
        out.ok = false;
        out.failing.push_back(current_);
      }
      return;
    }
    if (nodes_.size() - start < target_ - current_.size()) return;
    for (std::size_t i = start; i < nodes_.size(); ++i) {
      const graph::node_id x = nodes_[i];
      bool clean = true;
      for (graph::node_id chosen : current_)
        if (disputes_.in_dispute(chosen, x)) {
          clean = false;
          break;
        }
      if (!clean) continue;
      frame fr = push_node(x);
      current_.push_back(x);
      dfs(i + 1, out);
      current_.pop_back();
      pop_node(x, std::move(fr));
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const dispute_record& disputes_;
  const std::size_t rho_;
  const std::vector<graph::node_id> nodes_;
  const std::size_t target_;

  std::vector<graph::edge> edges_;
  std::vector<std::size_t> edge_col_;
  std::size_t total_cols_ = 0;
  std::vector<std::vector<std::size_t>> edges_with_;
  std::vector<std::vector<gfw>> raw_rows_;

  std::vector<std::size_t> active_cols_;   // activation order
  std::vector<int> pivot_of_col_;
  std::vector<std::vector<gfw>> basis_;    // append-only along a DFS path
  std::vector<std::size_t> basis_pivot_;
  std::vector<std::size_t> ghosts_;        // live ghost indices into the arena
  std::vector<std::vector<gfw>> ghost_arena_;
  std::vector<bool> in_prefix_;
  std::vector<graph::node_id> current_;
};

}  // namespace

namespace {

/// The shared factorization pays off when the subgraph matrices are
/// column-limited for most of the DFS (sparse graphs: the hypercube and
/// WAN families run ~2x faster than independent eliminations). On dense
/// graphs the mid-depth ghost population churns more than per-H
/// elimination costs, so the naive path (itself running on the batched
/// axpy kernels) wins there. The measured crossover sits around
/// directed-edge density 0.4 for every registry topology.
bool dense_graph(const graph::digraph& g) {
  const std::size_t n = g.active_nodes().size();
  if (n < 2) return true;
  const double density = static_cast<double>(g.edges().size()) /
                         (static_cast<double>(n) * static_cast<double>(n - 1));
  return density > 0.4;
}

/// The f = 1 leave-one-out shape: when exactly one more node is active than
/// Omega_k's target size, every member of Omega_k is H_x = active \ {x}.
/// One full Gauss-Jordan reduction of the all-blocks matrix M — one rho-row
/// block per ACTIVE node over every active-edge column, the same layout as
/// build_check_matrix but with no reference block dropped — then answers all
/// |Omega_k| rank queries by a rank downdate each:
///
///  - x's block rows are supported entirely on X_x (the columns of
///    x-incident edges), so on A_x = columns \ X_x the nonzero rows of
///    M|A_x are exactly H_x's blocks; and since a column's two endpoint
///    blocks coincide (characteristic 2), the all-blocks row sum vanishes
///    per symbol, which makes H_x's reference block redundant:
///    certified(H_x) iff rank(M|A_x) == (|H_x| - 1) rho.
///  - In the reduced M (rank r, pivot set P), a row whose pivot lies
///    outside X_x keeps its leading 1 on A_x with zeros above and below,
///    while a row with pivot inside X_x is zero on every pivot column of
///    A_x. Hence, exactly:
///        rank(M|A_x) = (r - |P intersect X_x|) + rank(M'),
///    where M' is the |P intersect X_x| x |free columns outside X_x|
///    corner of the reduced matrix.
///
/// Cost: ONE big elimination plus one nullity-sized rank per member —
/// versus a from-scratch elimination per member (the dense/naive path) or
/// a DFS whose prefix sharing degenerates at this shape (every leaf differs
/// from the next in its deepest nodes, so nearly the whole basis is torn
/// down and rebuilt between leaves).
certification certify_loo(const graph::digraph& g, std::size_t target,
                          const dispute_record& disputes,
                          const coding_scheme& coding) {
  certification out;
  out.ok = true;
  const std::vector<graph::node_id> active = g.active_nodes();
  const std::size_t rho = static_cast<std::size_t>(coding.rho());
  NAB_ASSERT(target >= 2 && active.size() == target + 1,
             "certify_loo requires the leave-one-out shape");

  // Membership first: H_x is dispute-free iff x covers every disputed pair
  // of active nodes, so the members are the intersection of those pairs
  // (everyone when no pair is intra-active). No members means a vacuously
  // certified Omega_k — return before paying for any elimination.
  std::vector<bool> active_mask(static_cast<std::size_t>(g.universe()), false);
  std::vector<bool> member(static_cast<std::size_t>(g.universe()), false);
  for (graph::node_id v : active) {
    active_mask[static_cast<std::size_t>(v)] = true;
    member[static_cast<std::size_t>(v)] = true;
  }
  std::size_t member_count = active.size();
  for (const auto& [a, b] : disputes.pairs()) {
    if (!active_mask[static_cast<std::size_t>(a)] ||
        !active_mask[static_cast<std::size_t>(b)])
      continue;  // a pair with an inactive endpoint is never intra-H
    for (graph::node_id v : active) {
      if (v == a || v == b || !member[static_cast<std::size_t>(v)]) continue;
      member[static_cast<std::size_t>(v)] = false;
      --member_count;
    }
  }
  if (member_count == 0) return out;

  // The all-blocks matrix, plus each node's incident column list (= X_x).
  const std::vector<graph::edge> edges = g.edges();
  std::vector<int> pos(static_cast<std::size_t>(g.universe()), -1);
  for (std::size_t i = 0; i < active.size(); ++i)
    pos[static_cast<std::size_t>(active[i])] = static_cast<int>(i);
  std::size_t total_cols = 0;
  for (const graph::edge& e : edges) total_cols += static_cast<std::size_t>(e.cap);
  gf::matrix<gf::gf2_16> m(active.size() * rho, total_cols);
  std::vector<std::vector<std::size_t>> node_cols(
      static_cast<std::size_t>(g.universe()));
  std::size_t col = 0;
  for (const graph::edge& e : edges) {
    const auto& ce = coding.matrix_for(e.from, e.to);
    NAB_ASSERT(static_cast<graph::capacity_t>(ce.cols()) == e.cap,
               "coding matrix width must equal edge capacity");
    const int pi = pos[static_cast<std::size_t>(e.from)];
    const int pj = pos[static_cast<std::size_t>(e.to)];
    NAB_ASSERT(pi >= 0 && pj >= 0, "active edge with an inactive endpoint");
    for (std::size_t k = 0; k < ce.cols(); ++k, ++col) {
      node_cols[static_cast<std::size_t>(e.from)].push_back(col);
      node_cols[static_cast<std::size_t>(e.to)].push_back(col);
      for (std::size_t s = 0; s < rho; ++s) {
        const gfw c = ce.at(s, k);
        m.at(static_cast<std::size_t>(pi) * rho + s, col) = c;
        m.at(static_cast<std::size_t>(pj) * rho + s, col) = c;
      }
    }
  }

  std::vector<std::size_t> pivot_cols;
  const std::size_t r = gf::row_reduce(m, &pivot_cols);
  std::vector<int> pivot_row_of(total_cols, -1);
  for (std::size_t i = 0; i < pivot_cols.size(); ++i)
    pivot_row_of[pivot_cols[i]] = static_cast<int>(i);
  std::vector<std::size_t> free_cols;
  free_cols.reserve(total_cols - r);
  for (std::size_t c = 0; c < total_cols; ++c)
    if (pivot_row_of[c] < 0) free_cols.push_back(c);

  // Leave-out index DESCENDING over the sorted active list, so failing
  // subgraphs appear in the naive certifier's lexicographic subset order
  // (omitting a larger node yields a lex-smaller subset).
  const std::size_t need = (target - 1) * rho;
  std::vector<bool> in_x(total_cols, false);
  for (std::size_t i = active.size(); i-- > 0;) {
    const graph::node_id x = active[i];
    if (!member[static_cast<std::size_t>(x)]) continue;
    obs::count(obs::counter::cert_subgraphs);
    obs::count(obs::counter::cert_loo_downdates);
    const std::vector<std::size_t>& xcols =
        node_cols[static_cast<std::size_t>(x)];
    for (std::size_t c : xcols) in_x[c] = true;
    std::vector<std::size_t> piv_rows;
    for (std::size_t c : xcols)
      if (pivot_row_of[c] >= 0)
        piv_rows.push_back(static_cast<std::size_t>(pivot_row_of[c]));
    std::vector<std::size_t> sub_cols;
    for (std::size_t c : free_cols)
      if (!in_x[c]) sub_cols.push_back(c);
    gf::matrix<gf::gf2_16> sub(piv_rows.size(), sub_cols.size());
    for (std::size_t rr = 0; rr < piv_rows.size(); ++rr)
      for (std::size_t cc = 0; cc < sub_cols.size(); ++cc)
        sub.at(rr, cc) = m.at(piv_rows[rr], sub_cols[cc]);
    const std::size_t rank_a = r - piv_rows.size() + gf::rank(std::move(sub));
    for (std::size_t c : xcols) in_x[c] = false;
    if (rank_a != need) {
      out.ok = false;
      std::vector<graph::node_id> h;
      h.reserve(target);
      for (graph::node_id v : active)
        if (v != x) h.push_back(v);
      out.failing.push_back(std::move(h));
    }
  }
  return out;
}

}  // namespace

certification certify_coding_batched(const graph::digraph& g, int f,
                                     const dispute_record& disputes,
                                     const coding_scheme& coding) {
  const int target = g.universe() - f;
  if (target >= 2 && g.active_count() == target + 1)
    return certify_loo(g, static_cast<std::size_t>(target), disputes, coding);
  if (dense_graph(g)) return certify_coding(g, f, disputes, coding);
  batched_certifier certifier(g, f, disputes, coding);
  return certifier.run();
}

std::uint64_t certify_cost_estimate(
    const graph::digraph& g, const std::vector<std::vector<graph::node_id>>& omega,
    int rho) {
  if (omega.empty()) return 0;
  const auto rho_u = static_cast<std::uint64_t>(rho);
  const std::vector<graph::node_id> active = g.active_nodes();
  std::uint64_t total_cols = 0;
  for (const graph::edge& e : g.edges())
    total_cols += static_cast<std::uint64_t>(e.cap);

  // Leave-one-out shape: ONE Gauss-Jordan of the all-blocks matrix plus a
  // nullity-sized corner elimination per member — not |omega| independent
  // eliminations. Pricing it as per-H work overstates the cost ~|omega|-fold
  // and wrongly gates exactly the presets the downdate path makes cheap.
  const std::size_t target = omega.front().size();
  if (target >= 2 && active.size() == target + 1) {
    const std::uint64_t rows = active.size() * rho_u;
    // Rank tops out rho short of full: the per-symbol all-blocks row sums
    // vanish (each column's two endpoint blocks coincide over GF(2^16)).
    const std::uint64_t r = std::min(rows - rho_u, total_cols);
    // Gauss-Jordan words: every pivot eliminates from ~all rows over a tail
    // that shrinks one column per pivot.
    std::uint64_t cost = rows * (r * total_cols - r * r / 2);
    const std::uint64_t nfree = total_cols - r;
    std::vector<std::uint64_t> incident_cols(
        static_cast<std::size_t>(g.universe()), 0);
    std::uint64_t active_sum = 0;
    for (const graph::edge& e : g.edges()) {
      incident_cols[static_cast<std::size_t>(e.from)] +=
          static_cast<std::uint64_t>(e.cap);
      incident_cols[static_cast<std::size_t>(e.to)] +=
          static_cast<std::uint64_t>(e.cap);
    }
    for (graph::node_id v : active) active_sum += static_cast<std::uint64_t>(v);
    for (const auto& h : omega) {
      // The left-out node is the one active node missing from h.
      std::uint64_t h_sum = 0;
      for (graph::node_id v : h) h_sum += static_cast<std::uint64_t>(v);
      const auto x = static_cast<std::size_t>(active_sum - h_sum);
      // Pivot columns land roughly uniformly, so ~r/total_cols of x's
      // incident columns carry one — min(|X_x|, r) alone overstates the
      // corner size ~|omega|-fold on sparse graphs, where r << total_cols.
      const std::uint64_t px =
          std::min(incident_cols[x],
                   std::max<std::uint64_t>(
                       1, total_cols == 0 ? 0 : r * incident_cols[x] / total_cols));
      const std::uint64_t sub_r = std::min(px, nfree);
      cost += px * (sub_r * nfree - sub_r * sub_r / 2);
    }
    return cost;
  }

  if (dense_graph(g)) {
    // Naive path: a from-scratch Gauss-Jordan of each member's check matrix.
    std::uint64_t cost = 0;
    for (const auto& h : omega) {
      if (h.size() <= 1) continue;
      const std::uint64_t rows = (h.size() - 1) * rho_u;
      std::uint64_t cols = 0;
      for (const graph::edge& e : g.induced(h).edges())
        cols += static_cast<std::uint64_t>(e.cap);
      const std::uint64_t r = std::min(rows, cols);
      cost += rows * (r * cols - r * r / 2);
    }
    return cost;
  }

  // Sparse DFS path: the certifier pays per prefix PUSH, not per leaf, and
  // the lexicographic walk shares every common prefix — which the LCP of
  // consecutive omega members reproduces exactly. A push reduces ~2 rho
  // rows (rho raw + rho ghosts) against the pivots of its fresh column
  // window, each reduction a full-width axpy.
  std::uint64_t cost = 0;
  const std::vector<graph::node_id>* prev = nullptr;
  for (const auto& h : omega) {
    std::size_t lcp = 0;
    if (prev != nullptr)
      while (lcp < h.size() && lcp < prev->size() && (*prev)[lcp] == h[lcp])
        ++lcp;
    for (std::size_t p = lcp; p < h.size(); ++p) {
      std::uint64_t new_cols = 0;
      for (std::size_t q = 0; q < p; ++q)
        new_cols += static_cast<std::uint64_t>(g.cap(h[p], h[q])) +
                    static_cast<std::uint64_t>(g.cap(h[q], h[p]));
      const std::uint64_t window = std::min(new_cols, 2 * rho_u);
      cost += 2 * rho_u * window * total_cols + rho_u * total_cols;
    }
    prev = &h;
  }
  return cost;
}

double theorem1_failure_bound(int n, int f, int rho, int field_bits) {
  NAB_ASSERT(n > f && f >= 0 && rho > 0 && field_bits > 0,
             "invalid Theorem 1 parameters");
  // C(n, n-f) = C(n, f).
  double binom = 1.0;
  for (int i = 0; i < f; ++i) binom = binom * (n - i) / (i + 1);
  const double bound =
      binom * (n - f - 1) * rho * std::pow(2.0, -static_cast<double>(field_bits));
  return bound > 1.0 ? 1.0 : bound;
}

}  // namespace nab::core
