#pragma once

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "bb/claim_bcast.hpp"
#include "bb/eig.hpp"
#include "core/coding.hpp"
#include "core/value.hpp"
#include "graph/digraph.hpp"

namespace nab::core {

/// A share of the broadcast value carried on one spanning tree in Phase 1.
/// Arena-backed: chunks churn as transcripts in every phase, so they draw
/// from the ambient run arena (sim/run_arena.hpp) when one is installed.
using chunk = sim::pooled_vector<word>;

/// A transcript map whose nodes live in the ambient run arena — these are
/// exactly the per-instance claim maps the dispute machinery churns through.
template <typename K, typename V>
using claim_map = std::map<K, V, std::less<K>, sim::arena_alloc<std::pair<const K, V>>>;

/// Ground-truth record of everything one node sent and received during
/// Phases 1 and 2 of a NAB instance. Dispute control (Phase 3) has nodes
/// *claim* these; honest nodes claim the truth, corrupt nodes claim whatever
/// the adversary likes.
struct node_claims {
  /// (tree, from, to) -> chunk for tree edges where this node is the sender
  /// / receiver respectively.
  claim_map<std::tuple<int, graph::node_id, graph::node_id>, chunk> p1_sent;
  claim_map<std::tuple<int, graph::node_id, graph::node_id>, chunk> p1_received;
  /// (from, to) -> coded symbols for Equality Check edges.
  claim_map<std::pair<graph::node_id, graph::node_id>, coded_symbols> p2_sent;
  claim_map<std::pair<graph::node_id, graph::node_id>, coded_symbols> p2_received;

  bool operator==(const node_claims&) const = default;

  /// Wire size, used to account Phase 3's O(L * n^beta) cost.
  std::uint64_t bits() const;

  /// Deterministic serialization for classical-BB dissemination.
  sim::payload pack() const;
  /// Returns false when the blob is malformed (which convicts the claimant).
  static bool unpack(const sim::payload& words, node_claims& out);
};

/// Behavior of the corrupt nodes across all phases of NAB. The default
/// implementation behaves honestly everywhere, so strategies override only
/// the hooks they attack through. Each hook receives what an honest node
/// would have done.
///
/// The adversary is full-information (the paper's model): strategies may
/// retain arbitrary state and inspect anything passed to them. Every hook is
/// invoked with run-arena pooling suspended, so retained state lives on the
/// plain heap and survives the per-instance arena reset (see
/// sim/run_arena.hpp) without strategies having to know arenas exist.
class nab_adversary {
 public:
  virtual ~nab_adversary() = default;

  /// Called by the session at the start of every instance; lets stateful
  /// strategies (e.g. dispute farmers) reset or adapt to the shrinking G_k.
  virtual void on_instance_begin(int instance_index, const graph::digraph& gk) {
    (void)instance_index;
    (void)gk;
  }

  /// Chunk a corrupt *source* sends to child `to` on `tree` in Phase 1.
  virtual chunk phase1_source_chunk(int tree, graph::node_id to, const chunk& honest) {
    (void)tree;
    (void)to;
    return honest;
  }

  /// Chunk a corrupt relay forwards to `to` on `tree` (honest = received).
  virtual chunk phase1_forward_chunk(int tree, graph::node_id from, graph::node_id to,
                                     const chunk& honest) {
    (void)tree;
    (void)from;
    (void)to;
    return honest;
  }

  /// Coded symbols a corrupt node sends on edge (u, v) during Equality
  /// Check (honest = X_u * C_e).
  virtual coded_symbols phase2_coded(graph::node_id u, graph::node_id v,
                                     const coded_symbols& honest) {
    (void)u;
    (void)v;
    return honest;
  }

  /// Flag a corrupt node feeds into the step-2.2 broadcast.
  virtual bool phase2_flag(graph::node_id v, bool honest) {
    (void)v;
    return honest;
  }

  /// Claims a corrupt node submits during dispute control.
  virtual node_claims phase3_claims(graph::node_id v, const node_claims& honest) {
    (void)v;
    return honest;
  }

  /// Input value a corrupt *source* submits to the DC1 broadcast (honest =
  /// its real input words).
  virtual std::vector<word> phase3_source_input(const std::vector<word>& honest) {
    return honest;
  }

  /// Optional adversary for the classical-BB sub-protocols (flag broadcast,
  /// claim dissemination). nullptr = corrupt nodes behave honestly *inside*
  /// BB (they can still lie via the inputs above).
  virtual bb::eig_adversary* eig() { return nullptr; }

  /// Optional adversary for the collapsed claim-broadcast backend (digest
  /// equivocation, echo suppression, forged retrievals). nullptr = corrupt
  /// nodes behave honestly *inside* the backend (they still lie via
  /// phase3_claims above) — the regime in which every backend provably
  /// agrees on exactly the submitted claims, which is what the
  /// backend-equivalence tests pin down.
  virtual bb::claim_adversary* claim_bcast() { return nullptr; }

  /// Optional relay-tampering adversary for emulated multi-hop channels:
  /// corrupt interior relays may replace forwarded copies. Majority voting
  /// over 2f+1 node-disjoint paths makes this provably ineffective — the
  /// hook exists so tests can demonstrate exactly that.
  virtual bb::relay_adversary* relay() { return nullptr; }
};

}  // namespace nab::core
