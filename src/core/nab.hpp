#pragma once

/// Umbrella header for the nabcast library — Network-Aware Byzantine
/// Broadcast (Liang & Vaidya, PODC 2012) and every substrate it stands on.
///
/// Quick start:
///   #include "core/nab.hpp"
///   auto g = nab::graph::paper_fig1a();
///   nab::core::session_config cfg{.g = g, .f = 1, .source = 0};
///   nab::sim::fault_set faults(g.universe(), {2});
///   nab::core::phase1_corruptor adv;
///   nab::core::session s(cfg, faults, &adv);
///   auto report = s.run_instance({0xCAFE, 0xBABE});
///   // report.agreement && report.validity hold in every instance.

#include "core/adversary.hpp"
#include "core/capacity.hpp"
#include "core/certify.hpp"
#include "core/coding.hpp"
#include "core/dispute.hpp"
#include "core/equality_check.hpp"
#include "core/omega.hpp"
#include "core/phase1.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "core/strategies.hpp"
#include "core/value.hpp"
