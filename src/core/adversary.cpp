#include "core/adversary.hpp"

namespace nab::core {
namespace {

template <typename WordVec>
void push_words16(sim::payload& out, const WordVec& ws) {
  out.push_back(ws.size());
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    acc |= static_cast<std::uint64_t>(ws[i]) << (16 * (i % 4));
    if (i % 4 == 3) {
      out.push_back(acc);
      acc = 0;
    }
  }
  if (ws.size() % 4 != 0) out.push_back(acc);
}

template <typename WordVec>
bool read_words16(const sim::payload& in, std::size_t& pos, WordVec& out) {
  if (pos >= in.size()) return false;
  const std::uint64_t len = in[pos++];
  if (len > (1u << 24)) return false;  // sanity bound on claim size
  const std::size_t packed = (static_cast<std::size_t>(len) + 3) / 4;
  if (pos + packed > in.size()) return false;
  out.resize(static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < len; ++i)
    out[i] = static_cast<word>(in[pos + i / 4] >> (16 * (i % 4)));
  pos += packed;
  return true;
}

}  // namespace

std::uint64_t node_claims::bits() const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : p1_sent) total += 48 + 16 * c.size();
  for (const auto& [key, c] : p1_received) total += 48 + 16 * c.size();
  for (const auto& [key, c] : p2_sent) total += 32 + c.bits();
  for (const auto& [key, c] : p2_received) total += 32 + c.bits();
  return total + 64;
}

sim::payload node_claims::pack() const {
  sim::payload out;
  auto pack_p1 = [&](const auto& section) {
    out.push_back(section.size());
    for (const auto& [key, c] : section) {
      out.push_back(static_cast<std::uint64_t>(std::get<0>(key)));
      out.push_back(static_cast<std::uint64_t>(std::get<1>(key)));
      out.push_back(static_cast<std::uint64_t>(std::get<2>(key)));
      push_words16(out, c);
    }
  };
  auto pack_p2 = [&](const auto& section) {
    out.push_back(section.size());
    for (const auto& [key, c] : section) {
      out.push_back(static_cast<std::uint64_t>(key.first));
      out.push_back(static_cast<std::uint64_t>(key.second));
      out.push_back(static_cast<std::uint64_t>(c.count));
      out.push_back(static_cast<std::uint64_t>(c.slices));
      push_words16(out, c.words);
    }
  };
  pack_p1(p1_sent);
  pack_p1(p1_received);
  pack_p2(p2_sent);
  pack_p2(p2_received);
  return out;
}

bool node_claims::unpack(const sim::payload& words, node_claims& out) {
  out = node_claims{};
  std::size_t pos = 0;
  auto read_count = [&](std::uint64_t& n) {
    if (pos >= words.size()) return false;
    n = words[pos++];
    return n <= (1u << 20);
  };
  auto unpack_p1 = [&](auto& section) {
    std::uint64_t n = 0;
    if (!read_count(n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (pos + 3 > words.size()) return false;
      const int tree = static_cast<int>(words[pos++]);
      const auto from = static_cast<graph::node_id>(words[pos++]);
      const auto to = static_cast<graph::node_id>(words[pos++]);
      chunk c;
      if (!read_words16(words, pos, c)) return false;
      section[{tree, from, to}] = std::move(c);
    }
    return true;
  };
  auto unpack_p2 = [&](auto& section) {
    std::uint64_t n = 0;
    if (!read_count(n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (pos + 4 > words.size()) return false;
      const auto from = static_cast<graph::node_id>(words[pos++]);
      const auto to = static_cast<graph::node_id>(words[pos++]);
      coded_symbols c;
      c.count = static_cast<int>(words[pos++]);
      c.slices = static_cast<int>(words[pos++]);
      if (c.count < 0 || c.slices < 0) return false;
      if (!read_words16(words, pos, c.words)) return false;
      if (c.words.size() != static_cast<std::size_t>(c.count) * c.slices) return false;
      section[{from, to}] = std::move(c);
    }
    return true;
  };
  return unpack_p1(out.p1_sent) && unpack_p1(out.p1_received) &&
         unpack_p2(out.p2_sent) && unpack_p2(out.p2_received) && pos == words.size();
}

}  // namespace nab::core
