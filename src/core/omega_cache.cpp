#include "core/omega_cache.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <mutex>

#include "core/certify.hpp"
#include "graph/connectivity.hpp"
#include "graph/maxflow.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"

namespace nab::core {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fingerprint_words(const std::vector<std::int64_t>& words) {
  std::uint64_t h = 0x6f6d6567615f6bULL;  // "omega_k"
  for (std::int64_t w : words) h = mix64(h ^ static_cast<std::uint64_t>(w));
  return h;
}

/// Canonical serialization of a digraph: universe, active flags, then the
/// capacity of every ordered active pair. Two graphs serialize identically
/// iff they are operator==-equal on every field the analyses depend on.
void serialize_graph(const graph::digraph& g, std::vector<std::int64_t>& out) {
  const int n = g.universe();
  out.push_back(n);
  for (graph::node_id v = 0; v < n; ++v) out.push_back(g.is_active(v) ? 1 : 0);
  for (graph::node_id u = 0; u < n; ++u)
    for (graph::node_id v = 0; v < n; ++v)
      if (u != v) out.push_back(g.cap(u, v));
}

template <class V, class Table>
std::shared_ptr<const V> find_entry(const Table& table, std::uint64_t fp,
                                    const std::vector<std::int64_t>& key) {
  const auto it = table.find(fp);
  if (it == table.end()) return nullptr;
  for (const auto& entry : it->second)
    if (entry.key == key) return entry.value;
  return nullptr;
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::digraph& g) {
  std::vector<std::int64_t> words;
  serialize_graph(g, words);
  return fingerprint_words(words);
}

omega_cache& omega_cache::instance() {
  static omega_cache cache;
  return cache;
}

template <class V, class Compute>
std::shared_ptr<const V> omega_cache::get_or_compute(
    table<V>& tbl, canonical_key key, std::atomic<std::uint64_t>& hits,
    std::atomic<std::uint64_t>& misses, const char* fill_span,
    const Compute& compute) {
  obs::count(obs::counter::cache_lookups);
  const std::uint64_t fp = fingerprint_words(key);
  const auto probe = [&]() -> std::shared_ptr<const V> {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return find_entry<V>(tbl, fp, key);
  };
  const auto count_hit = [&](std::shared_ptr<const V> hit) {
    hits.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::counter::cache_hits);
    return hit;
  };
  if (auto hit = probe()) return count_hit(std::move(hit));

  // Single-flight: elect one leader per key; everyone else waits on the
  // latch and adopts the inserted value as a hit. The in-flight map is keyed
  // on (table, fingerprint) — the table address disambiguates equal
  // fingerprints across the four caches so unrelated fills never serialize
  // behind each other's leader.
  const std::uint64_t inflight_key =
      mix64(fp ^ static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&tbl)));
  for (;;) {
    std::shared_ptr<inflight> slot;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      auto& entry = inflight_[inflight_key];
      if (!entry) {
        entry = std::make_shared<inflight>();
        leader = true;
      }
      slot = entry;
    }
    if (!leader) {
      {
        std::unique_lock<std::mutex> lk(slot->m);
        slot->cv.wait(lk, [&] { return slot->done; });
      }
      if (auto hit = probe()) return count_hit(std::move(hit));
      // The leader threw (or this was a fingerprint collision with a
      // different key): try to become leader ourselves.
      continue;
    }

    const auto release = [&] {
      {
        std::lock_guard<std::mutex> lk(inflight_mu_);
        const auto it = inflight_.find(inflight_key);
        if (it != inflight_.end() && it->second == slot) inflight_.erase(it);
      }
      std::lock_guard<std::mutex> lk(slot->m);
      slot->done = true;
      slot->cv.notify_all();
    };

    // Leadership won after a previous leader already filled the key: the
    // re-probe keeps "exactly one fill per key".
    if (auto hit = probe()) {
      release();
      return count_hit(std::move(hit));
    }

    std::shared_ptr<const V> value;
    try {
      obs::scoped_span span(fill_span);
      value = compute();
    } catch (...) {
      release();
      throw;
    }

    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      misses.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::counter::cache_misses);
      if (auto hit = find_entry<V>(tbl, fp, key))
        value = hit;  // fingerprint-collision twin; adopt it
      else
        tbl[fp].push_back({std::move(key), value});
    }
    release();
    return value;
  }
}

int omega_cache::fill_jobs(const graph::digraph& g) const {
  return g.universe() >= 32 ? fill_jobs_.load(std::memory_order_relaxed) : 1;
}

void omega_cache::set_fill_parallelism(int jobs) {
  fill_jobs_.store(jobs < 1 ? 1 : jobs, std::memory_order_relaxed);
}

std::shared_ptr<const omega_analysis> omega_cache::analyze(
    const graph::digraph& g, int f, const dispute_record& disputes) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(f);
  // Convicted nodes are already inactive in g; only the pairs affect Omega_k.
  for (const auto& [a, b] : disputes.pairs()) {
    key.push_back(a);
    key.push_back(b);
  }
  return get_or_compute(analyses_, std::move(key), analysis_hits_, analysis_misses_,
                        "omega_cache/fill_analysis", [&] {
                          auto value = std::make_shared<omega_analysis>();
                          value->omega = omega_subgraphs(g, f, disputes);
                          value->uk = compute_uk(g, value->omega);
                          value->rho = compute_rho(value->uk);
                          value->certify_cost = certify_cost_estimate(
                              g, value->omega, static_cast<int>(value->rho));
                          return value;
                        });
}

std::shared_ptr<const phase1_plan> omega_cache::plan_for(const graph::digraph& g,
                                                         graph::node_id source) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(source);
  auto plan = get_or_compute(plans_, std::move(key), plan_hits_, plan_misses_,
                             "omega_cache/fill_plan", [&] {
    auto value = std::make_shared<phase1_plan>();
    // gamma = min over sinks of MINCUT(source, w): independent per-sink
    // flows into preallocated slots, so the filling thread may fan them out
    // (the min is order-independent; byte-identical for any worker count).
    const auto nodes = g.active_nodes();
    std::vector<graph::capacity_t> cuts(
        nodes.size(), std::numeric_limits<graph::capacity_t>::max());
    runtime::parallel_for_each_index(fill_jobs(g), nodes.size(), [&](std::size_t i) {
      if (nodes[i] != source) cuts[i] = graph::min_cut_value(g, source, nodes[i]);
    });
    // Fold like broadcast_mincut: 0 is a genuine min-cut (unreachable sink),
    // not an "unset" sentinel, so track whether any sink was seen explicitly.
    graph::capacity_t best = std::numeric_limits<graph::capacity_t>::max();
    bool any_sink = false;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i] != source) {
        best = std::min(best, cuts[i]);
        any_sink = true;
      }
    value->gamma = any_sink ? best : 0;
    if (value->gamma >= 1)
      value->trees = graph::pack_arborescences(
          g, source, static_cast<int>(value->gamma), &value->stats);
    return value;
  });
  // Charged on every lookup (hit or miss), so the planning counters are a
  // deterministic property of the run, not of cross-shard fill scheduling.
  obs::count(obs::counter::plan_safety_checks, plan->stats.safety_checks);
  obs::count(obs::counter::plan_flow_augmentations, plan->stats.flow_augmentations);
  return plan;
}

bool omega_cache::connectivity_at_least(const graph::digraph& g, int k) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(k);
  return *get_or_compute(connectivity_, std::move(key), connectivity_hits_,
                         connectivity_misses_, "omega_cache/fill_connectivity", [&] {
                           return std::make_shared<int>(
                               graph::global_vertex_connectivity_at_least(g, k) ? 1
                                                                                : 0);
                         }) != 0;
}

std::shared_ptr<const bb::channel_plan::route_table> omega_cache::channel_routes_for(
    const graph::digraph& g, int f) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(f);
  auto routes = get_or_compute(routes_, std::move(key), route_hits_, route_misses_,
                               "omega_cache/fill_routes", [&] {
    // Per-source blocks into preallocated slots: each source's row is built
    // on its own warm-started residual network, so the filling thread may
    // fan the sources out. Block errors are captured, not thrown, and
    // assemble() surfaces the smallest-source failure — identical to the
    // serial builder's first-failing-pair error for every worker count.
    const int n = g.universe();
    std::vector<bb::channel_plan::source_block> blocks(static_cast<std::size_t>(n));
    runtime::parallel_for_each_index(fill_jobs(g), blocks.size(), [&](std::size_t u) {
      blocks[u] = bb::channel_plan::build_routes_for_source(
          g, f, static_cast<graph::node_id>(u));
    });
    return std::make_shared<const bb::channel_plan::route_table>(
        bb::channel_plan::assemble(g, std::move(blocks)));
  });
  obs::count(obs::counter::route_pairs, routes->stats().pairs);
  obs::count(obs::counter::route_flow_augmentations,
             routes->stats().flow_augmentations);
  return routes;
}

omega_cache_stats omega_cache::stats() const {
  omega_cache_stats out;
  out.analysis_hits = analysis_hits_.load(std::memory_order_relaxed);
  out.analysis_misses = analysis_misses_.load(std::memory_order_relaxed);
  out.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  out.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  out.connectivity_hits = connectivity_hits_.load(std::memory_order_relaxed);
  out.connectivity_misses = connectivity_misses_.load(std::memory_order_relaxed);
  out.route_hits = route_hits_.load(std::memory_order_relaxed);
  out.route_misses = route_misses_.load(std::memory_order_relaxed);
  return out;
}

void omega_cache::clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  analyses_.clear();
  plans_.clear();
  connectivity_.clear();
  routes_.clear();
  analysis_hits_ = 0;
  analysis_misses_ = 0;
  plan_hits_ = 0;
  plan_misses_ = 0;
  connectivity_hits_ = 0;
  connectivity_misses_ = 0;
  route_hits_ = 0;
  route_misses_ = 0;
}

}  // namespace nab::core
