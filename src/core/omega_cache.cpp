#include "core/omega_cache.hpp"

#include <mutex>

#include "core/certify.hpp"
#include "graph/connectivity.hpp"
#include "graph/maxflow.hpp"
#include "obs/obs.hpp"

namespace nab::core {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fingerprint_words(const std::vector<std::int64_t>& words) {
  std::uint64_t h = 0x6f6d6567615f6bULL;  // "omega_k"
  for (std::int64_t w : words) h = mix64(h ^ static_cast<std::uint64_t>(w));
  return h;
}

/// Canonical serialization of a digraph: universe, active flags, then the
/// capacity of every ordered active pair. Two graphs serialize identically
/// iff they are operator==-equal on every field the analyses depend on.
void serialize_graph(const graph::digraph& g, std::vector<std::int64_t>& out) {
  const int n = g.universe();
  out.push_back(n);
  for (graph::node_id v = 0; v < n; ++v) out.push_back(g.is_active(v) ? 1 : 0);
  for (graph::node_id u = 0; u < n; ++u)
    for (graph::node_id v = 0; v < n; ++v)
      if (u != v) out.push_back(g.cap(u, v));
}

template <class V, class Table>
std::shared_ptr<const V> find_entry(const Table& table, std::uint64_t fp,
                                    const std::vector<std::int64_t>& key) {
  const auto it = table.find(fp);
  if (it == table.end()) return nullptr;
  for (const auto& entry : it->second)
    if (entry.key == key) return entry.value;
  return nullptr;
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::digraph& g) {
  std::vector<std::int64_t> words;
  serialize_graph(g, words);
  return fingerprint_words(words);
}

omega_cache& omega_cache::instance() {
  static omega_cache cache;
  return cache;
}

template <class V, class Compute>
std::shared_ptr<const V> omega_cache::get_or_compute(
    table<V>& tbl, canonical_key key, std::atomic<std::uint64_t>& hits,
    std::atomic<std::uint64_t>& misses, const char* fill_span,
    const Compute& compute) {
  obs::count(obs::counter::cache_lookups);
  const std::uint64_t fp = fingerprint_words(key);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (auto hit = find_entry<V>(tbl, fp, key)) {
      hits.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::counter::cache_hits);
      return hit;
    }
  }

  std::shared_ptr<const V> value;
  {
    obs::scoped_span span(fill_span);
    value = compute();
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  misses.fetch_add(1, std::memory_order_relaxed);
  obs::count(obs::counter::cache_misses);
  if (auto hit = find_entry<V>(tbl, fp, key)) return hit;
  tbl[fp].push_back({std::move(key), value});
  return value;
}

std::shared_ptr<const omega_analysis> omega_cache::analyze(
    const graph::digraph& g, int f, const dispute_record& disputes) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(f);
  // Convicted nodes are already inactive in g; only the pairs affect Omega_k.
  for (const auto& [a, b] : disputes.pairs()) {
    key.push_back(a);
    key.push_back(b);
  }
  return get_or_compute(analyses_, std::move(key), analysis_hits_, analysis_misses_,
                        "omega_cache/fill_analysis", [&] {
                          auto value = std::make_shared<omega_analysis>();
                          value->omega = omega_subgraphs(g, f, disputes);
                          value->uk = compute_uk(g, value->omega);
                          value->rho = compute_rho(value->uk);
                          value->certify_cost = certify_cost_estimate(
                              g, value->omega, static_cast<int>(value->rho));
                          return value;
                        });
}

std::shared_ptr<const phase1_plan> omega_cache::plan_for(const graph::digraph& g,
                                                         graph::node_id source) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(source);
  return get_or_compute(plans_, std::move(key), plan_hits_, plan_misses_,
                        "omega_cache/fill_plan", [&] {
    auto value = std::make_shared<phase1_plan>();
    value->gamma = graph::broadcast_mincut(g, source);
    if (value->gamma >= 1)
      value->trees =
          graph::pack_arborescences(g, source, static_cast<int>(value->gamma));
    return value;
  });
}

bool omega_cache::connectivity_at_least(const graph::digraph& g, int k) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(k);
  return *get_or_compute(connectivity_, std::move(key), connectivity_hits_,
                         connectivity_misses_, "omega_cache/fill_connectivity", [&] {
                           return std::make_shared<int>(
                               graph::global_vertex_connectivity_at_least(g, k) ? 1
                                                                                : 0);
                         }) != 0;
}

std::shared_ptr<const bb::channel_plan::route_table> omega_cache::channel_routes_for(
    const graph::digraph& g, int f) {
  canonical_key key;
  serialize_graph(g, key);
  key.push_back(f);
  return get_or_compute(routes_, std::move(key), route_hits_, route_misses_,
                        "omega_cache/fill_routes", [&] {
    return std::make_shared<const bb::channel_plan::route_table>(
        bb::channel_plan::build_routes(g, f));
  });
}

omega_cache_stats omega_cache::stats() const {
  omega_cache_stats out;
  out.analysis_hits = analysis_hits_.load(std::memory_order_relaxed);
  out.analysis_misses = analysis_misses_.load(std::memory_order_relaxed);
  out.plan_hits = plan_hits_.load(std::memory_order_relaxed);
  out.plan_misses = plan_misses_.load(std::memory_order_relaxed);
  out.connectivity_hits = connectivity_hits_.load(std::memory_order_relaxed);
  out.connectivity_misses = connectivity_misses_.load(std::memory_order_relaxed);
  out.route_hits = route_hits_.load(std::memory_order_relaxed);
  out.route_misses = route_misses_.load(std::memory_order_relaxed);
  return out;
}

void omega_cache::clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  analyses_.clear();
  plans_.clear();
  connectivity_.clear();
  routes_.clear();
  analysis_hits_ = 0;
  analysis_misses_ = 0;
  plan_hits_ = 0;
  plan_misses_ = 0;
  connectivity_hits_ = 0;
  connectivity_misses_ = 0;
  route_hits_ = 0;
  route_misses_ = 0;
}

}  // namespace nab::core
