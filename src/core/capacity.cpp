#include "core/capacity.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "core/dispute.hpp"
#include "core/omega.hpp"
#include "graph/maxflow.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::core {
namespace {

using pair_list = std::vector<std::pair<graph::node_id, graph::node_id>>;

/// All unordered node pairs with at least one directed edge between them.
pair_list adjacent_pairs(const graph::digraph& g) {
  pair_list out;
  for (graph::node_id u = 0; u < g.universe(); ++u)
    for (graph::node_id v = u + 1; v < g.universe(); ++v)
      if (g.has_edge(u, v) || g.has_edge(v, u)) out.push_back({u, v});
  return out;
}

/// Does a cover of `pairs` with at most `budget` nodes (excluding `banned`)
/// exist? Mirrors dispute.cpp's DC4 search over an explicit pair list.
bool cover_exists(const pair_list& pairs, std::set<graph::node_id>& chosen, int budget,
                  graph::node_id banned) {
  const auto uncovered = std::find_if(pairs.begin(), pairs.end(), [&](const auto& p) {
    return chosen.count(p.first) == 0 && chosen.count(p.second) == 0;
  });
  if (uncovered == pairs.end()) return true;
  if (budget == 0) return false;
  for (graph::node_id pick : {uncovered->first, uncovered->second}) {
    if (pick == banned) continue;
    chosen.insert(pick);
    if (cover_exists(pairs, chosen, budget - 1, banned)) {
      chosen.erase(pick);
      return true;
    }
    chosen.erase(pick);
  }
  return false;
}

/// gamma of Psi_W for an explainable pair set W: remove W's edges and the
/// nodes forced into every explaining set; skip (return nullopt-like -1)
/// when the source is removed or becomes isolated from every other node.
graph::capacity_t gamma_of_psi(const graph::digraph& g, graph::node_id source, int f,
                               const pair_list& w) {
  std::set<graph::node_id> chosen;
  if (!cover_exists(w, chosen, f, -1)) return -1;  // not explainable

  // Forced removals: nodes contained in every explaining set.
  std::vector<graph::node_id> removed;
  std::set<graph::node_id> involved;
  for (const auto& [a, b] : w) {
    involved.insert(a);
    involved.insert(b);
  }
  for (graph::node_id x : involved) {
    std::set<graph::node_id> probe;
    if (!cover_exists(w, probe, f, x)) removed.push_back(x);
  }
  for (graph::node_id x : removed)
    if (x == source) return -1;  // Psi_W without the source is not in Gamma

  graph::digraph psi = g;
  for (const auto& [a, b] : w) psi.remove_edge_pair(a, b);
  for (graph::node_id x : removed) psi.remove_node(x);
  if (psi.active_count() < 2) return -1;
  return graph::broadcast_mincut(psi, source);
}

}  // namespace

graph::capacity_t gamma_k(const graph::digraph& gk, graph::node_id source) {
  return graph::broadcast_mincut(gk, source);
}

graph::capacity_t gamma_star_exhaustive(const graph::digraph& g, graph::node_id source,
                                        int f) {
  const pair_list pairs = adjacent_pairs(g);
  if (pairs.size() > 20)
    throw error("gamma_star_exhaustive: " + std::to_string(pairs.size()) +
                " adjacent pairs exceed the 2^20 enumeration budget");
  graph::capacity_t best = std::numeric_limits<graph::capacity_t>::max();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << pairs.size()); ++mask) {
    pair_list w;
    for (std::size_t i = 0; i < pairs.size(); ++i)
      if (mask & (std::uint64_t{1} << i)) w.push_back(pairs[i]);
    const graph::capacity_t gamma = gamma_of_psi(g, source, f, w);
    if (gamma >= 0) best = std::min(best, gamma);
  }
  NAB_ASSERT(best != std::numeric_limits<graph::capacity_t>::max(),
             "Gamma is empty — graph has no valid instance graphs");
  return best;
}

graph::capacity_t gamma_star_incident(const graph::digraph& g, graph::node_id source,
                                      int f) {
  const std::vector<graph::node_id> nodes = g.active_nodes();
  graph::capacity_t best = graph::broadcast_mincut(g, source);  // W = empty set

  // Enumerate candidate fault sets F (|F| <= f, source excluded as a blamed
  // set is allowed but then Psi often loses the source; try all), take all
  // pairs incident to F as the removed set.
  std::vector<graph::node_id> subset;
  const std::size_t n = nodes.size();
  auto recurse = [&](auto&& self, std::size_t start) -> void {
    if (!subset.empty()) {
      pair_list w;
      for (graph::node_id x : subset)
        for (graph::node_id y : nodes) {
          if (x == y) continue;
          if (g.has_edge(x, y) || g.has_edge(y, x))
            w.push_back({std::min(x, y), std::max(x, y)});
        }
      std::sort(w.begin(), w.end());
      w.erase(std::unique(w.begin(), w.end()), w.end());
      const graph::capacity_t gamma = gamma_of_psi(g, source, f, w);
      if (gamma >= 0) best = std::min(best, gamma);
    }
    if (subset.size() == static_cast<std::size_t>(f)) return;
    for (std::size_t i = start; i < n; ++i) {
      subset.push_back(nodes[i]);
      self(self, i + 1);
      subset.pop_back();
    }
  };
  recurse(recurse, 0);
  return best;
}

graph::capacity_t u1_exact(const graph::digraph& g, int f) {
  return compute_uk(g, f, dispute_record{});
}

capacity_bounds compute_bounds(const graph::digraph& g, graph::node_id source, int f,
                               gamma_mode mode) {
  capacity_bounds out;
  const std::size_t pair_count = adjacent_pairs(g).size();
  gamma_mode chosen = mode;
  if (chosen == gamma_mode::auto_select)
    chosen = pair_count <= 16 ? gamma_mode::exhaustive : gamma_mode::incident_sets;

  if (chosen == gamma_mode::exhaustive) {
    out.gamma_star = gamma_star_exhaustive(g, source, f);
    out.gamma_exact = true;
  } else {
    out.gamma_star = gamma_star_incident(g, source, f);
    out.gamma_exact = false;
  }

  out.u1 = u1_exact(g, f);
  out.rho_star = static_cast<double>(out.u1) / 2.0;

  const double gs = static_cast<double>(out.gamma_star);
  out.capacity_upper_bound = std::min(gs, 2.0 * out.rho_star);
  out.nab_throughput_bound =
      (gs + out.rho_star) > 0 ? gs * out.rho_star / (gs + out.rho_star) : 0.0;
  out.guaranteed_fraction = gs <= out.rho_star ? 0.5 : 1.0 / 3.0;
  return out;
}

}  // namespace nab::core
