#include "core/value.hpp"

#include "util/assert.hpp"

namespace nab::core {

value_vector::value_vector(int rho, int slices)
    : rho_(rho), slices_(slices),
      words_(static_cast<std::size_t>(rho) * slices, 0) {
  NAB_ASSERT(rho > 0 && slices > 0, "value_vector shape must be positive");
}

value_vector value_vector::reshape(const std::vector<word>& words, int rho) {
  NAB_ASSERT(rho > 0, "reshape requires rho > 0");
  const std::size_t per_symbol = (words.size() + rho - 1) / rho;
  value_vector out(rho, static_cast<int>(per_symbol == 0 ? 1 : per_symbol));
  for (std::size_t i = 0; i < words.size(); ++i) out.words_[i] = words[i];
  return out;
}

value_vector value_vector::random(int rho, int slices, rng& rand) {
  value_vector out(rho, slices);
  for (auto& w : out.words_) w = static_cast<word>(rand.below(65536));
  return out;
}

word value_vector::symbol(int s, int slice) const {
  NAB_ASSERT(s >= 0 && s < rho_ && slice >= 0 && slice < slices_,
             "symbol index out of range");
  return words_[static_cast<std::size_t>(s) * slices_ + slice];
}

void value_vector::set_symbol(int s, int slice, word v) {
  NAB_ASSERT(s >= 0 && s < rho_ && slice >= 0 && slice < slices_,
             "symbol index out of range");
  words_[static_cast<std::size_t>(s) * slices_ + slice] = v;
}

std::vector<word> value_vector::symbol_words(int s) const {
  NAB_ASSERT(s >= 0 && s < rho_, "symbol index out of range");
  return {words_.begin() + static_cast<std::ptrdiff_t>(s) * slices_,
          words_.begin() + static_cast<std::ptrdiff_t>(s + 1) * slices_};
}

sim::payload value_vector::pack() const {
  sim::payload out((words_.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out[i / 4] |= static_cast<std::uint64_t>(words_[i]) << (16 * (i % 4));
  return out;
}

value_vector value_vector::unpack(int rho, int slices, const sim::payload& packed) {
  value_vector out(rho, slices);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const std::size_t w = i / 4;
    out.words_[i] =
        w < packed.size() ? static_cast<word>(packed[w] >> (16 * (i % 4))) : 0;
  }
  return out;
}

}  // namespace nab::core
