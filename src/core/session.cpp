#include "core/session.hpp"

#include <algorithm>

#include "bb/broadcast.hpp"
#include "core/certify.hpp"
#include "graph/connectivity.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "obs/obs.hpp"
#include "sim/network.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::core {

session::session(session_config cfg, const sim::fault_set& faults, nab_adversary* adv,
                 sim::run_arena* arena)
    : cfg_(std::move(cfg)), faults_(faults), adv_(adv), arena_(arena), gk_(cfg_.g) {
  const int n = cfg_.g.universe();
  if (cfg_.propagation == propagation_mode::pipelined)
    throw error("session: pipelined propagation is a whole-session schedule — "
                "use core::run_pipelined");
  if (n < 3 * cfg_.f + 1)
    throw error("session: n >= 3f+1 required (n=" + std::to_string(n) +
                ", f=" + std::to_string(cfg_.f) + ")");
  if (cfg_.f > 0 &&
      !omega_cache::instance().connectivity_at_least(cfg_.g, 2 * cfg_.f + 1))
    throw error("session: network connectivity must be at least 2f+1");
  NAB_ASSERT(cfg_.g.is_active(cfg_.source), "source must exist in G");
  NAB_ASSERT(faults_.universe() == n, "fault set universe mismatch");
  NAB_ASSERT(faults_.count() <= cfg_.f, "more corrupt nodes than the budget f");

  // Phase-king engines require > 4f participants (the classical-BB
  // sub-protocols run over the whole original network G). Reject an
  // undersized explicit selection here — the auto_select boundary — instead
  // of tripping an invariant deep inside the first flag or claim round.
  const std::size_t participants = cfg_.g.active_nodes().size();
  if (cfg_.flag_protocol == bb::bb_protocol::phase_king &&
      !bb::phase_king_admissible(participants, cfg_.f))
    throw error("session: phase-king flag broadcast needs more than 4f "
                "participants (n=" + std::to_string(participants) +
                ", f=" + std::to_string(cfg_.f) + ") — use eig or auto_select");
  if (cfg_.claim_backend == bb::claim_backend::phase_king &&
      !bb::phase_king_admissible(participants, cfg_.f))
    throw error("session: phase-king claim backend needs more than 4f "
                "participants (n=" + std::to_string(participants) +
                ", f=" + std::to_string(cfg_.f) + ") — use eig or collapsed");
}

void session::refresh_graph_state() {
  if (!dirty_) return;
  obs::scoped_span refresh_span("refresh_graph");
  // Everything refreshed here (analysis, coding matrices, per-source plans)
  // outlives the instance that triggered the refresh — keep it off the run
  // arena even when called from inside run_instance's ambient scope.
  sim::scoped_run_arena suspend_pooling(nullptr);
  per_source_.clear();
  analysis_ = omega_cache::instance().analyze(gk_, cfg_.f, record_);
  uk_ = analysis_->uk;
  rho_ = analysis_->rho;

  // Generate (and, if asked, certify) the shared coding matrices. Theorem 1
  // makes failure vanishingly unlikely; regeneration with a fresh seed is
  // the correct response when it does happen. When the rank checks would be
  // prohibitively large (rho_k scales with link capacities) we trust the
  // theorem instead of certifying. The estimate mirrors the batched
  // certifier's leave-one-out / dense / DFS dispatch, so the gate prices
  // the path that will actually run; it is cached with the analysis.
  bool certify = cfg_.certify;
  if (certify && analysis_->certify_cost > cfg_.certify_cost_limit)
    certify = false;
  for (int attempt = 0;; ++attempt) {
    {
      obs::scoped_span gen_span("coding_generate");
      coding_ = coding_scheme::generate(gk_, static_cast<int>(rho_),
                                        cfg_.coding_seed + coding_generation_);
    }
    ++coding_generation_;
    if (!certify) break;
    bool certified = false;
    {
      obs::scoped_span cert_span("certify");
      certified = certify_coding_batched(gk_, cfg_.f, record_, coding_).ok;
    }
    if (certified) break;
    if (attempt >= 8)
      throw error("session: failed to certify coding matrices after 8 seeds — "
                  "U_k is likely too small for rho_k (see DESIGN.md §8)");
  }
  dirty_ = false;
}

const phase1_plan& session::source_state_for(graph::node_id source) {
  refresh_graph_state();
  auto it = per_source_.find(source);
  if (it == per_source_.end()) {
    // Plans are cached per-session (and process-wide in omega_cache) —
    // long-lived, so computed with pooling suspended like every other
    // cross-instance structure.
    sim::scoped_run_arena suspend_pooling(nullptr);
    auto plan = omega_cache::instance().plan_for(gk_, source);
    NAB_ASSERT(plan->gamma >= 1, "instance graph lost connectivity from the source");
    it = per_source_.emplace(source, std::move(plan)).first;
  }
  return *it->second;
}

bb::channel_plan& session::ensure_channels() {
  // The classical-BB sub-protocols (step 2.2 flags, Phase-3 claims) are
  // capacity-oblivious overhead: they run over the ORIGINAL network G, whose
  // connectivity >= 2f+1 guarantees the complete-graph emulation — G_k may
  // lose that property as disputed edges are dropped. Instance data phases
  // (1 and 2.1) remain restricted to G_k.
  if (!channels_) {
    // The plan persists across instances; its backbone must not come from
    // the per-instance arena (round payloads still do — reclaimed by the
    // instance epilogue below).
    sim::scoped_run_arena suspend_pooling(nullptr);
    channels_.emplace(cfg_.g, cfg_.f,
                      omega_cache::instance().channel_routes_for(cfg_.g, cfg_.f));
  }
  return *channels_;
}

graph::capacity_t session::next_gamma() { return source_state_for(cfg_.source).gamma; }

graph::capacity_t session::next_rho() {
  refresh_graph_state();
  return rho_;
}

instance_report session::run_instance(const std::vector<word>& input,
                                      graph::node_id source_override) {
  const graph::node_id source = source_override >= 0 ? source_override : cfg_.source;
  NAB_ASSERT(source >= 0 && source < cfg_.g.universe(), "source out of range");

  // Per-instance arena epoch: pooling is ambient for the instance body, and
  // the epilogue (also on early returns and exception unwinds, after every
  // in-scope container has died) reclaims the channel plan's round storage
  // and rewinds the arena. reset() aborts if anything is still live, which
  // is the use-after-reset guarantee the arena tests pin down.
  sim::scoped_run_arena ambient(cfg_.pool_memory ? &arena() : nullptr);
  struct arena_epoch {
    session* s;
    ~arena_epoch() {
      if (s->channels_) s->channels_->reclaim_round_storage();
      s->arena().reset();
    }
  } epoch{this};

  // Instance span: every phase span below nests under it. Declared after the
  // epoch guard so it closes (and its record is final) before the arena
  // rewinds. tau starts at 0 — each instance gets a fresh network clock.
  obs::scoped_span instance_span("instance", 0.0);

  instance_report report;
  report.index = stats_.instances;
  report.outputs.assign(static_cast<std::size_t>(gk_.universe()), {});

  // Special case 1: the source has been convicted — everyone already knows,
  // and agrees on the default (all-zero) value without communicating.
  if (!gk_.is_active(source)) {
    report.default_outcome = true;
    report.active_nodes = gk_.active_count();
    for (graph::node_id v : gk_.active_nodes())
      report.outputs[static_cast<std::size_t>(v)] =
          std::vector<word>(input.size(), 0);
    report.validity = true;  // source is faulty; validity is vacuous
    ++stats_.instances;
    stats_.bits_broadcast += 16 * input.size();
    return report;
  }

  const phase1_plan& st = source_state_for(source);
  report.active_nodes = gk_.active_count();
  report.gamma = st.gamma;
  report.uk = uk_;
  report.rho = rho_;

  if (adv_ != nullptr) {
    sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
    adv_->on_instance_begin(report.index, gk_);
  }

  // The physical network is always G: G_k only restricts which links the
  // protocol *uses* in Phases 1/2.1.
  sim::network net(cfg_.g);

  // ---- Phase 1: unreliable broadcast over the arborescence packing. ----
  phase1_result p1;
  {
    obs::scoped_span span("phase1", net.elapsed());
    p1 = run_phase1(net, gk_, faults_, source, input, st.trees, adv_,
                    cfg_.propagation);
    span.end_tau(net.elapsed());
  }
  report.time_phase1 = p1.time;

  // Special case 2: with >= f nodes excluded, every remaining node is
  // fault-free and Phase 1 alone is reliable (Section 2).
  const int excluded = gk_.universe() - gk_.active_count();
  if (excluded >= cfg_.f) {
    report.phase1_only = true;
    for (graph::node_id v : gk_.active_nodes())
      report.outputs[static_cast<std::size_t>(v)] =
          p1.received[static_cast<std::size_t>(v)];
  } else {
    // ---- Phase 2, step 2.1: Equality Check with parameter rho_k. ----
    std::vector<value_vector> values(static_cast<std::size_t>(gk_.universe()));
    for (graph::node_id v : gk_.active_nodes())
      values[static_cast<std::size_t>(v)] = value_vector::reshape(
          p1.received[static_cast<std::size_t>(v)], static_cast<int>(rho_));
    equality_check_result ec;
    {
      obs::scoped_span span("equality_check", net.elapsed());
      ec = run_equality_check(net, gk_, faults_, coding_, values, adv_);
      span.end_tau(net.elapsed());
    }
    report.time_equality_check = ec.time;

    // ---- Phase 2, step 2.2: classical BB of the 1-bit flags. ----
    std::vector<bool> flag_inputs(static_cast<std::size_t>(gk_.universe()), false);
    for (graph::node_id v : gk_.active_nodes()) {
      bool flag = ec.flags[static_cast<std::size_t>(v)];
      if (faults_.is_corrupt(v) && adv_ != nullptr) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        flag = adv_->phase2_flag(v, flag);
      }
      flag_inputs[static_cast<std::size_t>(v)] = flag;
    }
    bb::bb_protocol engine = cfg_.flag_protocol;
    if (engine == bb::bb_protocol::auto_select) {
      const auto participants = ensure_channels().topology().active_nodes().size();
      engine = bb::phase_king_admissible(participants, cfg_.f)
                   ? bb::bb_protocol::phase_king
                   : bb::bb_protocol::eig;
    }
    bb::flags_outcome flags;
    {
      obs::scoped_span span("flags", net.elapsed());
      flags =
          engine == bb::bb_protocol::phase_king
              ? bb::broadcast_flags_phase_king(ensure_channels(), net, faults_,
                                               flag_inputs, cfg_.f,
                                               gk_.active_nodes(), nullptr,
                                               adv_ != nullptr ? adv_->relay()
                                                               : nullptr)
              : bb::broadcast_flags(ensure_channels(), net, faults_, flag_inputs,
                                    cfg_.f, gk_.active_nodes(),
                                    adv_ != nullptr ? adv_->eig() : nullptr,
                                    adv_ != nullptr ? adv_->relay() : nullptr);
      span.end_tau(net.elapsed());
    }
    report.time_flags = flags.time;

    // All honest nodes hold identical agreed flags; read them off one.
    graph::node_id reader = -1;
    for (graph::node_id v : gk_.active_nodes())
      if (faults_.is_honest(v)) {
        reader = v;
        break;
      }
    NAB_ASSERT(reader >= 0, "no honest node in G_k");
    std::vector<bool> agreed_flags(static_cast<std::size_t>(gk_.universe()), false);
    bool any_mismatch = false;
    for (graph::node_id v : gk_.active_nodes()) {
      agreed_flags[static_cast<std::size_t>(v)] =
          flags.agreed[static_cast<std::size_t>(v)][static_cast<std::size_t>(reader)];
      any_mismatch = any_mismatch || agreed_flags[static_cast<std::size_t>(v)];
    }
    report.mismatch_announced = any_mismatch;

    if (!any_mismatch) {
      // Clean instance: everyone keeps the Phase-1 value.
      for (graph::node_id v : gk_.active_nodes())
        report.outputs[static_cast<std::size_t>(v)] =
            p1.received[static_cast<std::size_t>(v)];
    } else {
      // ---- Phase 3: dispute control. ----
      report.dispute_phase_run = true;
      ++stats_.dispute_phases;

      instance_context ctx;
      ctx.source = source;
      ctx.input = input;
      ctx.rho = static_cast<int>(rho_);
      ctx.trees = st.trees;
      ctx.coding = &coding_;
      ctx.truth.assign(static_cast<std::size_t>(gk_.universe()), node_claims{});
      for (graph::node_id v : gk_.active_nodes()) {
        node_claims merged = p1.truth[static_cast<std::size_t>(v)];
        merged.p2_sent = ec.truth[static_cast<std::size_t>(v)].p2_sent;
        merged.p2_received = ec.truth[static_cast<std::size_t>(v)].p2_received;
        ctx.truth[static_cast<std::size_t>(v)] = std::move(merged);
      }
      ctx.agreed_flags = agreed_flags;
      // Erasure-vs-tamper discrimination follows the network, not a config
      // bit: active exactly when the attached fault model can actually drop
      // (an inert zero-loss model changes nothing — the byte-identity guard).
      ctx.lossy_links = net.lossy();

      // auto_select resolves inside broadcast_claims, on the channel plan's
      // participant count — one resolution authority for every caller. The
      // coding seed doubles as the digest-point seed: per-run shared
      // protocol state, exactly like the coding matrices.
      //
      // The BB sub-protocols get the *remaining* fault budget: every
      // convicted node is provably corrupt (conviction soundness) and
      // already removed from G_k, so at most f - |convicted| corrupt nodes
      // participate — and with n >= 3f+1 the shrunken G_k always satisfies
      // the collapsed backend's participants > 3f' precondition, which the
      // full f could not (n - c > 3(f - c) holds for every c >= 0; n - c >
      // 3f can fail after staggered convictions). DC4's cover bound keeps
      // the full f: honest pairs must stay coverable by all f corrupt
      // nodes, convicted or not.
      dispute_outcome dc;
      {
        obs::scoped_span span("phase3", net.elapsed());
        const int f_remaining =
            std::max(0, cfg_.f - static_cast<int>(record_.convicted().size()));
        dc = run_dispute_control(net, ensure_channels(), gk_, faults_,
                                 f_remaining, cfg_.f, ctx, record_, adv_,
                                 cfg_.claim_backend, cfg_.coding_seed);
        span.end_tau(net.elapsed());
      }
      report.time_phase3 = dc.time;
      report.claim_bits = dc.claim_bits;
      report.claim_fallbacks = dc.claim_fallbacks;
      stats_.claim_bits += dc.claim_bits;
      stats_.claim_fallbacks += dc.claim_fallbacks;
      report.new_disputes = dc.new_disputes;
      report.newly_convicted = dc.newly_convicted;

      for (graph::node_id v : gk_.active_nodes())
        report.outputs[static_cast<std::size_t>(v)] = dc.agreed_value;

      // Compute G_{k+1}: drop convicted nodes and disputed edges.
      for (graph::node_id v : record_.convicted()) gk_.remove_node(v);
      for (const auto& [a, b] : record_.pairs()) gk_.remove_edge_pair(a, b);
      dirty_ = true;
    }
  }

  // Ground-truth evaluation of the BB properties for this instance.
  const std::vector<word>* agreed = nullptr;
  for (graph::node_id v : gk_.active_nodes()) {
    if (faults_.is_corrupt(v)) continue;
    const auto& out = report.outputs[static_cast<std::size_t>(v)];
    if (agreed == nullptr) {
      agreed = &out;
    } else if (out != *agreed) {
      report.agreement = false;
    }
  }
  if (faults_.is_honest(source) && agreed != nullptr && *agreed != input)
    report.validity = false;

  stats_.elapsed += net.elapsed();
  stats_.bits_broadcast += 16 * input.size();
  ++stats_.instances;
  instance_span.end_tau(net.elapsed());
  return report;
}

std::vector<instance_report> session::run_many(int q, std::size_t words_per_input,
                                               rng& rand, bool rotate_sources) {
  std::vector<instance_report> out;
  out.reserve(static_cast<std::size_t>(q));
  for (int i = 0; i < q; ++i) {
    std::vector<word> input(words_per_input);
    for (auto& w : input) w = static_cast<word>(rand.below(65536));
    graph::node_id source = -1;
    if (rotate_sources) {
      const auto active = gk_.active_nodes();
      source = active[static_cast<std::size_t>(i) % active.size()];
    }
    out.push_back(run_instance(input, source));
  }
  return out;
}

session_run run_session(session_config cfg, const sim::fault_set& faults,
                        nab_adversary* adv, int q, std::size_t words_per_input,
                        std::uint64_t seed, bool rotate_sources,
                        sim::run_arena* arena) {
  session s(std::move(cfg), faults, adv, arena);
  rng rand(seed);
  session_run out;
  out.reports = s.run_many(q, words_per_input, rand, rotate_sources);
  out.stats = s.stats();
  out.disputes = s.disputes();
  out.final_graph = s.current_graph();
  return out;
}

}  // namespace nab::core
