#pragma once

#include <vector>

#include "core/adversary.hpp"
#include "graph/digraph.hpp"
#include "graph/tree_packing.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::core {

/// How Phase-1 forwarding time is modeled.
enum class propagation_mode {
  /// The paper's default: zero propagation delay, so all tree edges carry
  /// their share concurrently and Phase 1 takes L/gamma_k (one step).
  cut_through,
  /// Store-and-forward: a node forwards a share only after fully receiving
  /// it, so Phase 1 spans depth * L/gamma_k. This is the regime Appendix D's
  /// pipelining (Figure 3) fixes; bench E7 contrasts the two.
  store_and_forward,
  /// Appendix D's pipelined schedule: store-and-forward hops, but instance i
  /// enters the pipe in round i so a new instance completes every round at
  /// steady state. This is a whole-session schedule, not a per-phase one —
  /// sessions are executed by core::run_pipelined (fault-free regime), and
  /// run_phase1 rejects it. Exists as an enumerator so the runtime registry
  /// can expose pipelined-vs-plain as one propagation axis.
  pipelined,
};

/// Result of the unreliable broadcast.
struct phase1_result {
  /// Words assembled by each node (indexed by node id; meaningful for active
  /// honest nodes). Equals the input at every honest node iff no corruption
  /// happened on the trees.
  std::vector<std::vector<word>> received;
  /// Per-node ground-truth transcripts (the p1_* sections filled in).
  std::vector<node_claims> truth;
  /// The arborescence packing used.
  std::vector<graph::spanning_tree> trees;
  double time = 0.0;
  /// Maximum tree depth (hops the value travels).
  int depth = 0;
};

/// Phase 1 of NAB (Appendix A): split the input into gamma shares of
/// L/gamma bits and flood share t along arborescence t of an Edmonds packing
/// rooted at the source. No fault detection — corrupt relays may deliver
/// garbage, which Phase 2 will catch.
///
/// `input` is the source's L-bit value as 16-bit words; `trees` must be a
/// valid packing (from pack_arborescences). Missing/extra words at receivers
/// are zero-filled to the input length.
phase1_result run_phase1(sim::network& net, const graph::digraph& g,
                         const sim::fault_set& faults, graph::node_id source,
                         const std::vector<word>& input,
                         const std::vector<graph::spanning_tree>& trees,
                         nab_adversary* adv = nullptr,
                         propagation_mode mode = propagation_mode::cut_through);

/// Splits `input` into `shares` chunks of ceil(|input|/shares) words each
/// (zero-padded). Exposed for dispute-control re-execution and tests.
std::vector<chunk> split_into_chunks(const std::vector<word>& input, int shares);

/// Inverse of split_into_chunks, truncated/padded to `total` words.
std::vector<word> assemble_chunks(const std::vector<chunk>& chunks, std::size_t total);

}  // namespace nab::core
