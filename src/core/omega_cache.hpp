#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "bb/channels.hpp"
#include "core/omega.hpp"
#include "graph/digraph.hpp"
#include "graph/tree_packing.hpp"

namespace nab::core {

/// Everything the paper derives from (G_k, f, disputes) alone — i.e. from
/// quantities that do NOT depend on a run's seed. Immutable once built;
/// shared read-only across executor shards via shared_ptr.
struct omega_analysis {
  std::vector<std::vector<graph::node_id>> omega;  ///< Omega_k enumeration
  graph::capacity_t uk = 0;                        ///< U_k over Omega_k
  graph::capacity_t rho = 0;                       ///< rho_k = max(U_k/2, 1)
  /// certify_cost_estimate(g, omega, rho): priced once per topology here so
  /// a sweep's per-run certify gate is a comparison, not a re-walk of omega.
  std::uint64_t certify_cost = 0;
};

/// The per-(G_k, source) half of Phase-1 state: gamma_k and the Edmonds
/// arborescence packing. Both are pure functions of the graph and root
/// (pack_arborescences seeds its greedy attempts from (k, root) only).
struct phase1_plan {
  graph::capacity_t gamma = 0;
  std::vector<graph::spanning_tree> trees;
  /// Deterministic packing work (charged to every run that uses this plan,
  /// hit or miss, so the counters sit inside the jobs-1-vs-N contract).
  graph::pack_stats stats;
};

struct omega_cache_stats {
  std::uint64_t analysis_hits = 0;
  std::uint64_t analysis_misses = 0;
  std::uint64_t plan_hits = 0;
  std::uint64_t plan_misses = 0;
  std::uint64_t connectivity_hits = 0;
  std::uint64_t connectivity_misses = 0;
  std::uint64_t route_hits = 0;
  std::uint64_t route_misses = 0;
};

/// Process-wide memo for topology analysis: Omega_k / U_k / rho_k keyed on
/// (graph fingerprint, f, dispute pairs) and Phase-1 plans keyed on
/// (graph fingerprint, source).
///
/// A fleet sweep re-derives the same answers for every run of a family
/// (deterministic presets expand to byte-identical graphs, and random ones
/// revisit the same instance graphs across adversary axes), so these
/// quantities are computed once per sweep instead of once per run.
///
/// Concurrency and determinism: entries are immutable behind
/// shared_ptr<const>, the table is guarded by a shared_mutex (reads
/// concurrent, inserts exclusive), and values are pure functions of their
/// keys — two shards racing on the same miss compute identical results and
/// the second insert is discarded, so a sweep's output is byte-identical
/// for every --jobs value regardless of hit/miss interleaving.
///
/// Collision safety: the 64-bit fingerprint only selects a bucket; every
/// bucket entry stores the full canonical key (universe, active set,
/// capacity matrix, f, dispute pairs) and is compared exactly on lookup, so
/// a fingerprint collision costs a compare, never a wrong answer.
class omega_cache {
 public:
  /// The process-wide instance used by core::session.
  static omega_cache& instance();

  /// Omega_k / U_k / rho_k of (g, f, disputes); computed on miss.
  std::shared_ptr<const omega_analysis> analyze(const graph::digraph& g, int f,
                                                const dispute_record& disputes);

  /// gamma_k and the arborescence packing of (g, source); computed on miss.
  /// Precondition: every active node reachable from `source` (throws
  /// nab::error via pack_arborescences otherwise).
  std::shared_ptr<const phase1_plan> plan_for(const graph::digraph& g,
                                              graph::node_id source);

  /// Memoized graph::global_vertex_connectivity_at_least(g, k) — the 2f+1
  /// precondition is re-validated by the runner and the session for every
  /// run of a sweep. The capped decision form keeps freshly drawn random
  /// topologies (which can never hit the cache) cheap too.
  bool connectivity_at_least(const graph::digraph& g, int k);

  /// Memoized bb::channel_plan::build_routes(g, f): the 2f+1 node-disjoint
  /// emulation routes of the step-2.2/Phase-3 classical-BB channels. Routes
  /// run over the ORIGINAL network G, so every session of a preset shares
  /// one table. Throws nab::error when some pair lacks 2f+1 disjoint paths.
  std::shared_ptr<const bb::channel_plan::route_table> channel_routes_for(
      const graph::digraph& g, int f);

  omega_cache_stats stats() const;

  /// Worker count a filling thread may use for the per-pair/per-tree inner
  /// loops of plan/route fills (<= 1 disables). Results are order-independent
  /// writes into preallocated slots, so fills are byte-identical for every
  /// value; the sweep runner wires its --jobs here. Fills on universes below
  /// 32 nodes always run inline (thread spawns would dominate, and the clean
  /// K_7 allocation budget stays untouched).
  void set_fill_parallelism(int jobs);

  /// Drops every entry and zeroes the counters (tests, sweep boundaries).
  void clear();

 private:
  using canonical_key = std::vector<std::int64_t>;

  template <class V>
  struct bucket_entry {
    canonical_key key;
    std::shared_ptr<const V> value;
  };
  template <class V>
  using table = std::unordered_map<std::uint64_t, std::vector<bucket_entry<V>>>;

  /// Per-key in-flight latch: concurrent misses on one key elect a single
  /// filling thread; the rest block on the latch and adopt the winner's
  /// value (they count as hits — exactly one fill span and one miss per
  /// key). A leader that throws wakes the waiters, who re-probe and elect a
  /// new leader.
  struct inflight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
  };

  /// The shared lookup/compute/insert sequence behind every public method:
  /// shared-lock probe, single-flight leader election on miss, unlocked
  /// compute by the leader only (misses on distinct keys still proceed in
  /// parallel), unique-lock insert. Counters are atomics because hits tick
  /// under the shared lock. `fill_span` names the obs span wrapped around
  /// the compute (misses only — which run pays one is
  /// scheduling-dependent, so fill spans and the per-run hit/miss counters
  /// belong to the machine set; the lookup count is the deterministic
  /// companion).
  template <class V, class Compute>
  std::shared_ptr<const V> get_or_compute(table<V>& tbl, canonical_key key,
                                          std::atomic<std::uint64_t>& hits,
                                          std::atomic<std::uint64_t>& misses,
                                          const char* fill_span,
                                          const Compute& compute);

  /// Inner-loop worker count for the current fill (see set_fill_parallelism).
  int fill_jobs(const graph::digraph& g) const;

  mutable std::shared_mutex mu_;
  std::mutex inflight_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<inflight>> inflight_;
  std::atomic<int> fill_jobs_{1};
  table<omega_analysis> analyses_;
  table<phase1_plan> plans_;
  table<int> connectivity_;
  table<bb::channel_plan::route_table> routes_;
  std::atomic<std::uint64_t> analysis_hits_{0};
  std::atomic<std::uint64_t> analysis_misses_{0};
  std::atomic<std::uint64_t> plan_hits_{0};
  std::atomic<std::uint64_t> plan_misses_{0};
  std::atomic<std::uint64_t> connectivity_hits_{0};
  std::atomic<std::uint64_t> connectivity_misses_{0};
  std::atomic<std::uint64_t> route_hits_{0};
  std::atomic<std::uint64_t> route_misses_{0};
};

/// 64-bit fingerprint of a digraph's exact state (universe, active set,
/// capacity matrix), splitmix-mixed. Exposed for tests; cache lookups back
/// it with a full-key compare.
std::uint64_t graph_fingerprint(const graph::digraph& g);

}  // namespace nab::core
