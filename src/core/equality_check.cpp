#include "core/equality_check.hpp"

#include <utility>

#include "util/assert.hpp"

namespace nab::core {

equality_check_result run_equality_check(sim::network& net, const graph::digraph& g,
                                         const sim::fault_set& faults,
                                         const coding_scheme& coding,
                                         const std::vector<value_vector>& values,
                                         nab_adversary* adv) {
  const int universe = g.universe();
  NAB_ASSERT(values.size() >= static_cast<std::size_t>(universe),
             "values must cover the node universe");

  equality_check_result result;
  result.flags.assign(static_cast<std::size_t>(universe), false);
  result.truth.assign(static_cast<std::size_t>(universe), node_claims{});
  const double t0 = net.elapsed();

  // Step 1: one coded transmission per directed edge.
  // actual[(u,v)] lives in the receiver's truth record after the step.
  for (const graph::edge& e : g.edges()) {
    const value_vector& x = values[static_cast<std::size_t>(e.from)];
    coded_symbols sent = coding.encode(x, e.from, e.to);
    if (faults.is_corrupt(e.from) && adv != nullptr) {
      // Pooling suspended across the hook: strategies may stash state that
      // outlives the instance (stealth_disputer records honest symbols).
      sim::scoped_run_arena suspend_pooling(nullptr);
      const coded_symbols honest = std::move(sent);
      sent = adv->phase2_coded(e.from, e.to, honest);
      NAB_ASSERT(sent.count == honest.count && sent.slices == honest.slices,
                 "adversary must respect the wire format of coded symbols");
    }
    // ARQ under lossy links; a budget-exhausted edge leaves no receipt, so
    // the receiver simply skips that edge in step 2 (erasure, not evidence)
    // and dispute control sees a missing — not mismatching — claim.
    const bool delivered = net.lossy_transmit(e.from, e.to, sent.bits());
    result.truth[static_cast<std::size_t>(e.from)].p2_sent[{e.from, e.to}] = sent;
    if (delivered)
      result.truth[static_cast<std::size_t>(e.to)].p2_received[{e.from, e.to}] =
          std::move(sent);
  }
  net.end_step();

  // Step 2-3: each node verifies every incoming edge against its own value.
  for (graph::node_id v : g.active_nodes()) {
    const value_vector& x = values[static_cast<std::size_t>(v)];
    bool mismatch = false;
    for (const auto& [key, received] : result.truth[static_cast<std::size_t>(v)].p2_received) {
      if (!coding.check(x, key.first, key.second, received)) {
        mismatch = true;
        break;
      }
    }
    result.flags[static_cast<std::size_t>(v)] = mismatch;
  }

  result.time = net.elapsed() - t0;
  return result;
}

}  // namespace nab::core
