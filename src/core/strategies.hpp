#pragma once

#include <set>

#include "core/adversary.hpp"
#include "util/rng.hpp"

namespace nab::core {

/// Corrupt relays flip words of every chunk they forward in Phase 1 —
/// Phase-1 outcome (ii)/(iv) of Section 2. Detection is then up to the
/// Equality Check.
class phase1_corruptor : public nab_adversary {
 public:
  /// When `only_to` >= 0 the attack targets a single victim (hardest case
  /// for detection: exactly one fault-free node holds a different value).
  explicit phase1_corruptor(graph::node_id only_to = -1) : only_to_(only_to) {}

  chunk phase1_forward_chunk(int, graph::node_id, graph::node_id to,
                             const chunk& honest) override;
  chunk phase1_source_chunk(int, graph::node_id to, const chunk& honest) override;

 private:
  graph::node_id only_to_;
};

/// A corrupt *source* that equivocates: children in the "minority" set get a
/// complemented value. Exercises Phase-1 outcome (iv).
class equivocating_source : public nab_adversary {
 public:
  explicit equivocating_source(std::set<graph::node_id> minority)
      : minority_(std::move(minority)) {}

  chunk phase1_source_chunk(int, graph::node_id to, const chunk& honest) override;

 private:
  std::set<graph::node_id> minority_;
};

/// Corrupt nodes send garbage coded symbols during the Equality Check while
/// having behaved in Phase 1 — misbehavior confined to Phase 2, which the
/// paper's DC3 replay must attribute correctly.
class phase2_liar : public nab_adversary {
 public:
  explicit phase2_liar(std::uint64_t seed = 7) : rand_(seed) {}

  coded_symbols phase2_coded(graph::node_id, graph::node_id,
                             const coded_symbols& honest) override;

 private:
  rng rand_;
};

/// Corrupt nodes announce MISMATCH although everything checked out, forcing
/// a pointless (for them: self-incriminating) dispute-control round.
class false_flagger : public nab_adversary {
 public:
  bool phase2_flag(graph::node_id, bool) override { return true; }
};

/// Corrupt nodes lie in Phase 3 about what they received from a chosen
/// victim, manufacturing a dispute with an honest node.
class claim_forger : public nab_adversary {
 public:
  explicit claim_forger(graph::node_id victim) : victim_(victim) {}

  node_claims phase3_claims(graph::node_id v, const node_claims& honest) override;

 private:
  graph::node_id victim_;
};

/// The dispute-farming workload of bench E5: in every instance, each corrupt
/// node corrupts Phase-1 forwards to one victim it still shares an edge
/// with, maximizing the number of dispute-control rounds before the
/// adversary runs out of edges (at most f(f+1) rounds, per the paper).
class dispute_farmer : public nab_adversary {
 public:
  chunk phase1_forward_chunk(int tree, graph::node_id from, graph::node_id to,
                             const chunk& honest) override;
};

/// The strongest dispute-stretching adversary the model allows: each corrupt
/// node lies on exactly ONE Equality-Check edge per instance (toward a fresh
/// victim), then claims in Phase 3 to have sent the *correct* symbols. The
/// resulting evidence is a single new disputing pair per corrupt node per
/// instance and no immediate conviction — the slowest possible progress, and
/// the workload that realizes the paper's f(f+1) dispute-control bound.
class stealth_disputer : public nab_adversary {
 public:
  void on_instance_begin(int instance_index, const graph::digraph& gk) override;
  coded_symbols phase2_coded(graph::node_id u, graph::node_id v,
                             const coded_symbols& honest) override;
  node_claims phase3_claims(graph::node_id v, const node_claims& honest) override;

 private:
  std::set<std::pair<graph::node_id, graph::node_id>> burned_;   // pairs already used
  std::map<graph::node_id, graph::node_id> victim_;              // per corrupt node, this instance
  std::map<std::pair<graph::node_id, graph::node_id>, coded_symbols> honest_sent_;
  const graph::digraph* gk_ = nullptr;
};

/// Routes each corrupt node's behavior to its own delegate strategy, so
/// colluders can attack through different phases simultaneously (the model
/// allows arbitrary heterogeneous behavior).
class composite_adversary : public nab_adversary {
 public:
  /// `delegate` keeps a non-owning pointer; callers keep strategies alive.
  void assign(graph::node_id node, nab_adversary* delegate);

  void on_instance_begin(int instance_index, const graph::digraph& gk) override;
  chunk phase1_source_chunk(int tree, graph::node_id to, const chunk& honest) override;
  chunk phase1_forward_chunk(int tree, graph::node_id from, graph::node_id to,
                             const chunk& honest) override;
  coded_symbols phase2_coded(graph::node_id u, graph::node_id v,
                             const coded_symbols& honest) override;
  bool phase2_flag(graph::node_id v, bool honest) override;
  node_claims phase3_claims(graph::node_id v, const node_claims& honest) override;

 private:
  std::map<graph::node_id, nab_adversary*> delegates_;
  graph::node_id source_ = 0;  // phase1_source_chunk has no node argument
 public:
  /// The source id, needed to route phase1_source_chunk. Defaults to 0.
  void set_source(graph::node_id s) { source_ = s; }
};

/// Seeded fuzzing adversary: every hook independently decides (with the
/// given probability) to emit garbage instead of the honest message —
/// phase-1 chunks, coded symbols, flags, and claim entries alike. Used by
/// the property-test sweeps: whatever this does, agreement/validity and the
/// dispute-soundness invariants must survive.
class chaos_adversary : public nab_adversary {
 public:
  explicit chaos_adversary(std::uint64_t seed, double p = 0.3)
      : rand_(seed), p_(p) {}

  chunk phase1_source_chunk(int tree, graph::node_id to, const chunk& honest) override;
  chunk phase1_forward_chunk(int tree, graph::node_id from, graph::node_id to,
                             const chunk& honest) override;
  coded_symbols phase2_coded(graph::node_id u, graph::node_id v,
                             const coded_symbols& honest) override;
  bool phase2_flag(graph::node_id v, bool honest) override;
  node_claims phase3_claims(graph::node_id v, const node_claims& honest) override;

 private:
  rng rand_;
  double p_;
};

}  // namespace nab::core
