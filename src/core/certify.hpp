#pragma once

#include <vector>

#include "core/coding.hpp"
#include "core/omega.hpp"
#include "gf/matrix.hpp"
#include "graph/digraph.hpp"

namespace nab::core {

/// Result of certifying a coding scheme against Theorem 1's condition.
struct certification {
  bool ok = false;
  /// Subgraphs H in Omega_k whose check matrix C_H is rank-deficient (empty
  /// when ok).
  std::vector<std::vector<graph::node_id>> failing;
};

/// Builds the paper's C_H matrix (Appendix C.1) for one candidate fault-free
/// subgraph H: rows indexed by (node-position, symbol) with the last node of
/// `h` as the reference, one column per capacity unit of every directed edge
/// of g inside H. In characteristic 2 the +C_e / -C_e blocks coincide.
gf::matrix<gf::gf2_16> build_check_matrix(const graph::digraph& g,
                                          const std::vector<graph::node_id>& h,
                                          const coding_scheme& coding);

/// Deterministically certifies the Equality Check property (EC): for every
/// H in Omega_k, D_H C_H = 0 must imply D_H = 0, i.e. rank(C_H) =
/// (n-f-1) * rho. Theorem 1 shows random matrices satisfy this with
/// probability >= 1 - 2^{-L/rho} C(n, n-f) (n-f-1) rho; this routine turns
/// the probabilistic statement into a checked certificate, so a deployment
/// can regenerate with a fresh seed on the (astronomically rare) failure.
certification certify_coding(const graph::digraph& g, int f,
                             const dispute_record& disputes,
                             const coding_scheme& coding);

/// The same certificate, computed with one incremental factorization shared
/// across all of Omega_k instead of an independent rank elimination per H.
///
/// Key fact (Appendix C.1): a left null vector D_H = (d_v)_{v in H} of C_H
/// is exactly an assignment of rho-vectors to H's nodes with
/// (d_u + d_v) C_e = 0 on every intra-H edge, so rank(C_H) = (|H|-1) rho
/// iff the only null vectors are the constant assignments. That condition
/// depends on rows "per node" and columns "per edge", both shared between
/// overlapping subgraphs — so Omega_k is walked as a DFS over lexicographic
/// prefixes, maintaining an append-only reduced row basis: pushing a node
/// activates its intra-prefix edge columns and inserts its rho rows,
/// backtracking truncates. Each H then costs one node-extension
/// (~rho * rows * cols field ops) instead of a from-scratch elimination
/// (~rows^2 * cols), an (n-f)-fold saving that makes K_16-class
/// certification affordable.
///
/// Two shapes dispatch away from the DFS. The f = 1 leave-one-out shape
/// (exactly one more active node than the target size) runs ONE reduction
/// of the all-active-blocks matrix and answers each member H_x by a rank
/// downdate over x's columns — the shape where DFS prefix sharing is worth
/// the least and where the per-H work is the largest (K_64-complete,
/// n = 128). Dense graphs otherwise fall back to per-H eliminations (the
/// naive path on the batched kernels). Results are bit-identical across
/// all paths (the per-H verdicts and their order); tests cross-check them.
certification certify_coding_batched(const graph::digraph& g, int f,
                                     const dispute_record& disputes,
                                     const coding_scheme& coding);

/// Estimated GF *word* count of certify_coding_batched over this Omega_k —
/// mirrors its full three-way dispatch so cost gates price the path that
/// will actually run: leave-one-out (one all-blocks Gauss-Jordan plus a
/// nullity-sized corner rank per member), dense/naive (a from-scratch
/// elimination per member), or the sparse DFS (per prefix-push work,
/// reconstructed from the LCP structure of omega's lexicographic order).
/// Comparable to the measured gf_axpy_words + gf_scale_words of a
/// certification run within a small constant factor (pinned by tests).
std::uint64_t certify_cost_estimate(const graph::digraph& g,
                                    const std::vector<std::vector<graph::node_id>>& omega,
                                    int rho);

/// The failure-probability upper bound of Theorem 1 for field size
/// 2^field_bits: C(n, n-f) * (n-f-1) * rho / 2^field_bits (clamped to 1).
double theorem1_failure_bound(int n, int f, int rho, int field_bits);

}  // namespace nab::core
