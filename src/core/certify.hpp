#pragma once

#include <vector>

#include "core/coding.hpp"
#include "core/omega.hpp"
#include "gf/matrix.hpp"
#include "graph/digraph.hpp"

namespace nab::core {

/// Result of certifying a coding scheme against Theorem 1's condition.
struct certification {
  bool ok = false;
  /// Subgraphs H in Omega_k whose check matrix C_H is rank-deficient (empty
  /// when ok).
  std::vector<std::vector<graph::node_id>> failing;
};

/// Builds the paper's C_H matrix (Appendix C.1) for one candidate fault-free
/// subgraph H: rows indexed by (node-position, symbol) with the last node of
/// `h` as the reference, one column per capacity unit of every directed edge
/// of g inside H. In characteristic 2 the +C_e / -C_e blocks coincide.
gf::matrix<gf::gf2_16> build_check_matrix(const graph::digraph& g,
                                          const std::vector<graph::node_id>& h,
                                          const coding_scheme& coding);

/// Deterministically certifies the Equality Check property (EC): for every
/// H in Omega_k, D_H C_H = 0 must imply D_H = 0, i.e. rank(C_H) =
/// (n-f-1) * rho. Theorem 1 shows random matrices satisfy this with
/// probability >= 1 - 2^{-L/rho} C(n, n-f) (n-f-1) rho; this routine turns
/// the probabilistic statement into a checked certificate, so a deployment
/// can regenerate with a fresh seed on the (astronomically rare) failure.
certification certify_coding(const graph::digraph& g, int f,
                             const dispute_record& disputes,
                             const coding_scheme& coding);

/// The failure-probability upper bound of Theorem 1 for field size
/// 2^field_bits: C(n, n-f) * (n-f-1) * rho / 2^field_bits (clamped to 1).
double theorem1_failure_bound(int n, int f, int rho, int field_bits);

}  // namespace nab::core
