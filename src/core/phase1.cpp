#include "core/phase1.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace nab::core {

std::vector<chunk> split_into_chunks(const std::vector<word>& input, int shares) {
  NAB_ASSERT(shares > 0, "split_into_chunks requires positive share count");
  const std::size_t per = (input.size() + shares - 1) / shares;
  std::vector<chunk> out(static_cast<std::size_t>(shares), chunk(per, 0));
  for (std::size_t i = 0; i < input.size(); ++i) out[i / per][i % per] = input[i];
  return out;
}

std::vector<word> assemble_chunks(const std::vector<chunk>& chunks, std::size_t total) {
  std::vector<word> out(total, 0);
  std::size_t pos = 0;
  for (const chunk& c : chunks)
    for (word w : c) {
      if (pos >= total) return out;
      out[pos++] = w;
    }
  return out;
}

phase1_result run_phase1(sim::network& net, const graph::digraph& g,
                         const sim::fault_set& faults, graph::node_id source,
                         const std::vector<word>& input,
                         const std::vector<graph::spanning_tree>& trees,
                         nab_adversary* adv, propagation_mode mode) {
  NAB_ASSERT(!trees.empty(), "phase 1 needs at least one arborescence");
  NAB_ASSERT(mode != propagation_mode::pipelined,
             "pipelined is a session-level schedule (core::run_pipelined), not a "
             "phase-1 mode");
  const int universe = g.universe();
  const auto gamma = static_cast<int>(trees.size());
  const std::vector<chunk> shares = split_into_chunks(input, gamma);
  const std::uint64_t chunk_bits = 16 * shares[0].size();

  phase1_result result;
  result.received.assign(static_cast<std::size_t>(universe), {});
  result.truth.assign(static_cast<std::size_t>(universe), node_claims{});
  result.trees = trees;
  const double t0 = net.elapsed();

  // holding[t][v] = chunk node v currently holds for tree t.
  std::vector<std::vector<chunk>> holding(
      trees.size(), std::vector<chunk>(static_cast<std::size_t>(universe)));

  // Order tree edges by depth so parents transmit before children; compute
  // the per-edge depth for the store-and-forward schedule.
  struct scheduled_edge {
    int tree;
    graph::node_id from;
    graph::node_id to;
    int level;  // 1 = edge out of the source
  };
  std::vector<scheduled_edge> schedule;
  int max_depth = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const auto parents = trees[t].parents(universe);
    // Depth of each node in this tree.
    std::vector<int> depth(static_cast<std::size_t>(universe), -1);
    depth[static_cast<std::size_t>(source)] = 0;
    // Repeatedly settle nodes whose parent's depth is known (trees are
    // shallow; quadratic settling keeps the code simple).
    bool progress = true;
    while (progress) {
      progress = false;
      for (const graph::edge& e : trees[t].edges) {
        if (depth[static_cast<std::size_t>(e.to)] >= 0) continue;
        const int dp = depth[static_cast<std::size_t>(e.from)];
        if (dp >= 0) {
          depth[static_cast<std::size_t>(e.to)] = dp + 1;
          progress = true;
        }
      }
    }
    for (const graph::edge& e : trees[t].edges) {
      const int lvl = depth[static_cast<std::size_t>(e.to)];
      NAB_ASSERT(lvl > 0, "tree edge disconnected from the source");
      schedule.push_back({static_cast<int>(t), e.from, e.to, lvl});
      max_depth = std::max(max_depth, lvl);
    }
    holding[t][static_cast<std::size_t>(source)] = shares[t];
  }
  result.depth = max_depth;

  // Transmit level by level. In cut_through mode everything lands in one
  // network step (zero propagation delay: every tree edge is busy for the
  // same L/gamma interval); in store_and_forward each level is its own step.
  for (int level = 1; level <= max_depth; ++level) {
    for (const scheduled_edge& se : schedule) {
      if (se.level != level) continue;
      const chunk& have = holding[static_cast<std::size_t>(se.tree)]
                                 [static_cast<std::size_t>(se.from)];
      // Honest forwards only *inspect* the held chunk — transmit a view and
      // copy just into the destinations; only a corrupt rewrite materializes
      // a fresh chunk.
      const chunk* send = &have;
      chunk forged;
      if (faults.is_corrupt(se.from) && adv != nullptr) {
        // Adversary hooks run with pooling suspended: strategies may retain
        // arbitrary cross-instance state (the model is full-information),
        // which must not land in the per-instance arena.
        sim::scoped_run_arena suspend_pooling(nullptr);
        forged = se.from == source
                     ? adv->phase1_source_chunk(se.tree, se.to, have)
                     : adv->phase1_forward_chunk(se.tree, se.from, se.to, have);
        forged.resize(have.size(), 0);  // the wire carries exactly L/gamma bits
        send = &forged;
      }
      // Under a lossy link the chunk rides the ARQ loop; when even the retry
      // budget can't get a copy through, the receiver holds the zero chunk
      // (missing-message default) and records no receipt — erasure leaves no
      // claim for dispute control to compare, which is exactly how it stays
      // distinguishable from tamper.
      const bool delivered = net.lossy_transmit(se.from, se.to, chunk_bits);

      auto& sender_truth = result.truth[static_cast<std::size_t>(se.from)];
      sender_truth.p1_sent[{se.tree, se.from, se.to}] = *send;
      if (!delivered) {
        // Zero-fill (not empty): assembly is positional, and descendants
        // forward this default onward as a correctly-sized chunk.
        holding[static_cast<std::size_t>(se.tree)][static_cast<std::size_t>(se.to)]
            .assign(shares[static_cast<std::size_t>(se.tree)].size(), 0);
        continue;
      }
      auto& receiver_truth = result.truth[static_cast<std::size_t>(se.to)];
      receiver_truth.p1_received[{se.tree, se.from, se.to}] = *send;
      chunk& dest =
          holding[static_cast<std::size_t>(se.tree)][static_cast<std::size_t>(se.to)];
      if (send == &forged)
        dest = std::move(forged);
      else
        dest = have;
    }
    if (mode == propagation_mode::store_and_forward) net.end_step();
  }
  if (mode == propagation_mode::cut_through) net.end_step();

  // Assemble per-node values in place (no per-tree chunk copies).
  for (graph::node_id v : g.active_nodes()) {
    std::vector<word> out(input.size(), 0);
    std::size_t pos = 0;
    for (std::size_t t = 0; t < trees.size() && pos < out.size(); ++t) {
      const chunk& c = v == source ? shares[t] : holding[t][static_cast<std::size_t>(v)];
      for (word w : c) {
        if (pos >= out.size()) break;
        out[pos++] = w;
      }
    }
    result.received[static_cast<std::size_t>(v)] = std::move(out);
  }
  result.time = net.elapsed() - t0;
  return result;
}

}  // namespace nab::core
