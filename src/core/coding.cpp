#include "core/coding.hpp"

#include "util/assert.hpp"

namespace nab::core {

sim::payload coded_symbols::pack() const {
  sim::payload out((words.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < words.size(); ++i)
    out[i / 4] |= static_cast<std::uint64_t>(words[i]) << (16 * (i % 4));
  return out;
}

coded_symbols coded_symbols::unpack(int count, int slices,
                                    const sim::payload& packed) {
  coded_symbols out;
  out.count = count;
  out.slices = slices;
  out.words.assign(static_cast<std::size_t>(count) * slices, 0);
  for (std::size_t i = 0; i < out.words.size(); ++i) {
    const std::size_t w = i / 4;
    out.words[i] = w < packed.size() ? static_cast<word>(packed[w] >> (16 * (i % 4))) : 0;
  }
  return out;
}

coding_scheme coding_scheme::generate(const graph::digraph& g, int rho,
                                      std::uint64_t seed) {
  NAB_ASSERT(rho > 0, "coding_scheme requires rho > 0");
  coding_scheme out;
  out.rho_ = rho;
  out.universe_ = g.universe();
  out.matrices_.resize(static_cast<std::size_t>(g.universe()) * g.universe());
  rng rand(seed);
  for (const graph::edge& e : g.edges()) {
    out.matrices_[out.index(e.from, e.to)] = gf::matrix<gf::gf2_16>::random(
        static_cast<std::size_t>(rho), static_cast<std::size_t>(e.cap), rand);
  }
  return out;
}

const gf::matrix<gf::gf2_16>& coding_scheme::matrix_for(graph::node_id u,
                                                        graph::node_id v) const {
  const auto& m = matrices_[index(u, v)];
  NAB_ASSERT(!m.empty(), "no coding matrix for this edge");
  return m;
}

bool coding_scheme::has_matrix(graph::node_id u, graph::node_id v) const {
  return u >= 0 && v >= 0 && u < universe_ && v < universe_ &&
         !matrices_[index(u, v)].empty();
}

coded_symbols coding_scheme::encode(const value_vector& x, graph::node_id u,
                                    graph::node_id v) const {
  const auto& ce = matrix_for(u, v);
  NAB_ASSERT(static_cast<int>(ce.rows()) == x.rho(),
             "value shape does not match coding matrix");
  coded_symbols out;
  out.count = static_cast<int>(ce.cols());
  out.slices = x.slices();
  out.words.assign(static_cast<std::size_t>(out.count) * out.slices, 0);
  // Coded symbol k is sum_s C_e(s, k) * symbol s; value storage is
  // symbol-major, so each term is one batched axpy over the slice run.
  const std::size_t slices = static_cast<std::size_t>(x.slices());
  const word* xw = x.words().data();
  for (int k = 0; k < out.count; ++k) {
    word* dst = out.words.data() + static_cast<std::size_t>(k) * slices;
    for (int s = 0; s < x.rho(); ++s)
      gf::gf2_16::axpy(dst, xw + static_cast<std::size_t>(s) * slices,
                       ce.at(static_cast<std::size_t>(s), static_cast<std::size_t>(k)),
                       slices);
  }
  return out;
}

bool coding_scheme::check(const value_vector& x, graph::node_id u, graph::node_id v,
                          const coded_symbols& received) const {
  return encode(x, u, v) == received;
}

}  // namespace nab::core
