#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace nab::core {

/// The paper's key rate quantities for a network G with fault budget f.
struct capacity_bounds {
  /// gamma* = min over reachable instance graphs G_k in Gamma of
  /// min_j MINCUT(G_k, source, j) (Section 5.1 / Appendix E).
  graph::capacity_t gamma_star = 0;
  /// U_1 = min over H in Omega_1 of the pairwise undirected min cut; the
  /// paper's rho* equals U_1 / 2 (kept as the raw U_1 here so callers can
  /// use the exact half even when U_1 is odd).
  graph::capacity_t u1 = 0;
  /// rho* = U_1 / 2 as a real number.
  double rho_star = 0.0;
  /// Theorem 2: C_BB(G) <= min(gamma*, 2 rho*).
  double capacity_upper_bound = 0.0;
  /// Eq. (6)/(28): T_NAB >= gamma* rho* / (gamma* + rho*).
  double nab_throughput_bound = 0.0;
  /// Theorem 3 guarantee actually in force: 1/2 when gamma* <= rho*, else 1/3.
  double guaranteed_fraction = 0.0;
  /// True when gamma* came from exhaustive Gamma enumeration (exact); false
  /// when the incident-fault-set estimate was used (see DESIGN.md §8).
  bool gamma_exact = false;
};

/// How to search Gamma for gamma*.
enum class gamma_mode {
  /// Enumerate every explainable edge set W (exact; exponential in the
  /// number of adjacent node pairs — only viable for small graphs).
  exhaustive,
  /// Enumerate candidate fault sets F (|F| <= f) and remove all edges
  /// incident to F, plus the forced node removals. An estimate that is exact
  /// on many graphs and cheap everywhere.
  incident_sets,
  /// exhaustive when the pair count is small enough, else incident_sets.
  auto_select,
};

/// gamma_k of one concrete instance graph (min broadcast min-cut).
graph::capacity_t gamma_k(const graph::digraph& gk, graph::node_id source);

/// Exact gamma* by enumerating all explainable edge-pair subsets
/// (Appendix E). Throws nab::error if the graph has more than ~20 adjacent
/// pairs (2^pairs blowup).
graph::capacity_t gamma_star_exhaustive(const graph::digraph& g, graph::node_id source,
                                        int f);

/// Estimate of gamma* from maximal explainable sets only (all edges
/// incident to each candidate fault set F).
graph::capacity_t gamma_star_incident(const graph::digraph& g, graph::node_id source,
                                      int f);

/// U_1 over Omega_1 (exact: enumerates the C(n, f) subsets without disputes).
graph::capacity_t u1_exact(const graph::digraph& g, int f);

/// All of the above packaged, with Theorem 2/3 quantities derived.
capacity_bounds compute_bounds(const graph::digraph& g, graph::node_id source, int f,
                               gamma_mode mode = gamma_mode::auto_select);

}  // namespace nab::core
