#include "core/dispute.hpp"

#include <algorithm>
#include <set>

#include "bb/claim_bcast.hpp"
#include "core/phase1.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::core {
namespace {

/// Can `pairs` be covered by at most `budget` nodes drawn from `candidates`,
/// never using `banned`? Branch on an uncovered pair's two endpoints.
bool cover_exists(const std::vector<std::pair<graph::node_id, graph::node_id>>& pairs,
                  std::set<graph::node_id>& chosen, int budget, graph::node_id banned) {
  // Find the first uncovered pair.
  const auto uncovered = std::find_if(pairs.begin(), pairs.end(), [&](const auto& p) {
    return chosen.count(p.first) == 0 && chosen.count(p.second) == 0;
  });
  if (uncovered == pairs.end()) return true;
  if (budget == 0) return false;
  for (graph::node_id pick : {uncovered->first, uncovered->second}) {
    if (pick == banned) continue;
    chosen.insert(pick);
    if (cover_exists(pairs, chosen, budget - 1, banned)) {
      chosen.erase(pick);
      return true;
    }
    chosen.erase(pick);
  }
  return false;
}

chunk claimed_chunk(const node_claims& c, int tree, graph::node_id from,
                    graph::node_id to, std::size_t size) {
  const auto it = c.p1_received.find({tree, from, to});
  chunk out = it == c.p1_received.end() ? chunk{} : it->second;
  out.resize(size, 0);
  return out;
}

}  // namespace

std::vector<graph::node_id> explaining_intersection(
    const std::set<std::pair<graph::node_id, graph::node_id>>& pair_set, int f) {
  const std::vector<std::pair<graph::node_id, graph::node_id>> pairs(pair_set.begin(),
                                                                     pair_set.end());
  std::set<graph::node_id> chosen;
  if (!cover_exists(pairs, chosen, f, /*banned=*/-1))
    throw error("explaining_intersection: disputes cannot be covered by f nodes");

  std::set<graph::node_id> involved;
  for (const auto& [a, b] : pairs) {
    involved.insert(a);
    involved.insert(b);
  }
  std::vector<graph::node_id> out;
  for (graph::node_id x : involved) {
    std::set<graph::node_id> probe;
    if (!cover_exists(pairs, probe, f, /*banned=*/x)) out.push_back(x);
  }
  return out;
}

dispute_outcome run_dispute_control(sim::network& net, bb::channel_plan& channels,
                                    const graph::digraph& gk,
                                    const sim::fault_set& faults, int f_bb, int f,
                                    const instance_context& ctx,
                                    dispute_record& record, nab_adversary* adv,
                                    bb::claim_backend backend,
                                    std::uint64_t digest_seed) {
  NAB_ASSERT(ctx.coding != nullptr, "instance context needs a coding scheme");
  const std::vector<graph::node_id> active = gk.active_nodes();
  const int universe = gk.universe();
  const double t0 = net.elapsed();

  dispute_outcome outcome;

  // ---- DC1: claim broadcast of every node's claims + the source's input,
  // ---- through the pluggable backend (bb/claim_bcast.hpp). ----
  std::vector<bb::claim_instance> instances;
  std::vector<graph::node_id> claimant;  // instance index -> node
  for (graph::node_id v : active) {
    node_claims claims = ctx.truth[static_cast<std::size_t>(v)];
    if (faults.is_corrupt(v) && adv != nullptr) {
      sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
      claims = adv->phase3_claims(v, claims);
    }
    bb::claim_instance inst;
    inst.source = v;
    inst.input = claims.pack();
    inst.value_bits = claims.bits();
    instances.push_back(std::move(inst));
    claimant.push_back(v);
  }
  {
    std::vector<word> source_input = ctx.input;
    if (faults.is_corrupt(ctx.source) && adv != nullptr) {
      sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
      source_input = adv->phase3_source_input(source_input);
    }
    bb::claim_instance inst;
    inst.source = ctx.source;
    value_vector packer = value_vector::reshape(
        source_input.empty() ? std::vector<word>{0} : source_input, 1);
    inst.input = packer.pack();
    inst.value_bits = 16 * std::max<std::uint64_t>(source_input.size(), 1);
    instances.push_back(std::move(inst));
  }

  const std::uint64_t wire_before = net.total_bits();
  bb::claim_outcome bb_out;
  {
    obs::scoped_span span("dc1_claims", net.elapsed());
    bb_out = bb::broadcast_claims(
        backend, channels, net, faults, instances, f_bb,
        adv != nullptr ? adv->eig() : nullptr,
        adv != nullptr ? adv->claim_bcast() : nullptr,
        adv != nullptr ? adv->relay() : nullptr, digest_seed);
    span.end_tau(net.elapsed());
  }
  outcome.claim_bits = net.total_bits() - wire_before;
  outcome.claim_fallbacks = bb_out.fallback_retrievals;

  // Read agreed values off the first honest node (all honest nodes agree;
  // session-level tests assert that independently).
  graph::node_id reader = -1;
  for (graph::node_id v : active)
    if (faults.is_honest(v)) {
      reader = v;
      break;
    }
  NAB_ASSERT(reader >= 0, "no honest node left in G_k");

  // The agreed instance outcome (last instance).
  {
    const bb::value& agreed = bb_out.agreed.back()[static_cast<std::size_t>(reader)];
    const std::size_t want = std::max<std::size_t>(ctx.input.size(), 1);
    outcome.agreed_value =
        value_vector::unpack(1, static_cast<int>(want), agreed).words();
    outcome.agreed_value.resize(ctx.input.size(), 0);
  }

  // Agreed claims; parse failures convict the claimant immediately (a
  // malformed claim violates the prescribed format).
  std::vector<node_claims> agreed(static_cast<std::size_t>(universe));
  std::set<graph::node_id> convicted_now;
  for (std::size_t q = 0; q < claimant.size(); ++q) {
    const bb::value& blob = bb_out.agreed[q][static_cast<std::size_t>(reader)];
    if (!node_claims::unpack(blob, agreed[static_cast<std::size_t>(claimant[q])]))
      convicted_now.insert(claimant[q]);
  }

  // ---- DC2: cross-check sender vs receiver claims. ----
  auto note_dispute = [&](graph::node_id a, graph::node_id b) {
    if (a == b) return;
    if (!record.in_dispute(a, b)) {
      record.add_dispute(a, b);
      outcome.new_disputes.push_back({std::min(a, b), std::max(a, b)});
    }
  };
  const std::size_t chunk_size =
      split_into_chunks(ctx.input, static_cast<int>(ctx.trees.size()))[0].size();
  {
    obs::scoped_span span("dc2_crosscheck", net.elapsed());
    for (std::size_t t = 0; t < ctx.trees.size(); ++t) {
      for (const graph::edge& e : ctx.trees[t].edges) {
        const auto& sent = agreed[static_cast<std::size_t>(e.from)].p1_sent;
        const auto& rcvd = agreed[static_cast<std::size_t>(e.to)].p1_received;
        const auto key = std::make_tuple(static_cast<int>(t), e.from, e.to);
        const auto si = sent.find(key);
        const auto ri = rcvd.find(key);
        // Erasure discrimination: on lossy links a missing receipt claim is
        // what honest ARQ exhaustion looks like — not evidence. Only present
        // -but-mismatching content (or a receipt the sender disowns) stays a
        // tamper dispute.
        if (ctx.lossy_links && ri == rcvd.end()) continue;
        chunk s = si == sent.end() ? chunk{} : si->second;
        chunk r = ri == rcvd.end() ? chunk{} : ri->second;
        s.resize(chunk_size, 0);
        r.resize(chunk_size, 0);
        if (s != r) note_dispute(e.from, e.to);
      }
    }
    for (const graph::edge& e : gk.edges()) {
      const auto& sent = agreed[static_cast<std::size_t>(e.from)].p2_sent;
      const auto& rcvd = agreed[static_cast<std::size_t>(e.to)].p2_received;
      const auto key = std::make_pair(e.from, e.to);
      const auto si = sent.find(key);
      const auto ri = rcvd.find(key);
      // Same erasure rule as the tree edges: a receiver with no receipt on a
      // lossy link is consistent with honest budget exhaustion. A receiver
      // *with* a receipt the sender disowns, or mismatching content, is not.
      if (ctx.lossy_links && ri == rcvd.end()) continue;
      const bool both_present = si != sent.end() && ri != rcvd.end();
      if (!both_present || !(si->second == ri->second)) note_dispute(e.from, e.to);
    }
    span.end_tau(net.elapsed());
  }

  // ---- DC3: replay prescribed behavior from claimed receipts. ----
  obs::scoped_span dc3_span("dc3_replay", net.elapsed());
  const auto gamma = static_cast<int>(ctx.trees.size());
  const std::vector<chunk> agreed_chunks =
      split_into_chunks(outcome.agreed_value, gamma);
  for (graph::node_id v : active) {
    if (convicted_now.count(v)) continue;
    const node_claims& c = agreed[static_cast<std::size_t>(v)];
    bool faulty = false;

    // Phase-1 prescription: forward on each tree exactly what was received
    // from the tree parent (the agreed input chunk, for the source).
    for (std::size_t t = 0; t < ctx.trees.size() && !faulty; ++t) {
      const auto parents = ctx.trees[t].parents(universe);
      const graph::node_id parent = parents[static_cast<std::size_t>(v)];
      chunk expected;
      if (v == ctx.source) {
        expected = agreed_chunks[t];
      } else if (parent >= 0) {
        expected = claimed_chunk(c, static_cast<int>(t), parent, v, chunk_size);
      } else {
        continue;  // v not reached by this tree (cannot happen for spanning trees)
      }
      for (const graph::edge& e : ctx.trees[t].edges) {
        if (e.from != v) continue;
        const auto key = std::make_tuple(static_cast<int>(t), v, e.to);
        const auto it = c.p1_sent.find(key);
        chunk s = it == c.p1_sent.end() ? chunk{} : it->second;
        s.resize(chunk_size, 0);
        if (s != expected) {
          faulty = true;
          break;
        }
      }
    }

    // Phase-2 prescription: X_v assembled from claimed receipts, coded
    // symbols must equal X_v * C_e on each outgoing edge, and the announced
    // flag must match the recomputed checks.
    if (!faulty) {
      std::vector<chunk> got(ctx.trees.size());
      for (std::size_t t = 0; t < ctx.trees.size(); ++t) {
        const auto parents = ctx.trees[t].parents(universe);
        const graph::node_id parent = parents[static_cast<std::size_t>(v)];
        got[t] = v == ctx.source
                     ? agreed_chunks[t]
                     : claimed_chunk(c, static_cast<int>(t), parent, v, chunk_size);
      }
      const value_vector xv =
          value_vector::reshape(assemble_chunks(got, ctx.input.size()), ctx.rho);
      for (const graph::edge& e : gk.edges()) {
        if (e.from != v) continue;
        const auto it = c.p2_sent.find({v, e.to});
        if (it == c.p2_sent.end() || !(it->second == ctx.coding->encode(xv, v, e.to))) {
          faulty = true;
          break;
        }
      }
      if (!faulty) {
        bool recomputed_flag = false;
        for (const graph::edge& e : gk.edges()) {
          if (e.to != v) continue;
          const auto it = c.p2_received.find({e.from, v});
          if (it == c.p2_received.end()) {
            // Lossy links: the live equality check only verifies receipts
            // that arrived, so an erased edge contributes nothing to the
            // honest flag — the replay must skip it the same way.
            if (ctx.lossy_links) continue;
            recomputed_flag = true;
            break;
          }
          if (!ctx.coding->check(xv, e.from, v, it->second)) {
            recomputed_flag = true;
            break;
          }
        }
        if (recomputed_flag != ctx.agreed_flags[static_cast<std::size_t>(v)])
          faulty = true;
      }
    }

    if (faulty) convicted_now.insert(v);
  }

  // Convicted nodes are deemed in dispute with all their neighbors.
  for (graph::node_id v : convicted_now) {
    for (graph::node_id u : gk.out_neighbors(v)) note_dispute(v, u);
    for (graph::node_id u : gk.in_neighbors(v)) note_dispute(v, u);
  }
  dc3_span.close(net.elapsed());

  // ---- DC4: intersection of all explaining sets. ----
  {
    obs::scoped_span span("dc4_intersection", net.elapsed());
    for (graph::node_id v : explaining_intersection(record.pairs(), f))
      convicted_now.insert(v);

    for (graph::node_id v : convicted_now) {
      if (!record.is_convicted(v)) {
        record.convict(v);
        outcome.newly_convicted.push_back(v);
      }
    }
    span.end_tau(net.elapsed());
  }

  outcome.time = net.elapsed() - t0;
  return outcome;
}

}  // namespace nab::core
