#include "obs/obs.hpp"

#include "util/assert.hpp"

namespace nab::obs {

const char* counter_name(counter c) {
  switch (c) {
    case counter::gf_axpy_words: return "gf_axpy_words";
    case counter::gf_scale_words: return "gf_scale_words";
    case counter::gf_mul_ops: return "gf_mul_ops";
    case counter::gf_rows_eliminated: return "gf_rows_eliminated";
    case counter::cert_prefix_pushes: return "cert_prefix_pushes";
    case counter::cert_prefix_pops: return "cert_prefix_pops";
    case counter::cert_ghost_repushes: return "cert_ghost_repushes";
    case counter::cert_subgraphs: return "cert_subgraphs";
    case counter::cert_loo_downdates: return "cert_loo_downdates";
    case counter::cache_lookups: return "cache_lookups";
    case counter::cache_hits: return "cache_hits";
    case counter::cache_misses: return "cache_misses";
    case counter::plan_safety_checks: return "plan_safety_checks";
    case counter::plan_flow_augmentations: return "plan_flow_augmentations";
    case counter::route_pairs: return "route_pairs";
    case counter::route_flow_augmentations: return "route_flow_augmentations";
    case counter::claim_echoes: return "claim_echoes";
    case counter::claim_readys: return "claim_readys";
    case counter::claim_fallbacks: return "claim_fallbacks";
    case counter::link_drops: return "link_drops";
    case counter::link_retransmits: return "retransmits";
    case counter::link_burst_spans: return "burst_spans";
    case counter::link_retry_exhaustions: return "retry_budget_exhaustions";
    case counter::arena_allocs: return "arena_allocs";
    case counter::arena_pool_hits: return "arena_pool_hits";
    case counter::count_: break;
  }
  return "unknown_counter";
}

const char* gauge_name(gauge g) {
  switch (g) {
    case gauge::quorum_slack: return "margin_quorum_slack";
    case gauge::hold_surplus: return "margin_hold_surplus";
    case gauge::dispute_headroom: return "margin_dispute_headroom";
    case gauge::retry_headroom: return "margin_retry_headroom";
    case gauge::count_: break;
  }
  return "unknown_gauge";
}

std::uint64_t behavior_signature(const collector& c) {
  std::uint64_t h = signature_seed;
  for (int i = 0; i < counter_count; ++i) {
    const auto ct = static_cast<counter>(i);
    if (ct == counter::cache_hits || ct == counter::cache_misses ||
        ct == counter::arena_allocs || ct == counter::arena_pool_hits)
      continue;  // machine set — scheduling-dependent
    h = signature_mix(h, c.value(ct));
  }
  for (int i = 0; i < gauge_count; ++i)
    h = signature_mix(h, static_cast<std::uint64_t>(
                             c.gauge_value(static_cast<gauge>(i))));
  return h;
}

collector::collector() : epoch_(std::chrono::steady_clock::now()) {
  gauges_.fill(gauge_unset);
}

double collector::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

int collector::open_span(std::string name, double tau_begin) {
  span_record rec;
  rec.id = static_cast<int>(spans_.size());
  rec.parent = current_span();
  rec.depth = static_cast<int>(open_stack_.size());
  rec.name = std::move(name);
  rec.tau_begin = tau_begin;
  rec.tau_end = tau_begin;
  rec.wall_begin = now();
  rec.wall_end = rec.wall_begin;
  spans_.push_back(std::move(rec));
  open_stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void collector::close_span(int id, double tau_end) {
  NAB_ASSERT(!open_stack_.empty() && open_stack_.back() == id,
             "spans must close LIFO (innermost first)");
  open_stack_.pop_back();
  span_record& rec = spans_[static_cast<std::size_t>(id)];
  rec.tau_end = tau_end;
  rec.wall_end = now();
}

void collector::reset() {
  NAB_ASSERT(open_stack_.empty(), "collector reset with spans still open");
  counters_.fill(0);
  gauges_.fill(gauge_unset);
  spans_.clear();
}

namespace {
thread_local collector* ambient = nullptr;
}  // namespace

collector* ambient_collector() { return ambient; }

scoped_collector::scoped_collector(collector* c) : previous_(ambient) {
  ambient = c;
}

scoped_collector::~scoped_collector() { ambient = previous_; }

scoped_span::scoped_span(const char* name, double tau_begin)
    : col_(ambient_collector()), tau_end_(tau_begin) {
  if (col_ != nullptr) id_ = col_->open_span(name, tau_begin);
}

scoped_span::~scoped_span() {
  if (col_ != nullptr) col_->close_span(id_, tau_end_);
}

}  // namespace nab::obs
