#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace nab::obs {

/// Deterministic protocol counters. Every counter here is a pure function of
/// the workload — bit-identical across `--jobs` counts and scheduling — with
/// three documented exceptions that describe the *machine*, not the run:
/// cache_hits / cache_misses (the process-wide omega_cache is shared across
/// executor shards, so which run pays a miss depends on scheduling; the
/// lookup count is the deterministic companion) and the arena pair (the
/// per-shard arena's page state depends on what ran on the shard before).
/// The runtime exports the deterministic set inside run_record (covered by
/// the jobs-1-vs-N byte-identity contract) and the machine set alongside the
/// wall-clock keys, stripped the same way.
enum class counter : int {
  // --- GF(2^16) kernel work (src/gf) ---
  gf_axpy_words,        ///< words processed by gf2_16::axpy
  gf_scale_words,       ///< words processed by gf2_16::scale
  gf_mul_ops,           ///< scalar mul/Horner ops counted in bulk (digests)
  gf_rows_eliminated,   ///< pivot rows established by row_reduce / certifier
  // --- batched certifier prefix tree (core/certify) ---
  cert_prefix_pushes,   ///< node extensions pushed onto the shared basis
  cert_prefix_pops,     ///< node extensions rewound
  cert_ghost_repushes,  ///< ghost rows re-reduced over a fresh column window
  cert_subgraphs,       ///< Omega_k leaves whose rank was checked
  cert_loo_downdates,   ///< f=1 leave-one-out rank downdates (one per member)
  // --- omega_cache (core/omega_cache) ---
  cache_lookups,        ///< deterministic: queries issued by this run
  cache_hits,           ///< machine: depends on cross-shard scheduling
  cache_misses,         ///< machine: ditto
  // --- planning layer: arborescence packing + route tables (graph, bb) ---
  plan_safety_checks,       ///< per-sink certificate validations in the packer
  plan_flow_augmentations,  ///< unit augmenting paths pushed by the packer
  route_pairs,              ///< ordered pairs routed into the route table
  route_flow_augmentations, ///< augmenting paths pushed by the route builder
  // --- Phase-3 claim backends (bb/claim_bcast) ---
  claim_echoes,         ///< echo digests sent on the wire (collapsed)
  claim_readys,         ///< ready digests sent on the wire (collapsed)
  claim_fallbacks,      ///< retrieval fallbacks (mirrors dc1_fallbacks)
  // --- link-fault layer (sim/link_faults + network ARQ) ---
  link_drops,             ///< transmissions erased by a Gilbert-Elliott chain
  link_retransmits,       ///< ARQ retransmissions honest senders paid
  link_burst_spans,       ///< good -> bad chain transitions (burst onsets)
  link_retry_exhaustions, ///< messages that ran out of retry budget
  // --- run arena (sim/run_arena; machine set) ---
  arena_allocs,         ///< arena allocations served during the run
  arena_pool_hits,      ///< of which from a free list
  count_  // sentinel: number of counters
};

inline constexpr int counter_count = static_cast<int>(counter::count_);

/// Human-readable name of a counter (JSON keys, tables).
const char* counter_name(counter c);

/// Invariant-margin gauges: how much headroom a run kept before a paper
/// invariant or a quorum rule would have failed. Minimum over the run —
/// the scoring signal a coverage-guided adversary search ranks runs by
/// (smaller = closer to the edge). Deterministic (workload-determined).
enum class gauge : int {
  /// min over accepted claim digests of (readys observed - 2f-1): how far
  /// the collapsed backend's accept quorum stayed above its threshold.
  quorum_slack,
  /// min over accepted claim digests of (honest echoer-holders - (f+1)):
  /// the hold-to-echo rule's surplus over the retrieval guarantee.
  hold_surplus,
  /// f(f+1) minus dispute phases actually run: the Phase-3 dispute bound's
  /// remaining budget (set by the runtime, not instrumented code).
  dispute_headroom,
  /// min over loss-affected messages of (retry budget - retries needed):
  /// how close the ARQ layer came to exhausting a retry budget and
  /// degrading an honest message to the missing-message default.
  retry_headroom,
  count_
};

inline constexpr int gauge_count = static_cast<int>(gauge::count_);

const char* gauge_name(gauge g);

/// Value a gauge reports when the run never exercised it.
inline constexpr std::int64_t gauge_unset = -1;

/// One recorded span: a named, nested interval of protocol work. `tau_*`
/// carry simulated time (-1 when the span wraps pure computation with no
/// network attached); `wall_*` are seconds since the collector's epoch.
/// Span *structure* (names, nesting, order) is deterministic for a fixed
/// workload except for omega_cache fill spans, which only appear on the
/// run that pays the miss — wall values are machine data regardless, so
/// spans live with the timing set, never inside the determinism contract.
struct span_record {
  int id = 0;
  int parent = -1;  ///< id of the enclosing span, -1 at top level
  int depth = 0;    ///< 0 = top level
  std::string name;
  double tau_begin = -1.0;
  double tau_end = -1.0;
  double wall_begin = 0.0;
  double wall_end = 0.0;
};

/// Per-run observability sink: fixed-size counter/gauge arrays plus the span
/// list. Thread-confined like sim::trace and sim::run_arena — one collector
/// per executor shard run, never shared, so counting needs no atomics and
/// the sharded fleet stays TSan-clean. Installation is ambient
/// (scoped_collector); with no collector installed every instrumentation
/// site reduces to one thread-local load and a branch.
class collector {
 public:
  collector();

  // --- counters ---
  void add(counter c, std::uint64_t n) {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t value(counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  // --- gauges (record-minimum semantics) ---
  void gauge_min(gauge g, std::int64_t v) {
    auto& slot = gauges_[static_cast<std::size_t>(g)];
    if (slot == gauge_unset || v < slot) slot = v;
  }
  std::int64_t gauge_value(gauge g) const {
    return gauges_[static_cast<std::size_t>(g)];
  }

  // --- spans ---
  /// Opens a span under the currently open one. Returns its id.
  int open_span(std::string name, double tau_begin);
  /// Closes span `id`. Spans close strictly LIFO (scoped_span guarantees
  /// it); closing out of order is a caller bug and aborts.
  void close_span(int id, double tau_end);
  const std::vector<span_record>& spans() const { return spans_; }
  /// Id of the innermost open span (-1 when none) — parent for manual spans.
  int current_span() const {
    return open_stack_.empty() ? -1 : open_stack_.back();
  }

  /// Seconds since the collector was constructed (its wall epoch).
  double now() const;

  /// Zeroes counters, gauges, and spans (the epoch is kept).
  void reset();

 private:
  std::array<std::uint64_t, counter_count> counters_{};
  std::array<std::int64_t, gauge_count> gauges_;
  std::vector<span_record> spans_;
  std::vector<int> open_stack_;
  std::chrono::steady_clock::time_point epoch_;
};

/// The calling thread's ambient collector (nullptr when none is installed).
/// Mirrors sim::ambient_trace / sim::ambient_arena: instrumentation reaches
/// the sessions a fleet shard runs without threading a handle through every
/// call, and shards stay fully independent.
collector* ambient_collector();

/// Installs `c` as the calling thread's ambient collector for the lifetime
/// of the scope; restores the previous one on destruction. Scopes nest, and
/// nullptr suspends collection (e.g. around warm-up work a measurement
/// should not see).
class scoped_collector {
 public:
  explicit scoped_collector(collector* c);
  ~scoped_collector();
  scoped_collector(const scoped_collector&) = delete;
  scoped_collector& operator=(const scoped_collector&) = delete;

 private:
  collector* previous_;
};

/// Adds to a counter on the ambient collector; no-op (one thread-local load
/// and a branch) when none is installed. This is the only form
/// instrumentation sites use, which is what keeps the subsystem near-zero-
/// cost when collection is off — the PR-3 allocation budgets and the sweep
/// wall are pinned against it.
inline void count(counter c, std::uint64_t n = 1) {
  if (collector* col = ambient_collector()) col->add(c, n);
}

/// Records a minimum on an ambient gauge; no-op without a collector.
inline void gauge_min(gauge g, std::int64_t v) {
  if (collector* col = ambient_collector()) col->gauge_min(g, v);
}

/// Order-sensitive 64-bit stream signature: fold values into an accumulator
/// with signature_mix, starting from signature_seed. Deterministic (pure
/// arithmetic, splitmix64-style finalizer per step), so two runs fold to the
/// same signature iff they fed the same value sequence — which is what lets
/// a coverage-guided search treat "the deterministic counters and margin
/// gauges of this run" as a behavioral coordinate: novel signature = the
/// adversary drove the protocol through a combination of counter/gauge
/// outcomes no earlier probe produced. Collisions are the usual 2^-64 bet.
inline constexpr std::uint64_t signature_seed = 0x0b5e55ed5eedULL;

inline constexpr std::uint64_t signature_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Folds a collector's deterministic counters and all gauges into one
/// signature (fixed enum order). Machine-set counters (cache hit/miss, the
/// arena pair) are skipped so the signature obeys the same jobs-1-vs-N
/// contract as the run_record counters it summarizes.
std::uint64_t behavior_signature(const collector& c);

/// RAII span over the ambient collector. Constructed with the sim-time at
/// entry when the caller has a network clock (tau carries into timelines);
/// `end_tau` sets the exit sim-time before destruction (otherwise the span
/// keeps tau_end = tau_begin for pure-computation spans, or -1 when no tau
/// was ever supplied). Does nothing when no collector is installed.
class scoped_span {
 public:
  explicit scoped_span(const char* name, double tau_begin = -1.0);
  ~scoped_span();
  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

  /// Sets the simulated time the span ends at (call just before scope exit).
  void end_tau(double tau_end) { tau_end_ = tau_end; }

  /// Closes the span now, before scope exit — for code where the next
  /// sibling phase starts mid-scope and introducing a block would obscure
  /// the control flow. The destructor becomes a no-op afterwards.
  void close(double tau_end) {
    if (col_ == nullptr) return;
    col_->close_span(id_, tau_end);
    col_ = nullptr;
  }

 private:
  collector* col_ = nullptr;
  int id_ = -1;
  double tau_end_;
};

}  // namespace nab::obs
