#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "util/assert.hpp"

namespace nab::sim {

/// The set of Byzantine nodes. Fixed across NAB instances (the paper's
/// replicated-server assumption: the compromised replicas do not change
/// between executions).
class fault_set {
 public:
  fault_set() = default;

  /// No faults among n nodes.
  explicit fault_set(int n) : corrupt_(static_cast<std::size_t>(n), false) {}

  fault_set(int n, const std::vector<graph::node_id>& corrupt_nodes) : fault_set(n) {
    for (graph::node_id v : corrupt_nodes) mark_corrupt(v);
  }

  int universe() const { return static_cast<int>(corrupt_.size()); }

  void mark_corrupt(graph::node_id v) {
    NAB_ASSERT(v >= 0 && v < universe(), "fault_set node out of range");
    corrupt_[static_cast<std::size_t>(v)] = true;
  }

  bool is_corrupt(graph::node_id v) const {
    NAB_ASSERT(v >= 0 && v < universe(), "fault_set node out of range");
    return corrupt_[static_cast<std::size_t>(v)];
  }

  bool is_honest(graph::node_id v) const { return !is_corrupt(v); }

  int count() const {
    int c = 0;
    for (bool b : corrupt_) c += b ? 1 : 0;
    return c;
  }

  std::vector<graph::node_id> corrupt_nodes() const {
    std::vector<graph::node_id> out;
    for (graph::node_id v = 0; v < universe(); ++v)
      if (corrupt_[static_cast<std::size_t>(v)]) out.push_back(v);
    return out;
  }

  std::vector<graph::node_id> honest_nodes() const {
    std::vector<graph::node_id> out;
    for (graph::node_id v = 0; v < universe(); ++v)
      if (!corrupt_[static_cast<std::size_t>(v)]) out.push_back(v);
    return out;
  }

 private:
  std::vector<bool> corrupt_;
};

}  // namespace nab::sim
