#include "sim/link_faults.hpp"

#include <charconv>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::sim {

namespace {

/// splitmix64 (Steele/Lea/Flood). Redefined here rather than pulled from the
/// runtime layer: sim/ sits below runtime/ and must not include upward. The
/// mix is the standard finalizer, so golden values pinned elsewhere
/// (splitmix64(0) = 0xe220a8397b1dcdaf) hold here too.
constexpr std::uint64_t golden_gamma = 0x9e3779b97f4a7c15ULL;

constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One splitmix64 step: advance the stream state, return the mixed output.
std::uint64_t next_u64(std::uint64_t& state) {
  state += golden_gamma;
  return mix64(state);
}

/// Uniform double in [0, 1) from the top 53 bits.
double u01(std::uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

/// Initial stream state for link `index`: the seed xored with a per-link
/// multiple of the golden gamma, then mixed so streams of adjacent links are
/// decorrelated (without the mix, stream i would be stream j shifted by
/// i - j steps).
std::uint64_t link_stream_seed(std::uint64_t seed, std::uint64_t index) {
  return mix64(seed ^ (golden_gamma * (index + 1)));
}

bool parse_probability(std::string_view field, double& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto res = std::from_chars(begin, end, out);
  return res.ec == std::errc() && res.ptr == end && out >= 0.0 && out <= 1.0;
}

}  // namespace

std::vector<std::string> loss_preset_names() {
  return {"zero", "light", "bursty", "heavy"};
}

link_fault_params parse_loss_spec(std::string_view spec) {
  link_fault_params p;
  if (spec == "zero") return p;  // inert: attached but unable to perturb
  if (spec == "light") {
    p.p_loss_good = 0.005;
    p.p_loss_bad = 0.25;
    p.p_good_to_bad = 0.02;
    p.p_bad_to_good = 0.5;
    return p;
  }
  if (spec == "bursty") {
    p.p_loss_good = 0.01;
    p.p_loss_bad = 0.5;
    p.p_good_to_bad = 0.05;
    p.p_bad_to_good = 0.25;
    return p;
  }
  if (spec == "heavy") {
    p.p_loss_good = 0.05;
    p.p_loss_bad = 0.7;
    p.p_good_to_bad = 0.1;
    p.p_bad_to_good = 0.2;
    p.jitter = 0.25;
    return p;
  }
  if (spec.find(',') == std::string_view::npos)
    throw error("unknown loss preset \"" + std::string(spec) +
                "\" (want zero, light, bursty, heavy, or a custom "
                "p_good,p_bad,p_g2b,p_b2g tuple)");
  // Custom 4-tuple: p_good,p_bad,p_g2b,p_b2g — each a probability in [0, 1].
  double fields[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t comma = spec.find(',', pos);
    const bool last = i == 3;
    if (last != (comma == std::string_view::npos) ||
        !parse_probability(spec.substr(pos, last ? std::string_view::npos : comma - pos),
                           fields[i]))
      throw error("malformed loss spec \"" + std::string(spec) +
                  "\" (custom form takes exactly four comma-separated "
                  "probabilities in [0,1]: p_good,p_bad,p_g2b,p_b2g)");
    pos = comma + 1;
  }
  p.p_loss_good = fields[0];
  p.p_loss_bad = fields[1];
  p.p_good_to_bad = fields[2];
  p.p_bad_to_good = fields[3];
  return p;
}

link_fault_model::link_fault_model(link_fault_params params, std::uint64_t seed)
    : params_(params), seed_(seed) {}

link_fault_model::chain& link_fault_model::link_chain(graph::node_id u,
                                                      graph::node_id v,
                                                      int universe) {
  NAB_ASSERT(u >= 0 && v >= 0 && u < universe && v < universe,
             "link_fault_model link out of range");
  const std::size_t n = static_cast<std::size_t>(universe);
  if (chains_.size() < n * n) chains_.resize(n * n);
  const std::size_t index = static_cast<std::size_t>(u) * n + v;
  chain& c = chains_[index];
  if (c.rng == 0) c.rng = link_stream_seed(seed_, index) | 1ULL;
  return c;
}

bool link_fault_model::erase(graph::node_id u, graph::node_id v, int universe) {
  chain& c = link_chain(u, v, universe);
  const double p_loss = c.bad ? params_.p_loss_bad : params_.p_loss_good;
  const bool lost = u01(next_u64(c.rng)) < p_loss;
  if (lost) obs::count(obs::counter::link_drops);
  const double transition = u01(next_u64(c.rng));
  if (c.bad) {
    if (transition < params_.p_bad_to_good) c.bad = false;
  } else if (transition < params_.p_good_to_bad) {
    c.bad = true;
    obs::count(obs::counter::link_burst_spans);
  }
  return lost;
}

double link_fault_model::time_dilation(graph::node_id u, graph::node_id v,
                                       int universe) const {
  if (params_.jitter <= 0.0) return 1.0;
  NAB_ASSERT(u >= 0 && v >= 0 && u < universe && v < universe,
             "link_fault_model link out of range");
  const std::uint64_t index =
      static_cast<std::uint64_t>(u) * static_cast<std::uint64_t>(universe) + v;
  // Independent of the erasure stream: re-mix the link seed under a distinct
  // salt so reading the dilation never perturbs drop sequences.
  const std::uint64_t draw = mix64(link_stream_seed(seed_, index) ^ 0xd11a7ed0ULL);
  return 1.0 + params_.jitter * u01(draw);
}

bool link_fault_model::in_bad_state(graph::node_id u, graph::node_id v,
                                    int universe) const {
  const std::size_t n = static_cast<std::size_t>(universe);
  const std::size_t index = static_cast<std::size_t>(u) * n + v;
  if (index >= chains_.size()) return false;
  return chains_[index].bad;
}

namespace {
thread_local link_fault_model* ambient_faults = nullptr;
}  // namespace

link_fault_model* ambient_link_faults() { return ambient_faults; }

scoped_link_faults::scoped_link_faults(link_fault_model* m)
    : previous_(ambient_faults) {
  ambient_faults = m;
}

scoped_link_faults::~scoped_link_faults() { ambient_faults = previous_; }

}  // namespace nab::sim
