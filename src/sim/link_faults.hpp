#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/digraph.hpp"

namespace nab::sim {

/// Parameters of the per-link fault process: a two-state Gilbert-Elliott
/// erasure chain (the classic bursty-loss model, cf. sparsenc's
/// test.nhopRecoder-gilbert.c) plus a fixed per-link capacity/latency
/// dilation drawn once per link. Each link u->v runs its own chain; a
/// transmission samples an erasure with the current state's loss
/// probability, then the chain takes one transition step:
///
///     good --p_good_to_bad--> bad --p_bad_to_good--> good
///
/// `jitter` widens per-link time: link u->v's bits take a fixed factor in
/// [1, 1 + jitter] longer than the clean capacity model says (drawn from
/// the link's seed, so it is stable for the whole run). `retry_budget` is
/// consumed by the honest ARQ layer (network::lossy_transmit): at most
/// that many retransmissions per logical message before the sender gives
/// up and the receiver falls back to the missing-message default.
struct link_fault_params {
  double p_loss_good = 0.0;    ///< erasure probability in the good state
  double p_loss_bad = 0.0;     ///< erasure probability in the bad state
  double p_good_to_bad = 0.0;  ///< per-transmission good -> bad probability
  double p_bad_to_good = 1.0;  ///< per-transmission bad -> good probability
  double jitter = 0.0;         ///< per-link time dilation amplitude, in [0, 1]
  int retry_budget = 12;       ///< max retransmissions per logical message

  /// True when the process can never erase a transmission (it may still
  /// dilate time when jitter > 0). The dispute layer keys its
  /// erasure-vs-tamper discrimination off this: a lossless process cannot
  /// explain a missing message, so classification stays exactly the clean
  /// model's.
  bool lossless() const { return p_loss_good <= 0.0 && p_loss_bad <= 0.0; }

  /// True when attaching the model cannot perturb a clean run at all (no
  /// erasures and no time dilation) — the zero-loss byte-identity guard.
  bool inert() const { return lossless() && jitter <= 0.0; }

  bool operator==(const link_fault_params&) const = default;
};

/// Named presets accepted everywhere a loss spec string is (registry axis,
/// fleet/nabsim --loss). "zero" is the inert model — attached but unable to
/// perturb anything; it exists to prove exactly that.
std::vector<std::string> loss_preset_names();

/// Parses a loss spec: a preset name ("zero", "light", "bursty", "heavy")
/// or a custom "p_good,p_bad,p_g2b,p_b2g" 4-tuple of probabilities in
/// [0, 1]. Throws nab::error naming the offending spec on anything else
/// ("none" is deliberately rejected too: it means *no model attached* and
/// is handled by callers before parsing).
link_fault_params parse_loss_spec(std::string_view spec);

/// Deterministic per-link fault process over a universe of n nodes. Each
/// directed link u->v owns an independent splitmix64 stream seeded from
/// (model seed, link index u*n+v), so the erasure/transition history of a
/// link depends only on the seed and how many transmissions that link has
/// carried — bit-identical for any `--jobs` count or scheduling, same as
/// every other randomness source in the repo. Thread-confined like
/// sim::trace (one model per run, installed ambiently).
class link_fault_model {
 public:
  link_fault_model(link_fault_params params, std::uint64_t seed);

  const link_fault_params& params() const { return params_; }
  std::uint64_t seed() const { return seed_; }

  /// Samples one transmission on u->v: returns true when the link erased
  /// it, and advances the link's Gilbert-Elliott chain one step. Counts
  /// obs::counter::link_drops per erasure and link_burst_spans per
  /// good->bad transition.
  bool erase(graph::node_id u, graph::node_id v, int universe);

  /// The link's fixed time-dilation factor: exactly 1.0 at jitter 0,
  /// otherwise 1 + jitter * u01(link stream) drawn once per link. Pure
  /// function of (seed, link index) — stateless, so calls never interact
  /// with the erasure chain.
  double time_dilation(graph::node_id u, graph::node_id v, int universe) const;

  /// True when u->v's chain currently sits in the bad (bursty) state.
  /// Exposes chain state for tests; fresh links start good.
  bool in_bad_state(graph::node_id u, graph::node_id v, int universe) const;

 private:
  struct chain {
    std::uint64_t rng = 0;  ///< splitmix64 stream state (0 = uninitialized)
    bool bad = false;
  };

  chain& link_chain(graph::node_id u, graph::node_id v, int universe);

  link_fault_params params_;
  std::uint64_t seed_;
  std::vector<chain> chains_;  ///< lazily sized universe^2, indexed u*n+v
};

/// The calling thread's ambient link-fault model (nullptr = perfect links).
/// Networks constructed on a thread attach it automatically, mirroring
/// sim::ambient_trace, so the fault process reaches the networks a
/// core::session creates internally while fleet shards stay independent.
link_fault_model* ambient_link_faults();

/// Installs `m` as the calling thread's ambient fault model for the
/// lifetime of the scope; restores the previous one on destruction. Scopes
/// nest; nullptr suspends faults.
class scoped_link_faults {
 public:
  explicit scoped_link_faults(link_fault_model* m);
  ~scoped_link_faults();
  scoped_link_faults(const scoped_link_faults&) = delete;
  scoped_link_faults& operator=(const scoped_link_faults&) = delete;

 private:
  link_fault_model* previous_;
};

}  // namespace nab::sim
