#include "sim/trace.hpp"

#include <map>
#include <mutex>
#include <sstream>

namespace nab::sim {

namespace {

/// Process-wide tag registry. Function-local statics dodge static-init-order
/// hazards with the registrars that run during other TUs' dynamic init.
std::map<std::uint64_t, std::string>& tag_registry() {
  static std::map<std::uint64_t, std::string> names;
  return names;
}

std::mutex& tag_registry_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

std::string tag_name(std::uint64_t tag) {
  if (tag == 0) return "data";
  {
    std::lock_guard<std::mutex> lock(tag_registry_mu());
    const auto& names = tag_registry();
    const auto it = names.find(tag);
    if (it != names.end()) return it->second;
  }
  std::ostringstream out;
  out << "0x" << std::hex << tag;
  return out.str();
}

void register_tag_name(std::uint64_t tag, std::string name) {
  std::lock_guard<std::mutex> lock(tag_registry_mu());
  tag_registry()[tag] = std::move(name);
}

std::uint64_t trace::link_total(graph::node_id from, graph::node_id to) const {
  std::uint64_t total = 0;
  for (const trace_event& e : events_)
    if (e.from == from && e.to == to) total += e.bits;
  return total;
}

std::uint64_t trace::tag_total(std::uint64_t tag) const {
  std::uint64_t total = 0;
  for (const trace_event& e : events_)
    if (e.tag == tag) total += e.bits;
  return total;
}

std::uint64_t trace::total_bits() const {
  std::uint64_t total = 0;
  for (const trace_event& e : events_) total += e.bits;
  return total;
}

std::vector<trace_event> trace::step_events(int step) const {
  std::vector<trace_event> out;
  for (const trace_event& e : events_)
    if (e.step == step) out.push_back(e);
  return out;
}

bool trace::used(graph::node_id from, graph::node_id to) const {
  for (const trace_event& e : events_)
    if (e.from == from && e.to == to && e.bits > 0) return true;
  return false;
}

namespace {
thread_local trace* ambient = nullptr;
}  // namespace

trace* ambient_trace() { return ambient; }

scoped_ambient_trace::scoped_ambient_trace(trace* t) : previous_(ambient) {
  ambient = t;
}

scoped_ambient_trace::~scoped_ambient_trace() { ambient = previous_; }

std::string trace::dump() const {
  std::ostringstream out;
  for (const trace_event& e : events_)
    out << "step " << e.step << ": " << e.from << "->" << e.to
        << " tag=" << tag_name(e.tag) << " bits=" << e.bits << "\n";
  return out.str();
}

}  // namespace nab::sim
