#include "sim/network.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::sim {

network::network(graph::digraph topology)
    : topo_(std::move(topology)),
      step_bits_(static_cast<std::size_t>(topo_.universe()) * topo_.universe(), 0),
      lifetime_bits_(step_bits_.size(), 0),
      pending_(static_cast<std::size_t>(topo_.universe())),
      inboxes_(static_cast<std::size_t>(topo_.universe())),
      trace_(ambient_trace()),
      faults_(ambient_link_faults()) {}

void network::send(message m) {
  if (!topo_.has_edge(m.from, m.to))
    throw error("network::send on nonexistent link " + std::to_string(m.from) + "->" +
                std::to_string(m.to));
  if (m.bits == 0 && !m.payload.empty())
    throw error("network::send of nonempty payload with bits == 0 on " +
                std::to_string(m.from) + "->" + std::to_string(m.to) +
                " (zero-bit messages model absent/default values and must be empty)");
  step_bits_[link_index(m.from, m.to)] += m.bits;
  if (trace_ != nullptr) trace_->record(steps_, m.from, m.to, m.tag, m.bits);
  // The channel may erase the copy: bits were spent, nothing is delivered.
  if (faults_ != nullptr && faults_->erase(m.from, m.to, universe())) return;
  pending_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
}

bool network::lossy_transmit(graph::node_id u, graph::node_id v, std::uint64_t bits,
                             std::uint64_t tag) {
  charge(u, v, bits, tag);
  if (faults_ == nullptr) return true;
  const int budget = faults_->params().retry_budget;
  int retries = 0;
  while (faults_->erase(u, v, universe())) {
    if (retries >= budget) {
      obs::count(obs::counter::link_retry_exhaustions);
      obs::gauge_min(obs::gauge::retry_headroom, 0);
      return false;
    }
    ++retries;
    obs::count(obs::counter::link_retransmits);
    // The receiver's nack rides the reverse link when the topology has one
    // (the control plane is modeled reliable; see docs/RUNTIME.md).
    if (topo_.has_edge(v, u)) charge(v, u, 1, tag);
    charge(u, v, bits, tag);
  }
  if (retries > 0)
    obs::gauge_min(obs::gauge::retry_headroom, budget - retries);
  return true;
}

void network::charge(graph::node_id u, graph::node_id v, std::uint64_t bits,
                     std::uint64_t tag) {
  if (!topo_.has_edge(u, v))
    throw error("network::charge on nonexistent link " + std::to_string(u) + "->" +
                std::to_string(v));
  step_bits_[link_index(u, v)] += bits;
  if (trace_ != nullptr) trace_->record(steps_, u, v, tag, bits);
}

double network::end_step() {
  double duration = 0.0;
  for (const graph::edge& e : topo_.edges()) {
    const std::uint64_t bits = step_bits_[link_index(e.from, e.to)];
    if (bits == 0) continue;
    // digraph::add_edge rejects cap <= 0, so every active link divides
    // cleanly; the assert guards against a future zero-capacity edge
    // representation silently producing an infinite tau.
    NAB_ASSERT(e.cap > 0, "link with zero capacity carried traffic");
    double link_time = static_cast<double>(bits) / static_cast<double>(e.cap);
    // Per-link latency/capacity jitter: a fixed dilation factor per link
    // (exactly 1.0 with no fault model or at jitter amplitude 0).
    if (faults_ != nullptr)
      link_time *= faults_->time_dilation(e.from, e.to, universe());
    duration = std::max(duration, link_time);
    lifetime_bits_[link_index(e.from, e.to)] += bits;
    total_bits_ += bits;
  }
  NAB_ASSERT(std::isfinite(duration), "step duration tau must be finite");
  std::fill(step_bits_.begin(), step_bits_.end(), 0);
  for (std::size_t v = 0; v < pending_.size(); ++v) {
    inboxes_[v] = std::move(pending_[v]);
    pending_[v].clear();
  }
  elapsed_ += duration;
  ++steps_;
  return duration;
}

const message_list& network::inbox(graph::node_id v) const {
  NAB_ASSERT(v >= 0 && v < universe(), "inbox node out of range");
  return inboxes_[static_cast<std::size_t>(v)];
}

void network::clear_inboxes() {
  for (auto& box : inboxes_) box.clear();
}

std::uint64_t network::link_bits(graph::node_id u, graph::node_id v) const {
  NAB_ASSERT(u >= 0 && v >= 0 && u < universe() && v < universe(),
             "link_bits node out of range");
  return lifetime_bits_[link_index(u, v)];
}

}  // namespace nab::sim
