#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/link_faults.hpp"
#include "sim/message.hpp"
#include "sim/trace.hpp"

namespace nab::sim {

/// Synchronous point-to-point network with the paper's deterministic
/// capacity/time model.
///
/// Protocols proceed in *steps* (synchronous communication rounds). During a
/// step, nodes queue messages with `send`; `end_step` then (a) charges every
/// link with the bits queued on it, (b) computes the step duration
///     tau = max over links e of bits(e) / z_e
/// (a link of capacity z_e carries z_e * tau bits in tau time — Section 1's
/// capacity model), (c) delivers all queued messages into per-node inboxes,
/// and (d) advances the simulation clock by tau.
///
/// The network itself is oblivious to faults: a Byzantine node "sends" via
/// the same API (protocol-level adversaries decide what). Messages sent on
/// nonexistent links are rejected — the paper's model has no such channel.
class network {
 public:
  explicit network(graph::digraph topology);

  const graph::digraph& topology() const { return topo_; }
  int universe() const { return topo_.universe(); }

  /// Queues a message for delivery at the end of the current step.
  /// Preconditions: the link from->to exists in the topology and bits > 0
  /// unless the payload is empty (zero-bit control messages are allowed for
  /// default-value semantics of missing messages).
  ///
  /// Under an attached fault model the link may erase the message: the bits
  /// are still charged (they were transmitted — the channel ate them) but
  /// nothing reaches the receiver's inbox. Senders that need reliability
  /// use lossy_transmit's ARQ loop instead.
  void send(message m);

  /// Ends the current step; returns its duration in time units.
  double end_step();

  /// Messages delivered to node v in the most recently completed step, in
  /// send order.
  const message_list& inbox(graph::node_id v) const;

  /// Clears all inboxes (start of a fresh protocol phase).
  void clear_inboxes();

  /// Charges `bits` on the link u -> v without delivering data. Used to
  /// account for protocol overheads whose content the simulation does not
  /// model bit-for-bit (e.g. claim dumps in dispute control). `tag` labels
  /// the charge for attached traces (channel emulation forwards the logical
  /// message's tag so per-protocol wire accounting survives multi-hop
  /// routing); it never affects time or capacity accounting.
  void charge(graph::node_id u, graph::node_id v, std::uint64_t bits,
              std::uint64_t tag = 0);

  /// Charges one logical message of `bits` on u -> v under the attached
  /// fault model, with link-layer ARQ: the initial copy is charged, and
  /// while the model erases the copy and the retry budget allows, a 1-bit
  /// nack is charged on the reverse link (when the topology has one) and
  /// the copy is retransmitted — all within the current step, so loss shows
  /// up as elevated tau, never extra protocol rounds. Returns true when a
  /// copy got through, false when the budget was exhausted (the receiver
  /// falls back to its missing-message default). With no fault model
  /// attached this is exactly `charge` + true. Counts
  /// obs link_retransmits / link_retry_exhaustions and records the
  /// margin_retry_headroom gauge for messages that needed retries.
  bool lossy_transmit(graph::node_id u, graph::node_id v, std::uint64_t bits,
                      std::uint64_t tag = 0);

  /// The attached per-link fault model (nullptr = perfect links). Picked up
  /// from the thread's ambient model at construction, like the trace.
  link_fault_model* link_faults() const { return faults_; }

  /// True when the attached fault model can actually erase transmissions.
  /// The dispute layer keys erasure-vs-tamper discrimination off this — an
  /// inert (p_loss = 0) model leaves classification byte-identical to the
  /// clean simulator's.
  bool lossy() const { return faults_ != nullptr && !faults_->params().lossless(); }

  /// Cumulative simulated time over all completed steps.
  double elapsed() const { return elapsed_; }

  /// Cumulative bits ever carried, over all links.
  std::uint64_t total_bits() const { return total_bits_; }

  /// Bits carried by link u->v over the whole run.
  std::uint64_t link_bits(graph::node_id u, graph::node_id v) const;

  /// Number of completed steps.
  int steps() const { return steps_; }

  /// Attaches a passive traffic observer (nullptr detaches). Not owned.
  void attach_trace(trace* t) { trace_ = t; }

 private:
  graph::digraph topo_;
  std::vector<std::uint64_t> step_bits_;        // per-link bits queued this step
  std::vector<std::uint64_t> lifetime_bits_;    // per-link cumulative
  std::vector<message_list> pending_;           // queued this step, per receiver
  std::vector<message_list> inboxes_;           // delivered last step
  double elapsed_ = 0.0;
  std::uint64_t total_bits_ = 0;
  int steps_ = 0;
  trace* trace_ = nullptr;
  link_fault_model* faults_ = nullptr;

  std::size_t link_index(graph::node_id u, graph::node_id v) const {
    return static_cast<std::size_t>(u) * topo_.universe() + v;
  }
};

}  // namespace nab::sim
