#include "sim/run_arena.hpp"

#include <algorithm>
#include <cstring>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace nab::sim {

namespace {

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) & ~(align - 1);
}

thread_local run_arena* ambient = nullptr;

}  // namespace

run_arena* ambient_arena() { return ambient; }

scoped_run_arena::scoped_run_arena(run_arena* a) : previous_(ambient) {
  ambient = a;
}

scoped_run_arena::~scoped_run_arena() { ambient = previous_; }

int run_arena::class_of(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) return -1;
  std::size_t cls_bytes = kMinClassBytes;
  int cls = 0;
  while (cls_bytes < bytes) {
    cls_bytes <<= 1;
    ++cls;
  }
  return cls;
}

void* run_arena::bump(std::size_t bytes) {
  while (cursor_ < blocks_.size()) {
    block& b = blocks_[cursor_];
    if (b.size - b.used >= bytes) {
      void* p = b.data.get() + b.used;
      b.used += bytes;
      return p;
    }
    ++cursor_;
  }
  // Grow geometrically: each new block doubles the previous one, so a run's
  // whole working set ends up in O(log size) heap allocations total.
  constexpr std::size_t kMinBlockBytes = 64 * 1024;
  const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
  std::size_t size = std::max({bytes, 2 * last, kMinBlockBytes});
  block b;
  b.data = std::make_unique<std::byte[]>(size);
  NAB_ASSERT(reinterpret_cast<std::uintptr_t>(b.data.get()) % kAlign == 0,
             "arena block storage must be 16-aligned");
  b.size = size;
  b.used = bytes;
  blocks_.push_back(std::move(b));
  cursor_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

void* run_arena::allocate(std::size_t bytes, std::size_t align) {
  NAB_ASSERT(align <= kAlign, "run_arena serves alignments up to 16");
  ++live_;
  ++total_;
  // Machine-set counters: pool state depends on what ran on the shard before.
  obs::count(obs::counter::arena_allocs);
  const int cls = class_of(bytes);
  if (cls >= 0) {
    if (void* head = free_lists_[cls]) {
      std::memcpy(&free_lists_[cls], head, sizeof(void*));
      ++pool_hits_;
      obs::count(obs::counter::arena_pool_hits);
      return head;
    }
    return bump(class_bytes(cls));
  }
  return bump(round_up(bytes, kAlign));
}

void run_arena::deallocate(void* p, std::size_t bytes) noexcept {
  --live_;
  const int cls = class_of(bytes);
  if (cls < 0) return;  // bump-only: reclaimed by the next reset
  std::memcpy(p, &free_lists_[cls], sizeof(void*));
  free_lists_[cls] = p;
}

void run_arena::reset() {
  NAB_ASSERT(live_ == 0,
             "run_arena::reset with live allocations — a container outlived "
             "the run (use-after-reset)");
  for (void*& head : free_lists_) head = nullptr;
  for (block& b : blocks_) b.used = 0;
  cursor_ = 0;
  ++resets_;
}

bool run_arena::owns(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  for (const block& blk : blocks_)
    if (b >= blk.data.get() && b < blk.data.get() + blk.size) return true;
  return false;
}

std::size_t run_arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.size;
  return total;
}

std::size_t run_arena::bytes_in_use() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.used;
  return total;
}

namespace detail {

void* arena_allocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(alloc_header);
  // Large buffers bypass the arena even when one is ambient: malloc recycles
  // them adaptively, while a monotonic arena would burn cold pages on every
  // vector-growth step (see run_arena::max_pooled_bytes).
  run_arena* a = total <= run_arena::max_pooled_bytes ? ambient : nullptr;
  void* raw = a != nullptr ? a->allocate(total, alignof(alloc_header))
                           : ::operator new(total);
  auto* header = static_cast<alloc_header*>(raw);
  header->owner = a;
  header->magic = kArenaMagic;
  return static_cast<std::byte*>(raw) + sizeof(alloc_header);
}

void arena_deallocate(void* p, std::size_t bytes) noexcept {
  void* raw = static_cast<std::byte*>(p) - sizeof(alloc_header);
  auto* header = static_cast<alloc_header*>(raw);
  NAB_ASSERT(header->magic == kArenaMagic,
             "arena_alloc header corrupted (heap smash or foreign pointer)");
  if (header->owner != nullptr)
    header->owner->deallocate(raw, bytes + sizeof(alloc_header));
  else
    ::operator delete(raw);
}

}  // namespace detail

}  // namespace nab::sim
