#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/run_arena.hpp"

namespace nab::sim {

/// One point-to-point message in the synchronous network.
///
/// `payload` is protocol-defined opaque data (arena-backed when a run arena
/// is ambient — see sim/run_arena.hpp); `bits` is the size charged
/// against the link for time accounting (the paper's capacity constraint is
/// about bits on the wire, which can be smaller than the in-memory
/// representation). `tag` disambiguates concurrent logical streams within a
/// step (e.g. which spanning tree or which coded edge a message belongs to).
struct message {
  graph::node_id from = -1;
  graph::node_id to = -1;
  std::uint64_t tag = 0;
  sim::payload payload;
  std::uint64_t bits = 0;
};

/// A batch of messages (inboxes, per-round queues) — arena-backed alongside
/// the payloads it carries.
using message_list = pooled_vector<message>;

}  // namespace nab::sim
