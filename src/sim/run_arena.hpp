#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace nab::sim {

/// Per-run monotonic arena with pooled free lists for the small size classes
/// that churn during protocol simulation (message payloads, EIG label
/// vectors, claim-map nodes).
///
/// Lifetime contract (docs/RUNTIME.md §arena):
/// - An arena is **thread-confined**: one shard (or one test) owns it; it is
///   never shared across threads. The fleet executor keeps one arena per
///   worker thread and reuses it for every run of the sweep.
/// - Allocation is monotonic within a run: small blocks (<= 4 KiB, rounded
///   to a power-of-two size class) return to a per-class free list on
///   deallocation and are recycled; larger blocks are bump-only and are
///   reclaimed wholesale by `reset()`.
/// - `reset()` rewinds every block and clears the free lists, *retaining*
///   the underlying pages — a steady-state run performs zero heap
///   allocations. Resetting while allocations are still live is a caller
///   bug (use-after-reset); `reset()` aborts on it via NAB_ASSERT, which is
///   exactly how the regression tests prove the session reclaims everything
///   (including on early-abort paths) before rewinding.
/// - Anything that must outlive the run (instance reports, dispute records,
///   traces) must be copied into plainly-allocated storage before the reset
///   point.
class run_arena {
 public:
  run_arena() = default;
  run_arena(const run_arena&) = delete;
  run_arena& operator=(const run_arena&) = delete;

  /// Bump-or-pool allocation. `align` must be <= 16 (everything the
  /// simulator allocates is), and the returned pointer is 16-aligned.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Returns pooled size classes to their free list; larger blocks are
  /// dropped (their space comes back at the next reset).
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Rewinds all blocks and clears the free lists, keeping capacity.
  /// Precondition (aborts otherwise): no allocation is still live.
  void reset();

  /// True iff p points into one of the arena's blocks.
  bool owns(const void* p) const;

  // --- observability (tests, bench reporting) ---
  std::uint64_t live_allocations() const { return live_; }
  std::uint64_t total_allocations() const { return total_; }
  std::uint64_t pool_hits() const { return pool_hits_; }
  std::uint64_t resets() const { return resets_; }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t bytes_reserved() const;
  std::size_t bytes_in_use() const;

  /// Largest request the arena pools (and the cutoff above which
  /// arena_alloc bypasses the arena entirely). The arena's design center is
  /// the *small-block churn* — message payloads, label vectors, map nodes —
  /// where bump+free-list allocation wins. Buffers beyond this (EIG claim
  /// batches on 32-node topologies grow into the MiBs) are better served by
  /// malloc, which recycles them adaptively: routing them through a
  /// monotonic arena ballooned hypercube_d5's peak RSS from 1.8 GB to
  /// 8.4 GB of cold pages and doubled its wall time.
  static constexpr std::size_t max_pooled_bytes = 64 * 1024;

 private:
  // Pooled classes: powers of two from 16 B to 64 KiB (requests below 16
  // round up).
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kMinClassBytes = 16;
  static constexpr std::size_t kMaxPooledBytes = max_pooled_bytes;
  static constexpr int kClassCount = 13;  // log2(64 KiB / 16 B) + 1

  struct block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static int class_of(std::size_t bytes);        // -1 when not pooled
  static std::size_t class_bytes(int cls) { return kMinClassBytes << cls; }
  void* bump(std::size_t bytes);

  std::vector<block> blocks_;
  std::size_t cursor_ = 0;          // block currently being bumped
  void* free_lists_[kClassCount] = {};
  std::uint64_t live_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t resets_ = 0;
};

/// The calling thread's ambient arena (nullptr when none is installed) —
/// the same pattern as sim::ambient_trace. arena_alloc draws from it at
/// allocation time, so protocol code does not thread an allocator handle
/// through every call; core::session installs its arena for the duration of
/// each run_instance.
run_arena* ambient_arena();

/// Installs `a` as the calling thread's ambient arena for the lifetime of
/// the scope; restores the previous one on destruction. Scopes nest, and
/// passing nullptr *suspends* pooling (used around allocations that must
/// outlive the run, e.g. the session's cached channel plan).
class scoped_run_arena {
 public:
  explicit scoped_run_arena(run_arena* a);
  ~scoped_run_arena();
  scoped_run_arena(const scoped_run_arena&) = delete;
  scoped_run_arena& operator=(const scoped_run_arena&) = delete;

 private:
  run_arena* previous_;
};

namespace detail {

/// Every arena_alloc allocation is prefixed with this header, so
/// deallocation routes to the owning arena (or the heap, owner == nullptr)
/// regardless of what arena — if any — is ambient at free time. Containers
/// may therefore be handed across scopes freely; the only hard rule is that
/// they die (or are shrunk to zero capacity) before their arena resets.
struct alloc_header {
  run_arena* owner;
  std::uint64_t magic;
};
static_assert(sizeof(alloc_header) == 16, "header must preserve 16-alignment");
inline constexpr std::uint64_t kArenaMagic = 0x9e3779b97f4a7c15ULL;

void* arena_allocate(std::size_t bytes);
void arena_deallocate(void* p, std::size_t bytes) noexcept;

}  // namespace detail

/// STL allocator over the ambient arena, falling back to the heap when none
/// is installed. Stateless: all instances compare equal, so containers move
/// and swap freely across arena boundaries (the header routes each block
/// back to its true owner).
template <typename T>
struct arena_alloc {
  using value_type = T;

  arena_alloc() noexcept = default;
  template <typename U>
  arena_alloc(const arena_alloc<U>&) noexcept {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= 16, "arena_alloc supports alignments up to 16");
    return static_cast<T*>(detail::arena_allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    detail::arena_deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const arena_alloc<U>&) const noexcept {
    return true;
  }
};

/// The pooled container aliases protocol code uses.
template <typename T>
using pooled_vector = std::vector<T, arena_alloc<T>>;

/// Opaque wire payload: 64-bit transport words, arena-backed.
using payload = pooled_vector<std::uint64_t>;

}  // namespace nab::sim
