#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace nab::sim {

/// One link-level transmission event recorded by a trace.
struct trace_event {
  int step = 0;                ///< synchronous step index when it was charged
  graph::node_id from = -1;
  graph::node_id to = -1;
  std::uint64_t tag = 0;       ///< protocol tag (0 for bare charges)
  std::uint64_t bits = 0;
};

/// Passive observer of a network's traffic, attachable via
/// network::attach_trace. Useful for debugging protocols and for asserting
/// communication patterns in tests ("Phase 1 only used tree edges",
/// "no traffic crossed a disputed link").
class trace {
 public:
  void record(int step, graph::node_id from, graph::node_id to, std::uint64_t tag,
              std::uint64_t bits) {
    events_.push_back({step, from, to, tag, bits});
  }

  const std::vector<trace_event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Total bits recorded on link (from, to).
  std::uint64_t link_total(graph::node_id from, graph::node_id to) const;

  /// Events within one step, in charge order.
  std::vector<trace_event> step_events(int step) const;

  /// True iff some event used the given link.
  bool used(graph::node_id from, graph::node_id to) const;

  /// Compact textual dump (one line per event) for logs.
  std::string dump() const;

 private:
  std::vector<trace_event> events_;
};

}  // namespace nab::sim
