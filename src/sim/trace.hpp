#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace nab::sim {

/// One link-level transmission event recorded by a trace.
struct trace_event {
  int step = 0;                ///< synchronous step index when it was charged
  graph::node_id from = -1;
  graph::node_id to = -1;
  std::uint64_t tag = 0;       ///< protocol tag (0 for bare charges)
  std::uint64_t bits = 0;
};

/// Passive observer of a network's traffic, attachable via
/// network::attach_trace. Useful for debugging protocols and for asserting
/// communication patterns in tests ("Phase 1 only used tree edges",
/// "no traffic crossed a disputed link").
class trace {
 public:
  void record(int step, graph::node_id from, graph::node_id to, std::uint64_t tag,
              std::uint64_t bits) {
    events_.push_back({step, from, to, tag, bits});
  }

  const std::vector<trace_event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Total bits recorded on link (from, to).
  std::uint64_t link_total(graph::node_id from, graph::node_id to) const;

  /// Total bits recorded under one protocol tag, across all links and steps.
  /// Sub-protocols that tag their traffic (e.g. the Phase-3 claim backends,
  /// bb/claim_bcast.hpp) become individually accountable: tests assert the
  /// claim-byte drop across backends from a trace instead of eyeballing it.
  std::uint64_t tag_total(std::uint64_t tag) const;

  /// Total bits recorded over all events (equals network::total_bits when
  /// the trace observed the network for its whole lifetime).
  std::uint64_t total_bits() const;

  /// Events within one step, in charge order.
  std::vector<trace_event> step_events(int step) const;

  /// True iff some event used the given link.
  bool used(graph::node_id from, graph::node_id to) const;

  /// Compact textual dump (one line per event) for logs.
  std::string dump() const;

 private:
  std::vector<trace_event> events_;
};

/// Human-readable name for a protocol tag: "data" for 0 (bare charges),
/// registered names for everything else, and a hex rendering ("0xc1a1b")
/// as the fallback. Used by trace::dump, fleet --trace output, and the
/// timeline exporter's per-tag traffic tracks, so a claim round reads
/// "claim", not a raw 64-bit constant.
std::string tag_name(std::uint64_t tag);

/// Registers (or replaces) the display name of a protocol tag. Sub-protocols
/// register their tag once at static-init time; thread-safe.
void register_tag_name(std::uint64_t tag, std::string name);

/// The calling thread's ambient trace (nullptr when none is installed).
/// Networks constructed on a thread attach its ambient trace automatically,
/// so instrumentation reaches the networks a `core::session` creates
/// internally — per-thread, which keeps fleet shards running in parallel
/// fully independent (no shared observer, no data races).
trace* ambient_trace();

/// Installs `t` as the calling thread's ambient trace for the lifetime of
/// the scope; restores the previous one on destruction. Scopes nest.
class scoped_ambient_trace {
 public:
  explicit scoped_ambient_trace(trace* t);
  ~scoped_ambient_trace();
  scoped_ambient_trace(const scoped_ambient_trace&) = delete;
  scoped_ambient_trace& operator=(const scoped_ambient_trace&) = delete;

 private:
  trace* previous_;
};

}  // namespace nab::sim
