#include "bb/phase_king.hpp"

#include <map>

#include "util/assert.hpp"

namespace nab::bb {
namespace {

/// One all-to-all (or king-to-all) exchange; returns received[receiver][sender].
std::vector<std::map<graph::node_id, std::uint64_t>> exchange(
    channel_plan& channels, sim::network& net, const sim::fault_set& faults,
    const std::vector<graph::node_id>& participants,
    const std::vector<std::uint64_t>& current, int phase, bool king_round,
    graph::node_id king, std::uint64_t value_bits, pk_adversary* adv,
    relay_adversary* relay_adv) {
  const int universe = channels.topology().universe();
  for (graph::node_id i : participants) {
    if (king_round && i != king) continue;
    for (graph::node_id j : participants) {
      if (j == i) continue;
      std::uint64_t v = current[static_cast<std::size_t>(i)];
      if (faults.is_corrupt(i) && adv != nullptr) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        v = adv->exchange_value(i, j, phase, king_round, v);
      }
      channels.unicast(i, j, static_cast<std::uint64_t>(phase), {v}, value_bits);
    }
  }
  channels.end_round(net, faults, relay_adv);
  std::vector<std::map<graph::node_id, std::uint64_t>> received(
      static_cast<std::size_t>(universe));
  for (graph::node_id j : participants)
    for (const sim::message& m : channels.inbox(j))
      if (!m.payload.empty()) received[static_cast<std::size_t>(j)][m.from] = m.payload[0];
  return received;
}

}  // namespace

pk_result phase_king_consensus(channel_plan& channels, sim::network& net,
                               const sim::fault_set& faults,
                               const std::vector<std::uint64_t>& initial, int f,
                               std::uint64_t value_bits, pk_adversary* adv,
                               relay_adversary* relay_adv) {
  const std::vector<graph::node_id> participants = channels.topology().active_nodes();
  const auto n = static_cast<int>(participants.size());
  NAB_ASSERT(n > 4 * f, "phase-king (simple variant) requires more than 4f participants");
  NAB_ASSERT(initial.size() >= static_cast<std::size_t>(channels.topology().universe()),
             "initial values must cover the node universe");

  std::vector<std::uint64_t> current = initial;
  const double t0 = net.elapsed();

  for (int phase = 0; phase <= f; ++phase) {
    // Round A: all-to-all exchange; take the most frequent value.
    const auto seen = exchange(channels, net, faults, participants, current, phase,
                               /*king_round=*/false, -1, value_bits, adv, relay_adv);
    std::vector<std::uint64_t> maj(current.size(), 0);
    std::vector<int> mult(current.size(), 0);
    for (graph::node_id v : participants) {
      std::map<std::uint64_t, int> votes;
      ++votes[current[static_cast<std::size_t>(v)]];  // own value counts
      for (const auto& [from, val] : seen[static_cast<std::size_t>(v)]) ++votes[val];
      int best = 0;
      std::uint64_t best_val = 0;
      for (const auto& [val, count] : votes)
        if (count > best || (count == best && val < best_val)) {
          best = count;
          best_val = val;
        }
      maj[static_cast<std::size_t>(v)] = best_val;
      mult[static_cast<std::size_t>(v)] = best;
    }

    // Round B: the phase king broadcasts its majority value.
    const graph::node_id king = participants[static_cast<std::size_t>(phase) %
                                             participants.size()];
    const auto king_msgs = exchange(channels, net, faults, participants, maj, phase,
                                    /*king_round=*/true, king, value_bits, adv,
                                    relay_adv);
    for (graph::node_id v : participants) {
      const bool confident =
          2 * mult[static_cast<std::size_t>(v)] > n + 2 * f;  // mult > n/2 + f
      if (confident || v == king) {
        current[static_cast<std::size_t>(v)] = maj[static_cast<std::size_t>(v)];
      } else {
        const auto& inbox = king_msgs[static_cast<std::size_t>(v)];
        const auto it = inbox.find(king);
        current[static_cast<std::size_t>(v)] = it == inbox.end() ? 0 : it->second;
      }
    }
  }

  pk_result out;
  out.decided = std::move(current);
  out.time = net.elapsed() - t0;
  return out;
}

pk_result phase_king_broadcast(channel_plan& channels, sim::network& net,
                               const sim::fault_set& faults, graph::node_id source,
                               std::uint64_t input, int f, std::uint64_t value_bits,
                               pk_adversary* adv, relay_adversary* relay_adv) {
  const std::vector<graph::node_id> participants = channels.topology().active_nodes();
  const int universe = channels.topology().universe();

  // Dissemination round: the source sends its input to everyone.
  for (graph::node_id j : participants) {
    if (j == source) continue;
    std::uint64_t v = input;
    if (faults.is_corrupt(source) && adv != nullptr) {
      sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
      v = adv->exchange_value(source, j, /*phase=*/-1, /*is_king_round=*/false, v);
    }
    channels.unicast(source, j, 0, {v}, value_bits);
  }
  channels.end_round(net, faults, relay_adv);

  std::vector<std::uint64_t> initial(static_cast<std::size_t>(universe), 0);
  initial[static_cast<std::size_t>(source)] = input;
  for (graph::node_id j : participants) {
    if (j == source) continue;
    for (const sim::message& m : channels.inbox(j))
      if (m.from == source && !m.payload.empty())
        initial[static_cast<std::size_t>(j)] = m.payload[0];
  }
  return phase_king_consensus(channels, net, faults, initial, f, value_bits, adv,
                              relay_adv);
}

}  // namespace nab::bb
