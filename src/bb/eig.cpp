#include "bb/eig.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace nab::bb {
namespace {

using label = std::vector<graph::node_id>;

/// Wire encoding of (label, value): [len, id..., value words...].
std::vector<std::uint64_t> encode(const label& sigma, const value& v) {
  std::vector<std::uint64_t> out;
  out.reserve(1 + sigma.size() + v.size());
  out.push_back(sigma.size());
  for (graph::node_id id : sigma) out.push_back(static_cast<std::uint64_t>(id));
  out.insert(out.end(), v.begin(), v.end());
  return out;
}

bool decode(const std::vector<std::uint64_t>& words, label& sigma, value& v) {
  if (words.empty()) return false;
  const std::uint64_t len = words[0];
  if (words.size() < 1 + len) return false;
  sigma.assign(words.begin() + 1, words.begin() + 1 + static_cast<std::ptrdiff_t>(len));
  v.assign(words.begin() + 1 + static_cast<std::ptrdiff_t>(len), words.end());
  return true;
}

bool contains(const label& sigma, graph::node_id v) {
  return std::find(sigma.begin(), sigma.end(), v) != sigma.end();
}

/// Per-instance, per-node EIG tree storage.
using tree = std::map<label, value>;

/// Bottom-up PSL resolution: leaves return their stored value, internal
/// labels take the strict majority of their children (default value when no
/// majority).
value resolve(const tree& t, const label& sigma, const std::vector<graph::node_id>& all,
              int max_len) {
  if (static_cast<int>(sigma.size()) == max_len) {
    const auto it = t.find(sigma);
    return it == t.end() ? value{} : it->second;
  }
  std::map<value, int> votes;
  int child_count = 0;
  for (graph::node_id j : all) {
    if (contains(sigma, j)) continue;
    label child = sigma;
    child.push_back(j);
    ++votes[resolve(t, child, all, max_len)];
    ++child_count;
  }
  for (const auto& [val, count] : votes)
    if (2 * count > child_count) return val;
  return value{};
}

}  // namespace

eig_result eig_broadcast_all(channel_plan& channels, sim::network& net,
                             const sim::fault_set& faults,
                             const std::vector<eig_instance>& instances, int f,
                             std::uint64_t value_bits, eig_adversary* adv,
                             relay_adversary* relay_adv) {
  const std::vector<graph::node_id> participants = channels.topology().active_nodes();
  const auto n = static_cast<int>(participants.size());
  NAB_ASSERT(n > 3 * f, "EIG requires more than 3f participants");
  const int universe = channels.topology().universe();
  const int rounds = f + 1;

  eig_result result;
  result.decisions.assign(instances.size(), std::vector<value>(static_cast<std::size_t>(universe)));

  // store[q][v] = EIG tree of node v for instance q.
  std::vector<std::vector<tree>> store(instances.size(),
                                       std::vector<tree>(static_cast<std::size_t>(universe)));

  const double t0 = net.elapsed();

  // Round 1: each source disseminates its input.
  for (std::size_t q = 0; q < instances.size(); ++q) {
    const auto& inst = instances[q];
    NAB_ASSERT(channels.topology().is_active(inst.source), "EIG source must participate");
    const label root{inst.source};
    store[q][static_cast<std::size_t>(inst.source)][root] = inst.input;
    for (graph::node_id r : participants) {
      if (r == inst.source) continue;
      value v = inst.input;
      if (faults.is_corrupt(inst.source) && adv != nullptr)
        v = adv->source_value(inst.source, r, v);
      const std::uint64_t vb = inst.value_bits != 0 ? inst.value_bits : value_bits;
      channels.unicast(inst.source, r, q, encode(root, v), vb + 8 * (root.size() + 1));
    }
  }
  channels.end_round(net, faults, relay_adv);
  for (std::size_t q = 0; q < instances.size(); ++q)
    for (graph::node_id r : participants) {
      for (const sim::message& m : channels.inbox(r)) {
        if (m.tag != q) continue;
        label sigma;
        value v;
        if (!decode(m.payload, sigma, v)) continue;
        if (sigma != label{instances[q].source}) continue;  // unexpected label
        store[q][static_cast<std::size_t>(r)].emplace(sigma, v);
      }
    }

  // Rounds 2..f+1: relay every label of the previous round.
  for (int round = 2; round <= rounds; ++round) {
    for (std::size_t q = 0; q < instances.size(); ++q) {
      const std::uint64_t vb =
          instances[q].value_bits != 0 ? instances[q].value_bits : value_bits;
      for (graph::node_id i : participants) {
        std::vector<std::pair<label, value>> self_stores;
        for (const auto& [sigma, stored] : store[q][static_cast<std::size_t>(i)]) {
          if (static_cast<int>(sigma.size()) != round - 1 || contains(sigma, i)) continue;
          for (graph::node_id j : participants) {
            if (j == i) continue;
            value v = stored;
            if (faults.is_corrupt(i) && adv != nullptr)
              v = adv->relay_value(i, j, sigma, v);
            channels.unicast(i, j, q, encode(sigma, v), vb + 8 * (sigma.size() + 1));
          }
          // A node also "sends to itself": its own tree gets sigma.i with
          // the honestly stored value (deferred to avoid mutating the map
          // mid-iteration).
          label extended = sigma;
          extended.push_back(i);
          self_stores.emplace_back(std::move(extended), stored);
        }
        for (auto& [sig, val] : self_stores)
          store[q][static_cast<std::size_t>(i)].emplace(std::move(sig), std::move(val));
      }
    }
    channels.end_round(net, faults, relay_adv);
    for (std::size_t q = 0; q < instances.size(); ++q)
      for (graph::node_id j : participants) {
        for (const sim::message& m : channels.inbox(j)) {
          if (m.tag != q) continue;
          label sigma;
          value v;
          if (!decode(m.payload, sigma, v)) continue;
          // Accept only well-formed labels of the expected round, extended
          // by the actual sender; ignore duplicates (first write wins).
          if (static_cast<int>(sigma.size()) != round - 1) continue;
          if (sigma.empty() || sigma[0] != instances[q].source) continue;
          if (contains(sigma, m.from)) continue;
          label extended = sigma;
          extended.push_back(m.from);
          store[q][static_cast<std::size_t>(j)].emplace(std::move(extended), std::move(v));
        }
      }
  }

  // Resolution.
  for (std::size_t q = 0; q < instances.size(); ++q)
    for (graph::node_id v : participants)
      result.decisions[q][static_cast<std::size_t>(v)] =
          resolve(store[q][static_cast<std::size_t>(v)], {instances[q].source},
                  participants, rounds);

  result.time = net.elapsed() - t0;
  return result;
}

}  // namespace nab::bb
