#include "bb/eig.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "bb/round_batch.hpp"
#include "util/assert.hpp"

namespace nab::bb {
namespace {

/// EIG labels churn at Θ(n^f) per instance batch — arena-backed like every
/// other per-round buffer in this file.
using label = sim::pooled_vector<graph::node_id>;

// All (instance, label, value) items a node sends to one receiver in one
// round travel as a single logical unicast (the paper's rounds are
// synchronous, so per-item messages and one batch are indistinguishable on
// the wire). Item encoding: [q, len, id..., vwords, value words...]; bits
// are accounted per item exactly as the historical one-message-per-label
// scheme did.

void append_item(sim::payload& out, std::size_t q, const label& sigma,
                 const value& v) {
  out.push_back(q);
  out.push_back(sigma.size());
  for (graph::node_id id : sigma) out.push_back(static_cast<std::uint64_t>(id));
  out.push_back(v.size());
  out.insert(out.end(), v.begin(), v.end());
}

/// Parses the item at `pos`, advancing it. Returns false (leaving `pos` at
/// the payload end) when the remainder is malformed — a tampered batch
/// yields as many well-formed prefix items as survive.
bool next_item(const sim::payload& words, std::size_t& pos,
               std::size_t& q, label& sigma, value& v) {
  if (pos >= words.size()) return false;
  if (words.size() - pos < 2) {
    pos = words.size();
    return false;
  }
  q = static_cast<std::size_t>(words[pos]);
  const std::uint64_t len = words[pos + 1];
  if (len > words.size() - pos - 2) {
    pos = words.size();
    return false;
  }
  sigma.assign(words.begin() + static_cast<std::ptrdiff_t>(pos + 2),
               words.begin() + static_cast<std::ptrdiff_t>(pos + 2 + len));
  pos += 2 + static_cast<std::size_t>(len);
  if (pos >= words.size()) return false;
  const std::uint64_t vwords = words[pos];
  if (vwords > words.size() - pos - 1) {
    pos = words.size();
    return false;
  }
  v.assign(words.begin() + static_cast<std::ptrdiff_t>(pos + 1),
           words.begin() + static_cast<std::ptrdiff_t>(pos + 1 + vwords));
  pos += 1 + static_cast<std::size_t>(vwords);
  return true;
}

bool contains(const label& sigma, graph::node_id v) {
  return std::find(sigma.begin(), sigma.end(), v) != sigma.end();
}

/// Distinct values seen by one broadcast batch, interned once: trees store
/// small integer ids, majority voting compares ids, and every relayed copy
/// of a value shares the single arena entry (Phase-3 claim blobs are
/// relayed n^2 times — interning is what keeps that affordable). Id 0 is
/// the default (empty) value.
class value_pool {
 public:
  value_pool() { intern(value{}); }

  int intern(const value& v) {
    const auto it = ids_.find(v);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(arena_.size());
    arena_.push_back(v);
    ids_.emplace(arena_.back(), id);
    return id;
  }

  const value& of(int id) const { return arena_[static_cast<std::size_t>(id)]; }

 private:
  // Stable references; both the pool entries and the id-map nodes live in
  // the ambient run arena.
  std::deque<value, sim::arena_alloc<value>> arena_;
  std::map<value, int, std::less<value>,
           sim::arena_alloc<std::pair<const value, int>>>
      ids_;
};

/// Per-instance, per-node EIG tree storage. Labels are packed into a 64-bit
/// mixed-radix key for O(1) lookup and values are pool ids; the per-round
/// entry lists preserve insertion order so relay traffic stays
/// deterministic (hash-table iteration order is never observed).
class tree {
 public:
  /// `expected_labels` pre-sizes the hash table — EIG trees grow to a known
  /// Sum_r n^r shape, and incremental rehashing dominated f=2 sweeps.
  tree(std::uint64_t radix, std::size_t expected_labels) : radix_(radix) {
    vals_.reserve(expected_labels);
  }

  std::uint64_t key_of(const label& sigma) const {
    std::uint64_t key = 1;
    for (graph::node_id id : sigma) key = key * radix_ + static_cast<std::uint64_t>(id);
    return key;
  }

  /// First write wins (matching the historical map::emplace semantics).
  void store(const label& sigma, int value_id) {
    const std::uint64_t key = key_of(sigma);
    if (!vals_.emplace(key, value_id).second) return;
    const std::size_t len = sigma.size();
    if (rounds_.size() <= len) rounds_.resize(len + 1);
    rounds_[len].push_back(sigma);
  }

  /// Pool id stored for sigma, or -1.
  int find(const label& sigma) const {
    const auto it = vals_.find(key_of(sigma));
    return it == vals_.end() ? -1 : it->second;
  }

  /// Labels of the given length, in insertion order.
  const sim::pooled_vector<label>& of_length(std::size_t len) const {
    static const sim::pooled_vector<label> empty;
    return len < rounds_.size() ? rounds_[len] : empty;
  }

 private:
  std::uint64_t radix_;
  std::unordered_map<std::uint64_t, int, std::hash<std::uint64_t>,
                     std::equal_to<std::uint64_t>,
                     sim::arena_alloc<std::pair<const std::uint64_t, int>>>
      vals_;
  sim::pooled_vector<sim::pooled_vector<label>> rounds_;  // by label length
};

/// Bottom-up PSL resolution: leaves return their stored value, internal
/// labels take the strict majority of their children (default value when no
/// majority). Values are pool ids, so voting is integer bookkeeping;
/// `sigma` is extended and truncated in place.
int resolve(const tree& t, label& sigma, const std::vector<graph::node_id>& all,
            int max_len) {
  if (static_cast<int>(sigma.size()) == max_len) {
    const int stored = t.find(sigma);
    return stored < 0 ? 0 : stored;
  }
  // Distinct child ids are few; linear bookkeeping beats any map here.
  sim::pooled_vector<std::pair<int, int>> votes;
  int child_count = 0;
  for (graph::node_id j : all) {
    if (contains(sigma, j)) continue;
    sigma.push_back(j);
    const int child = resolve(t, sigma, all, max_len);
    sigma.pop_back();
    ++child_count;
    bool found = false;
    for (auto& [val, count] : votes)
      if (val == child) {
        ++count;
        found = true;
        break;
      }
    if (!found) votes.emplace_back(child, 1);
  }
  for (const auto& [val, count] : votes)
    if (2 * count > child_count) return val;
  return 0;
}

}  // namespace

eig_result eig_broadcast_all(channel_plan& channels, sim::network& net,
                             const sim::fault_set& faults,
                             const std::vector<eig_instance>& instances, int f,
                             std::uint64_t value_bits, eig_adversary* adv,
                             relay_adversary* relay_adv, std::uint64_t tag) {
  const std::vector<graph::node_id> participants = channels.topology().active_nodes();
  const auto n = static_cast<int>(participants.size());
  NAB_ASSERT(n > 3 * f, "EIG requires more than 3f participants");
  const int universe = channels.topology().universe();
  const int rounds = f + 1;

  // Label keys are mixed-radix in (universe + 1); key_of starts from 1, so
  // the deepest label (f + 1 ids) packs to just under 2 * radix^(f+1) —
  // the guard covers that worst case, not merely the leading power (true
  // for every topology the registry can express — ~64 nodes at f <= 9).
  const auto radix = static_cast<std::uint64_t>(universe) + 1;
  {
    std::uint64_t max_key = 2;
    for (int i = 0; i < rounds; ++i) {
      NAB_ASSERT(max_key <= ~std::uint64_t{0} / radix,
                 "EIG label space exceeds 64-bit packing");
      max_key *= radix;
    }
  }

  eig_result result;
  result.decisions.assign(instances.size(), std::vector<value>(static_cast<std::size_t>(universe)));

  value_pool pool;

  // store[q][v] = EIG tree of node v for instance q.
  std::size_t expected_labels = 1;
  {
    std::size_t level = 1;
    for (int r = 1; r < rounds; ++r) {
      level *= static_cast<std::size_t>(n);
      expected_labels += level;
    }
  }
  std::vector<std::vector<tree>> store(
      instances.size(),
      std::vector<tree>(static_cast<std::size_t>(universe),
                        tree(radix, expected_labels)));

  const double t0 = net.elapsed();

  // Per-(sender, receiver) batch buffers for the current round (the shared
  // wire-batching contract of bb/round_batch.hpp).
  round_batches batches(universe, participants);

  // Round 1: each source disseminates its input.
  for (std::size_t q = 0; q < instances.size(); ++q) {
    const auto& inst = instances[q];
    NAB_ASSERT(channels.topology().is_active(inst.source), "EIG source must participate");
    const label root{inst.source};
    store[q][static_cast<std::size_t>(inst.source)].store(root, pool.intern(inst.input));
    for (graph::node_id r : participants) {
      if (r == inst.source) continue;
      const value* v = &inst.input;
      value forged;
      if (faults.is_corrupt(inst.source) && adv != nullptr) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        forged = adv->source_value(inst.source, r, *v);
        v = &forged;
      }
      const std::uint64_t vb = inst.value_bits != 0 ? inst.value_bits : value_bits;
      round_batch& b = batches.at(inst.source, r);
      append_item(b.payload, q, root, *v);
      b.bits += vb + 8 * (root.size() + 1);
    }
  }
  batches.flush(channels, tag);
  channels.end_round(net, faults, relay_adv);
  {
    label sigma;
    value v;
    std::size_t q = 0;
    for (graph::node_id r : participants) {
      for (const sim::message& m : channels.inbox(r)) {
        std::size_t pos = 0;
        while (next_item(m.payload, pos, q, sigma, v)) {
          if (q >= instances.size()) continue;
          if (sigma.size() != 1 || sigma[0] != instances[q].source)
            continue;  // unexpected label
          store[q][static_cast<std::size_t>(r)].store(sigma, pool.intern(v));
        }
      }
    }
  }

  // Rounds 2..f+1: relay every label of the previous round.
  for (int round = 2; round <= rounds; ++round) {
    for (std::size_t q = 0; q < instances.size(); ++q) {
      const std::uint64_t vb =
          instances[q].value_bits != 0 ? instances[q].value_bits : value_bits;
      for (graph::node_id i : participants) {
        tree& mine = store[q][static_cast<std::size_t>(i)];
        // A node also "sends to itself": its own tree gets sigma.i with the
        // honestly stored value (deferred — of_length would grow mid-loop).
        sim::pooled_vector<std::pair<label, int>> self_stores;
        for (const label& sigma : mine.of_length(static_cast<std::size_t>(round - 1))) {
          if (contains(sigma, i)) continue;
          const int stored_id = mine.find(sigma);
          NAB_ASSERT(stored_id >= 0, "EIG round list out of sync");
          const value& stored = pool.of(stored_id);
          const bool may_lie = faults.is_corrupt(i) && adv != nullptr;
          value forged;
          // The adversary hook keeps its plain-vector signature; convert the
          // arena-backed label only on the (rare) corrupt-sender path.
          std::vector<graph::node_id> sigma_plain;
          if (may_lie) sigma_plain.assign(sigma.begin(), sigma.end());
          for (graph::node_id j : participants) {
            if (j == i) continue;
            const value* v = &stored;
            if (may_lie) {
              sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
              forged = adv->relay_value(i, j, sigma_plain, stored);
              v = &forged;
            }
            round_batch& b = batches.at(i, j);
            append_item(b.payload, q, sigma, *v);
            b.bits += vb + 8 * (sigma.size() + 1);
          }
          label extended = sigma;
          extended.push_back(i);
          self_stores.emplace_back(std::move(extended), stored_id);
        }
        for (auto& [sig, val] : self_stores) mine.store(sig, val);
      }
    }
    batches.flush(channels, tag);
    channels.end_round(net, faults, relay_adv);
    label sigma;
    value v;
    std::size_t q = 0;
    for (graph::node_id j : participants) {
      for (const sim::message& m : channels.inbox(j)) {
        std::size_t pos = 0;
        while (next_item(m.payload, pos, q, sigma, v)) {
          if (q >= instances.size()) continue;
          // Accept only well-formed labels of the expected round, extended
          // by the actual sender; ignore duplicates (first write wins).
          if (static_cast<int>(sigma.size()) != round - 1) continue;
          if (sigma.empty() || sigma[0] != instances[q].source) continue;
          if (contains(sigma, m.from)) continue;
          bool well_formed = true;
          for (graph::node_id id : sigma)
            if (id < 0 || id >= universe) {
              well_formed = false;
              break;
            }
          if (!well_formed) continue;  // forged ids would alias packed keys
          sigma.push_back(m.from);
          store[q][static_cast<std::size_t>(j)].store(sigma, pool.intern(v));
        }
      }
    }
  }

  // Resolution.
  for (std::size_t q = 0; q < instances.size(); ++q)
    for (graph::node_id v : participants) {
      label root{instances[q].source};
      result.decisions[q][static_cast<std::size_t>(v)] =
          pool.of(resolve(store[q][static_cast<std::size_t>(v)], root, participants,
                          rounds));
    }

  result.time = net.elapsed() - t0;
  return result;
}

}  // namespace nab::bb
