#include "bb/channels.hpp"

#include <algorithm>
#include <map>

#include "graph/connectivity.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::bb {

channel_plan::route_table channel_plan::build_routes(const graph::digraph& g, int f) {
  NAB_ASSERT(f >= 0, "fault budget must be non-negative");
  route_table routes(static_cast<std::size_t>(g.universe()) * g.universe());
  const auto nodes = g.active_nodes();
  for (graph::node_id u : nodes)
    for (graph::node_id v : nodes) {
      if (u == v) continue;
      auto& route_set = routes[static_cast<std::size_t>(u) * g.universe() + v];
      if (g.has_edge(u, v)) {
        route_set = {{u, v}};
        continue;
      }
      // 2f+1 node-disjoint paths; node_disjoint_paths throws if infeasible,
      // which violates the paper's connectivity precondition.
      try {
        route_set = graph::node_disjoint_paths(g, u, v, 2 * f + 1);
      } catch (const error& e) {
        throw error("channel_plan: pair (" + std::to_string(u) + "," +
                    std::to_string(v) + ") lacks 2f+1 disjoint paths: " + e.what());
      }
    }
  return routes;
}

channel_plan::channel_plan(const graph::digraph& g, int f)
    : channel_plan(g, f,
                   std::make_shared<const route_table>(build_routes(g, f))) {}

channel_plan::channel_plan(const graph::digraph& g, int f,
                           std::shared_ptr<const route_table> routes)
    : topo_(g),
      f_(f),
      routes_(std::move(routes)),
      inboxes_(static_cast<std::size_t>(g.universe())) {
  NAB_ASSERT(routes_ != nullptr &&
                 routes_->size() ==
                     static_cast<std::size_t>(g.universe()) * g.universe(),
             "channel_plan route table does not match the topology");
}

void channel_plan::unicast(graph::node_id from, graph::node_id to, std::uint64_t tag,
                           sim::payload payload, std::uint64_t bits) {
  NAB_ASSERT(!(*routes_)[pair_index(from, to)].empty(),
             "unicast between nodes with no planned route");
  queued_.push_back({from, to, tag, std::move(payload), bits});
}

double channel_plan::end_round(sim::network& net, const sim::fault_set& faults,
                               relay_adversary* adv) {
  for (auto& box : inboxes_) box.clear();

  for (sim::message& m : queued_) {
    const auto& route_set = (*routes_)[pair_index(m.from, m.to)];
    // Fast path: a single direct link has no interior relays to tamper and
    // is its own majority — charge it and deliver the payload by move.
    if (route_set.size() == 1 && route_set.front().size() == 2) {
      net.charge(m.from, m.to, m.bits, m.tag);
      inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
      continue;
    }
    // Charge every link of every route, noting which paths a corrupt
    // interior relay could have tampered.
    bool any_compromised = false;
    for (const auto& path : route_set) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        net.charge(path[i], path[i + 1], m.bits, m.tag);
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        if (faults.is_corrupt(path[i])) any_compromised = true;
    }
    // With no tamperable relay (or no tampering adversary) every copy is
    // the queued payload verbatim: the majority is the payload itself, so
    // deliver it by move without materializing per-route copies.
    if (!any_compromised || adv == nullptr) {
      inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
      continue;
    }
    // Compromised: collect one copy per route and majority-resolve. Ties
    // resolve to the lexicographically smallest payload so every honest
    // receiver applies the same deterministic rule.
    std::vector<sim::payload> copies;
    copies.reserve(route_set.size());
    for (const auto& path : route_set) {
      bool compromised_relay = false;
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        if (faults.is_corrupt(path[i])) compromised_relay = true;
      sim::payload copy = m.payload;
      if (compromised_relay) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        if (auto forged = adv->tamper(path, m)) copy = std::move(*forged);
      }
      copies.push_back(std::move(copy));
    }
    std::map<sim::payload, int> votes;
    for (const auto& c : copies) ++votes[c];
    const auto winner =
        std::max_element(votes.begin(), votes.end(), [](const auto& a, const auto& b) {
          return a.second < b.second ||
                 (a.second == b.second && b.first < a.first);
        });
    sim::message delivered = m;
    delivered.payload = winner->first;
    inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(delivered));
  }
  queued_.clear();
  return net.end_step();
}

const sim::message_list& channel_plan::inbox(graph::node_id v) const {
  NAB_ASSERT(v >= 0 && v < static_cast<graph::node_id>(inboxes_.size()),
             "channel inbox out of range");
  return inboxes_[static_cast<std::size_t>(v)];
}

void channel_plan::reclaim_round_storage() {
  sim::message_list().swap(queued_);
  for (auto& box : inboxes_) sim::message_list().swap(box);
}

const std::vector<std::vector<graph::node_id>>& channel_plan::routes(
    graph::node_id from, graph::node_id to) const {
  return (*routes_)[pair_index(from, to)];
}

}  // namespace nab::bb
