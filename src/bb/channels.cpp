#include "bb/channels.hpp"

#include <algorithm>
#include <map>

#include "graph/connectivity.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::bb {

std::vector<std::vector<graph::node_id>> route_table::decode(graph::node_id from,
                                                             graph::node_id to) const {
  std::vector<std::vector<graph::node_id>> out;
  for (const path_view p : at(from, to)) out.emplace_back(p.begin(), p.end());
  return out;
}

channel_plan::source_block channel_plan::build_routes_for_source(const graph::digraph& g,
                                                                 int f,
                                                                 graph::node_id u) {
  NAB_ASSERT(f >= 0, "fault budget must be non-negative");
  const int n = g.universe();
  source_block block;
  block.path_count.assign(static_cast<std::size_t>(n), 0);
  if (!g.is_active(u)) return block;

  // One residual network per source, warm-started across its n-1 sinks.
  graph::disjoint_path_finder finder(g);
  for (graph::node_id v = 0; v < n; ++v) {
    if (v == u || !g.is_active(v)) continue;
    if (g.has_edge(u, v)) {
      block.pool.push_back(u);
      block.pool.push_back(v);
      block.path_end.push_back(static_cast<std::uint32_t>(block.pool.size()));
      block.path_count[static_cast<std::size_t>(v)] = 1;
      ++block.pairs;
      continue;
    }
    // 2f+1 node-disjoint paths; infeasibility violates the paper's
    // connectivity precondition and is reported per pair.
    std::vector<std::vector<graph::node_id>> paths;
    try {
      paths = finder.find(u, v, 2 * f + 1);
    } catch (const error& e) {
      block.error = "channel_plan: pair (" + std::to_string(u) + "," +
                    std::to_string(v) + ") lacks 2f+1 disjoint paths: " + e.what();
      return block;
    }
    for (const auto& p : paths) {
      block.pool.insert(block.pool.end(), p.begin(), p.end());
      block.path_end.push_back(static_cast<std::uint32_t>(block.pool.size()));
    }
    block.path_count[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(paths.size());
    ++block.pairs;
  }
  block.flow_augmentations = finder.augmentations();
  return block;
}

channel_plan::route_table channel_plan::assemble(const graph::digraph& g,
                                                 std::vector<source_block> blocks) {
  const int n = g.universe();
  NAB_ASSERT(blocks.size() == static_cast<std::size_t>(n),
             "assemble needs one block per source");
  for (const auto& block : blocks)
    if (!block.error.empty()) throw error(block.error);

  route_table out;
  out.n_ = n;
  std::size_t pool_total = 0, paths_total = 0;
  for (const auto& block : blocks) {
    pool_total += block.pool.size();
    paths_total += block.path_end.size();
  }
  out.pool_.reserve(pool_total);
  out.path_end_.reserve(paths_total);
  out.pair_end_.reserve(static_cast<std::size_t>(n) * n);

  std::uint32_t paths_so_far = 0;
  for (const auto& block : blocks) {
    const std::uint32_t pool_base = static_cast<std::uint32_t>(out.pool_.size());
    out.pool_.insert(out.pool_.end(), block.pool.begin(), block.pool.end());
    for (const std::uint32_t e : block.path_end) out.path_end_.push_back(pool_base + e);
    for (int v = 0; v < n; ++v) {
      paths_so_far += block.path_count[static_cast<std::size_t>(v)];
      out.pair_end_.push_back(paths_so_far);
    }
    out.stats_.pairs += block.pairs;
    out.stats_.flow_augmentations += block.flow_augmentations;
  }
  return out;
}

channel_plan::route_table channel_plan::build_routes(const graph::digraph& g, int f) {
  const int n = g.universe();
  std::vector<source_block> blocks;
  blocks.reserve(static_cast<std::size_t>(n));
  for (graph::node_id u = 0; u < n; ++u) {
    blocks.push_back(build_routes_for_source(g, f, u));
    // Surface the failure immediately (same first-failing-pair error as the
    // per-pair reference builder).
    if (!blocks.back().error.empty()) throw error(blocks.back().error);
  }
  return assemble(g, std::move(blocks));
}

channel_plan::channel_plan(const graph::digraph& g, int f)
    : channel_plan(g, f,
                   std::make_shared<const route_table>(build_routes(g, f))) {}

channel_plan::channel_plan(const graph::digraph& g, int f,
                           std::shared_ptr<const route_table> routes)
    : topo_(g),
      f_(f),
      routes_(std::move(routes)),
      inboxes_(static_cast<std::size_t>(g.universe())) {
  NAB_ASSERT(routes_ != nullptr && routes_->universe() == g.universe(),
             "channel_plan route table does not match the topology");
}

void channel_plan::unicast(graph::node_id from, graph::node_id to, std::uint64_t tag,
                           sim::payload payload, std::uint64_t bits) {
  NAB_ASSERT(!routes_->at(from, to).empty(),
             "unicast between nodes with no planned route");
  queued_.push_back({from, to, tag, std::move(payload), bits});
}

double channel_plan::end_round(sim::network& net, const sim::fault_set& faults,
                               relay_adversary* adv) {
  for (auto& box : inboxes_) box.clear();

  // Per-path delivery flags, tracked only under an attached fault model so
  // the clean path stays allocation-free. Hoisted across messages.
  const bool lossy_net = net.link_faults() != nullptr;
  std::vector<char> arrived;

  for (sim::message& m : queued_) {
    const route_table::route_view route_set = routes_->at(m.from, m.to);
    // Fast path: a single direct link has no interior relays to tamper and
    // is its own majority — transmit it (link-layer ARQ under loss) and
    // deliver the payload by move. A budget-exhausted copy degrades to the
    // receiver's missing-message default.
    if (route_set.size() == 1 && route_set[0].size() == 2) {
      if (net.lossy_transmit(m.from, m.to, m.bits, m.tag))
        inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
      continue;
    }
    // Transmit every link of every route (each hop runs its own ARQ loop;
    // a copy survives iff every hop of its path got through, and a dropped
    // copy never charges the hops past the failure), noting which *arrived*
    // paths a corrupt interior relay could have tampered. Paths are
    // contiguous node spans in the flat pool, so this is a linear walk.
    bool any_compromised = false;
    std::size_t live = 0;
    arrived.clear();
    for (const route_table::path_view path : route_set) {
      bool ok = true;
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        if (!net.lossy_transmit(path[i], path[i + 1], m.bits, m.tag)) {
          ok = false;
          break;
        }
      if (lossy_net) arrived.push_back(ok ? 1 : 0);
      if (!ok) continue;
      ++live;
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        if (faults.is_corrupt(path[i])) any_compromised = true;
    }
    // Every copy erased in transit: the receiver sees nothing and falls
    // back to its missing-message default (vanishingly rare within budget).
    if (live == 0) continue;
    // With no tamperable relay on a surviving path (or no tampering
    // adversary) every delivered copy is the queued payload verbatim: the
    // majority is the payload itself, so deliver it by move without
    // materializing per-route copies.
    if (!any_compromised || adv == nullptr) {
      inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(m));
      continue;
    }
    // Compromised: collect one copy per surviving route and majority-
    // resolve. Ties resolve to the lexicographically smallest payload so
    // every honest receiver applies the same deterministic rule.
    std::vector<sim::payload> copies;
    copies.reserve(live);
    std::size_t path_idx = 0;
    for (const route_table::path_view path : route_set) {
      const std::size_t idx = path_idx++;
      if (lossy_net && arrived[idx] == 0) continue;
      bool compromised_relay = false;
      for (std::size_t i = 1; i + 1 < path.size(); ++i)
        if (faults.is_corrupt(path[i])) compromised_relay = true;
      sim::payload copy = m.payload;
      if (compromised_relay) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        const std::vector<graph::node_id> path_nodes(path.begin(), path.end());
        if (auto forged = adv->tamper(path_nodes, m)) copy = std::move(*forged);
      }
      copies.push_back(std::move(copy));
    }
    std::map<sim::payload, int> votes;
    for (const auto& c : copies) ++votes[c];
    const auto winner =
        std::max_element(votes.begin(), votes.end(), [](const auto& a, const auto& b) {
          return a.second < b.second ||
                 (a.second == b.second && b.first < a.first);
        });
    sim::message delivered = m;
    delivered.payload = winner->first;
    inboxes_[static_cast<std::size_t>(m.to)].push_back(std::move(delivered));
  }
  queued_.clear();
  return net.end_step();
}

const sim::message_list& channel_plan::inbox(graph::node_id v) const {
  NAB_ASSERT(v >= 0 && v < static_cast<graph::node_id>(inboxes_.size()),
             "channel inbox out of range");
  return inboxes_[static_cast<std::size_t>(v)];
}

void channel_plan::reclaim_round_storage() {
  sim::message_list().swap(queued_);
  for (auto& box : inboxes_) sim::message_list().swap(box);
}

}  // namespace nab::bb
