#pragma once

#include <cstdint>
#include <vector>

#include "bb/channels.hpp"
#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::bb {

/// Logical value carried by classical BB: opaque words. The empty vector is
/// the *default value* that the model substitutes for missing messages.
/// Arena-backed (sim/run_arena.hpp): every relayed copy of a value inside a
/// run draws from the per-run arena when one is ambient.
using value = sim::payload;

/// Adversary hooks for corrupt participants of EIG broadcast. Every method
/// receives the value an honest node would have sent and may return anything
/// (including the empty/default value, which models "not sending").
class eig_adversary {
 public:
  virtual ~eig_adversary() = default;

  /// Round-1 value a corrupt *source* sends to `receiver` (equivocation
  /// point: different receivers may get different values).
  virtual value source_value(graph::node_id source, graph::node_id receiver,
                             const value& honest) {
    (void)source;
    (void)receiver;
    return honest;
  }

  /// Value a corrupt node relays for EIG label `sigma` to `receiver` in
  /// rounds >= 2.
  virtual value relay_value(graph::node_id sender, graph::node_id receiver,
                            const std::vector<graph::node_id>& sigma,
                            const value& honest) {
    (void)sender;
    (void)receiver;
    (void)sigma;
    return honest;
  }
};

/// One broadcast instance: `source` wants to broadcast `input`.
struct eig_instance {
  graph::node_id source = 0;
  value input;
  /// Wire size charged per transmitted value for this instance; 0 means
  /// "use the call-level value_bits".
  std::uint64_t value_bits = 0;
};

/// Result of a batch of EIG broadcasts.
struct eig_result {
  /// decisions[q][v] = what node v decided for instance q. Entries for
  /// corrupt v are whatever the protocol state happened to be — only honest
  /// nodes' decisions are meaningful.
  std::vector<std::vector<value>> decisions;
  /// Simulated time consumed (all instances share rounds).
  double time = 0.0;
};

/// Exponential Information Gathering Byzantine broadcast — the classical
/// Pease–Shostak–Lamport algorithm [19] the paper invokes for step 2.2 and
/// Phase 3. Runs f+1 rounds; correct whenever the number of participants
/// (active nodes of the channel plan's topology) exceeds 3f.
///
/// All instances run simultaneously, sharing the f+1 communication rounds —
/// this is how NAB broadcasts n 1-bit flags "in parallel" without paying n
/// sequential protocol executions.
///
/// `value_bits` is the wire size charged per transmitted value; label
/// routing overhead is charged on top (8 bits per label entry). `tag`
/// labels every round's unicasts for trace-level wire accounting (the
/// Phase-3 claim path passes bb::claim_traffic_tag; flags keep 0).
eig_result eig_broadcast_all(channel_plan& channels, sim::network& net,
                             const sim::fault_set& faults,
                             const std::vector<eig_instance>& instances, int f,
                             std::uint64_t value_bits, eig_adversary* adv = nullptr,
                             relay_adversary* relay_adv = nullptr,
                             std::uint64_t tag = 0);

}  // namespace nab::bb
