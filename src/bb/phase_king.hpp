#pragma once

#include <cstdint>
#include <vector>

#include "bb/channels.hpp"
#include "bb/eig.hpp"
#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::bb {

/// Adversary hooks for corrupt participants of phase-king consensus.
class pk_adversary {
 public:
  virtual ~pk_adversary() = default;

  /// Value a corrupt node reports during an all-to-all exchange round.
  /// `phase` counts from 0; `is_king_round` marks the king's broadcast.
  virtual std::uint64_t exchange_value(graph::node_id sender, graph::node_id receiver,
                                       int phase, bool is_king_round,
                                       std::uint64_t honest) {
    (void)sender;
    (void)receiver;
    (void)phase;
    (void)is_king_round;
    return honest;
  }
};

/// Result of a phase-king run.
struct pk_result {
  /// decided[v] = final value at node v (meaningful for honest v).
  std::vector<std::uint64_t> decided;
  double time = 0.0;
};

/// Single-word phase-king consensus (the simple two-round-per-phase variant,
/// e.g. Attiya & Welch §5.2.5). f+1 phases; every honest node decides the
/// same value, equal to the common input when all honest inputs agree.
///
/// Resilience: requires participants > 4f (the price of its simplicity; use
/// EIG for optimal n > 3f resilience). The library's broadcast_default picks
/// automatically.
///
/// `initial[v]` is node v's input (indexed by node id over the topology
/// universe; only active-node entries are read).
pk_result phase_king_consensus(channel_plan& channels, sim::network& net,
                               const sim::fault_set& faults,
                               const std::vector<std::uint64_t>& initial, int f,
                               std::uint64_t value_bits, pk_adversary* adv = nullptr,
                               relay_adversary* relay_adv = nullptr);

/// Byzantine broadcast built on phase-king: the source disseminates its
/// value (one round), then everyone runs consensus on what they received.
/// Validity holds because an honest source gives all honest nodes equal
/// inputs.
pk_result phase_king_broadcast(channel_plan& channels, sim::network& net,
                               const sim::fault_set& faults, graph::node_id source,
                               std::uint64_t input, int f, std::uint64_t value_bits,
                               pk_adversary* adv = nullptr,
                               relay_adversary* relay_adv = nullptr);

}  // namespace nab::bb
