#pragma once

#include <cstdint>
#include <vector>

#include "bb/channels.hpp"
#include "bb/eig.hpp"
#include "bb/phase_king.hpp"

namespace nab::bb {

/// Which classical BB engine to run underneath broadcast_default.
enum class bb_protocol {
  auto_select,  ///< phase-king when participants > 4f and value fits a word, else EIG
  eig,          ///< PSL'80 exponential information gathering (n > 3f)
  phase_king,   ///< simple phase-king (n > 4f, single-word values)
};

/// Outcome of one classical Byzantine broadcast.
struct broadcast_outcome {
  /// decisions[v] = value decided by node v (meaningful for honest v only).
  std::vector<value> decisions;
  double time = 0.0;
};

/// The paper's "Broadcast Default": a capacity-oblivious classical BB
/// protocol used for the 1-bit flags of step 2.2 and the claim dumps of
/// Phase 3. Correct for any topology with connectivity >= 2f+1 (channels
/// emulate the complete graph) and more than 3f participants.
broadcast_outcome broadcast_default(channel_plan& channels, sim::network& net,
                                    const sim::fault_set& faults,
                                    graph::node_id source, const value& input, int f,
                                    std::uint64_t value_bits,
                                    bb_protocol protocol = bb_protocol::auto_select,
                                    eig_adversary* eig_adv = nullptr,
                                    pk_adversary* pk_adv = nullptr,
                                    relay_adversary* relay_adv = nullptr);

/// Result of broadcasting one flag per participant (NAB step 2.2).
struct flags_outcome {
  /// agreed[source][v] = the bit node v decided for `source`'s flag.
  /// Indexed by node id over the universe (inactive entries unused).
  std::vector<std::vector<bool>> agreed;
  double time = 0.0;
};

/// Broadcasts a 1-bit flag from each node in `sources`, batched over shared
/// EIG rounds. `flags[v]` is node v's honest input flag; corrupt nodes
/// announce whatever `adv` chooses. All active nodes of the channel plan's
/// topology participate as relays/voters (NAB runs this over the original
/// network G even as G_k shrinks; honest nodes simply ignore flags from
/// nodes outside V_k — hence the explicit source list).
flags_outcome broadcast_flags(channel_plan& channels, sim::network& net,
                              const sim::fault_set& faults,
                              const std::vector<bool>& flags, int f,
                              const std::vector<graph::node_id>& sources,
                              eig_adversary* adv = nullptr,
                              relay_adversary* relay_adv = nullptr);

/// Phase-king variant of broadcast_flags: one phase-king broadcast per
/// source, run back to back. Needs participants > 4f — checked by
/// bb::phase_king_admissible (bb/claim_bcast.hpp) at this function's entry,
/// with the same predicate applied by every auto_select boundary
/// (core::session validates explicit selections at construction), so an
/// undersized participant set is a clean registry/session-time rejection,
/// never a late invariant failure mid-run. Polynomial message complexity
/// (vs EIG's n^f), at the cost of f+2 rounds per source instead of f+1
/// rounds total. The session exposes the choice; either way the cost is
/// independent of L (the only property NAB's analysis uses).
flags_outcome broadcast_flags_phase_king(channel_plan& channels, sim::network& net,
                                         const sim::fault_set& faults,
                                         const std::vector<bool>& flags, int f,
                                         const std::vector<graph::node_id>& sources,
                                         pk_adversary* adv = nullptr,
                                         relay_adversary* relay_adv = nullptr);

}  // namespace nab::bb
