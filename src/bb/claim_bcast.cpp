#include "bb/claim_bcast.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "bb/round_batch.hpp"
#include "gf/gf2_16.hpp"
#include "obs/obs.hpp"
#include "sim/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nab::bb {
namespace {

// Traces and timelines print "claim" instead of the raw tag constant.
[[maybe_unused]] const bool claim_tag_registered =
    (sim::register_tag_name(claim_traffic_tag, "claim"), true);

// ---------------------------------------------------------------------------
// Digest: polynomial evaluation over GF(2^16) at four seeded points.
// ---------------------------------------------------------------------------

/// Per-point multiplication tables: digesting is one table hit + one xor per
/// limb per point, so verifying an n=64 transcript batch stays cheap enough
/// to run once per (claimant, receiver) pair. ~512 KiB per point set.
struct digest_tables {
  std::array<std::uint16_t, 4> points;
  std::array<std::array<std::uint16_t, 65536>, 4> mul;

  explicit digest_tables(std::uint64_t seed) {
    // Four distinct nonzero evaluation points drawn from the seed (the
    // session feeds its per-run coding_seed): collision-finding against
    // them is the same seeded-randomness bet as against the Theorem-1
    // coding matrices, instead of closed-form linear algebra over points an
    // adversary could read off the source.
    rng rand(seed ^ 0xd16e57ULL);
    for (std::size_t k = 0; k < points.size(); ++k) {
      for (;;) {
        const auto candidate =
            static_cast<std::uint16_t>(rand.below(65535) + 1);  // nonzero
        bool fresh = true;
        for (std::size_t j = 0; j < k; ++j) fresh = fresh && points[j] != candidate;
        if (fresh) {
          points[k] = candidate;
          break;
        }
      }
      for (unsigned a = 0; a < 65536; ++a)
        mul[k][a] = gf::gf2_16::mul(static_cast<std::uint16_t>(a), points[k]);
    }
  }
};

/// One-entry thread-local cache: a session digests under a single seed for
/// its whole lifetime, so the tables are rebuilt only when a shard moves to
/// the next run (4 * 65536 field mults, ~1 ms) — and never shared across
/// threads.
const digest_tables& digests_for(std::uint64_t seed) {
  thread_local std::unique_ptr<digest_tables> cached;
  thread_local std::uint64_t cached_seed = 0;
  if (cached == nullptr || cached_seed != seed) {
    cached = std::make_unique<digest_tables>(seed);
    cached_seed = seed;
  }
  return *cached;
}

}  // namespace

claim_digest claim_digest_of(const value& payload, std::uint64_t seed) {
  const digest_tables& t = digests_for(seed);
  // 4 limbs x 4 points per absorbed word (plus the length word), counted in
  // bulk so the ambient check stays out of the Horner loop.
  obs::count(obs::counter::gf_mul_ops, 16 * (payload.size() + 1));
  // Horner per point over the limb stream [len limbs..., payload limbs...];
  // accumulators start at 1 so leading zero limbs still shift the state.
  std::array<std::uint16_t, 4> acc = {1, 1, 1, 1};
  const auto absorb = [&](std::uint64_t word) {
    for (int limb = 0; limb < 4; ++limb) {
      const auto w = static_cast<std::uint16_t>(word >> (16 * limb));
      for (std::size_t k = 0; k < 4; ++k)
        acc[k] = static_cast<std::uint16_t>(t.mul[k][acc[k]] ^ w);
    }
  };
  absorb(static_cast<std::uint64_t>(payload.size()));
  for (std::uint64_t word : payload) absorb(word);
  claim_digest d;
  d.words = acc;
  return d;
}

std::vector<claim_digest> claim_digests_of(const std::vector<const value*>& payloads,
                                           std::uint64_t seed) {
  std::vector<claim_digest> out(payloads.size());
  // Same-length payloads advance in lockstep: per absorbed limb, each point's
  // accumulator row is one gf2_16::scale pass (multiply the whole row by the
  // evaluation point) followed by a limb xor. A group of one keeps the
  // scalar table walk — the row pass only pays off with real width.
  std::vector<std::size_t> order(payloads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return payloads[a]->size() < payloads[b]->size();
  });
  const digest_tables& t = digests_for(seed);
  std::array<std::vector<std::uint16_t>, 4> acc;
  std::vector<std::uint16_t> limbs;
  std::size_t lo = 0;
  while (lo < order.size()) {
    const std::size_t m = payloads[order[lo]]->size();
    std::size_t hi = lo + 1;
    while (hi < order.size() && payloads[order[hi]]->size() == m) ++hi;
    const std::size_t rows = hi - lo;
    if (rows == 1) {
      out[order[lo]] = claim_digest_of(*payloads[order[lo]], seed);
      lo = hi;
      continue;
    }
    for (auto& row : acc) row.assign(rows, 1);
    limbs.resize(rows);
    for (std::size_t j = 0; j <= m; ++j) {
      for (int limb = 0; limb < 4; ++limb) {
        for (std::size_t i = 0; i < rows; ++i) {
          const value& p = *payloads[order[lo + i]];
          const std::uint64_t word =
              j == 0 ? static_cast<std::uint64_t>(m) : p[j - 1];
          limbs[i] = static_cast<std::uint16_t>(word >> (16 * limb));
        }
        for (std::size_t k = 0; k < 4; ++k) {
          gf::gf2_16::scale(acc[k].data(), t.points[k], rows);
          for (std::size_t i = 0; i < rows; ++i)
            acc[k][i] = static_cast<std::uint16_t>(acc[k][i] ^ limbs[i]);
        }
      }
    }
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t k = 0; k < 4; ++k) out[order[lo + i]].words[k] = acc[k][i];
    lo = hi;
  }
  return out;
}

claim_backend resolve_claim_backend(claim_backend requested,
                                    std::size_t participants, int f) {
  if (requested != claim_backend::auto_select) return requested;
  // EIG forwards every label of every round: sum_{r<=f} n^r labels per
  // instance, each relayed to n receivers, each carrying the full L-bit
  // transcript. Past ~2k forwarded labels per instance that term dominates
  // DC1, so auto hands claims to the collapsed backend (correct for any
  // n > 3f). Registry-size inputs (n <= 64, f <= 9) cannot overflow.
  std::uint64_t labels = 1, level = 1;
  for (int r = 0; r < f; ++r) {
    level *= participants;
    labels += level;
  }
  return labels * participants > 2048 ? claim_backend::collapsed
                                      : claim_backend::eig;
}

namespace {

// ---------------------------------------------------------------------------
// Wire plumbing: shared round batches (bb/round_batch.hpp), defensive
// parsing. Every claim-backend unicast is tagged claim_traffic_tag.
// ---------------------------------------------------------------------------

// Item encodings (64-bit transport words):
//   payload item: [q, len, words...]          (dissemination, responses)
//   tagged item:  [q, digest, len, words...]  (collapsed propose)
//   digest item:  [q, digest]                 (echo, ready)
//   index item:   [q]                         (retrieval requests)
// Parsers are defensive: a tampered batch yields as many well-formed prefix
// items as survive, mirroring bb/eig.cpp's next_item.

void append_payload_item(sim::payload& out, std::size_t q, const value& v) {
  out.push_back(q);
  out.push_back(v.size());
  out.insert(out.end(), v.begin(), v.end());
}

bool next_payload_item(const sim::payload& w, std::size_t& pos, std::size_t& q,
                       value& v) {
  if (pos >= w.size() || w.size() - pos < 2) {
    pos = w.size();
    return false;
  }
  q = static_cast<std::size_t>(w[pos]);
  const std::uint64_t len = w[pos + 1];
  if (len > w.size() - pos - 2) {
    pos = w.size();
    return false;
  }
  v.assign(w.begin() + static_cast<std::ptrdiff_t>(pos + 2),
           w.begin() + static_cast<std::ptrdiff_t>(pos + 2 + len));
  pos += 2 + static_cast<std::size_t>(len);
  return true;
}

void append_propose_item(sim::payload& out, std::size_t q, std::uint64_t digest,
                         const value& v) {
  out.push_back(q);
  out.push_back(digest);
  out.push_back(v.size());
  out.insert(out.end(), v.begin(), v.end());
}

bool next_propose_item(const sim::payload& w, std::size_t& pos, std::size_t& q,
                       std::uint64_t& digest, value& v) {
  if (pos >= w.size() || w.size() - pos < 3) {
    pos = w.size();
    return false;
  }
  q = static_cast<std::size_t>(w[pos]);
  digest = w[pos + 1];
  const std::uint64_t len = w[pos + 2];
  if (len > w.size() - pos - 3) {
    pos = w.size();
    return false;
  }
  v.assign(w.begin() + static_cast<std::ptrdiff_t>(pos + 3),
           w.begin() + static_cast<std::ptrdiff_t>(pos + 3 + len));
  pos += 3 + static_cast<std::size_t>(len);
  return true;
}

void append_digest_item(sim::payload& out, std::size_t q, std::uint64_t digest) {
  out.push_back(q);
  out.push_back(digest);
}

bool next_digest_item(const sim::payload& w, std::size_t& pos, std::size_t& q,
                      std::uint64_t& digest) {
  if (pos >= w.size() || w.size() - pos < 2) {
    pos = w.size();
    return false;
  }
  q = static_cast<std::size_t>(w[pos]);
  digest = w[pos + 1];
  pos += 2;
  return true;
}

bool next_index_item(const sim::payload& w, std::size_t& pos, std::size_t& q) {
  if (pos >= w.size()) return false;
  q = static_cast<std::size_t>(w[pos]);
  ++pos;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// EIG oracle backend.
// ---------------------------------------------------------------------------

claim_outcome broadcast_claims_eig(channel_plan& channels, sim::network& net,
                                   const sim::fault_set& faults,
                                   const std::vector<claim_instance>& instances,
                                   int f, eig_adversary* adv,
                                   relay_adversary* relay_adv) {
  std::vector<eig_instance> eigs;
  eigs.reserve(instances.size());
  for (const claim_instance& inst : instances) {
    NAB_ASSERT(inst.value_bits > 0, "claim instance needs a wire size");
    eigs.push_back({inst.source, inst.input, inst.value_bits});
  }
  eig_result eig = eig_broadcast_all(channels, net, faults, eigs, f,
                                     /*value_bits=*/64, adv, relay_adv,
                                     claim_traffic_tag);
  claim_outcome out;
  out.agreed = std::move(eig.decisions);
  out.time = eig.time;
  return out;
}

// ---------------------------------------------------------------------------
// Batched multi-valued phase-king backend.
// ---------------------------------------------------------------------------

claim_outcome broadcast_claims_phase_king(
    channel_plan& channels, sim::network& net, const sim::fault_set& faults,
    const std::vector<claim_instance>& instances, int f,
    relay_adversary* relay_adv) {
  const std::vector<graph::node_id> participants =
      channels.topology().active_nodes();
  const auto np = static_cast<int>(participants.size());
  NAB_ASSERT(phase_king_admissible(participants.size(), f),
             "phase-king claim backend requires more than 4f participants — "
             "auto_select boundaries must reject this configuration up front");
  const int universe = channels.topology().universe();
  const std::size_t q_count = instances.size();

  claim_outcome out;
  out.agreed.assign(q_count,
                    std::vector<value>(static_cast<std::size_t>(universe)));
  if (q_count == 0) return out;

  const double t0 = net.elapsed();
  round_batches batches(universe, participants);

  // cur[q][v]: node v's current value for instance q (empty = default).
  std::vector<std::vector<value>> cur(
      q_count, std::vector<value>(static_cast<std::size_t>(universe)));

  // Dissemination round: each claimant unicasts its transcript to everyone.
  for (std::size_t q = 0; q < q_count; ++q) {
    const claim_instance& inst = instances[q];
    NAB_ASSERT(channels.topology().is_active(inst.source),
               "claimant must participate");
    NAB_ASSERT(inst.value_bits > 0, "claim instance needs a wire size");
    cur[q][static_cast<std::size_t>(inst.source)] = inst.input;
    for (graph::node_id r : participants) {
      if (r == inst.source) continue;
      round_batch& b = batches.at(inst.source, r);
      append_payload_item(b.payload, q, inst.input);
      b.bits += inst.value_bits + 16;
    }
  }
  batches.flush(channels, claim_traffic_tag);
  channels.end_round(net, faults, relay_adv);
  for (graph::node_id r : participants) {
    for (const sim::message& m : channels.inbox(r)) {
      std::size_t pos = 0, q = 0;
      value v;
      while (next_payload_item(m.payload, pos, q, v)) {
        if (q >= q_count || m.from != instances[q].source) continue;
        cur[q][static_cast<std::size_t>(r)] = v;
      }
    }
  }

  // f+1 phases of (all-to-all exchange, king broadcast), rounds shared by
  // all instances. Majority counting works on whole payloads; ties resolve
  // to the lexicographically smallest payload at every honest node.
  for (int phase = 0; phase <= f; ++phase) {
    for (graph::node_id i : participants)
      for (graph::node_id j : participants) {
        if (j == i) continue;
        round_batch& b = batches.at(i, j);
        for (std::size_t q = 0; q < q_count; ++q) {
          append_payload_item(b.payload, q, cur[q][static_cast<std::size_t>(i)]);
          b.bits += instances[q].value_bits + 16;
        }
      }
    batches.flush(channels, claim_traffic_tag);
    channels.end_round(net, faults, relay_adv);

    std::vector<std::vector<value>> maj(
        q_count, std::vector<value>(static_cast<std::size_t>(universe)));
    std::vector<std::vector<int>> mult(
        q_count, std::vector<int>(static_cast<std::size_t>(universe), 0));
    {
      // votes[q] for the receiver currently being resolved.
      std::vector<std::map<value, int>> votes(q_count);
      std::vector<bool> seen(q_count, false);
      for (graph::node_id v : participants) {
        for (auto& m : votes) m.clear();
        for (std::size_t q = 0; q < q_count; ++q)
          ++votes[q][cur[q][static_cast<std::size_t>(v)]];  // own value counts
        for (const sim::message& m : channels.inbox(v)) {
          std::fill(seen.begin(), seen.end(), false);
          std::size_t pos = 0, q = 0;
          value val;
          while (next_payload_item(m.payload, pos, q, val)) {
            if (q >= q_count || seen[q]) continue;
            seen[q] = true;
            ++votes[q][val];
          }
        }
        for (std::size_t q = 0; q < q_count; ++q) {
          int best = 0;
          const value* best_val = nullptr;
          for (const auto& [val, count] : votes[q])
            if (count > best) {  // map order: first max is the smallest value
              best = count;
              best_val = &val;
            }
          maj[q][static_cast<std::size_t>(v)] = best_val ? *best_val : value{};
          mult[q][static_cast<std::size_t>(v)] = best;
        }
      }
    }

    const graph::node_id king =
        participants[static_cast<std::size_t>(phase) % participants.size()];
    for (graph::node_id j : participants) {
      if (j == king) continue;
      round_batch& b = batches.at(king, j);
      for (std::size_t q = 0; q < q_count; ++q) {
        append_payload_item(b.payload, q, maj[q][static_cast<std::size_t>(king)]);
        b.bits += instances[q].value_bits + 16;
      }
    }
    batches.flush(channels, claim_traffic_tag);
    channels.end_round(net, faults, relay_adv);

    for (graph::node_id v : participants) {
      std::vector<value> king_val(q_count);
      if (v != king)
        for (const sim::message& m : channels.inbox(v)) {
          if (m.from != king) continue;
          std::size_t pos = 0, q = 0;
          value val;
          while (next_payload_item(m.payload, pos, q, val))
            if (q < q_count) king_val[q] = val;
        }
      for (std::size_t q = 0; q < q_count; ++q) {
        const bool confident =
            2 * mult[q][static_cast<std::size_t>(v)] > np + 2 * f;
        cur[q][static_cast<std::size_t>(v)] =
            (confident || v == king) ? maj[q][static_cast<std::size_t>(v)]
                                     : king_val[q];
      }
    }
  }

  for (std::size_t q = 0; q < q_count; ++q)
    for (graph::node_id v : participants)
      out.agreed[q][static_cast<std::size_t>(v)] =
          cur[q][static_cast<std::size_t>(v)];
  out.time = net.elapsed() - t0;
  return out;
}

// ---------------------------------------------------------------------------
// Collapsed-claim Bracha-style backend.
// ---------------------------------------------------------------------------

namespace {

/// Per-(node, instance) protocol state of the collapsed backend.
struct collapsed_slot {
  value direct;                      ///< transcript copy from the claimant
  bool has_direct = false;
  std::uint64_t direct_digest = 0;   ///< digest of `direct` (valid iff has_direct)
  std::optional<std::uint64_t> announced;  ///< digest the claimant announced
  /// Echo senders per digest (sorted): the vote counts for the quorum, and —
  /// because honest nodes echo only while holding a matching transcript —
  /// the requester's address book for the retrieval round.
  std::map<std::uint64_t, std::set<graph::node_id>> echo_from;
  std::map<std::uint64_t, std::set<graph::node_id>> ready_from;
  std::optional<std::uint64_t> ready_sent;
  std::optional<std::uint64_t> pending_ready;
  std::optional<std::uint64_t> accepted;
  bool need_fallback = false;
  bool resolved_by_fallback = false;

  /// True iff the direct copy matches digest d (the "holder" predicate).
  bool holds(std::uint64_t d) const { return has_direct && direct_digest == d; }
};

}  // namespace

claim_outcome broadcast_claims_collapsed(
    channel_plan& channels, sim::network& net, const sim::fault_set& faults,
    const std::vector<claim_instance>& instances, int f, claim_adversary* adv,
    relay_adversary* relay_adv, std::uint64_t digest_seed) {
  const std::vector<graph::node_id> participants =
      channels.topology().active_nodes();
  const auto np = static_cast<int>(participants.size());
  NAB_ASSERT(np > 3 * f, "collapsed claim broadcast requires more than 3f participants");
  const int universe = channels.topology().universe();
  const std::size_t q_count = instances.size();

  claim_outcome out;
  out.agreed.assign(q_count,
                    std::vector<value>(static_cast<std::size_t>(universe)));
  if (q_count == 0) return out;

  // Quorums: an echo quorum > (np + f)/2 admits at most one digest per
  // claimant; accepting needs 2f+1 readys (>= f+1 honest), and f+1 readys
  // amplify — the standard Bracha arithmetic, run to quiescence below.
  const int echo_quorum = (np + f) / 2 + 1;
  const int ready_accept = 2 * f + 1;
  const int ready_amplify = f + 1;

  const double t0 = net.elapsed();
  round_batches batches(universe, participants);
  std::vector<std::vector<collapsed_slot>> st(
      static_cast<std::size_t>(universe), std::vector<collapsed_slot>(q_count));
  const auto slot = [&](graph::node_id v, std::size_t q) -> collapsed_slot& {
    return st[static_cast<std::size_t>(v)][q];
  };

  // ---- Round 1 (PROPOSE): digest + the single direct transcript copy. ----
  obs::scoped_span propose_span("claim_propose", net.elapsed());
  for (std::size_t q = 0; q < q_count; ++q) {
    const claim_instance& inst = instances[q];
    NAB_ASSERT(channels.topology().is_active(inst.source),
               "claimant must participate");
    NAB_ASSERT(inst.value_bits > 0, "claim instance needs a wire size");
    const claim_digest honest_digest = claim_digest_of(inst.input, digest_seed);
    {
      collapsed_slot& self = slot(inst.source, q);
      self.direct = inst.input;
      self.has_direct = true;
      self.direct_digest = honest_digest.packed();
      self.announced = honest_digest.packed();
    }
    const bool may_lie = faults.is_corrupt(inst.source) && adv != nullptr;
    for (graph::node_id r : participants) {
      if (r == inst.source) continue;
      const value* pl = &inst.input;
      std::uint64_t dg = honest_digest.packed();
      value forged;
      if (may_lie) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        forged = adv->propose_payload(inst.source, r, inst.input);
        dg = adv->announce_digest(inst.source, r,
                                  claim_digest_of(forged, digest_seed))
                 .packed();
        pl = &forged;
      }
      round_batch& b = batches.at(inst.source, r);
      append_propose_item(b.payload, q, dg, *pl);
      b.bits += inst.value_bits + claim_digest_bits + 16;
    }
  }
  batches.flush(channels, claim_traffic_tag);
  channels.end_round(net, faults, relay_adv);
  {
    // Absorb every accepted proposal first, then digest the whole round in
    // one batch: each accepted slot is digested exactly once either way, so
    // the batch only widens the rows the gf2_16 kernels see.
    std::vector<collapsed_slot*> filled;
    for (graph::node_id r : participants) {
      for (const sim::message& m : channels.inbox(r)) {
        std::size_t pos = 0, q = 0;
        std::uint64_t dg = 0;
        value v;
        while (next_propose_item(m.payload, pos, q, dg, v)) {
          if (q >= q_count || m.from != instances[q].source) continue;
          collapsed_slot& s = slot(r, q);
          if (s.announced) continue;  // first proposal wins
          s.announced = dg;
          s.direct = std::move(v);
          s.has_direct = true;
          filled.push_back(&s);
        }
      }
    }
    std::vector<const value*> transcripts;
    transcripts.reserve(filled.size());
    for (const collapsed_slot* s : filled) transcripts.push_back(&s->direct);
    const std::vector<claim_digest> digests =
        claim_digests_of(transcripts, digest_seed);
    for (std::size_t i = 0; i < filled.size(); ++i)
      filled[i]->direct_digest = digests[i].packed();
  }
  propose_span.close(net.elapsed());

  // ---- Round 2 (ECHO): a node echoes a digest only while holding a ----
  // ---- matching transcript, so any echo quorum guarantees >= f+1    ----
  // ---- honest holders — what makes the retrieval round total.       ----
  obs::scoped_span echo_span("claim_echo", net.elapsed());
  for (graph::node_id i : participants) {
    const bool may_lie = faults.is_corrupt(i) && adv != nullptr;
    for (graph::node_id j : participants) {
      if (j == i) continue;
      round_batch& b = batches.at(i, j);
      for (std::size_t q = 0; q < q_count; ++q) {
        const collapsed_slot& s = slot(i, q);
        std::optional<claim_digest> echo;
        if (s.announced && s.holds(*s.announced))
          echo = claim_digest::from_packed(*s.announced);
        if (may_lie) {
          sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
          echo = adv->echo_digest(i, j, q, echo);
        }
        if (!echo) continue;
        obs::count(obs::counter::claim_echoes);
        append_digest_item(b.payload, q, echo->packed());
        b.bits += claim_digest_bits + 16;
      }
    }
  }
  batches.flush(channels, claim_traffic_tag);
  channels.end_round(net, faults, relay_adv);
  {
    for (graph::node_id j : participants) {
      // A node's own echo counts toward its quorum (no wire cost).
      for (std::size_t q = 0; q < q_count; ++q) {
        const collapsed_slot& s = slot(j, q);
        if (s.announced && s.holds(*s.announced))
          slot(j, q).echo_from[*s.announced].insert(j);
      }
      for (const sim::message& m : channels.inbox(j)) {
        std::size_t pos = 0, q = 0;
        std::uint64_t dg = 0;
        while (next_digest_item(m.payload, pos, q, dg)) {
          if (q >= q_count) continue;
          slot(j, q).echo_from[dg].insert(m.from);
        }
      }
    }
  }
  echo_span.close(net.elapsed());

  obs::scoped_span ready_span("claim_ready", net.elapsed());
  // Initial readys: digest with an echo quorum (unique per claimant).
  for (graph::node_id v : participants)
    for (std::size_t q = 0; q < q_count; ++q) {
      collapsed_slot& s = slot(v, q);
      for (const auto& [dg, senders] : s.echo_from)
        if (static_cast<int>(senders.size()) >= echo_quorum) {
          s.pending_ready = dg;
          break;
        }
    }

  // ---- READY rounds to quiescence: each round flushes the pending      ----
  // ---- readys, then f+1 observed readys amplify into new pending ones. ----
  // ---- At quiescence acceptance is uniform across honest nodes: any    ----
  // ---- accept implies f+1 honest readys, which every honest node saw   ----
  // ---- and amplified, so all honest readied and all see >= np - f.     ----
  for (int round = 0;; ++round) {
    NAB_ASSERT(round <= np + 2, "collapsed ready loop failed to quiesce");
    bool any_pending = false;
    for (graph::node_id v : participants) {
      const bool may_lie = faults.is_corrupt(v) && adv != nullptr;
      for (std::size_t q = 0; q < q_count; ++q) {
        collapsed_slot& s = slot(v, q);
        if (!s.pending_ready) continue;
        any_pending = true;
        const std::uint64_t dg = *s.pending_ready;
        s.ready_sent = dg;
        s.pending_ready.reset();
        s.ready_from[dg].insert(v);  // own ready counts
        for (graph::node_id j : participants) {
          if (j == v) continue;
          if (may_lie) {
            bool suppress;
            {
              sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
              suppress = adv->suppress_ready(v, j, q);
            }
            if (suppress) continue;
          }
          obs::count(obs::counter::claim_readys);
          round_batch& b = batches.at(v, j);
          append_digest_item(b.payload, q, dg);
          b.bits += claim_digest_bits + 16;
        }
      }
    }
    if (!any_pending) break;
    batches.flush(channels, claim_traffic_tag);
    channels.end_round(net, faults, relay_adv);
    for (graph::node_id j : participants) {
      for (const sim::message& m : channels.inbox(j)) {
        std::size_t pos = 0, q = 0;
        std::uint64_t dg = 0;
        while (next_digest_item(m.payload, pos, q, dg)) {
          if (q >= q_count) continue;
          slot(j, q).ready_from[dg].insert(m.from);
        }
      }
      // Amplification: f+1 readys for a digest pull a not-yet-ready node in.
      for (std::size_t q = 0; q < q_count; ++q) {
        collapsed_slot& s = slot(j, q);
        if (s.ready_sent || s.pending_ready) continue;
        for (const auto& [dg, senders] : s.ready_from)
          if (static_cast<int>(senders.size()) >= ready_amplify) {
            s.pending_ready = dg;
            break;
          }
      }
    }
  }

  // Acceptance + fallback need (a direct copy mismatching the accepted
  // digest — the disputed minority).
  for (graph::node_id v : participants)
    for (std::size_t q = 0; q < q_count; ++q) {
      collapsed_slot& s = slot(v, q);
      for (const auto& [dg, senders] : s.ready_from)
        if (static_cast<int>(senders.size()) >= ready_accept) {
          s.accepted = dg;
          // Margin gauges, honest observers only: how far this accept sat
          // above the quorum rules. Record-minimum over the whole run — the
          // closest the adversary pushed a quorum to its edge.
          if (faults.is_honest(v)) {
            obs::gauge_min(obs::gauge::quorum_slack,
                           static_cast<std::int64_t>(senders.size()) -
                               ready_accept);
            const auto holders = s.echo_from.find(dg);
            std::int64_t honest_holders = 0;
            if (holders != s.echo_from.end())
              for (graph::node_id h : holders->second)
                if (faults.is_honest(h)) ++honest_holders;
            obs::gauge_min(obs::gauge::hold_surplus, honest_holders - (f + 1));
          }
          break;
        }
      s.need_fallback = s.accepted && !s.holds(*s.accepted);
      if (s.need_fallback) {
        obs::count(obs::counter::claim_fallbacks);
        ++out.fallback_retrievals;
      }
    }
  ready_span.close(net.elapsed());

  // ---- Retrieval round pair (REQUEST, RESPOND) — zero traffic and zero ----
  // ---- simulated time when every pair was digest-clean. Requests go to ----
  // ---- at most 2f+1 of the accepted digest's echoers: honest nodes     ----
  // ---- echo only while holding, the requester saw every honest echo    ----
  // ---- (honest echoes broadcast), and any accepted digest has >= f+1   ----
  // ---- honest echoers — so even f corrupt echoers among the targets    ----
  // ---- leave an honest holder that serves the transcript. Per          ----
  // ---- mismatched pair the fallback therefore moves O(f) copies, not   ----
  // ---- O(n).                                                           ----
  obs::scoped_span retrieval_span("claim_retrieval", net.elapsed());
  std::vector<std::vector<std::pair<std::size_t, graph::node_id>>> requests(
      static_cast<std::size_t>(universe));
  for (graph::node_id v : participants)
    for (std::size_t q = 0; q < q_count; ++q) {
      const collapsed_slot& s = slot(v, q);
      if (!s.need_fallback) continue;
      const auto holders = s.echo_from.find(*s.accepted);
      if (holders == s.echo_from.end()) continue;  // nobody to ask
      int asked = 0;
      for (graph::node_id j : holders->second) {  // set: ascending ids
        if (j == v) continue;
        if (asked >= 2 * f + 1) break;
        ++asked;
        round_batch& b = batches.at(v, j);
        b.payload.push_back(q);
        b.bits += 16;
      }
    }
  batches.flush(channels, claim_traffic_tag);
  channels.end_round(net, faults, relay_adv);
  {
    std::vector<bool> seen(q_count, false);
    for (graph::node_id j : participants)
      for (const sim::message& m : channels.inbox(j)) {
        std::fill(seen.begin(), seen.end(), false);
        std::size_t pos = 0, q = 0;
        while (next_index_item(m.payload, pos, q)) {
          if (q >= q_count || seen[q]) continue;
          seen[q] = true;
          requests[static_cast<std::size_t>(j)].emplace_back(q, m.from);
        }
      }
  }
  for (graph::node_id j : participants) {
    const bool may_lie = faults.is_corrupt(j) && adv != nullptr;
    for (const auto& [q, requester] : requests[static_cast<std::size_t>(j)]) {
      const collapsed_slot& s = slot(j, q);
      std::optional<value> response;
      if (s.accepted && s.holds(*s.accepted)) response = s.direct;
      if (may_lie) {
        sim::scoped_run_arena suspend_pooling(nullptr);  // stateful strategies
        response = adv->serve_retrieval(j, requester, q, response);
      }
      if (!response) continue;
      round_batch& b = batches.at(j, requester);
      append_payload_item(b.payload, q, *response);
      b.bits += instances[q].value_bits + 16;
    }
  }
  batches.flush(channels, claim_traffic_tag);
  channels.end_round(net, faults, relay_adv);
  {
    // Verify per message in one batch. Protocol-following holders answer
    // each index at most once per message (requests are deduped above), so
    // candidates within a message are distinct slots; adversarial payloads
    // that repeat an index are deduped here — first occurrence wins — so the
    // digested set is a deterministic function of the message contents.
    // Batching wider than a message would digest responses the serial walk
    // skips once a slot resolves; per-message batches keep the digested set
    // — and the field-op totals — identical to the one-at-a-time walk on
    // every duplicate-free (i.e. protocol-reachable) message.
    std::vector<collapsed_slot*> candidates;
    std::vector<value> responses;
    std::vector<const value*> views;
    std::vector<bool> msg_seen(q_count, false);
    for (graph::node_id r : participants) {
      for (const sim::message& m : channels.inbox(r)) {
        candidates.clear();
        responses.clear();
        std::fill(msg_seen.begin(), msg_seen.end(), false);
        std::size_t pos = 0, q = 0;
        value v;
        while (next_payload_item(m.payload, pos, q, v)) {
          if (q >= q_count || msg_seen[q]) continue;
          msg_seen[q] = true;
          collapsed_slot& s = slot(r, q);
          if (!s.need_fallback || s.resolved_by_fallback || !s.accepted) continue;
          candidates.push_back(&s);
          responses.push_back(std::move(v));
        }
        views.clear();
        views.reserve(responses.size());
        for (const value& resp : responses) views.push_back(&resp);
        const std::vector<claim_digest> digests =
            claim_digests_of(views, digest_seed);
        for (std::size_t i = 0; i < candidates.size(); ++i) {
          collapsed_slot& s = *candidates[i];
          if (s.resolved_by_fallback) continue;
          if (digests[i].packed() != *s.accepted) continue;  // forged
          s.direct = std::move(responses[i]);
          s.has_direct = true;
          s.direct_digest = *s.accepted;
          s.resolved_by_fallback = true;
        }
      }
    }
  }
  retrieval_span.close(net.elapsed());

  // Decide: the validated transcript when the accepted digest is matched,
  // the default (empty) value otherwise. Acceptance is uniform and any
  // accepted digest has >= f+1 honest holders serving retrievals, so every
  // honest node lands on the same payload per claimant.
  for (graph::node_id v : participants)
    for (std::size_t q = 0; q < q_count; ++q) {
      collapsed_slot& s = slot(v, q);
      if (s.accepted && s.holds(*s.accepted))
        out.agreed[q][static_cast<std::size_t>(v)] = std::move(s.direct);
    }

  out.time = net.elapsed() - t0;
  return out;
}

claim_outcome broadcast_claims(claim_backend backend, channel_plan& channels,
                               sim::network& net, const sim::fault_set& faults,
                               const std::vector<claim_instance>& instances, int f,
                               eig_adversary* eig_adv, claim_adversary* claim_adv,
                               relay_adversary* relay_adv,
                               std::uint64_t digest_seed) {
  const std::size_t participants = channels.topology().active_nodes().size();
  switch (resolve_claim_backend(backend, participants, f)) {
    case claim_backend::eig: {
      obs::scoped_span span("claim_backend_eig", net.elapsed());
      claim_outcome out = broadcast_claims_eig(channels, net, faults, instances,
                                               f, eig_adv, relay_adv);
      span.end_tau(net.elapsed());
      return out;
    }
    case claim_backend::phase_king: {
      obs::scoped_span span("claim_backend_phase_king", net.elapsed());
      claim_outcome out = broadcast_claims_phase_king(channels, net, faults,
                                                      instances, f, relay_adv);
      span.end_tau(net.elapsed());
      return out;
    }
    case claim_backend::collapsed: {
      obs::scoped_span span("claim_backend_collapsed", net.elapsed());
      claim_outcome out = broadcast_claims_collapsed(
          channels, net, faults, instances, f, claim_adv, relay_adv, digest_seed);
      span.end_tau(net.elapsed());
      return out;
    }
    case claim_backend::auto_select:
      break;  // unreachable: resolve_claim_backend never returns it
  }
  NAB_ASSERT(false, "unresolved claim backend");
  return {};
}

}  // namespace nab::bb
