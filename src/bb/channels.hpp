#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"

namespace nab::bb {

/// Hook allowing corrupt *relays* to tamper with copies forwarded along
/// emulated multi-hop paths. The default (returning nullopt) relays
/// honestly; returning a payload substitutes it. Majority voting over 2f+1
/// node-disjoint paths makes any tampering ineffective when the sender is
/// honest — tests exercise exactly that.
class relay_adversary {
 public:
  virtual ~relay_adversary() = default;

  /// `path` is the full node sequence; called only when some interior relay
  /// is corrupt.
  virtual std::optional<sim::payload> tamper(
      const std::vector<graph::node_id>& path, const sim::message& m) {
    (void)path;
    (void)m;
    return std::nullopt;
  }
};

/// Reliable pairwise channels over an arbitrary (>= 2f+1)-connected network.
///
/// The paper's step 2.2 and Phase 3 run classical BB protocols that assume a
/// complete graph; on incomplete topologies it emulates each logical channel
/// by sending the same data along 2f+1 node-disjoint paths and taking the
/// majority at the receiver (Appendix D). This class precomputes those
/// routes once per topology and provides round-structured logical unicasts
/// with exact link-level bit accounting: every link of every path is charged
/// the full payload size in the step where the round ends.
///
/// Accounting model: multi-hop forwarding within one synchronous step
/// (cut-through); see DESIGN.md §2.
class channel_plan {
 public:
  /// routes[from * n + to]: one single-link route or 2f+1 node-disjoint
  /// paths, each a full node sequence.
  using route_table = std::vector<std::vector<std::vector<graph::node_id>>>;

  /// Builds routes for every ordered pair of active nodes. Throws nab::error
  /// if some pair admits neither a direct link nor 2f+1 disjoint paths.
  channel_plan(const graph::digraph& g, int f);

  /// Uses a precomputed (immutable, shareable) route table — routes are a
  /// pure function of (g, f), so core::omega_cache memoizes them across the
  /// sessions of a sweep. Precondition: `routes` was built by build_routes
  /// for exactly this (g, f).
  channel_plan(const graph::digraph& g, int f,
               std::shared_ptr<const route_table> routes);

  /// The route-construction half of the constructor, exposed for caching.
  static route_table build_routes(const graph::digraph& g, int f);

  /// Queues a logical unicast for the current round.
  void unicast(graph::node_id from, graph::node_id to, std::uint64_t tag,
               sim::payload payload, std::uint64_t bits);

  /// Ends the round: charges `net`, applies relay tampering on compromised
  /// paths, majority-resolves copies, and fills the channel inboxes.
  /// Returns the step duration.
  double end_round(sim::network& net, const sim::fault_set& faults,
                   relay_adversary* adv = nullptr);

  /// Logical messages delivered to v in the last completed round.
  const sim::message_list& inbox(graph::node_id v) const;

  /// Releases all per-round storage (queued messages and inbox capacity).
  /// The plan itself persists across NAB instances while payloads live in a
  /// per-run arena, so the session calls this before every arena reset.
  void reclaim_round_storage();

  /// The routes used for the ordered pair (from, to): one single-link route
  /// or 2f+1 node-disjoint paths.
  const std::vector<std::vector<graph::node_id>>& routes(graph::node_id from,
                                                         graph::node_id to) const;

  int fault_budget() const { return f_; }

  /// The topology the plan was built for (participants = its active nodes).
  const graph::digraph& topology() const { return topo_; }

 private:
  graph::digraph topo_;
  int f_;
  std::shared_ptr<const route_table> routes_;  // immutable, possibly shared
  sim::message_list queued_;
  std::vector<sim::message_list> inboxes_;

  std::size_t pair_index(graph::node_id u, graph::node_id v) const {
    return static_cast<std::size_t>(u) * topo_.universe() + v;
  }
};

}  // namespace nab::bb
