#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/network.hpp"

namespace nab::bb {

/// Flat offset-indexed route storage: every path of every ordered pair lives
/// in one contiguous node_id pool, with two cumulative offset arrays on top
/// (per-path end offsets into the pool; per-pair end indices into the path
/// list). end_round's per-link charging then walks contiguous memory instead
/// of chasing a vector<vector<vector>> pointer soup, and a sweep-wide shared
/// table is three allocations instead of ~n^2 * (2f+2).
///
/// Pairs are stored row-major (from * n + to), so all routes out of one
/// source form a contiguous block — which is also the unit of parallel
/// construction (build_routes_for_source / assemble).
class route_table {
 public:
  struct build_stats {
    std::uint64_t pairs = 0;               ///< ordered pairs routed (incl. direct)
    std::uint64_t flow_augmentations = 0;  ///< augmenting paths for emulated pairs
    bool operator==(const build_stats&) const = default;
  };

  /// One path: a contiguous node span (source first, destination last).
  class path_view {
   public:
    path_view(const graph::node_id* data, std::size_t size) : data_(data), size_(size) {}
    std::size_t size() const { return size_; }
    graph::node_id operator[](std::size_t i) const { return data_[i]; }
    graph::node_id front() const { return data_[0]; }
    graph::node_id back() const { return data_[size_ - 1]; }
    const graph::node_id* begin() const { return data_; }
    const graph::node_id* end() const { return data_ + size_; }
    friend bool operator==(const path_view& a, const std::vector<graph::node_id>& b) {
      return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

   private:
    const graph::node_id* data_;
    std::size_t size_;
  };

  /// The routes of one ordered pair: one single-link route or 2f+1
  /// node-disjoint paths (empty for unrouted pairs).
  class route_view {
   public:
    route_view(const route_table* t, std::uint32_t first, std::uint32_t last)
        : t_(t), first_(first), last_(last) {}
    std::size_t size() const { return last_ - first_; }
    bool empty() const { return last_ == first_; }
    path_view operator[](std::size_t i) const { return t_->path(first_ + static_cast<std::uint32_t>(i)); }

    struct iterator {
      const route_table* t;
      std::uint32_t p;
      path_view operator*() const { return t->path(p); }
      iterator& operator++() { ++p; return *this; }
      bool operator!=(const iterator& o) const { return p != o.p; }
    };
    iterator begin() const { return {t_, first_}; }
    iterator end() const { return {t_, last_}; }

   private:
    const route_table* t_;
    std::uint32_t first_, last_;
  };

  route_table() = default;

  /// Routes of the ordered pair (from, to).
  route_view at(graph::node_id from, graph::node_id to) const {
    const std::size_t idx = static_cast<std::size_t>(from) * n_ + to;
    return {this, idx == 0 ? 0 : pair_end_[idx - 1], pair_end_[idx]};
  }

  int universe() const { return n_; }
  const build_stats& stats() const { return stats_; }

  /// Expands one pair back into the nested representation (tests compare
  /// against the per-pair reference builder).
  std::vector<std::vector<graph::node_id>> decode(graph::node_id from,
                                                  graph::node_id to) const;

  bool operator==(const route_table&) const = default;

 private:
  friend class channel_plan;

  path_view path(std::uint32_t p) const {
    const std::uint32_t b = p == 0 ? 0 : path_end_[p - 1];
    return {pool_.data() + b, path_end_[p] - b};
  }

  int n_ = 0;
  std::vector<graph::node_id> pool_;       ///< all path nodes, concatenated
  std::vector<std::uint32_t> path_end_;    ///< cumulative end offset per path
  std::vector<std::uint32_t> pair_end_;    ///< cumulative end path index per pair
  build_stats stats_;
};

/// Hook allowing corrupt *relays* to tamper with copies forwarded along
/// emulated multi-hop paths. The default (returning nullopt) relays
/// honestly; returning a payload substitutes it. Majority voting over 2f+1
/// node-disjoint paths makes any tampering ineffective when the sender is
/// honest — tests exercise exactly that.
class relay_adversary {
 public:
  virtual ~relay_adversary() = default;

  /// `path` is the full node sequence; called only when some interior relay
  /// is corrupt.
  virtual std::optional<sim::payload> tamper(
      const std::vector<graph::node_id>& path, const sim::message& m) {
    (void)path;
    (void)m;
    return std::nullopt;
  }
};

/// Reliable pairwise channels over an arbitrary (>= 2f+1)-connected network.
///
/// The paper's step 2.2 and Phase 3 run classical BB protocols that assume a
/// complete graph; on incomplete topologies it emulates each logical channel
/// by sending the same data along 2f+1 node-disjoint paths and taking the
/// majority at the receiver (Appendix D). This class precomputes those
/// routes once per topology and provides round-structured logical unicasts
/// with exact link-level bit accounting: every link of every path is charged
/// the full payload size in the step where the round ends.
///
/// Accounting model: multi-hop forwarding within one synchronous step
/// (cut-through); see DESIGN.md §2.
class channel_plan {
 public:
  /// The flat pooled route storage (see route_table above).
  using route_table = bb::route_table;

  /// Builds routes for every ordered pair of active nodes. Throws nab::error
  /// if some pair admits neither a direct link nor 2f+1 disjoint paths.
  channel_plan(const graph::digraph& g, int f);

  /// Uses a precomputed (immutable, shareable) route table — routes are a
  /// pure function of (g, f), so core::omega_cache memoizes them across the
  /// sessions of a sweep. Precondition: `routes` was built by build_routes
  /// for exactly this (g, f).
  channel_plan(const graph::digraph& g, int f,
               std::shared_ptr<const route_table> routes);

  /// The route-construction half of the constructor, exposed for caching:
  /// one warm-started disjoint-path finder per source, assembled row by row.
  static route_table build_routes(const graph::digraph& g, int f);

  /// One source's row of the table, built on its own warm-started residual
  /// network — the unit of deterministic parallel construction. `error` is
  /// set (not thrown) when a pair lacks 2f+1 disjoint paths, so parallel
  /// builders can surface the smallest-source failure deterministically.
  struct source_block {
    std::vector<graph::node_id> pool;
    std::vector<std::uint32_t> path_end;  ///< cumulative, relative to pool
    std::vector<std::uint32_t> path_count;  ///< paths per destination (size n)
    std::uint64_t pairs = 0;
    std::uint64_t flow_augmentations = 0;
    std::string error;  ///< empty on success
  };
  static source_block build_routes_for_source(const graph::digraph& g, int f,
                                              graph::node_id u);

  /// Concatenates per-source blocks (ascending source order) into one flat
  /// table; throws the smallest-source block error if any. `blocks` must
  /// have exactly g.universe() entries.
  static route_table assemble(const graph::digraph& g,
                              std::vector<source_block> blocks);

  /// Queues a logical unicast for the current round.
  void unicast(graph::node_id from, graph::node_id to, std::uint64_t tag,
               sim::payload payload, std::uint64_t bits);

  /// Ends the round: charges `net`, applies relay tampering on compromised
  /// paths, majority-resolves copies, and fills the channel inboxes.
  /// Returns the step duration.
  double end_round(sim::network& net, const sim::fault_set& faults,
                   relay_adversary* adv = nullptr);

  /// Logical messages delivered to v in the last completed round.
  const sim::message_list& inbox(graph::node_id v) const;

  /// Releases all per-round storage (queued messages and inbox capacity).
  /// The plan itself persists across NAB instances while payloads live in a
  /// per-run arena, so the session calls this before every arena reset.
  void reclaim_round_storage();

  /// The routes used for the ordered pair (from, to): one single-link route
  /// or 2f+1 node-disjoint paths.
  route_table::route_view routes(graph::node_id from, graph::node_id to) const {
    return routes_->at(from, to);
  }

  int fault_budget() const { return f_; }

  /// The topology the plan was built for (participants = its active nodes).
  const graph::digraph& topology() const { return topo_; }

 private:
  graph::digraph topo_;
  int f_;
  std::shared_ptr<const route_table> routes_;  // immutable, possibly shared
  sim::message_list queued_;
  std::vector<sim::message_list> inboxes_;
};

}  // namespace nab::bb
