#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "bb/channels.hpp"
#include "bb/eig.hpp"
#include "graph/digraph.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace nab::bb {

/// Which engine disseminates the Phase-3 claim transcripts (Appendix B,
/// DC1). All backends provide the same contract — every honest participant
/// decides the same payload per claimant, equal to the claimant's input when
/// the claimant is honest — so dispute control is backend-oblivious and the
/// dispute sets / convictions / agreed values are byte-identical across
/// backends (pinned by tests/bb/test_claim_backend_equivalence.cpp).
enum class claim_backend {
  /// collapsed when EIG's forwarded-label count would dominate DC1
  /// (participants * sum_{r<=f} n^r > 2048), else eig. Resolved by
  /// resolve_claim_backend at the session boundary.
  auto_select,
  /// The seed path and correctness oracle: PSL'80 EIG over the full
  /// transcripts. Theta(n^f) * L claim traffic — the documented
  /// hypercube_d5 bottleneck, infeasible at n >= 64.
  eig,
  /// Batched multi-valued phase-king over the full transcripts: polynomial
  /// O(n^2 * L * f) traffic, but pays L on every exchange round. Requires
  /// participants > 4f (the simple phase-king variant's price).
  phase_king,
  /// Collapsed-claim Bracha-style broadcast: fixed-size GF(2^16) transcript
  /// digests (evaluation points seeded per run) travel through echo/ready
  /// quorums while the full transcript is unicast exactly once per
  /// (claimant, receiver) pair; digest-mismatched pairs (the disputed
  /// minority) fall back to a retrieval round asking <= 2f+1 of the
  /// echoer-holders, among which the >= f+1 honest holders any accepted
  /// digest guarantees always answer. DC1 drops from Theta(n^f) * L to
  /// O(n^2 * digest + disputes * f * L).
  collapsed,
};

/// Trace tag stamped on every claim-dissemination unicast (and forwarded by
/// the channel emulation onto every link-level charge), so a sim::trace can
/// account DC1 claim bytes per backend — see trace::tag_total.
inline constexpr std::uint64_t claim_traffic_tag = 0xC1A1B;

/// True iff the simple phase-king variant tolerates f faults among this many
/// participants (> 4f). Every auto_select boundary (session construction,
/// flag-engine resolution, the claim dispatcher) checks this up front so an
/// undersized group is rejected cleanly instead of tripping an invariant
/// deep inside a run.
constexpr bool phase_king_admissible(std::size_t participants, int f) {
  return participants > 4 * static_cast<std::size_t>(f);
}

/// Resolves auto_select for the given participant count. Never returns
/// auto_select; never returns phase_king (the batched phase-king path is an
/// explicit ablation choice, not an auto default).
claim_backend resolve_claim_backend(claim_backend requested,
                                    std::size_t participants, int f);

/// Fixed-size transcript digest: the payload (length-prefixed, split into
/// 16-bit limbs) evaluated as a polynomial over GF(2^16) at four evaluation
/// points derived from a per-run seed. Equal payloads always digest
/// equally; differing payloads of m limbs collide at a given point set with
/// probability ~(m/2^16)^4 — and because the points are drawn per run
/// (the session feeds its coding_seed) while the adversary hooks only ever
/// see digest *values*, constructing a collision is the same
/// seeded-randomness bet as defeating Theorem 1's random coding matrices.
/// A keyless fixed-point map would instead be linear algebra the claimant
/// could solve in closed form. (A deployment would use a cryptographic
/// hash; the simulation keeps the field arithmetic the paper's toolbox
/// already provides.)
struct claim_digest {
  std::array<std::uint16_t, 4> words{};

  bool operator==(const claim_digest&) const = default;

  /// The digest as one 64-bit transport word (wire form).
  std::uint64_t packed() const {
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
      out |= static_cast<std::uint64_t>(words[i]) << (16 * i);
    return out;
  }
  static claim_digest from_packed(std::uint64_t p) {
    claim_digest d;
    for (std::size_t i = 0; i < d.words.size(); ++i)
      d.words[i] = static_cast<std::uint16_t>(p >> (16 * i));
    return d;
  }
};

/// Wire size of a claim digest in bits.
inline constexpr std::uint64_t claim_digest_bits = 64;

/// Digests a payload (any byte content, including the empty payload) at the
/// evaluation points derived from `seed`. All participants of one broadcast
/// must use the same seed (it is protocol state, like the coding matrices).
claim_digest claim_digest_of(const value& payload, std::uint64_t seed = 0);

/// Batched form: digests every payload (non-null pointers, one shared seed)
/// and returns the digests in input order. Payloads of equal length advance
/// in lockstep — one gf2_16::scale row pass per absorbed limb across the
/// whole group — so a round's worth of transcripts runs through the
/// dispatched SIMD row kernels instead of per-payload table walks. Field-op
/// totals match size() scalar claim_digest_of calls exactly (the work moves
/// from gf_mul_ops to gf_scale_words limb for limb), so gf_ops-keyed run
/// signatures are unchanged.
std::vector<claim_digest> claim_digests_of(const std::vector<const value*>& payloads,
                                           std::uint64_t seed = 0);

/// One claim to disseminate: `source` wants every participant to decide its
/// `input` transcript. `value_bits` is the wire size charged per transmitted
/// copy of the transcript (required > 0).
struct claim_instance {
  graph::node_id source = 0;
  value input;
  std::uint64_t value_bits = 0;
};

/// Result of one batched claim dissemination.
struct claim_outcome {
  /// agreed[q][v] = payload node v decided for instance q (meaningful for
  /// honest v; the empty payload is the default for claimants nobody could
  /// validate).
  std::vector<std::vector<value>> agreed;
  double time = 0.0;
  /// Collapsed backend only: number of (claimant, receiver) pairs whose
  /// direct transcript copy mismatched the accepted digest and was served by
  /// the retrieval round instead. Zero whenever every claimant proposed
  /// consistently — the honest steady state.
  int fallback_retrievals = 0;
};

/// Adversary hooks for corrupt participants of the collapsed backend. Every
/// hook receives what an honest node would have sent; the default behaves
/// honestly, so strategies override only their attack surface. (The EIG
/// backend keeps its own eig_adversary; the batched phase-king path carries
/// no in-protocol hooks — corrupt claimants there lie via their inputs.)
class claim_adversary {
 public:
  virtual ~claim_adversary() = default;

  /// Transcript a corrupt *claimant* proposes to `receiver` (the
  /// equivocation point: different receivers may get different payloads).
  virtual value propose_payload(graph::node_id claimant, graph::node_id receiver,
                                const value& honest) {
    (void)claimant;
    (void)receiver;
    return honest;
  }

  /// Digest a corrupt claimant announces to `receiver` alongside the
  /// proposed payload. `honest` is the true digest of the payload the hook
  /// above returned — announcing anything else poisons the pair into the
  /// retrieval path (which the quorum design makes harmless).
  virtual claim_digest announce_digest(graph::node_id claimant,
                                       graph::node_id receiver,
                                       const claim_digest& honest) {
    (void)claimant;
    (void)receiver;
    return honest;
  }

  /// Echo a corrupt participant forwards to `receiver` for instance `q`;
  /// `honest` is its true holding (nullopt = no matching payload held).
  /// Returning nullopt suppresses the echo.
  virtual std::optional<claim_digest> echo_digest(
      graph::node_id participant, graph::node_id receiver, std::size_t q,
      const std::optional<claim_digest>& honest) {
    (void)participant;
    (void)receiver;
    (void)q;
    return honest;
  }

  /// May a corrupt participant withhold its READY for instance `q` from
  /// `receiver`? (Selective suppression is the classical totality attack;
  /// the ready-amplification rounds defeat it.)
  virtual bool suppress_ready(graph::node_id participant, graph::node_id receiver,
                              std::size_t q) {
    (void)participant;
    (void)receiver;
    (void)q;
    return false;
  }

  /// Response a corrupt participant serves for a retrieval request. `honest`
  /// is nullopt when the node holds no digest-matching copy (honest behavior
  /// is then to stay silent); forged responses are filtered by the
  /// requester's digest check.
  virtual std::optional<value> serve_retrieval(graph::node_id participant,
                                               graph::node_id requester,
                                               std::size_t q,
                                               const std::optional<value>& honest) {
    (void)participant;
    (void)requester;
    (void)q;
    return honest;
  }
};

/// EIG oracle backend: the seed's DC1 path, reshaped to the interface.
claim_outcome broadcast_claims_eig(channel_plan& channels, sim::network& net,
                                   const sim::fault_set& faults,
                                   const std::vector<claim_instance>& instances,
                                   int f, eig_adversary* adv = nullptr,
                                   relay_adversary* relay_adv = nullptr);

/// Batched multi-valued phase-king backend (participants > 4f): one
/// dissemination round, then f+1 phases of all-to-all exchange + king
/// broadcast, all instances sharing rounds.
claim_outcome broadcast_claims_phase_king(
    channel_plan& channels, sim::network& net, const sim::fault_set& faults,
    const std::vector<claim_instance>& instances, int f,
    relay_adversary* relay_adv = nullptr);

/// Collapsed-claim Bracha-style backend (participants > 3f): digest
/// echo/ready agreement + single direct transcript copies + retrieval
/// fallback for the digest-mismatched minority, served by at most 2f+1 of
/// the holders the echo round exposed. `digest_seed` picks the digest
/// evaluation points (see claim_digest).
claim_outcome broadcast_claims_collapsed(
    channel_plan& channels, sim::network& net, const sim::fault_set& faults,
    const std::vector<claim_instance>& instances, int f,
    claim_adversary* adv = nullptr, relay_adversary* relay_adv = nullptr,
    std::uint64_t digest_seed = 0);

/// Dispatches on a *resolved* backend (auto_select is resolved here too, on
/// the channel plan's participant count). The phase-king backend asserts its
/// > 4f precondition at this boundary.
claim_outcome broadcast_claims(claim_backend backend, channel_plan& channels,
                               sim::network& net, const sim::fault_set& faults,
                               const std::vector<claim_instance>& instances, int f,
                               eig_adversary* eig_adv = nullptr,
                               claim_adversary* claim_adv = nullptr,
                               relay_adversary* relay_adv = nullptr,
                               std::uint64_t digest_seed = 0);

}  // namespace nab::bb
