#pragma once

#include <cstdint>
#include <vector>

#include "bb/channels.hpp"
#include "graph/digraph.hpp"

namespace nab::bb {

/// Per-(sender, receiver) item batch for one synchronous round. All items a
/// node sends another in one round travel as a single logical unicast
/// (synchronous rounds make per-item messages and one batch
/// indistinguishable on the wire); bits are accumulated per item, so the
/// charge is exactly what per-item messages would have cost. Shared by the
/// EIG engine and every claim backend — one implementation of the
/// wire-batching contract.
struct round_batch {
  sim::payload payload;
  std::uint64_t bits = 0;
};

class round_batches {
 public:
  /// `participants` must outlive the object (callers keep the active-node
  /// vector alive for the whole broadcast anyway).
  round_batches(int universe, const std::vector<graph::node_id>& participants)
      : universe_(universe),
        participants_(participants),
        batches_(static_cast<std::size_t>(universe) * universe) {}

  round_batch& at(graph::node_id from, graph::node_id to) {
    return batches_[static_cast<std::size_t>(from) * universe_ + to];
  }

  /// Queues every non-empty batch as one unicast tagged `tag` and clears
  /// the slots for the next round.
  void flush(channel_plan& channels, std::uint64_t tag) {
    for (graph::node_id i : participants_)
      for (graph::node_id j : participants_) {
        round_batch& b = at(i, j);
        if (b.payload.empty()) continue;
        channels.unicast(i, j, tag, std::move(b.payload), b.bits);
        b.payload.clear();
        b.bits = 0;
      }
  }

 private:
  int universe_;
  const std::vector<graph::node_id>& participants_;
  std::vector<round_batch> batches_;
};

}  // namespace nab::bb
