#include "bb/broadcast.hpp"

#include "bb/claim_bcast.hpp"
#include "util/assert.hpp"

namespace nab::bb {

broadcast_outcome broadcast_default(channel_plan& channels, sim::network& net,
                                    const sim::fault_set& faults,
                                    graph::node_id source, const value& input, int f,
                                    std::uint64_t value_bits, bb_protocol protocol,
                                    eig_adversary* eig_adv, pk_adversary* pk_adv,
                                    relay_adversary* relay_adv) {
  const auto participants = channels.topology().active_nodes();
  bb_protocol chosen = protocol;
  if (chosen == bb_protocol::auto_select) {
    chosen = (phase_king_admissible(participants.size(), f) && input.size() <= 1)
                 ? bb_protocol::phase_king
                 : bb_protocol::eig;
  }

  broadcast_outcome out;
  if (chosen == bb_protocol::phase_king) {
    NAB_ASSERT(phase_king_admissible(participants.size(), f),
               "phase-king broadcast requires more than 4f participants — "
               "auto_select boundaries must reject this configuration up front");
    NAB_ASSERT(input.size() <= 1, "phase-king broadcast carries single-word values");
    const std::uint64_t word = input.empty() ? 0 : input[0];
    const pk_result pk = phase_king_broadcast(channels, net, faults, source, word, f,
                                              value_bits, pk_adv, relay_adv);
    out.decisions.resize(pk.decided.size());
    for (std::size_t v = 0; v < pk.decided.size(); ++v)
      out.decisions[v] = {pk.decided[v]};
    out.time = pk.time;
    return out;
  }

  const eig_result eig = eig_broadcast_all(channels, net, faults,
                                           {{source, input}}, f, value_bits, eig_adv,
                                           relay_adv);
  out.decisions = eig.decisions[0];
  out.time = eig.time;
  return out;
}

flags_outcome broadcast_flags(channel_plan& channels, sim::network& net,
                              const sim::fault_set& faults,
                              const std::vector<bool>& flags, int f,
                              const std::vector<graph::node_id>& sources,
                              eig_adversary* adv, relay_adversary* relay_adv) {
  const auto participants = channels.topology().active_nodes();
  const int universe = channels.topology().universe();
  NAB_ASSERT(flags.size() >= static_cast<std::size_t>(universe),
             "flags must cover the node universe");

  std::vector<eig_instance> instances;
  instances.reserve(sources.size());
  for (graph::node_id v : sources)
    instances.push_back({v, {flags[static_cast<std::size_t>(v)] ? 1u : 0u}});

  const eig_result eig =
      eig_broadcast_all(channels, net, faults, instances, f, /*value_bits=*/1, adv,
                        relay_adv);

  flags_outcome out;
  out.agreed.assign(static_cast<std::size_t>(universe),
                    std::vector<bool>(static_cast<std::size_t>(universe), false));
  for (std::size_t q = 0; q < instances.size(); ++q) {
    const graph::node_id src = instances[q].source;
    for (graph::node_id v : participants)
      out.agreed[static_cast<std::size_t>(src)][static_cast<std::size_t>(v)] =
          !eig.decisions[q][static_cast<std::size_t>(v)].empty() &&
          eig.decisions[q][static_cast<std::size_t>(v)][0] != 0;
  }
  out.time = eig.time;
  return out;
}

flags_outcome broadcast_flags_phase_king(channel_plan& channels, sim::network& net,
                                         const sim::fault_set& faults,
                                         const std::vector<bool>& flags, int f,
                                         const std::vector<graph::node_id>& sources,
                                         pk_adversary* adv,
                                         relay_adversary* relay_adv) {
  const auto participants = channels.topology().active_nodes();
  const int universe = channels.topology().universe();
  // The > 4f precondition is checked here, at the engine boundary, so an
  // undersized G_k fails immediately and attributably; callers resolving
  // auto_select (core::session) and explicit configurations (session
  // construction) reject the combination with a clean nab::error before any
  // round runs.
  NAB_ASSERT(phase_king_admissible(participants.size(), f),
             "phase-king flag broadcast requires more than 4f participants");
  NAB_ASSERT(flags.size() >= static_cast<std::size_t>(universe),
             "flags must cover the node universe");

  flags_outcome out;
  out.agreed.assign(static_cast<std::size_t>(universe),
                    std::vector<bool>(static_cast<std::size_t>(universe), false));
  const double t0 = net.elapsed();
  for (graph::node_id src : sources) {
    const pk_result r = phase_king_broadcast(
        channels, net, faults, src, flags[static_cast<std::size_t>(src)] ? 1 : 0, f,
        /*value_bits=*/1, adv, relay_adv);
    for (graph::node_id v : participants)
      out.agreed[static_cast<std::size_t>(src)][static_cast<std::size_t>(v)] =
          r.decided[static_cast<std::size_t>(v)] != 0;
  }
  out.time = net.elapsed() - t0;
  return out;
}

}  // namespace nab::bb
