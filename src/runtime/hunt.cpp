#include "runtime/hunt.hpp"

#include <algorithm>
#include <array>
#include <iterator>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "runtime/executor.hpp"
#include "runtime/runner.hpp"
#include "util/error.hpp"

namespace nab::runtime {

// ---------------------------------------------------------------------------
// Genome serialization
// ---------------------------------------------------------------------------

namespace {

/// One serializable genome field. The table below is the single source of
/// truth for field order (to_params / to_json / corpus files), parse
/// validation, and the mutation/crossover operators — adding a gene means
/// adding one row.
struct gene {
  const char* name;
  std::uint32_t max;  ///< inclusive upper bound a parsed value may take
  std::uint16_t (*get)(const hunt_genome&);
  void (*set)(hunt_genome&, std::uint16_t);
  /// How mutation redraws this gene (rates prefer sparse extremes; masks
  /// prefer recognizable patterns; flags flip).
  enum class shape { rate, mask, flag, salt } form;
};

#define NAB_GENE(field, bound, form_)                                    \
  gene{#field, bound,                                                    \
       [](const hunt_genome& g) { return static_cast<std::uint16_t>(g.field); }, \
       [](hunt_genome& g, std::uint16_t v) {                             \
         g.field = static_cast<decltype(g.field)>(v);                    \
       },                                                                \
       gene::shape::form_}

constexpr auto genome_fields() {
  return std::array{
      NAB_GENE(p1_source, 255, rate),
      NAB_GENE(p1_forward, 255, rate),
      NAB_GENE(p2_lie, 255, rate),
      NAB_GENE(flag_flip, 255, rate),
      NAB_GENE(claim_tamper, 255, rate),
      NAB_GENE(input_lie, 255, rate),
      NAB_GENE(digest_equivocate, 255, rate),
      NAB_GENE(digest_garble, 255, rate),
      NAB_GENE(echo_suppress, 255, rate),
      NAB_GENE(ready_suppress, 255, rate),
      NAB_GENE(retrieval_forge, 255, rate),
      NAB_GENE(xor_mask, 65535, mask),
      NAB_GENE(victim_mode, 1, flag),
      NAB_GENE(corrupt_source, 1, flag),
      NAB_GENE(corrupt_salt, 255, salt),
      NAB_GENE(noise_salt, 255, salt),
  };
}

#undef NAB_GENE

}  // namespace

std::string hunt_genome::to_params() const {
  std::string out;
  for (const gene& f : genome_fields()) {
    if (!out.empty()) out.push_back(',');
    out += f.name;
    out.push_back('=');
    out += std::to_string(f.get(*this));
  }
  return out;
}

hunt_genome hunt_genome::from_params(std::string_view text) {
  std::map<std::string, std::uint32_t, std::less<>> kv;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size())
      throw error("hunt_genome: malformed item '" + std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view digits = item.substr(eq + 1);
    std::uint32_t value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9')
        throw error("hunt_genome: non-numeric value in '" + std::string(item) + "'");
      value = value * 10 + static_cast<std::uint32_t>(c - '0');
      if (value > 65535)
        throw error("hunt_genome: value out of range in '" + std::string(item) + "'");
    }
    if (!kv.emplace(std::string(key), value).second)
      throw error("hunt_genome: duplicate field '" + std::string(key) + "'");
  }

  hunt_genome g;
  for (const gene& f : genome_fields()) {
    const auto it = kv.find(f.name);
    if (it == kv.end())
      throw error(std::string("hunt_genome: missing field '") + f.name + "'");
    if (it->second > f.max)
      throw error(std::string("hunt_genome: field '") + f.name +
                  "' exceeds its bound " + std::to_string(f.max));
    f.set(g, static_cast<std::uint16_t>(it->second));
    kv.erase(it);
  }
  if (!kv.empty())
    throw error("hunt_genome: unknown field '" + kv.begin()->first + "'");
  return g;
}

json hunt_genome::to_json() const {
  json obj = json::object();
  for (const gene& f : genome_fields())
    obj.set(f.name, json::num(static_cast<std::int64_t>(f.get(*this))));
  return obj;
}

// ---------------------------------------------------------------------------
// genome_adversary
// ---------------------------------------------------------------------------

namespace {

bool hit(rng& rand, std::uint8_t level) {
  return level != 0 && rand.chance(level / 255.0);
}

/// Genome-driven garble of a 16-bit word sequence: XOR by the genome's mask,
/// or redraw every word when the mask gene is 0. An empty sequence gains one
/// corrupted word (mirrors the hand-written strategies, so "garbled nothing"
/// still differs from honest).
template <typename Vec>
void garble_words(Vec& words, std::uint16_t mask, rng& rand) {
  if (words.empty()) {
    words.push_back(static_cast<core::word>(
        mask != 0 ? mask : 1 + rand.below(65535)));
    return;
  }
  if (mask != 0) {
    for (auto& w : words) w = static_cast<core::word>(w ^ mask);
  } else {
    for (auto& w : words) w = static_cast<core::word>(rand.below(65536));
  }
}

/// Flips one 64-bit transport word of a packed payload (or plants one in an
/// empty payload) — the minimal equivocation that still changes the digest.
void perturb_payload(bb::value& payload, rng& rand) {
  if (payload.empty()) {
    payload.push_back(0x5EED);
    return;
  }
  payload[rand.below(payload.size())] ^= 1 + rand.below(0xFFFF);
}

}  // namespace

genome_adversary::genome_adversary(const hunt_genome& g, std::uint64_t seed)
    : g_(g),
      rand_(splitmix64(seed ^ (static_cast<std::uint64_t>(g.noise_salt) *
                               0x9e3779b97f4a7c15ULL))),
      claim_(g_, splitmix64(seed ^ 0xC1A1A0B5ULL ^
                            (static_cast<std::uint64_t>(g.noise_salt) << 8))) {}

void genome_adversary::on_instance_begin(int, const graph::digraph& gk) {
  const std::vector<graph::node_id> active = gk.active_nodes();
  victim_ = active.empty() ? -1 : active.front();
}

core::chunk genome_adversary::phase1_source_chunk(int, graph::node_id to,
                                                  const core::chunk& honest) {
  if (!targets(to) || !hit(rand_, g_.p1_source)) return honest;
  core::chunk out = honest;
  garble_words(out, g_.xor_mask, rand_);
  return out;
}

core::chunk genome_adversary::phase1_forward_chunk(int, graph::node_id,
                                                   graph::node_id to,
                                                   const core::chunk& honest) {
  if (!targets(to) || !hit(rand_, g_.p1_forward)) return honest;
  core::chunk out = honest;
  garble_words(out, g_.xor_mask, rand_);
  return out;
}

core::coded_symbols genome_adversary::phase2_coded(graph::node_id, graph::node_id v,
                                                   const core::coded_symbols& honest) {
  if (!targets(v) || !hit(rand_, g_.p2_lie)) return honest;
  core::coded_symbols out = honest;
  garble_words(out.words, g_.xor_mask, rand_);
  return out;
}

bool genome_adversary::phase2_flag(graph::node_id, bool honest) {
  return hit(rand_, g_.flag_flip) ? !honest : honest;
}

core::node_claims genome_adversary::phase3_claims(graph::node_id,
                                                  const core::node_claims& honest) {
  if (g_.claim_tamper == 0) return honest;
  core::node_claims out = honest;
  for (auto& [key, c] : out.p1_received)
    if (hit(rand_, g_.claim_tamper)) garble_words(c, g_.xor_mask, rand_);
  for (auto& [key, c] : out.p2_sent)
    if (hit(rand_, g_.claim_tamper)) garble_words(c.words, g_.xor_mask, rand_);
  return out;
}

std::vector<core::word> genome_adversary::phase3_source_input(
    const std::vector<core::word>& honest) {
  if (!hit(rand_, g_.input_lie)) return honest;
  std::vector<core::word> out = honest;
  garble_words(out, g_.xor_mask, rand_);
  return out;
}

bool genome_adversary::claim_hooks::strike(std::uint8_t level, graph::node_id a,
                                           graph::node_id b, std::uint64_t q,
                                           std::uint64_t tag) const {
  if (level == 0) return false;
  const std::uint64_t h = splitmix64(
      0x5712D5ULL ^ (static_cast<std::uint64_t>(a) + 1) * 0x9E3779B97F4A7C15ULL ^
      (static_cast<std::uint64_t>(b) + 1) * 0xC2B2AE3D27D4EB4FULL ^
      (q + 1) * 0x165667B19E3779F9ULL ^
      (static_cast<std::uint64_t>(g_.noise_salt) << 32) ^ tag);
  // `% 255` (not `& 0xFF`): level 255 must strike every pair, so the hunt's
  // corner genomes are exactly the all-or-nothing strategies.
  return h % 255 < level;
}

bb::value genome_adversary::claim_hooks::propose_payload(graph::node_id claimant,
                                                         graph::node_id receiver,
                                                         const bb::value& honest) {
  if (!strike(g_.digest_equivocate, claimant, receiver, 0, 0xE9F1)) return honest;
  bb::value out = honest;
  perturb_payload(out, rand_);
  return out;
}

bb::claim_digest genome_adversary::claim_hooks::announce_digest(
    graph::node_id claimant, graph::node_id receiver,
    const bb::claim_digest& honest) {
  if (!strike(g_.digest_garble, claimant, receiver, 0, 0x6A12B1E)) return honest;
  bb::claim_digest out = honest;
  out.words[rand_.below(out.words.size())] ^=
      static_cast<std::uint16_t>(1 + rand_.below(0xFFFF));
  return out;
}

std::optional<bb::claim_digest> genome_adversary::claim_hooks::echo_digest(
    graph::node_id participant, graph::node_id receiver, std::size_t q,
    const std::optional<bb::claim_digest>& honest) {
  if (strike(g_.echo_suppress, participant, receiver, q, 0xEC0)) return std::nullopt;
  return honest;
}

bool genome_adversary::claim_hooks::suppress_ready(graph::node_id participant,
                                                   graph::node_id receiver,
                                                   std::size_t q) {
  return strike(g_.ready_suppress, participant, receiver, q, 0x4EAD);
}

std::optional<bb::value> genome_adversary::claim_hooks::serve_retrieval(
    graph::node_id participant, graph::node_id requester, std::size_t q,
    const std::optional<bb::value>& honest) {
  if (!strike(g_.retrieval_forge, participant, requester, q, 0xF0F6E))
    return honest;
  bb::value forged = honest ? *honest : bb::value{};
  perturb_payload(forged, rand_);
  return forged;
}

// ---------------------------------------------------------------------------
// Scoring and novelty
// ---------------------------------------------------------------------------

std::int64_t margin_score(const run_record& rec) {
  const auto cost = [](std::int64_t margin) {
    return margin < 0 ? std::int64_t{1000} : margin;
  };
  return cost(rec.margin_quorum_slack) + cost(rec.margin_hold_surplus) +
         cost(rec.margin_dispute_headroom);
}

namespace {

/// log2-style bucket for the big monotone counters: near-identical runs
/// land in the same bucket, so novelty reflects behavior shape, not noise.
std::uint64_t bucket(std::uint64_t v) {
  std::uint64_t b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

std::uint64_t record_signature(const run_record& rec) {
  std::uint64_t h = obs::signature_seed;
  // Outcome tallies: raw (small, exact).
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.dispute_phases));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.disputes));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.convictions));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.mismatch_instances));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.phase1_only_instances));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.default_outcome_instances));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.dc1_fallbacks));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.ok() ? 1 : 0));
  // Margin gauges: raw (the scoring coordinate must stay fine-grained).
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.margin_quorum_slack));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.margin_hold_surplus));
  h = obs::signature_mix(h, static_cast<std::uint64_t>(rec.margin_dispute_headroom));
  // Work-volume counters: bucketed.
  h = obs::signature_mix(h, bucket(rec.gf_ops));
  h = obs::signature_mix(h, bucket(rec.cert_subgraphs));
  h = obs::signature_mix(h, bucket(rec.claim_echoes));
  h = obs::signature_mix(h, bucket(rec.claim_readys));
  h = obs::signature_mix(h, bucket(rec.dc1_claim_bits));
  return h;
}

// ---------------------------------------------------------------------------
// Evaluation contexts
// ---------------------------------------------------------------------------

std::vector<scenario> hunt_contexts(std::string_view families,
                                    std::uint64_t words, int instances) {
  const std::vector<scenario> base = select_scenarios(families);
  std::vector<scenario> out;
  for (const scenario& s : base) {
    if (s.f <= 0) continue;  // nothing to corrupt: the genome never acts
    if (s.propagation == core::propagation_mode::pipelined) continue;
    const bool dup = std::any_of(out.begin(), out.end(), [&](const scenario& t) {
      return t.topology == s.topology && t.f == s.f;
    });
    if (dup) continue;
    scenario c = s;
    c.family = "hunt";
    c.adversary = adversary_kind::hunted;
    c.claim_backend = bb::claim_backend::collapsed;
    c.flag_protocol = bb::bb_protocol::eig;
    c.propagation = core::propagation_mode::cut_through;
    c.words = words;
    if (instances > 0) c.instances = instances;
    c.rotate_sources = false;
    c.genome.clear();
    c.name = "hunt/" + to_string(s.topology.kind) + "-n" +
             std::to_string(topology_nodes(s.topology)) + "-f" +
             std::to_string(s.f);
    out.push_back(std::move(c));
  }
  if (out.empty())
    throw error("hunt: no fault-tolerant (f > 0) context in families '" +
                std::string(families) + "'");
  return out;
}

// ---------------------------------------------------------------------------
// Search engine
// ---------------------------------------------------------------------------

namespace {

hunt_genome random_genome(rng& evo) {
  hunt_genome g;
  for (const gene& f : genome_fields()) {
    switch (f.form) {
      case gene::shape::rate: {
        // Sparse bias: most hooks quiet, a few hot — dense all-hook genomes
        // just convict instantly and teach the search nothing.
        static constexpr std::uint16_t levels[] = {0, 0, 0, 0, 64, 128, 192, 255};
        f.set(g, levels[evo.below(std::size(levels))]);
        break;
      }
      case gene::shape::mask: {
        static constexpr std::uint16_t masks[] = {0xFFFF, 0xA5A5, 0x0F0F,
                                                  0x0001, 0};
        f.set(g, masks[evo.below(std::size(masks))]);
        break;
      }
      case gene::shape::flag:
        f.set(g, static_cast<std::uint16_t>(evo.below(2)));
        break;
      case gene::shape::salt:
        f.set(g, static_cast<std::uint16_t>(evo.below(256)));
        break;
    }
  }
  return g;
}

hunt_genome mutate(const hunt_genome& parent, rng& evo) {
  hunt_genome g = parent;
  const auto fields = genome_fields();
  const std::size_t edits = 1 + evo.below(3);
  for (std::size_t e = 0; e < edits; ++e) {
    const gene& f = fields[evo.below(fields.size())];
    switch (f.form) {
      case gene::shape::rate: {
        static constexpr std::uint16_t levels[] = {0, 32, 64, 128, 192, 255};
        f.set(g, levels[evo.below(std::size(levels))]);
        break;
      }
      case gene::shape::mask: {
        static constexpr std::uint16_t masks[] = {0xFFFF, 0xA5A5, 0x0F0F,
                                                  0x0001, 0};
        f.set(g, masks[evo.below(std::size(masks))]);
        break;
      }
      case gene::shape::flag:
        f.set(g, static_cast<std::uint16_t>(f.get(g) == 0 ? 1 : 0));
        break;
      case gene::shape::salt:
        f.set(g, static_cast<std::uint16_t>(evo.below(256)));
        break;
    }
  }
  return g;
}

hunt_genome crossover(const hunt_genome& a, const hunt_genome& b, rng& evo) {
  hunt_genome g;
  for (const gene& f : genome_fields())
    f.set(g, evo.chance(0.5) ? f.get(a) : f.get(b));
  return g;
}

/// Hand-designed archetypes the first generation starts from: each pairs a
/// dispute trigger (DC1 only runs after a mismatch or false flag) with one
/// claim-backend squeeze — the combinations the margin gauges exist to watch.
std::vector<hunt_genome> seed_population(int population, rng& evo) {
  std::vector<hunt_genome> pop;
  {
    hunt_genome g;  // relay garble + ready starvation (quorum_slack)
    g.p1_forward = 255;
    g.ready_suppress = 255;
    pop.push_back(g);
  }
  {
    hunt_genome g;  // relay garble + equivocation (hold_surplus)
    g.p1_forward = 255;
    g.digest_equivocate = 128;
    pop.push_back(g);
  }
  {
    hunt_genome g;  // false flags + echo starvation
    g.flag_flip = 255;
    g.echo_suppress = 192;
    pop.push_back(g);
  }
  {
    hunt_genome g;  // corrupt source equivocating at the root
    g.corrupt_source = 1;
    g.p1_source = 255;
    g.victim_mode = 1;
    pop.push_back(g);
  }
  {
    hunt_genome g;  // lying claims + lying source input (conviction churn)
    g.corrupt_source = 1;
    g.claim_tamper = 128;
    g.input_lie = 255;
    pop.push_back(g);
  }
  {
    hunt_genome g;  // stealth-shaped: one coded-symbol lie per victim
    g.p2_lie = 255;
    g.victim_mode = 1;
    g.ready_suppress = 128;
    pop.push_back(g);
  }
  while (static_cast<int>(pop.size()) < population) pop.push_back(random_genome(evo));
  pop.resize(static_cast<std::size_t>(population));
  return pop;
}

struct probe {
  hunt_genome genome;
  int context = 0;
  int genome_index = 0;
  int run_index = 0;
};

corpus_entry entry_of(const probe& p, const scenario& ctx, const run_record& rec) {
  corpus_entry e;
  e.context = ctx.name;
  e.genome = p.genome;
  e.run_index = p.run_index;
  e.signature = record_signature(rec);
  e.margin_quorum_slack = rec.margin_quorum_slack;
  e.margin_hold_surplus = rec.margin_hold_surplus;
  e.margin_dispute_headroom = rec.margin_dispute_headroom;
  e.score = margin_score(rec);
  e.ok = rec.ok();
  return e;
}

std::int64_t entry_margin(const corpus_entry& e, int gauge_index) {
  switch (gauge_index) {
    case 0: return e.margin_quorum_slack;
    case 1: return e.margin_hold_surplus;
    default: return e.margin_dispute_headroom;
  }
}

}  // namespace

hunt_corpus run_hunt(const hunt_config& cfg,
                     const std::function<void(const std::string&)>& log) {
  if (cfg.budget <= 0) throw error("hunt: budget must be positive");
  const int population_size = std::max(4, cfg.population);
  const std::vector<scenario> contexts =
      hunt_contexts(cfg.families, cfg.words, cfg.instances);

  hunt_corpus corpus;
  corpus.families = cfg.families;
  corpus.seed = cfg.seed;
  corpus.budget = cfg.budget;
  corpus.words = cfg.words;
  corpus.instances = cfg.instances;

  // Every evolution decision draws from this one stream, on this thread, in
  // probe order — the whole determinism contract hangs on that discipline.
  rng evo(splitmix64(cfg.seed ^ 0x4009E4D5ULL));
  std::vector<hunt_genome> population = seed_population(population_size, evo);

  // (context, gauge) -> position in corpus.champions, stable across updates.
  std::map<std::pair<int, int>, std::size_t> champ_at;
  std::set<std::uint64_t> seen;

  int evals = 0;
  int generation = 0;
  while (evals < cfg.budget) {
    // --- build this generation's probe list (deterministic order) ---
    std::vector<probe> probes;
    for (std::size_t gi = 0; gi < population.size(); ++gi) {
      for (std::size_t c = 0; c < contexts.size(); ++c) {
        if (evals + static_cast<int>(probes.size()) >= cfg.budget) break;
        probe p;
        p.genome = population[gi];
        p.context = static_cast<int>(c);
        p.genome_index = static_cast<int>(gi);
        p.run_index = evals + static_cast<int>(probes.size());
        probes.push_back(std::move(p));
      }
    }

    // --- evaluate across the work-stealing executor, slot-indexed ---
    std::vector<run_record> records(probes.size());
    std::vector<std::string> failures(probes.size());
    parallel_for_each_index(cfg.jobs, probes.size(), [&](std::size_t i) {
      scenario s = contexts[static_cast<std::size_t>(probes[i].context)];
      s.genome = probes[i].genome.to_params();
      try {
        records[i] = execute_scenario(s, probes[i].run_index, cfg.seed);
      } catch (const std::exception& ex) {
        failures[i] = ex.what();
      }
    });

    // --- fold results, strictly in probe order ---
    std::vector<std::int64_t> fitness(population.size(),
                                      std::numeric_limits<std::int64_t>::max());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      ++evals;
      if (!failures[i].empty()) {
        ++corpus.errors;
        continue;
      }
      const run_record& rec = records[i];
      const scenario& ctx = contexts[static_cast<std::size_t>(probes[i].context)];
      const corpus_entry e = entry_of(probes[i], ctx, rec);
      fitness[static_cast<std::size_t>(probes[i].genome_index)] = std::min(
          fitness[static_cast<std::size_t>(probes[i].genome_index)], e.score);
      if (!e.ok) {
        ++corpus.violations;
        corpus.violators.push_back(e);
      }
      if (seen.insert(e.signature).second) corpus.novel.push_back(e);
      for (int gx = 0; gx < 3; ++gx) {
        const std::int64_t margin = entry_margin(e, gx);
        if (margin < 0) continue;  // gauge never exercised by this run
        const std::pair<int, int> key{probes[i].context, gx};
        const auto it = champ_at.find(key);
        if (it == champ_at.end()) {
          corpus_entry champ = e;
          champ.gauge = obs::gauge_name(static_cast<obs::gauge>(gx));
          champ_at.emplace(key, corpus.champions.size());
          corpus.champions.push_back(std::move(champ));
        } else if (margin < entry_margin(corpus.champions[it->second], gx)) {
          corpus_entry champ = e;
          champ.gauge = corpus.champions[it->second].gauge;
          corpus.champions[it->second] = std::move(champ);
        }
      }
    }
    corpus.evaluations = evals;

    // --- selection: elites + champion genomes, refilled by variation ---
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return fitness[a] < fitness[b];
    });
    std::vector<hunt_genome> parents;
    const auto adopt = [&](const hunt_genome& g) {
      if (std::find(parents.begin(), parents.end(), g) == parents.end())
        parents.push_back(g);
    };
    const std::size_t elite_count =
        std::max<std::size_t>(2, population.size() / 4);
    for (std::size_t r = 0; r < elite_count && r < order.size(); ++r)
      adopt(population[order[r]]);
    for (const corpus_entry& champ : corpus.champions) adopt(champ.genome);

    std::vector<hunt_genome> next = parents;
    if (next.size() > static_cast<std::size_t>(population_size))
      next.resize(static_cast<std::size_t>(population_size));
    while (next.size() < static_cast<std::size_t>(population_size)) {
      const std::uint64_t roll = evo.below(10);
      if (roll < 6 || parents.size() < 2) {
        next.push_back(mutate(parents[evo.below(parents.size())], evo));
      } else if (roll < 8) {
        const std::size_t a = evo.below(parents.size());
        std::size_t b = evo.below(parents.size() - 1);
        if (b >= a) ++b;
        next.push_back(crossover(parents[a], parents[b], evo));
      } else {
        next.push_back(random_genome(evo));
      }
    }
    population = std::move(next);
    ++generation;

    if (log) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (const corpus_entry& champ : corpus.champions)
        best = std::min(best, champ.score);
      log("hunt: generation " + std::to_string(generation) + ", " +
          std::to_string(evals) + "/" + std::to_string(cfg.budget) +
          " evaluations, " + std::to_string(corpus.champions.size()) +
          " champions (best score " +
          (corpus.champions.empty() ? std::string("-")
                                    : std::to_string(best)) +
          "), " + std::to_string(corpus.novel.size()) + " novel, " +
          std::to_string(corpus.violations) + " violations");
    }
  }
  return corpus;
}

run_record replay_entry(const hunt_corpus& corpus, const corpus_entry& entry) {
  const std::vector<scenario> contexts =
      hunt_contexts(corpus.families, corpus.words, corpus.instances);
  for (const scenario& ctx : contexts) {
    if (ctx.name != entry.context) continue;
    scenario s = ctx;
    s.genome = entry.genome.to_params();
    return execute_scenario(s, entry.run_index, corpus.seed);
  }
  throw error("hunt: corpus entry references unknown context '" + entry.context +
              "' — families/words/instances drifted since the corpus was built");
}

// ---------------------------------------------------------------------------
// Corpus persistence
// ---------------------------------------------------------------------------

namespace {

json entry_json(const corpus_entry& e) {
  json obj = json::object();
  obj.set("context", json::str(e.context));
  if (!e.gauge.empty()) obj.set("gauge", json::str(e.gauge));
  obj.set("genome", e.genome.to_json());
  obj.set("run_index", json::num(e.run_index));
  obj.set("signature", json::str(hex_seed(e.signature)));
  obj.set("margin_quorum_slack", json::num(e.margin_quorum_slack));
  obj.set("margin_hold_surplus", json::num(e.margin_hold_surplus));
  obj.set("margin_dispute_headroom", json::num(e.margin_dispute_headroom));
  obj.set("score", json::num(e.score));
  obj.set("ok", json::boolean(e.ok));
  return obj;
}

// --- minimal recursive-descent JSON reader (the repo's json class is an
// --- emitter by design; the corpus is the one document we also load) ---

struct jvalue {
  enum class kind { null, object, array, string, number, boolean } k = kind::null;
  std::vector<std::pair<std::string, jvalue>> members;
  std::vector<jvalue> elements;
  std::string text;   // string payload
  std::int64_t num = 0;
  bool flag = false;

  const jvalue* find(std::string_view key) const {
    for (const auto& [k2, v] : members)
      if (k2 == key) return &v;
    return nullptr;
  }
};

class jreader {
 public:
  explicit jreader(std::string_view text) : text_(text) {}

  jvalue parse() {
    jvalue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw error("hunt corpus: malformed JSON (" + what + " at byte " +
                std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  jvalue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        jvalue v;
        v.k = jvalue::kind::string;
        v.text = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      default: return number();
    }
  }

  jvalue object() {
    expect('{');
    jvalue v;
    v.k = jvalue::kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  jvalue array() {
    expect('[');
    jvalue v;
    v.k = jvalue::kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.elements.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          default: fail("unsupported escape");
        }
        continue;
      }
      out.push_back(c);
    }
  }

  jvalue boolean() {
    jvalue v;
    v.k = jvalue::kind::boolean;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.flag = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.flag = false;
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return v;
  }

  jvalue number() {
    jvalue v;
    v.k = jvalue::kind::number;
    bool negative = false;
    if (peek() == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      fail("expected number");
    std::int64_t out = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      out = out * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    v.num = negative ? -out : out;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const jvalue& member(const jvalue& obj, std::string_view key) {
  const jvalue* v = obj.find(key);
  if (v == nullptr)
    throw error("hunt corpus: missing key '" + std::string(key) + "'");
  return *v;
}

std::int64_t int_member(const jvalue& obj, std::string_view key) {
  const jvalue& v = member(obj, key);
  if (v.k != jvalue::kind::number)
    throw error("hunt corpus: key '" + std::string(key) + "' is not a number");
  return v.num;
}

std::string str_member(const jvalue& obj, std::string_view key) {
  const jvalue& v = member(obj, key);
  if (v.k != jvalue::kind::string)
    throw error("hunt corpus: key '" + std::string(key) + "' is not a string");
  return v.text;
}

std::uint64_t seed_member(const jvalue& obj, std::string_view key) {
  const std::string text = str_member(obj, key);
  if (text.size() != 18 || text.compare(0, 2, "0x") != 0)
    throw error("hunt corpus: key '" + std::string(key) +
                "' is not a 0x-prefixed 16-digit seed");
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A') + 10;
    else
      throw error("hunt corpus: bad hex digit in '" + text + "'");
    out = (out << 4) | digit;
  }
  return out;
}

corpus_entry entry_from_json(const jvalue& obj) {
  corpus_entry e;
  e.context = str_member(obj, "context");
  if (const jvalue* g = obj.find("gauge")) {
    if (g->k != jvalue::kind::string)
      throw error("hunt corpus: key 'gauge' is not a string");
    e.gauge = g->text;
  }
  const jvalue& genome = member(obj, "genome");
  if (genome.k != jvalue::kind::object)
    throw error("hunt corpus: key 'genome' is not an object");
  std::string params;
  for (const auto& [key, v] : genome.members) {
    if (v.k != jvalue::kind::number)
      throw error("hunt corpus: genome field '" + key + "' is not a number");
    if (!params.empty()) params.push_back(',');
    params += key + "=" + std::to_string(v.num);
  }
  e.genome = hunt_genome::from_params(params);
  e.run_index = static_cast<int>(int_member(obj, "run_index"));
  e.signature = seed_member(obj, "signature");
  e.margin_quorum_slack = int_member(obj, "margin_quorum_slack");
  e.margin_hold_surplus = int_member(obj, "margin_hold_surplus");
  e.margin_dispute_headroom = int_member(obj, "margin_dispute_headroom");
  e.score = int_member(obj, "score");
  const jvalue& ok = member(obj, "ok");
  if (ok.k != jvalue::kind::boolean)
    throw error("hunt corpus: key 'ok' is not a boolean");
  e.ok = ok.flag;
  return e;
}

std::vector<corpus_entry> entries_from_json(const jvalue& doc,
                                            std::string_view key) {
  const jvalue& arr = member(doc, key);
  if (arr.k != jvalue::kind::array)
    throw error("hunt corpus: key '" + std::string(key) + "' is not an array");
  std::vector<corpus_entry> out;
  for (const jvalue& e : arr.elements) out.push_back(entry_from_json(e));
  return out;
}

}  // namespace

json corpus_document(const hunt_corpus& corpus) {
  json doc = json::object();
  doc.set("kind", json::str("nabcast-hunt-corpus"));
  doc.set("families", json::str(corpus.families));
  doc.set("seed", json::str(hex_seed(corpus.seed)));
  doc.set("budget", json::num(corpus.budget));
  doc.set("words", json::num(corpus.words));
  doc.set("instances", json::num(corpus.instances));
  doc.set("evaluations", json::num(corpus.evaluations));
  doc.set("violations", json::num(corpus.violations));
  doc.set("errors", json::num(corpus.errors));
  json champions = json::array();
  for (const corpus_entry& e : corpus.champions) champions.push(entry_json(e));
  doc.set("champions", std::move(champions));
  json novel = json::array();
  for (const corpus_entry& e : corpus.novel) novel.push(entry_json(e));
  doc.set("novel", std::move(novel));
  json violators = json::array();
  for (const corpus_entry& e : corpus.violators) violators.push(entry_json(e));
  doc.set("violators", std::move(violators));
  return doc;
}

hunt_corpus corpus_from_text(std::string_view text) {
  const jvalue doc = jreader(text).parse();
  if (doc.k != jvalue::kind::object)
    throw error("hunt corpus: document is not a JSON object");
  if (str_member(doc, "kind") != "nabcast-hunt-corpus")
    throw error("hunt corpus: not a hunt corpus document");
  hunt_corpus corpus;
  corpus.families = str_member(doc, "families");
  corpus.seed = seed_member(doc, "seed");
  corpus.budget = static_cast<int>(int_member(doc, "budget"));
  corpus.words = static_cast<std::uint64_t>(int_member(doc, "words"));
  corpus.instances = static_cast<int>(int_member(doc, "instances"));
  corpus.evaluations = static_cast<int>(int_member(doc, "evaluations"));
  corpus.violations = static_cast<int>(int_member(doc, "violations"));
  corpus.errors = static_cast<int>(int_member(doc, "errors"));
  corpus.champions = entries_from_json(doc, "champions");
  corpus.novel = entries_from_json(doc, "novel");
  corpus.violators = entries_from_json(doc, "violators");
  return corpus;
}

}  // namespace nab::runtime
