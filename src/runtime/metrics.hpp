#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace nab::runtime {

/// Minimal insertion-ordered JSON value for the runtime's machine-readable
/// outputs (BENCH_runtime.json and friends). Deliberately tiny: objects keep
/// key insertion order and numbers print deterministically, so two sweeps
/// that measured the same values serialize to byte-identical files — the
/// property the `--jobs 1` vs `--jobs N` determinism contract is checked
/// against. Not a parser; the repo only ever *emits* JSON.
class json {
 public:
  json() : kind_(kind::null) {}

  static json object();
  static json array();
  static json str(std::string v);
  static json num(double v);
  static json num(std::int64_t v);
  static json num(std::uint64_t v) { return num(static_cast<std::int64_t>(v)); }
  static json num(int v) { return num(static_cast<std::int64_t>(v)); }
  static json boolean(bool v);

  /// Object member (insertion order preserved). Returns *this for chaining.
  json& set(std::string key, json value);
  /// Array element. Returns *this for chaining.
  json& push(json value);

  /// Serializes with 2-space indentation and a trailing newline at depth 0.
  std::string dump() const;

 private:
  enum class kind { null, object, array, string, number_int, number_real, boolean };

  void write(std::string& out, int depth) const;

  kind kind_;
  std::string string_;
  std::int64_t int_ = 0;
  double real_ = 0.0;
  bool bool_ = false;
  std::vector<std::pair<std::string, json>> members_;  // object
  std::vector<json> elements_;                         // array
};

/// Machine-set observability data riding along with a run_record: wall-clock
/// per phase, the scheduling-dependent cache/arena counters, and — when the
/// sweep ran with timeline capture — the raw span list. Everything in here
/// describes the machine and the jobs count, not the workload, so
/// `operator==` deliberately always returns true: the defaulted run_record
/// equality (the `--jobs 1` vs `--jobs N` determinism contract) compares
/// records as if this struct did not exist, the same way wall_seconds lives
/// outside the records entirely.
struct run_timing {
  /// Summed wall seconds of the run's depth-1 phase spans, keyed by span
  /// name and sorted (phase1, equality_check, flags, phase3, refresh_graph,
  /// plus any omega_cache fill the run happened to pay).
  std::vector<std::pair<std::string, double>> wall_by_phase;
  std::uint64_t cache_hits = 0;       ///< omega_cache hits this run observed
  std::uint64_t cache_misses = 0;     ///< misses this run paid for the fleet
  std::uint64_t arena_allocs = 0;     ///< arena allocations served
  std::uint64_t arena_pool_hits = 0;  ///< of which from a free list
  /// Full span list (nesting via parent/depth); captured only under
  /// fleet --timeline, empty otherwise.
  std::vector<obs::span_record> spans;

  bool operator==(const run_timing&) const { return true; }
};

/// Everything measured about one fleet run (one scenario executed end to
/// end: a full session of `instances` NAB instances). Plain data; equality
/// ignores nothing — wall-clock time is kept OUT of this struct (see
/// run_timing) so records are comparable across thread counts, and is
/// reported separately.
struct run_record {
  int run_index = 0;              ///< position in the expanded sweep
  std::string scenario;           ///< concrete scenario name (unique per sweep)
  std::string family;             ///< registry preset this expanded from
  std::uint64_t seed = 0;         ///< derived per-run seed actually used

  // Configuration echo (what was run, for offline analysis).
  std::string topology;
  int nodes = 0;
  int f = 0;
  std::string adversary;
  std::string propagation;
  std::string flag_protocol;
  std::string claim_backend;      ///< Phase-3 DC1 claim-dissemination engine
  std::string loss = "none";      ///< link-fault spec ("none" = perfect links)
  int instances = 0;
  std::uint64_t words = 0;
  std::vector<int> corrupt;       ///< corrupt node ids chosen for this run

  // Paper quantities of the first instance (G_1).
  std::int64_t gamma = 0;
  std::int64_t rho = 0;

  // Measured outcomes over the whole session.
  double sim_elapsed = 0.0;       ///< simulated time units
  std::uint64_t bits_broadcast = 0;
  double throughput = 0.0;        ///< bits / simulated time
  double tau_mean = 0.0;          ///< mean simulated duration per instance
  int dispute_phases = 0;
  int disputes = 0;               ///< distinct disputing pairs at session end
  int convictions = 0;
  int mismatch_instances = 0;
  int phase1_only_instances = 0;
  int default_outcome_instances = 0;
  /// Wire bits DC1's claim dissemination consumed across the session (0
  /// when no dispute phase ran) and, for the collapsed backend, how many
  /// (claimant, receiver) pairs needed the full-transcript retrieval
  /// fallback — the per-backend accounting the Theta(n^f) -> polynomial
  /// claim-traffic claim is asserted against.
  std::uint64_t dc1_claim_bits = 0;
  int dc1_fallbacks = 0;

  // Deterministic obs counters (src/obs): pure functions of the workload,
  // bit-identical across --jobs counts and pooled/unpooled sessions, so they
  // sit inside the defaulted operator== and the determinism contract covers
  // them. gf_ops is the headline sum the CI perf smoke asserts nonzero on
  // certified runs.
  std::uint64_t gf_ops = 0;              ///< sum of the four gf_* below
  std::uint64_t gf_axpy_words = 0;
  std::uint64_t gf_scale_words = 0;
  std::uint64_t gf_mul_ops = 0;
  std::uint64_t gf_rows_eliminated = 0;
  std::uint64_t cert_prefix_pushes = 0;
  std::uint64_t cert_prefix_pops = 0;
  std::uint64_t cert_ghost_repushes = 0;
  std::uint64_t cert_subgraphs = 0;
  std::uint64_t cert_loo_downdates = 0;  ///< f=1 leave-one-out rank downdates
  std::uint64_t cache_lookups = 0;       ///< deterministic companion of hit/miss
  std::uint64_t plan_safety_checks = 0;       ///< packer certificate validations
  std::uint64_t plan_flow_augmentations = 0;  ///< packer unit augmenting paths
  std::uint64_t route_pairs = 0;              ///< ordered pairs in the route table
  std::uint64_t route_flow_augmentations = 0; ///< route-builder augmenting paths
  std::uint64_t claim_echoes = 0;
  std::uint64_t claim_readys = 0;
  // Link-fault layer (sim/link_faults + the network ARQ loop): all zero on
  // perfect links and under the inert "zero" model.
  std::uint64_t link_drops = 0;               ///< transmissions erased
  std::uint64_t retransmits = 0;              ///< ARQ retransmissions paid
  std::uint64_t burst_spans = 0;              ///< good->bad chain transitions
  std::uint64_t retry_budget_exhaustions = 0; ///< messages degraded to missing

  // Invariant-margin gauges (minimum over the run, -1 = never exercised):
  // how much headroom the run kept before a quorum rule or the paper's
  // dispute bound would have failed. The scoring signal an adversary search
  // ranks runs by — smaller means closer to the edge.
  std::int64_t margin_quorum_slack = -1;
  std::int64_t margin_hold_surplus = -1;
  std::int64_t margin_dispute_headroom = -1;
  /// min over loss-affected messages of (retry budget - retries needed);
  /// -1 when no message ever needed a retry. 0 means some message exhausted
  /// its budget — the hunt's future statistical-axis scoring signal.
  std::int64_t margin_retry_headroom = -1;

  /// Machine-set timing data (excluded from operator== — see run_timing).
  run_timing timing;

  /// Per-link traffic matrix (universe x universe, row-major bits), filled
  /// only when the sweep ran with trace capture (fleet --trace); empty
  /// otherwise so BENCH_runtime.json stays byte-stable.
  std::vector<std::uint64_t> traffic;

  // Pipelined-propagation runs only (0 otherwise): Appendix-D pipe depth
  // and the measured pipelined-vs-sequential speedup.
  int pipeline_depth = 0;
  double pipeline_speedup = 0.0;

  // Paper invariants, asserted per run.
  bool agreement = true;          ///< all instances: honest outputs identical
  bool validity = true;           ///< all instances: honest source ==> input
  bool dispute_sound = true;      ///< every disputing pair touches a corrupt node
  bool conviction_sound = true;   ///< only corrupt nodes convicted
  bool dispute_bound = true;      ///< <= f(f+1) dispute-control executions

  bool ok() const {
    return agreement && validity && dispute_sound && conviction_sound && dispute_bound;
  }

  bool operator==(const run_record&) const = default;

  /// `include_timing` adds the run_timing fields (wall_seconds_by_phase and
  /// the machine counters) — the same keys the determinism CI strips, named
  /// with the wall_seconds prefix so one strip rule covers both layers.
  json to_json(bool include_timing = false) const;
};

/// Sweep-level aggregates, derived from the records.
struct sweep_summary {
  int runs = 0;
  int failed_runs = 0;            ///< runs with any invariant violated
  int total_instances = 0;
  int total_dispute_phases = 0;
  double min_throughput = 0.0;
  double mean_throughput = 0.0;
  double max_throughput = 0.0;
};

sweep_summary summarize(const std::vector<run_record>& records);

/// "0x"-prefixed 16-digit hex for a seed. Seeds are serialized as strings:
/// JSON numbers lose uint64 range (2^53 mantissa, int64 sign flip).
std::string hex_seed(std::uint64_t seed);

/// The canonical BENCH_runtime.json document: metadata + per-run records +
/// aggregate summary. Deterministic for fixed records; `wall_seconds` < 0
/// omits every wall-clock field (used by the determinism test).
/// `family_wall_seconds`, when non-null and wall_seconds >= 0, adds a
/// "wall_seconds_by_family" section (family name -> summed wall of its
/// runs) — the per-preset perf trajectory the ROADMAP tracks. Like
/// wall_seconds it describes the machine and jobs count, not the workload.
json sweep_document(const std::string& sweep_name, std::uint64_t base_seed, int jobs,
                    const std::vector<run_record>& records, double wall_seconds,
                    const std::map<std::string, double>* family_wall_seconds = nullptr);

/// The fleet --trace document: per-run sparse traffic matrices (one entry
/// per link that carried bits) from records captured with ambient traces.
/// Runs without traffic data are skipped. Deterministic for fixed records.
json trace_document(const std::string& sweep_name, std::uint64_t base_seed,
                    const std::vector<run_record>& records);

/// The fleet --timeline document: every captured span of every run as a
/// Chrome-trace / Perfetto "traceEvents" JSON (complete "X" events, ts/dur
/// in microseconds of wall time, one pid per run so runs render as separate
/// processes; sim-time bounds and span depth travel in args). Load with
/// chrome://tracing or https://ui.perfetto.dev. Runs captured without spans
/// are skipped.
json timeline_document(const std::string& sweep_name, std::uint64_t base_seed,
                       const std::vector<run_record>& records);

/// Aggregates each record's depth-1 spans into (phase name -> summed wall
/// seconds), sorted by name — the run_timing::wall_by_phase shape. Exposed
/// for the runner and tests.
std::vector<std::pair<std::string, double>> wall_by_phase_of(
    const std::vector<obs::span_record>& spans);

/// Writes `doc.dump()` to `path` (throws nab::error on I/O failure).
void write_json_file(const std::string& path, const json& doc);

}  // namespace nab::runtime
