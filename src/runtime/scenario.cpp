#include "runtime/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/hunt.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::runtime {

graph::digraph build_topology(const topology_spec& spec, rng& rand) {
  switch (spec.kind) {
    case topology_kind::complete:
      return graph::complete(spec.n, spec.cap_lo);
    case topology_kind::fig1a:
      return graph::paper_fig1a();
    case topology_kind::fig1b:
      return graph::paper_fig1b();
    case topology_kind::fig2:
      return graph::paper_fig2();
    case topology_kind::ring:
      return graph::ring(spec.n, spec.cap_lo);
    case topology_kind::erdos_renyi:
      return graph::erdos_renyi(spec.n, spec.p, spec.cap_lo, spec.cap_hi, rand);
    case topology_kind::random_regular:
      return graph::random_regular(spec.n, spec.param_a, spec.cap_lo, spec.cap_hi,
                                   rand);
    case topology_kind::hypercube:
      return graph::hypercube(spec.param_a, spec.cap_lo);
    case topology_kind::clustered_wan:
      return graph::clustered_wan(spec.param_a, spec.param_b, spec.cap_lo,
                                  spec.cap_hi);
    case topology_kind::dumbbell:
      return graph::dumbbell(spec.n, spec.cap_lo, spec.cap_hi);
    case topology_kind::weak_link:
      return graph::complete_with_weak_link(spec.n, spec.cap_lo);
    case topology_kind::path_of_cliques:
      return graph::path_of_cliques(spec.param_a, spec.param_b, spec.cap_lo);
  }
  throw error("build_topology: unhandled topology kind");
}

int topology_nodes(const topology_spec& spec) {
  switch (spec.kind) {
    case topology_kind::fig1a:
    case topology_kind::fig1b:
    case topology_kind::fig2:
      return 4;
    case topology_kind::hypercube:
      return 1 << spec.param_a;
    case topology_kind::clustered_wan:
    case topology_kind::path_of_cliques:
      return spec.param_a * spec.param_b;
    default:
      return spec.n;
  }
}

std::unique_ptr<core::nab_adversary> make_adversary(adversary_kind kind,
                                                    std::uint64_t seed,
                                                    graph::node_id minority_victim,
                                                    std::string_view genome) {
  using namespace core;
  switch (kind) {
    case adversary_kind::honest:
      return nullptr;
    case adversary_kind::p1_garble:
      return std::make_unique<phase1_corruptor>();
    case adversary_kind::equivocate:
      return std::make_unique<equivocating_source>(
          std::set<graph::node_id>{minority_victim});
    case adversary_kind::p2_lie:
      return std::make_unique<phase2_liar>(seed);
    case adversary_kind::false_flag:
      return std::make_unique<false_flagger>();
    case adversary_kind::stealth:
      return std::make_unique<stealth_disputer>();
    case adversary_kind::dispute_farm:
      return std::make_unique<dispute_farmer>();
    case adversary_kind::chaos:
      return std::make_unique<chaos_adversary>(seed);
    case adversary_kind::hunted:
      if (genome.empty())
        throw error("make_adversary: a hunted scenario needs a genome");
      return std::make_unique<genome_adversary>(hunt_genome::from_params(genome),
                                                seed);
  }
  throw error("make_adversary: unhandled adversary kind");
}

namespace {

std::string axis_suffix(const scenario_family& fam, const scenario& s) {
  // Only axes with more than one value appear in the name, so single-config
  // families keep their bare preset name.
  std::string out;
  if (fam.topologies.size() > 1)
    out += "/" + to_string(s.topology.kind) + "-n" + std::to_string(topology_nodes(s.topology));
  if (fam.fault_budgets.size() > 1) out += "/f" + std::to_string(s.f);
  if (fam.adversaries.size() > 1) out += "/" + to_string(s.adversary);
  if (fam.word_counts.size() > 1) out += "/w" + std::to_string(s.words);
  if (fam.propagations.size() > 1) out += "/" + to_string(s.propagation);
  if (fam.flag_protocols.size() > 1) out += "/" + to_string(s.flag_protocol);
  // "cb-" disambiguates from the flag-protocol suffix (both axes share the
  // "eig"/"phase_king" value names).
  if (fam.claim_backends.size() > 1) out += "/cb-" + to_string(s.claim_backend);
  if (fam.losses.size() > 1) out += "/loss-" + s.loss;
  return out;
}

}  // namespace

std::vector<scenario> scenario_family::expand() const {
  NAB_ASSERT(!topologies.empty() && !fault_budgets.empty() && !adversaries.empty() &&
                 !word_counts.empty() && !propagations.empty() &&
                 !flag_protocols.empty() && !claim_backends.empty() && !losses.empty(),
             "scenario_family with an empty axis");
  std::vector<scenario> out;
  for (const topology_spec& topo : topologies)
    for (int f : fault_budgets)
      for (adversary_kind adv : adversaries)
        for (std::uint64_t w : word_counts)
          for (core::propagation_mode prop : propagations)
            for (bb::bb_protocol proto : flag_protocols)
              for (bb::claim_backend backend : claim_backends)
                for (const std::string& loss : losses) {
                  scenario s;
                  s.family = name;
                  s.topology = topo;
                  s.f = f;
                  s.adversary = adv;
                  s.words = w;
                  s.propagation = prop;
                  s.flag_protocol = proto;
                  s.claim_backend = backend;
                  s.loss = loss;
                  s.instances = instances;
                  s.rotate_sources = rotate_sources;
                  s.certify_cost_limit = certify_cost_limit;
                  if (adv == adversary_kind::hunted) s.genome = genome;
                  s.name = name + axis_suffix(*this, s);
                  out.push_back(std::move(s));
                }
  return out;
}

namespace {

std::vector<scenario_family> build_registry() {
  using tk = topology_kind;
  using ak = adversary_kind;
  std::vector<scenario_family> reg;

  // --- The paper's worked figures, under every single-strategy attack. ---
  {
    scenario_family fam;
    fam.name = "fig1";
    fam.description =
        "Figure 1(a)/(b): the paper's hand-traced 4-node example. Vertex "
        "connectivity is 2, so full sessions run fault-free (f = 0) — the "
        "figure's dispute trajectory is covered by the capacity tests.";
    fam.topologies = {{.kind = tk::fig1a}, {.kind = tk::fig1b}};
    fam.fault_budgets = {0};
    fam.instances = 6;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "fig2";
    fam.description =
        "Figure 2(a): the asymmetric-capacity example whose two-tree packing "
        "shares link (1,2); gamma = 2 must be achieved (fault-free — the "
        "graph is directed-sparse and supports no positive f).";
    fam.topologies = {{.kind = tk::fig2}};
    fam.fault_budgets = {0};
    fam.instances = 6;
    reg.push_back(std::move(fam));
  }

  // --- Dense complete-graph sweep across fault budgets and adversaries. ---
  {
    scenario_family fam;
    fam.name = "complete";
    fam.description =
        "Complete graphs K_n under every built-in adversary strategy — the "
        "core correctness x throughput sweep (n - 1 trees, gamma = n - 1).";
    fam.topologies = {{.kind = tk::complete, .n = 4, .cap_lo = 1, .cap_hi = 1},
                      {.kind = tk::complete, .n = 7, .cap_lo = 2, .cap_hi = 2}};
    fam.adversaries = {ak::honest, ak::p1_garble, ak::equivocate, ak::p2_lie,
                       ak::false_flag, ak::stealth, ak::chaos};
    fam.instances = 6;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "complete-f2";
    fam.description =
        "K_7 with a two-node coalition (f = 2): dispute control must stay "
        "within the f(f+1) = 6 execution bound against the stealth strategy.";
    fam.topologies = {{.kind = tk::complete, .n = 7, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::honest, ak::stealth, ak::dispute_farm, ak::chaos};
    fam.instances = 10;
    reg.push_back(std::move(fam));
  }

  // --- Scaling topologies (beyond the paper's figures). ---
  {
    scenario_family fam;
    fam.name = "ring";
    fam.description =
        "Fault-free rings (vertex connectivity 2 only supports f = 0): "
        "gamma = 2 regardless of n, the anti-scaling throughput baseline.";
    fam.topologies = {{.kind = tk::ring, .n = 5, .cap_lo = 2, .cap_hi = 2},
                      {.kind = tk::ring, .n = 8, .cap_lo = 2, .cap_hi = 2}};
    fam.fault_budgets = {0};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "random-regular";
    fam.description =
        "Random d-regular graphs with random capacities in [1, 3]: the "
        "generic 'deployed overlay' case (d >= 2f + 1 for feasibility).";
    fam.topologies = {
        {.kind = tk::random_regular, .n = 8, .param_a = 4, .cap_lo = 1, .cap_hi = 3},
        {.kind = tk::random_regular, .n = 10, .param_a = 5, .cap_lo = 1, .cap_hi = 3}};
    fam.adversaries = {ak::honest, ak::p1_garble, ak::chaos};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hypercube";
    fam.description =
        "Binary hypercubes (dim 3): sparse, vertex connectivity = dim, "
        "f <= (dim-1)/2 — the structured-sparse scaling point.";
    fam.topologies = {{.kind = tk::hypercube, .param_a = 3, .cap_lo = 2}};
    fam.adversaries = {ak::honest, ak::p1_garble, ak::p2_lie};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "clustered-wan";
    fam.description =
        "Geo-clustered WAN: complete clusters with fat local links joined by "
        "thin trunks; NAB's capacity-awareness is the whole point here.";
    fam.topologies = {{.kind = tk::clustered_wan, .param_a = 3, .param_b = 3,
                       .cap_lo = 4, .cap_hi = 1}};
    fam.adversaries = {ak::honest, ak::p1_garble, ak::stealth};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }

  // --- K_16-class scaling presets (unlocked by the omega_cache layer and
  // --- the batched certifier; see docs/RUNTIME.md). ---
  {
    scenario_family fam;
    fam.name = "k16_dense";
    fam.description =
        "K_16 at f in {1,2}: the dense scaling point. Omega_k holds up to "
        "C(16,2) = 120 subgraphs and certification is a 169x182 GF(2^16) "
        "rank question per subgraph — the workload the analysis cache and "
        "the batched certifier exist for.";
    fam.topologies = {{.kind = tk::complete, .n = 16, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {1, 2};
    fam.adversaries = {ak::honest, ak::stealth};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hypercube_d5";
    fam.description =
        "Binary hypercube dim 5 (32 nodes, connectivity 5, f <= 2): the "
        "structured-sparse scaling point where the column-limited batched "
        "certifier wins. Flags run phase-king via auto_select, and the "
        "claim backend auto-collapses at f = 2 (EIG's Theta(n^f)*L DC1 was "
        "the documented n=32 bottleneck: 12.7 GiB of claim traffic per "
        "dispute phase, now 23 MiB).";
    fam.topologies = {{.kind = tk::hypercube, .param_a = 5, .cap_lo = 2}};
    fam.fault_budgets = {1, 2};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.claim_backends = {bb::claim_backend::auto_select};
    fam.instances = 3;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "wan_5cluster";
    fam.description =
        "Five complete 4-node clusters with fat local links and thin WAN "
        "trunks (20 nodes): the geo-replication scaling point — NAB must "
        "price the trunks, and Omega_1 has 20 nineteen-node subgraphs.";
    fam.topologies = {{.kind = tk::clustered_wan, .param_a = 5, .param_b = 4,
                       .cap_lo = 4, .cap_hi = 1}};
    fam.adversaries = {ak::honest, ak::p1_garble, ak::stealth};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }

  // --- n = 64 presets (unlocked by the collapsed claim backend: EIG's
  // --- Theta(n^f)*L DC1 made any dispute phase at this scale infeasible). ---
  {
    scenario_family fam;
    fam.name = "k64_dense";
    fam.description =
        "64-node dense random-regular overlay (d = 10): the K_64-class "
        "scaling point. DC1 under EIG would relay ~65 full-transcript "
        "labels to 64 receivers for each of 65 claimants; the collapsed "
        "backend pays n^2 digests + one transcript copy per pair. f = 1 "
        "certification runs the leave-one-out downdate path: one all-blocks "
        "Gauss-Jordan answers all 64 rank questions (~1e8 GF words, well "
        "under the raised gate that the old per-prefix walk needed).";
    fam.topologies = {{.kind = tk::random_regular, .n = 64, .param_a = 10,
                       .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {1};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 2;
    fam.certify_cost_limit = 4'000'000'000;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hypercube_d6";
    fam.description =
        "Binary hypercube dim 6 (64 nodes, connectivity 6, f <= 2): the "
        "structured-sparse n = 64 point. Omega_2 holds C(64,2) = 2016 "
        "subgraphs; the raised certification gate keeps the rank checks "
        "running, and the collapsed claim backend keeps dispute phases "
        "polynomial where EIG's n^f label tree could not run at all.";
    fam.topologies = {{.kind = tk::hypercube, .param_a = 6, .cap_lo = 1}};
    fam.fault_budgets = {1, 2};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 2;
    fam.certify_cost_limit = 4'000'000'000;
    reg.push_back(std::move(fam));
  }

  // --- Frontier presets (unlocked by the leave-one-out certifier and the
  // --- SIMD row kernels: one all-blocks Gauss-Jordan answers every f = 1
  // --- rank question, so complete density and n = 128 certify in-sweep). ---
  {
    scenario_family fam;
    fam.name = "k64_complete";
    fam.description =
        "Complete K_64 (f = 1): the complete-density frontier. Omega_1 "
        "holds 64 subgraphs of 63 nodes at rho = 62, so each check matrix "
        "is a 3906-rank question over 4032 columns — feasible only because "
        "the leave-one-out certifier answers all 64 from ONE Gauss-Jordan "
        "of the all-blocks matrix plus a ~126-column corner per member "
        "(~3.2e10 GF words, ~10 s on the AVX2 row kernels; per-subgraph "
        "elimination would be 64x that).";
    fam.topologies = {{.kind = tk::complete, .n = 64, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {1};
    fam.adversaries = {ak::honest};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 2;
    fam.certify_cost_limit = 64'000'000'000;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hypercube_d7";
    fam.description =
        "Binary hypercube dim 7 (128 nodes, connectivity 7, f = 1): the "
        "n = 128 frontier. Omega_1 holds 128 subgraphs of 127 nodes; the "
        "leave-one-out certifier prices them at ~3e8 GF words (well under "
        "the default gate, ~0.1 s on AVX2) where the per-prefix DFS walk "
        "took minutes, and the collapsed claim backend keeps dispute "
        "phases polynomial at this scale.";
    fam.topologies = {{.kind = tk::hypercube, .param_a = 7, .cap_lo = 1}};
    fam.fault_budgets = {1};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.flag_protocols = {bb::bb_protocol::auto_select};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 2;
    reg.push_back(std::move(fam));
  }

  // --- Adversarial capacity skews (the intro's unbounded-gap workloads). ---
  {
    scenario_family fam;
    fam.name = "capacity-skew";
    fam.description =
        "Dumbbell and weak-link skews: one thin link must not throttle "
        "throughput (capacity-oblivious protocols stall here, NAB must not).";
    fam.topologies = {{.kind = tk::dumbbell, .n = 6, .cap_lo = 4, .cap_hi = 1},
                      {.kind = tk::weak_link, .n = 5, .cap_lo = 4}};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }

  // --- Ablations: payload size, propagation model, flag-BB engine. ---
  {
    scenario_family fam;
    fam.name = "ablation-length";
    fam.description =
        "Amortization in L: throughput must rise toward the bound as the "
        "per-instance payload grows (Eq. 24 regime).";
    fam.topologies = {{.kind = tk::complete, .n = 5, .cap_lo = 1, .cap_hi = 1}};
    fam.word_counts = {16, 256, 2048};
    fam.instances = 3;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "ablation-propagation";
    fam.description =
        "cut-through vs store-and-forward vs Appendix-D pipelined Phase 1 "
        "(the regime Figure 3's pipelining repairs) on a 3-hop path of "
        "cliques; pipelined runs execute core::run_pipelined fault-free.";
    fam.topologies = {{.kind = tk::path_of_cliques, .param_a = 3, .param_b = 3,
                       .cap_lo = 1}};
    fam.propagations = {core::propagation_mode::cut_through,
                        core::propagation_mode::store_and_forward,
                        core::propagation_mode::pipelined};
    fam.instances = 3;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "ablation-claims";
    fam.description =
        "EIG vs batched phase-king vs collapsed for the Phase-3 claim "
        "broadcast on K_9 with an f = 2 coalition (false flags force a "
        "dispute phase every instance; stealth farms real disputes): "
        "dispute sets, convictions, and agreed values must be byte-identical "
        "across backends — only the DC1 claim bytes move.";
    fam.topologies = {{.kind = tk::complete, .n = 9, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::false_flag, ak::stealth};
    fam.claim_backends = {bb::claim_backend::eig, bb::claim_backend::phase_king,
                          bb::claim_backend::collapsed};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "ablation-flags";
    fam.description =
        "EIG vs phase-king for the step-2.2 flag broadcast (A3: the choice "
        "must not affect correctness, only constant-factor overhead).";
    fam.topologies = {{.kind = tk::complete, .n = 6, .cap_lo = 1, .cap_hi = 1}};
    fam.adversaries = {ak::p1_garble, ak::false_flag};
    fam.flag_protocols = {bb::bb_protocol::eig, bb::bb_protocol::phase_king};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }

  // --- Promoted hunt champions (fleet --hunt; see docs/HUNT.md). ---
  // Each genome below was found by the coverage-guided adversary search and
  // drives one invariant-margin gauge strictly below every hand-written
  // strategy on the same topology. They replay through the ordinary sweep
  // machinery, so tier-1 keeps re-checking that the tightest known squeezes
  // still satisfy the paper's invariants. Hand-written baselines at the time
  // of promotion: no K_7 preset records the quorum gauges at all, and the
  // K_9 ablation-claims minima are quorum_slack = 4, hold_surplus = 4.
  {
    scenario_family fam;
    fam.name = "hunted_k7_quorum";
    fam.description =
        "Promoted hunt champion: garbled forwards force the dispute path, "
        "then both corrupt nodes withhold READY so the collapsed claim "
        "broadcast accepts at the exact 2f+1 quorum (quorum_slack = 0; the "
        "honest-behavior slack on K_7 f=2 is 2).";
    fam.topologies = {{.kind = tk::complete, .n = 7, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::hunted};
    fam.word_counts = {16};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 4;
    fam.genome =
        "p1_source=0,p1_forward=255,p2_lie=0,flag_flip=0,claim_tamper=0,"
        "input_lie=0,digest_equivocate=0,digest_garble=0,echo_suppress=0,"
        "ready_suppress=255,retrieval_forge=0,xor_mask=65535,victim_mode=0,"
        "corrupt_source=0,corrupt_salt=0,noise_salt=0";
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hunted_k7_hold";
    fam.description =
        "Promoted hunt champion: garbled digests plus selective echo "
        "suppression shrink the echo set until accepted claims are held by "
        "the bare f+1 honest nodes needed for retrieval (hold_surplus = 0 "
        "on K_7 f=2; the honest-behavior surplus is 2).";
    fam.topologies = {{.kind = tk::complete, .n = 7, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::hunted};
    fam.word_counts = {16};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 4;
    fam.genome =
        "p1_source=128,p1_forward=255,p2_lie=0,flag_flip=0,claim_tamper=128,"
        "input_lie=0,digest_equivocate=0,digest_garble=128,echo_suppress=128,"
        "ready_suppress=0,retrieval_forge=0,xor_mask=1,victim_mode=0,"
        "corrupt_source=0,corrupt_salt=238,noise_salt=76";
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hunted_k9_quorum";
    fam.description =
        "Promoted hunt champion: the K_9 analogue of hunted_k7_quorum — "
        "READY suppression pins quorum_slack to 2, strictly below the "
        "hand-written ablation-claims minimum of 4.";
    fam.topologies = {{.kind = tk::complete, .n = 9, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::hunted};
    fam.word_counts = {16};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 4;
    fam.genome =
        "p1_source=0,p1_forward=255,p2_lie=0,flag_flip=0,claim_tamper=0,"
        "input_lie=0,digest_equivocate=0,digest_garble=0,echo_suppress=0,"
        "ready_suppress=255,retrieval_forge=0,xor_mask=65535,victim_mode=0,"
        "corrupt_source=0,corrupt_salt=0,noise_salt=0";
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "hunted_k9_hold";
    fam.description =
        "Promoted hunt champion: a corrupt source pairing phase-2 lies and "
        "equivocation with echo suppression on K_9 f=2 drives hold_surplus "
        "to 1 (and quorum_slack to 2), strictly below the hand-written "
        "ablation-claims minima of 4.";
    fam.topologies = {{.kind = tk::complete, .n = 9, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::hunted};
    fam.word_counts = {16};
    fam.claim_backends = {bb::claim_backend::collapsed};
    fam.instances = 4;
    fam.genome =
        "p1_source=0,p1_forward=0,p2_lie=255,flag_flip=255,claim_tamper=128,"
        "input_lie=64,digest_equivocate=64,digest_garble=0,echo_suppress=192,"
        "ready_suppress=128,retrieval_forge=0,xor_mask=65535,victim_mode=1,"
        "corrupt_source=1,corrupt_salt=199,noise_salt=0";
    reg.push_back(std::move(fam));
  }

  // --- Lossy links: Gilbert-Elliott erasures + ARQ (sim/link_faults). ---
  // The loss axis composes with topology and adversary: honest runs must
  // survive bursts with zero disputes (erasure is never Byzantine evidence),
  // and tampering adversaries must still be convicted under the same loss
  // process. CI's lossy-smoke job and tests/runtime/test_lossy.cpp pin both.
  {
    scenario_family fam;
    fam.name = "lossy_k7";
    fam.description =
        "K_7 f=2 under the bursty Gilbert-Elliott preset: honest runs agree "
        "with zero disputes despite drops; a phase-1 garbler under the same "
        "loss process is still convicted (erasure vs tamper discrimination).";
    fam.topologies = {{.kind = tk::complete, .n = 7, .cap_lo = 1, .cap_hi = 1}};
    fam.fault_budgets = {2};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.word_counts = {32};
    fam.losses = {"bursty"};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "lossy_hypercube";
    fam.description =
        "Hypercube d=3 sweeping light vs heavy loss (heavy adds per-link "
        "time jitter): multi-hop channel routes where every hop runs its own "
        "link-layer ARQ loop.";
    fam.topologies = {{.kind = tk::hypercube, .param_a = 3, .cap_lo = 2, .cap_hi = 2}};
    fam.fault_budgets = {1};
    fam.adversaries = {ak::honest};
    fam.word_counts = {32};
    fam.losses = {"light", "heavy"};
    fam.instances = 3;
    reg.push_back(std::move(fam));
  }
  {
    scenario_family fam;
    fam.name = "lossy_wan";
    fam.description =
        "Clustered WAN (3x3) f=1 under bursty loss with a stealth disputer: "
        "tamper disputes are still discovered and bounded while erasure-"
        "driven retransmissions ride the same links.";
    fam.topologies = {{.kind = tk::clustered_wan, .param_a = 3, .param_b = 3,
                       .cap_lo = 4, .cap_hi = 1}};
    fam.fault_budgets = {1};
    fam.adversaries = {ak::honest, ak::stealth};
    fam.word_counts = {32};
    fam.losses = {"bursty"};
    fam.instances = 4;
    reg.push_back(std::move(fam));
  }

  // --- Replicated-log style rotation: every replica proposes in turn. ---
  {
    scenario_family fam;
    fam.name = "rotating-sources";
    fam.description =
        "Source rotation over K_5 (replicated state machine usage): dispute "
        "evidence and the instance graph are shared across broadcasters.";
    fam.topologies = {{.kind = tk::complete, .n = 5, .cap_lo = 2, .cap_hi = 2}};
    fam.adversaries = {ak::honest, ak::p1_garble};
    fam.instances = 10;
    fam.rotate_sources = true;
    reg.push_back(std::move(fam));
  }

  return reg;
}

}  // namespace

const std::vector<scenario_family>& registry() {
  static const std::vector<scenario_family> reg = build_registry();
  return reg;
}

const scenario_family* find_family(std::string_view name) {
  for (const scenario_family& fam : registry())
    if (fam.name == name) return &fam;
  return nullptr;
}

std::vector<scenario> select_scenarios(std::string_view names) {
  std::vector<scenario> out;
  if (names == "all" || names.empty()) {
    for (const scenario_family& fam : registry()) {
      auto expanded = fam.expand();
      out.insert(out.end(), expanded.begin(), expanded.end());
    }
    return out;
  }
  std::string csv(names);
  csv.push_back(',');
  std::string cur;
  for (char c : csv) {
    if (c != ',') {
      cur.push_back(c);
      continue;
    }
    if (cur.empty()) continue;
    const scenario_family* fam = find_family(cur);
    if (fam == nullptr) throw error("unknown scenario family '" + cur + "'");
    auto expanded = fam->expand();
    out.insert(out.end(), expanded.begin(), expanded.end());
    cur.clear();
  }
  return out;
}

// --- string round-trip ---

std::string to_string(topology_kind k) {
  switch (k) {
    case topology_kind::complete: return "complete";
    case topology_kind::fig1a: return "fig1a";
    case topology_kind::fig1b: return "fig1b";
    case topology_kind::fig2: return "fig2";
    case topology_kind::ring: return "ring";
    case topology_kind::erdos_renyi: return "erdos_renyi";
    case topology_kind::random_regular: return "random_regular";
    case topology_kind::hypercube: return "hypercube";
    case topology_kind::clustered_wan: return "clustered_wan";
    case topology_kind::dumbbell: return "dumbbell";
    case topology_kind::weak_link: return "weak_link";
    case topology_kind::path_of_cliques: return "path_of_cliques";
  }
  return "?";
}

std::string to_string(adversary_kind k) {
  switch (k) {
    case adversary_kind::honest: return "honest";
    case adversary_kind::p1_garble: return "p1_garble";
    case adversary_kind::equivocate: return "equivocate";
    case adversary_kind::p2_lie: return "p2_lie";
    case adversary_kind::false_flag: return "false_flag";
    case adversary_kind::stealth: return "stealth";
    case adversary_kind::dispute_farm: return "dispute_farm";
    case adversary_kind::chaos: return "chaos";
    case adversary_kind::hunted: return "hunted";
  }
  return "?";
}

std::string to_string(core::propagation_mode m) {
  switch (m) {
    case core::propagation_mode::cut_through: return "cut_through";
    case core::propagation_mode::store_and_forward: return "store_and_forward";
    case core::propagation_mode::pipelined: return "pipelined";
  }
  return "?";
}

std::string to_string(bb::bb_protocol p) {
  switch (p) {
    case bb::bb_protocol::auto_select: return "auto";
    case bb::bb_protocol::eig: return "eig";
    case bb::bb_protocol::phase_king: return "phase_king";
  }
  return "?";
}

std::string to_string(bb::claim_backend b) {
  switch (b) {
    case bb::claim_backend::auto_select: return "auto";
    case bb::claim_backend::eig: return "eig";
    case bb::claim_backend::phase_king: return "phase_king";
    case bb::claim_backend::collapsed: return "collapsed";
  }
  return "?";
}

namespace {

template <typename Enum>
Enum parse_enum(std::string_view s, const std::vector<Enum>& all,
                const char* what) {
  for (Enum e : all)
    if (to_string(e) == s) return e;
  throw error(std::string("unknown ") + what + " '" + std::string(s) + "'");
}

}  // namespace

topology_kind topology_kind_from_string(std::string_view s) {
  static const std::vector<topology_kind> all = {
      topology_kind::complete,      topology_kind::fig1a,
      topology_kind::fig1b,         topology_kind::fig2,
      topology_kind::ring,          topology_kind::erdos_renyi,
      topology_kind::random_regular, topology_kind::hypercube,
      topology_kind::clustered_wan, topology_kind::dumbbell,
      topology_kind::weak_link,     topology_kind::path_of_cliques};
  return parse_enum(s, all, "topology kind");
}

adversary_kind adversary_kind_from_string(std::string_view s) {
  static const std::vector<adversary_kind> all = {
      adversary_kind::honest,     adversary_kind::p1_garble,
      adversary_kind::equivocate, adversary_kind::p2_lie,
      adversary_kind::false_flag, adversary_kind::stealth,
      adversary_kind::dispute_farm, adversary_kind::chaos,
      adversary_kind::hunted};
  return parse_enum(s, all, "adversary kind");
}

core::propagation_mode propagation_from_string(std::string_view s) {
  static const std::vector<core::propagation_mode> all = {
      core::propagation_mode::cut_through,
      core::propagation_mode::store_and_forward,
      core::propagation_mode::pipelined};
  return parse_enum(s, all, "propagation mode");
}

bb::bb_protocol flag_protocol_from_string(std::string_view s) {
  static const std::vector<bb::bb_protocol> all = {bb::bb_protocol::auto_select,
                                                   bb::bb_protocol::eig,
                                                   bb::bb_protocol::phase_king};
  return parse_enum(s, all, "flag protocol");
}

bb::claim_backend claim_backend_from_string(std::string_view s) {
  static const std::vector<bb::claim_backend> all = {
      bb::claim_backend::auto_select, bb::claim_backend::eig,
      bb::claim_backend::phase_king, bb::claim_backend::collapsed};
  return parse_enum(s, all, "claim backend");
}

std::map<std::string, std::string> scenario_to_params(const scenario& s) {
  std::map<std::string, std::string> p;
  p["name"] = s.name;
  p["family"] = s.family;
  p["topology"] = to_string(s.topology.kind);
  p["n"] = std::to_string(s.topology.n);
  p["param_a"] = std::to_string(s.topology.param_a);
  p["param_b"] = std::to_string(s.topology.param_b);
  p["cap_lo"] = std::to_string(s.topology.cap_lo);
  p["cap_hi"] = std::to_string(s.topology.cap_hi);
  {
    char buf[40];  // %.17g round-trips every double exactly through stod
    std::snprintf(buf, sizeof buf, "%.17g", s.topology.p);
    p["p"] = buf;
  }
  p["f"] = std::to_string(s.f);
  p["source"] = std::to_string(s.source);
  p["adversary"] = to_string(s.adversary);
  p["propagation"] = to_string(s.propagation);
  p["flag_protocol"] = to_string(s.flag_protocol);
  p["claim_backend"] = to_string(s.claim_backend);
  p["instances"] = std::to_string(s.instances);
  p["words"] = std::to_string(s.words);
  p["rotate_sources"] = s.rotate_sources ? "1" : "0";
  p["certify_cost_limit"] = std::to_string(s.certify_cost_limit);
  p["genome"] = s.genome;
  p["pool_memory"] = s.pool_memory ? "1" : "0";
  p["loss"] = s.loss;
  return p;
}

namespace {

const std::string& param(const std::map<std::string, std::string>& params,
                         const std::string& key) {
  auto it = params.find(key);
  if (it == params.end()) throw error("scenario_from_params: missing key " + key);
  return it->second;
}

/// Numeric conversions rethrow as nab::error naming the key, keeping the
/// function's single error contract (callers reject malformed logs by
/// catching nab::error, not std::invalid_argument).
template <typename Conv>
auto numeric(const std::map<std::string, std::string>& params,
             const std::string& key, Conv conv) {
  try {
    return conv(param(params, key));
  } catch (const std::invalid_argument&) {
    throw error("scenario_from_params: malformed value for " + key);
  } catch (const std::out_of_range&) {
    throw error("scenario_from_params: out-of-range value for " + key);
  }
}

}  // namespace

scenario scenario_from_params(const std::map<std::string, std::string>& params) {
  scenario s;
  s.name = param(params, "name");
  s.family = param(params, "family");
  const auto to_int = [](const std::string& v) { return std::stoi(v); };
  const auto to_cap = [](const std::string& v) {
    return static_cast<graph::capacity_t>(std::stoll(v));
  };
  s.topology.kind = topology_kind_from_string(param(params, "topology"));
  s.topology.n = numeric(params, "n", to_int);
  s.topology.param_a = numeric(params, "param_a", to_int);
  s.topology.param_b = numeric(params, "param_b", to_int);
  s.topology.cap_lo = numeric(params, "cap_lo", to_cap);
  s.topology.cap_hi = numeric(params, "cap_hi", to_cap);
  s.topology.p = numeric(params, "p", [](const std::string& v) { return std::stod(v); });
  s.f = numeric(params, "f", to_int);
  s.source = numeric(params, "source", to_int);
  s.adversary = adversary_kind_from_string(param(params, "adversary"));
  s.propagation = propagation_from_string(param(params, "propagation"));
  s.flag_protocol = flag_protocol_from_string(param(params, "flag_protocol"));
  s.claim_backend = claim_backend_from_string(param(params, "claim_backend"));
  s.instances = numeric(params, "instances", to_int);
  const auto to_u64 = [](const std::string& v) { return std::stoull(v); };
  s.words = numeric(params, "words", to_u64);
  s.rotate_sources = param(params, "rotate_sources") == "1";
  s.certify_cost_limit = numeric(params, "certify_cost_limit", to_u64);
  // Absent in pre-hunt logs; an empty genome is the non-hunted default.
  const auto genome_it = params.find("genome");
  s.genome = genome_it != params.end() ? genome_it->second : "";
  const auto pool_it = params.find("pool_memory");
  s.pool_memory = pool_it == params.end() || pool_it->second == "1";
  // Absent in pre-loss logs; "none" is the perfect-link default.
  const auto loss_it = params.find("loss");
  s.loss = loss_it != params.end() ? loss_it->second : "none";
  return s;
}

}  // namespace nab::runtime
