#pragma once

#include <functional>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/scenario.hpp"

namespace nab::runtime {

/// Executes one concrete scenario end to end on the calling thread: derives
/// the run seed from (sweep_seed, run_index), materializes the topology
/// (reseeding random generators until NAB's preconditions hold), picks the
/// corrupt set, instantiates the adversary, runs the session via
/// core::run_session, and evaluates every paper invariant into the record.
/// A pure function of its arguments — the determinism contract rests on it.
/// `capture_trace` attaches a per-run ambient traffic trace
/// (sim::scoped_ambient_trace, thread-confined) and reduces it into
/// run_record::traffic; traced bits are workload-determined, so records stay
/// comparable across thread counts.
///
/// Every run executes under a per-run obs::collector (same thread-confined
/// ambient pattern): the deterministic counters and margin gauges land in
/// the record proper, the machine-set data in run_record::timing.
/// `capture_spans` additionally keeps the raw span list (fleet --timeline);
/// phase wall totals are recorded either way.
run_record execute_scenario(const scenario& s, int run_index,
                            std::uint64_t sweep_seed,
                            bool capture_trace = false,
                            bool capture_spans = false);

/// Fans the sweep out over `jobs` workers (see executor.hpp). Results are
/// indexed by sweep position, so the output is identical for every `jobs`
/// value. `on_done`, when set, is invoked from worker threads under an
/// internal lock, in completion (not sweep) order — display only.
/// `run_wall_seconds`, when set, receives each run's wall-clock duration by
/// sweep position (machine- and contention-dependent — excluded from the
/// determinism contract; fleet aggregates it into wall_seconds_by_family).
std::vector<run_record> run_sweep(
    const std::vector<scenario>& sweep, std::uint64_t sweep_seed, int jobs,
    const std::function<void(const run_record&)>& on_done = {},
    std::vector<double>* run_wall_seconds = nullptr,
    bool capture_traces = false, bool capture_spans = false);

}  // namespace nab::runtime
